// Ablation benchmarks for the design choices DESIGN.md calls out: the
// run-queue discipline, the natural-preemption model behind "native"
// (D=0) executions, the handler yield probability, and the cost of ECT
// capture. Each reports its effect as custom metrics.
package goat_test

import (
	"testing"

	"goat/internal/conc"
	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/sim"
)

// rareBugs are the schedule-dependent kernels ablations measure against.
func rareBugs(b *testing.B) []goker.Kernel {
	b.Helper()
	var out []goker.Kernel
	for _, k := range goker.All() {
		if k.Rare {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		b.Fatal("no rare kernels")
	}
	return out
}

// detectionRate runs each kernel `trials` times and returns the fraction
// of (kernel, trial) pairs where GoAT saw the bug. Runs are traceless and
// step-capped: the outcome classification is all the rate needs, and
// noise-free configurations can livelock until the watchdog.
func detectionRate(kernels []goker.Kernel, trials int, opts func(seed int64) sim.Options) float64 {
	goatDet := detect.Goat{}
	hits, total := 0, 0
	for _, k := range kernels {
		for t := 0; t < trials; t++ {
			o := opts(int64(t))
			o.NoTrace = true
			o.MaxSteps = 20000
			r := goker.Run(k, o)
			if goatDet.Detect(r).Found {
				hits++
			}
			total++
		}
	}
	return 100 * float64(hits) / float64(total)
}

// BenchmarkAblationPickPolicy compares the random run-queue against the
// FIFO discipline of the native global queue over the rare kernels.
func BenchmarkAblationPickPolicy(b *testing.B) {
	kernels := rareBugs(b)
	var random, fifo float64
	for i := 0; i < b.N; i++ {
		random = detectionRate(kernels, 30, func(seed int64) sim.Options {
			return sim.Options{Seed: seed, Pick: sim.PickRandom}
		})
		fifo = detectionRate(kernels, 30, func(seed int64) sim.Options {
			return sim.Options{Seed: seed, Pick: sim.PickFIFO}
		})
	}
	b.ReportMetric(random, "random-hit-%")
	b.ReportMetric(fifo, "fifo-hit-%")
}

// BenchmarkAblationPreemptProb sweeps the natural-preemption probability
// that models native-scheduler noise at D=0. Zero noise makes narrow
// windows unreachable; too much noise stops resembling a native run.
func BenchmarkAblationPreemptProb(b *testing.B) {
	kernels := rareBugs(b)
	probs := []float64{-1, 0.02, 0.1}
	rates := make([]float64, len(probs))
	for i := 0; i < b.N; i++ {
		for pi, p := range probs {
			rates[pi] = detectionRate(kernels, 30, func(seed int64) sim.Options {
				return sim.Options{Seed: seed, PreemptProb: p}
			})
		}
	}
	b.ReportMetric(rates[0], "p0-hit-%")
	b.ReportMetric(rates[1], "p2-hit-%")
	b.ReportMetric(rates[2], "p10-hit-%")
}

// BenchmarkAblationYieldProb sweeps the handler's firing probability at a
// fixed delay budget D=2.
func BenchmarkAblationYieldProb(b *testing.B) {
	kernels := rareBugs(b)
	probs := []float64{0.05, 0.2, 0.5}
	rates := make([]float64, len(probs))
	for i := 0; i < b.N; i++ {
		for pi, p := range probs {
			rates[pi] = detectionRate(kernels, 30, func(seed int64) sim.Options {
				return sim.Options{Seed: seed, Delays: 2, YieldProb: p}
			})
		}
	}
	b.ReportMetric(rates[0], "y5-hit-%")
	b.ReportMetric(rates[1], "y20-hit-%")
	b.ReportMetric(rates[2], "y50-hit-%")
}

// BenchmarkAblationDelayBound sweeps D itself over the rare kernels — the
// core Table IV ablation (the paper: optimum D ≤ 3).
func BenchmarkAblationDelayBound(b *testing.B) {
	kernels := rareBugs(b)
	rates := make([]float64, 5)
	for i := 0; i < b.N; i++ {
		for d := 0; d <= 4; d++ {
			rates[d] = detectionRate(kernels, 30, func(seed int64) sim.Options {
				return sim.Options{Seed: seed, Delays: d}
			})
		}
	}
	for d := 0; d <= 4; d++ {
		b.ReportMetric(rates[d], []string{"D0-hit-%", "D1-hit-%", "D2-hit-%", "D3-hit-%", "D4-hit-%"}[d])
	}
}

// BenchmarkAblationTraceCapture measures the ECT's overhead on a
// channel-heavy workload.
func BenchmarkAblationTraceCapture(b *testing.B) {
	workload := func(g *sim.G) {
		ch := conc.NewChan[int](g, 4)
		wg := conc.NewWaitGroup(g)
		wg.Add(g, 2)
		g.Go("producer", func(c *sim.G) {
			for i := 0; i < 100; i++ {
				ch.Send(c, i)
			}
			ch.Close(c)
			wg.Done(c)
		})
		g.Go("consumer", func(c *sim.G) {
			ch.Range(c, func(int) bool { return true })
			wg.Done(c)
		})
		wg.Wait(g)
	}
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(sim.Options{PreemptProb: -1}, workload)
		}
	})
	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(sim.Options{PreemptProb: -1, NoTrace: true}, workload)
		}
	})
}
