// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section IV). Each benchmark runs the corresponding
// experiment campaign and reports its headline numbers as custom metrics,
// so `go test -bench=. -benchmem` both times the harness and reproduces
// the results' shape. The goatbench command prints the full artifacts.
package goat_test

import (
	"bytes"
	"context"
	"os"
	"testing"

	"goat"
	"goat/internal/conc"
	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/engine"
	"goat/internal/fabric"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/harness"
	"goat/internal/hb"
	"goat/internal/ingest"
	"goat/internal/kernelgen"
	"goat/internal/profile"
	"goat/internal/sim"
	"goat/internal/systematic"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// benchBudget keeps bench iterations affordable; goatbench uses the
// paper's 1000.
const benchBudget = 200

// BenchmarkTable1 regenerates the requirement catalogue (Table I) — a
// pure rendering, benchmarked for completeness of the per-table index.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(cover.CatalogueString()) == 0 {
			b.Fatal("empty catalogue")
		}
	}
	b.ReportMetric(float64(len(cover.Catalogue())), "req-families")
}

// BenchmarkTable3 regenerates Table III: the CU/coverage table of
// listing 1 (moby_28462) accumulated over two executions.
func BenchmarkTable3(b *testing.B) {
	k, ok := goker.ByID("moby_28462")
	if !ok {
		b.Fatal("kernel missing")
	}
	var covered, total int
	for i := 0; i < b.N; i++ {
		model := cover.NewModel(nil)
		for run := 0; run < 2; run++ {
			r := goker.Run(k, sim.Options{Seed: int64(run), Delays: 2})
			tree, err := gtree.Build(r.Trace)
			if err != nil {
				b.Fatal(err)
			}
			st := model.AddRun(tree)
			covered, total = st.Covered, st.Total
		}
	}
	b.ReportMetric(float64(covered), "covered")
	b.ReportMetric(float64(total), "requirements")
}

// BenchmarkTable4 regenerates the detector matrix (Table IV): 68 bugs ×
// 8 tool configurations, minimum executions to detection.
func BenchmarkTable4(b *testing.B) {
	var tab *harness.TableIV
	for i := 0; i < b.N; i++ {
		tab = harness.RunTableIV(harness.Config{MaxExecs: benchBudget})
	}
	counts := tab.DetectedCount()
	b.ReportMetric(float64(counts["goat-D2"]), "goat-D2-detected")
	b.ReportMetric(float64(counts["builtin"]), "builtin-detected")
	b.ReportMetric(float64(counts["goleak"]), "goleak-detected")
	b.ReportMetric(float64(counts["lockdl"]), "lockdl-detected")
}

// BenchmarkFigure2 regenerates the trials-to-detect histogram at D=0.
func BenchmarkFigure2(b *testing.B) {
	var fig *harness.Figure2
	for i := 0; i < b.N; i++ {
		tab := harness.RunTableIV(harness.Config{
			MaxExecs: benchBudget,
			Tools: []harness.Spec{{
				Name: "goat-D0", Detector: detect.Goat{}, NeedTrace: true,
			}},
		})
		fig = harness.RunFigure2(tab, "goat-D0")
	}
	b.ReportMetric(float64(fig.Buckets[0]), "trial1-bugs")
	b.ReportMetric(float64(fig.Buckets[1]+fig.Buckets[2]+fig.Buckets[3]), "multi-trial-bugs")
}

// BenchmarkFigure4 regenerates the per-tool detection histogram.
func BenchmarkFigure4(b *testing.B) {
	var fig *harness.Figure4
	for i := 0; i < b.N; i++ {
		tab := harness.RunTableIV(harness.Config{MaxExecs: benchBudget})
		fig = harness.RunFigure4(tab)
	}
	b.ReportMetric(float64(fig.Detected("goat-D0")), "goat-D0")
	b.ReportMetric(float64(fig.Detected("goleak")), "goleak")
}

// BenchmarkFigure5 regenerates the iteration-interval distribution.
func BenchmarkFigure5(b *testing.B) {
	var fig *harness.Figure5
	for i := 0; i < b.N; i++ {
		tab := harness.RunTableIV(harness.Config{MaxExecs: benchBudget})
		fig = harness.RunFigure5(tab)
	}
	// Share of bugs detected in a single execution by GoAT at D=2.
	b.ReportMetric(fig.Percent["goat-D2"][0], "goatD2-trial1-%")
}

// BenchmarkFigure6 regenerates both coverage case studies (Fig. 6a/6b).
func BenchmarkFigure6(b *testing.B) {
	ds := []int{0, 1, 2, 4}
	var final float64
	for i := 0; i < b.N; i++ {
		for _, bug := range []string{"etcd_7443", "kubernetes_11298"} {
			series, err := harness.RunFigure6(bug, 50, ds, 0)
			if err != nil {
				b.Fatal(err)
			}
			final = series[2][49].Percent
		}
	}
	b.ReportMetric(final, "final-D2-coverage-%")
}

// --- micro-benchmarks of the substrate ---

// BenchmarkSchedulerSpawnJoin measures raw virtual-runtime throughput.
func BenchmarkSchedulerSpawnJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := goat.Run(goat.Options{NoTrace: true, PreemptProb: -1}, func(g *goat.G) {
			wg := conc.NewWaitGroup(g)
			for j := 0; j < 10; j++ {
				wg.Add(g, 1)
				g.Go("w", func(c *goat.G) { wg.Done(c) })
			}
			wg.Wait(g)
		})
		if r.Outcome != goat.OutcomeOK {
			b.Fatal(r.Outcome)
		}
	}
}

// BenchmarkChannelPingPong measures rendezvous cost with tracing on.
func BenchmarkChannelPingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		goat.Run(goat.Options{PreemptProb: -1}, func(g *goat.G) {
			ping := conc.NewChan[int](g, 0)
			pong := conc.NewChan[int](g, 0)
			g.Go("peer", func(c *goat.G) {
				for j := 0; j < 50; j++ {
					v, _ := ping.Recv(c)
					pong.Send(c, v+1)
				}
			})
			for j := 0; j < 50; j++ {
				ping.Send(g, j)
				pong.Recv(g)
			}
		})
	}
}

// BenchmarkSelectTwoReady measures select dispatch with both cases ready.
func BenchmarkSelectTwoReady(b *testing.B) {
	for i := 0; i < b.N; i++ {
		goat.Run(goat.Options{NoTrace: true, PreemptProb: -1}, func(g *goat.G) {
			x := conc.NewChan[int](g, 1)
			y := conc.NewChan[int](g, 1)
			for j := 0; j < 50; j++ {
				x.TrySend(g, j)
				y.TrySend(g, j)
				conc.Select(g, []conc.Case{conc.CaseRecv(x), conc.CaseRecv(y)}, false)
				conc.Select(g, []conc.Case{conc.CaseRecv(x), conc.CaseRecv(y)}, true)
			}
		})
	}
}

// benchCampaignCell runs a Table IV-style campaign cell (one rare kernel
// under the GoAT detector for a fixed execution budget) through the
// engine, either buffered (ECT per run + post-hoc detection) or streaming
// (trace-free, online detector). Reported with -benchmem so the guard
// pins both ns/op and allocs/op: pooled streaming must not cost more than
// buffering on either axis.
func benchCampaignCell(b *testing.B, buffered bool) {
	k, ok := goker.ByID("kubernetes_6632")
	if !ok {
		b.Fatal("kernel missing")
	}
	pool := trace.NewPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := engine.Run(context.Background(), engine.Config{
			Prog: k.Main,
			Plan: func(i int, _ *engine.Feedback) sim.Options {
				return sim.Options{Seed: 1 + int64(i)}
			},
			Runs:               30,
			Detector:           detect.Goat{},
			DetectorNeedsTrace: true,
			Buffered:           buffered,
			Pool:               pool,
			StopOnFound:        true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Runs == 0 {
			b.Fatal("no runs executed")
		}
	}
}

// BenchmarkCampaignCellBuffered is the classic pipeline: every execution
// buffers its ECT (recycled through a pool) and GoAT analyzes it post-hoc.
func BenchmarkCampaignCellBuffered(b *testing.B) { benchCampaignCell(b, true) }

// BenchmarkCampaignCellStreaming is the streaming pipeline: executions
// run trace-free with the online GoAT detector attached as an event sink.
func BenchmarkCampaignCellStreaming(b *testing.B) { benchCampaignCell(b, false) }

// BenchmarkServiceCell times one service-soak execution cell: a leaky
// worker-pool service (one stranded goroutine per 128 requests) run
// trace-free with the windowed leak detector on the batched sink path —
// the unit of work the soak and service campaigns scale up.
func BenchmarkServiceCell(b *testing.B) {
	p := &kernelgen.ServiceProg{
		Shape: kernelgen.ShapeWorkerPool, Requests: 1024,
		Workers: 4, Pool: 2, Stages: 2, ChanCap: 4,
		LeakKind: kernelgen.LeakSendNoRecv, LeakEvery: 128,
	}
	det := detect.Leak{Window: 1024}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := det.NewStream()
		r := sim.Run(sim.Options{
			Seed: 1 + int64(i), MaxSteps: p.MinSteps(), NoTrace: true,
			Sinks: []trace.Sink{s},
		}, p.Main())
		if d := s.Finish(r); !d.Found {
			b.Fatalf("planted leak not reported: %s", d.Detail)
		}
	}
	b.ReportMetric(float64(p.Requests)*float64(b.N)/b.Elapsed().Seconds(), "requests/s")
}

// benchTelemetryOverhead is BenchmarkCampaignCellStreaming with the
// telemetry registry in a chosen state, for the on-vs-off overhead
// guard: the enabled run carries the instrumented scheduler, the engine
// wall clocks, and a telemetry.Sink in the event chain, and must stay
// within a few percent of the disabled run.
func benchTelemetryOverhead(b *testing.B, enabled bool) {
	k, ok := goker.ByID("kubernetes_6632")
	if !ok {
		b.Fatal("kernel missing")
	}
	if enabled {
		telemetry.Enable()
		b.Cleanup(func() {
			telemetry.Disable()
			telemetry.Default.Reset()
		})
	}
	pool := trace.NewPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := engine.Run(context.Background(), engine.Config{
			Prog: k.Main,
			Plan: func(i int, _ *engine.Feedback) sim.Options {
				return sim.Options{Seed: 1 + int64(i)}
			},
			Runs:               30,
			Detector:           detect.Goat{},
			DetectorNeedsTrace: true,
			Pool:               pool,
			StopOnFound:        true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Runs == 0 {
			b.Fatal("no runs executed")
		}
	}
}

// BenchmarkTelemetryOverheadOff is the streaming campaign cell with the
// registry disabled — the near-zero-cost baseline every instrumentation
// site must respect.
func BenchmarkTelemetryOverheadOff(b *testing.B) { benchTelemetryOverhead(b, false) }

// BenchmarkTelemetryOverheadOn is the same cell fully instrumented; the
// bench guard holds the On/Off pair to the ≤2% overhead budget.
func BenchmarkTelemetryOverheadOn(b *testing.B) { benchTelemetryOverhead(b, true) }

// BenchmarkDetectGoat measures detection cost over a leaking trace.
func BenchmarkDetectGoat(b *testing.B) {
	k, _ := goker.ByID("moby_33293")
	r := goker.Run(k, sim.Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := goat.Detect(r); !d.Found {
			b.Fatal("leak not detected")
		}
	}
}

// BenchmarkMetricSaturation compares GoAT's Req1–Req5 metric against the
// prior-work synchronization-pair metric on the same campaign: how many
// units each discovers over 40 iterations of the Fig. 6a case study.
func BenchmarkMetricSaturation(b *testing.B) {
	k, _ := goker.ByID("etcd_7443")
	var reqUnits, pairUnits int
	for i := 0; i < b.N; i++ {
		req := cover.NewModel(nil)
		pairs := cover.NewPairModel()
		for seed := int64(0); seed < 40; seed++ {
			r := goker.Run(k, sim.Options{Seed: seed, Delays: 2})
			tree, err := gtree.Build(r.Trace)
			if err != nil {
				b.Fatal(err)
			}
			req.AddRun(tree)
			pairs.AddRun(tree)
		}
		reqUnits, pairUnits = req.Total(), pairs.Distinct()
	}
	b.ReportMetric(float64(reqUnits), "req-units")
	b.ReportMetric(float64(pairUnits), "syncpair-units")
}

// systematicBenchKernels is a fixed mix of kernels whose bugs need the
// yield search (plus two that fall to the base schedule), so the
// explorer benchmarks exercise both the sweep and the random phase. The
// last two need more than two yields: at the D=2 bound below no search
// finds them, so the mix also measures what exhausting the space costs —
// Explore samples to its run budget, DPOR drains its backtrack tree and
// stops (the "executions" metric is the claim benchguard tracks).
var systematicBenchKernels = []string{
	"moby_28462", "serving_2137", "moby_30408",
	"etcd_7443", "cockroach_10214", "kubernetes_11298",
	"kubernetes_6632",
}

func benchSystematic(b *testing.B, mode string) {
	var kernels []goker.Kernel
	for _, id := range systematicBenchKernels {
		k, ok := goker.ByID(id)
		if !ok {
			b.Fatalf("kernel %s missing", id)
		}
		kernels = append(kernels, k)
	}
	execs, found := 0, 0
	for i := 0; i < b.N; i++ {
		execs, found = 0, 0
		for _, k := range kernels {
			cfg := systematic.Config{Seed: 1, MaxYields: 2, MaxRuns: 2000}
			switch mode {
			case "pruned":
				f, st := systematic.ExplorePruned(k.Main, cfg)
				execs += st.Runs
				if f != nil {
					found++
				}
			case "dpor":
				f, st := systematic.ExploreDPOR(k.Main, cfg)
				execs += st.Runs
				if f != nil {
					found++
				}
			default:
				f := systematic.Explore(k.Main, cfg)
				if f != nil {
					execs += f.Runs
					found++
				} else {
					execs += cfg.MaxRuns
				}
			}
		}
	}
	b.ReportMetric(float64(execs), "executions")
	b.ReportMetric(float64(found), "bugs-found")
}

// BenchmarkSystematicExplore is the exhaustive delay-bounded search over
// the fixed kernel mix.
func BenchmarkSystematicExplore(b *testing.B) { benchSystematic(b, "explore") }

// BenchmarkSystematicExplorePruned is the same search with happens-before
// schedule pruning: identical findings, fewer executions (the
// "executions" metric is the claim).
func BenchmarkSystematicExplorePruned(b *testing.B) { benchSystematic(b, "pruned") }

// BenchmarkSystematicExploreDPOR is the dependency-driven search over
// the same mix: backtrack points seeded only at racing Must-HB windows,
// sleep-set footprint memo suppressing equivalent interleavings — same
// findings again, and the fewest executions of the three.
func BenchmarkSystematicExploreDPOR(b *testing.B) { benchSystematic(b, "dpor") }

// BenchmarkHBEngine measures the streaming happens-before engine's
// throughput over a buffered leaking trace.
func BenchmarkHBEngine(b *testing.B) {
	k, _ := goker.ByID("etcd_7443")
	r := goker.Run(k, sim.Options{Seed: 1, Delays: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := hb.FromTrace(r.Trace, hb.Full); g.Events == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkPredictMine measures mining one passing D=0 trace for
// predicted hazards (the cmd/goat -predict path).
func BenchmarkPredictMine(b *testing.B) {
	k, _ := goker.ByID("cockroach_10214")
	r := goker.Run(k, sim.Options{Seed: 1})
	if r.Outcome != sim.OutcomeOK {
		b.Fatal("expected a passing execution")
	}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = len(detect.Predict(r.Trace))
	}
	b.ReportMetric(float64(n), "hazards")
}

// BenchmarkCheckpointJournalAppend measures the fabric coordinator's
// per-cell checkpoint cost: one unbuffered JSON append per merged cell.
func BenchmarkCheckpointJournalAppend(b *testing.B) {
	job, err := fabric.NewJob(harness.Config{MaxExecs: 3})
	if err != nil {
		b.Fatal(err)
	}
	j, _, err := fabric.OpenJournal(b.TempDir()+"/journal.jsonl", job.Fingerprint(), job.Cells())
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	cell := harness.Cell{Bug: "moby_28462", Tool: "goat-D2", Found: true, MinExecs: 3, Verdict: "PDL-2"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(i%job.Cells(), cell); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkCheckpointJournalReplay measures coordinator restart: reopening
// a full-campaign journal and readmitting every checkpointed cell.
func BenchmarkCheckpointJournalReplay(b *testing.B) {
	job, err := fabric.NewJob(harness.Config{MaxExecs: 3})
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/journal.jsonl"
	j, _, err := fabric.OpenJournal(path, job.Fingerprint(), job.Cells())
	if err != nil {
		b.Fatal(err)
	}
	cell := harness.Cell{Bug: "moby_28462", Tool: "goat-D2", Found: true, MinExecs: 3, Verdict: "PDL-2"}
	for seq := 0; seq < job.Cells(); seq++ {
		if err := j.Append(seq, cell); err != nil {
			b.Fatal(err)
		}
	}
	j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, done, err := fabric.OpenJournal(path, job.Fingerprint(), job.Cells())
		if err != nil {
			b.Fatal(err)
		}
		if len(done) != job.Cells() {
			b.Fatalf("replayed %d cells, want %d", len(done), job.Cells())
		}
		j.Close()
	}
	b.ReportMetric(float64(job.Cells())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkIngestParse measures native runtime/trace ingestion end to
// end — wire parse, goroutine attribution, resource correlation, ECT
// emission — on the checked-in leaky-pool capture.
func BenchmarkIngestParse(b *testing.B) {
	data, err := os.ReadFile("internal/ingest/testdata/leakypool.trace")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := ingest.Parse(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if run.Trace.Len() == 0 {
			b.Fatal("empty conversion")
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(data))/b.Elapsed().Seconds()/1e6, "MB/s")
}

// BenchmarkProfileBuild folds a detecting run's ECT into the full
// profile set (block, mutex, goroutine) — the per-scrape cost of the
// live /profile endpoints and the -profile command's hot loop.
func BenchmarkProfileBuild(b *testing.B) {
	k, _ := goker.ByID("moby_33293")
	r := goker.Run(k, sim.Options{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := profile.Build(r.Trace, profile.Options{})
		if len(set.Block.Samples) == 0 {
			b.Fatal("empty block profile")
		}
	}
}

// BenchmarkServiceCellTimeline is BenchmarkServiceCell with the request
// timeline and the latency sink on — the fully profiled service cell.
// The bench guard holds the pair to the profiling plane's ≤2% overhead
// budget.
func BenchmarkServiceCellTimeline(b *testing.B) {
	p := &kernelgen.ServiceProg{
		Shape: kernelgen.ShapeWorkerPool, Requests: 1024,
		Workers: 4, Pool: 2, Stages: 2, ChanCap: 4,
		LeakKind: kernelgen.LeakSendNoRecv, LeakEvery: 128,
		Timeline: true,
	}
	det := detect.Leak{Window: 1024}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := det.NewStream()
		lat := profile.NewLatencySink()
		r := sim.Run(sim.Options{
			Seed: 1 + int64(i), MaxSteps: p.MinSteps(), NoTrace: true,
			Sinks: []trace.Sink{s, lat},
		}, p.Main())
		if d := s.Finish(r); !d.Found {
			b.Fatalf("planted leak not reported: %s", d.Detail)
		}
		if lat.Count() != p.Requests {
			b.Fatalf("latency sink closed %d/%d requests", lat.Count(), p.Requests)
		}
	}
	b.ReportMetric(float64(p.Requests)*float64(b.N)/b.Elapsed().Seconds(), "requests/s")
}
