package main

import (
	"strings"
	"testing"
)

// args bundles validateFlags' inputs so each case reads as the command
// line it stands for.
type args struct {
	bug       string
	tool      string
	minimize  bool
	traceOut  string
	htmlOut   string
	timeline  string
	faultSpec string
	predict   bool
	prune     bool
	dpor      bool
}

func validate(a args) error {
	if a.tool == "" {
		a.tool = "goat"
	}
	_, err := validateFlags(a.bug, a.tool, a.minimize, a.traceOut, a.htmlOut, a.timeline, a.faultSpec, a.predict, a.prune, a.dpor)
	return err
}

func TestValidateFlagsRejectsExclusiveModes(t *testing.T) {
	cases := []struct {
		name    string
		a       args
		wantErr string // substring of the usage error
	}{
		{"predict+dpor", args{bug: "b", predict: true, dpor: true}, "-predict and -dpor are exclusive"},
		{"predict+dpor+minimize", args{bug: "b", predict: true, dpor: true, minimize: true}, "-predict and -dpor are exclusive"},
		{"predict+prune", args{bug: "b", predict: true, prune: true}, "-predict and -prune are exclusive"},
		{"predict+minimize", args{bug: "b", predict: true, minimize: true}, "-predict cannot be combined"},
		{"predict+faults", args{bug: "b", predict: true, faultSpec: "stall=1"}, "-predict cannot be combined"},
		{"dpor+prune", args{bug: "b", minimize: true, dpor: true, prune: true}, "-dpor and -prune are exclusive"},
		{"dpor-without-minimize", args{bug: "b", dpor: true}, "-dpor requires -minimize"},
		{"prune-without-minimize", args{bug: "b", prune: true}, "-prune requires -minimize"},
		{"minimize-without-bug", args{minimize: true}, "-minimize requires -bug"},
		{"predict-without-bug", args{predict: true}, "-predict requires -bug"},
		{"traceout-without-bug", args{traceOut: "t.ect"}, "-traceout requires -bug"},
		{"faults-without-bug", args{faultSpec: "stall=1"}, "-faults requires -bug"},
		{"minimize+faults", args{bug: "b", minimize: true, faultSpec: "stall=1"}, "cannot be combined with -minimize"},
		{"unknown-tool", args{bug: "b", tool: "frob"}, "goat|builtin|lockdl|goleak"},
		{"bad-fault-spec", args{bug: "b", faultSpec: "bogus"}, "bad -faults spec"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validate(c.a)
			if err == nil {
				t.Fatalf("%+v accepted, want usage error containing %q", c.a, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %q, want it to contain %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateFlagsAcceptsValidModes(t *testing.T) {
	cases := []struct {
		name string
		a    args
	}{
		{"bare-bug", args{bug: "b"}},
		{"predict", args{bug: "b", predict: true}},
		{"minimize", args{bug: "b", minimize: true}},
		{"minimize+prune", args{bug: "b", minimize: true, prune: true}},
		{"minimize+dpor", args{bug: "b", minimize: true, dpor: true}},
		{"faults", args{bug: "b", faultSpec: "stall=2,panic=1"}},
		{"every-tool-goleak", args{bug: "b", tool: "goleak"}},
		{"every-tool-lockdl", args{bug: "b", tool: "lockdl"}},
		{"every-tool-builtin", args{bug: "b", tool: "builtin"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := validate(c.a); err != nil {
				t.Fatalf("%+v rejected: %v", c.a, err)
			}
		})
	}
}
