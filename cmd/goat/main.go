// Command goat is the paper's CLI: it statically analyzes and instruments
// native Go programs, and runs GoKer bug kernels on the virtual runtime
// with schedule perturbation, deadlock detection and coverage measurement.
//
// Usage patterns (mirroring the paper's artifact):
//
//	goat -list
//	goat -bug moby_28462 -d 2 -freq 100 -cov
//	goat -bug etcd_7443 -tool lockdl -freq 1000
//	goat -path ./someprogram                 # print the CU model M
//	goat -path ./someprogram -instrument out # rewrite sources into out/
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"goat/internal/cover"
	"goat/internal/cu"
	"goat/internal/detect"
	"goat/internal/engine"
	"goat/internal/fault"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/instrument"
	"goat/internal/obs"
	"goat/internal/profile"
	"goat/internal/race"
	"goat/internal/report"
	"goat/internal/sim"
	"goat/internal/systematic"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// obsTrace, when -obs mounts the live endpoint, receives the detecting
// run's ECT so /profile/* serves its block/mutex/goroutine profiles.
var obsTrace *obs.LatestTrace

func main() {
	var (
		path      = flag.String("path", "", "target folder of Go sources (static analysis)")
		instOut   = flag.String("instrument", "", "with -path: write instrumented sources to this folder")
		bug       = flag.String("bug", "", "run a GoKer kernel by ID")
		list      = flag.Bool("list", false, "list the GoKer kernels")
		d         = flag.Int("d", 0, "number of delays (yield bound D)")
		freq      = flag.Int("freq", 1, "frequency of executions")
		covFlag   = flag.Bool("cov", false, "include coverage report in evaluation")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "with -bug: run up to this many executions concurrently (per-run reporting modes run sequentially)")
		seed      = flag.Int64("seed", 0, "base RNG seed")
		tool      = flag.String("tool", "goat", "detector: goat|builtin|lockdl|goleak")
		raceOn    = flag.Bool("race", false, "enable the happens-before data race checker")
		traceOut  = flag.String("traceout", "", "with -bug: write the detecting run's ECT to this file")
		minimize  = flag.Bool("minimize", false, "with -bug: systematic search + minimal yield placement")
		htmlOut   = flag.String("htmlout", "", "with -bug: write an HTML timeline of the detecting run")
		timeline  = flag.String("timeline", "", "with -bug: write a Chrome/Perfetto timeline (ECT + campaign phases) of the detecting run")
		faultSpec = flag.String("faults", "", `with -bug: fault-injection spec, e.g. "stall=2,cancel=1,skew=0.3,slow=2,panic=1"`)
		predict   = flag.Bool("predict", false, "with -bug: mine one passing execution for predicted blocking hazards")
		prune     = flag.Bool("prune", false, "with -minimize: happens-before schedule pruning (skip equivalent yield placements)")
		dpor      = flag.Bool("dpor", false, "with -minimize: dynamic partial-order reduction (backtrack only at racing Must-HB windows)")
		obsAddr   = flag.String("obs", "", "mount the observability endpoint (/metrics, /profile/*, /healthz) on this address")
	)
	flag.Parse()

	if *obsAddr != "" {
		telemetry.Enable()
		obsTrace = &obs.LatestTrace{}
		srv := &obs.Server{Profiles: obsTrace.Set}
		addr, err := srv.Start(*obsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "goat: observability endpoint on http://%s\n", addr)
	}

	faults, err := validateFlags(*bug, *tool, *minimize, *traceOut, *htmlOut, *timeline, *faultSpec, *predict, *prune, *dpor)
	if err != nil {
		fatal(err)
	}

	// SIGINT cancels the campaign at the next run boundary; a second
	// SIGINT kills the process outright (signal.NotifyContext restores
	// the default handler once the context is done).
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	switch {
	case *list:
		listKernels()
	case *bug != "" && *predict:
		if err := predictBug(*bug, *seed, *d); err != nil {
			fatal(err)
		}
	case *bug != "" && *minimize:
		if err := minimizeBug(*bug, *seed, *d, *freq, *prune, *dpor); err != nil {
			fatal(err)
		}
	case *bug != "":
		if err := runBug(ctx, *bug, *tool, *d, *freq, *parallel, *seed, *covFlag, *raceOn, *traceOut, *htmlOut, *timeline, faults); err != nil {
			fatal(err)
		}
	case *path != "":
		if err := analyzePath(*path, *instOut); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "goat:", err)
	os.Exit(1)
}

// validateFlags rejects meaningless flag combinations up front with a
// one-line error instead of silently ignoring them.
func validateFlags(bug, tool string, minimize bool, traceOut, htmlOut, timeline, faultSpec string, predict, prune, dpor bool) (fault.Options, error) {
	if bug == "" {
		switch {
		case minimize:
			return fault.Options{}, fmt.Errorf("-minimize requires -bug")
		case traceOut != "":
			return fault.Options{}, fmt.Errorf("-traceout requires -bug")
		case htmlOut != "":
			return fault.Options{}, fmt.Errorf("-htmlout requires -bug")
		case timeline != "":
			return fault.Options{}, fmt.Errorf("-timeline requires -bug")
		case faultSpec != "":
			return fault.Options{}, fmt.Errorf("-faults requires -bug")
		case predict:
			return fault.Options{}, fmt.Errorf("-predict requires -bug")
		}
	}
	if predict && dpor {
		return fault.Options{}, fmt.Errorf("-predict and -dpor are exclusive (-predict mines one execution; -dpor is a -minimize search strategy)")
	}
	if predict && prune {
		return fault.Options{}, fmt.Errorf("-predict and -prune are exclusive (-predict mines one execution; -prune is a -minimize search strategy)")
	}
	if prune && !minimize {
		return fault.Options{}, fmt.Errorf("-prune requires -minimize")
	}
	if dpor && !minimize {
		return fault.Options{}, fmt.Errorf("-dpor requires -minimize")
	}
	if dpor && prune {
		return fault.Options{}, fmt.Errorf("-dpor and -prune are exclusive (each replaces the search strategy)")
	}
	if predict && (minimize || faultSpec != "") {
		return fault.Options{}, fmt.Errorf("-predict cannot be combined with -minimize or -faults")
	}
	if _, err := detectorFor(tool); err != nil {
		return fault.Options{}, fmt.Errorf("%v (want goat|builtin|lockdl|goleak)", err)
	}
	if minimize && faultSpec != "" {
		return fault.Options{}, fmt.Errorf("-faults cannot be combined with -minimize (systematic search assumes a fault-free schedule space)")
	}
	faults, err := fault.ParseSpec(faultSpec)
	if err != nil {
		return fault.Options{}, fmt.Errorf("bad -faults spec: %v", err)
	}
	return faults, nil
}

func listKernels() {
	fmt.Printf("%-22s %-12s %-14s %-6s %s\n", "ID", "project", "cause", "rare", "expected")
	for _, k := range goker.All() {
		rare := ""
		if k.Rare {
			rare = "yes"
		}
		fmt.Printf("%-22s %-12s %-14s %-6s %s\n", k.ID, k.Project, k.Cause, rare, k.Expect)
	}
}

func detectorFor(name string) (detect.Detector, error) {
	switch name {
	case "goat":
		return detect.Goat{}, nil
	case "builtin":
		return detect.Builtin{}, nil
	case "lockdl":
		return detect.LockDL{}, nil
	case "goleak":
		return detect.Goleak{}, nil
	default:
		return nil, fmt.Errorf("unknown tool %q", name)
	}
}

func runBug(ctx context.Context, id, tool string, d, freq, parallel int, seed int64, covFlag, raceOn bool, traceOut, htmlOut, timeline string, faults fault.Options) error {
	k, ok := goker.ByID(id)
	if !ok {
		return fmt.Errorf("unknown bug %q (try -list)", id)
	}
	det, err := detectorFor(tool)
	if err != nil {
		return err
	}
	if timeline != "" {
		// The timeline export carries the campaign's phase spans as its
		// second track set, so telemetry runs for this campaign.
		telemetry.Enable()
		defer telemetry.Disable()
	}
	fmt.Printf("bug %s (%s, %s deadlock): %s\n\n", k.ID, k.Project, k.Cause, k.Description)
	if faults.Enabled() {
		fmt.Printf("fault injection: %s\n\n", faults)
	}

	model := cover.NewModel(nil)
	cfg := engine.Config{
		Prog: k.Main,
		Plan: func(i int, _ *engine.Feedback) sim.Options {
			return sim.Options{Seed: seed + int64(i), Delays: d, Faults: faults}
		},
		Runs:        freq,
		Detector:    det,
		NeedTrace:   true, // the detection report prints the goroutine tree
		StopOnFound: true,
	}
	if covFlag || raceOn || faults.Enabled() {
		// Per-run reporting needs the executions observed in order, so
		// these modes run sequentially regardless of -parallel.
		cfg.OnRun = func(fb *engine.Feedback) (bool, error) {
			r, trial := fb.Result, fb.Index
			if faults.Enabled() && len(r.Faults) > 0 {
				fmt.Printf("run %3d: %d fault(s) injected\n", trial+1, len(r.Faults))
			}
			if raceOn && r.Trace != nil {
				for _, rc := range race.Check(r.Trace) {
					fmt.Printf("run %3d: %s\n", trial+1, rc)
				}
			}
			if covFlag && r.Trace != nil {
				if tree, err := gtree.Build(r.Trace); err == nil {
					st := model.AddRun(tree)
					fmt.Printf("run %3d: outcome=%-5s coverage %5.1f%% (%d/%d)\n",
						trial+1, r.Outcome, st.Percent, st.Covered, st.Total)
				}
			}
			return false, nil
		}
	} else {
		cfg.Parallel = parallel
	}
	endCampaign := telemetry.Default.Span("campaign", fmt.Sprintf("campaign %s/%s", id, tool))
	rep, err := engine.Run(ctx, cfg)
	endCampaign()
	if errors.Is(err, context.Canceled) {
		fmt.Printf("\ninterrupted after %d execution(s); partial results above\n", rep.Runs)
		return nil
	}
	if err != nil {
		return err
	}
	if f := rep.Found; f != nil {
		r, det2 := f.Result, *f.Detection
		if obsTrace != nil && r.Trace != nil {
			obsTrace.Store(r.Trace, profile.Options{})
		}
		fmt.Printf("\nbug exposed on execution %d (seed %d, D=%d)\n\n", f.Index+1, r.Seed, d)
		fmt.Println(report.Detection(r, det2))
		if covFlag {
			fmt.Println("coverage table:")
			fmt.Println(report.CoverageTable(nil, model))
		}
		if traceOut != "" && r.Trace != nil {
			if err := writeTrace(traceOut, r.Trace); err != nil {
				return err
			}
			fmt.Printf("ECT written to %s (%d events); inspect with cmd/goattrace\n", traceOut, r.Trace.Len())
		}
		if timeline != "" && r.Trace != nil {
			w, err := os.Create(timeline)
			if err != nil {
				return err
			}
			exportErr := r.Trace.EncodeChrome(w, trace.ChromeOptions{
				Spans: telemetry.ChromeSpans(telemetry.Default.Spans()),
			})
			if cerr := w.Close(); exportErr == nil {
				exportErr = cerr
			}
			if exportErr != nil {
				return exportErr
			}
			fmt.Printf("Chrome timeline written to %s (load in ui.perfetto.dev)\n", timeline)
		}
		if htmlOut != "" && r.Trace != nil {
			tree, err := gtree.Build(r.Trace)
			if err != nil {
				return err
			}
			page := report.HTMLTimeline(tree, fmt.Sprintf("%s — %s (seed %d, D=%d)", k.ID, det2.Verdict, r.Seed, d))
			if err := os.WriteFile(htmlOut, []byte(page), 0o644); err != nil {
				return err
			}
			fmt.Printf("HTML timeline written to %s\n", htmlOut)
		}
		return nil
	}
	fmt.Printf("\nbug not exposed in %d execution(s) with %s at D=%d\n", freq, tool, d)
	if covFlag {
		fmt.Println(report.CoverageTable(nil, model))
	}
	return nil
}

// predictBug runs one execution of a kernel and mines its trace for
// predicted blocking hazards: bugs the schedule did not manifest but the
// synchronization skeleton proves possible (-predict).
func predictBug(id string, seed int64, d int) error {
	k, ok := goker.ByID(id)
	if !ok {
		return fmt.Errorf("unknown bug %q (try -list)", id)
	}
	fmt.Printf("bug %s (%s, %s deadlock): %s\n\n", k.ID, k.Project, k.Cause, k.Description)
	r := sim.Run(sim.Options{Seed: seed, Delays: d}, k.Main)
	det := detect.Predictive{}.Detect(r)
	fmt.Printf("execution (seed %d, D=%d): outcome=%s\n", seed, d, r.Outcome)
	if det.Found && r.Outcome.Buggy() {
		fmt.Printf("\nbug manifested — no prediction needed:\n\n%s\n", report.Detection(r, det))
		return nil
	}
	cands := detect.Predict(r.Trace)
	if len(cands) == 0 {
		fmt.Println("no predicted hazards in this trace")
		return nil
	}
	fmt.Printf("\npredicted hazards (%d):\n", len(cands))
	for _, c := range cands {
		fmt.Printf("  %s\n", c)
	}
	return nil
}

// minimizeBug runs the systematic explorer and the schedule minimizer on
// a kernel, printing the minimal yield placement that reproduces the bug.
func minimizeBug(id string, seed int64, maxYields, maxRuns int, prune, dpor bool) error {
	k, ok := goker.ByID(id)
	if !ok {
		return fmt.Errorf("unknown bug %q (try -list)", id)
	}
	mode := "systematic exploration"
	switch {
	case prune:
		mode = "HB-pruned systematic exploration"
	case dpor:
		mode = "DPOR over the Must-HB graph"
	}
	fmt.Printf("bug %s: %s (bound D=%d)...\n", k.ID, mode, maxYieldsOrDefault(maxYields))
	cfg := systematic.Config{
		Seed:      seed,
		MaxYields: maxYields,
		MaxRuns:   maxRuns,
	}
	var f *systematic.Finding
	switch {
	case prune:
		var st systematic.PruneStats
		f, st = systematic.ExplorePruned(k.Main, cfg)
		fmt.Printf("pruning: %s\n", st)
	case dpor:
		var st systematic.DPORStats
		f, st = systematic.ExploreDPOR(k.Main, cfg)
		fmt.Printf("dpor: %s\n", st)
	default:
		f = systematic.Explore(k.Main, cfg)
	}
	if f == nil {
		fmt.Println("no bug-triggering yield placement within the budget")
		return nil
	}
	fmt.Printf("found: %s\n", f)
	min := systematic.Minimize(k.Main, f)
	fmt.Printf("minimized: %s\n\n", min)
	r := sim.Run(sim.Options{
		Seed:        min.Seed,
		Pick:        sim.PickFIFO,
		PreemptProb: -1,
		YieldAt:     min.Yields,
	}, k.Main)
	fmt.Println(report.Detection(r, min.Detection))
	return nil
}

func maxYieldsOrDefault(d int) int {
	if d <= 0 {
		return 3
	}
	return d
}

func writeTrace(path string, t *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Encode(f)
}

func analyzePath(dir, instOut string) error {
	if instOut != "" {
		model, err := instrument.Dir(dir, instOut, instrument.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("instrumented %s -> %s (%d concurrency usages)\n", dir, instOut, model.Len())
		fmt.Println(model)
		return nil
	}
	model, err := cu.ExtractDir(dir)
	if err != nil {
		return err
	}
	fmt.Printf("concurrency usage model M of %s (%d entries):\n\n", dir, model.Len())
	fmt.Println(model)
	return nil
}
