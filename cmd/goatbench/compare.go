package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark-regression guard. A baseline file (BENCH_baseline.json) maps
// benchmark names to ns/op (and, for -benchmem reports, allocs/op);
// `goatbench -compare <bench-output>` parses a `go test -bench` text
// report, compares every benchmark present in both against the baseline,
// and exits non-zero when any regresses past the tolerance.
// `-update-baseline` rewrites the baseline from the report instead. The
// guard is advisory in CI (continue-on-error) — virtualised runners make
// absolute ns/op noisy — but it catches order-of-magnitude mistakes (an
// accidental O(n²), a lost fast path, a per-event allocation in a hot
// loop) before they land. Allocations are deterministic, so allocs/op is
// the sharper of the two signals despite sharing the tolerance.

type baseline struct {
	// Tolerance is the allowed fractional slowdown before the guard
	// fails, e.g. 0.25 = 25%. The -tolerance flag overrides it.
	Tolerance float64 `json:"tolerance"`
	// NsPerOp maps benchmark name (goos/goarch/-cpu suffix stripped) to
	// the baseline ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp maps benchmark name to the baseline allocs/op. Only
	// benchmarks run with -benchmem appear; absent entries are unguarded.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// benchReport is the parsed form of a `go test -bench` text report.
type benchReport struct {
	nsPerOp     map[string]float64
	allocsPerOp map[string]float64
}

// parseBenchOutput extracts name → ns/op (and allocs/op when present)
// from `go test -bench` output. Lines look like:
//
//	BenchmarkChannelPingPong-8   	   12345	     98765 ns/op	 2048 B/op	   32 allocs/op
//
// The -N cpu suffix is stripped so baselines transfer across machines.
func parseBenchOutput(path string) (*benchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &benchReport{
		nsPerOp:     map[string]float64{},
		allocsPerOp: map[string]float64{},
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var ns, allocs float64
		foundNs, foundAllocs := false, false
		for i := 2; i < len(fields); i++ {
			switch fields[i] {
			case "ns/op":
				if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
					ns, foundNs = v, true
				}
			case "allocs/op":
				if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
					allocs, foundAllocs = v, true
				}
			}
		}
		if !foundNs {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		rep.nsPerOp[name] = ns
		if foundAllocs {
			rep.allocsPerOp[name] = allocs
		}
	}
	return rep, sc.Err()
}

// runCompare implements -compare / -update-baseline. Returns the process
// exit code.
func runCompare(reportPath, baselinePath string, tolerance float64, update bool) int {
	got, err := parseBenchOutput(reportPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: reading bench report: %v\n", err)
		return 2
	}
	if len(got.nsPerOp) == 0 {
		fmt.Fprintf(os.Stderr, "goatbench: no benchmark results in %s\n", reportPath)
		return 2
	}

	if update {
		base := baseline{Tolerance: tolerance, NsPerOp: got.nsPerOp}
		if len(got.allocsPerOp) > 0 {
			base.AllocsPerOp = got.allocsPerOp
		}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "goatbench: %v\n", err)
			return 2
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "goatbench: writing baseline: %v\n", err)
			return 2
		}
		fmt.Printf("wrote %s with %d benchmark(s)\n", baselinePath, len(got.nsPerOp))
		return 0
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: reading baseline: %v\n", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: parsing baseline: %v\n", err)
		return 2
	}
	if tolerance <= 0 {
		tolerance = base.Tolerance
	}
	if tolerance <= 0 {
		tolerance = 0.25
	}

	regressed := 0
	compareMetric := func(metric string, want, now map[string]float64) {
		var names []string
		for name := range want {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("%-36s %14s %14s %9s\n", "benchmark", "base "+metric, "now "+metric, "delta")
		for _, name := range names {
			w := want[name]
			n, ok := now[name]
			if !ok {
				fmt.Printf("%-36s %14.0f %14s %9s\n", name, w, "-", "missing")
				continue
			}
			var delta float64
			switch {
			case w != 0:
				delta = (n - w) / w
			case n != 0:
				delta = 1 // zero-alloc baseline broken: any alloc regresses
			}
			mark := ""
			if delta > tolerance {
				mark = "  REGRESSED"
				regressed++
			}
			fmt.Printf("%-36s %14.0f %14.0f %+8.1f%%%s\n", name, w, n, delta*100, mark)
		}
		fmt.Println()
	}
	compareMetric("ns/op", base.NsPerOp, got.nsPerOp)
	if len(base.AllocsPerOp) > 0 {
		compareMetric("allocs/op", base.AllocsPerOp, got.allocsPerOp)
	}
	if regressed > 0 {
		fmt.Printf("%d benchmark metric(s) regressed more than %.0f%%\n", regressed, tolerance*100)
		return 1
	}
	fmt.Printf("all benchmarks within %.0f%% of baseline\n", tolerance*100)
	return 0
}
