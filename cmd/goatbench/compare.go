package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark-regression guard. A baseline file (BENCH_baseline.json) maps
// benchmark names to ns/op; `goatbench -compare <bench-output>` parses a
// `go test -bench` text report, compares every benchmark present in both
// against the baseline, and exits non-zero when any regresses past the
// tolerance. `-update-baseline` rewrites the baseline from the report
// instead. The guard is advisory in CI (continue-on-error) — virtualised
// runners make absolute ns/op noisy — but it catches order-of-magnitude
// mistakes (an accidental O(n²), a lost fast path) before they land.

type baseline struct {
	// Tolerance is the allowed fractional slowdown before the guard
	// fails, e.g. 0.25 = 25%. The -tolerance flag overrides it.
	Tolerance float64 `json:"tolerance"`
	// NsPerOp maps benchmark name (goos/goarch/-cpu suffix stripped) to
	// the baseline ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// parseBenchOutput extracts name → ns/op from `go test -bench` output.
// Lines look like:
//
//	BenchmarkChannelPingPong-8   	   12345	     98765 ns/op
//
// The -N cpu suffix is stripped so baselines transfer across machines.
func parseBenchOutput(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var ns float64
		found := false
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				ns, err = strconv.ParseFloat(fields[i-1], 64)
				if err == nil {
					found = true
				}
				break
			}
		}
		if !found {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = ns
	}
	return out, sc.Err()
}

// runCompare implements -compare / -update-baseline. Returns the process
// exit code.
func runCompare(reportPath, baselinePath string, tolerance float64, update bool) int {
	got, err := parseBenchOutput(reportPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: reading bench report: %v\n", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintf(os.Stderr, "goatbench: no benchmark results in %s\n", reportPath)
		return 2
	}

	if update {
		base := baseline{Tolerance: tolerance, NsPerOp: got}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "goatbench: %v\n", err)
			return 2
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "goatbench: writing baseline: %v\n", err)
			return 2
		}
		fmt.Printf("wrote %s with %d benchmark(s)\n", baselinePath, len(got))
		return 0
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: reading baseline: %v\n", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: parsing baseline: %v\n", err)
		return 2
	}
	if tolerance <= 0 {
		tolerance = base.Tolerance
	}
	if tolerance <= 0 {
		tolerance = 0.25
	}

	var names []string
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := 0
	fmt.Printf("%-32s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, name := range names {
		want := base.NsPerOp[name]
		now, ok := got[name]
		if !ok {
			fmt.Printf("%-32s %14.0f %14s %9s\n", name, want, "-", "missing")
			continue
		}
		delta := (now - want) / want
		mark := ""
		if delta > tolerance {
			mark = "  REGRESSED"
			regressed++
		}
		fmt.Printf("%-32s %14.0f %14.0f %+8.1f%%%s\n", name, want, now, delta*100, mark)
	}
	if regressed > 0 {
		fmt.Printf("\n%d benchmark(s) regressed more than %.0f%%\n", regressed, tolerance*100)
		return 1
	}
	fmt.Printf("\nall benchmarks within %.0f%% of baseline\n", tolerance*100)
	return 0
}
