package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleBench = `goos: linux
goarch: amd64
BenchmarkRunKernel-8         	    1000	   1200000 ns/op	  2048 B/op	      32 allocs/op
BenchmarkDetect/goat-16      	    5000	     40000 ns/op
BenchmarkNoUnits-8           	    9999	some garbage line
PASS
`

func TestParseBenchOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "bench.txt", sampleBench)
	rep, err := parseBenchOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	// The -N cpu suffix is stripped; subtests keep their slash name.
	if got := rep.nsPerOp["BenchmarkRunKernel"]; got != 1200000 {
		t.Errorf("ns/op[BenchmarkRunKernel] = %v, want 1200000", got)
	}
	if got := rep.nsPerOp["BenchmarkDetect/goat"]; got != 40000 {
		t.Errorf("ns/op[BenchmarkDetect/goat] = %v, want 40000", got)
	}
	if _, ok := rep.nsPerOp["BenchmarkNoUnits"]; ok {
		t.Error("line without ns/op must be skipped")
	}
	if got := rep.allocsPerOp["BenchmarkRunKernel"]; got != 32 {
		t.Errorf("allocs/op[BenchmarkRunKernel] = %v, want 32", got)
	}
	if _, ok := rep.allocsPerOp["BenchmarkDetect/goat"]; ok {
		t.Error("benchmark without -benchmem must have no allocs entry")
	}
}

func TestParseBenchOutputMissingFile(t *testing.T) {
	if _, err := parseBenchOutput(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Fatal("want error for missing report file")
	}
}

func baselineJSON(t *testing.T, b baseline) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCompareWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	report := writeFile(t, dir, "bench.txt",
		"BenchmarkA-8 100 110 ns/op\nBenchmarkB-8 100 90 ns/op\n")
	base := writeFile(t, dir, "base.json", baselineJSON(t, baseline{
		Tolerance: 0.25,
		NsPerOp:   map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100},
	}))
	if code := runCompare(report, base, 0, false); code != 0 {
		t.Fatalf("10%% slowdown within 25%% tolerance: exit %d, want 0", code)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	report := writeFile(t, dir, "bench.txt", "BenchmarkA-8 100 200 ns/op\n")
	base := writeFile(t, dir, "base.json", baselineJSON(t, baseline{
		Tolerance: 0.25,
		NsPerOp:   map[string]float64{"BenchmarkA": 100},
	}))
	if code := runCompare(report, base, 0, false); code != 1 {
		t.Fatalf("2x slowdown: exit %d, want 1", code)
	}
	// A wider explicit -tolerance overrides the baseline's own.
	if code := runCompare(report, base, 1.5, false); code != 0 {
		t.Fatalf("2x slowdown inside 150%% tolerance: exit %d, want 0", code)
	}
}

func TestCompareAllocsGuard(t *testing.T) {
	dir := t.TempDir()
	// ns/op improved, but allocations doubled — the alloc guard must fire.
	report := writeFile(t, dir, "bench.txt", "BenchmarkA-8 100 50 ns/op 512 B/op 64 allocs/op\n")
	base := writeFile(t, dir, "base.json", baselineJSON(t, baseline{
		Tolerance:   0.25,
		NsPerOp:     map[string]float64{"BenchmarkA": 100},
		AllocsPerOp: map[string]float64{"BenchmarkA": 32},
	}))
	if code := runCompare(report, base, 0, false); code != 1 {
		t.Fatalf("alloc doubling: exit %d, want 1", code)
	}
	// A zero-alloc baseline treats any allocation as a regression.
	base = writeFile(t, dir, "base0.json", baselineJSON(t, baseline{
		Tolerance:   0.25,
		NsPerOp:     map[string]float64{"BenchmarkA": 100},
		AllocsPerOp: map[string]float64{"BenchmarkA": 0},
	}))
	if code := runCompare(report, base, 0, false); code != 1 {
		t.Fatalf("broken zero-alloc baseline: exit %d, want 1", code)
	}
}

func TestCompareDefaultToleranceWhenUnset(t *testing.T) {
	dir := t.TempDir()
	report := writeFile(t, dir, "bench.txt", "BenchmarkA-8 100 120 ns/op\n")
	base := writeFile(t, dir, "base.json", baselineJSON(t, baseline{
		NsPerOp: map[string]float64{"BenchmarkA": 100}, // no tolerance field
	}))
	// 20% slowdown sits inside the implicit 25% default.
	if code := runCompare(report, base, 0, false); code != 0 {
		t.Fatalf("default tolerance: exit %d, want 0", code)
	}
}

func TestCompareErrorPaths(t *testing.T) {
	dir := t.TempDir()
	report := writeFile(t, dir, "bench.txt", "BenchmarkA-8 100 100 ns/op\n")
	empty := writeFile(t, dir, "empty.txt", "PASS\nok\n")
	malformed := writeFile(t, dir, "base.json", "{not json")

	if code := runCompare(report, filepath.Join(dir, "absent.json"), 0, false); code != 2 {
		t.Errorf("missing baseline: exit %d, want 2", code)
	}
	if code := runCompare(report, malformed, 0, false); code != 2 {
		t.Errorf("malformed baseline: exit %d, want 2", code)
	}
	if code := runCompare(empty, malformed, 0, false); code != 2 {
		t.Errorf("report without benchmarks: exit %d, want 2", code)
	}
	if code := runCompare(filepath.Join(dir, "absent.txt"), malformed, 0, false); code != 2 {
		t.Errorf("missing report: exit %d, want 2", code)
	}
}

func TestUpdateBaselineRoundTrips(t *testing.T) {
	dir := t.TempDir()
	report := writeFile(t, dir, "bench.txt",
		"BenchmarkA-8 100 100 ns/op 0 B/op 0 allocs/op\nBenchmarkB-8 100 250 ns/op\n")
	basePath := filepath.Join(dir, "base.json")
	if code := runCompare(report, basePath, 0.3, true); code != 0 {
		t.Fatalf("update-baseline: exit %d, want 0", code)
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("written baseline is not valid JSON: %v", err)
	}
	if base.Tolerance != 0.3 || base.NsPerOp["BenchmarkB"] != 250 || base.AllocsPerOp["BenchmarkA"] != 0 {
		t.Fatalf("baseline round-trip mismatch: %+v", base)
	}
	// The freshly written baseline must compare clean against its own report.
	if code := runCompare(report, basePath, 0, false); code != 0 {
		t.Fatalf("self-comparison after update: exit %d, want 0", code)
	}
}
