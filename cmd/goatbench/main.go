// Command goatbench regenerates every table and figure of the paper's
// evaluation section from the 68-kernel GoKer suite:
//
//	goatbench -exp table1            # coverage requirement catalogue
//	goatbench -exp table3            # CU/coverage table of listing 1
//	goatbench -exp table4 -freq 1000 # the full detector matrix
//	goatbench -exp fig2              # trials-to-detect histogram (D=0)
//	goatbench -exp fig4              # detections per tool by symptom
//	goatbench -exp fig5              # iteration-count distribution
//	goatbench -exp fig6 -iters 100   # coverage growth case studies
//	goatbench -exp dpor -freq 400    # DPOR/pruned/explore equivalence table
//	goatbench -exp all
//
// It also guards against performance regressions: pipe `go test -bench`
// output into a file and compare it against the checked-in baseline
// (see scripts/benchguard.sh):
//
//	goatbench -compare bench.txt                     # fail on >25% slowdown
//	goatbench -compare bench.txt -update-baseline    # refresh the baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"goat/internal/cover"
	"goat/internal/fault"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/harness"
	"goat/internal/report"
	"goat/internal/sim"
	"goat/internal/systematic"
	"goat/internal/telemetry"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|table3|table4|fig2|fig4|fig5|fig6|yields|suite|dpor|all")
		freq      = flag.Int("freq", 1000, "per-(bug,tool) execution budget")
		iters     = flag.Int("iters", 100, "fig6 iterations")
		seed      = flag.Int64("seed", 0, "base RNG seed")
		parallel  = flag.Int("parallel", 4, "concurrent bug rows in the table4 campaign")
		faultSpec = flag.String("faults", "", `fault-injection spec for the table4 campaign, e.g. "stall=2,cancel=1"`)
		budget    = flag.Duration("cellbudget", 0, "wall-clock watchdog per table4 cell (0 = default 30s)")
		retries   = flag.Int("retries", 0, "fresh-seed retries for hung table4 cells (0 = default 1, negative = none)")
		predict   = flag.Bool("predict", false, "add the predictive-detector POTENTIAL column to the table4 campaign")
		bugs      = flag.String("bugs", "", "comma-separated kernel IDs restricting the table4 campaign (default: full suite)")

		telemetryOn = flag.Bool("telemetry", false, "enable the metrics registry and live progress lines (stderr) for the campaign")
		metricsOut  = flag.String("metrics", "", "with -telemetry: dump the final metrics snapshot as JSON to this file")
		flightRec   = flag.String("flightrec", "", `write failed cells' flight-recorder dumps (Chrome JSON) into this directory, e.g. "results"`)

		compare    = flag.String("compare", "", "path to `go test -bench` output to compare against the baseline")
		benchfile  = flag.String("benchfile", "BENCH_baseline.json", "benchmark baseline file")
		tolerance  = flag.Float64("tolerance", 0, "allowed fractional slowdown (0 = baseline's own, default 0.25)")
		updateBase = flag.Bool("update-baseline", false, "rewrite the baseline from the -compare report")
	)
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, *benchfile, *tolerance, *updateBase))
	}

	faults, err := fault.ParseSpec(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: bad -faults spec: %v\n", err)
		os.Exit(1)
	}

	kernels, err := selectKernels(*bugs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: %v\n", err)
		os.Exit(1)
	}

	if *metricsOut != "" && !*telemetryOn {
		fmt.Fprintln(os.Stderr, "goatbench: -metrics requires -telemetry")
		os.Exit(1)
	}
	if *telemetryOn {
		telemetry.Enable()
		defer writeMetrics(*metricsOut)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==================== %s ====================\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "goatbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	// SIGINT cancels the campaign at the next run boundary; the partial
	// Table IV (canceled cells annotated CANC!) and its CampaignHealth
	// still flush so the operator keeps everything measured so far.
	ctx, cancelCampaign := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelCampaign()

	var tab *harness.TableIV
	table4 := func() *harness.TableIV {
		if tab == nil {
			cfg := harness.Config{
				MaxExecs:     *freq,
				BaseSeed:     *seed,
				Parallel:     *parallel,
				Faults:       faults,
				CellBudget:   *budget,
				Retries:      *retries,
				Kernels:      kernels,
				FlightRecDir: *flightRec,
				Ctx:          ctx,
			}
			if *predict {
				cfg.Tools = harness.ToolsWithPredict()
			}
			if *telemetryOn {
				nk := len(cfg.Kernels)
				if nk == 0 {
					nk = len(goker.GoKer())
				}
				nt := len(cfg.Tools)
				if nt == 0 {
					nt = len(harness.DefaultTools())
				}
				end := telemetry.Default.Span("campaign", "table4")
				progress := telemetry.NewProgress(nk * nt)
				cfg.OnCell = func(c harness.Cell) { progress.CellDone(c.Found) }
				stop := progress.Start(os.Stderr, 5*time.Second)
				defer stop()
				defer end()
			}
			tab = harness.RunTableIV(cfg)
		}
		return tab
	}

	run("table1", func() error {
		fmt.Println(cover.CatalogueString())
		return nil
	})
	run("table3", func() error { return table3(*seed) })
	run("table4", func() error {
		t := table4()
		fmt.Println(t)
		fmt.Println(report.CampaignHealth(t))
		if ctx.Err() != nil {
			return fmt.Errorf("campaign interrupted — partial results above")
		}
		return nil
	})
	run("fig2", func() error {
		fmt.Println(harness.RunFigure2(table4(), "goat-D0"))
		return nil
	})
	run("fig4", func() error {
		fmt.Println(harness.RunFigure4(table4()))
		return nil
	})
	run("fig5", func() error {
		fmt.Println(harness.RunFigure5(table4()))
		return nil
	})
	run("fig6", func() error { return fig6(*iters, *seed) })
	run("yields", func() error { return minimalYields(*seed) })
	run("dpor", func() error { return dporEquivalence(kernels, *seed, *freq) })
	run("suite", func() error { return suiteComposition() })
}

// selectKernels resolves the -bugs flag to a kernel subset (nil selects
// the full suite).
func selectKernels(spec string) ([]goker.Kernel, error) {
	if spec == "" {
		return nil, nil
	}
	var out []goker.Kernel
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		k, ok := goker.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown bug %q in -bugs (try goat -list)", id)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-bugs selected no kernels")
	}
	return out, nil
}

// writeMetrics dumps the default registry's snapshot as JSON.
func writeMetrics(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: writing metrics: %v\n", err)
		return
	}
	defer f.Close()
	if err := telemetry.Default.Snapshot().WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "goatbench: writing metrics: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "telemetry: metrics written to %s\n", path)
}

// suiteComposition prints the GoBench-style taxonomy of the 68-kernel
// benchmark: bugs per project broken down by root cause, plus rarity.
func suiteComposition() error {
	causes := []goker.Cause{goker.ResourceDeadlock, goker.CommunicationDeadlock, goker.MixedDeadlock}
	type row struct {
		counts map[goker.Cause]int
		rare   int
		total  int
	}
	rows := map[string]*row{}
	for _, k := range goker.All() {
		r := rows[k.Project]
		if r == nil {
			r = &row{counts: map[goker.Cause]int{}}
			rows[k.Project] = r
		}
		r.counts[k.Cause]++
		r.total++
		if k.Rare {
			r.rare++
		}
	}
	fmt.Printf("%-14s %10s %15s %8s %6s %7s\n", "project", "resource", "communication", "mixed", "rare", "total")
	grand := &row{counts: map[goker.Cause]int{}}
	for _, p := range goker.Projects() {
		r := rows[p]
		fmt.Printf("%-14s %10d %15d %8d %6d %7d\n",
			p, r.counts[causes[0]], r.counts[causes[1]], r.counts[causes[2]], r.rare, r.total)
		for _, c := range causes {
			grand.counts[c] += r.counts[c]
		}
		grand.rare += r.rare
		grand.total += r.total
	}
	fmt.Printf("%-14s %10d %15d %8d %6d %7d\n",
		"total", grand.counts[causes[0]], grand.counts[causes[1]], grand.counts[causes[2]], grand.rare, grand.total)
	return nil
}

// minimalYields quantifies the abstract's claim — "detects these bugs
// with less than three yields" — by systematic exploration + schedule
// minimization over every rare kernel: the table reports the smallest
// yield placement that deterministically reproduces each bug.
func minimalYields(seed int64) error {
	fmt.Printf("%-22s %-8s %-14s %s\n", "bug", "yields", "at ops", "runs to find")
	total, found, underThree := 0, 0, 0
	for _, k := range goker.All() {
		if !k.Rare {
			continue
		}
		total++
		var best *systematic.Finding
		for s := seed; s < seed+5 && best == nil; s++ {
			if f := systematic.Explore(k.Main, systematic.Config{Seed: s, MaxRuns: 3000}); f != nil {
				best = systematic.Minimize(k.Main, f)
			}
		}
		if best == nil {
			fmt.Printf("%-22s %-8s %-14s %s\n", k.ID, "-", "-", "not found (systematic budget)")
			continue
		}
		found++
		if len(best.Yields) < 3 {
			underThree++
		}
		fmt.Printf("%-22s %-8d %-14s %d\n", k.ID, len(best.Yields), fmt.Sprint(best.Yields), best.Runs)
	}
	fmt.Printf("\n%d/%d rare bugs reproduced systematically; %d/%d with fewer than three yields\n",
		found, total, underThree, found)
	return nil
}

// dporEquivalence runs the three systematic searches side by side and
// fails on any disagreement — the CLI form of the equivalence battery in
// internal/systematic, used by CI as a smoke gate over a kernel matrix
// (-bugs) and by hand over the full suite.
func dporEquivalence(kernels []goker.Kernel, seed int64, freq int) error {
	cfg := systematic.Config{Seed: seed, MaxRuns: freq}
	cmp := harness.RunDPORCompare(kernels, cfg)
	fmt.Print(cmp)
	if mm := cmp.Mismatches(); len(mm) > 0 {
		return fmt.Errorf("%d kernel(s) where the searches disagree", len(mm))
	}
	return nil
}

// table3 reproduces the paper's Table III on the listing-1 kernel: the
// dynamically discovered CU coverage across two executions plus the
// accumulated overall model.
func table3(seed int64) error {
	k, ok := goker.ByID("moby_28462")
	if !ok {
		return fmt.Errorf("moby_28462 missing")
	}
	model := cover.NewModel(nil)
	for runIdx := 0; runIdx < 2; runIdx++ {
		r := goker.Run(k, sim.Options{Seed: seed + int64(runIdx), Delays: 2})
		tree, err := gtree.Build(r.Trace)
		if err != nil {
			return err
		}
		st := model.AddRun(tree)
		fmt.Printf("run #%d: outcome=%s covered %d/%d (%.1f%%)\n",
			runIdx+1, r.Outcome, st.Covered, st.Total, st.Percent)
	}
	fmt.Println()
	fmt.Println(report.Table3(model))
	return nil
}

// fig6 reproduces both coverage case studies (etcd_7443 / Fig. 6a and
// kubernetes_11298 / Fig. 6b) for D in {0, 1, 2, 4}.
func fig6(iters int, seed int64) error {
	ds := []int{0, 1, 2, 4}
	for _, bug := range []string{"etcd_7443", "kubernetes_11298"} {
		series, err := harness.RunFigure6(bug, iters, ds, seed)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFigure6(bug, series, ds))
	}
	return nil
}
