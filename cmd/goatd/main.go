// Command goatd is the distributed campaign fabric's process pair:
//
//	goatd serve -freq 1000 -journal campaign.jsonl   # coordinator
//	goatd work  -coord http://127.0.0.1:7780         # worker (run N of these)
//
// The coordinator shards the (kernel × tool) Table IV matrix into work
// units and leases them to workers over HTTP. Workers may crash, hang, or
// join late at any point: expired leases are reassigned with backoff,
// repeat offenders are quarantined as poison cells, and every completed
// cell is checkpointed to the journal so a restarted coordinator (same
// flags, same journal) resumes without re-running anything. When the
// matrix is merged, the coordinator prints the same Table IV and campaign
// health report the single-process harness would, plus the per-worker
// shard summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"goat/internal/fabric"
	"goat/internal/fault"
	"goat/internal/goker"
	"goat/internal/harness"
	"goat/internal/obs"
	"goat/internal/report"
	"goat/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "work":
		err = work(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "goatd: unknown mode %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "goatd: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  goatd serve [flags]   start a campaign coordinator (see goatd serve -h)
  goatd work  [flags]   start a worker against a coordinator (see goatd work -h)`)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("goatd serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7780", "listen address for the fabric protocol")
		freq       = fs.Int("freq", 1000, "per-(bug,tool) execution budget")
		seed       = fs.Int64("seed", 0, "base RNG seed")
		bugs       = fs.String("bugs", "", "comma-separated kernel IDs restricting the campaign (default: full suite)")
		faultSpec  = fs.String("faults", "", `fault-injection spec, e.g. "stall=2,cancel=1"`)
		budget     = fs.Duration("cellbudget", 0, "wall-clock watchdog per cell (0 = default 30s)")
		retries    = fs.Int("retries", 0, "fresh-seed retries for hung cells (0 = default 1, negative = none)")
		predict    = fs.Bool("predict", false, "add the predictive-detector POTENTIAL column")
		journal    = fs.String("journal", "", "checkpoint journal path; reuse it to resume an interrupted campaign")
		flightRec  = fs.String("flightrec", "", "archive workers' flight-recorder dumps of failed cells into this directory")
		leaseTTL   = fs.Duration("lease-ttl", 0, "work-unit lease duration (0 = derived from the cell budget)")
		maxAssigns = fs.Int("max-assigns", 0, "lease expiries before a cell is quarantined as poison (0 = default 3)")
		telem      = fs.Bool("telemetry", false, "live progress lines with a per-worker breakdown (stderr)")
		obsAddr    = fs.String("obs", "", "mount the observability endpoint (/metrics, /healthz) on this address")
	)
	fs.Parse(args)

	if *obsAddr != "" {
		telemetry.Enable()
		osrv := &obs.Server{}
		oaddr, err := osrv.Start(*obsAddr)
		if err != nil {
			return err
		}
		defer osrv.Close()
		fmt.Fprintf(os.Stderr, "goatd: observability endpoint on http://%s\n", oaddr)
	}

	faults, err := fault.ParseSpec(*faultSpec)
	if err != nil {
		return fmt.Errorf("bad -faults spec: %w", err)
	}
	kernels, err := selectKernels(*bugs)
	if err != nil {
		return err
	}
	hcfg := harness.Config{
		MaxExecs:     *freq,
		BaseSeed:     *seed,
		Faults:       faults,
		CellBudget:   *budget,
		Retries:      *retries,
		Kernels:      kernels,
		FlightRecDir: *flightRec,
	}
	if *predict {
		hcfg.Tools = harness.ToolsWithPredict()
	}
	job, err := fabric.NewJob(hcfg)
	if err != nil {
		return err
	}

	var progress *telemetry.Progress
	if *telem {
		telemetry.Enable()
		progress = telemetry.NewProgress(job.Cells())
	}
	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Job:          job,
		JournalPath:  *journal,
		FlightRecDir: *flightRec,
		LeaseTTL:     *leaseTTL,
		MaxAssigns:   *maxAssigns,
		OnCell: func(worker string, c harness.Cell) {
			if progress == nil {
				return
			}
			if worker == "" {
				worker = "(coordinator)"
			}
			progress.CellDoneBy(worker, c.Found)
		},
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	if resumed := coord.Snapshot().Done; resumed > 0 {
		fmt.Fprintf(os.Stderr, "goatd: resumed %d/%d cells from %s\n", resumed, job.Cells(), *journal)
		for i := 0; i < resumed && progress != nil; i++ {
			progress.CellDoneBy("(journal)", false)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "goatd: serving %d cells (%d bugs × %d tools) on http://%s\n",
		job.Cells(), len(job.Bugs), len(job.Tools), ln.Addr())

	if progress != nil {
		stop := progress.Start(os.Stderr, 5*time.Second)
		defer stop()
	}

	// SIGINT flushes the partial table; the ticker drives lease sweeps so
	// a fleet of dead workers cannot stall the campaign's bookkeeping.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	interrupted := false
loop:
	for {
		select {
		case <-coord.Done():
			break loop
		case <-ctx.Done():
			interrupted = true
			break loop
		case <-tick.C:
			coord.Snapshot()
		}
	}

	tab := coord.Table()
	fmt.Println(tab)
	fmt.Println(report.CampaignHealth(tab))
	fmt.Print(coord.WorkerSummary())
	if interrupted {
		if *journal != "" {
			fmt.Fprintf(os.Stderr, "goatd: interrupted — rerun with -journal %s to resume\n", *journal)
		}
		return fmt.Errorf("campaign interrupted — partial results above")
	}
	return nil
}

func work(args []string) error {
	fs := flag.NewFlagSet("goatd work", flag.ExitOnError)
	var (
		coord     = fs.String("coord", "http://127.0.0.1:7780", "coordinator base URL")
		name      = fs.String("name", "", "worker name in leases and shard summaries (default: host:pid)")
		flightDir = fs.String("flightdir", "", "local scratch directory for flight-recorder dumps (default: a temp dir)")
		telem     = fs.Bool("telemetry", false, "enable the metrics registry for this worker")
		obsAddr   = fs.String("obs", "", "mount the observability endpoint (/metrics, /healthz) on this address")
	)
	fs.Parse(args)

	if *obsAddr != "" {
		telemetry.Enable()
		osrv := &obs.Server{}
		oaddr, err := osrv.Start(*obsAddr)
		if err != nil {
			return err
		}
		defer osrv.Close()
		fmt.Fprintf(os.Stderr, "goatd: observability endpoint on http://%s\n", oaddr)
	}

	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if *telem {
		telemetry.Enable()
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	w := &fabric.Worker{
		Coord:     *coord,
		Name:      *name,
		FlightDir: *flightDir,
		OnCell: func(u fabric.Unit, c harness.Cell) {
			fmt.Fprintf(os.Stderr, "goatd[%s]: %s → %s\n", *name, u, c)
		},
	}
	fmt.Fprintf(os.Stderr, "goatd[%s]: working for %s\n", *name, *coord)
	err := w.Run(ctx)
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "goatd[%s]: campaign complete\n", *name)
		return nil
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "goatd[%s]: interrupted; in-flight lease will be reassigned\n", *name)
		return nil
	default:
		return err
	}
}

// selectKernels resolves the -bugs flag to a kernel subset (nil selects
// the full suite).
func selectKernels(spec string) ([]goker.Kernel, error) {
	if spec == "" {
		return nil, nil
	}
	var out []goker.Kernel
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		k, ok := goker.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown bug %q in -bugs (try goat -list)", id)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-bugs selected no kernels")
	}
	return out, nil
}
