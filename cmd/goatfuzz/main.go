// Command goatfuzz runs the differential kernel fuzzer: it generates
// random concurrent kernels with constructed ground truth, runs each one
// under GoAT (D = 0..dmax) and the three baseline detectors across a
// seed sweep, cross-checks every verdict against the planted oracle and
// the wait-for-graph ground truth, and auto-shrinks every disagreement
// to a minimal reproducer.
//
//	goatfuzz -n 200 -seed 1             # differential smoke run
//	goatfuzz -n 5000 -dmax 3 -sweep 5   # a deeper campaign
//	goatfuzz -n 1000 -emit repro/       # write reproducer sources
//
// Service mode swaps the bug-kernel generator for service-shaped
// workloads (request loops, worker pools, pipelines) and checks the
// windowed slow-leak detector against each kernel's planted oracle;
// soak mode runs one long leaky/clean pair instead of a sweep:
//
//	goatfuzz -service 200 -seed 1       # service differential smoke
//	goatfuzz -soak 100000 -dump out/    # 100k-request soak pair
//
// The exit status is 1 when the campaign found at least one
// disagreement, so the command slots directly into CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"goat/internal/kernelgen"
	"goat/internal/obs"
	"goat/internal/profile"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// obsTrace, when -obs mounts the live endpoint, receives the most
// recent evidence trace so /profile/* folds something real.
var obsTrace *obs.LatestTrace

func main() {
	var (
		n        = flag.Int("n", 200, "number of kernels to generate")
		seed     = flag.Int64("seed", 1, "campaign seed (decision strings and schedules)")
		buggy    = flag.Float64("buggy", 0.5, "fraction of kernels with a planted bug")
		dmax     = flag.Int("dmax", 3, "largest GoAT delay bound swept (D = 0..dmax)")
		sweep    = flag.Int("sweep", 3, "schedule seeds per (kernel, delay bound)")
		noshrink = flag.Bool("noshrink", false, "report findings without minimizing them")
		maxFind  = flag.Int("maxfindings", 0, "stop after this many findings (0 = no limit)")
		emit     = flag.String("emit", "", "directory to write reproducer sources into")
		service  = flag.Int("service", 0, "run a service campaign of this many kernels instead")
		soak     = flag.Int("soak", 0, "run one leaky/clean service soak pair at this request count")
		requests = flag.Int("requests", 0, "service mode: per-kernel request count override")
		dump     = flag.String("dump", "", "soak mode: directory for flight-recorder dumps on failure")
		obsAddr  = flag.String("obs", "", "mount the observability endpoint (/metrics, /profile/*, /healthz) on this address")
	)
	flag.Parse()
	if *obsAddr != "" {
		telemetry.Enable()
		obsTrace = &obs.LatestTrace{}
		srv := &obs.Server{Profiles: obsTrace.Set}
		addr, err := srv.Start(*obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "goatfuzz: %v\n", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "goatfuzz: observability endpoint on http://%s\n", addr)
	}
	if *soak > 0 {
		os.Exit(runSoak(*soak, *seed, *dump))
	}
	if *service > 0 {
		rep := kernelgen.RunService(kernelgen.ServiceConfig{
			N: *service, Seed: *seed, LeakyFrac: *buggy, Requests: *requests,
		})
		fmt.Println(rep)
		if len(rep.Findings) > 0 {
			os.Exit(1)
		}
		return
	}
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "goatfuzz: -n must be positive")
		os.Exit(2)
	}
	if *buggy < 0 || *buggy > 1 {
		fmt.Fprintln(os.Stderr, "goatfuzz: -buggy must be in [0,1]")
		os.Exit(2)
	}

	rep := kernelgen.RunDiff(kernelgen.DiffConfig{
		N:           *n,
		Seed:        *seed,
		BuggyFrac:   *buggy,
		DMax:        *dmax,
		Sweep:       *sweep,
		NoShrink:    *noshrink,
		MaxFindings: *maxFind,
	})
	fmt.Println(rep)

	if *emit != "" && len(rep.Findings) > 0 {
		if err := emitFindings(*emit, rep.Findings); err != nil {
			fmt.Fprintf(os.Stderr, "goatfuzz: %v\n", err)
			os.Exit(2)
		}
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// emitFindings writes each reproducer as a standalone Go source file plus
// its decision string, the artifacts a promotion into the goker registry
// starts from (see EXPERIMENTS.md, "Fuzzing the analyzers").
func emitFindings(dir string, findings []*kernelgen.Finding) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range findings {
		k := f.ReproKernel()
		src := f.Prog.GoSource(k.ID)
		path := filepath.Join(dir, k.ID+".go")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return err
		}
		meta := fmt.Sprintf("id: %s\ntool: %s\nrule: %s\nseed: %d\ndelays: %d\ndecision: %x\ndetail: %s\n",
			k.ID, f.Tool, f.Rule, f.Seed, f.Delays, f.Shrunk, f.Detail)
		if err := os.WriteFile(filepath.Join(dir, k.ID+".finding"), []byte(meta), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// runSoak runs the leaky/clean service soak pair, reports both
// verdicts, and on failure writes each run's flight-recorder window as
// Chrome JSON under dumpDir for post-mortem.
func runSoak(requests int, seed int64, dumpDir string) int {
	rep := kernelgen.RunServiceSoak(requests, seed)
	if obsTrace != nil && rep.LeakyRing != nil {
		// Publish the leaky run's flight-recorder window: a scrape after
		// the soak sees the strands' block profile.
		obsTrace.Store(rep.LeakyRing.Snapshot(), profile.Options{})
	}
	fmt.Printf("soak: %d requests in %v\n", rep.Requests, rep.Elapsed)
	fmt.Printf("leaky: %s (%s)\n", rep.LeakyVerdict.Verdict, rep.LeakyVerdict.Detail)
	fmt.Printf("leaky latency: %s\n", rep.LeakyLatency)
	fmt.Printf("clean: %s\n", rep.CleanVerdict.Verdict)
	fmt.Printf("clean latency: %s\n", rep.CleanLatency)
	err := rep.OK()
	if err == nil {
		return 0
	}
	fmt.Fprintf(os.Stderr, "goatfuzz: soak failed: %v\n", err)
	if dumpDir != "" {
		dumpRing(dumpDir, "soak-leaky.json", rep.LeakyRing)
		dumpRing(dumpDir, "soak-clean.json", rep.CleanRing)
	}
	return 1
}

// dumpRing writes a flight-recorder window as Chrome trace JSON.
func dumpRing(dir, name string, ring *trace.RingSink) {
	if ring == nil || ring.Len() == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "goatfuzz: %v\n", err)
		return
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goatfuzz: %v\n", err)
		return
	}
	defer f.Close()
	if err := ring.Snapshot().EncodeChrome(f, trace.ChromeOptions{Dropped: ring.Dropped()}); err != nil {
		fmt.Fprintf(os.Stderr, "goatfuzz: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "goatfuzz: flight-recorder dump written to %s\n", path)
}
