// Command goatfuzz runs the differential kernel fuzzer: it generates
// random concurrent kernels with constructed ground truth, runs each one
// under GoAT (D = 0..dmax) and the three baseline detectors across a
// seed sweep, cross-checks every verdict against the planted oracle and
// the wait-for-graph ground truth, and auto-shrinks every disagreement
// to a minimal reproducer.
//
//	goatfuzz -n 200 -seed 1             # differential smoke run
//	goatfuzz -n 5000 -dmax 3 -sweep 5   # a deeper campaign
//	goatfuzz -n 1000 -emit repro/       # write reproducer sources
//
// The exit status is 1 when the campaign found at least one
// disagreement, so the command slots directly into CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"goat/internal/kernelgen"
)

func main() {
	var (
		n        = flag.Int("n", 200, "number of kernels to generate")
		seed     = flag.Int64("seed", 1, "campaign seed (decision strings and schedules)")
		buggy    = flag.Float64("buggy", 0.5, "fraction of kernels with a planted bug")
		dmax     = flag.Int("dmax", 3, "largest GoAT delay bound swept (D = 0..dmax)")
		sweep    = flag.Int("sweep", 3, "schedule seeds per (kernel, delay bound)")
		noshrink = flag.Bool("noshrink", false, "report findings without minimizing them")
		maxFind  = flag.Int("maxfindings", 0, "stop after this many findings (0 = no limit)")
		emit     = flag.String("emit", "", "directory to write reproducer sources into")
	)
	flag.Parse()
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "goatfuzz: -n must be positive")
		os.Exit(2)
	}
	if *buggy < 0 || *buggy > 1 {
		fmt.Fprintln(os.Stderr, "goatfuzz: -buggy must be in [0,1]")
		os.Exit(2)
	}

	rep := kernelgen.RunDiff(kernelgen.DiffConfig{
		N:           *n,
		Seed:        *seed,
		BuggyFrac:   *buggy,
		DMax:        *dmax,
		Sweep:       *sweep,
		NoShrink:    *noshrink,
		MaxFindings: *maxFind,
	})
	fmt.Println(rep)

	if *emit != "" && len(rep.Findings) > 0 {
		if err := emitFindings(*emit, rep.Findings); err != nil {
			fmt.Fprintf(os.Stderr, "goatfuzz: %v\n", err)
			os.Exit(2)
		}
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// emitFindings writes each reproducer as a standalone Go source file plus
// its decision string, the artifacts a promotion into the goker registry
// starts from (see EXPERIMENTS.md, "Fuzzing the analyzers").
func emitFindings(dir string, findings []*kernelgen.Finding) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range findings {
		k := f.ReproKernel()
		src := f.Prog.GoSource(k.ID)
		path := filepath.Join(dir, k.ID+".go")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return err
		}
		meta := fmt.Sprintf("id: %s\ntool: %s\nrule: %s\nseed: %d\ndelays: %d\ndecision: %x\ndetail: %s\n",
			k.ID, f.Tool, f.Rule, f.Seed, f.Delays, f.Shrunk, f.Detail)
		if err := os.WriteFile(filepath.Join(dir, k.ID+".finding"), []byte(meta), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
