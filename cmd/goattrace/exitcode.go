package main

// The exit-code contract every goattrace subcommand follows. Analysis
// commands (-ingest, -diff) distinguish "ran clean" from "ran and found
// something", so CI gates on the exit status without parsing output;
// operational failures never masquerade as findings.
const (
	exitClean    = 0 // the command ran and found nothing to flag
	exitFindings = 1 // findings: stranded goroutines (-ingest), a regression (-diff)
	exitUsage    = 2 // bad flags or arguments
	exitError    = 2 // I/O errors, unreadable or corrupt traces
)

// exitForFindings maps an analysis outcome to its exit code.
func exitForFindings(found bool) int {
	if found {
		return exitFindings
	}
	return exitClean
}
