package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExitForFindings(t *testing.T) {
	if exitForFindings(true) != exitFindings || exitForFindings(false) != exitClean {
		t.Fatal("exitForFindings does not follow the contract")
	}
}

// TestExitCodeContract runs the built binary against the checked-in
// captures and pins the documented exit codes: 0 clean, 1 findings,
// 2 usage errors.
func TestExitCodeContract(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := filepath.Join(t.TempDir(), "goattrace")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	leaky := "../../internal/ingest/testdata/leakypool.trace"
	clean := "../../internal/ingest/testdata/cleanpool.trace"

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"ingest-clean", []string{"-ingest", clean}, exitClean},
		{"ingest-findings", []string{"-ingest", leaky}, exitFindings},
		{"diff-clean", []string{"-diff", leaky, leaky}, exitClean},
		{"diff-regressed", []string{"-diff", clean, leaky}, exitFindings},
		{"diff-usage", []string{"-diff", leaky}, exitUsage},
		{"missing-file", []string{"-ingest", "no-such.trace"}, exitError},
		{"no-command", nil, exitUsage},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command(bin, c.args...).CombinedOutput()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if code != c.want {
				t.Fatalf("goattrace %v exited %d, want %d\n%s", c.args, code, c.want, out)
			}
		})
	}
}
