// Command goattrace inspects saved execution concurrency traces (the
// .ect files written by `goat -bug ... -traceout`):
//
//	goattrace -dump trace.ect             # every event
//	goattrace -dump trace.ect -g 3        # one goroutine's projection
//	goattrace -dump trace.ect -cat Chan   # one category
//	goattrace -stats trace.ect            # per-type tallies
//	goattrace -profile trace.ect          # blocking/contention profile
//	goattrace -tree trace.ect             # goroutine tree + Procedure 1
//	goattrace -chrome trace.ect -o t.json # Chrome/Perfetto timeline export
//
// Native runtime/trace captures (go test -trace, runtime/trace.Start)
// are ingested transparently — every command above accepts them — and
// two commands exist specifically for real-binary analysis:
//
//	goattrace -ingest app.trace             # window census + stranded report
//	goattrace -diff old.trace new.trace     # CI gate: newly stranded signatures
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"goat/internal/cu"
	"goat/internal/gtree"
	"goat/internal/ingest"
	"goat/internal/trace"
)

func main() {
	var (
		dump    = flag.String("dump", "", "print the events of a trace file")
		stats   = flag.String("stats", "", "print event tallies of a trace file")
		profile = flag.String("profile", "", "print the blocking profile of a trace file")
		tree    = flag.String("tree", "", "print the goroutine tree + deadlock check")
		chrome  = flag.String("chrome", "", "export a trace file as Chrome trace-event JSON (load in ui.perfetto.dev)")
		outPath = flag.String("o", "", "with -chrome: output file (default stdout)")
		visits  = flag.String("visits", "", "print a goatrt native visit log (GOAT_TRACE output)")
		model   = flag.String("model", "", "with -visits: instrumented-source dir for executed-CU coverage")
		ingestP = flag.String("ingest", "", "ingest a native runtime/trace capture: window census + stranded report")
		diffP   = flag.Bool("diff", false, "compare two captures (old new): exit 1 when new strands goroutines old did not")
		workers = flag.Bool("workers", false, "with -ingest/-diff: report long-lived-worker-shaped goroutines too")
		gFilter = flag.Int64("g", 0, "with -dump: restrict to one goroutine")
		cat     = flag.String("cat", "", "with -dump: restrict to one category prefix (Goroutine, Channel, Sync, Select, Timer, Shared)")
		asJSON  = flag.Bool("json", false, "with -dump: newline-delimited JSON instead of text")
	)
	flag.Parse()

	switch {
	case *dump != "":
		withTrace(*dump, func(t *trace.Trace) error {
			out := t
			if *gFilter != 0 {
				out = out.Filter(func(e trace.Event) bool { return e.G == trace.GoID(*gFilter) })
			}
			if *cat != "" {
				out = out.Filter(func(e trace.Event) bool {
					return strings.HasPrefix(trace.CategoryOf(e.Type).String(), *cat)
				})
			}
			if *asJSON {
				return out.EncodeJSON(os.Stdout)
			}
			fmt.Print(out)
			return nil
		})
	case *stats != "":
		withTrace(*stats, func(t *trace.Trace) error {
			gs := t.Goroutines()
			fmt.Printf("%d events, %d goroutines\n\n", t.Len(), len(gs))
			counts := t.CountByType()
			for ty := trace.Type(1); ; ty++ {
				if !ty.Valid() {
					break
				}
				if counts[ty] > 0 {
					fmt.Printf("%-14s %6d\n", ty, counts[ty])
				}
			}
			// Per-goroutine tallies in sorted-ID order: ByGoroutine is a
			// bare map, so ranging over it directly would flake.
			byG := t.ByGoroutine()
			fmt.Println()
			for _, g := range gs {
				events := byG[g]
				line := fmt.Sprintf("g%-5d %6d event(s)", g, len(events))
				if len(events) > 0 {
					last := events[len(events)-1]
					line += fmt.Sprintf("  last=%s", last.Type)
					if last.Type == trace.EvGoBlock {
						line += fmt.Sprintf(" (%s @%s:%d)", last.BlockReason(), last.File, last.Line)
					}
				}
				fmt.Println(line)
			}
			return nil
		})
	case *profile != "":
		withTrace(*profile, func(t *trace.Trace) error {
			fmt.Print(trace.BuildProfile(t))
			return nil
		})
	case *tree != "":
		withTrace(*tree, func(t *trace.Trace) error {
			gt, err := gtree.Build(t)
			if err != nil {
				return err
			}
			fmt.Print(gt)
			verdict, leaked := gt.DeadlockCheck()
			fmt.Printf("\nDeadlockCheck: %s", verdict)
			if len(leaked) > 0 {
				fmt.Printf(" (%d goroutine(s))", len(leaked))
			}
			fmt.Println()
			return nil
		})
	case *chrome != "":
		withTrace(*chrome, func(t *trace.Trace) error {
			w := os.Stdout
			if *outPath != "" {
				f, err := os.Create(*outPath)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			return t.EncodeChrome(w, trace.ChromeOptions{})
		})
	case *visits != "":
		if err := showVisits(*visits, *model); err != nil {
			fatal(err)
		}
	case *ingestP != "":
		if err := showIngest(*ingestP, *workers); err != nil {
			fatal(err)
		}
	case *diffP:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "goattrace: -diff needs two captures: old.trace new.trace")
			os.Exit(2)
		}
		regressed, err := showDiff(flag.Arg(0), flag.Arg(1), *workers)
		if err != nil {
			fatal(err)
		}
		if regressed {
			os.Exit(1) // the CI-gateable signal
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// showIngest prints the window census and the stranded-goroutine report
// of one native capture.
func showIngest(path string, includeWorkers bool) error {
	run, err := ingest.ParseFile(path)
	if err != nil {
		return err
	}
	i := run.Info
	fmt.Printf("source: %s (%d events)\n", run.Trace.SourceInfo().Name, run.Trace.Len())
	fmt.Printf("window: %.1fms, %d goroutine(s) (%d created in-window, %d pre-existing), main ended: %v\n",
		float64(i.WallNs)/1e6, i.Goroutines, i.Created, i.Orphans, i.MainEnded)
	if i.DroppedWakes > 0 {
		fmt.Printf("note: %d wake edge(s) had no attributable waker (timers/netpoll)\n", i.DroppedWakes)
	}
	stranded := run.StrandedGoroutines(ingest.StrandedOpts{IncludeWorkers: includeWorkers})
	if len(stranded) == 0 {
		fmt.Println("\nstranded goroutines: none")
		return nil
	}
	fmt.Printf("\nstranded goroutines: %d\n", len(stranded))
	for _, s := range stranded {
		fmt.Printf("  %s\n", s)
	}
	return nil
}

// showDiff compares two captures signature-wise and reports whether the
// new one regressed.
func showDiff(oldPath, newPath string, includeWorkers bool) (bool, error) {
	oldRun, err := ingest.ParseFile(oldPath)
	if err != nil {
		return false, fmt.Errorf("%s: %w", oldPath, err)
	}
	newRun, err := ingest.ParseFile(newPath)
	if err != nil {
		return false, fmt.Errorf("%s: %w", newPath, err)
	}
	d := ingest.DiffRuns(oldRun, newRun, ingest.StrandedOpts{IncludeWorkers: includeWorkers})
	fmt.Print(d)
	return d.Regressed(), nil
}

// showVisits aggregates a native visit log; with a model dir it also
// reports executed-CU coverage.
func showVisits(path, modelDir string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	vs, err := cu.ParseVisits(f)
	if err != nil {
		return err
	}
	fmt.Print(cu.RenderVisitStats(cu.StatsOf(vs)))
	if modelDir == "" {
		return nil
	}
	m, err := cu.ExtractDir(modelDir)
	if err != nil {
		return err
	}
	executed, dead, pct := cu.ExecutedCoverage(m, vs)
	fmt.Printf("\nexecuted-CU coverage: %d/%d (%.1f%%)\n", len(executed), m.Len(), pct)
	for _, c := range dead {
		fmt.Printf("  never executed: %s\n", c)
	}
	return nil
}

// withTrace opens a trace of either format — GOATECT or a native
// runtime/trace capture (sniffed by header) — so every inspection
// command works on real-binary captures too.
func withTrace(path string, fn func(*trace.Trace) error) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	prefix, err := br.Peek(3)
	if err != nil && err != io.EOF {
		fatal(err)
	}
	var t *trace.Trace
	if ingest.SniffNative(prefix) {
		run, err := ingest.Parse(br)
		if err != nil {
			fatal(err)
		}
		t = run.Trace
	} else {
		if t, err = trace.Decode(br); err != nil {
			fatal(err)
		}
	}
	if err := fn(t); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "goattrace:", err)
	os.Exit(1)
}
