// Command goattrace inspects saved execution concurrency traces (the
// .ect files written by `goat -bug ... -traceout`):
//
//	goattrace -dump trace.ect             # every event
//	goattrace -dump trace.ect -g 3        # one goroutine's projection
//	goattrace -dump trace.ect -cat Chan   # one category
//	goattrace -stats trace.ect            # per-type tallies
//	goattrace -profile trace.ect          # blocking/contention profile
//	goattrace -tree trace.ect             # goroutine tree + Procedure 1
//	goattrace -chrome trace.ect -o t.json # Chrome/Perfetto timeline export
//
// Native runtime/trace captures (go test -trace, runtime/trace.Start)
// are ingested transparently — every command above accepts them — and
// two commands exist specifically for real-binary analysis:
//
//	goattrace -ingest app.trace             # window census + stranded report
//	goattrace -diff old.trace new.trace     # CI gate: newly stranded signatures
//
// The -profile command additionally emits pprof-compatible profiles
// (block, mutex contention, goroutine census — plus CPU when the
// capture carries profiling-clock samples) and folded stacks for
// flamegraph tooling:
//
//	goattrace -profile app.trace -pprof out/    # out/{block,mutex,goroutine,cpu}.pb.gz
//	goattrace -profile app.trace -folded out/   # out/*.folded (flamegraph.pl input)
//
// -serve mounts the same profiles on the live observability endpoint —
// the static-capture counterpart of the campaign CLIs' -obs flag, so
// scrape-based tooling (Prometheus, continuous profilers, `go tool
// pprof http://...`) reads a saved capture like a running process:
//
//	goattrace -serve :7799 app.trace       # /profile/{block,mutex,goroutine,cpu}, /metrics, /healthz
//
// # Exit codes
//
// Every subcommand follows one contract (see exitcode.go):
//
//	0  clean: the command ran and found nothing to flag
//	1  findings: -ingest saw stranded goroutines, -diff saw a regression
//	2  usage or I/O errors (bad flags, unreadable or corrupt traces)
//
// so both analysis commands slot directly into CI gates.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"goat/internal/cu"
	"goat/internal/gtree"
	"goat/internal/ingest"
	prof "goat/internal/profile"
	"goat/internal/trace"
)

func main() {
	var (
		dump    = flag.String("dump", "", "print the events of a trace file")
		stats   = flag.String("stats", "", "print event tallies of a trace file")
		profile = flag.String("profile", "", "print the blocking profile of a trace file")
		tree    = flag.String("tree", "", "print the goroutine tree + deadlock check")
		chrome  = flag.String("chrome", "", "export a trace file as Chrome trace-event JSON (load in ui.perfetto.dev)")
		outPath = flag.String("o", "", "with -chrome: output file (default stdout)")
		visits  = flag.String("visits", "", "print a goatrt native visit log (GOAT_TRACE output)")
		model   = flag.String("model", "", "with -visits: instrumented-source dir for executed-CU coverage")
		pprofD  = flag.String("pprof", "", "with -profile: directory for pprof protobuf profiles")
		foldedD = flag.String("folded", "", "with -profile: directory for folded-stack (flamegraph) text")
		serveAt = flag.String("serve", "", "serve a capture's profiles on this address (observability endpoint; Ctrl-C stops)")
		ingestP = flag.String("ingest", "", "ingest a native runtime/trace capture: window census + stranded report (exit 1 when goroutines are stranded)")
		diffP   = flag.Bool("diff", false, "compare two captures (old new): exit 1 when new strands goroutines old did not")
		workers = flag.Bool("workers", false, "with -ingest/-diff: report long-lived-worker-shaped goroutines too")
		gFilter = flag.Int64("g", 0, "with -dump: restrict to one goroutine")
		cat     = flag.String("cat", "", "with -dump: restrict to one category prefix (Goroutine, Channel, Sync, Select, Timer, Shared)")
		asJSON  = flag.Bool("json", false, "with -dump: newline-delimited JSON instead of text")
	)
	flag.Parse()

	switch {
	case *dump != "":
		withTrace(*dump, func(t *trace.Trace) error {
			out := t
			if *gFilter != 0 {
				out = out.Filter(func(e trace.Event) bool { return e.G == trace.GoID(*gFilter) })
			}
			if *cat != "" {
				out = out.Filter(func(e trace.Event) bool {
					return strings.HasPrefix(trace.CategoryOf(e.Type).String(), *cat)
				})
			}
			if *asJSON {
				return out.EncodeJSON(os.Stdout)
			}
			fmt.Print(out)
			return nil
		})
	case *stats != "":
		withTrace(*stats, func(t *trace.Trace) error {
			gs := t.Goroutines()
			fmt.Printf("%d events, %d goroutines\n\n", t.Len(), len(gs))
			counts := t.CountByType()
			for ty := trace.Type(1); ; ty++ {
				if !ty.Valid() {
					break
				}
				if counts[ty] > 0 {
					fmt.Printf("%-14s %6d\n", ty, counts[ty])
				}
			}
			// Per-goroutine tallies in sorted-ID order: ByGoroutine is a
			// bare map, so ranging over it directly would flake.
			byG := t.ByGoroutine()
			fmt.Println()
			for _, g := range gs {
				events := byG[g]
				line := fmt.Sprintf("g%-5d %6d event(s)", g, len(events))
				if len(events) > 0 {
					last := events[len(events)-1]
					line += fmt.Sprintf("  last=%s", last.Type)
					if last.Type == trace.EvGoBlock {
						line += fmt.Sprintf(" (%s @%s:%d)", last.BlockReason(), last.File, last.Line)
					}
				}
				fmt.Println(line)
			}
			return nil
		})
	case *profile != "":
		withCapture(*profile, func(t *trace.Trace, run *ingest.Run) error {
			fmt.Print(trace.BuildProfile(t))
			set := buildProfileSet(t, run)
			fmt.Println()
			fmt.Print(set.Block.Top(8))
			fmt.Print(set.Mutex.Top(8))
			fmt.Print(set.Goroutine.Top(8))
			if set.CPU != nil {
				fmt.Print(set.CPU.Top(8))
			}
			if *pprofD != "" {
				if err := writeProfiles(*pprofD, set, ".pb.gz", (*prof.Profile).WritePprof); err != nil {
					return err
				}
			}
			if *foldedD != "" {
				if err := writeProfiles(*foldedD, set, ".folded", (*prof.Profile).WriteFolded); err != nil {
					return err
				}
			}
			return nil
		})
	case *tree != "":
		withTrace(*tree, func(t *trace.Trace) error {
			gt, err := gtree.Build(t)
			if err != nil {
				return err
			}
			fmt.Print(gt)
			verdict, leaked := gt.DeadlockCheck()
			fmt.Printf("\nDeadlockCheck: %s", verdict)
			if len(leaked) > 0 {
				fmt.Printf(" (%d goroutine(s))", len(leaked))
			}
			fmt.Println()
			return nil
		})
	case *chrome != "":
		withTrace(*chrome, func(t *trace.Trace) error {
			w := os.Stdout
			if *outPath != "" {
				f, err := os.Create(*outPath)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			return t.EncodeChrome(w, trace.ChromeOptions{})
		})
	case *serveAt != "":
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "goattrace: -serve needs one capture: goattrace -serve :7799 app.trace")
			os.Exit(exitUsage)
		}
		withCapture(flag.Arg(0), func(t *trace.Trace, run *ingest.Run) error {
			return serveCapture(*serveAt, t, run)
		})
	case *visits != "":
		if err := showVisits(*visits, *model); err != nil {
			fatal(err)
		}
	case *ingestP != "":
		stranded, err := showIngest(*ingestP, *workers)
		if err != nil {
			fatal(err)
		}
		os.Exit(exitForFindings(stranded > 0))
	case *diffP:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "goattrace: -diff needs two captures: old.trace new.trace")
			os.Exit(exitUsage)
		}
		regressed, err := showDiff(flag.Arg(0), flag.Arg(1), *workers)
		if err != nil {
			fatal(err)
		}
		os.Exit(exitForFindings(regressed))
	default:
		flag.Usage()
		os.Exit(exitUsage)
	}
}

// buildProfileSet folds a trace into its pprof profile set, wiring in
// the wall-clock table and CPU samples when the source was a native
// capture.
func buildProfileSet(t *trace.Trace, run *ingest.Run) *prof.Set {
	opts := prof.Options{}
	if run != nil {
		opts.Wall = run.Wall
		for _, s := range run.CPUSamples {
			cs := prof.CPUSample{G: s.G, Stack: make([]prof.Frame, len(s.Stack))}
			for i, f := range s.Stack {
				cs.Stack[i] = prof.Frame{Func: f.Func, File: f.File, Line: f.Line}
			}
			opts.CPUSamples = append(opts.CPUSamples, cs)
		}
	}
	return prof.Build(t, opts)
}

// writeProfiles writes every profile of a set into dir using the given
// encoder and filename extension.
func writeProfiles(dir string, set *prof.Set, ext string, write func(*prof.Profile, io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range []*prof.Profile{set.Block, set.Mutex, set.Goroutine, set.CPU} {
		if p == nil {
			continue
		}
		path := filepath.Join(dir, string(p.Kind)+ext)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(p, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// showIngest prints the window census and the stranded-goroutine report
// of one native capture, returning the stranded count (the exit-code
// signal).
func showIngest(path string, includeWorkers bool) (int, error) {
	run, err := ingest.ParseFile(path)
	if err != nil {
		return 0, err
	}
	i := run.Info
	fmt.Printf("source: %s (%d events)\n", run.Trace.SourceInfo().Name, run.Trace.Len())
	fmt.Printf("window: %.1fms, %d goroutine(s) (%d created in-window, %d pre-existing), main ended: %v\n",
		float64(i.WallNs)/1e6, i.Goroutines, i.Created, i.Orphans, i.MainEnded)
	if i.DroppedWakes > 0 {
		fmt.Printf("note: %d wake edge(s) had no attributable waker (timers/netpoll)\n", i.DroppedWakes)
	}
	if i.CPUSamples > 0 {
		fmt.Printf("cpu samples: %d (profile with -profile %s -pprof DIR)\n", i.CPUSamples, path)
	}
	stranded := run.StrandedGoroutines(ingest.StrandedOpts{IncludeWorkers: includeWorkers})
	if len(stranded) == 0 {
		fmt.Println("\nstranded goroutines: none")
		return 0, nil
	}
	fmt.Printf("\nstranded goroutines: %d\n", len(stranded))
	for _, s := range stranded {
		fmt.Printf("  %s\n", s)
	}
	return len(stranded), nil
}

// showDiff compares two captures signature-wise and reports whether the
// new one regressed.
func showDiff(oldPath, newPath string, includeWorkers bool) (bool, error) {
	oldRun, err := ingest.ParseFile(oldPath)
	if err != nil {
		return false, fmt.Errorf("%s: %w", oldPath, err)
	}
	newRun, err := ingest.ParseFile(newPath)
	if err != nil {
		return false, fmt.Errorf("%s: %w", newPath, err)
	}
	d := ingest.DiffRuns(oldRun, newRun, ingest.StrandedOpts{IncludeWorkers: includeWorkers})
	fmt.Print(d)
	return d.Regressed(), nil
}

// showVisits aggregates a native visit log; with a model dir it also
// reports executed-CU coverage.
func showVisits(path, modelDir string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	vs, err := cu.ParseVisits(f)
	if err != nil {
		return err
	}
	fmt.Print(cu.RenderVisitStats(cu.StatsOf(vs)))
	if modelDir == "" {
		return nil
	}
	m, err := cu.ExtractDir(modelDir)
	if err != nil {
		return err
	}
	executed, dead, pct := cu.ExecutedCoverage(m, vs)
	fmt.Printf("\nexecuted-CU coverage: %d/%d (%.1f%%)\n", len(executed), m.Len(), pct)
	for _, c := range dead {
		fmt.Printf("  never executed: %s\n", c)
	}
	return nil
}

// withTrace opens a trace of either format — GOATECT or a native
// runtime/trace capture (sniffed by header) — so every inspection
// command works on real-binary captures too.
func withTrace(path string, fn func(*trace.Trace) error) {
	withCapture(path, func(t *trace.Trace, _ *ingest.Run) error { return fn(t) })
}

// withCapture is withTrace for consumers that also want the native-side
// artifacts (wall table, CPU samples); run is nil for GOATECT files.
func withCapture(path string, fn func(*trace.Trace, *ingest.Run) error) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	prefix, err := br.Peek(3)
	if err != nil && err != io.EOF {
		fatal(err)
	}
	var t *trace.Trace
	var run *ingest.Run
	if ingest.SniffNative(prefix) {
		if run, err = ingest.Parse(br); err != nil {
			fatal(err)
		}
		t = run.Trace
	} else {
		if t, err = trace.Decode(br); err != nil {
			fatal(err)
		}
	}
	if err := fn(t, run); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "goattrace:", err)
	os.Exit(exitError)
}
