package main

import (
	"fmt"
	"os"
	"os/signal"

	"goat/internal/ingest"
	"goat/internal/obs"
	prof "goat/internal/profile"
	"goat/internal/trace"
)

// serveCapture mounts a saved capture's profile set on the live
// observability endpoint until interrupted: the static counterpart of
// the campaign CLIs' -obs flag. The set is folded once up front — a
// capture is immutable, so every scrape serves the same profiles.
func serveCapture(addr string, t *trace.Trace, run *ingest.Run) error {
	set := buildProfileSet(t, run)
	srv := &obs.Server{Profiles: func() *prof.Set { return set }}
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	kinds := "block, mutex, goroutine"
	if set.CPU != nil {
		kinds += ", cpu"
	}
	fmt.Fprintf(os.Stderr, "goattrace: serving %s profiles on http://%s (Ctrl-C to stop)\n", kinds, bound)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Fprintln(os.Stderr, "goattrace: interrupted, shutting down")
	return nil
}
