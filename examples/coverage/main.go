// Coverage: accumulate the concurrency coverage of repeated test
// executions of the etcd_7443 kernel (the paper's Fig. 6a case study) and
// watch the requirement universe and the covered set evolve per delay
// bound.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"strings"

	"goat/internal/cover"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/report"
	"goat/internal/sim"
)

func main() {
	k, ok := goker.ByID("etcd_7443")
	if !ok {
		panic("etcd_7443 missing")
	}
	const iters = 40

	for _, d := range []int{0, 2} {
		fmt.Printf("=== delay bound D=%d ===\n", d)
		model := cover.NewModel(nil)
		for i := 0; i < iters; i++ {
			r := goker.Run(k, sim.Options{Seed: int64(i), Delays: d})
			tree, err := gtree.Build(r.Trace)
			if err != nil {
				panic(err)
			}
			st := model.AddRun(tree)
			if i%8 == 0 || i == iters-1 {
				bar := strings.Repeat("█", int(st.Percent/4))
				fmt.Printf("iter %3d: %5.1f%% (%d/%d) %s\n", st.Run, st.Percent, st.Covered, st.Total, bar)
			}
		}
		fmt.Println()
		if d == 2 {
			fmt.Println("final coverage table at D=2:")
			fmt.Println(report.CoverageTable(nil, model))
			fmt.Println("uncovered requirements point at schedules not yet exercised")
			fmt.Println("(or at dead code), exactly as the paper prescribes:")
			for i, r := range model.Uncovered() {
				if i == 8 {
					fmt.Printf("  ... and %d more\n", len(model.Uncovered())-8)
					break
				}
				fmt.Printf("  %s\n", r)
			}
		}
	}
}
