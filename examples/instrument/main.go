// Instrument: run GoAT's static front-end on a native Go program — extract
// the concurrency usage model M and perform the paper's source-to-source
// instrumentation (goatrt bootstrap in main, a handler before every CU).
//
//	go run ./examples/instrument
package main

import (
	"fmt"

	"goat/internal/instrument"
)

// target is a plain Go program using native concurrency (it is the
// worker-pool idiom with a WaitGroup and a select-based collector).
const target = `package main

import (
	"fmt"
	"sync"
)

func worker(id int, jobs <-chan int, results chan<- int, wg *sync.WaitGroup) {
	defer wg.Done()
	for j := range jobs {
		results <- j * j
	}
}

func main() {
	jobs := make(chan int, 4)
	results := make(chan int, 4)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go worker(w, jobs, results, &wg)
	}
	go func() {
		for r := range results {
			mu.Lock()
			total += r
			mu.Unlock()
		}
	}()
	for j := 1; j <= 8; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	close(results)
	select {
	case <-results:
	default:
		fmt.Println("total:", total)
	}
}
`

func main() {
	res, err := instrument.Source("pool.go", target, instrument.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("concurrency usage model M: %d entries\n", len(res.CUs))
	for _, c := range res.CUs {
		fmt.Printf("  %-14s %s\n", c.Kind, c.Loc())
	}
	fmt.Printf("\ninjected %d handler call(s); main bootstrap: %v\n", res.Handlers, res.MainHook)
	fmt.Println("\n----- instrumented source -----")
	fmt.Println(res.Source)
}
