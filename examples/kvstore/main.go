// Kvstore: a realistic domain example — an etcd-style in-memory key-value
// store with watchers, built entirely on the virtual runtime's primitives
// and tested under GoAT. It ships in two flavors:
//
//   - the correct store, whose campaign across seeds and delay bounds
//     stays clean, and
//
//   - a buggy variant reproducing the classic watch-hub flaw (the hub
//     broadcasts to watcher channels while holding the store lock), which
//     GoAT exposes as a mixed deadlock and explains with a report.
//
//     go run ./examples/kvstore
package main

import (
	"fmt"

	"goat/internal/conc"
	"goat/internal/detect"
	"goat/internal/report"
	"goat/internal/sim"
)

// event is a watch notification.
type event struct {
	key, value string
}

// store is a watchable key-value store.
type store struct {
	mu       *conc.RWMutex
	data     map[string]string
	hubMu    *conc.Mutex
	watchers []*conc.Chan[event]
	// buggy: broadcast while holding mu (the flaw GoAT catches).
	buggy bool
}

func newStore(g *sim.G, buggy bool) *store {
	return &store{
		mu:    conc.NewRWMutex(g),
		data:  map[string]string{},
		hubMu: conc.NewMutex(g),
		buggy: buggy,
	}
}

// Get reads a key under the read lock.
func (s *store) Get(g *sim.G, key string) (string, bool) {
	s.mu.RLock(g)
	v, ok := s.data[key]
	s.mu.RUnlock(g)
	return v, ok
}

// Put writes a key and notifies the watchers.
func (s *store) Put(g *sim.G, key, value string) {
	s.mu.Lock(g)
	s.data[key] = value
	if s.buggy {
		// BUG: notify with the write lock held; a slow watcher blocks the
		// store, and a watcher that needs the store deadlocks with us.
		s.notify(g, event{key, value})
		s.mu.Unlock(g)
		return
	}
	s.mu.Unlock(g)
	s.notify(g, event{key, value})
}

// Watch registers a new watcher channel.
func (s *store) Watch(g *sim.G) *conc.Chan[event] {
	ch := conc.NewChan[event](g, 1)
	s.hubMu.Lock(g)
	s.watchers = append(s.watchers, ch)
	s.hubMu.Unlock(g)
	return ch
}

// notify fans an event out to every watcher (blocking on full buffers).
func (s *store) notify(g *sim.G, ev event) {
	s.hubMu.Lock(g)
	watchers := append([]*conc.Chan[event]{}, s.watchers...)
	s.hubMu.Unlock(g)
	for _, w := range watchers {
		w.Send(g, ev)
	}
}

// workload drives the store with concurrent writers and a read-validating
// watcher — the shape of an etcd-style integration test.
func workload(buggy bool) func(*sim.G) {
	return func(g *sim.G) {
		s := newStore(g, buggy)
		watch := s.Watch(g)
		done := conc.NewChan[struct{}](g, 0)

		g.Go("watcher", func(c *sim.G) {
			for i := 0; i < 4; i++ {
				ev, ok := watch.Recv(c)
				if !ok {
					return
				}
				// The watcher validates the event against the store — it
				// needs the read lock the buggy Put is still holding.
				// (Only existence is asserted: a later write may already
				// have superseded the event's value.)
				if _, ok := s.Get(c, ev.key); !ok {
					panic("watch event for a key missing from the store")
				}
			}
			done.Close(c)
		})
		for i := 0; i < 2; i++ {
			i := i
			g.Go("writer", func(c *sim.G) {
				s.Put(c, fmt.Sprintf("k%d", i), "v0")
				s.Put(c, fmt.Sprintf("k%d", i), "v1")
			})
		}
		done.Recv(g)
	}
}

func campaign(name string, buggy bool) {
	fmt.Printf("--- %s store ---\n", name)
	goat := detect.Goat{}
	for trial := 0; trial < 300; trial++ {
		r := sim.Run(sim.Options{Seed: int64(trial), Delays: trial % 4}, workload(buggy))
		if d := goat.Detect(r); d.Found {
			fmt.Printf("bug exposed on execution %d (seed %d, D=%d)\n\n", trial+1, r.Seed, trial%4)
			fmt.Println(report.Detection(r, d))
			return
		}
	}
	fmt.Println("300 executions across D=0..3: no blocking bug found")
	fmt.Println()
}

func main() {
	campaign("correct", false)
	campaign("buggy (notify under write lock)", true)
}
