// Clean worker pool: the negative control for native ingestion.
//
// Structurally the twin of examples/native/leakypool, but every result
// is collected and every goroutine exits before the trace stops — an
// ingested capture of this program must produce zero stranded
// goroutines, which is what makes the leaky pool's report a signal
// rather than noise.
//
//	go run ./examples/native/cleanpool -trace clean.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/trace"
	"sync"
	"time"
)

func worker(id int, jobs <-chan int, results chan<- int, wg *sync.WaitGroup) {
	defer wg.Done()
	for j := range jobs {
		results <- j * j // the collector drains everything: no strand
	}
}

func main() {
	traceOut := flag.String("trace", "", "write execution trace to file")
	flag.Parse()
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer trace.Stop()
	}
	stopProf := startCPUProfile()
	defer stopProf()

	const workers = 3
	const jobsPerBatch = 4

	jobs := make(chan int)
	results := make(chan int, jobsPerBatch)
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go worker(w, jobs, results, &wg)
	}
	for i := 0; i < jobsPerBatch; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(results)

	sum := 0
	for r := range results {
		sum += r
	}
	fmt.Println("sum of results:", sum)

	// Symmetric with the leaky pool's quiesce window: burn some CPU for
	// profiling-clock samples, then let the capture end with every
	// worker already gone.
	burnCPU(150 * time.Millisecond)
	time.Sleep(200 * time.Millisecond)
}
