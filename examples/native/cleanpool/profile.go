// CPU-profiling side of the fixture, symmetric with leakypool: running
// the runtime CPU profiler while tracing makes the runtime forward
// profiling-clock hits into the execution trace's CPU-sample batches
// (EvCPUSample). The pprof stream itself is discarded — the trace is
// the artifact. Kept in its own file so main.go's line numbers stay
// put for fixture pins.
package main

import (
	"io"
	"runtime/pprof"
	"time"
)

// startCPUProfile starts the runtime CPU profiler, discarding the pprof
// stream; returns the stop function (a no-op when profiling could not
// start).
func startCPUProfile() func() {
	if err := pprof.StartCPUProfile(io.Discard); err != nil {
		return func() {}
	}
	return pprof.StopCPUProfile
}

// burnCPU spins for roughly d so the capture carries on-CPU samples.
// The checksum defeats dead-code elimination.
func burnCPU(d time.Duration) uint64 {
	var sum uint64
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<14; i++ {
			sum = sum*1099511628211 + uint64(i)
		}
	}
	return sum
}
