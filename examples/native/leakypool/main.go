// Leaky worker pool: the native-ingestion demonstration bug.
//
// Each submitted job spawns a result-sender goroutine that sends on an
// unbuffered channel, but the collector stops reading after the first
// result per batch — every other sender strands forever on `results <-`.
// This is the classic leak GoAT's goroutine-tree analysis flags and the
// runtime's built-in detector cannot see (main keeps running).
//
// Run with tracing to produce an ingestable fixture:
//
//	go run ./examples/native/leakypool -trace leaky.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/trace"
	"sync"
	"time"
)

func worker(id int, jobs <-chan int, results chan<- int, wg *sync.WaitGroup) {
	defer wg.Done()
	for j := range jobs {
		j := j
		// BUG: one sender goroutine per job on an unbuffered channel;
		// only the first per batch is ever received.
		go func() {
			results <- j * j // strands when the collector has moved on
		}()
	}
}

func main() {
	traceOut := flag.String("trace", "", "write execution trace to file")
	flag.Parse()
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer trace.Stop()
	}
	stopProf := startCPUProfile()
	defer stopProf()

	const workers = 3
	const jobsPerBatch = 4

	jobs := make(chan int)
	results := make(chan int)
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go worker(w, jobs, results, &wg)
	}
	for i := 0; i < jobsPerBatch; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Collect only one result: the rest of the senders leak.
	fmt.Println("first result:", <-results)

	// Burn some CPU so the capture carries profiling-clock samples,
	// then let the stranded senders sit parked before the trace window
	// closes, so both the leak and the cpu profile are visible.
	burnCPU(150 * time.Millisecond)
	time.Sleep(200 * time.Millisecond)
}
