// CPU-profiling side of the fixture: running the runtime CPU profiler
// while tracing makes the runtime forward every profiling-clock hit
// into the execution trace's CPU-sample batches (EvCPUSample), which is
// what `goattrace -profile ... -pprof` turns into a cpu profile. The
// pprof output itself is discarded — the trace is the artifact.
//
// This lives in its own file so main.go's line numbers stay put: the
// ingest fixtures pin the worker's create/block sites by line.
package main

import (
	"io"
	"runtime/pprof"
	"time"
)

// startCPUProfile starts the runtime CPU profiler, discarding the pprof
// stream; returns the stop function (a no-op when profiling could not
// start, e.g. a second profiler is active).
func startCPUProfile() func() {
	if err := pprof.StartCPUProfile(io.Discard); err != nil {
		return func() {}
	}
	return pprof.StopCPUProfile
}

// burnCPU spins for roughly d so the capture carries on-CPU samples
// alongside the blocked goroutines. The checksum defeats dead-code
// elimination.
func burnCPU(d time.Duration) uint64 {
	var sum uint64
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<14; i++ {
			sum = sum*1099511628211 + uint64(i)
		}
	}
	return sum
}
