// Quickstart: write a concurrent program against the virtual runtime, run
// it under GoAT with schedule perturbation, and get a deadlock report.
//
// The program is the paper's listing 1 (Docker bug moby#28462): Monitor
// polls a container's status channel with a select/default loop guarded by
// a mutex, while StatusChange sends on the channel holding the same mutex.
// A rare preemption between Monitor's select and its Lock produces a
// mixed deadlock that leaks both goroutines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"goat/internal/conc"
	"goat/internal/detect"
	"goat/internal/report"
	"goat/internal/sim"
)

// container is the shared state of listing 1.
type container struct {
	mu     *conc.Mutex
	status *conc.Chan[int]
}

func listing1(g *sim.G) {
	c := &container{
		mu:     conc.NewMutex(g),
		status: conc.NewChan[int](g, 0),
	}
	g.Go("Monitor", func(w *sim.G) {
		for {
			idx, _, _ := conc.Select(w, []conc.Case{conc.CaseRecv(c.status)}, true)
			if idx == 0 {
				return // container stopped
			}
			c.mu.Lock(w)
			// ... inspect the container ...
			c.mu.Unlock(w)
		}
	})
	g.Go("StatusChange", func(w *sim.G) {
		c.mu.Lock(w)
		c.status.Send(w, 1)
		c.mu.Unlock(w)
	})
	conc.Sleep(g, 500) // main does unrelated work and exits
}

func main() {
	fmt.Println("searching for the moby#28462 mixed deadlock (delay bound D=2)...")
	for trial := 0; ; trial++ {
		r := sim.Run(sim.Options{Seed: int64(trial), Delays: 2}, listing1)
		d := (detect.Goat{}).Detect(r)
		if !d.Found {
			continue
		}
		fmt.Printf("exposed on execution %d\n\n", trial+1)
		fmt.Println(report.Detection(r, d))
		return
	}
}
