// Racedetect: the happens-before data race checker (the paper's -race
// option) on a double-checked-initialization bug. The virtual runtime
// serializes every access, so the race never "tears" memory — it shows up
// as two accesses unordered by happens-before, which the checker reports
// with both source locations.
//
//	go run ./examples/racedetect
package main

import (
	"fmt"

	"goat/internal/conc"
	"goat/internal/race"
	"goat/internal/sim"
)

// buggyInit is broken double-checked initialization: the fast-path read
// of `ready` is not synchronized with the initializer's writes.
func buggyInit(g *sim.G) {
	ready := conc.NewShared(g, "ready", false)
	config := conc.NewShared(g, "config", "")
	mu := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	for i := 0; i < 2; i++ {
		wg.Add(g, 1)
		g.Go("client", func(c *sim.G) {
			defer wg.Done(c)
			if !ready.Load(c) { // BUG: unsynchronized fast-path check
				mu.Lock(c)
				if !ready.Load(c) {
					config.Store(c, "loaded")
					ready.Store(c, true)
				}
				mu.Unlock(c)
			}
			_ = config.Load(c) // BUG: may be unordered with the init write
		})
	}
	wg.Wait(g)
}

// fixedInit keeps every access under the mutex.
func fixedInit(g *sim.G) {
	ready := conc.NewShared(g, "ready", false)
	config := conc.NewShared(g, "config", "")
	mu := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	for i := 0; i < 2; i++ {
		wg.Add(g, 1)
		g.Go("client", func(c *sim.G) {
			defer wg.Done(c)
			mu.Lock(c)
			if !ready.Load(c) {
				config.Store(c, "loaded")
				ready.Store(c, true)
			}
			_ = config.Load(c)
			mu.Unlock(c)
		})
	}
	wg.Wait(g)
}

func main() {
	fmt.Println("--- buggy double-checked init ---")
	r := sim.Run(sim.Options{Seed: 1}, buggyInit)
	races := race.Check(r.Trace)
	fmt.Printf("%d race(s):\n", len(races))
	for _, rc := range races {
		fmt.Println(" ", rc)
	}

	fmt.Println("\n--- fixed version ---")
	r = sim.Run(sim.Options{Seed: 1}, fixedInit)
	fmt.Printf("%d race(s)\n", len(race.Check(r.Trace)))
}
