// Schedexplore: measure how the delay bound D changes the number of
// executions needed to expose rare bugs — the paper's Objective 2 on three
// of the hardest GoKer kernels.
//
//	go run ./examples/schedexplore
package main

import (
	"fmt"

	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/harness"
)

func main() {
	bugs := []string{"serving_2137", "moby_28462", "kubernetes_6632"}
	const budget = 2000

	fmt.Printf("%-20s", "bug")
	for d := 0; d <= 4; d++ {
		fmt.Printf("%12s", fmt.Sprintf("D=%d", d))
	}
	fmt.Println("   (executions until first detection; X = not in budget)")

	for _, id := range bugs {
		k, ok := goker.ByID(id)
		if !ok {
			panic("unknown bug " + id)
		}
		fmt.Printf("%-20s", id)
		for d := 0; d <= 4; d++ {
			spec := harness.Spec{
				Name:      fmt.Sprintf("goat-D%d", d),
				Detector:  detect.Goat{},
				Delays:    d,
				NeedTrace: true,
			}
			cell := harness.MinExecs(k, spec, budget, 0)
			if cell.Found {
				fmt.Printf("%12d", cell.MinExecs)
			} else {
				fmt.Printf("%12s", "X")
			}
		}
		fmt.Println()
	}
	fmt.Println("\nA few injected yields collapse the search: rare bugs that survive")
	fmt.Println("hundreds of native schedules fall within a handful of perturbed ones.")
}
