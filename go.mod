module goat

go 1.22
