// Package goat is the public facade of the GoAT reproduction: a combined
// static and dynamic concurrency testing and analysis framework for Go
// (Taheri & Gopalakrishnan, IISWC 2021), built on a deterministic virtual
// runtime.
//
// The three objectives of the paper map to three entry points:
//
//   - Accurate dynamic execution modeling: Run executes a program on the
//     virtual runtime and returns its execution concurrency trace (ECT)
//     and classified outcome; BuildTree turns the ECT into the goroutine
//     tree that DeadlockCheck (the paper's Procedure 1) analyzes.
//
//   - Systematic schedule-space exploration: Options.Delays is the
//     paper's bound D — the maximum number of forced yields injected at
//     concurrency-usage points; Options.Seed makes any schedule
//     replayable.
//
//   - Testing quality measurement: NewCoverage accumulates the Req1–Req5
//     concurrency coverage requirements across runs.
//
// The deeper layers remain importable for advanced use: internal/sim (the
// scheduler), internal/conc (the primitives), internal/cu and
// internal/instrument (the static front-end over native Go source),
// internal/detect (GoAT plus the three baseline detectors),
// internal/goker (the 68-kernel blocking-bug benchmark) and
// internal/harness (the evaluation campaigns).
package goat

import (
	"goat/internal/cover"
	"goat/internal/cu"
	"goat/internal/detect"
	"goat/internal/gtree"
	"goat/internal/sim"
	"goat/internal/trace"
)

// Re-exported core types. The aliases keep one import path for the
// common workflow while the implementation stays in focused packages.
type (
	// Options configure one execution (seed, delay bound D, budgets).
	Options = sim.Options
	// Result is the classified outcome of one execution plus its ECT.
	Result = sim.Result
	// G is the goroutine handle passed to every simulated goroutine.
	G = sim.G
	// Outcome classifies an execution (OK, GDL, PDL, TO, CRASH).
	Outcome = sim.Outcome
	// Trace is the execution concurrency trace.
	Trace = trace.Trace
	// Tree is the goroutine tree built from an ECT.
	Tree = gtree.Tree
	// Detection is a detector's verdict on one execution.
	Detection = detect.Detection
	// Coverage is the cross-run coverage model (Req1–Req5).
	Coverage = cover.Model
	// CU is one concurrency usage of the static model M.
	CU = cu.CU
)

// Outcome values re-exported for switch statements.
const (
	OutcomeOK             = sim.OutcomeOK
	OutcomeGlobalDeadlock = sim.OutcomeGlobalDeadlock
	OutcomeLeak           = sim.OutcomeLeak
	OutcomeTimeout        = sim.OutcomeTimeout
	OutcomeCrash          = sim.OutcomeCrash
)

// Run executes main on the virtual runtime under opts.
func Run(opts Options, main func(*G)) *Result { return sim.Run(opts, main) }

// Detect runs GoAT's detector (goroutine tree + Procedure 1) on a result.
func Detect(r *Result) Detection { return (detect.Goat{}).Detect(r) }

// BuildTree constructs the goroutine tree of an ECT.
func BuildTree(t *Trace) (*Tree, error) { return gtree.Build(t) }

// NewCoverage creates a coverage model seeded from a static CU model
// (pass nil to discover requirements purely dynamically).
func NewCoverage(static *cu.Model) *Coverage { return cover.NewModel(static) }

// ExtractDir builds the static concurrency-usage model M of a directory
// of native Go source.
func ExtractDir(dir string) (*cu.Model, error) { return cu.ExtractDir(dir) }
