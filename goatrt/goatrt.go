// Package goatrt is the runtime-support library linked into natively
// instrumented Go programs (the output of GoAT's source instrumentation).
//
// The instrumenter injects three statements at the top of main —
//
//	goatDone := goatrt.Start()
//	goatrt.Watch(goatDone)
//	defer goatrt.Stop(goatDone)
//
// — and a goatrt.Handler() call before every concurrency usage. At run
// time the package provides the paper's field-debugging mechanics on the
// real Go runtime: bounded random schedule perturbation (Handler), a
// liveness watchdog that dumps all goroutine stacks on a hang (Watch), and
// an end-of-main goroutine-leak check (Stop).
//
// Configuration is via environment variables so instrumented binaries need
// no flag plumbing:
//
//	GOAT_D       delay bound (max forced yields), default 3
//	GOAT_PROB    per-handler yield probability, default 0.2
//	GOAT_SEED    RNG seed, default time-based
//	GOAT_TIMEOUT watchdog timeout, default 30s (Go duration syntax)
//
// Full execution-concurrency-trace capture requires the virtual runtime
// (internal/sim); this package intentionally covers only what is possible
// on an unpatched native runtime.
package goatrt

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

var (
	initOnce   sync.Once
	yieldsLeft atomic.Int64
	prob       float64
	timeout    time.Duration
	rng        *rand.Rand
	rngMu      sync.Mutex

	// exit is swapped out by tests.
	exit = os.Exit
	// stderr is swapped out by tests.
	stderr = func() *os.File { return os.Stderr }
)

func initConfig() {
	d := int64(3)
	if v := os.Getenv("GOAT_D"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			d = n
		}
	}
	yieldsLeft.Store(d)
	prob = 0.2
	if v := os.Getenv("GOAT_PROB"); v != "" {
		if p, err := strconv.ParseFloat(v, 64); err == nil && p >= 0 && p <= 1 {
			prob = p
		}
	}
	timeout = 30 * time.Second
	if v := os.Getenv("GOAT_TIMEOUT"); v != "" {
		if t, err := time.ParseDuration(v); err == nil && t > 0 {
			timeout = t
		}
	}
	seed := time.Now().UnixNano()
	if v := os.Getenv("GOAT_SEED"); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil {
			seed = s
		}
	}
	rng = rand.New(rand.NewSource(seed))
	visitTo = os.Getenv("GOAT_TRACE")
}

// Start initializes the GoAT runtime support and returns the handshake
// channel shared with the watchdog.
func Start() chan struct{} {
	initOnce.Do(initConfig)
	return make(chan struct{})
}

// Watch spawns the watchdog goroutine: it waits for main to finish (a send
// on done) and acknowledges, or after the timeout declares the program
// hung, dumps every goroutine stack, and exits with status 2.
func Watch(done chan struct{}) {
	go func() {
		select {
		case <-done:
			done <- struct{}{} // ack: main finished first
		case <-time.After(timeout):
			fmt.Fprintf(stderr(), "goat: watchdog timeout after %v — possible deadlock or hang\n", timeout)
			fmt.Fprintf(stderr(), "%s\n", allStacks())
			if err := FlushVisits(); err != nil {
				fmt.Fprintf(stderr(), "goat: flushing visit trace: %v\n", err)
			}
			exit(2)
		}
	}()
}

// Stop signals the watchdog that main returned, waits for its ack, then
// reports application goroutines that never reached their end state (the
// leak / partial-deadlock check).
func Stop(done chan struct{}) {
	done <- struct{}{}
	<-done
	if err := FlushVisits(); err != nil {
		fmt.Fprintf(stderr(), "goat: flushing visit trace: %v\n", err)
	}
	leaks := LeakedGoroutines()
	if len(leaks) > 0 {
		fmt.Fprintf(stderr(), "goat: %d goroutine(s) leaked at main return:\n", len(leaks))
		for _, l := range leaks {
			fmt.Fprintf(stderr(), "  goroutine %d [%s]\n", l.ID, l.State)
		}
	}
}

// Handler is the schedule-perturbation hook injected before every
// concurrency usage: while the delay budget lasts it calls
// runtime.Gosched with the configured probability.
func Handler() {
	initOnce.Do(initConfig)
	if visitTo != "" {
		recordVisit(1)
	}
	if yieldsLeft.Load() <= 0 {
		return
	}
	rngMu.Lock()
	fire := rng.Float64() < prob
	rngMu.Unlock()
	if fire && yieldsLeft.Add(-1) >= 0 {
		runtime.Gosched()
	}
}

// Leak describes one goroutine alive after main returned.
type Leak struct {
	ID    int64
	State string // the runtime's wait reason, e.g. "chan send"
}

var goroutineHeader = regexp.MustCompile(`(?m)^goroutine (\d+) \[([^\]]+)\]:`)

// blockedStates are the wait reasons that indicate a parked (potentially
// leaked) goroutine rather than a running or system one.
var blockedStates = map[string]bool{
	"chan send":                 true,
	"chan receive":              true,
	"select":                    true,
	"semacquire":                true,
	"sync.Mutex.Lock":           true,
	"sync.RWMutex.Lock":         true,
	"sync.RWMutex.RLock":        true,
	"sync.WaitGroup.Wait":       true,
	"sync.Cond.Wait":            true,
	"semacquire (sync.Mutex)":   true,
	"semacquire (sync.RWMutex)": true,
}

// LeakedGoroutines snapshots all goroutine stacks and returns those parked
// on concurrency primitives (the goleak-style end-of-main check).
func LeakedGoroutines() []Leak {
	stacks := allStacks()
	var leaks []Leak
	for _, block := range bytes.Split(stacks, []byte("\n\n")) {
		m := goroutineHeader.FindSubmatch(block)
		if m == nil {
			continue
		}
		id, err := strconv.ParseInt(string(m[1]), 10, 64)
		if err != nil {
			continue
		}
		state := string(m[2])
		// Timed states ("chan receive, 2 minutes") keep their prefix.
		if i := bytes.IndexByte([]byte(state), ','); i >= 0 {
			state = state[:i]
		}
		if blockedStates[state] {
			leaks = append(leaks, Leak{ID: id, State: state})
		}
	}
	return leaks
}

func allStacks() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, len(buf)*2)
	}
}
