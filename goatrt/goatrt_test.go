package goatrt

import (
	"sync"
	"testing"
	"time"
)

func TestStartReturnsUsableChannel(t *testing.T) {
	done := Start()
	if done == nil {
		t.Fatal("nil handshake channel")
	}
	Watch(done)
	finished := make(chan struct{})
	go func() {
		Stop(done)
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not complete the handshake")
	}
}

func TestHandlerDoesNotBlock(t *testing.T) {
	for i := 0; i < 1000; i++ {
		Handler()
	}
}

func TestHandlerConcurrencySafe(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				Handler()
			}
		}()
	}
	wg.Wait()
}

func TestLeakedGoroutinesDetectsBlockedSend(t *testing.T) {
	ch := make(chan int)
	release := make(chan struct{})
	go func() {
		select {
		case ch <- 1:
		case <-release:
		}
	}()
	go func() {
		var mu sync.Mutex
		mu.Lock()
		go func() {
			mu.Lock() // parks until release
			mu.Unlock()
		}()
		<-release
		mu.Unlock()
	}()
	// Give the goroutines time to park.
	time.Sleep(50 * time.Millisecond)
	leaks := LeakedGoroutines()
	if len(leaks) == 0 {
		t.Fatal("no leaks detected while goroutines were parked")
	}
	states := map[string]bool{}
	for _, l := range leaks {
		states[l.State] = true
	}
	if !states["select"] {
		t.Errorf("select-parked goroutine not reported: %v", leaks)
	}
	close(release)
	time.Sleep(50 * time.Millisecond)
}

func TestLeakedGoroutinesQuietWhenClean(t *testing.T) {
	time.Sleep(20 * time.Millisecond) // let earlier tests' goroutines drain
	before := LeakedGoroutines()
	// Only goroutines from this test binary's own machinery may remain;
	// starting and joining a clean goroutine must not add leaks.
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	after := LeakedGoroutines()
	if len(after) > len(before) {
		t.Fatalf("clean goroutine reported as leak: before=%v after=%v", before, after)
	}
}
