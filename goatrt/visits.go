package goatrt

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// Native concurrency-usage visit tracing (GOAT_TRACE=<path>).
//
// A patched runtime records full concurrency events; an unpatched one
// cannot. What the injected handlers *can* observe on stock Go is every
// concurrency-usage visit: the goroutine id, the CU source location, and
// a timestamp. That is enough to drive executed-CU coverage against the
// static model M and to see per-goroutine CU activity — the approximate
// native ECT. The format is one line per visit:
//
//	<unix-nanos> <goid> <file>:<line>

// visit is one recorded CU visit.
type visit struct {
	ts   int64
	goid int64
	file string
	line int
}

var (
	visitMu  sync.Mutex
	visitLog []visit
	visitTo  string // destination path; "" = tracing off
)

// goidOf extracts the current goroutine id from its stack header — the
// only portable way on an unpatched runtime.
func goidOf() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// "goroutine 123 [running]:"
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return 0
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// recordVisit appends one CU visit (called from Handler when enabled).
func recordVisit(skip int) {
	_, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return
	}
	v := visit{
		ts:   time.Now().UnixNano(),
		goid: goidOf(),
		file: filepath.Base(file),
		line: line,
	}
	visitMu.Lock()
	visitLog = append(visitLog, v)
	visitMu.Unlock()
}

// FlushVisits writes the recorded visit log to the GOAT_TRACE path (a
// no-op when tracing is off). Stop calls it automatically; the watchdog
// calls it before aborting a hung program so the trace survives.
func FlushVisits() error {
	visitMu.Lock()
	defer visitMu.Unlock()
	if visitTo == "" {
		return nil
	}
	f, err := os.Create(visitTo)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, v := range visitLog {
		fmt.Fprintf(w, "%d %d %s:%d\n", v.ts, v.goid, v.file, v.line)
	}
	return w.Flush()
}

// VisitCount reports how many CU visits are buffered (for tests).
func VisitCount() int {
	visitMu.Lock()
	defer visitMu.Unlock()
	return len(visitLog)
}
