// Package conc provides the concurrency primitives of the virtual runtime:
// channels (with select), mutexes, RW mutexes, wait groups, condition
// variables, once, semaphores, timers and a minimal context.
//
// Every operation takes the current goroutine handle (*sim.G) explicitly,
// calls the schedule-perturbation handler at its concurrency-usage point
// (the paper's injected goat.handler()), and emits ECT events carrying the
// call-site source location, whether the operation blocked, and which peer
// goroutine it unblocked — exactly the information the coverage requirements
// (Req1–Req5) and the deadlock analyses consume.
package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// dir is the direction of a pending channel operation.
type dir uint8

const (
	dirSend dir = iota
	dirRecv
)

// waiter is a parked channel operation (the sudog analogue). A waiter
// belonging to a select carries its selectCtx; completing it requires
// winning the select's commit race.
type waiter struct {
	g       *sim.G
	dir     dir
	val     any  // send: value to transmit; recv: filled by the peer
	ok      bool // recv: false when woken by close
	closed  bool // send: the channel closed while parked (panic on wake)
	sel     *selectCtx
	caseIdx int
	done    bool // completed by a peer
}

// stale reports whether the waiter can no longer be completed (its select
// already committed to a different case, or it was already completed).
func (w *waiter) stale() bool {
	if w.done {
		return true
	}
	return w.sel != nil && w.sel.committed && w.sel.winner != w
}

// claim tries to take ownership of the waiter for completion.
func (w *waiter) claim() bool {
	if w.stale() {
		return false
	}
	if w.sel != nil {
		if !w.sel.commit(w) {
			return false
		}
	}
	w.done = true
	return true
}

// chanCore is the untyped channel implementation shared by Chan[T] and
// select.
type chanCore struct {
	id     trace.ResID
	cap    int
	buf    []any
	closed bool
	sendq  []*waiter
	recvq  []*waiter
}

// Chan is a typed channel of the virtual runtime.
type Chan[T any] struct {
	core *chanCore
}

// NewChan creates a channel with the given capacity (0 = unbuffered,
// rendezvous semantics), emitting EvChanMake at the caller's CU.
func NewChan[T any](g *sim.G, capacity int) *Chan[T] {
	file, line := sim.Caller(1)
	if capacity < 0 {
		panic("conc: negative channel capacity")
	}
	c := &Chan[T]{core: &chanCore{id: g.Sched().NewResID(), cap: capacity}}
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvChanMake, Res: c.core.id, Aux: int64(capacity), File: file, Line: line})
	return c
}

// ID returns the channel's resource identifier.
func (c *Chan[T]) ID() trace.ResID { return c.core.id }

// Cap returns the channel capacity.
func (c *Chan[T]) Cap() int { return c.core.cap }

// Len returns the number of buffered elements. The read observes shared
// mutable channel state, so it is a concurrency usage point like any
// other channel op: it runs through the scheduler handler and emits
// EvVarRead on the channel's resource. An untraced length check would be
// invisible to dependence analysis (internal/hb), hiding check-then-act
// races like serving_2137's from dependency-driven exploration.
func (c *Chan[T]) Len(g *sim.G) int {
	file, line := sim.Caller(1)
	g.HandlerCat(trace.CatChannel, file, line)
	n := len(c.core.buf)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvVarRead, Res: c.core.id, Aux: int64(n), File: file, Line: line})
	return n
}

// Closed reports whether the channel has been closed.
func (c *Chan[T]) Closed() bool { return c.core.closed }

// popRecv removes and returns the first completable receive waiter.
func (cc *chanCore) popRecv() *waiter {
	for len(cc.recvq) > 0 {
		w := cc.recvq[0]
		cc.recvq = cc.recvq[1:]
		if w.claim() {
			return w
		}
	}
	return nil
}

// popSend removes and returns the first completable send waiter.
func (cc *chanCore) popSend() *waiter {
	for len(cc.sendq) > 0 {
		w := cc.sendq[0]
		cc.sendq = cc.sendq[1:]
		if w.claim() {
			return w
		}
	}
	return nil
}

// remove deletes a specific waiter from both queues (select cleanup).
func (cc *chanCore) remove(w *waiter) {
	cc.sendq = removeWaiter(cc.sendq, w)
	cc.recvq = removeWaiter(cc.recvq, w)
}

func removeWaiter(q []*waiter, w *waiter) []*waiter {
	for i, x := range q {
		if x == w {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// sendReady reports whether a send would complete without blocking.
// A closed channel counts as ready: executing the send panics, matching Go.
func (cc *chanCore) sendReady() bool {
	if cc.closed {
		return true
	}
	if len(cc.buf) < cc.cap {
		return true
	}
	for _, w := range cc.recvq {
		if !w.stale() {
			return true
		}
	}
	return false
}

// recvReady reports whether a receive would complete without blocking.
func (cc *chanCore) recvReady() bool {
	if len(cc.buf) > 0 || cc.closed {
		return true
	}
	for _, w := range cc.sendq {
		if !w.stale() {
			return true
		}
	}
	return false
}

// send is the core send path. When block is false it returns false instead
// of parking. blocked reports whether the op parked before completing.
// Completed non-blocking sends are marked with Aux=trace.AuxTryOp: the
// predictive analyses must not mistake a TrySend — which can never
// strand — for a send that could have parked.
func (cc *chanCore) send(g *sim.G, v any, block bool, file string, line int) (completed bool) {
	var aux int64
	if !block {
		aux = trace.AuxTryOp
	}
	if cc.closed {
		panic("send on closed channel")
	}
	// A ready receiver takes the value directly (rendezvous).
	if w := cc.popRecv(); w != nil {
		w.val, w.ok = v, true
		g.Ready(w.g, cc.id, nil)
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvChanSend, Res: cc.id, Peer: w.g.ID(), Aux: aux, File: file, Line: line})
		return true
	}
	if len(cc.buf) < cc.cap {
		cc.buf = append(cc.buf, v)
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvChanSend, Res: cc.id, Aux: aux, File: file, Line: line})
		return true
	}
	if !block {
		return false
	}
	w := &waiter{g: g, dir: dirSend, val: v}
	cc.sendq = append(cc.sendq, w)
	g.Block(trace.BlockSend, cc.id, file, line)
	if w.closed {
		panic("send on closed channel")
	}
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvChanSend, Res: cc.id, Blocked: true, File: file, Line: line})
	return true
}

// recv is the core receive path.
func (cc *chanCore) recv(g *sim.G, block bool, file string, line int) (v any, ok bool, completed bool) {
	if len(cc.buf) > 0 {
		v = cc.buf[0]
		cc.buf = cc.buf[1:]
		var peer trace.GoID
		// A parked sender's value moves into the freed buffer slot.
		if w := cc.popSend(); w != nil {
			cc.buf = append(cc.buf, w.val)
			g.Ready(w.g, cc.id, nil)
			peer = w.g.ID()
		}
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvChanRecv, Res: cc.id, Peer: peer, Aux: 1, File: file, Line: line})
		return v, true, true
	}
	if w := cc.popSend(); w != nil {
		v = w.val
		g.Ready(w.g, cc.id, nil)
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvChanRecv, Res: cc.id, Peer: w.g.ID(), Aux: 1, File: file, Line: line})
		return v, true, true
	}
	if cc.closed {
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvChanRecv, Res: cc.id, Aux: 0, File: file, Line: line})
		return nil, false, true
	}
	if !block {
		return nil, false, false
	}
	w := &waiter{g: g, dir: dirRecv}
	cc.recvq = append(cc.recvq, w)
	g.Block(trace.BlockRecv, cc.id, file, line)
	okAux := int64(0)
	if w.ok {
		okAux = 1
	}
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvChanRecv, Res: cc.id, Blocked: true, Aux: okAux, File: file, Line: line})
	return w.val, w.ok, true
}

// closeCore closes the channel and wakes every parked operation.
func (cc *chanCore) closeCore(g *sim.G, file string, line int) {
	if cc.closed {
		panic("close of closed channel")
	}
	cc.closed = true
	var firstPeer trace.GoID
	woken := int64(0)
	for {
		w := cc.popRecv()
		if w == nil {
			break
		}
		w.val, w.ok = nil, false
		g.Ready(w.g, cc.id, nil)
		if firstPeer == 0 {
			firstPeer = w.g.ID()
		}
		woken++
	}
	for {
		w := cc.popSend()
		if w == nil {
			break
		}
		w.closed = true
		g.Ready(w.g, cc.id, nil)
		if firstPeer == 0 {
			firstPeer = w.g.ID()
		}
		woken++
	}
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvChanClose, Res: cc.id, Peer: firstPeer, Aux: woken, File: file, Line: line})
}

// Send transmits v, blocking until a receiver (or buffer space) is ready.
// It panics if the channel is closed, matching native semantics.
func (c *Chan[T]) Send(g *sim.G, v T) {
	file, line := sim.Caller(1)
	g.HandlerCat(trace.CatChannel, file, line)
	c.core.send(g, v, true, file, line)
}

// TrySend attempts a non-blocking send, reporting whether it completed.
func (c *Chan[T]) TrySend(g *sim.G, v T) bool {
	file, line := sim.Caller(1)
	g.HandlerCat(trace.CatChannel, file, line)
	return c.core.send(g, v, false, file, line)
}

// Recv receives a value, blocking until one is available; ok is false when
// the channel is closed and drained.
func (c *Chan[T]) Recv(g *sim.G) (T, bool) {
	file, line := sim.Caller(1)
	g.HandlerCat(trace.CatChannel, file, line)
	v, ok, _ := c.core.recv(g, true, file, line)
	return coerce[T](v), ok
}

// TryRecv attempts a non-blocking receive; done reports whether the
// operation completed (ok distinguishes a real value from a closed channel).
func (c *Chan[T]) TryRecv(g *sim.G) (v T, ok bool, done bool) {
	file, line := sim.Caller(1)
	g.HandlerCat(trace.CatChannel, file, line)
	rv, ok, done := c.core.recv(g, false, file, line)
	return coerce[T](rv), ok, done
}

// Close closes the channel, waking all parked senders (they panic) and
// receivers (they observe ok=false).
func (c *Chan[T]) Close(g *sim.G) {
	file, line := sim.Caller(1)
	g.HandlerCat(trace.CatChannel, file, line)
	c.core.closeCore(g, file, line)
}

// Range receives until the channel closes or body returns false, the
// analogue of `for v := range ch`.
func (c *Chan[T]) Range(g *sim.G, body func(T) bool) {
	for {
		file, line := sim.Caller(1)
		g.HandlerCat(trace.CatChannel, file, line)
		v, ok, _ := c.core.recv(g, true, file, line)
		if !ok {
			return
		}
		if !body(coerce[T](v)) {
			return
		}
	}
}

func coerce[T any](v any) T {
	if v == nil {
		var zero T
		return zero
	}
	return v.(T)
}
