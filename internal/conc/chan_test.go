package conc

import (
	"testing"

	"goat/internal/sim"
	"goat/internal/trace"
)

// run executes fn deterministically (no noise) and returns the result.
func run(t *testing.T, fn func(*sim.G)) *sim.Result {
	t.Helper()
	return sim.Run(sim.Options{PreemptProb: -1}, fn)
}

// runSeed executes fn with scheduling noise under the given seed.
func runSeed(seed int64, delays int, fn func(*sim.G)) *sim.Result {
	return sim.Run(sim.Options{Seed: seed, Delays: delays}, fn)
}

func mustOK(t *testing.T, r *sim.Result) {
	t.Helper()
	if r.Outcome != sim.OutcomeOK {
		t.Fatalf("outcome = %v, want OK\n%v", r.Outcome, r)
	}
}

func TestUnbufferedRendezvous(t *testing.T) {
	var got int
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		g.Go("sender", func(c *sim.G) { ch.Send(c, 42) })
		got, _ = ch.Recv(g)
	})
	mustOK(t, r)
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestUnbufferedSenderBlocksFirst(t *testing.T) {
	var order []string
	r := run(t, func(g *sim.G) {
		ch := NewChan[string](g, 0)
		g.Go("sender", func(c *sim.G) {
			order = append(order, "before-send")
			ch.Send(c, "x")
			order = append(order, "after-send")
		})
		g.Yield() // let the sender reach its send and park
		order = append(order, "before-recv")
		v, ok := ch.Recv(g)
		order = append(order, "after-recv:"+v)
		if !ok {
			t.Error("ok = false")
		}
		g.Yield()
	})
	mustOK(t, r)
	want := []string{"before-send", "before-recv", "after-recv:x", "after-send"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBufferedSendNoBlockUntilFull(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 2)
		ch.Send(g, 1)
		ch.Send(g, 2)
		if ch.Len(g) != 2 {
			t.Errorf("Len = %d, want 2", ch.Len(g))
		}
		if ok := ch.TrySend(g, 3); ok {
			t.Error("TrySend on full buffer succeeded")
		}
		v, _ := ch.Recv(g)
		if v != 1 {
			t.Errorf("FIFO violated: got %d", v)
		}
	})
	mustOK(t, r)
}

func TestBufferedFullSenderParksAndHandsOff(t *testing.T) {
	var got []int
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 1)
		ch.Send(g, 1)
		g.Go("sender2", func(c *sim.G) { ch.Send(c, 2) })
		g.Yield() // sender2 parks on the full buffer
		v1, _ := ch.Recv(g)
		v2, _ := ch.Recv(g)
		got = append(got, v1, v2)
	})
	mustOK(t, r)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestRecvOnClosedReturnsZero(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 1)
		ch.Send(g, 7)
		ch.Close(g)
		if v, ok := ch.Recv(g); !ok || v != 7 {
			t.Errorf("drain got (%d,%v), want (7,true)", v, ok)
		}
		if v, ok := ch.Recv(g); ok || v != 0 {
			t.Errorf("closed recv got (%d,%v), want (0,false)", v, ok)
		}
	})
	mustOK(t, r)
}

func TestCloseWakesBlockedReceivers(t *testing.T) {
	var oks []bool
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		for i := 0; i < 3; i++ {
			g.Go("rx", func(c *sim.G) {
				_, ok := ch.Recv(c)
				oks = append(oks, ok)
			})
		}
		g.Yield()
		g.Yield()
		g.Yield()
		ch.Close(g)
	})
	mustOK(t, r)
	if len(oks) != 3 {
		t.Fatalf("only %d receivers woke", len(oks))
	}
	for _, ok := range oks {
		if ok {
			t.Fatal("receiver woken by close reported ok=true")
		}
	}
}

func TestSendOnClosedPanics(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		ch.Close(g)
		ch.Send(g, 1)
	})
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH", r.Outcome)
	}
}

func TestBlockedSenderPanicsWhenChannelCloses(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		g.Go("sender", func(c *sim.G) { ch.Send(c, 1) })
		g.Yield() // sender parks
		ch.Close(g)
		g.Yield()
	})
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH (send on closed)", r.Outcome)
	}
}

func TestDoubleClosePanics(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		ch.Close(g)
		ch.Close(g)
	})
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH (double close)", r.Outcome)
	}
}

func TestTryRecv(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 1)
		if _, _, done := ch.TryRecv(g); done {
			t.Error("TryRecv on empty channel completed")
		}
		ch.Send(g, 5)
		v, ok, done := ch.TryRecv(g)
		if !done || !ok || v != 5 {
			t.Errorf("TryRecv = (%d,%v,%v)", v, ok, done)
		}
		ch.Close(g)
		_, ok, done = ch.TryRecv(g)
		if !done || ok {
			t.Errorf("TryRecv on closed = ok=%v done=%v, want done, !ok", ok, done)
		}
	})
	mustOK(t, r)
}

func TestRangeDrainsUntilClose(t *testing.T) {
	var got []int
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 3)
		g.Go("producer", func(c *sim.G) {
			for i := 1; i <= 3; i++ {
				ch.Send(c, i)
			}
			ch.Close(c)
		})
		ch.Range(g, func(v int) bool {
			got = append(got, v)
			return true
		})
	})
	mustOK(t, r)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 2)
		ch.Send(g, 1)
		ch.Send(g, 2)
		n := 0
		ch.Range(g, func(int) bool { n++; return false })
		if n != 1 {
			t.Errorf("body ran %d times, want 1", n)
		}
	})
	mustOK(t, r)
}

func TestLeakBlockedSenderDetected(t *testing.T) {
	// The classic leak: a sender with no receiver survives main.
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		g.Go("orphan", func(c *sim.G) { ch.Send(c, 1) })
		g.Yield()
	})
	if r.Outcome != sim.OutcomeLeak {
		t.Fatalf("outcome = %v, want PDL", r.Outcome)
	}
	if len(r.Leaked) != 1 || r.Leaked[0].Reason != trace.BlockSend {
		t.Fatalf("leaked = %v", r.Leaked)
	}
}

func TestGlobalDeadlockRecvNoSender(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		ch.Recv(g)
	})
	if r.Outcome != sim.OutcomeGlobalDeadlock {
		t.Fatalf("outcome = %v, want GDL", r.Outcome)
	}
}

func TestChanEventsCarryCU(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 1)
		ch.Send(g, 1)
		ch.Recv(g)
	})
	mustOK(t, r)
	var sendEv, recvEv *trace.Event
	for i, e := range r.Trace.Events {
		switch e.Type {
		case trace.EvChanSend:
			sendEv = &r.Trace.Events[i]
		case trace.EvChanRecv:
			recvEv = &r.Trace.Events[i]
		}
	}
	if sendEv == nil || recvEv == nil {
		t.Fatalf("missing channel events:\n%s", r.Trace)
	}
	if sendEv.File != "chan_test.go" || recvEv.File != "chan_test.go" {
		t.Fatalf("CU attribution wrong: send=%s recv=%s", sendEv.File, recvEv.File)
	}
	if sendEv.Blocked || recvEv.Blocked {
		t.Fatal("buffered ops should not be blocked")
	}
}

func TestBlockedFlagOnRendezvous(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		g.Go("sender", func(c *sim.G) { ch.Send(c, 1) })
		g.Yield() // sender parks first
		ch.Recv(g)
		g.Yield()
	})
	mustOK(t, r)
	var send, recv trace.Event
	for _, e := range r.Trace.Events {
		switch e.Type {
		case trace.EvChanSend:
			send = e
		case trace.EvChanRecv:
			recv = e
		}
	}
	if !send.Blocked {
		t.Fatalf("parked sender's event not marked blocked: %v", send)
	}
	if recv.Peer == 0 {
		t.Fatalf("receiver's event should name the unblocked sender: %v", recv)
	}
}
