package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// Cond is the sync.Cond analogue: a condition variable bound to a Mutex.
type Cond struct {
	id    trace.ResID
	l     *Mutex
	waitq []*sim.G
}

// NewCond creates a condition variable using l as its locker.
func NewCond(g *sim.G, l *Mutex) *Cond {
	return &Cond{id: g.Sched().NewResID(), l: l}
}

// ID returns the condition variable's resource identifier.
func (c *Cond) ID() trace.ResID { return c.id }

// Wait atomically releases the mutex, parks until signalled, then
// re-acquires the mutex before returning. The caller must hold the lock.
func (c *Cond) Wait(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	if !c.l.locked {
		panic("sync: Wait on Cond with unlocked Mutex")
	}
	c.waitq = append(c.waitq, g)
	c.l.unlockAt(g, file, line)
	g.Block(trace.BlockCond, c.id, file, line)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvCondWait, Res: c.id, Blocked: true, File: file, Line: line})
	c.l.lockAt(g, file, line)
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	var peer trace.GoID
	if len(c.waitq) > 0 {
		w := c.waitq[0]
		c.waitq = c.waitq[1:]
		g.Ready(w, c.id, nil)
		peer = w.ID()
	}
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvCondSignal, Res: c.id, Peer: peer, File: file, Line: line})
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	var first trace.GoID
	n := int64(len(c.waitq))
	for _, w := range c.waitq {
		g.Ready(w, c.id, nil)
		if first == 0 {
			first = w.ID()
		}
	}
	c.waitq = nil
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvCondBroadcast, Res: c.id, Peer: first, Aux: n, File: file, Line: line})
}
