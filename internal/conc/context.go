package conc

import (
	"errors"

	"goat/internal/sim"
)

// Context is a minimal context.Context analogue: a cancellation signal
// observable as a channel, as used pervasively by the GoKer bug kernels.
type Context struct {
	done     *Chan[struct{}]
	err      error
	canceled bool
}

// Canceled is the error reported after a context is cancelled.
var Canceled = errors.New("context canceled")

// DeadlineExceeded is the error reported after a context times out.
var DeadlineExceeded = errors.New("context deadline exceeded")

// CancelFunc cancels a context when invoked by the given goroutine.
type CancelFunc func(g *sim.G)

// Background returns a never-cancelled root context.
func Background(g *sim.G) *Context {
	return &Context{done: NewChan[struct{}](g, 0)}
}

// WithCancel derives a cancellable context. The returned CancelFunc is
// idempotent. The context is registered with the scheduler as a target
// for injected cancellation faults.
func WithCancel(g *sim.G) (*Context, CancelFunc) {
	ctx := &Context{done: NewChan[struct{}](g, 0)}
	cancel := func(cg *sim.G) {
		if ctx.canceled {
			return
		}
		ctx.canceled = true
		ctx.err = Canceled
		ctx.done.Close(cg)
	}
	g.Sched().RegisterCancel(cancel)
	return ctx, cancel
}

// WithTimeout derives a context cancelled automatically after d of virtual
// time (via a system goroutine), or earlier by the returned CancelFunc.
func WithTimeout(g *sim.G, d Duration) (*Context, CancelFunc) {
	ctx := &Context{done: NewChan[struct{}](g, 0)}
	fire := func(cg *sim.G, err error) {
		if ctx.canceled {
			return
		}
		ctx.canceled = true
		ctx.err = err
		ctx.done.Close(cg)
	}
	g.GoSystem("ctx-timer", func(tg *sim.G) {
		Sleep(tg, d)
		fire(tg, DeadlineExceeded)
	})
	g.Sched().RegisterCancel(func(cg *sim.G) { fire(cg, Canceled) })
	return ctx, func(cg *sim.G) { fire(cg, Canceled) }
}

// Done returns the cancellation channel (closed when the context ends).
func (c *Context) Done() *Chan[struct{}] { return c.done }

// Err returns nil until the context is cancelled or times out.
func (c *Context) Err() error { return c.err }
