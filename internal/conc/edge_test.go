package conc

import (
	"testing"

	"goat/internal/sim"
	"goat/internal/trace"
)

func TestChanAccessors(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 3)
		if ch.Cap() != 3 || ch.Len(g) != 0 || ch.Closed() {
			t.Errorf("fresh channel: cap=%d len=%d closed=%v", ch.Cap(), ch.Len(g), ch.Closed())
		}
		if ch.ID() == 0 {
			t.Error("zero resource id")
		}
		ch.Send(g, 1)
		ch.Send(g, 2)
		if ch.Len(g) != 2 {
			t.Errorf("Len = %d", ch.Len(g))
		}
		ch.Close(g)
		if !ch.Closed() {
			t.Error("Closed = false after Close")
		}
		// Buffered values remain receivable after close.
		if v, ok := ch.Recv(g); !ok || v != 1 {
			t.Errorf("post-close drain = (%d,%v)", v, ok)
		}
	})
	mustOK(t, r)
}

func TestNegativeCapacityPanics(t *testing.T) {
	r := run(t, func(g *sim.G) {
		NewChan[int](g, -1)
	})
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v", r.Outcome)
	}
}

func TestTrySendOnClosedPanics(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 1)
		ch.Close(g)
		ch.TrySend(g, 1)
	})
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v", r.Outcome)
	}
}

func TestWaitGroupReuse(t *testing.T) {
	// sync.WaitGroup may be reused for independent rounds.
	rounds := 0
	r := run(t, func(g *sim.G) {
		wg := NewWaitGroup(g)
		for round := 0; round < 3; round++ {
			wg.Add(g, 2)
			for i := 0; i < 2; i++ {
				g.Go("w", func(c *sim.G) { wg.Done(c) })
			}
			wg.Wait(g)
			rounds++
		}
		if wg.Count() != 0 {
			t.Errorf("count = %d", wg.Count())
		}
	})
	mustOK(t, r)
	if rounds != 3 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestCondMultipleSignalRounds(t *testing.T) {
	served := 0
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		cond := NewCond(g, mu)
		queue := 0
		for i := 0; i < 3; i++ {
			g.Go("waiter", func(c *sim.G) {
				mu.Lock(c)
				for queue == 0 {
					cond.Wait(c)
				}
				queue--
				served++
				mu.Unlock(c)
			})
			g.Yield()
		}
		for i := 0; i < 3; i++ {
			mu.Lock(g)
			queue++
			cond.Signal(g)
			mu.Unlock(g)
			g.Yield()
			g.Yield()
		}
	})
	mustOK(t, r)
	if served != 3 {
		t.Fatalf("served = %d", served)
	}
}

func TestSemaphoreFIFOHandoff(t *testing.T) {
	var order []int
	r := run(t, func(g *sim.G) {
		sem := NewSemaphore(g, 1)
		sem.Acquire(g)
		for i := 0; i < 3; i++ {
			i := i
			g.Go("w", func(c *sim.G) {
				sem.Acquire(c)
				order = append(order, i)
				sem.Release(c)
			})
			g.Yield()
		}
		sem.Release(g)
	})
	mustOK(t, r)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestContextCancelBeatsTimeout(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ctx, cancel := WithTimeout(g, 1000)
		cancel(g)
		ctx.Done().Recv(g)
		if ctx.Err() != Canceled {
			t.Errorf("Err = %v, want Canceled", ctx.Err())
		}
	})
	mustOK(t, r)
}

func TestContextTimeoutThenCancelIdempotent(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ctx, cancel := WithTimeout(g, 10)
		ctx.Done().Recv(g) // timeout fires
		cancel(g)          // must be a no-op, not a double close
		if ctx.Err() != DeadlineExceeded {
			t.Errorf("Err = %v", ctx.Err())
		}
	})
	mustOK(t, r)
}

func TestAfterDeliversVirtualTime(t *testing.T) {
	r := run(t, func(g *sim.G) {
		start := g.Sched().Now()
		ch := After(g, 250)
		at, ok := ch.Recv(g)
		if !ok || at < start+250 {
			t.Errorf("After delivered %d (start %d)", at, start)
		}
	})
	mustOK(t, r)
}

func TestSleepZeroIsNoop(t *testing.T) {
	r := run(t, func(g *sim.G) {
		before := g.Sched().Now()
		Sleep(g, 0)
		Sleep(g, -5)
		if g.Sched().Now() != before {
			t.Error("zero sleep advanced time")
		}
	})
	mustOK(t, r)
}

func TestSharedAccessors(t *testing.T) {
	r := run(t, func(g *sim.G) {
		x := NewShared(g, "cfg", 7)
		if x.Name() != "cfg" || x.ID() == 0 {
			t.Errorf("accessors: %q %d", x.Name(), x.ID())
		}
		if x.Load(g) != 7 {
			t.Error("initial value lost")
		}
		x.Store(g, 9)
		if got := x.Update(g, func(v int) int { return v * 2 }); got != 18 {
			t.Errorf("Update = %d", got)
		}
	})
	mustOK(t, r)
	// The trace must contain the reads and writes.
	counts := r.Trace.CountByType()
	if counts[trace.EvVarRead] != 2 || counts[trace.EvVarWrite] != 2 {
		t.Fatalf("var events = %v", counts)
	}
}

func TestMutexHolderAccessor(t *testing.T) {
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		if mu.Holder() != 0 {
			t.Error("free mutex has a holder")
		}
		mu.Lock(g)
		if mu.Holder() != g.ID() {
			t.Errorf("holder = %d", mu.Holder())
		}
		mu.Unlock(g)
		if mu.Holder() != 0 {
			t.Error("holder survives unlock")
		}
	})
	mustOK(t, r)
}

func TestCrossGoroutineUnlockAllowed(t *testing.T) {
	// Go's mutexes are not owner-checked; unlock from another goroutine
	// is legal.
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		mu.Lock(g)
		g.Go("other", func(c *sim.G) { mu.Unlock(c) })
		g.Yield()
		mu.Lock(g) // reacquire after the cross-unlock
		mu.Unlock(g)
	})
	mustOK(t, r)
}

func TestRangeOnClosedEmptyChannel(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		ch.Close(g)
		n := 0
		ch.Range(g, func(int) bool { n++; return true })
		if n != 0 {
			t.Errorf("range over closed empty channel ran %d times", n)
		}
	})
	mustOK(t, r)
}

func TestSelectManyCasesAllBlocked(t *testing.T) {
	r := run(t, func(g *sim.G) {
		chans := make([]*Chan[int], 5)
		cases := make([]Case, 5)
		for i := range chans {
			chans[i] = NewChan[int](g, 0)
			cases[i] = CaseRecv(chans[i])
		}
		g.Go("feeder", func(c *sim.G) {
			Sleep(c, 10)
			chans[3].Send(c, 99)
		})
		idx, v, ok := Select(g, cases, false)
		if idx != 3 || !ok || v.(int) != 99 {
			t.Errorf("select = (%d,%v,%v)", idx, v, ok)
		}
	})
	mustOK(t, r)
}
