package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// Mutex is a mutual-exclusion lock of the virtual runtime. Like
// sync.Mutex it is not reentrant and may be unlocked by a goroutine other
// than the locker; unlocking an unlocked mutex panics.
type Mutex struct {
	id     trace.ResID
	locked bool
	holder trace.GoID // informational: last successful locker
	waitq  []*sim.G
}

// NewMutex creates a mutex.
func NewMutex(g *sim.G) *Mutex {
	return &Mutex{id: g.Sched().NewResID()}
}

// ID returns the mutex's resource identifier.
func (m *Mutex) ID() trace.ResID { return m.id }

// Holder returns the goroutine that most recently acquired the lock, or 0.
func (m *Mutex) Holder() trace.GoID {
	if !m.locked {
		return 0
	}
	return m.holder
}

// Lock acquires the mutex, parking until it is free.
func (m *Mutex) Lock(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	m.lockAt(g, file, line)
}

func (m *Mutex) lockAt(g *sim.G, file string, line int) {
	if !m.locked {
		m.locked = true
		m.holder = g.ID()
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvMutexLock, Res: m.id, File: file, Line: line})
		return
	}
	m.waitq = append(m.waitq, g)
	g.Block(trace.BlockMutex, m.id, file, line)
	// The unlocker transferred ownership to us before waking us.
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvMutexLock, Res: m.id, Blocked: true, File: file, Line: line})
}

// TryLock attempts to acquire the mutex without blocking.
func (m *Mutex) TryLock(g *sim.G) bool {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	if m.locked {
		return false
	}
	m.locked = true
	m.holder = g.ID()
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvMutexLock, Res: m.id, File: file, Line: line})
	return true
}

// Unlock releases the mutex, handing it directly to the first waiter.
func (m *Mutex) Unlock(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	m.unlockAt(g, file, line)
}

func (m *Mutex) unlockAt(g *sim.G, file string, line int) {
	if !m.locked {
		panic("sync: unlock of unlocked mutex")
	}
	if len(m.waitq) > 0 {
		next := m.waitq[0]
		m.waitq = m.waitq[1:]
		m.holder = next.ID() // direct handoff keeps the lock held
		g.Ready(next, m.id, nil)
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvMutexUnlock, Res: m.id, Peer: next.ID(), File: file, Line: line})
		return
	}
	m.locked = false
	m.holder = 0
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvMutexUnlock, Res: m.id, File: file, Line: line})
}
