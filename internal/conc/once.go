package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// onceState tracks the three phases of a Once.
type onceState uint8

const (
	onceIdle onceState = iota
	onceRunning
	onceDone
)

// Once is the sync.Once analogue: concurrent callers of Do park until the
// first invocation's function returns.
type Once struct {
	id    trace.ResID
	state onceState
	waitq []*sim.G
}

// NewOnce creates a Once.
func NewOnce(g *sim.G) *Once {
	return &Once{id: g.Sched().NewResID()}
}

// ID returns the once's resource identifier.
func (o *Once) ID() trace.ResID { return o.id }

// Done reports whether the function has completed.
func (o *Once) Done() bool { return o.state == onceDone }

// Do runs f if and only if this is the first call; other callers park
// until f returns.
func (o *Once) Do(g *sim.G, f func()) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	switch o.state {
	case onceDone:
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvOnceDo, Res: o.id, Aux: 0, File: file, Line: line})
		return
	case onceRunning:
		o.waitq = append(o.waitq, g)
		g.Block(trace.BlockSync, o.id, file, line)
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvOnceDo, Res: o.id, Aux: 0, Blocked: true, File: file, Line: line})
		return
	}
	o.state = onceRunning
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvOnceDo, Res: o.id, Aux: 1, File: file, Line: line})
	defer func() {
		o.state = onceDone
		for _, w := range o.waitq {
			g.Ready(w, o.id, nil)
		}
		o.waitq = nil
	}()
	f()
}
