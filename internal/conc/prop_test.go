package conc

import (
	"sort"
	"testing"
	"testing/quick"

	"goat/internal/sim"
)

// Property: across arbitrary seeds, delay bounds, capacities, and
// producer/consumer counts, every value sent is received exactly once —
// channels neither lose nor duplicate messages, under any interleaving.
func TestQuickChannelConservation(t *testing.T) {
	f := func(seed int64, capRaw, prodRaw, perRaw uint8, delays uint8) bool {
		capacity := int(capRaw % 4)
		producers := int(prodRaw%3) + 1
		perProducer := int(perRaw%5) + 1
		total := producers * perProducer
		var got []int
		r := sim.Run(sim.Options{Seed: seed, Delays: int(delays % 4)}, func(g *sim.G) {
			ch := NewChan[int](g, capacity)
			wg := NewWaitGroup(g)
			for p := 0; p < producers; p++ {
				p := p
				wg.Add(g, 1)
				g.Go("producer", func(c *sim.G) {
					for i := 0; i < perProducer; i++ {
						ch.Send(c, p*1000+i)
					}
					wg.Done(c)
				})
			}
			done := NewChan[int](g, 0)
			g.Go("consumer", func(c *sim.G) {
				for i := 0; i < total; i++ {
					v, ok := ch.Recv(c)
					if !ok {
						break
					}
					got = append(got, v)
				}
				done.Send(c, 1)
			})
			wg.Wait(g)
			done.Recv(g)
		})
		if r.Outcome != sim.OutcomeOK {
			return false
		}
		if len(got) != total {
			return false
		}
		sort.Ints(got)
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				return false // duplicate delivery
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-producer channel delivers values in FIFO order
// regardless of schedule perturbation.
func TestQuickChannelFIFO(t *testing.T) {
	f := func(seed int64, capRaw, nRaw, delays uint8) bool {
		capacity := int(capRaw % 5)
		n := int(nRaw%8) + 1
		var got []int
		r := sim.Run(sim.Options{Seed: seed, Delays: int(delays % 5)}, func(g *sim.G) {
			ch := NewChan[int](g, capacity)
			g.Go("producer", func(c *sim.G) {
				for i := 0; i < n; i++ {
					ch.Send(c, i)
				}
				ch.Close(c)
			})
			ch.Range(g, func(v int) bool {
				got = append(got, v)
				return true
			})
		})
		if r.Outcome != sim.OutcomeOK || len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a mutex-protected counter always reaches exactly its target
// under arbitrary schedules (no lost updates possible in the virtual
// runtime when guarded).
func TestQuickMutexCounter(t *testing.T) {
	f := func(seed int64, workersRaw, incRaw, delays uint8) bool {
		workers := int(workersRaw%4) + 1
		incs := int(incRaw%5) + 1
		counter := 0
		r := sim.Run(sim.Options{Seed: seed, Delays: int(delays % 4)}, func(g *sim.G) {
			mu := NewMutex(g)
			wg := NewWaitGroup(g)
			for w := 0; w < workers; w++ {
				wg.Add(g, 1)
				g.Go("w", func(c *sim.G) {
					for i := 0; i < incs; i++ {
						mu.Lock(c)
						v := counter
						c.Yield()
						counter = v + 1
						mu.Unlock(c)
					}
					wg.Done(c)
				})
			}
			wg.Wait(g)
		})
		return r.Outcome == sim.OutcomeOK && counter == workers*incs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every run, whatever the schedule, yields a structurally valid
// trace (monotonic timestamps, creation before use).
func TestQuickTraceAlwaysValid(t *testing.T) {
	f := func(seed int64, delays uint8) bool {
		r := sim.Run(sim.Options{Seed: seed, Delays: int(delays % 6)}, func(g *sim.G) {
			ch := NewChan[int](g, 1)
			mu := NewMutex(g)
			wg := NewWaitGroup(g)
			wg.Add(g, 2)
			g.Go("a", func(c *sim.G) {
				mu.Lock(c)
				ch.Send(c, 1)
				mu.Unlock(c)
				wg.Done(c)
			})
			g.Go("b", func(c *sim.G) {
				ch.Recv(c)
				wg.Done(c)
			})
			wg.Wait(g)
		})
		return r.Trace.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// moby28462: the paper's listing 1. Under some schedules the program leaks
// both spawned goroutines (mixed deadlock); under most it completes. This
// integration test checks both behaviours are observable and correctly
// classified.
func TestListing1MixedDeadlockObservable(t *testing.T) {
	prog := func(g *sim.G) {
		mu := NewMutex(g)
		status := NewChan[int](g, 0)
		g.Go("Monitor", func(c *sim.G) {
			for {
				idx, _, _ := Select(c, []Case{CaseRecv(status)}, true)
				if idx == 0 {
					return
				}
				mu.Lock(c)
				c.Yield() // models work in the critical section
				mu.Unlock(c)
				Sleep(c, 10)
			}
		})
		g.Go("StatusChange", func(c *sim.G) {
			mu.Lock(c)
			status.Send(c, 1)
			mu.Unlock(c)
		})
		Sleep(g, 1000)
	}
	var sawOK, sawLeak bool
	for seed := int64(0); seed < 200 && !(sawOK && sawLeak); seed++ {
		r := sim.Run(sim.Options{Seed: seed, Delays: 2}, prog)
		switch r.Outcome {
		case sim.OutcomeOK:
			sawOK = true
		case sim.OutcomeLeak:
			sawLeak = true
		case sim.OutcomeCrash:
			t.Fatalf("unexpected crash: %v", r)
		}
	}
	if !sawOK {
		t.Error("listing-1 program never completed successfully")
	}
	if !sawLeak {
		t.Error("listing-1 program never exhibited the mixed deadlock")
	}
}
