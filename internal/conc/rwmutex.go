package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// RWMutex is a reader/writer lock with writer preference, matching
// sync.RWMutex: once a writer waits, new readers queue behind it.
type RWMutex struct {
	id      trace.ResID
	readers int
	writer  bool
	wHolder trace.GoID
	wWaitq  []*sim.G
	rWaitq  []*sim.G
}

// NewRWMutex creates a reader/writer mutex.
func NewRWMutex(g *sim.G) *RWMutex {
	return &RWMutex{id: g.Sched().NewResID()}
}

// ID returns the lock's resource identifier.
func (m *RWMutex) ID() trace.ResID { return m.id }

// Lock acquires the write lock.
func (m *RWMutex) Lock(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	if !m.writer && m.readers == 0 && len(m.wWaitq) == 0 {
		m.writer = true
		m.wHolder = g.ID()
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvRWLock, Res: m.id, File: file, Line: line})
		return
	}
	m.wWaitq = append(m.wWaitq, g)
	g.Block(trace.BlockMutex, m.id, file, line)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvRWLock, Res: m.id, Blocked: true, File: file, Line: line})
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	if !m.writer {
		panic("sync: Unlock of unlocked RWMutex")
	}
	m.writer = false
	m.wHolder = 0
	peer := m.release(g)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvRWUnlock, Res: m.id, Peer: peer, File: file, Line: line})
}

// RLock acquires a read lock.
func (m *RWMutex) RLock(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	if !m.writer && len(m.wWaitq) == 0 {
		m.readers++
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvRLock, Res: m.id, File: file, Line: line})
		return
	}
	m.rWaitq = append(m.rWaitq, g)
	g.Block(trace.BlockRMutex, m.id, file, line)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvRLock, Res: m.id, Blocked: true, File: file, Line: line})
}

// RUnlock releases a read lock.
func (m *RWMutex) RUnlock(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	if m.readers == 0 {
		panic("sync: RUnlock of unlocked RWMutex")
	}
	m.readers--
	var peer trace.GoID
	if m.readers == 0 {
		peer = m.release(g)
	}
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvRUnlock, Res: m.id, Peer: peer, File: file, Line: line})
}

// release hands the lock to waiters: one writer first, else all readers.
// It returns the first woken goroutine (for event attribution).
func (m *RWMutex) release(g *sim.G) trace.GoID {
	if m.writer || m.readers > 0 {
		return 0
	}
	if len(m.wWaitq) > 0 {
		next := m.wWaitq[0]
		m.wWaitq = m.wWaitq[1:]
		m.writer = true
		m.wHolder = next.ID()
		g.Ready(next, m.id, nil)
		return next.ID()
	}
	var first trace.GoID
	for _, r := range m.rWaitq {
		m.readers++
		g.Ready(r, m.id, nil)
		if first == 0 {
			first = r.ID()
		}
	}
	m.rWaitq = nil
	return first
}
