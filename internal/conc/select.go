package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// selectCtx coordinates the commit race between the cases of one blocked
// select: the first peer to claim any of its waiters wins; all other
// waiters become stale.
type selectCtx struct {
	committed bool
	winner    *waiter
}

// commit attempts to make w the winning case; it fails if another case
// already won.
func (sc *selectCtx) commit(w *waiter) bool {
	if sc.committed {
		return false
	}
	sc.committed = true
	sc.winner = w
	return true
}

// Case is one communication clause of a Select. Build with CaseSend,
// CaseRecv, or CaseNil.
type Case struct {
	core *chanCore
	dir  dir
	val  any
}

// CaseSend is a `case ch <- v` clause.
func CaseSend[T any](c *Chan[T], v T) Case { return Case{core: c.core, dir: dirSend, val: v} }

// CaseRecv is a `case v := <-ch` clause.
func CaseRecv[T any](c *Chan[T]) Case { return Case{core: c.core, dir: dirRecv} }

// CaseNil is a clause on a nil channel: never ready, exactly like native Go.
func CaseNil() Case { return Case{core: nil} }

// DefaultIdx is the index Select reports when the default case ran.
const DefaultIdx = -1

// ready reports whether the case would complete without blocking.
func (c Case) ready() bool {
	if c.core == nil {
		return false
	}
	if c.dir == dirSend {
		return c.core.sendReady()
	}
	return c.core.recvReady()
}

// execSend completes a ready send without emitting channel events
// (select emits its own); it returns the unblocked peer, if any.
func execSend(g *sim.G, cc *chanCore, v any) trace.GoID {
	if cc.closed {
		panic("send on closed channel")
	}
	if w := cc.popRecv(); w != nil {
		w.val, w.ok = v, true
		g.Ready(w.g, cc.id, nil)
		return w.g.ID()
	}
	if len(cc.buf) < cc.cap {
		cc.buf = append(cc.buf, v)
		return 0
	}
	panic("conc: execSend on non-ready channel")
}

// execRecv completes a ready receive without emitting channel events.
func execRecv(g *sim.G, cc *chanCore) (v any, ok bool, peer trace.GoID) {
	if len(cc.buf) > 0 {
		v = cc.buf[0]
		cc.buf = cc.buf[1:]
		if w := cc.popSend(); w != nil {
			cc.buf = append(cc.buf, w.val)
			g.Ready(w.g, cc.id, nil)
			peer = w.g.ID()
		}
		return v, true, peer
	}
	if w := cc.popSend(); w != nil {
		g.Ready(w.g, cc.id, nil)
		return w.val, true, w.g.ID()
	}
	if cc.closed {
		return nil, false, 0
	}
	panic("conc: execRecv on non-ready channel")
}

// Select executes one clause of a select statement. Among the ready cases
// it picks pseudo-randomly (the runtime's semantics, driven by the
// scheduler's seeded RNG). With no ready case it runs the default when
// hasDefault is true, otherwise it parks until a peer completes one case.
//
// It returns the executed case index (DefaultIdx for default), and for
// receive cases the received value and ok flag.
func Select(g *sim.G, cases []Case, hasDefault bool) (idx int, recv any, ok bool) {
	file, line := sim.Caller(1)
	g.HandlerCat(trace.CatSelect, file, line)
	s := g.Sched()

	var readyIdx []int
	for i, c := range cases {
		if c.ready() {
			readyIdx = append(readyIdx, i)
		}
	}
	if len(readyIdx) > 0 {
		idx = readyIdx[s.Intn(len(readyIdx))]
		c := cases[idx]
		var peer trace.GoID
		dirStr := "recv"
		if c.dir == dirSend {
			dirStr = "send"
			peer = execSend(g, c.core, c.val)
			ok = true
		} else {
			recv, ok, peer = execRecv(g, c.core)
		}
		s.Emit(trace.Event{G: g.ID(), Type: trace.EvSelect, Aux: int64(idx), File: file, Line: line})
		s.Emit(trace.Event{G: g.ID(), Type: trace.EvSelectCase, Res: c.core.id, Aux: int64(idx), Peer: peer, Str: dirStr, File: file, Line: line})
		return idx, recv, ok
	}

	if hasDefault {
		s.Emit(trace.Event{G: g.ID(), Type: trace.EvSelect, Aux: DefaultIdx, File: file, Line: line})
		return DefaultIdx, nil, false
	}

	// Park on every non-nil case.
	sc := &selectCtx{}
	waiters := make([]*waiter, 0, len(cases))
	for i, c := range cases {
		if c.core == nil {
			continue
		}
		w := &waiter{g: g, dir: c.dir, val: c.val, sel: sc, caseIdx: i}
		if c.dir == dirSend {
			c.core.sendq = append(c.core.sendq, w)
		} else {
			c.core.recvq = append(c.core.recvq, w)
		}
		waiters = append(waiters, w)
	}
	g.Block(trace.BlockSelect, 0, file, line)

	// A peer committed exactly one case; unhook the rest.
	winner := sc.winner
	for i, c := range cases {
		if c.core == nil {
			continue
		}
		_ = i
		for _, w := range waiters {
			if w != winner {
				c.core.remove(w)
			}
		}
	}
	if winner == nil {
		panic("conc: select woken without a committed case")
	}
	idx = winner.caseIdx
	c := cases[idx]
	dirStr := "recv"
	if winner.dir == dirSend {
		dirStr = "send"
		if winner.closed {
			panic("send on closed channel")
		}
		ok = true
	} else {
		recv, ok = winner.val, winner.ok
	}
	s.Emit(trace.Event{G: g.ID(), Type: trace.EvSelect, Aux: int64(idx), Blocked: true, File: file, Line: line})
	s.Emit(trace.Event{G: g.ID(), Type: trace.EvSelectCase, Res: c.core.id, Aux: int64(idx), Blocked: true, Str: dirStr, File: file, Line: line})
	return idx, recv, ok
}
