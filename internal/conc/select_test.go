package conc

import (
	"testing"

	"goat/internal/sim"
	"goat/internal/trace"
)

func TestSelectDefaultWhenNothingReady(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		idx, _, _ := Select(g, []Case{CaseRecv(ch)}, true)
		if idx != DefaultIdx {
			t.Errorf("idx = %d, want default", idx)
		}
	})
	mustOK(t, r)
}

func TestSelectReadyRecv(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 1)
		ch.Send(g, 9)
		idx, v, ok := Select(g, []Case{CaseRecv(ch)}, false)
		if idx != 0 || !ok || v.(int) != 9 {
			t.Errorf("select = (%d,%v,%v)", idx, v, ok)
		}
	})
	mustOK(t, r)
}

func TestSelectReadySend(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 1)
		idx, _, _ := Select(g, []Case{CaseSend(ch, 3)}, false)
		if idx != 0 {
			t.Errorf("idx = %d", idx)
		}
		if v, _ := ch.Recv(g); v != 3 {
			t.Errorf("buffered value = %d", v)
		}
	})
	mustOK(t, r)
}

func TestSelectBlocksThenCommitsOneCase(t *testing.T) {
	r := run(t, func(g *sim.G) {
		a := NewChan[int](g, 0)
		b := NewChan[int](g, 0)
		g.Go("sender", func(c *sim.G) { a.Send(c, 1) })
		idx, v, ok := Select(g, []Case{CaseRecv(a), CaseRecv(b)}, false)
		if idx != 0 || !ok || v.(int) != 1 {
			t.Errorf("select = (%d,%v,%v)", idx, v, ok)
		}
		g.Yield()
	})
	mustOK(t, r)
}

func TestSelectBlockedSendCase(t *testing.T) {
	r := run(t, func(g *sim.G) {
		a := NewChan[int](g, 0)
		g.Go("receiver", func(c *sim.G) {
			if v, _ := a.Recv(c); v != 5 {
				t.Errorf("received %d", v)
			}
		})
		// Park the select first so the send case completes from the waiter
		// path. (The receiver hasn't run yet.)
		idx, _, _ := Select(g, []Case{CaseSend(a, 5)}, false)
		if idx != 0 {
			t.Errorf("idx = %d", idx)
		}
		g.Yield()
	})
	mustOK(t, r)
}

func TestSelectStaleSiblingWaitersCleaned(t *testing.T) {
	r := run(t, func(g *sim.G) {
		a := NewChan[int](g, 0)
		b := NewChan[int](g, 0)
		g.Go("sa", func(c *sim.G) { a.Send(c, 1) })
		g.Yield()
		// a is ready, b is not; select commits a immediately.
		Select(g, []Case{CaseRecv(a), CaseRecv(b)}, false)
		// b must have no lingering waiters: a later sender must park.
		if b.core.recvReady() {
			t.Error("b claims to be recv-ready")
		}
		if len(b.core.recvq) != 0 {
			t.Errorf("b has %d stale waiters", len(b.core.recvq))
		}
		g.Yield()
	})
	mustOK(t, r)
}

func TestSelectAfterBlockedCleanup(t *testing.T) {
	r := run(t, func(g *sim.G) {
		a := NewChan[int](g, 0)
		b := NewChan[int](g, 0)
		g.Go("sender", func(c *sim.G) {
			Sleep(c, 100)
			a.Send(c, 1)
		})
		Select(g, []Case{CaseRecv(a), CaseRecv(b)}, false) // parks, then commits a
		if len(b.core.recvq) != 0 {
			t.Errorf("stale waiter left on b after blocked select: %d", len(b.core.recvq))
		}
		g.Yield()
	})
	mustOK(t, r)
}

func TestSelectClosedRecvIsReady(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		ch.Close(g)
		idx, _, ok := Select(g, []Case{CaseRecv(ch)}, false)
		if idx != 0 || ok {
			t.Errorf("select on closed = (%d, ok=%v)", idx, ok)
		}
	})
	mustOK(t, r)
}

func TestSelectSendOnClosedPanics(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		ch.Close(g)
		Select(g, []Case{CaseSend(ch, 1)}, false)
	})
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH", r.Outcome)
	}
}

func TestSelectBlockedWokenByClose(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		g.Go("closer", func(c *sim.G) {
			Sleep(c, 10)
			ch.Close(c)
		})
		idx, _, ok := Select(g, []Case{CaseRecv(ch)}, false)
		if idx != 0 || ok {
			t.Errorf("select woken by close = (%d, ok=%v)", idx, ok)
		}
		g.Yield()
	})
	mustOK(t, r)
}

func TestSelectOnlyNilChannelsDeadlocks(t *testing.T) {
	r := run(t, func(g *sim.G) {
		Select(g, []Case{CaseNil()}, false)
	})
	if r.Outcome != sim.OutcomeGlobalDeadlock {
		t.Fatalf("outcome = %v, want GDL", r.Outcome)
	}
}

func TestSelectRandomAmongReady(t *testing.T) {
	// Two ready cases: across seeds, both must get picked sometimes.
	counts := map[int]int{}
	for seed := int64(0); seed < 30; seed++ {
		sim.Run(sim.Options{Seed: seed, PreemptProb: -1}, func(g *sim.G) {
			a := NewChan[int](g, 1)
			b := NewChan[int](g, 1)
			a.Send(g, 1)
			b.Send(g, 2)
			idx, _, _ := Select(g, []Case{CaseRecv(a), CaseRecv(b)}, false)
			counts[idx]++
		})
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("select choice not randomized: %v", counts)
	}
}

func TestSelectEventsEmitted(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 1)
		ch.Send(g, 1)
		Select(g, []Case{CaseRecv(ch)}, false)
		Select(g, []Case{CaseRecv(ch)}, true) // default path
	})
	mustOK(t, r)
	var sels, cases []trace.Event
	for _, e := range r.Trace.Events {
		switch e.Type {
		case trace.EvSelect:
			sels = append(sels, e)
		case trace.EvSelectCase:
			cases = append(cases, e)
		}
	}
	if len(sels) != 2 {
		t.Fatalf("select events = %d, want 2", len(sels))
	}
	if sels[0].Aux != 0 || sels[1].Aux != int64(DefaultIdx) {
		t.Fatalf("select aux = %d,%d", sels[0].Aux, sels[1].Aux)
	}
	if len(cases) != 1 || cases[0].Str != "recv" {
		t.Fatalf("case events = %v", cases)
	}
}

func TestSelectWithTimeoutPattern(t *testing.T) {
	// The idiomatic `select { case <-work: case <-time.After(d): }`.
	r := run(t, func(g *sim.G) {
		work := NewChan[int](g, 0)
		timeout := After(g, 100)
		idx, _, _ := Select(g, []Case{CaseRecv(work), CaseRecv(timeout)}, false)
		if idx != 1 {
			t.Errorf("idx = %d, want timeout case", idx)
		}
	})
	mustOK(t, r)
}

func TestTwoSelectsRendezvousWithEachOther(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ch := NewChan[int](g, 0)
		g.Go("peer", func(c *sim.G) {
			idx, _, _ := Select(c, []Case{CaseSend(ch, 8)}, false)
			if idx != 0 {
				t.Errorf("peer idx = %d", idx)
			}
		})
		idx, v, ok := Select(g, []Case{CaseRecv(ch)}, false)
		if idx != 0 || !ok || v.(int) != 8 {
			t.Errorf("select = (%d,%v,%v)", idx, v, ok)
		}
		g.Yield()
	})
	mustOK(t, r)
}
