package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// Semaphore is a counting semaphore (the buffered-channel idiom as a
// first-class primitive).
type Semaphore struct {
	id    trace.ResID
	cap   int
	held  int
	waitq []*sim.G
}

// NewSemaphore creates a semaphore with n permits.
func NewSemaphore(g *sim.G, n int) *Semaphore {
	if n <= 0 {
		panic("conc: semaphore capacity must be positive")
	}
	return &Semaphore{id: g.Sched().NewResID(), cap: n}
}

// ID returns the semaphore's resource identifier.
func (s *Semaphore) ID() trace.ResID { return s.id }

// Acquire takes a permit, parking while none is available.
func (s *Semaphore) Acquire(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	if s.held < s.cap {
		s.held++
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvMutexLock, Res: s.id, File: file, Line: line})
		return
	}
	s.waitq = append(s.waitq, g)
	g.Block(trace.BlockSync, s.id, file, line)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvMutexLock, Res: s.id, Blocked: true, File: file, Line: line})
}

// Release returns a permit, handing it directly to the first waiter.
func (s *Semaphore) Release(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	if s.held == 0 {
		panic("conc: release of unheld semaphore")
	}
	var peer trace.GoID
	if len(s.waitq) > 0 {
		next := s.waitq[0]
		s.waitq = s.waitq[1:]
		g.Ready(next, s.id, nil) // permit transfers; held stays constant
		peer = next.ID()
	} else {
		s.held--
	}
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvMutexUnlock, Res: s.id, Peer: peer, File: file, Line: line})
}
