package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// Shared is an instrumented shared-memory cell: every Load/Store emits a
// VarRead/VarWrite event so the offline happens-before checker
// (internal/race) can detect data races. This is the reproduction's
// analogue of the paper's -race option: the virtual runtime serializes
// all accesses, so races manifest not as torn reads but as pairs of
// accesses unordered by happens-before.
type Shared[T any] struct {
	id   trace.ResID
	name string
	v    T
}

// NewShared creates a named shared cell with an initial value.
func NewShared[T any](g *sim.G, name string, init T) *Shared[T] {
	return &Shared[T]{id: g.Sched().NewResID(), name: name, v: init}
}

// ID returns the cell's resource identifier.
func (s *Shared[T]) ID() trace.ResID { return s.id }

// Name returns the cell's diagnostic name.
func (s *Shared[T]) Name() string { return s.name }

// Load reads the cell, emitting VarRead at the caller's CU.
func (s *Shared[T]) Load(g *sim.G) T {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvVarRead, Res: s.id, Str: s.name, File: file, Line: line})
	return s.v
}

// Store writes the cell, emitting VarWrite at the caller's CU.
func (s *Shared[T]) Store(g *sim.G, v T) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvVarWrite, Res: s.id, Str: s.name, File: file, Line: line})
	s.v = v
}

// Update applies f to the current value and stores the result, emitting
// both a read and a write (a classic read-modify-write).
func (s *Shared[T]) Update(g *sim.G, f func(T) T) T {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvVarRead, Res: s.id, Str: s.name, File: file, Line: line})
	v := f(s.v)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvVarWrite, Res: s.id, Str: s.name, File: file, Line: line})
	s.v = v
	return v
}
