package conc

import (
	"testing"

	"goat/internal/sim"
	"goat/internal/trace"
)

func TestMutexMutualExclusion(t *testing.T) {
	var inside, max int
	r := runSeed(3, 0, func(g *sim.G) {
		mu := NewMutex(g)
		wg := NewWaitGroup(g)
		for i := 0; i < 5; i++ {
			wg.Add(g, 1)
			g.Go("worker", func(c *sim.G) {
				mu.Lock(c)
				inside++
				if inside > max {
					max = inside
				}
				c.Yield() // try to provoke a violation
				inside--
				mu.Unlock(c)
				wg.Done(c)
			})
		}
		wg.Wait(g)
	})
	mustOK(t, r)
	if max != 1 {
		t.Fatalf("mutual exclusion violated: max inside = %d", max)
	}
}

func TestMutexHandoffFIFO(t *testing.T) {
	var order []int
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		mu.Lock(g)
		for i := 0; i < 3; i++ {
			i := i
			g.Go("w", func(c *sim.G) {
				mu.Lock(c)
				order = append(order, i)
				mu.Unlock(c)
			})
			g.Yield() // let worker i park in order
		}
		mu.Unlock(g)
	})
	mustOK(t, r)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("handoff order = %v", order)
	}
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		mu.Unlock(g)
	})
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH", r.Outcome)
	}
}

func TestMutexTryLock(t *testing.T) {
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		if !mu.TryLock(g) {
			t.Error("TryLock on free mutex failed")
		}
		if mu.TryLock(g) {
			t.Error("TryLock on held mutex succeeded")
		}
		mu.Unlock(g)
	})
	mustOK(t, r)
}

func TestMutexDoubleLockSelfDeadlock(t *testing.T) {
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		mu.Lock(g)
		mu.Lock(g) // self-deadlock
	})
	if r.Outcome != sim.OutcomeGlobalDeadlock {
		t.Fatalf("outcome = %v, want GDL", r.Outcome)
	}
}

func TestRWMutexMultipleReaders(t *testing.T) {
	var concurrent, max int
	r := run(t, func(g *sim.G) {
		mu := NewRWMutex(g)
		wg := NewWaitGroup(g)
		for i := 0; i < 4; i++ {
			wg.Add(g, 1)
			g.Go("reader", func(c *sim.G) {
				mu.RLock(c)
				concurrent++
				if concurrent > max {
					max = concurrent
				}
				c.Yield()
				concurrent--
				mu.RUnlock(c)
				wg.Done(c)
			})
		}
		wg.Wait(g)
	})
	mustOK(t, r)
	if max < 2 {
		t.Fatalf("readers never overlapped (max=%d)", max)
	}
}

func TestRWMutexWriterExcludesReaders(t *testing.T) {
	var writing bool
	r := run(t, func(g *sim.G) {
		mu := NewRWMutex(g)
		wg := NewWaitGroup(g)
		wg.Add(g, 2)
		g.Go("writer", func(c *sim.G) {
			mu.Lock(c)
			writing = true
			c.Yield()
			writing = false
			mu.Unlock(c)
			wg.Done(c)
		})
		g.Go("reader", func(c *sim.G) {
			mu.RLock(c)
			if writing {
				t.Error("reader overlapped writer")
			}
			mu.RUnlock(c)
			wg.Done(c)
		})
		wg.Wait(g)
	})
	mustOK(t, r)
}

func TestRWMutexWriterPreference(t *testing.T) {
	// A waiting writer blocks new readers (Go semantics).
	r := run(t, func(g *sim.G) {
		mu := NewRWMutex(g)
		mu.RLock(g)
		g.Go("writer", func(c *sim.G) {
			mu.Lock(c)
			mu.Unlock(c)
		})
		g.Yield() // writer parks
		g.Go("reader2", func(c *sim.G) {
			mu.RLock(c) // must queue behind the waiting writer
			mu.RUnlock(c)
		})
		g.Yield()
		mu.RUnlock(g) // writer goes first, then reader2
	})
	mustOK(t, r)
	// Verify order via the trace: EvRWLock (writer) before second EvRLock.
	var sawWriterLock bool
	var rlocksAfterWriter int
	for _, e := range r.Trace.Events {
		switch e.Type {
		case trace.EvRWLock:
			sawWriterLock = true
		case trace.EvRLock:
			if sawWriterLock {
				rlocksAfterWriter++
			}
		}
	}
	if !sawWriterLock || rlocksAfterWriter != 1 {
		t.Fatalf("writer preference violated (rlocksAfterWriter=%d)", rlocksAfterWriter)
	}
}

func TestRWMutexUnlockPanics(t *testing.T) {
	r := run(t, func(g *sim.G) { NewRWMutex(g).Unlock(g) })
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("Unlock of unlocked RWMutex: outcome = %v", r.Outcome)
	}
	r = run(t, func(g *sim.G) { NewRWMutex(g).RUnlock(g) })
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("RUnlock of unlocked RWMutex: outcome = %v", r.Outcome)
	}
}

func TestWaitGroupBasic(t *testing.T) {
	done := 0
	r := run(t, func(g *sim.G) {
		wg := NewWaitGroup(g)
		for i := 0; i < 3; i++ {
			wg.Add(g, 1)
			g.Go("w", func(c *sim.G) {
				done++
				wg.Done(c)
			})
		}
		wg.Wait(g)
		if done != 3 {
			t.Errorf("Wait returned with done=%d", done)
		}
	})
	mustOK(t, r)
}

func TestWaitGroupZeroCounterWaitReturnsImmediately(t *testing.T) {
	r := run(t, func(g *sim.G) {
		wg := NewWaitGroup(g)
		wg.Wait(g)
	})
	mustOK(t, r)
}

func TestWaitGroupNegativePanics(t *testing.T) {
	r := run(t, func(g *sim.G) {
		wg := NewWaitGroup(g)
		wg.Done(g)
	})
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH", r.Outcome)
	}
}

func TestWaitGroupMissingDoneDeadlocks(t *testing.T) {
	r := run(t, func(g *sim.G) {
		wg := NewWaitGroup(g)
		wg.Add(g, 2)
		g.Go("w", func(c *sim.G) { wg.Done(c) }) // only one Done
		wg.Wait(g)
	})
	if r.Outcome != sim.OutcomeGlobalDeadlock {
		t.Fatalf("outcome = %v, want GDL", r.Outcome)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	woken := 0
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		cond := NewCond(g, mu)
		for i := 0; i < 2; i++ {
			g.Go("waiter", func(c *sim.G) {
				mu.Lock(c)
				cond.Wait(c)
				woken++
				mu.Unlock(c)
			})
		}
		g.Yield()
		g.Yield()
		mu.Lock(g)
		cond.Signal(g)
		mu.Unlock(g)
		g.Yield()
		g.Yield()
	})
	if r.Outcome != sim.OutcomeLeak {
		t.Fatalf("outcome = %v, want PDL (one waiter never signalled)", r.Outcome)
	}
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	woken := 0
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		cond := NewCond(g, mu)
		wg := NewWaitGroup(g)
		for i := 0; i < 3; i++ {
			wg.Add(g, 1)
			g.Go("waiter", func(c *sim.G) {
				mu.Lock(c)
				cond.Wait(c)
				woken++
				mu.Unlock(c)
				wg.Done(c)
			})
		}
		g.Yield()
		g.Yield()
		g.Yield()
		mu.Lock(g)
		cond.Broadcast(g)
		mu.Unlock(g)
		wg.Wait(g)
	})
	mustOK(t, r)
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestCondWaitWithoutLockPanics(t *testing.T) {
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		NewCond(g, mu).Wait(g)
	})
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH", r.Outcome)
	}
}

func TestMissedSignalDeadlock(t *testing.T) {
	// Signal before Wait is lost — the classic missed-signal bug.
	r := run(t, func(g *sim.G) {
		mu := NewMutex(g)
		cond := NewCond(g, mu)
		mu.Lock(g)
		cond.Signal(g) // nobody waiting: lost
		mu.Unlock(g)
		mu.Lock(g)
		cond.Wait(g) // waits forever
		mu.Unlock(g)
	})
	if r.Outcome != sim.OutcomeGlobalDeadlock {
		t.Fatalf("outcome = %v, want GDL", r.Outcome)
	}
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	n := 0
	r := run(t, func(g *sim.G) {
		once := NewOnce(g)
		wg := NewWaitGroup(g)
		for i := 0; i < 4; i++ {
			wg.Add(g, 1)
			g.Go("w", func(c *sim.G) {
				once.Do(c, func() { n++ })
				wg.Done(c)
			})
		}
		wg.Wait(g)
		if !once.Done() {
			t.Error("once not done")
		}
	})
	mustOK(t, r)
	if n != 1 {
		t.Fatalf("f ran %d times", n)
	}
}

func TestOnceCallersParkWhileRunning(t *testing.T) {
	var order []string
	r := run(t, func(g *sim.G) {
		once := NewOnce(g)
		ready := NewChan[int](g, 0)
		g.Go("slow", func(c *sim.G) {
			once.Do(c, func() {
				order = append(order, "start")
				ready.Recv(c) // block inside the once body
				order = append(order, "finish")
			})
		})
		g.Yield()
		g.Go("second", func(c *sim.G) {
			once.Do(c, func() { t.Error("second caller ran f") })
			order = append(order, "second-done")
		})
		g.Yield()
		ready.Send(g, 1)
		g.Yield()
		g.Yield()
	})
	mustOK(t, r)
	want := []string{"start", "finish", "second-done"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	var inside, max int
	r := runSeed(11, 0, func(g *sim.G) {
		sem := NewSemaphore(g, 2)
		wg := NewWaitGroup(g)
		for i := 0; i < 6; i++ {
			wg.Add(g, 1)
			g.Go("w", func(c *sim.G) {
				sem.Acquire(c)
				inside++
				if inside > max {
					max = inside
				}
				c.Yield()
				inside--
				sem.Release(c)
				wg.Done(c)
			})
		}
		wg.Wait(g)
	})
	mustOK(t, r)
	if max > 2 {
		t.Fatalf("semaphore admitted %d concurrent holders", max)
	}
	if max < 2 {
		t.Fatalf("semaphore never reached full occupancy (max=%d)", max)
	}
}

func TestSemaphoreReleaseUnheldPanics(t *testing.T) {
	r := run(t, func(g *sim.G) { NewSemaphore(g, 1).Release(g) })
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH", r.Outcome)
	}
}

func TestSleepOrdersByDuration(t *testing.T) {
	var order []string
	r := run(t, func(g *sim.G) {
		wg := NewWaitGroup(g)
		wg.Add(g, 2)
		g.Go("slow", func(c *sim.G) {
			Sleep(c, 200)
			order = append(order, "slow")
			wg.Done(c)
		})
		g.Go("fast", func(c *sim.G) {
			Sleep(c, 100)
			order = append(order, "fast")
			wg.Done(c)
		})
		wg.Wait(g)
	})
	mustOK(t, r)
	if len(order) != 2 || order[0] != "fast" {
		t.Fatalf("order = %v", order)
	}
}

func TestContextCancelClosesDone(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ctx, cancel := WithCancel(g)
		g.Go("waiter", func(c *sim.G) {
			ctx.Done().Recv(c)
			if ctx.Err() != Canceled {
				t.Errorf("Err = %v", ctx.Err())
			}
		})
		g.Yield()
		cancel(g)
		g.Yield()
	})
	mustOK(t, r)
}

func TestContextCancelIdempotent(t *testing.T) {
	r := run(t, func(g *sim.G) {
		_, cancel := WithCancel(g)
		cancel(g)
		cancel(g) // must not double-close
	})
	mustOK(t, r)
}

func TestContextTimeoutFires(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ctx, _ := WithTimeout(g, 50)
		ctx.Done().Recv(g)
		if ctx.Err() != DeadlineExceeded {
			t.Errorf("Err = %v", ctx.Err())
		}
	})
	mustOK(t, r)
}

func TestContextBackgroundNeverDone(t *testing.T) {
	r := run(t, func(g *sim.G) {
		ctx := Background(g)
		idx, _, _ := Select(g, []Case{CaseRecv(ctx.Done())}, true)
		if idx != DefaultIdx {
			t.Error("background context reported done")
		}
		if ctx.Err() != nil {
			t.Errorf("Err = %v", ctx.Err())
		}
	})
	mustOK(t, r)
}

func TestTickDeliversN(t *testing.T) {
	r := run(t, func(g *sim.G) {
		tick := Tick(g, 10, 3)
		for i := 0; i < 3; i++ {
			if _, ok := tick.Recv(g); !ok {
				t.Fatalf("tick %d not delivered", i)
			}
		}
	})
	mustOK(t, r)
}
