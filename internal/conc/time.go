package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// Duration is a virtual-time duration in nanoseconds (the simulator's time
// unit). Wall-clock names are provided for readable kernels.
type Duration = int64

// Virtual-time unit constants mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Sleep parks the goroutine for d of virtual time. Virtual time advances
// only when nothing is runnable, so a sleeping goroutine never delays a
// runnable one — the discrete-event analogue of time.Sleep.
func Sleep(g *sim.G, d Duration) {
	file, line := sim.Caller(1)
	g.HandlerCat(trace.CatTimer, file, line)
	if d <= 0 {
		return
	}
	s := g.Sched()
	s.AddTimer(s.Now()+d, g)
	g.Block(trace.BlockSleep, 0, file, line)
	s.Emit(trace.Event{G: g.ID(), Type: trace.EvSleep, Aux: d, File: file, Line: line})
}

// After returns a channel that delivers the virtual wake-up time once d has
// elapsed, the time.After analogue. The delivery goroutine is a
// runtime-internal (system) goroutine excluded from the application tree.
func After(g *sim.G, d Duration) *Chan[int64] {
	ch := NewChan[int64](g, 1)
	g.GoSystem("timer", func(tg *sim.G) {
		Sleep(tg, d)
		ch.TrySend(tg, tg.Sched().Now())
	})
	return ch
}

// Tick returns a channel delivering the virtual time every d, at most n
// times (bounding the system goroutine's life), the time.Tick analogue.
func Tick(g *sim.G, d Duration, n int) *Chan[int64] {
	ch := NewChan[int64](g, 1)
	g.GoSystem("ticker", func(tg *sim.G) {
		for i := 0; i < n; i++ {
			Sleep(tg, d)
			ch.TrySend(tg, tg.Sched().Now())
		}
	})
	return ch
}
