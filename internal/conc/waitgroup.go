package conc

import (
	"goat/internal/sim"
	"goat/internal/trace"
)

// WaitGroup is the sync.WaitGroup analogue.
type WaitGroup struct {
	id    trace.ResID
	count int
	waitq []*sim.G
}

// NewWaitGroup creates a wait group with counter zero.
func NewWaitGroup(g *sim.G) *WaitGroup {
	return &WaitGroup{id: g.Sched().NewResID()}
}

// ID returns the wait group's resource identifier.
func (wg *WaitGroup) ID() trace.ResID { return wg.id }

// Count returns the current counter (for tests and reports).
func (wg *WaitGroup) Count() int { return wg.count }

// Add adds delta to the counter; a counter reaching zero wakes all
// waiters, and a negative counter panics like sync.WaitGroup.
func (wg *WaitGroup) Add(g *sim.G, delta int) {
	file, line := sim.Caller(1)
	wg.addAt(g, delta, file, line)
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done(g *sim.G) {
	file, line := sim.Caller(1)
	wg.addAt(g, -1, file, line)
}

func (wg *WaitGroup) addAt(g *sim.G, delta int, file string, line int) {
	g.Handler(file, line)
	wg.count += delta
	if wg.count < 0 {
		panic("sync: negative WaitGroup counter")
	}
	var first trace.GoID
	if wg.count == 0 && len(wg.waitq) > 0 {
		for _, w := range wg.waitq {
			g.Ready(w, wg.id, nil)
			if first == 0 {
				first = w.ID()
			}
		}
		wg.waitq = nil
	}
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvWgAdd, Res: wg.id, Aux: int64(delta), Peer: first, File: file, Line: line})
}

// Wait parks until the counter reaches zero.
func (wg *WaitGroup) Wait(g *sim.G) {
	file, line := sim.Caller(1)
	g.Handler(file, line)
	if wg.count == 0 {
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvWgWait, Res: wg.id, File: file, Line: line})
		return
	}
	wg.waitq = append(wg.waitq, g)
	g.Block(trace.BlockWaitGroup, wg.id, file, line)
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvWgWait, Res: wg.id, Blocked: true, File: file, Line: line})
}
