package cover

import (
	"fmt"
	"strings"

	"goat/internal/cu"
)

// CatalogueEntry describes one requirement family of the paper's Table I.
type CatalogueEntry struct {
	Req     int
	Name    string
	Actions []cu.Kind
	Aspects []Aspect
	Note    string
}

// Catalogue returns the Table I requirement families.
func Catalogue() []CatalogueEntry {
	return []CatalogueEntry{
		{
			Req: 1, Name: "Send/Recv",
			Actions: []cu.Kind{cu.KindSend, cu.KindRecv},
			Aspects: []Aspect{AspectBlocked, AspectUnblocking, AspectNOP},
			Note:    "a channel operation parks, wakes its peer, or completes on the buffer",
		},
		{
			Req: 2, Name: "Select-Case",
			Actions: []cu.Kind{cu.KindSelect},
			Aspects: []Aspect{AspectBlocked, AspectUnblocking, AspectNOP},
			Note:    "per dynamically discovered case of each default-free select",
		},
		{
			Req: 3, Name: "Lock",
			Actions: []cu.Kind{cu.KindLock, cu.KindRLock},
			Aspects: []Aspect{AspectBlocked, AspectBlocking},
			Note:    "a lock either waits for a holder or holds while others contend",
		},
		{
			Req: 4, Name: "Unblocking",
			Actions: []cu.Kind{cu.KindUnlock, cu.KindRUnlock, cu.KindClose, cu.KindSignal, cu.KindBroadcast, cu.KindWgDone, cu.KindWgAdd},
			Aspects: []Aspect{AspectUnblocking, AspectNOP},
			Note:    "includes the default clause of non-blocking selects",
		},
		{
			Req: 5, Name: "Go",
			Actions: []cu.Kind{cu.KindGo},
			Aspects: []Aspect{AspectExec},
			Note:    "goroutine creation covered when executed",
		},
	}
}

// CatalogueString renders Table I.
func CatalogueString() string {
	var b strings.Builder
	b.WriteString("Table I: coverage requirements\n")
	fmt.Fprintf(&b, "%-6s %-14s %-40s %-30s %s\n", "Req", "Name", "Concurrent actions", "Requirement types", "Note")
	for _, e := range Catalogue() {
		var acts, asps []string
		for _, k := range e.Actions {
			acts = append(acts, k.String())
		}
		for _, a := range e.Aspects {
			asps = append(asps, a.String())
		}
		fmt.Fprintf(&b, "Req%-3d %-14s %-40s %-30s %s\n",
			e.Req, e.Name, strings.Join(acts, ","), "{"+strings.Join(asps, ",")+"}", e.Note)
	}
	return b.String()
}
