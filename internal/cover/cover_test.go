package cover

import (
	"strings"
	"testing"

	"goat/internal/conc"
	"goat/internal/cu"
	"goat/internal/gtree"
	"goat/internal/sim"
)

func treeOf(t *testing.T, seed int64, delays int, fn func(*sim.G)) *gtree.Tree {
	t.Helper()
	r := sim.Run(sim.Options{Seed: seed, Delays: delays, PreemptProb: -1}, fn)
	tree, err := gtree.Build(r.Trace)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

func TestStaticUniverseSeeded(t *testing.T) {
	m := NewModel(cu.NewModel([]cu.CU{
		{File: "a.go", Line: 1, Kind: cu.KindSend},
		{File: "a.go", Line: 2, Kind: cu.KindLock},
		{File: "a.go", Line: 3, Kind: cu.KindGo},
		{File: "a.go", Line: 4, Kind: cu.KindUnlock},
	}))
	// send: 3, lock: 2, go: 1, unlock: 2.
	if m.Total() != 8 {
		t.Fatalf("Total = %d, want 8", m.Total())
	}
	if m.CoveredCount() != 0 || m.Percent() != 0 {
		t.Fatal("fresh model should be uncovered")
	}
}

func TestReqNumbers(t *testing.T) {
	cases := []struct {
		r    Requirement
		want int
	}{
		{Requirement{CU: cu.CU{Kind: cu.KindSend}, Case: NoCase}, 1},
		{Requirement{CU: cu.CU{Kind: cu.KindSelect}, Case: 0}, 2},
		{Requirement{CU: cu.CU{Kind: cu.KindSelect}, Case: NoCase}, 4},
		{Requirement{CU: cu.CU{Kind: cu.KindLock}, Case: NoCase}, 3},
		{Requirement{CU: cu.CU{Kind: cu.KindClose}, Case: NoCase}, 4},
		{Requirement{CU: cu.CU{Kind: cu.KindGo}, Case: NoCase}, 5},
		{Requirement{CU: cu.CU{Kind: cu.KindSleep}, Case: NoCase}, 0},
	}
	for _, c := range cases {
		if got := c.r.ReqNumber(); got != c.want {
			t.Errorf("ReqNumber(%v) = %d, want %d", c.r.CU.Kind, got, c.want)
		}
	}
}

func TestChannelAspectsCovered(t *testing.T) {
	m := NewModel(nil)
	// Run 1: rendezvous where the sender parks (send-blocked +
	// recv-unblocking).
	m.AddRun(treeOf(t, 0, 0, func(g *sim.G) {
		ch := conc.NewChan[int](g, 0)
		g.Go("tx", func(c *sim.G) { ch.Send(c, 1) })
		g.Yield() // sender parks first
		ch.Recv(g)
		g.Yield()
	}))
	var sawSendBlocked, sawRecvUnblocking bool
	for _, r := range m.Covered() {
		if r.CU.Kind == cu.KindSend && r.Aspect == AspectBlocked {
			sawSendBlocked = true
		}
		if r.CU.Kind == cu.KindRecv && r.Aspect == AspectUnblocking {
			sawRecvUnblocking = true
		}
	}
	if !sawSendBlocked || !sawRecvUnblocking {
		t.Fatalf("covered = %v", m.Covered())
	}
	// The symmetric aspects (send-unblocking etc.) must exist uncovered.
	var uncoveredSendUnblocking bool
	for _, r := range m.Uncovered() {
		if r.CU.Kind == cu.KindSend && r.Aspect == AspectUnblocking {
			uncoveredSendUnblocking = true
		}
	}
	if !uncoveredSendUnblocking {
		t.Fatal("send-unblocking should be an uncovered requirement")
	}
}

func TestBufferedSendIsNOP(t *testing.T) {
	m := NewModel(nil)
	m.AddRun(treeOf(t, 0, 0, func(g *sim.G) {
		ch := conc.NewChan[int](g, 1)
		ch.Send(g, 1)
		ch.Recv(g)
	}))
	found := false
	for _, r := range m.Covered() {
		if r.CU.Kind == cu.KindSend && r.Aspect == AspectNOP {
			found = true
		}
	}
	if !found {
		t.Fatalf("buffered send should cover NOP; covered=%v", m.Covered())
	}
}

func TestLockBlockingAspectFromContention(t *testing.T) {
	m := NewModel(nil)
	m.AddRun(treeOf(t, 0, 0, func(g *sim.G) {
		mu := conc.NewMutex(g)
		mu.Lock(g)
		g.Go("contender", func(c *sim.G) {
			mu.Lock(c)
			mu.Unlock(c)
		})
		g.Yield() // contender blocks on the mutex we hold
		mu.Unlock(g)
		g.Yield()
	}))
	var blocking, blocked, unblocking bool
	for _, r := range m.Covered() {
		switch {
		case r.CU.Kind == cu.KindLock && r.Aspect == AspectBlocking:
			blocking = true
		case r.CU.Kind == cu.KindLock && r.Aspect == AspectBlocked:
			blocked = true
		case r.CU.Kind == cu.KindUnlock && r.Aspect == AspectUnblocking:
			unblocking = true
		}
	}
	if !blocking || !blocked || !unblocking {
		t.Fatalf("lock aspects missing: blocking=%v blocked=%v unblocking=%v\n%v",
			blocking, blocked, unblocking, m.Covered())
	}
}

func TestSelectCaseRequirementsDiscovered(t *testing.T) {
	m := NewModel(nil)
	m.AddRun(treeOf(t, 0, 0, func(g *sim.G) {
		a := conc.NewChan[int](g, 1)
		a.Send(g, 1)
		conc.Select(g, []conc.Case{conc.CaseRecv(a)}, false)
	}))
	// One executed case discovers 3 requirements; one covered (NOP or
	// unblocking depending on path — buffered recv with no parked sender
	// is NOP).
	var caseReqs, caseCovered int
	for _, r := range m.Covered() {
		if r.CU.Kind == cu.KindSelect && r.Case == 0 {
			caseCovered++
		}
	}
	for _, r := range append(m.Covered(), m.Uncovered()...) {
		if r.CU.Kind == cu.KindSelect && r.Case == 0 {
			caseReqs++
		}
	}
	if caseReqs != 3 || caseCovered != 1 {
		t.Fatalf("case reqs=%d covered=%d, want 3/1", caseReqs, caseCovered)
	}
}

func TestSelectDefaultCovered(t *testing.T) {
	m := NewModel(nil)
	m.AddRun(treeOf(t, 0, 0, func(g *sim.G) {
		a := conc.NewChan[int](g, 0)
		conc.Select(g, []conc.Case{conc.CaseRecv(a)}, true) // default fires
	}))
	found := false
	for _, r := range m.Covered() {
		if r.CU.Kind == cu.KindSelect && r.Dir == "default" && r.Aspect == AspectNOP {
			found = true
		}
	}
	if !found {
		t.Fatalf("default-clause requirement not covered: %v", m.Covered())
	}
}

func TestGoRequirementCovered(t *testing.T) {
	static := cu.NewModel([]cu.CU{{File: "cover_test.go", Line: 9999, Kind: cu.KindGo}})
	m := NewModel(static)
	m.AddRun(treeOf(t, 0, 0, func(g *sim.G) {
		g.Go("w", func(*sim.G) {})
		g.Yield()
	}))
	var goCovered bool
	for _, r := range m.Covered() {
		if r.CU.Kind == cu.KindGo && r.Aspect == AspectExec {
			goCovered = true
		}
	}
	if !goCovered {
		t.Fatal("go CU not covered")
	}
	// The static CU at the fictitious line 9999 was never executed: its
	// node-agnostic requirement must survive uncovered.
	var staticUncovered bool
	for _, r := range m.Uncovered() {
		if r.CU.Line == 9999 && r.Node == "" {
			staticUncovered = true
		}
	}
	if !staticUncovered {
		t.Fatal("unexecuted static CU lost from the universe")
	}
}

func TestCoverageAccumulatesAcrossRuns(t *testing.T) {
	prog := func(g *sim.G) {
		ch := conc.NewChan[int](g, 0)
		g.Go("tx", func(c *sim.G) { ch.Send(c, 1) })
		ch.Recv(g)
		g.Yield()
	}
	m := NewModel(nil)
	s1 := m.AddRun(treeOf(t, 1, 0, prog))
	if s1.Covered == 0 {
		t.Fatal("run 1 covered nothing")
	}
	covAfter1 := m.CoveredCount()
	// More runs with different schedules can only grow the covered set.
	for seed := int64(2); seed < 12; seed++ {
		m.AddRun(treeOf(t, seed, 2, prog))
	}
	if m.CoveredCount() < covAfter1 {
		t.Fatalf("covered shrank: %d -> %d", covAfter1, m.CoveredCount())
	}
	if m.Runs() != 11 {
		t.Fatalf("Runs = %d", m.Runs())
	}
}

func TestPerturbationImprovesCoverage(t *testing.T) {
	// The paper's central coverage claim: with larger D (schedule
	// perturbation) the same number of iterations covers at least as much.
	prog := func(g *sim.G) {
		ch := conc.NewChan[int](g, 1)
		mu := conc.NewMutex(g)
		g.Go("tx", func(c *sim.G) {
			mu.Lock(c)
			ch.Send(c, 1)
			mu.Unlock(c)
		})
		g.Go("rx", func(c *sim.G) {
			mu.Lock(c)
			ch.Recv(c)
			mu.Unlock(c)
		})
		conc.Sleep(g, 1000)
	}
	measure := func(delays int) float64 {
		m := NewModel(nil)
		for seed := int64(0); seed < 25; seed++ {
			r := sim.Run(sim.Options{Seed: seed, Delays: delays}, prog)
			tree, err := gtree.Build(r.Trace)
			if err != nil {
				t.Fatal(err)
			}
			m.AddRun(tree)
		}
		return m.Percent()
	}
	d0, d3 := measure(0), measure(3)
	if d3+5 < d0 { // allow slack: universes differ as discovery differs
		t.Fatalf("coverage with D=3 (%0.1f%%) far below D=0 (%0.1f%%)", d3, d0)
	}
}

func TestRunStatsConsistent(t *testing.T) {
	m := NewModel(nil)
	st := m.AddRun(treeOf(t, 3, 0, func(g *sim.G) {
		ch := conc.NewChan[int](g, 1)
		ch.Send(g, 1)
		ch.Recv(g)
	}))
	if st.Run != 1 || st.Total != m.Total() || st.Covered != m.CoveredCount() {
		t.Fatalf("stats inconsistent: %+v vs total=%d covered=%d", st, m.Total(), m.CoveredCount())
	}
	if st.Percent <= 0 || st.Percent > 100 {
		t.Fatalf("percent = %f", st.Percent)
	}
}

func TestRequirementStringAndKey(t *testing.T) {
	r := Requirement{
		Node:   "main/x.go:3",
		CU:     cu.CU{File: "x.go", Line: 9, Kind: cu.KindSelect},
		Case:   1,
		Dir:    "recv",
		Aspect: AspectBlocked,
	}
	s := r.String()
	for _, want := range []string{"x.go:9", "case 1", "recv", "blocked", "main/x.go:3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	r2 := r
	r2.Aspect = AspectNOP
	if r.Key() == r2.Key() {
		t.Fatal("distinct requirements share a key")
	}
}

func TestKindGroups(t *testing.T) {
	groups := map[cu.Kind]string{
		cu.KindSend:   "Channel",
		cu.KindLock:   "Sync",
		cu.KindGo:     "Go",
		cu.KindSelect: "Go",
		cu.KindSleep:  "Timer",
	}
	for k, want := range groups {
		if got := k.Group(); got != want {
			t.Errorf("%v.Group() = %q, want %q", k, got, want)
		}
	}
}

func TestFirstCoveredRunTracking(t *testing.T) {
	m := NewModel(nil)
	prog := func(g *sim.G) {
		ch := conc.NewChan[int](g, 1)
		ch.Send(g, 1)
		ch.Recv(g)
	}
	m.AddRun(treeOf(t, 0, 0, prog))
	covered := m.Covered()
	if len(covered) == 0 {
		t.Fatal("nothing covered")
	}
	for _, r := range covered {
		if m.FirstCoveredRun(r) != 1 {
			t.Fatalf("requirement %v first covered at run %d, want 1", r, m.FirstCoveredRun(r))
		}
	}
	byRun := m.CoveredByRun(1)
	if len(byRun) != len(covered) {
		t.Fatalf("CoveredByRun(1) = %d, want %d", len(byRun), len(covered))
	}
	if len(m.CoveredByRun(2)) != 0 {
		t.Fatal("phantom coverage in run 2")
	}
	// A second identical run covers nothing new.
	m.AddRun(treeOf(t, 0, 0, prog))
	if len(m.CoveredByRun(2)) != 0 {
		t.Fatal("identical run 2 claimed new coverage")
	}
}
