package cover

import (
	"sort"
	"strconv"

	"goat/internal/cu"
	"goat/internal/gtree"
	"goat/internal/trace"
)

// Model is the coverage model of a test campaign: the requirement universe
// (static catalogue plus dynamically discovered requirements), the covered
// set, and the per-goroutine-node accounting that survives across runs via
// the goroutine equivalence relation.
//
// The universe is dynamic in two ways, and both match the paper's observed
// behavior (the Fig. 6b dip): select cases only become requirements when a
// run first reaches them, and a CU's requirements are instantiated per
// equivalent goroutine node once some run shows that node executing the CU
// (until then the CU carries a single node-agnostic copy of its
// requirements, so dead code stays visible as uncovered).
type Model struct {
	universe map[string]Requirement
	covered  map[string]bool
	// firstRun records the 1-based run index that first covered each
	// requirement — the "covered by run #k" columns of Table III.
	firstRun map[string]int
	// instantiated tracks which (node, CU) pairs already expanded, and
	// cuNodes which nodes have instances for a CU (to retire the static copy).
	instantiated map[string]bool
	runs         int
}

// NewModel seeds the universe from the static CU model (may be nil or
// empty: the universe then grows purely dynamically).
func NewModel(static *cu.Model) *Model {
	m := &Model{
		universe:     map[string]Requirement{},
		covered:      map[string]bool{},
		firstRun:     map[string]int{},
		instantiated: map[string]bool{},
	}
	if static != nil {
		for _, c := range static.All() {
			for _, a := range aspectsFor(c.Kind) {
				r := Requirement{CU: c, Case: NoCase, Aspect: a}
				m.universe[r.Key()] = r
			}
		}
	}
	return m
}

// Runs returns how many executions have been accumulated.
func (m *Model) Runs() int { return m.runs }

// Total returns the current requirement-universe size.
func (m *Model) Total() int { return len(m.universe) }

// CoveredCount returns how many universe requirements are covered.
func (m *Model) CoveredCount() int {
	n := 0
	for k := range m.covered {
		if _, ok := m.universe[k]; ok {
			n++
		}
	}
	return n
}

// Percent returns the coverage percentage (0 when the universe is empty).
func (m *Model) Percent() float64 {
	if len(m.universe) == 0 {
		return 0
	}
	return 100 * float64(m.CoveredCount()) / float64(len(m.universe))
}

// Uncovered lists the uncovered requirements in deterministic order.
func (m *Model) Uncovered() []Requirement {
	var out []Requirement
	for k, r := range m.universe {
		if !m.covered[k] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Covered lists the covered requirements in deterministic order.
func (m *Model) Covered() []Requirement {
	var out []Requirement
	for k, r := range m.universe {
		if m.covered[k] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// instantiate ensures the per-node requirement instances of c exist for
// node, retiring the node-agnostic static copy of c's requirements.
func (m *Model) instantiate(node string, c cu.CU) {
	ik := node + "|" + c.Key()
	if m.instantiated[ik] {
		return
	}
	m.instantiated[ik] = true
	for _, a := range aspectsFor(c.Kind) {
		r := Requirement{Node: node, CU: c, Case: NoCase, Aspect: a}
		m.universe[r.Key()] = r
		// Retire the static (node-agnostic) copy.
		static := Requirement{CU: c, Case: NoCase, Aspect: a}
		delete(m.universe, static.Key())
	}
}

// instantiateCase ensures Req2 instances exist for a discovered select case.
func (m *Model) instantiateCase(node string, c cu.CU, caseIdx int, dir string) {
	ik := node + "|" + c.Key() + "|case" + strconv.Itoa(caseIdx) + dir
	if m.instantiated[ik] {
		return
	}
	m.instantiated[ik] = true
	aspects := selectCaseAspects()
	if caseIdx == NoCase { // the default clause: only NOP is possible
		aspects = []Aspect{AspectNOP}
	}
	for _, a := range aspects {
		r := Requirement{Node: node, CU: c, Case: caseIdx, Dir: dir, Aspect: a}
		m.universe[r.Key()] = r
	}
}

// mark covers one requirement instance (instantiating as needed).
func (m *Model) mark(node string, c cu.CU, caseIdx int, dir string, a Aspect) {
	if caseIdx == NoCase && c.Kind != cu.KindSelect {
		m.instantiate(node, c)
	} else {
		m.instantiateCase(node, c, caseIdx, dir)
	}
	r := Requirement{Node: node, CU: c, Case: caseIdx, Dir: dir, Aspect: a}
	key := r.Key()
	if !m.covered[key] {
		m.covered[key] = true
		if m.runs > 0 {
			m.firstRun[key] = m.runs
		}
	}
}

// FirstCoveredRun returns the 1-based run that first covered r, or 0 if r
// is uncovered (or was covered outside AddRun).
func (m *Model) FirstCoveredRun(r Requirement) int { return m.firstRun[r.Key()] }

// CoveredByRun returns the requirements first covered by the given run.
func (m *Model) CoveredByRun(run int) []Requirement {
	var out []Requirement
	for k, r := range m.universe {
		if m.covered[k] && m.firstRun[k] == run {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// kindForEvent maps a trace event to the CU kind it manifests.
func kindForEvent(e trace.Event) cu.Kind {
	switch e.Type {
	case trace.EvChanSend:
		return cu.KindSend
	case trace.EvChanRecv:
		return cu.KindRecv
	case trace.EvChanClose:
		return cu.KindClose
	case trace.EvMutexLock:
		return cu.KindLock
	case trace.EvMutexUnlock:
		return cu.KindUnlock
	case trace.EvRWLock:
		return cu.KindLock
	case trace.EvRWUnlock:
		return cu.KindUnlock
	case trace.EvRLock:
		return cu.KindRLock
	case trace.EvRUnlock:
		return cu.KindRUnlock
	case trace.EvWgAdd:
		if e.Aux < 0 {
			return cu.KindWgDone
		}
		return cu.KindWgAdd
	case trace.EvWgWait:
		return cu.KindWgWait
	case trace.EvCondWait:
		return cu.KindCondWait
	case trace.EvCondSignal:
		return cu.KindSignal
	case trace.EvCondBroadcast:
		return cu.KindBroadcast
	case trace.EvOnceDo:
		return cu.KindOnce
	case trace.EvGoCreate:
		return cu.KindGo
	case trace.EvSelect, trace.EvSelectCase:
		return cu.KindSelect
	case trace.EvSleep:
		return cu.KindSleep
	default:
		return cu.KindNone
	}
}

// aspectOf derives the covered aspect of a completed action event.
func aspectOf(e trace.Event) Aspect {
	if e.Blocked {
		return AspectBlocked
	}
	if e.Unblocking() {
		return AspectUnblocking
	}
	return AspectNOP
}

// RunStats summarizes one accumulated execution.
type RunStats struct {
	Run        int     // 1-based index of the run
	Total      int     // universe size after the run
	Covered    int     // covered count after the run
	Percent    float64 // coverage percentage after the run
	NewCovered int     // requirements newly covered by this run
}

// AddRun folds one execution's goroutine tree into the model and returns
// the post-run statistics. Only application-level goroutines contribute.
// It is the post-hoc entry point: the tree's events are replayed in
// timestamp order — the live emit order — through the streaming RunSink,
// which campaigns attach directly to the run instead.
func (m *Model) AddRun(t *gtree.Tree) RunStats {
	// Global event order matters for lock-contention attribution: flatten
	// the app nodes' events and sort by timestamp.
	var events []trace.Event
	for _, n := range t.AppNodes() {
		events = append(events, n.Events...)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })

	s := m.StreamRun()
	for _, e := range events {
		s.Event(e)
	}
	return s.Finish()
}

// aspectOfUnblock classifies Req4 actions: unblocking or NOP.
func aspectOfUnblock(e trace.Event) Aspect {
	if e.Unblocking() {
		return AspectUnblocking
	}
	return AspectNOP
}

// DefaultCase is the select "default clause" marker mirrored from conc.
const DefaultCase = -1
