// Package cover implements GoAT's concurrency coverage metric: the
// requirement catalogue of Table I (Req1–Req5), dynamic requirement
// discovery, per-run measurement from the ECT, and the cross-run global
// model built over equivalent goroutine-tree nodes.
package cover

import (
	"fmt"

	"goat/internal/cu"
)

// Aspect is the facet of a concurrency action a requirement asks to see.
type Aspect uint8

const (
	// AspectNone is the zero aspect.
	AspectNone Aspect = iota
	// AspectBlocked: the action parked its goroutine before completing.
	AspectBlocked
	// AspectUnblocking: the action woke at least one parked goroutine.
	AspectUnblocking
	// AspectNOP: the action completed without parking or waking anyone.
	AspectNOP
	// AspectBlocking: a lock was held while another goroutine contended.
	AspectBlocking
	// AspectExec: the action simply executed (Req5, go statements).
	AspectExec
)

var aspectNames = [...]string{"none", "blocked", "unblocking", "nop", "blocking", "exec"}

// String returns the aspect name.
func (a Aspect) String() string {
	if int(a) < len(aspectNames) {
		return aspectNames[a]
	}
	return fmt.Sprintf("Aspect(%d)", uint8(a))
}

// NoCase marks requirements that are not select cases.
const NoCase = -1

// Requirement is one coverable unit: an aspect of a CU, possibly scoped to
// a select case and to a goroutine-tree node key (instantiated form).
type Requirement struct {
	Node   string // goroutine equivalence key; "" = uninstantiated (static)
	CU     cu.CU
	Case   int    // select case index, NoCase otherwise
	Dir    string // "send"/"recv" for select cases, "" otherwise
	Aspect Aspect
}

// Key is the canonical map key of the requirement.
func (r Requirement) Key() string {
	return fmt.Sprintf("%s|%s|%d|%s|%s", r.Node, r.CU.Key(), r.Case, r.Dir, r.Aspect)
}

// String renders the requirement for reports.
func (r Requirement) String() string {
	s := r.CU.Key()
	if r.Case != NoCase {
		s += fmt.Sprintf("[case %d %s]", r.Case, r.Dir)
	}
	s += "-" + r.Aspect.String()
	if r.Node != "" {
		s += " @" + r.Node
	}
	return s
}

// ReqNumber returns which of the paper's five requirement families the
// requirement belongs to (1–5), or 0 for the extensions.
func (r Requirement) ReqNumber() int {
	switch r.CU.Kind {
	case cu.KindSend, cu.KindRecv:
		return 1
	case cu.KindSelect:
		if r.Case != NoCase {
			return 2
		}
		return 4 // non-blocking select (default case): Req4
	case cu.KindLock, cu.KindRLock:
		return 3
	case cu.KindUnlock, cu.KindRUnlock, cu.KindClose, cu.KindSignal,
		cu.KindBroadcast, cu.KindWgDone, cu.KindWgAdd:
		return 4
	case cu.KindGo:
		return 5
	default:
		return 0
	}
}

// aspectsFor returns the requirement aspects of a CU kind — the Table I
// catalogue. Select CUs have no static aspects: their per-case
// requirements are discovered at runtime (Req2).
func aspectsFor(kind cu.Kind) []Aspect {
	switch kind {
	case cu.KindSend, cu.KindRecv:
		// Req1: {blocked, unblocking, NOP}.
		return []Aspect{AspectBlocked, AspectUnblocking, AspectNOP}
	case cu.KindLock, cu.KindRLock:
		// Req3: {blocked, blocking}.
		return []Aspect{AspectBlocked, AspectBlocking}
	case cu.KindUnlock, cu.KindRUnlock, cu.KindClose, cu.KindSignal,
		cu.KindBroadcast, cu.KindWgDone, cu.KindWgAdd:
		// Req4: {unblocking, NOP}.
		return []Aspect{AspectUnblocking, AspectNOP}
	case cu.KindGo:
		// Req5: {NOP} — executed at all.
		return []Aspect{AspectExec}
	case cu.KindWgWait, cu.KindOnce:
		// Extension of Req1 to the remaining blocking primitives.
		return []Aspect{AspectBlocked, AspectNOP}
	case cu.KindCondWait:
		return []Aspect{AspectBlocked}
	default:
		return nil
	}
}

// selectCaseAspects are the Req2 aspects instantiated per discovered case.
func selectCaseAspects() []Aspect {
	return []Aspect{AspectBlocked, AspectUnblocking, AspectNOP}
}
