package cover

import (
	"fmt"

	"goat/internal/cu"
	"goat/internal/trace"
)

// RunSink is the online form of coverage accumulation: a trace.Sink that
// folds one execution's events into the Model as the virtual runtime
// emits them, without the run ever buffering a trace or building a
// goroutine tree. Because logical timestamps are strictly increasing,
// the live event order is exactly the Ts order the post-hoc AddRun sorts
// into, so the two paths mark the same requirements in the same order.
//
// The sink tracks application-level goroutines incrementally: a child
// spawned by a registered goroutine (with a non-system GoCreate) is
// registered under the parent's key extended by the creation site —
// the same equivalence key gtree assigns. Events by unregistered
// goroutines (system goroutines and their descendants) are ignored,
// mirroring AddRun's restriction to the tree's application nodes.
type RunSink struct {
	m      *Model
	before int // covered count when the run started

	// nodeOf maps live application goroutines to their equivalence key.
	nodeOf map[trace.GoID]string

	// holder tracks, per lock resource, the CU and node of the last
	// goroutine that acquired it — the target of AspectBlocking.
	holder map[trace.ResID]holderInfo

	// windowed (trace.SourceAware) lets goroutines that pre-existed a
	// window trace register themselves by their own GoStart, with the
	// same orphan key gtree assigns.
	windowed bool
}

// SetSource implements trace.SourceAware.
func (s *RunSink) SetSource(src trace.SourceInfo) {
	s.windowed = !src.Has(trace.CapCreateObserved)
}

type holderInfo struct {
	node string
	cu   cu.CU
}

// StreamRun starts accumulating one execution online and returns its
// sink. The run is counted immediately (requirements it covers first are
// attributed to it); call Finish for the post-run statistics.
func (m *Model) StreamRun() *RunSink {
	m.runs++
	return &RunSink{
		m:      m,
		before: m.CoveredCount(),
		nodeOf: map[trace.GoID]string{1: "main"},
		holder: map[trace.ResID]holderInfo{},
	}
}

// Event implements trace.Sink: it folds one event into the model.
func (s *RunSink) Event(e trace.Event) {
	node, ok := s.nodeOf[e.G]
	if !ok {
		if s.windowed && e.Type == trace.EvGoStart && e.Aux != 1 {
			// Orphan adoption, key-compatible with gtree.Builder.
			s.nodeOf[e.G] = fmt.Sprintf("orphan/%s@%s:%d", e.Str, e.File, e.Line)
		}
		return // system goroutine (or descendant): not an application node
	}
	m := s.m
	switch e.Type {
	case trace.EvGoBlock:
		// Contention on a lock covers the holder's "blocking" aspect.
		// Res 0 (identity unknown) must not alias all such locks into
		// one holder bucket.
		reason := e.BlockReason()
		if reason == trace.BlockMutex || reason == trace.BlockRMutex {
			if h, ok := s.holder[e.Res]; e.Res != 0 && ok {
				m.mark(h.node, h.cu, NoCase, "", AspectBlocking)
			}
		}
		return
	case trace.EvGoStart, trace.EvGoEnd, trace.EvGoSched, trace.EvGoPreempt,
		trace.EvGoUnblock, trace.EvGoPanic, trace.EvChanMake, trace.EvUserLog:
		return
	}
	kind := kindForEvent(e)
	if kind == cu.KindNone {
		return
	}
	c := cu.CU{File: e.File, Line: e.Line, Kind: kind}
	switch e.Type {
	case trace.EvGoCreate:
		if e.Aux == 1 {
			return // system goroutine creation is not an app CU
		}
		s.nodeOf[e.Peer] = fmt.Sprintf("%s/%s:%d", node, e.File, e.Line)
		m.mark(node, c, NoCase, "", AspectExec)
	case trace.EvSelect:
		if e.Aux == int64(DefaultCase) {
			m.mark(node, c, NoCase, "default", AspectNOP)
		}
		// Chosen-case coverage comes from the EvSelectCase event.
	case trace.EvSelectCase:
		m.mark(node, c, int(e.Aux), e.Str, aspectOf(e))
	case trace.EvMutexLock, trace.EvRWLock, trace.EvRLock:
		m.instantiate(node, c)
		if e.Blocked {
			m.mark(node, c, NoCase, "", AspectBlocked)
		}
		if e.Res != 0 {
			s.holder[e.Res] = holderInfo{node: node, cu: c}
		}
	case trace.EvMutexUnlock, trace.EvRWUnlock, trace.EvRUnlock:
		m.mark(node, c, NoCase, "", aspectOfUnblock(e))
		if e.Peer == 0 && e.Res != 0 {
			delete(s.holder, e.Res)
		}
	case trace.EvChanClose, trace.EvCondSignal, trace.EvCondBroadcast, trace.EvWgAdd:
		m.mark(node, c, NoCase, "", aspectOfUnblock(e))
	case trace.EvSleep:
		m.instantiate(node, c) // no aspects: presence only
	default:
		m.mark(node, c, NoCase, "", aspectOf(e))
	}
}

// Close implements trace.Sink.
func (s *RunSink) Close() {}

// Finish returns the post-run statistics, exactly as AddRun would.
func (s *RunSink) Finish() RunStats {
	covered := s.m.CoveredCount()
	return RunStats{
		Run:        s.m.runs,
		Total:      s.m.Total(),
		Covered:    covered,
		Percent:    s.m.Percent(),
		NewCovered: covered - s.before,
	}
}
