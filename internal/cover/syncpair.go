package cover

import (
	"fmt"
	"sort"

	"goat/internal/gtree"
	"goat/internal/trace"
)

// PairModel implements the synchronization-pair coverage metric the paper
// cites from prior work ([33], Hong et al.): the covered units are pairs
// (unblocking CU → blocked CU) observed on the same resource — which
// synchronization handoffs the test schedules have exercised. GoAT's
// Req1–Req5 metric subsumes it in practice; this implementation exists to
// compare saturation behavior (see BenchmarkMetricSaturation).
//
// Pairs are discovered dynamically: the universe is the set of distinct
// pairs any run has shown, so the interesting output is the discovery
// curve — how many distinct pairs the first k iterations found.
type PairModel struct {
	pairs map[string]SyncPair
	runs  int
	curve []int // distinct pairs after each run
}

// SyncPair is one observed handoff: the unblocking action's CU and the
// CU at which the woken goroutine had blocked.
type SyncPair struct {
	Res       trace.ResID
	Unblocker string // file:line of the unblocking CU
	Blocked   string // file:line of the blocked CU
}

// Key is the canonical map key.
func (p SyncPair) Key() string {
	return fmt.Sprintf("r%d|%s->%s", p.Res, p.Unblocker, p.Blocked)
}

// String renders the pair.
func (p SyncPair) String() string {
	return fmt.Sprintf("%s -> %s (r%d)", p.Unblocker, p.Blocked, p.Res)
}

// NewPairModel creates an empty synchronization-pair model.
func NewPairModel() *PairModel {
	return &PairModel{pairs: map[string]SyncPair{}}
}

// Runs returns the number of accumulated executions.
func (m *PairModel) Runs() int { return m.runs }

// Distinct returns how many distinct pairs have been observed.
func (m *PairModel) Distinct() int { return len(m.pairs) }

// Curve returns the discovery curve: distinct pairs after each run.
func (m *PairModel) Curve() []int { return append([]int(nil), m.curve...) }

// Pairs returns the observed pairs in deterministic order.
func (m *PairModel) Pairs() []SyncPair {
	out := make([]SyncPair, 0, len(m.pairs))
	for _, p := range m.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// AddRun folds one execution into the model and returns how many pairs
// the run newly discovered.
func (m *PairModel) AddRun(t *gtree.Tree) int {
	m.runs++
	// Flatten app events in global order; track each goroutine's pending
	// block site, and match it when an unblocking event names it as peer.
	var events []trace.Event
	appIDs := map[trace.GoID]bool{}
	for _, n := range t.AppNodes() {
		appIDs[n.ID] = true
		events = append(events, n.Events...)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })

	blockSite := map[trace.GoID]string{}
	before := len(m.pairs)
	for _, e := range events {
		switch e.Type {
		case trace.EvGoBlock:
			blockSite[e.G] = fmt.Sprintf("%s:%d", e.File, e.Line)
		case trace.EvGoUnblock:
			// The unblock event itself has no CU; the unblocking action's
			// CU arrives on the very next action event of the same
			// goroutine — but the resource and peer are already here. We
			// approximate the unblocker CU with the action event that
			// carries the same Ts neighborhood: in this runtime the
			// action event directly follows its EvGoUnblock, so peek via
			// a pending slot.
		}
		// Action events that woke a peer carry Peer + their own CU.
		if e.Peer != 0 && e.Type != trace.EvGoCreate && e.Type != trace.EvGoUnblock && appIDs[e.Peer] {
			if site, ok := blockSite[e.Peer]; ok {
				p := SyncPair{
					Res:       e.Res,
					Unblocker: fmt.Sprintf("%s:%d", e.File, e.Line),
					Blocked:   site,
				}
				m.pairs[p.Key()] = p
				delete(blockSite, e.Peer)
			}
		}
	}
	m.curve = append(m.curve, len(m.pairs))
	return len(m.pairs) - before
}
