package cover

import (
	"strings"
	"testing"

	"goat/internal/conc"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/sim"
)

func TestPairModelObservesHandoff(t *testing.T) {
	m := NewPairModel()
	newFound := m.AddRun(treeOf(t, 0, 0, func(g *sim.G) {
		ch := conc.NewChan[int](g, 0)
		g.Go("tx", func(c *sim.G) { ch.Send(c, 1) })
		g.Yield()  // sender parks
		ch.Recv(g) // recv unblocks the parked send: one pair
		g.Yield()
	}))
	if newFound != 1 || m.Distinct() != 1 {
		t.Fatalf("pairs = %d (new %d), want 1", m.Distinct(), newFound)
	}
	p := m.Pairs()[0]
	if !strings.Contains(p.Blocked, "syncpair_test.go") || !strings.Contains(p.Unblocker, "syncpair_test.go") {
		t.Fatalf("pair attribution: %v", p)
	}
	if p.Unblocker == p.Blocked {
		t.Fatalf("unblocker and blocked collapsed: %v", p)
	}
}

func TestPairModelNoPairsWithoutBlocking(t *testing.T) {
	m := NewPairModel()
	m.AddRun(treeOf(t, 0, 0, func(g *sim.G) {
		ch := conc.NewChan[int](g, 1)
		ch.Send(g, 1) // buffered: nobody blocks, nobody unblocks
		ch.Recv(g)
	}))
	if m.Distinct() != 0 {
		t.Fatalf("pairs = %v", m.Pairs())
	}
}

func TestPairModelMutexHandoff(t *testing.T) {
	m := NewPairModel()
	m.AddRun(treeOf(t, 0, 0, func(g *sim.G) {
		mu := conc.NewMutex(g)
		mu.Lock(g)
		g.Go("contender", func(c *sim.G) {
			mu.Lock(c)
			mu.Unlock(c)
		})
		g.Yield()    // contender parks on mu
		mu.Unlock(g) // unlock hands off: pair (unlock -> lock)
		g.Yield()
	}))
	if m.Distinct() != 1 {
		t.Fatalf("pairs = %v", m.Pairs())
	}
}

func TestPairDiscoveryCurveMonotonic(t *testing.T) {
	k, ok := goker.ByID("etcd_7443")
	if !ok {
		t.Fatal("kernel missing")
	}
	m := NewPairModel()
	for seed := int64(0); seed < 30; seed++ {
		r := sim.Run(sim.Options{Seed: seed, Delays: 2}, k.Main)
		tree, err := gtree.Build(r.Trace)
		if err != nil {
			t.Fatal(err)
		}
		m.AddRun(tree)
	}
	curve := m.Curve()
	if len(curve) != 30 || m.Runs() != 30 {
		t.Fatalf("curve = %d points, runs = %d", len(curve), m.Runs())
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("discovery curve decreased: %v", curve)
		}
	}
	if curve[len(curve)-1] == 0 {
		t.Fatal("no pairs discovered on a synchronization-heavy kernel")
	}
}

// The comparison the metric exists for: on the same campaign, the Req
// model keeps discriminating (its universe includes blocked/unblocking
// aspects per CU) while the pair metric saturates to a small set.
func TestPairMetricSaturatesEarlierThanReqMetric(t *testing.T) {
	k, _ := goker.ByID("etcd_7443")
	pair := NewPairModel()
	req := NewModel(nil)
	pairSat, reqSat := 0, 0 // iteration of last growth
	for seed := int64(0); seed < 40; seed++ {
		r := sim.Run(sim.Options{Seed: seed, Delays: 2}, k.Main)
		tree, err := gtree.Build(r.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if pair.AddRun(tree) > 0 {
			pairSat = int(seed) + 1
		}
		if st := req.AddRun(tree); st.NewCovered > 0 {
			reqSat = int(seed) + 1
		}
	}
	if pairSat == 0 || reqSat == 0 {
		t.Fatalf("metrics never grew: pair=%d req=%d", pairSat, reqSat)
	}
	if pairSat > reqSat {
		t.Logf("note: pair metric kept growing longer (%d) than req (%d) on this campaign", pairSat, reqSat)
	}
}
