package cu

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// methodKinds maps method names to CU kinds. The virtual-runtime API was
// deliberately named after the native sync vocabulary, so one table covers
// both `mu.Lock()` on a sync.Mutex and `mu.Lock(g)` on a conc.Mutex.
var methodKinds = map[string]Kind{
	"Send":      KindSend,
	"TrySend":   KindSend,
	"Recv":      KindRecv,
	"TryRecv":   KindRecv,
	"Close":     KindClose,
	"Lock":      KindLock,
	"Unlock":    KindUnlock,
	"RLock":     KindRLock,
	"RUnlock":   KindRUnlock,
	"Add":       KindWgAdd,
	"Done":      KindWgDone,
	"Wait":      KindWgWait,
	"Signal":    KindSignal,
	"Broadcast": KindBroadcast,
	"Do":        KindOnce,
	"Range":     KindRange,
	"Go":        KindGo,
	"GoAt":      KindGo,
	"Acquire":   KindLock,
	"Release":   KindUnlock,
}

// funcKinds maps plain (or package-qualified) call names to CU kinds.
var funcKinds = map[string]Kind{
	"close":  KindClose,
	"Select": KindSelect,
	"Sleep":  KindSleep,
}

// extractor walks one file's AST collecting CUs.
type extractor struct {
	fset *token.FileSet
	file string
	cus  []CU
	// chanVars tracks identifiers assigned from make(chan ...) or declared
	// with a channel type, the heuristic for `range ch`.
	chanVars map[string]bool
}

func (x *extractor) add(pos token.Pos, kind Kind) {
	p := x.fset.Position(pos)
	x.cus = append(x.cus, CU{File: x.file, Line: p.Line, Kind: kind})
}

// isChanExpr reports whether e is (syntactically) a channel value.
func (x *extractor) isChanExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return x.chanVars[v.Name]
	case *ast.CallExpr:
		// make(chan T, ...)
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, isChan := v.Args[0].(*ast.ChanType)
			return isChan
		}
	}
	return false
}

// trackChanDecl records channel-typed variables for the range heuristic.
func (x *extractor) trackChanDecl(n ast.Node) {
	switch v := n.(type) {
	case *ast.AssignStmt:
		for i, rhs := range v.Rhs {
			if i < len(v.Lhs) && x.isChanExpr(rhs) {
				if id, ok := v.Lhs[i].(*ast.Ident); ok {
					x.chanVars[id.Name] = true
				}
			}
		}
	case *ast.ValueSpec:
		if _, ok := v.Type.(*ast.ChanType); ok {
			for _, id := range v.Names {
				x.chanVars[id.Name] = true
			}
		}
	case *ast.Field:
		if _, ok := v.Type.(*ast.ChanType); ok {
			for _, id := range v.Names {
				x.chanVars[id.Name] = true
			}
		}
	}
}

func (x *extractor) visit(n ast.Node) bool {
	if n == nil {
		return true
	}
	x.trackChanDecl(n)
	switch v := n.(type) {
	case *ast.SendStmt:
		x.add(v.Arrow, KindSend)
	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			x.add(v.OpPos, KindRecv)
		}
	case *ast.GoStmt:
		x.add(v.Go, KindGo)
	case *ast.SelectStmt:
		x.add(v.Select, KindSelect)
	case *ast.RangeStmt:
		if x.isChanExpr(v.X) {
			x.add(v.For, KindRange)
		}
	case *ast.CallExpr:
		switch fun := v.Fun.(type) {
		case *ast.Ident:
			if k, ok := funcKinds[fun.Name]; ok {
				x.add(v.Lparen, k)
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if k, ok := funcKinds[name]; ok {
				x.add(v.Lparen, k)
				return true
			}
			if k, ok := methodKinds[name]; ok {
				x.add(v.Lparen, k)
			}
		}
	}
	return true
}

// ExtractSource extracts the CUs of one Go source text. The name is used
// for both parsing diagnostics and the CU File fields (base name).
func ExtractSource(name, src string) ([]CU, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("cu: parsing %s: %w", name, err)
	}
	return extractParsed(fset, f, filepath.Base(name)), nil
}

// extractParsed runs the extraction walk over a parsed file.
func extractParsed(fset *token.FileSet, f *ast.File, file string) []CU {
	x := &extractor{fset: fset, file: file, chanVars: map[string]bool{}}
	ast.Inspect(f, x.visit)
	sort.Slice(x.cus, func(i, j int) bool {
		if x.cus[i].Line != x.cus[j].Line {
			return x.cus[i].Line < x.cus[j].Line
		}
		return x.cus[i].Kind < x.cus[j].Kind
	})
	return x.cus
}

// ExtractFile extracts the CUs of a Go file on disk.
func ExtractFile(path string) ([]CU, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cu: %w", err)
	}
	return ExtractSource(path, string(src))
}

// ExtractDir builds the concurrency-usage model M of every .go file
// directly inside dir (not recursive), skipping _test.go files — the
// program-level granularity the paper's goat binary operates on.
func ExtractDir(dir string) (*Model, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cu: %w", err)
	}
	var all []CU
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		cus, err := ExtractFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		all = append(all, cus...)
	}
	return NewModel(all), nil
}
