package cu

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const nativeSrc = `package main

import "sync"

func main() {
	var mu sync.Mutex
	var wg sync.WaitGroup
	ch := make(chan int, 1)
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		mu.Lock()
		ch <- 1
		mu.Unlock()
		wg.Done()
	}()
	select {
	case v := <-ch:
		_ = v
	default:
	}
	close(done)
	for v := range ch {
		_ = v
	}
	wg.Wait()
}
`

func kindsOf(cus []CU) map[Kind]int {
	m := map[Kind]int{}
	for _, c := range cus {
		m[c.Kind]++
	}
	return m
}

func TestExtractNativeConstructs(t *testing.T) {
	cus, err := ExtractSource("main.go", nativeSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := kindsOf(cus)
	want := map[Kind]int{
		KindWgAdd:  1,
		KindGo:     1,
		KindLock:   1,
		KindSend:   1,
		KindUnlock: 1,
		KindWgDone: 1,
		KindSelect: 1,
		KindRecv:   1, // the select case receive
		KindClose:  1,
		KindRange:  1,
		KindWgWait: 1,
	}
	for kind, n := range want {
		if k[kind] != n {
			t.Errorf("%s: got %d, want %d (all: %v)", kind, k[kind], n, cus)
		}
	}
	for _, c := range cus {
		if c.File != "main.go" || c.Line == 0 {
			t.Errorf("bad attribution: %v", c)
		}
	}
}

func TestExtractGoatAPI(t *testing.T) {
	src := `package demo

import (
	"goat/internal/conc"
	"goat/internal/sim"
)

func prog(g *sim.G) {
	ch := conc.NewChan[int](g, 0)
	mu := conc.NewMutex(g)
	g.Go("w", func(c *sim.G) {
		mu.Lock(c)
		ch.Send(c, 1)
		mu.Unlock(c)
	})
	conc.Select(g, []conc.Case{conc.CaseRecv(ch)}, true)
	ch.Recv(g)
	ch.Close(g)
	conc.Sleep(g, 10)
}
`
	cus, err := ExtractSource("demo.go", src)
	if err != nil {
		t.Fatal(err)
	}
	k := kindsOf(cus)
	want := map[Kind]int{
		KindGo:     1,
		KindLock:   1,
		KindSend:   1,
		KindUnlock: 1,
		KindSelect: 1,
		KindRecv:   1,
		KindClose:  1,
		KindSleep:  1,
	}
	for kind, n := range want {
		if k[kind] != n {
			t.Errorf("%s: got %d, want %d (all: %v)", kind, k[kind], n, cus)
		}
	}
}

func TestExtractSourceParseError(t *testing.T) {
	if _, err := ExtractSource("bad.go", "package ???"); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestRangeOverNonChannelIgnored(t *testing.T) {
	src := `package p

func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
`
	cus, err := ExtractSource("p.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cus) != 0 {
		t.Fatalf("slice range extracted as CU: %v", cus)
	}
}

func TestModelDedupAndOrder(t *testing.T) {
	m := NewModel([]CU{
		{File: "b.go", Line: 2, Kind: KindSend},
		{File: "a.go", Line: 9, Kind: KindLock},
		{File: "b.go", Line: 2, Kind: KindSend}, // duplicate
		{File: "a.go", Line: 3, Kind: KindRecv},
	})
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after dedup", m.Len())
	}
	all := m.All()
	if all[0].File != "a.go" || all[0].Line != 3 {
		t.Fatalf("order wrong: %v", all)
	}
}

func TestModelLookup(t *testing.T) {
	m := NewModel([]CU{{File: "x.go", Line: 5, Kind: KindSend}})
	if _, ok := m.Lookup("x.go", 5, KindSend); !ok {
		t.Fatal("Lookup missed an existing CU")
	}
	if _, ok := m.Lookup("x.go", 5, KindRecv); ok {
		t.Fatal("Lookup matched the wrong kind")
	}
	if got := m.At("x.go", 5); len(got) != 1 {
		t.Fatalf("At = %v", got)
	}
}

func TestExtractDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(nativeSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "skip_test.go"), []byte("package main\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ExtractDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() == 0 {
		t.Fatal("directory model empty")
	}
	for _, c := range m.All() {
		if c.File != "main.go" {
			t.Fatalf("unexpected file in model: %v", c)
		}
	}
}

func TestKindStringsComplete(t *testing.T) {
	for k := KindSend; k < kindMax; k++ {
		if k.String() == "" || k.Group() == "None" {
			t.Errorf("kind %d lacks name or group", k)
		}
	}
}

func TestParseVisits(t *testing.T) {
	log := "100 1 main.go:10\n200 2 main.go:12\n\n300 1 worker.go:5\n"
	vs, err := ParseVisits(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0].Goid != 1 || vs[1].File != "main.go" || vs[2].Line != 5 {
		t.Fatalf("visits = %+v", vs)
	}
	st := StatsOf(vs)
	if st.Total != 3 || st.Goroutines != 2 || st.ByLoc["main.go:10"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.Contains(RenderVisitStats(st), "3 visits by 2 goroutine(s)") {
		t.Fatal("rendering broken")
	}
}

func TestParseVisitsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"x 1 a.go:1", "1 y a.go:1", "1 2 nope", "1 2 a.go:z", "too few"} {
		if _, err := ParseVisits(strings.NewReader(bad)); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestExecutedCoverage(t *testing.T) {
	m := NewModel([]CU{
		{File: "main.go", Line: 11, Kind: KindSend}, // handler at line 10
		{File: "main.go", Line: 30, Kind: KindLock}, // never visited
	})
	vs := []Visit{{Ts: 1, Goid: 1, File: "main.go", Line: 10}}
	executed, dead, pct := ExecutedCoverage(m, vs)
	if len(executed) != 1 || executed[0].Line != 11 {
		t.Fatalf("executed = %v", executed)
	}
	if len(dead) != 1 || dead[0].Line != 30 {
		t.Fatalf("dead = %v", dead)
	}
	if pct != 50 {
		t.Fatalf("pct = %v", pct)
	}
}
