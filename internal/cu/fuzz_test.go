package cu

import "testing"

// FuzzCUExtract throws arbitrary source text at the static
// concurrency-usage extractor. ExtractSource must either reject the
// input with a parse error or return a well-formed CU list — it must
// never panic, whatever go/ast shape the parser hands back.
func FuzzCUExtract(f *testing.F) {
	f.Add("package main\n\nfunc main() {\n\tch := make(chan int)\n\tgo func() { ch <- 1 }()\n\t<-ch\n}\n")
	f.Add("package main\n\nimport \"sync\"\n\nfunc main() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tdefer mu.Unlock()\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\tgo wg.Done()\n\twg.Wait()\n}\n")
	f.Add("package main\n\nfunc main() {\n\tch := make(chan int, 2)\n\tselect {\n\tcase ch <- 1:\n\tcase <-ch:\n\tdefault:\n\t}\n\tclose(ch)\n}\n")
	f.Add("package p\n\nvar x = make(chan struct{})\n")
	f.Add("package p")
	f.Add("")
	f.Add("not go at all {{{")

	f.Fuzz(func(t *testing.T, src string) {
		cus, err := ExtractSource("fuzz.go", src)
		if err != nil {
			return // parse errors are fine; panics are not
		}
		for _, c := range cus {
			if c.Kind.String() == "" {
				t.Fatalf("extracted CU with empty kind: %+v", c)
			}
			if c.Line < 0 {
				t.Fatalf("extracted CU with negative line: %+v", c)
			}
		}
	})
}
