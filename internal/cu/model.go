// Package cu implements GoAT's static analysis front-end: the concurrency
// usage model M. A concurrency usage (CU) is a tuple (file, line, kind)
// naming a source location that performs a concurrency action. M is
// extracted from Go source by traversing its AST and drives three things:
// where the schedule-perturbation handlers go, which coverage requirements
// exist, and how dynamic trace events bind back to source.
package cu

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a concurrency usage. The paper groups kinds as
// Channel = {send, receive, close}, Sync = {lock, unlock, wait, add, done,
// signal, broadcast}, Go = {go, select, range}; this implementation adds
// the RWMutex split, Once and Sleep.
type Kind uint8

const (
	// KindNone is the zero kind; never appears in a valid model.
	KindNone Kind = iota

	// Channel kinds.
	KindSend
	KindRecv
	KindClose

	// Sync kinds.
	KindLock
	KindUnlock
	KindRLock
	KindRUnlock
	KindWgAdd
	KindWgDone
	KindWgWait
	KindCondWait
	KindSignal
	KindBroadcast
	KindOnce

	// Go kinds.
	KindGo
	KindSelect
	KindRange

	// Timer kinds.
	KindSleep

	kindMax
)

var kindNames = [kindMax]string{
	KindNone:      "none",
	KindSend:      "send",
	KindRecv:      "recv",
	KindClose:     "close",
	KindLock:      "lock",
	KindUnlock:    "unlock",
	KindRLock:     "rlock",
	KindRUnlock:   "runlock",
	KindWgAdd:     "add",
	KindWgDone:    "done",
	KindWgWait:    "wait",
	KindCondWait:  "condwait",
	KindSignal:    "signal",
	KindBroadcast: "broadcast",
	KindOnce:      "once",
	KindGo:        "go",
	KindSelect:    "select",
	KindRange:     "range",
	KindSleep:     "sleep",
}

// String returns the kind name used in reports and Table III.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Group names the paper's kind grouping.
func (k Kind) Group() string {
	switch k {
	case KindSend, KindRecv, KindClose:
		return "Channel"
	case KindLock, KindUnlock, KindRLock, KindRUnlock, KindWgAdd, KindWgDone,
		KindWgWait, KindCondWait, KindSignal, KindBroadcast, KindOnce:
		return "Sync"
	case KindGo, KindSelect, KindRange:
		return "Go"
	case KindSleep:
		return "Timer"
	default:
		return "None"
	}
}

// CU is one concurrency usage: the (file, line, kind) tuple of the model M.
type CU struct {
	File string
	Line int
	Kind Kind
}

// Key is the canonical string form used as a map key and in reports.
func (c CU) Key() string { return fmt.Sprintf("%s:%d:%s", c.File, c.Line, c.Kind) }

// Loc is the source location without the kind.
func (c CU) Loc() string { return fmt.Sprintf("%s:%d", c.File, c.Line) }

// String renders the CU for reports.
func (c CU) String() string { return c.Key() }

// Model is the concurrency usage model M: the table of CUs of a program.
type Model struct {
	cus   []CU
	byLoc map[string][]CU // "file:line" -> CUs at that location
}

// NewModel builds a model from extracted CUs, dropping exact duplicates.
func NewModel(cus []CU) *Model {
	m := &Model{byLoc: map[string][]CU{}}
	seen := map[string]bool{}
	for _, c := range cus {
		if seen[c.Key()] {
			continue
		}
		seen[c.Key()] = true
		m.cus = append(m.cus, c)
	}
	sort.Slice(m.cus, func(i, j int) bool {
		a, b := m.cus[i], m.cus[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Kind < b.Kind
	})
	for _, c := range m.cus {
		m.byLoc[c.Loc()] = append(m.byLoc[c.Loc()], c)
	}
	return m
}

// All returns the CUs in deterministic (file, line, kind) order.
func (m *Model) All() []CU { return m.cus }

// Len returns the number of CUs.
func (m *Model) Len() int { return len(m.cus) }

// At returns the CUs at a source location.
func (m *Model) At(file string, line int) []CU {
	return m.byLoc[fmt.Sprintf("%s:%d", file, line)]
}

// Lookup finds the CU of a given kind at a location.
func (m *Model) Lookup(file string, line int, kind Kind) (CU, bool) {
	for _, c := range m.At(file, line) {
		if c.Kind == kind {
			return c, true
		}
	}
	return CU{}, false
}

// String renders the model as the paper's Table III first column.
func (m *Model) String() string {
	var b strings.Builder
	b.WriteString("Line  Kind\n")
	for _, c := range m.cus {
		fmt.Fprintf(&b, "%-24s %s\n", c.Loc(), c.Kind)
	}
	return b.String()
}
