package cu

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Visit is one concurrency-usage visit recorded by a natively
// instrumented program (goatrt with GOAT_TRACE): who reached which CU
// location when. It is the approximate native ECT — visits lack the
// blocked/unblocking detail the virtual runtime records, but they drive
// executed-CU coverage against the static model M.
type Visit struct {
	Ts   int64 // unix nanoseconds
	Goid int64
	File string
	Line int
}

// Loc returns the visit's CU location key.
func (v Visit) Loc() string { return fmt.Sprintf("%s:%d", v.File, v.Line) }

// ParseVisits reads a goatrt visit log (`<nanos> <goid> <file>:<line>`
// per line), tolerating blank lines.
func ParseVisits(r io.Reader) ([]Visit, error) {
	var out []Visit
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("cu: visit log line %d: want 3 fields, got %q", lineNo, text)
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cu: visit log line %d: bad timestamp: %w", lineNo, err)
		}
		goid, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cu: visit log line %d: bad goid: %w", lineNo, err)
		}
		loc := fields[2]
		colon := strings.LastIndexByte(loc, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("cu: visit log line %d: bad location %q", lineNo, loc)
		}
		ln, err := strconv.Atoi(loc[colon+1:])
		if err != nil {
			return nil, fmt.Errorf("cu: visit log line %d: bad line number: %w", lineNo, err)
		}
		out = append(out, Visit{Ts: ts, Goid: goid, File: loc[:colon], Line: ln})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cu: reading visit log: %w", err)
	}
	return out, nil
}

// VisitStats aggregates a visit log: per-location visit counts and the
// set of goroutines that reached each location.
type VisitStats struct {
	Total      int
	Goroutines int
	ByLoc      map[string]int
}

// StatsOf aggregates visits.
func StatsOf(visits []Visit) *VisitStats {
	st := &VisitStats{ByLoc: map[string]int{}}
	gids := map[int64]bool{}
	for _, v := range visits {
		st.Total++
		st.ByLoc[v.Loc()]++
		gids[v.Goid] = true
	}
	st.Goroutines = len(gids)
	return st
}

// ExecutedCoverage matches a visit log against a static CU model M.
// Visits carry the *handler's* call site, which the instrumenter places
// on the line directly above its CU statement — so pass the model
// extracted from the instrumented sources, and a CU counts as executed
// when its own line or the line above was visited. It returns the
// executed CUs, the never-executed ones, and the percentage.
func ExecutedCoverage(m *Model, visits []Visit) (executed, dead []CU, percent float64) {
	visited := map[string]bool{}
	for _, v := range visits {
		visited[v.Loc()] = true
		visited[fmt.Sprintf("%s:%d", v.File, v.Line+1)] = true
	}
	for _, c := range m.All() {
		if visited[c.Loc()] {
			executed = append(executed, c)
		} else {
			dead = append(dead, c)
		}
	}
	if m.Len() > 0 {
		percent = 100 * float64(len(executed)) / float64(m.Len())
	}
	return executed, dead, percent
}

// RenderVisitStats renders the aggregation for CLI output.
func RenderVisitStats(st *VisitStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d visits by %d goroutine(s) across %d location(s)\n\n",
		st.Total, st.Goroutines, len(st.ByLoc))
	type row struct {
		loc string
		n   int
	}
	rows := make([]row, 0, len(st.ByLoc))
	for loc, n := range st.ByLoc {
		rows = append(rows, row{loc, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].loc < rows[j].loc
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %d\n", r.loc, r.n)
	}
	return b.String()
}
