// Package detect implements the four dynamic blocking-bug detectors the
// paper evaluates: GoAT itself plus the three baselines it is compared
// against (the runtime's built-in global-deadlock detector, the
// lock-order-based LockDL, and Uber's goleak end-of-main leak check).
//
// Every detector consumes the same execution Result from the virtual
// runtime but is only allowed to look at what its real counterpart could
// see — that asymmetry of observation power is exactly what Table IV and
// Figure 4 measure.
package detect

import (
	"fmt"

	"goat/internal/sim"
)

// Detection is one tool's verdict on one execution.
type Detection struct {
	Tool    string
	Found   bool   // the tool reported the bug
	Verdict string // paper-style tag: PDL-k, GDL, TO/GDL, DL, CRASH, HANG, OK
	Detail  string // human-readable amplification
}

// injectedCrash classifies a crash caused by the fault layer's injected
// panic: every detector recognizes the marker and reports the crash
// without counting it as a program bug, so robustness campaigns with
// panic faults enabled do not record false detections.
func injectedCrash(d Detection, r *sim.Result) Detection {
	d.Found = false
	d.Verdict = "CRASH(injected)"
	d.Detail = fmt.Sprint(r.PanicVal)
	return d
}

// Detector inspects one execution result.
type Detector interface {
	// Name returns the tool name used in tables.
	Name() string
	// Detect classifies one execution.
	Detect(r *sim.Result) Detection
}

// Goat is the full GoAT detector: it runs Procedure 1 (DeadlockCheck)
// over the goroutine tree's final-event states. It sees everything the
// trace records, so it detects partial deadlocks, global deadlocks,
// hangs and crashes. Detect is the post-hoc entry point — it replays the
// buffered ECT through the streaming core (GoatStream), which campaigns
// attach directly to the run to skip the trace buffering entirely.
type Goat struct{}

// Name implements Detector.
func (Goat) Name() string { return "goat" }

// Detect implements Detector.
func (g Goat) Detect(r *sim.Result) Detection {
	if r.Trace == nil {
		d := Detection{Tool: "goat"}
		switch r.Outcome {
		case sim.OutcomeCrash, sim.OutcomeTimeout:
			return g.NewStream().Finish(r) // outcome-only verdicts need no events
		}
		// Traceless settled run: fall back to the runtime's own
		// classification.
		if r.Outcome.Buggy() {
			return found(d, r.Outcome.String(), "virtual-runtime classification (tracing disabled)")
		}
		d.Verdict = "OK"
		return d
	}
	s := g.NewStream()
	_ = r.Trace.Replay(s) // buffered replay cannot fail; source propagates to the stream
	return s.Finish(r)
}

// Builtin emulates the Go runtime's embedded detector: it throws only when
// every goroutine is blocked while main is still alive (a global
// deadlock), and it surfaces crashes because panics kill the process
// visibly. Leaks past a terminating main are invisible to it.
type Builtin struct{}

// Name implements Detector.
func (Builtin) Name() string { return "builtin" }

// Detect implements Detector.
func (Builtin) Detect(r *sim.Result) Detection {
	d := Detection{Tool: "builtin"}
	switch r.Outcome {
	case sim.OutcomeGlobalDeadlock:
		return found(d, "GDL", "all goroutines are asleep - deadlock!")
	case sim.OutcomeCrash:
		if r.FaultCrashed() {
			return injectedCrash(d, r)
		}
		return found(d, "CRASH", fmt.Sprint(r.PanicVal))
	case sim.OutcomeTimeout:
		d.Verdict = "HANG" // livelock: the runtime queue never empties
		return d
	default:
		d.Verdict = "OK"
		return d
	}
}

// Goleak emulates Uber's goleak: after main returns it inspects the stacks
// of surviving goroutines and reports those parked on concurrency
// primitives. If main never returns, goleak itself hangs.
type Goleak struct{}

// Name implements Detector.
func (Goleak) Name() string { return "goleak" }

// Detect implements Detector.
func (Goleak) Detect(r *sim.Result) Detection {
	d := Detection{Tool: "goleak"}
	if r.Outcome == sim.OutcomeCrash {
		if r.FaultCrashed() {
			return injectedCrash(d, r)
		}
		return found(d, "CRASH", fmt.Sprint(r.PanicVal))
	}
	if !r.MainEnded {
		d.Verdict = "HANG" // the check at the end of main never runs
		return d
	}
	if n := len(r.Leaked); n > 0 {
		return found(d, fmt.Sprintf("PDL-%d", n),
			fmt.Sprintf("found %d unexpected goroutine(s) at main return", n))
	}
	d.Verdict = "OK"
	return d
}

func found(d Detection, verdict, detail string) Detection {
	d.Found = true
	d.Verdict = verdict
	d.Detail = detail
	return d
}

// All returns the paper's detector lineup in Table IV column order.
func All() []Detector {
	return []Detector{Builtin{}, LockDL{}, Goleak{}, Goat{}}
}
