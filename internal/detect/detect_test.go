package detect

import (
	"strings"
	"testing"

	"goat/internal/conc"
	"goat/internal/sim"
)

func exec(fn func(*sim.G)) *sim.Result {
	return sim.Run(sim.Options{PreemptProb: -1}, fn)
}

// Bug programs used across the detector tests.

func progOK(g *sim.G) {
	ch := conc.NewChan[int](g, 0)
	g.Go("w", func(c *sim.G) { ch.Send(c, 1) })
	ch.Recv(g)
	g.Yield()
}

func progLeak(g *sim.G) {
	ch := conc.NewChan[int](g, 0)
	g.Go("orphan", func(c *sim.G) { ch.Send(c, 1) })
	g.Yield()
}

func progGDL(g *sim.G) {
	ch := conc.NewChan[int](g, 0)
	ch.Recv(g)
}

func progCrash(g *sim.G) {
	ch := conc.NewChan[int](g, 0)
	ch.Close(g)
	ch.Send(g, 1)
}

// progLockCycle: the classic AB-BA deadlock; whether it bites depends on
// schedule, but the lock-order cycle is visible in any run that
// interleaves the two critical sections.
func progLockCycle(g *sim.G) {
	a := conc.NewMutex(g)
	b := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	wg.Add(g, 2)
	g.Go("ab", func(c *sim.G) {
		a.Lock(c)
		c.Yield()
		b.Lock(c)
		b.Unlock(c)
		a.Unlock(c)
		wg.Done(c)
	})
	g.Go("ba", func(c *sim.G) {
		b.Lock(c)
		c.Yield()
		a.Lock(c)
		a.Unlock(c)
		b.Unlock(c)
		wg.Done(c)
	})
	wg.Wait(g)
}

func progDoubleLock(g *sim.G) {
	mu := conc.NewMutex(g)
	mu.Lock(g)
	mu.Lock(g)
}

func TestGoatDetectsEverything(t *testing.T) {
	cases := []struct {
		name    string
		prog    func(*sim.G)
		found   bool
		verdict string
	}{
		{"ok", progOK, false, "OK"},
		{"leak", progLeak, true, "PDL-1"},
		{"gdl", progGDL, true, "GDL"},
		{"crash", progCrash, true, "CRASH"},
	}
	for _, c := range cases {
		d := (Goat{}).Detect(exec(c.prog))
		if d.Found != c.found || d.Verdict != c.verdict {
			t.Errorf("%s: got (%v,%q), want (%v,%q)", c.name, d.Found, d.Verdict, c.found, c.verdict)
		}
	}
}

func TestGoatTimeout(t *testing.T) {
	r := sim.Run(sim.Options{PreemptProb: -1, MaxSteps: 300}, func(g *sim.G) {
		for {
			g.Yield()
		}
	})
	d := (Goat{}).Detect(r)
	if !d.Found || d.Verdict != "TO/GDL" {
		t.Fatalf("detection = %+v", d)
	}
}

func TestGoatWorksWithoutTrace(t *testing.T) {
	r := sim.Run(sim.Options{PreemptProb: -1, NoTrace: true}, progLeak)
	d := (Goat{}).Detect(r)
	if !d.Found {
		t.Fatalf("traceless leak not detected: %+v", d)
	}
}

func TestBuiltinOnlyGlobalDeadlocks(t *testing.T) {
	if d := (Builtin{}).Detect(exec(progLeak)); d.Found {
		t.Errorf("builtin claims to detect a leak: %+v", d)
	}
	if d := (Builtin{}).Detect(exec(progGDL)); !d.Found || d.Verdict != "GDL" {
		t.Errorf("builtin missed a global deadlock: %+v", d)
	}
	if d := (Builtin{}).Detect(exec(progCrash)); !d.Found || d.Verdict != "CRASH" {
		t.Errorf("builtin missed a crash: %+v", d)
	}
	if d := (Builtin{}).Detect(exec(progOK)); d.Found {
		t.Errorf("builtin false positive: %+v", d)
	}
}

func TestGoleakOnlyLeaksPastMain(t *testing.T) {
	if d := (Goleak{}).Detect(exec(progLeak)); !d.Found || !strings.HasPrefix(d.Verdict, "PDL") {
		t.Errorf("goleak missed a leak: %+v", d)
	}
	if d := (Goleak{}).Detect(exec(progGDL)); d.Found || d.Verdict != "HANG" {
		t.Errorf("goleak should hang on a global deadlock: %+v", d)
	}
	if d := (Goleak{}).Detect(exec(progOK)); d.Found {
		t.Errorf("goleak false positive: %+v", d)
	}
}

func TestLockDLFindsCycle(t *testing.T) {
	// Find a seed where the two critical sections interleave (both locks
	// acquired before either second acquisition) — the cycle is then in
	// the lock-order graph even if the run completes.
	foundWarn := false
	for seed := int64(0); seed < 50; seed++ {
		r := sim.Run(sim.Options{Seed: seed, Delays: 2}, progLockCycle)
		d := (LockDL{}).Detect(r)
		if d.Found {
			foundWarn = true
			break
		}
	}
	if !foundWarn {
		t.Fatal("lock-order cycle never reported over 50 seeds")
	}
}

func TestLockDLDoubleLock(t *testing.T) {
	d := (LockDL{}).Detect(exec(progDoubleLock))
	if !d.Found {
		t.Fatalf("double lock not reported: %+v", d)
	}
	if !strings.Contains(d.Detail, "double lock") && d.Verdict != "TO/GDL" {
		t.Fatalf("unexpected detail: %+v", d)
	}
}

func TestLockDLBlindToChannels(t *testing.T) {
	if d := (LockDL{}).Detect(exec(progLeak)); d.Found {
		t.Errorf("lockdl claims to see a channel leak: %+v", d)
	}
	// But a channel-caused global deadlock trips its timeout.
	if d := (LockDL{}).Detect(exec(progGDL)); !d.Found || d.Verdict != "TO/GDL" {
		t.Errorf("lockdl timeout missed: %+v", d)
	}
}

func TestLockDLCleanProgramQuiet(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := sim.Run(sim.Options{Seed: seed, Delays: 1}, func(g *sim.G) {
			a := conc.NewMutex(g)
			b := conc.NewMutex(g)
			wg := conc.NewWaitGroup(g)
			wg.Add(g, 2)
			for i := 0; i < 2; i++ {
				g.Go("w", func(c *sim.G) {
					a.Lock(c) // consistent order: a then b
					b.Lock(c)
					b.Unlock(c)
					a.Unlock(c)
					wg.Done(c)
				})
			}
			wg.Wait(g)
		})
		if d := (LockDL{}).Detect(r); d.Found {
			t.Fatalf("seed %d: false positive on consistent lock order: %+v", seed, d)
		}
	}
}

func TestAllLineup(t *testing.T) {
	tools := All()
	if len(tools) != 4 {
		t.Fatalf("lineup = %d tools", len(tools))
	}
	names := map[string]bool{}
	for _, tool := range tools {
		names[tool.Name()] = true
	}
	for _, want := range []string{"builtin", "lockdl", "goleak", "goat"} {
		if !names[want] {
			t.Fatalf("missing tool %q", want)
		}
	}
}
