// Slow-leak detection over goroutine-census windows.
//
// The blocked-at-end detectors (Goat, goleak) judge a settled final
// state; a service that strands one goroutine per thousand requests
// looks healthy to them for hours. The leak detector instead watches
// the *population*: it takes a census of stranded-looking goroutines at
// fixed event-count boundaries and raises a verdict when the census
// grows monotonically past its steady-state baseline. Provenance
// identity (trace.StrandSig) and the long-lived-worker suppression rule
// are shared with ingest.StrandedGoroutines, so the same stream runs
// unchanged on virtual-runtime traces and ingested native captures and
// reports leaks by the same signatures.
package detect

import (
	"fmt"
	"sort"

	"goat/internal/sim"
	"goat/internal/trace"
)

// Leak is the windowed slow-leak detector. The zero value uses the
// defaults below; it is not part of the paper's Table IV lineup (All),
// it extends it for service-shaped workloads.
type Leak struct {
	// Window is the census interval in events (default 4096). Smaller
	// windows react faster but see more transient congestion.
	Window int
	// MinGrowth is the census growth (strands beyond the baseline)
	// required to call a leak (default 3) — one stray stranded
	// goroutine is a bug report for Goat, not a population trend.
	MinGrowth int
}

const (
	defaultLeakWindow    = 4096
	defaultLeakMinGrowth = 3
)

// Name implements Detector.
func (Leak) Name() string { return "leak" }

// Detect implements Detector: the post-hoc entry point replays the
// buffered trace through the streaming core.
func (l Leak) Detect(r *sim.Result) Detection {
	s := l.NewStream()
	if r.Trace != nil {
		_ = r.Trace.Replay(s)
	}
	return s.Finish(r)
}

// NewStream implements Streaming.
func (l Leak) NewStream() Stream {
	w := l.Window
	if w <= 0 {
		w = defaultLeakWindow
	}
	mg := l.MinGrowth
	if mg <= 0 {
		mg = defaultLeakMinGrowth
	}
	d := &LeakStream{window: int64(w), minGrowth: mg, gs: map[trace.GoID]*leakG{}}
	d.reset()
	return d
}

// leakG is the per-goroutine provenance the census keys on — the
// streaming reconstruction of ingest.GInfo.
type leakG struct {
	name       string
	createFile string
	createLine int
	system     bool
	orphan     bool // introduced itself (creation not observed)
	wakes      int
	blocked    bool
	reason     trace.BlockReason
	file       string // block site, while blocked
	line       int
	blockedAt  int64 // event index of the current park
}

// LeakStream is the online census core. Goroutines that end are dropped
// immediately, so the tracked set is the live population — bounded by
// the program's actual goroutine count, not the trace length.
type LeakStream struct {
	window    int64
	minGrowth int

	gs     map[trace.GoID]*leakG
	events int64

	census  []int          // stale-strand count at each window boundary
	baseSig map[string]int // per-signature census at the baseline boundary (window 2)
	lastSig map[string]int // per-signature census at the latest boundary

	windowed bool // producer lacks CapCreateObserved: goroutines may introduce themselves
}

// SetSource implements trace.SourceAware.
func (d *LeakStream) SetSource(src trace.SourceInfo) {
	d.windowed = !src.Has(trace.CapCreateObserved)
}

// Reset implements Resettable.
func (d *LeakStream) Reset() {
	d.reset()
	d.windowed = false
}

func (d *LeakStream) reset() {
	clear(d.gs)
	d.gs[1] = &leakG{name: "main"}
	d.events = 0
	d.census = d.census[:0]
	d.baseSig = nil
	d.lastSig = nil
}

// Event implements trace.Sink.
func (d *LeakStream) Event(e trace.Event) {
	d.events++
	switch e.Type {
	case trace.EvGoCreate:
		child := &leakG{name: e.Str, createFile: e.File, createLine: e.Line, system: e.Aux == 1}
		if p := d.gs[e.G]; p != nil && p.system {
			child.system = true // system-ness is inherited, like gtree's app bit
		}
		d.gs[e.Peer] = child
	case trace.EvGoStart:
		g := d.gs[e.G]
		if g == nil {
			// Self-introduction: the window contract (native traces) or
			// the main goroutine of a trace slice. Aux=1 marks
			// runtime-internal provenance, as in gtree.
			g = &leakG{name: e.Str, createFile: e.File, createLine: e.Line,
				system: e.Aux == 1, orphan: true}
			d.gs[e.G] = g
		} else if g.name == "" {
			g.name = e.Str
		}
	case trace.EvGoBlock:
		if g := d.gs[e.G]; g != nil {
			g.blocked = true
			g.reason = e.BlockReason()
			g.file, g.line = e.File, e.Line
			g.blockedAt = d.events
		}
	case trace.EvGoUnblock:
		// Peer is the woken goroutine (self for timer wakes).
		if t := d.gs[e.Peer]; t != nil && t.blocked {
			t.blocked = false
			t.wakes++
		}
	case trace.EvGoEnd, trace.EvGoPanic:
		delete(d.gs, e.G)
	default:
		// Any other action proves the goroutine is running. A park that
		// ends without an observed unblock edge (native traces drop
		// runtime-internal wakes) still counts as a wake — that is what
		// keeps the worker suppression aligned with ingest's GInfo.Wakes.
		if g := d.gs[e.G]; g != nil && g.blocked {
			g.blocked = false
			g.wakes++
		}
	}
	if d.events%d.window == 0 {
		d.censusNow()
	}
}

// EventBatch implements trace.BatchSink.
func (d *LeakStream) EventBatch(evs []trace.Event) {
	for i := range evs {
		d.Event(evs[i])
	}
}

// Close implements trace.Sink.
func (d *LeakStream) Close() {}

// strandSig builds the shared provenance signature for a blocked
// goroutine.
func strandSig(g *leakG) trace.StrandSig {
	return trace.StrandSig{
		Name: g.name, Reason: g.reason,
		File: g.file, Line: g.line,
		CreateFile: g.createFile, CreateLine: g.createLine,
	}
}

// stranded applies the shared classification: parked on something that
// can leak, not runtime infrastructure, not a long-lived worker.
func stranded(g *leakG) bool {
	if !g.blocked || g.system {
		return false
	}
	switch g.reason {
	case trace.BlockSleep, trace.BlockNone, trace.BlockNet, trace.BlockSyscall:
		return false
	}
	return !trace.WorkerShaped(g.reason, g.orphan, g.wakes)
}

// censusNow records one window boundary: how many goroutines are
// *stale* strands — parked for at least one full window, so transient
// congestion inside the current window never inflates the census.
func (d *LeakStream) censusNow() {
	staleBefore := d.events - d.window
	n := 0
	sig := make(map[string]int)
	for _, g := range d.gs {
		if g.blockedAt > staleBefore || !stranded(g) {
			continue
		}
		n++
		sig[strandSig(g).String()]++
	}
	d.census = append(d.census, n)
	if len(d.census) == 2 {
		d.baseSig = sig
	}
	d.lastSig = sig
}

// StrandCount is one stranded-goroutine class in a census.
type StrandCount struct {
	Sig trace.StrandSig
	N   int
}

// FinalStrands is the end-of-trace strand census (no staleness filter),
// grouped by signature and ordered deterministically — the streaming
// equivalent of ingest.StrandedGoroutines over the same window.
func (d *LeakStream) FinalStrands() []StrandCount {
	bySig := map[string]StrandCount{}
	for _, g := range d.gs {
		if !stranded(g) {
			continue
		}
		s := strandSig(g)
		k := s.String()
		sc := bySig[k]
		sc.Sig, sc.N = s, sc.N+1
		bySig[k] = sc
	}
	out := make([]StrandCount, 0, len(bySig))
	for _, sc := range bySig {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sig.String() < out[j].Sig.String() })
	return out
}

// Finish implements Stream.
//
// The windowed verdict fires when the stale-strand census is
// non-decreasing from its baseline (the second boundary — the first at
// which a goroutine created in window one can be stale) and has grown
// by at least MinGrowth: LEAK-n, n counting the strands accumulated
// beyond steady state. Steady pools are absorbed by the baseline;
// census dips (a presumed strand that woke up) veto the verdict.
//
// When the trace is too short for a trend (fewer than three boundaries)
// or shows none, the end-of-trace strand census decides: that is the
// ingest.StrandedGoroutines judgment, which keeps the detector
// meaningful on short runs and native capture windows.
func (d *LeakStream) Finish(r *sim.Result) Detection {
	det := Detection{Tool: "leak"}
	if r != nil && r.Outcome == sim.OutcomeCrash {
		if r.FaultCrashed() {
			return injectedCrash(det, r)
		}
		return found(det, "CRASH", fmt.Sprint(r.PanicVal))
	}
	if len(d.census) >= 3 {
		base := d.census[1]
		last := d.census[len(d.census)-1]
		monotone := true
		offending := 0 // first boundary (1-based) above the baseline
		for i := 2; i < len(d.census); i++ {
			if d.census[i] < d.census[i-1] {
				monotone = false
				break
			}
			if offending == 0 && d.census[i] > base {
				offending = i + 1
			}
		}
		if growth := last - base; monotone && growth >= d.minGrowth {
			rate := float64(growth) / float64(len(d.census)-2)
			detail := fmt.Sprintf(
				"goroutine census grew %d -> %d across windows 2..%d of %d events (first growth at window %d, +%.2f strands/window)",
				base, last, len(d.census), d.window, offending, rate)
			if top, n := d.topGrowth(); top != "" {
				detail += fmt.Sprintf("; top signature %s (+%d)", top, n)
			}
			return found(det, fmt.Sprintf("LEAK-%d", growth), detail)
		}
	}
	if strands := d.FinalStrands(); len(strands) > 0 {
		total := 0
		for _, sc := range strands {
			total += sc.N
		}
		detail := fmt.Sprintf("%d goroutine(s) stranded at end of trace; %s x%d",
			total, strands[0].Sig, strands[0].N)
		return found(det, fmt.Sprintf("LEAK-%d", total), detail)
	}
	det.Verdict = "OK"
	return det
}

// topGrowth names the signature that accumulated the most strands
// between the baseline and the latest census.
func (d *LeakStream) topGrowth() (string, int) {
	var top string
	best := 0
	keys := make([]string, 0, len(d.lastSig))
	for k := range d.lastSig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if delta := d.lastSig[k] - d.baseSig[k]; delta > best {
			top, best = k, delta
		}
	}
	return top, best
}
