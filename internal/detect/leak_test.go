package detect

import (
	"strings"
	"testing"

	"goat/internal/ingest"
	"goat/internal/trace"
)

// leakTrace builds synthetic traces event by event, with the timestamp
// bookkeeping and goroutine-lifecycle boilerplate factored out.
type leakTrace struct {
	tr     *trace.Trace
	ts     int64
	nextID trace.GoID
}

func newLeakTrace() *leakTrace {
	return &leakTrace{tr: trace.New(0), nextID: 2}
}

func (lt *leakTrace) emit(e trace.Event) {
	lt.ts++
	e.Ts = lt.ts
	lt.tr.Append(e)
}

// filler emits one no-op main-goroutine event, advancing the event count.
func (lt *leakTrace) filler() {
	lt.emit(trace.Event{G: 1, Type: trace.EvChanSend, Res: 99, File: "svc.go", Line: 1})
}

// fillTo pads with filler events until `count` events have been emitted.
func (lt *leakTrace) fillTo(count int64) {
	for lt.ts < count {
		lt.filler()
	}
}

// strand creates a goroutine and parks it forever: 3 events
// (create/start/block).
func (lt *leakTrace) strand(reason trace.BlockReason, file string, line int) trace.GoID {
	id := lt.nextID
	lt.nextID++
	lt.emit(trace.Event{G: 1, Type: trace.EvGoCreate, Peer: id, File: "svc.go", Line: 10, Str: "svc.handler"})
	lt.emit(trace.Event{G: id, Type: trace.EvGoStart})
	lt.emit(trace.Event{G: id, Type: trace.EvGoBlock, Aux: int64(reason), File: file, Line: line})
	return id
}

func leakVerdict(t *testing.T, lt *leakTrace, l Leak) Detection {
	t.Helper()
	s := l.NewStream()
	if err := lt.tr.Replay(s); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return s.Finish(nil)
}

// TestLeakWindowEdgeCases drives the census over the boundary
// arithmetic the detector depends on: staleness at exactly one window,
// bursts landing on boundaries, rates below one strand per window, and
// transient congestion that must never count.
func TestLeakWindowEdgeCases(t *testing.T) {
	const W = 64
	l := Leak{Window: W, MinGrowth: 3}

	cases := []struct {
		name        string
		build       func(lt *leakTrace)
		wantVerdict string
		wantFound   bool
		wantDetail  string // substring; "" skips the check
	}{
		{
			// One strand every 1.5 windows: no single window shows much,
			// the trend across 12 windows is unmistakable.
			name: "rate below one per window",
			build: func(lt *leakTrace) {
				for i := int64(0); i < 8; i++ {
					lt.fillTo(i * 3 * W / 2)
					lt.strand(trace.BlockSend, "svc.go", 30)
				}
				lt.fillTo(12 * W)
			},
			// Strand i parks at event 96i+3; boundary m counts those with
			// 96i+3 <= 64(m-1): census 0,1,2,2,3,4,4,5,6,6,7,8 — baseline
			// 1 at window 2, 8 at window 12.
			wantVerdict: "LEAK-7",
			wantFound:   true,
		},
		{
			// Two strands right before every boundary: a strand parked at
			// event kW-1 is not yet stale at boundary k (it has not been
			// parked a full window) and must enter the census exactly at
			// boundary k+1 — off-by-one here either double-counts or
			// drops every burst.
			name: "burst at window boundaries",
			build: func(lt *leakTrace) {
				for k := int64(1); k <= 8; k++ {
					lt.fillTo(k*W - 6) // 2 strands x 3 events land at kW-6..kW-1
					lt.strand(trace.BlockSend, "svc.go", 31)
					lt.strand(trace.BlockSend, "svc.go", 31)
				}
				lt.fillTo(9 * W)
			},
			// c_m = 2(m-1): baseline 2 at window 2, 16 at window 9 — and
			// exactly 2.00 strands/window, proving no burst is counted
			// twice or lost.
			wantVerdict: "LEAK-14",
			wantFound:   true,
			wantDetail:  "+2.00 strands/window",
		},
		{
			// A single park landing exactly on the boundary event: never
			// stale enough for a trend, but still a strand at the end.
			name: "single strand on the boundary event",
			build: func(lt *leakTrace) {
				lt.fillTo(W - 3) // create/start/block occupy events W-2, W-1, W
				lt.strand(trace.BlockSend, "svc.go", 32)
				lt.fillTo(5 * W)
			},
			wantVerdict: "LEAK-1",
			wantFound:   true,
			wantDetail:  "stranded at end",
		},
		{
			// Congestion: parks that always resolve in under a window.
			// The staleness filter keeps every census at zero and the
			// wakes empty the final count.
			name: "transient congestion never counts",
			build: func(lt *leakTrace) {
				var parked []trace.GoID
				for w := int64(0); w < 10; w++ {
					lt.fillTo(w * W)
					for _, id := range parked { // wake last window's parkers
						lt.emit(trace.Event{G: 1, Type: trace.EvGoUnblock, Peer: id})
						lt.emit(trace.Event{G: id, Type: trace.EvGoEnd})
					}
					parked = parked[:0]
					parked = append(parked, lt.strand(trace.BlockSend, "svc.go", 33))
				}
				lt.fillTo(11 * W)
				for _, id := range parked {
					lt.emit(trace.Event{G: 1, Type: trace.EvGoUnblock, Peer: id})
					lt.emit(trace.Event{G: id, Type: trace.EvGoEnd})
				}
			},
			wantVerdict: "OK",
		},
		{
			// A steady pool stranded from the start is the baseline, not
			// a leak trend — and consuming-end workers that were woken
			// are suppressed outright, so a healthy pool reports nothing.
			name: "woken workers are suppressed",
			build: func(lt *leakTrace) {
				for i := 0; i < 4; i++ {
					id := lt.strand(trace.BlockRecv, "svc.go", 34)
					// One job each: wake, then park again forever.
					lt.emit(trace.Event{G: 1, Type: trace.EvGoUnblock, Peer: id})
					lt.emit(trace.Event{G: id, Type: trace.EvChanRecv, Res: 5})
					lt.emit(trace.Event{G: id, Type: trace.EvGoBlock, Aux: int64(trace.BlockRecv), File: "svc.go", Line: 34})
				}
				lt.fillTo(8 * W)
			},
			wantVerdict: "OK",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lt := newLeakTrace()
			tc.build(lt)
			det := leakVerdict(t, lt, l)
			if det.Verdict != tc.wantVerdict || det.Found != tc.wantFound {
				t.Errorf("verdict = %q (found=%v), want %q (found=%v)\ndetail: %s",
					det.Verdict, det.Found, tc.wantVerdict, tc.wantFound, det.Detail)
			}
			if tc.wantDetail != "" && !strings.Contains(det.Detail, tc.wantDetail) {
				t.Errorf("detail %q does not contain %q", det.Detail, tc.wantDetail)
			}
		})
	}
}

// TestLeakParityWithIngest runs the streaming detector over the
// checked-in native captures and checks signature-exact agreement with
// ingest.StrandedGoroutines — the shared-suppression contract: the same
// goroutines, grouped under the same trace.StrandSig identities.
func TestLeakParityWithIngest(t *testing.T) {
	fixtures := []struct {
		path    string
		verdict string
	}{
		{"../ingest/testdata/leakypool.trace", "LEAK-3"},
		{"../ingest/testdata/cleanpool.trace", "OK"},
	}
	for _, fx := range fixtures {
		t.Run(fx.path, func(t *testing.T) {
			run, err := ingest.ParseFile(fx.path)
			if err != nil {
				t.Fatalf("ParseFile: %v", err)
			}
			s := Leak{}.NewStream().(*LeakStream)
			if err := run.Trace.Replay(s); err != nil {
				t.Fatalf("replay: %v", err)
			}

			// Signature parity, ingest's census vs the stream's.
			want := map[string]int{}
			for _, st := range run.StrandedGoroutines(ingest.StrandedOpts{}) {
				want[st.Signature()]++
			}
			got := map[string]int{}
			for _, sc := range s.FinalStrands() {
				got[sc.Sig.String()] = sc.N
			}
			if len(got) != len(want) {
				t.Fatalf("signature classes: stream %v, ingest %v", got, want)
			}
			for sig, n := range want {
				if got[sig] != n {
					t.Errorf("signature %q: stream %d, ingest %d", sig, got[sig], n)
				}
			}

			det := s.Finish(run.Result())
			if det.Verdict != fx.verdict {
				t.Errorf("verdict = %q, want %q (detail: %s)", det.Verdict, fx.verdict, det.Detail)
			}
		})
	}
}
