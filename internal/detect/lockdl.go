package detect

import (
	"fmt"
	"sort"

	"goat/internal/sim"
	"goat/internal/trace"
)

// LockDL emulates the lock-order deadlock detector the paper compares
// against (sasha-s/go-deadlock): it intercepts every mutex lock/unlock,
// maintains per-goroutine locksets and a global lock-order graph, and
// warns on (a) a cycle in the lock-order graph, (b) double-locking the
// same lock in one goroutine, or (c) a 30-second global timeout. Channels
// are invisible to it, so communication deadlocks escape unless they also
// trip the timeout.
type LockDL struct{}

// Name implements Detector.
func (LockDL) Name() string { return "lockdl" }

// Detect implements Detector.
func (LockDL) Detect(r *sim.Result) Detection {
	d := Detection{Tool: "lockdl"}
	if r.Outcome == sim.OutcomeCrash {
		if r.FaultCrashed() {
			return injectedCrash(d, r)
		}
		return found(d, "CRASH", fmt.Sprint(r.PanicVal))
	}
	if r.Trace != nil {
		if warn := analyzeLockOrder(r.Trace); warn != "" {
			return found(d, "DL", warn)
		}
	}
	// The tool's application timeout catches programs that stop making
	// progress entirely.
	switch r.Outcome {
	case sim.OutcomeGlobalDeadlock, sim.OutcomeTimeout:
		return found(d, "TO/GDL", "application timeout expired")
	}
	d.Verdict = "OK"
	return d
}

// lockGraph is the accumulated lock-order digraph: an edge a→b means some
// goroutine acquired b while holding a.
type lockGraph struct {
	edges map[trace.ResID]map[trace.ResID]bool
}

func (g *lockGraph) add(from, to trace.ResID) {
	if g.edges == nil {
		g.edges = map[trace.ResID]map[trace.ResID]bool{}
	}
	if g.edges[from] == nil {
		g.edges[from] = map[trace.ResID]bool{}
	}
	g.edges[from][to] = true
}

// cycle returns a description of one cycle in the graph, or "".
func (g *lockGraph) cycle() string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[trace.ResID]int{}
	var nodes []trace.ResID
	for n := range g.edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var stack []trace.ResID
	var hit string
	var dfs func(n trace.ResID) bool
	dfs = func(n trace.ResID) bool {
		color[n] = gray
		stack = append(stack, n)
		var succs []trace.ResID
		for s := range g.edges[n] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, s := range succs {
			switch color[s] {
			case gray:
				// Found a back edge: report the cycle slice of the stack.
				i := 0
				for j, v := range stack {
					if v == s {
						i = j
						break
					}
				}
				hit = fmt.Sprintf("lock-order cycle: %v", append(append([]trace.ResID{}, stack[i:]...), s))
				return true
			case white:
				if dfs(s) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && dfs(n) {
			return hit
		}
	}
	return ""
}

// analyzeLockOrder replays the trace's mutex events and returns a warning
// string, or "" when the lock discipline looks clean.
func analyzeLockOrder(tr *trace.Trace) string {
	g := &lockGraph{}
	held := map[trace.GoID]map[trace.ResID]bool{}
	// pending tracks blocked acquisitions: the lock-order edge must be
	// recorded at the attempt, not only at the (possibly never-happening)
	// acquisition — this is how LockDL warns before the deadlock bites.
	for _, e := range tr.Events {
		switch e.Type {
		case trace.EvGoBlock:
			reason := e.BlockReason()
			if reason != trace.BlockMutex && reason != trace.BlockRMutex {
				continue
			}
			for h := range held[e.G] {
				if h == e.Res {
					return fmt.Sprintf("double lock of r%d in g%d at %s:%d", e.Res, e.G, e.File, e.Line)
				}
				g.add(h, e.Res)
			}
		case trace.EvMutexLock, trace.EvRWLock, trace.EvRLock:
			hs := held[e.G]
			if hs == nil {
				hs = map[trace.ResID]bool{}
				held[e.G] = hs
			}
			if !e.Blocked { // uncontended acquire still orders after held locks
				for h := range hs {
					if h == e.Res {
						return fmt.Sprintf("double lock of r%d in g%d at %s:%d", e.Res, e.G, e.File, e.Line)
					}
					g.add(h, e.Res)
				}
			}
			hs[e.Res] = true
		case trace.EvMutexUnlock, trace.EvRWUnlock, trace.EvRUnlock:
			if held[e.G][e.Res] {
				delete(held[e.G], e.Res)
				continue
			}
			// Cross-goroutine unlock: release whoever holds it.
			for gid, hs := range held {
				if hs[e.Res] {
					delete(hs, e.Res)
					_ = gid
					break
				}
			}
		}
	}
	return g.cycle()
}
