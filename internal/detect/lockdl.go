package detect

import (
	"fmt"
	"sort"

	"goat/internal/sim"
	"goat/internal/trace"
)

// LockDL emulates the lock-order deadlock detector the paper compares
// against (sasha-s/go-deadlock): it intercepts every mutex lock/unlock,
// maintains per-goroutine locksets and a global lock-order graph, and
// warns on (a) a cycle in the lock-order graph, (b) double-locking the
// same lock in one goroutine, or (c) a 30-second global timeout. Channels
// are invisible to it, so communication deadlocks escape unless they also
// trip the timeout.
type LockDL struct{}

// Name implements Detector.
func (LockDL) Name() string { return "lockdl" }

// Detect implements Detector. It is the post-hoc entry point: the
// buffered trace (when present) is replayed through the streaming core
// (LockDLStream), which campaigns attach directly to the run instead.
func (l LockDL) Detect(r *sim.Result) Detection {
	s := l.NewStream()
	if r.Trace != nil {
		_ = r.Trace.Replay(s) // source propagates: op-less producers disable the analysis
	}
	return s.Finish(r)
}

// lockGraph is the accumulated lock-order digraph: an edge a→b means some
// goroutine acquired b while holding a.
type lockGraph struct {
	edges map[trace.ResID]map[trace.ResID]bool
}

func (g *lockGraph) add(from, to trace.ResID) {
	if g.edges == nil {
		g.edges = map[trace.ResID]map[trace.ResID]bool{}
	}
	if g.edges[from] == nil {
		g.edges[from] = map[trace.ResID]bool{}
	}
	g.edges[from][to] = true
}

// cycle returns a description of one cycle in the graph, or "".
func (g *lockGraph) cycle() string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[trace.ResID]int{}
	var nodes []trace.ResID
	for n := range g.edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var stack []trace.ResID
	var hit string
	var dfs func(n trace.ResID) bool
	dfs = func(n trace.ResID) bool {
		color[n] = gray
		stack = append(stack, n)
		var succs []trace.ResID
		for s := range g.edges[n] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, s := range succs {
			switch color[s] {
			case gray:
				// Found a back edge: report the cycle slice of the stack.
				i := 0
				for j, v := range stack {
					if v == s {
						i = j
						break
					}
				}
				hit = fmt.Sprintf("lock-order cycle: %v", append(append([]trace.ResID{}, stack[i:]...), s))
				return true
			case white:
				if dfs(s) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && dfs(n) {
			return hit
		}
	}
	return ""
}

// The event-by-event lock-order analysis lives in LockDLStream (see
// stream.go): blocked acquisitions record their lock-order edges at the
// attempt, not only at the (possibly never-happening) acquisition — this
// is how LockDL warns before the deadlock bites.
