// Predictive blocking detection: candidates a single passing trace
// proves *could* block under another schedule, even though this
// execution settled cleanly.
//
// The classic detectors in this package are manifestation-bound — they
// report a bug only in an execution where it actually bites, which is
// why Table IV counts executions-to-detection. Trace-based predictive
// analysis (Sulzmann & Stadtmüller's happens-before framework for Go)
// observes that many blocking bugs are visible in the synchronization
// skeleton of *any* execution: an AB-BA lock-order inversion is present
// in the trace whether or not the schedule interleaved the two critical
// sections fatally. The predictive detector mines one D=0 trace for such
// latent hazards and reports them as a POTENTIAL verdict.
//
// All concurrency judgments use the must-happens-before relation
// (hb.Must): lock-induced edges are excluded, because those orderings
// are schedule chance, exactly what an adversarial schedule reverses.
//
// Candidate kinds, each keyed to a trace pattern:
//
//   - lock-cycle: two goroutines acquired the same two locks in opposite
//     orders (Goodlock-style, with gate-lockset and read/write-mode
//     filtering) and the acquisitions are must-concurrent.
//   - rlock-reentry: a goroutine read-locked an RWMutex it already
//     read-holds while a must-concurrent writer acquires the same lock —
//     writer preference deadlocks the re-entry if the writer queues
//     between the two.
//   - missed-signal: a Cond wakeup whose signal is must-concurrent with
//     the waiter's park and is the last wakeup on that cond — flip the
//     order and the signal fires before the wait parks, forever.
//   - chan-under-lock: a goroutine performed a channel operation while
//     holding a lock that a must-concurrent peer — one that also touches
//     the same channel — acquires: the channel op can block holding the
//     lock the partner needs.
//   - guarded-partner: a channel with unconditional (non-select) sends
//     whose receives all come from select sites, and which is never
//     closed — the selects demonstrate the receiver has alternatives;
//     commit one and the hard send strands.
//   - stranded-value: a channel that is sent to but never received from
//     and never closed — the value (or the capacity slot it occupies) is
//     dead weight; a second sender blocks forever.
package detect

import (
	"fmt"
	"sort"
	"strings"

	"goat/internal/hb"
	"goat/internal/sim"
	"goat/internal/trace"
)

// Candidate is one predicted-but-unmanifested blocking hazard.
type Candidate struct {
	Kind   string
	Detail string
}

func (c Candidate) String() string { return c.Kind + ": " + c.Detail }

// Predictive is the predictive blocking detector. On an execution where
// a bug manifests it reports the manifest verdict (the GoAT Procedure 1
// classification); on a passing execution it reports POTENTIAL-k when
// the trace contains k predicted hazards. It needs the event stream, so
// campaigns run it as a streaming detector or with tracing enabled.
type Predictive struct{}

// Name implements Detector.
func (Predictive) Name() string { return "predict" }

// Detect implements Detector by replaying the buffered trace through the
// streaming core.
func (p Predictive) Detect(r *sim.Result) Detection {
	s := p.NewStream()
	if r.Trace != nil {
		_ = r.Trace.Replay(s) // source propagates: op-less producers disable the mining
	}
	return s.Finish(r)
}

// NewStream implements Streaming.
func (Predictive) NewStream() Stream { return NewPredictStream() }

// Predict is the analysis-only entry point: it mines a trace for
// candidates without classifying the execution (cmd/goat -predict).
func Predict(tr *trace.Trace) []Candidate {
	s := NewPredictStream()
	if tr != nil {
		_ = tr.Replay(s)
	}
	return s.Candidates()
}

// lockMode distinguishes write from read acquisition of a lock.
type lockMode uint8

const (
	modeWrite lockMode = iota
	modeRead
)

func (m lockMode) String() string {
	if m == modeRead {
		return "R"
	}
	return "W"
}

// lockEdge records "g acquired to while holding from" — one edge of the
// lock-order graph, with everything the cycle judgment needs: the
// acquisition modes, the gate lockset (other locks held at the edge),
// and the must-clock of the acquisition.
type lockEdge struct {
	g        trace.GoID
	from, to trace.ResID
	fromMode lockMode
	toMode   lockMode
	gate     map[trace.ResID]bool
	vc       hb.VC
	file     string
	line     int
}

// acq is one lock acquisition (or attempt) with its must-clock.
type acq struct {
	g    trace.GoID
	mode lockMode
	vc   hb.VC
}

// condPark is a goroutine's latest Cond.Wait park.
type condPark struct {
	res trace.ResID
	vc  hb.VC
}

// condCand is a pending missed-signal candidate, valid only if its wake
// turns out to be the last one on the cond.
type condCand struct {
	res      trace.ResID
	waiter   trace.GoID
	signaler trace.GoID
	wakeIdx  int
}

// chanInfo aggregates the per-channel operation census.
type chanInfo struct {
	hardSends   int
	hardRecvs   int
	selSends    int
	selRecvs    int
	closed      bool
	sendSite    string // first unconditional send site, for reports
	opsBy       map[trace.GoID]bool
}

// chanLockRec records a channel operation performed under a held lock.
type chanLockRec struct {
	ch   trace.ResID
	lock trace.ResID
	g    trace.GoID
	vc   hb.VC
	file string
	line int
}

// maxAcqsPerLockG bounds the retained acquisition clocks per (lock,
// goroutine): beyond the first few, later acquisitions add no new
// concurrency evidence worth their memory on long traces.
const maxAcqsPerLockG = 8

// PredictStream is the streaming core of the predictive detector: a
// Must-mode happens-before engine drives the clocks while the analyses
// accumulate their evidence from the same event feed.
type PredictStream struct {
	goat *GoatStream
	en   *hb.Engine

	held     map[trace.GoID]map[trace.ResID]lockMode
	edges    []lockEdge
	edgeSeen map[[3]uint64]bool // (g, from, to) dedup

	reentries []lockEdge // from == to: the re-entered lock
	lockAcqs  map[trace.ResID][]acq
	acqCount  map[[2]uint64]int // (lock, g) retention counter

	condRes   map[trace.ResID]bool
	condParks map[trace.GoID]condPark
	condCands []condCand
	wakeCount map[trace.ResID]int

	chans     map[trace.ResID]*chanInfo
	chanOrder []trace.ResID

	underLock []chanLockRec
	ulSeen    map[[3]uint64]bool // (ch, lock, g) dedup

	// disabled is latched by SetSource when the producer lacks
	// CapOpEvents: predictive mining reasons about the full operation
	// census (uncontended acquisitions, unlocks, completed channel ops),
	// so on blocking-only streams its evidence would be systematically
	// biased and it declines to predict.
	disabled bool
}

// SetSource implements trace.SourceAware: the manifest classifier adapts
// to the source (window verdicts, orphan adoption) while the predictive
// mining disables itself without the full operation census.
func (s *PredictStream) SetSource(src trace.SourceInfo) {
	s.goat.SetSource(src)
	s.disabled = !src.Has(trace.CapOpEvents)
}

// NewPredictStream returns a fresh single-execution predictive stream.
func NewPredictStream() *PredictStream {
	s := &PredictStream{goat: Goat{}.NewStream().(*GoatStream)}
	s.en = hb.NewEngine(hb.Must)
	s.en.Observer = s.observe
	s.reset()
	return s
}

func (s *PredictStream) reset() {
	s.held = map[trace.GoID]map[trace.ResID]lockMode{}
	s.edges = nil
	s.edgeSeen = map[[3]uint64]bool{}
	s.reentries = nil
	s.lockAcqs = map[trace.ResID][]acq{}
	s.acqCount = map[[2]uint64]int{}
	s.condRes = map[trace.ResID]bool{}
	s.condParks = map[trace.GoID]condPark{}
	s.condCands = nil
	s.wakeCount = map[trace.ResID]int{}
	s.chans = map[trace.ResID]*chanInfo{}
	s.chanOrder = nil
	s.underLock = nil
	s.ulSeen = map[[3]uint64]bool{}
}

// Reset implements Resettable.
func (s *PredictStream) Reset() {
	s.goat.Reset()
	s.en.Reset()
	s.reset()
	s.disabled = false
}

// Event implements trace.Sink: the manifest classifier and the hb engine
// (whose observer runs the predictive bookkeeping) both see every event.
func (s *PredictStream) Event(e trace.Event) {
	s.goat.Event(e)
	s.en.Event(e)
}

// EventBatch implements trace.BatchSink, forwarding the block to both
// member streams in one dispatch each.
func (s *PredictStream) EventBatch(evs []trace.Event) {
	s.goat.EventBatch(evs)
	for i := range evs {
		s.en.Event(evs[i])
	}
}

// Close implements trace.Sink.
func (s *PredictStream) Close() {}

func (s *PredictStream) chanOf(res trace.ResID) *chanInfo {
	ci, ok := s.chans[res]
	if !ok {
		ci = &chanInfo{opsBy: map[trace.GoID]bool{}}
		s.chans[res] = ci
		s.chanOrder = append(s.chanOrder, res)
	}
	return ci
}

// recordAcq retains a bounded number of acquisition clocks per lock and
// goroutine for the concurrency judgments.
func (s *PredictStream) recordAcq(res trace.ResID, g trace.GoID, mode lockMode, vc hb.VC) {
	key := [2]uint64{uint64(res), uint64(g)}
	if s.acqCount[key] >= maxAcqsPerLockG {
		return
	}
	s.acqCount[key]++
	s.lockAcqs[res] = append(s.lockAcqs[res], acq{g: g, mode: mode, vc: vc.Clone()})
}

// addEdges records one lock-order edge per currently-held lock, plus the
// re-entry record when the goroutine already holds the acquired lock.
func (s *PredictStream) addEdges(e trace.Event, mode lockMode, vc hb.VC) {
	hs := s.held[e.G]
	for h, hMode := range hs {
		if h == e.Res {
			if hMode == modeRead && mode == modeRead {
				s.reentries = append(s.reentries, lockEdge{
					g: e.G, from: h, to: e.Res, fromMode: hMode, toMode: mode,
					vc: vc.Clone(), file: e.File, line: e.Line,
				})
			}
			continue
		}
		key := [3]uint64{uint64(e.G), uint64(h), uint64(e.Res)}
		if s.edgeSeen[key] {
			continue
		}
		s.edgeSeen[key] = true
		gate := make(map[trace.ResID]bool, len(hs))
		for o := range hs {
			if o != h {
				gate[o] = true
			}
		}
		s.edges = append(s.edges, lockEdge{
			g: e.G, from: h, to: e.Res, fromMode: hMode, toMode: mode,
			gate: gate, vc: vc.Clone(), file: e.File, line: e.Line,
		})
	}
}

// chanOp records a channel operation: the census plus, when performed
// under held locks, the chan-under-lock evidence.
func (s *PredictStream) chanOp(e trace.Event, vc hb.VC) {
	ci := s.chanOf(e.Res)
	ci.opsBy[e.G] = true
	for lock := range s.held[e.G] {
		key := [3]uint64{uint64(e.Res), uint64(lock), uint64(e.G)}
		if s.ulSeen[key] {
			continue
		}
		s.ulSeen[key] = true
		s.underLock = append(s.underLock, chanLockRec{
			ch: e.Res, lock: lock, g: e.G, vc: vc.Clone(), file: e.File, line: e.Line,
		})
	}
}

// observe is the hb.Engine observer: every clock-ticking event with the
// acting goroutine's must-clock.
func (s *PredictStream) observe(e trace.Event, vc hb.VC) {
	switch e.Type {
	case trace.EvGoBlock:
		switch e.BlockReason() {
		case trace.BlockMutex:
			// An acquisition attempt orders after the held locks even if
			// the lock is never granted — same rule as LockDL.
			s.addEdges(e, modeWrite, vc)
			s.recordAcq(e.Res, e.G, modeWrite, vc)
		case trace.BlockRMutex:
			s.addEdges(e, modeRead, vc)
			s.recordAcq(e.Res, e.G, modeRead, vc)
		case trace.BlockCond:
			s.condRes[e.Res] = true
			s.condParks[e.G] = condPark{res: e.Res, vc: vc.Clone()}
		case trace.BlockSend, trace.BlockRecv:
			s.chanOp(e, vc)
		}
	case trace.EvMutexLock, trace.EvRWLock:
		if !e.Blocked { // blocked acquires recorded their edges at the attempt
			s.addEdges(e, modeWrite, vc)
			s.recordAcq(e.Res, e.G, modeWrite, vc)
		}
		hs := s.held[e.G]
		if hs == nil {
			hs = map[trace.ResID]lockMode{}
			s.held[e.G] = hs
		}
		hs[e.Res] = modeWrite
	case trace.EvRLock:
		if !e.Blocked {
			s.addEdges(e, modeRead, vc)
			s.recordAcq(e.Res, e.G, modeRead, vc)
		}
		hs := s.held[e.G]
		if hs == nil {
			hs = map[trace.ResID]lockMode{}
			s.held[e.G] = hs
		}
		hs[e.Res] = modeRead
	case trace.EvMutexUnlock, trace.EvRWUnlock, trace.EvRUnlock:
		if _, ok := s.held[e.G][e.Res]; ok {
			delete(s.held[e.G], e.Res)
			break
		}
		// Cross-goroutine unlock: release whoever holds it.
		for _, hs := range s.held {
			if _, ok := hs[e.Res]; ok {
				delete(hs, e.Res)
				break
			}
		}
	case trace.EvGoUnblock:
		if s.condRes[e.Res] && e.Peer != 0 {
			park, ok := s.condParks[e.Peer]
			if ok && park.res == e.Res && park.vc.Concurrent(vc) {
				s.condCands = append(s.condCands, condCand{
					res: e.Res, waiter: e.Peer, signaler: e.G,
					wakeIdx: s.wakeCount[e.Res] + 1,
				})
			}
		}
	case trace.EvCondSignal, trace.EvCondBroadcast:
		s.condRes[e.Res] = true
		s.wakeCount[e.Res]++
	case trace.EvCondWait:
		s.condRes[e.Res] = true
	case trace.EvChanMake:
		s.chanOf(e.Res)
	case trace.EvChanSend:
		ci := s.chanOf(e.Res)
		if e.Aux == trace.AuxTryOp {
			// A completed TrySend is partner evidence but can never
			// block: it neither counts as an unconditional send nor as a
			// block-holding-a-lock hazard.
			ci.opsBy[e.G] = true
			break
		}
		ci.hardSends++
		if ci.sendSite == "" {
			ci.sendSite = fmt.Sprintf("%s:%d", e.File, e.Line)
		}
		s.chanOp(e, vc)
	case trace.EvChanRecv:
		ci := s.chanOf(e.Res)
		if e.Aux == 1 {
			ci.hardRecvs++
		}
		s.chanOp(e, vc)
	case trace.EvSelectCase:
		ci := s.chanOf(e.Res)
		if e.Str == "send" {
			ci.selSends++
		} else {
			ci.selRecvs++
		}
		s.chanOp(e, vc)
	case trace.EvChanClose:
		s.chanOf(e.Res).closed = true
		s.chanOp(e, vc)
	}
}

// modesConflict reports whether two acquisition modes of the same lock
// can exclude each other: only read-read pairs cannot.
func modesConflict(a, b lockMode) bool {
	return !(a == modeRead && b == modeRead)
}

// gatesDisjoint implements Goodlock's gate filter: a common gate lock
// serializes the two edges, so the inversion cannot bite.
func gatesDisjoint(a, b map[trace.ResID]bool) bool {
	for l := range a {
		if b[l] {
			return false
		}
	}
	return true
}

// Candidates runs the end-of-trace judgments and returns the predicted
// hazards in a deterministic order.
func (s *PredictStream) Candidates() []Candidate {
	if s.disabled {
		return nil
	}
	var out []Candidate

	// lock-cycle: inverted edge pairs from distinct goroutines, gate-
	// disjoint, mode-conflicting on both locks, must-concurrent.
	seenPair := map[[2]uint64]bool{}
	for i, e1 := range s.edges {
		for _, e2 := range s.edges[i+1:] {
			if e1.g == e2.g || e1.from != e2.to || e1.to != e2.from {
				continue
			}
			a, b := e1.from, e1.to
			key := [2]uint64{uint64(min(a, b)), uint64(max(a, b))}
			if seenPair[key] {
				continue
			}
			if !gatesDisjoint(e1.gate, e2.gate) {
				continue
			}
			// Conflict on a: e1 holds a while e2 acquires it; on b the
			// roles are mirrored.
			if !modesConflict(e1.fromMode, e2.toMode) || !modesConflict(e1.toMode, e2.fromMode) {
				continue
			}
			if !e1.vc.Concurrent(e2.vc) {
				continue
			}
			seenPair[key] = true
			out = append(out, Candidate{
				Kind: "lock-cycle",
				Detail: fmt.Sprintf("r%d->r%d by g%d at %s:%d inverts r%d->r%d by g%d at %s:%d",
					a, b, e1.g, e1.file, e1.line, b, a, e2.g, e2.file, e2.line),
			})
		}
	}

	// rlock-reentry: recursive read acquisition with a must-concurrent
	// writer on the same RWMutex.
	seenRe := map[[2]uint64]bool{}
	for _, re := range s.reentries {
		key := [2]uint64{uint64(re.to), uint64(re.g)}
		if seenRe[key] {
			continue
		}
		for _, w := range s.lockAcqs[re.to] {
			if w.g == re.g || w.mode != modeWrite || !w.vc.Concurrent(re.vc) {
				continue
			}
			seenRe[key] = true
			out = append(out, Candidate{
				Kind: "rlock-reentry",
				Detail: fmt.Sprintf("g%d re-read-locks r%d at %s:%d while g%d write-locks it concurrently",
					re.g, re.to, re.file, re.line, w.g),
			})
			break
		}
	}

	// missed-signal: the wake must be the cond's last — any later signal
	// or broadcast would rescue a waiter that parked late.
	seenCond := map[trace.ResID]bool{}
	for _, c := range s.condCands {
		if c.wakeIdx != s.wakeCount[c.res] || seenCond[c.res] {
			continue
		}
		seenCond[c.res] = true
		out = append(out, Candidate{
			Kind: "missed-signal",
			Detail: fmt.Sprintf("last wake of cond r%d by g%d is concurrent with g%d's park: reordered, the wait never returns",
				c.res, c.signaler, c.waiter),
		})
	}

	// chan-under-lock: the op can block holding a lock a concurrent
	// partner on the same channel needs.
	seenUL := map[[2]uint64]bool{}
	for _, rec := range s.underLock {
		key := [2]uint64{uint64(rec.ch), uint64(rec.lock)}
		if seenUL[key] {
			continue
		}
		ci := s.chans[rec.ch]
		if ci == nil {
			continue
		}
		for _, a := range s.lockAcqs[rec.lock] {
			if a.g == rec.g || !ci.opsBy[a.g] || !a.vc.Concurrent(rec.vc) {
				continue
			}
			seenUL[key] = true
			out = append(out, Candidate{
				Kind: "chan-under-lock",
				Detail: fmt.Sprintf("g%d operates on chan r%d at %s:%d holding r%d, which chan partner g%d acquires concurrently",
					rec.g, rec.ch, rec.file, rec.line, rec.lock, a.g),
			})
			break
		}
	}

	// Channel-census rules, in channel creation order. Only unconditional
	// sends count (TrySend events carry trace.AuxTryOp and are excluded —
	// a try-op can never strand).
	for _, res := range s.chanOrder {
		ci := s.chans[res]
		switch {
		case ci.hardSends > 0 && ci.selRecvs > 0 && !ci.closed:
			out = append(out, Candidate{
				Kind: "guarded-partner",
				Detail: fmt.Sprintf("chan r%d: unconditional send at %s meets only select-guarded receives and no close — the select's alternative strands the sender",
					res, ci.sendSite),
			})
		case ci.hardSends > 0 && ci.hardRecvs == 0 && ci.selRecvs == 0 && !ci.closed:
			out = append(out, Candidate{
				Kind: "stranded-value",
				Detail: fmt.Sprintf("chan r%d: unconditional send at %s is never received or closed — a capacity-full repeat of it blocks forever",
					res, ci.sendSite),
			})
		}
	}
	return out
}

// Finish implements Stream: a manifest detection wins; otherwise the
// candidate set decides between POTENTIAL-k and OK.
func (s *PredictStream) Finish(r *sim.Result) Detection {
	base := s.goat.Finish(r)
	base.Tool = "predict"
	if base.Found {
		return base
	}
	cands := s.Candidates()
	if len(cands) == 0 {
		if s.disabled && !base.Found {
			base.Detail = "predictive mining disabled: producer records only blocking operations"
		}
		return base
	}
	var b strings.Builder
	for i, c := range cands {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(c.String())
	}
	return found(Detection{Tool: "predict"}, fmt.Sprintf("POTENTIAL-%d", len(cands)), b.String())
}

// sortCandidates orders candidates by kind then detail — used by tests
// that compare candidate sets across runs with different interleavings.
func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Kind != cs[j].Kind {
			return cs[i].Kind < cs[j].Kind
		}
		return cs[i].Detail < cs[j].Detail
	})
}
