// Streaming detector cores. Each detector that inspects the ECT has an
// online form: a trace.Sink that consumes events as the virtual runtime
// emits them and produces its Detection the moment the run ends, without
// the run ever buffering a trace. The post-hoc Detect entry points are
// thin wrappers that replay a buffered trace through the same core, so
// the two paths cannot drift: a stream observed live and a stream
// replayed from the ECT yield identical verdicts.
//
// A streaming core may additionally implement trace.Stopper to signal an
// early stop: once its verdict is decided no further observation can
// change it, so the scheduler halts the world instead of running the
// schedule out (LockDL's lock-order cycle is the genuinely early case —
// the cycle warning is latched the moment the closing edge appears,
// possibly thousands of dispatches before the run would settle).
package detect

import (
	"fmt"

	"goat/internal/sim"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// Stream is one online detector instance, good for a single execution:
// attach it to the run via sim.Options.Sinks, then call Finish with the
// run's Result to obtain the Detection.
type Stream interface {
	trace.Sink
	// Finish combines the streamed state with the runtime's classified
	// Result (outcome, panic value, fault record) into the verdict.
	Finish(r *sim.Result) Detection
}

// Streaming marks detectors that provide an online core.
type Streaming interface {
	Detector
	// NewStream returns a fresh single-execution online instance.
	NewStream() Stream
}

// EarlyStopper marks streams whose early-stop signalling can be toggled:
// enabled, the stream requests a world-stop as soon as its verdict is
// decided (the run is then classified sim.OutcomeStopped). Disabled (the
// default), the stream observes the full run, which keeps it verdict-
// and byte-equivalent to the post-hoc path.
type EarlyStopper interface {
	EnableEarlyStop()
}

// Resettable marks streams a campaign may recycle across executions:
// Reset returns the stream to its initial state (keeping its early-stop
// configuration), so a hot campaign loop runs its detector without any
// per-execution allocation.
type Resettable interface {
	Stream
	Reset()
}

// ---------------------------------------------------------------------
// GoAT: online goroutine-tree state.

// goatG is the per-goroutine state the online blocked-goroutine detector
// keeps: whether the goroutine is application-level and its latest event
// type — exactly the inputs of Procedure 1 (final events over the
// application goroutine tree).
type goatG struct {
	app  bool
	last trace.Type
}

// GoatStream is the online form of the GoAT detector: it maintains the
// goroutine tree's final-event states incrementally instead of building
// the tree from a buffered trace after the fact. The goroutine states are
// held by value so tracking a spawn costs no allocation.
type GoatStream struct {
	gs        map[trace.GoID]goatG
	events    int
	err       string // malformed stream, latched (mirrors gtree.Build)
	panicSeen bool
	earlyStop bool

	// Producer guarantees (trace.SourceAware). Without CapCreateObserved
	// a goroutine may introduce itself by its own GoStart (window
	// traces); without CapCompleteRun "main never ended" is the normal
	// end-of-window state, so the verdict becomes a blocked-at-window-end
	// census instead of Procedure 1's complete-run classification.
	windowed   bool
	incomplete bool
}

// SetSource implements trace.SourceAware. Streams that never learn a
// source keep the virtual runtime's strict contract.
func (d *GoatStream) SetSource(src trace.SourceInfo) {
	d.windowed = !src.Has(trace.CapCreateObserved)
	d.incomplete = !src.Has(trace.CapCompleteRun)
}

// NewStream implements Streaming.
func (Goat) NewStream() Stream {
	return &GoatStream{gs: map[trace.GoID]goatG{1: {app: true}}}
}

// Reset implements Resettable. Source leniency is dropped back to the
// strict virtual-runtime contract: a replay entry point re-announces its
// source, a live run never has one.
func (d *GoatStream) Reset() {
	clear(d.gs)
	d.gs[1] = goatG{app: true}
	d.events = 0
	d.err = ""
	d.panicSeen = false
	d.windowed = false
	d.incomplete = false
}

// EnableEarlyStop implements EarlyStopper. The blocked-goroutine verdict
// itself is settle-decided (the scheduler already stops the world then),
// so the only genuinely early decision is a crash — which also ends the
// run — making this a no-op in practice; it exists so campaign engines
// can treat every stream uniformly.
func (d *GoatStream) EnableEarlyStop() { d.earlyStop = true }

// StopRequested implements trace.Stopper.
func (d *GoatStream) StopRequested() bool { return d.earlyStop && d.panicSeen }

// Event implements trace.Sink.
func (d *GoatStream) Event(e trace.Event) {
	if d.err != "" {
		return
	}
	d.events++
	g, ok := d.gs[e.G]
	if !ok {
		if d.windowed && e.Type == trace.EvGoStart {
			// Orphan adoption, mirroring gtree.Builder: a goroutine that
			// pre-existed the window introduces itself (Aux=1 marks
			// runtime-internal provenance).
			g = goatG{app: e.Aux != 1}
		} else {
			d.err = fmt.Sprintf("gtree: event by unknown goroutine g%d at ts %d", e.G, e.Ts)
			return
		}
	}
	g.last = e.Type
	d.gs[e.G] = g
	switch e.Type {
	case trace.EvGoCreate:
		d.gs[e.Peer] = goatG{app: g.app && e.Aux != 1}
	case trace.EvGoPanic:
		d.panicSeen = true
	}
}

// EventBatch implements trace.BatchSink: one virtual dispatch per
// emission block instead of per event. The block is not retained.
func (d *GoatStream) EventBatch(evs []trace.Event) {
	for i := range evs {
		d.Event(evs[i])
	}
}

// Close implements trace.Sink.
func (d *GoatStream) Close() {}

// Finish implements Stream. The verdict logic and its wording match the
// post-hoc Goat.Detect exactly.
func (d *GoatStream) Finish(r *sim.Result) Detection {
	det := d.finish(r)
	flushStreamTelemetry(d.events, 0, det)
	return det
}

func (d *GoatStream) finish(r *sim.Result) Detection {
	det := Detection{Tool: "goat"}
	if r.Outcome == sim.OutcomeCrash {
		if r.FaultCrashed() {
			return injectedCrash(det, r)
		}
		return found(det, "CRASH", fmt.Sprintf("panic in g%d: %v", r.PanicG, r.PanicVal))
	}
	if r.Outcome == sim.OutcomeTimeout {
		detail := "no progress before the watchdog budget expired"
		if len(r.Faults) > 0 {
			detail += fmt.Sprintf(" (%d fault(s) injected)", len(r.Faults))
		}
		return found(det, "TO/GDL", detail)
	}
	if d.err != "" {
		return found(det, "ERROR", d.err)
	}
	if d.events == 0 {
		return found(det, "ERROR", trace.ErrEmpty.Error())
	}
	if d.incomplete {
		// Window trace: there is no settle point, so Procedure 1's
		// complete-run classification does not apply. The verdict is a
		// census of application goroutines parked when the window closed
		// — candidates, which the stranded-goroutine analysis
		// (internal/ingest) refines with provenance and activity.
		blocked := 0
		for _, g := range d.gs {
			if g.app && g.last == trace.EvGoBlock {
				blocked++
			}
		}
		if blocked > 0 {
			return found(det, fmt.Sprintf("PDL-%d", blocked),
				fmt.Sprintf("%d goroutine(s) blocked at the end of the trace window", blocked))
		}
		det.Verdict = "OK"
		return det
	}
	if d.gs[1].last != trace.EvGoEnd {
		return found(det, "GDL", "main goroutine never reached its end state")
	}
	leaked := 0
	for id, g := range d.gs {
		if id != 1 && g.app && g.last != trace.EvGoEnd {
			leaked++
		}
	}
	if leaked > 0 {
		return found(det, fmt.Sprintf("PDL-%d", leaked), fmt.Sprintf("%d goroutine(s) leaked", leaked))
	}
	det.Verdict = "OK"
	return det
}

// ---------------------------------------------------------------------
// LockDL: online lock-order analysis.

// LockDLStream is the online form of the lock-order detector: it folds
// every mutex event into the per-goroutine locksets and the lock-order
// graph as it happens. Double-lock warnings are latched at the offending
// event (matching where the post-hoc scan returns); the cycle check runs
// at Finish — or, with early-stop enabled, incrementally on every new
// edge, so a campaign run halts the moment the cycle closes.
type LockDLStream struct {
	graph     lockGraph
	held      map[trace.GoID]map[trace.ResID]bool
	warn      string
	earlyStop bool
	cycleHit  bool
	events    int // events consumed this run
	warnAt    int // event count when the warning latched (0 = never)

	// disabled is latched by SetSource when the producer lacks
	// CapOpEvents: without uncontended acquisitions and unlocks the
	// locksets are fiction, so the lock-order analysis switches itself
	// off rather than warn from unsound state.
	disabled bool
}

// SetSource implements trace.SourceAware: the analysis needs the full
// operation census (CapOpEvents) to be sound.
func (d *LockDLStream) SetSource(src trace.SourceInfo) {
	d.disabled = !src.Has(trace.CapOpEvents)
}

// NewStream implements Streaming.
func (LockDL) NewStream() Stream {
	return &LockDLStream{held: map[trace.GoID]map[trace.ResID]bool{}}
}

// EnableEarlyStop implements EarlyStopper.
func (d *LockDLStream) EnableEarlyStop() { d.earlyStop = true }

// Reset implements Resettable. The goroutine lockset map is retained
// (inner sets are rebuilt as goroutines lock); the lock-order graph is
// rebuilt from scratch. Source-based disablement is dropped: the next
// replay re-announces its source.
func (d *LockDLStream) Reset() {
	d.graph = lockGraph{}
	clear(d.held)
	d.warn = ""
	d.cycleHit = false
	d.events = 0
	d.warnAt = 0
	d.disabled = false
}

// StopRequested implements trace.Stopper.
func (d *LockDLStream) StopRequested() bool { return d.earlyStop && d.warn != "" }

// addEdge records a lock-order edge and, in early-stop mode, re-runs the
// cycle check the moment a new edge appears. The check is the same
// deterministic scan Finish uses, so the early warning is rendered
// exactly as the post-run one would be.
func (d *LockDLStream) addEdge(from, to trace.ResID) {
	isNew := !d.graph.edges[from][to]
	d.graph.add(from, to)
	if d.earlyStop && !d.cycleHit && isNew {
		if warn := d.graph.cycle(); warn != "" {
			d.cycleHit = true
			d.warn = warn
		}
	}
}

// Event implements trace.Sink. Blocked acquisitions record lock-order
// edges at the attempt, not only at the (possibly never-happening)
// acquisition — this is how LockDL warns before the deadlock bites.
func (d *LockDLStream) Event(e trace.Event) {
	d.events++
	if d.warn != "" {
		return // first warning wins, like the post-hoc scan's early return
	}
	if d.disabled || e.Res == 0 {
		// No op census, or an operation whose resource identity the
		// producer could not synthesize — Res 0 would alias every such
		// operation into one phantom lock.
		return
	}
	defer func() {
		if d.warn != "" && d.warnAt == 0 {
			d.warnAt = d.events
		}
	}()
	switch e.Type {
	case trace.EvGoBlock:
		reason := e.BlockReason()
		if reason != trace.BlockMutex && reason != trace.BlockRMutex {
			return
		}
		for h := range d.held[e.G] {
			if h == e.Res {
				d.warn = fmt.Sprintf("double lock of r%d in g%d at %s:%d", e.Res, e.G, e.File, e.Line)
				return
			}
			d.addEdge(h, e.Res)
		}
	case trace.EvMutexLock, trace.EvRWLock, trace.EvRLock:
		hs := d.held[e.G]
		if hs == nil {
			hs = map[trace.ResID]bool{}
			d.held[e.G] = hs
		}
		if !e.Blocked { // uncontended acquire still orders after held locks
			for h := range hs {
				if h == e.Res {
					d.warn = fmt.Sprintf("double lock of r%d in g%d at %s:%d", e.Res, e.G, e.File, e.Line)
					return
				}
				d.addEdge(h, e.Res)
			}
		}
		hs[e.Res] = true
	case trace.EvMutexUnlock, trace.EvRWUnlock, trace.EvRUnlock:
		if d.held[e.G][e.Res] {
			delete(d.held[e.G], e.Res)
			return
		}
		// Cross-goroutine unlock: release whoever holds it.
		for _, hs := range d.held {
			if hs[e.Res] {
				delete(hs, e.Res)
				break
			}
		}
	}
}

// EventBatch implements trace.BatchSink.
func (d *LockDLStream) EventBatch(evs []trace.Event) {
	for i := range evs {
		d.Event(evs[i])
	}
}

// Close implements trace.Sink.
func (d *LockDLStream) Close() {}

// Finish implements Stream, with the post-hoc Detect's exact ordering:
// crash, then the lock-discipline warning, then the application timeout.
func (d *LockDLStream) Finish(r *sim.Result) Detection {
	det := d.finish(r)
	lag := 0
	if d.warnAt > 0 {
		lag = d.events - d.warnAt
	}
	flushStreamTelemetry(d.events, lag, det)
	return det
}

func (d *LockDLStream) finish(r *sim.Result) Detection {
	det := Detection{Tool: "lockdl"}
	if r.Outcome == sim.OutcomeCrash {
		if r.FaultCrashed() {
			return injectedCrash(det, r)
		}
		return found(det, "CRASH", fmt.Sprint(r.PanicVal))
	}
	if d.disabled {
		det.Verdict = "N/A"
		det.Detail = "producer records only blocking operations; lock-order analysis disabled"
		return det
	}
	warn := d.warn
	if warn == "" {
		warn = d.graph.cycle()
	}
	if warn != "" {
		return found(det, "DL", warn)
	}
	switch r.Outcome {
	case sim.OutcomeGlobalDeadlock, sim.OutcomeTimeout:
		return found(det, "TO/GDL", "application timeout expired")
	}
	det.Verdict = "OK"
	return det
}

// flushStreamTelemetry batches one finished stream's observations into
// the registry: events consumed, whether the run detected, and — when
// the verdict latched mid-run — how many further events arrived before
// the world stopped (the early-stop latency).
func flushStreamTelemetry(events, stopLag int, det Detection) {
	if !telemetry.Enabled() {
		return
	}
	telemetry.DetectEvents.Add(int64(events))
	if det.Found {
		telemetry.DetectDetections.Inc()
	}
	if stopLag > 0 {
		telemetry.DetectStopLatency.Observe(int64(stopLag))
	}
}

// ---------------------------------------------------------------------
// Result-only detectors: trivially streaming.

// resultStream adapts a detector that only inspects the classified
// Result (builtin, goleak) to the Stream interface: the event stream is
// ignored, Finish delegates to Detect. Such detectors never need the
// trace, so their campaigns already run trace-free.
type resultStream struct{ d Detector }

func (resultStream) Event(trace.Event)                {}
func (resultStream) EventBatch([]trace.Event)         {}
func (resultStream) Close()                           {}
func (resultStream) Reset()                           {}
func (s resultStream) Finish(r *sim.Result) Detection { return s.d.Detect(r) }

// NewStream implements Streaming.
func (b Builtin) NewStream() Stream { return resultStream{d: b} }

// NewStream implements Streaming.
func (g Goleak) NewStream() Stream { return resultStream{d: g} }
