package detect

import (
	"testing"

	"goat/internal/sim"
	"goat/internal/trace"
)

// lockEv builds the minimal mutex event sequence of an ABBA cycle formed
// by one goroutine taking the locks in both orders.
func abbaEvents() []trace.Event {
	mk := func(ts int64, ty trace.Type, res trace.ResID) trace.Event {
		return trace.Event{Ts: ts, G: 1, Type: ty, Res: res, File: "abba.go", Line: int(ts)}
	}
	return []trace.Event{
		mk(1, trace.EvMutexLock, 1),
		mk(2, trace.EvMutexLock, 2), // edge r1 -> r2
		mk(3, trace.EvMutexUnlock, 2),
		mk(4, trace.EvMutexUnlock, 1),
		mk(5, trace.EvMutexLock, 2),
		mk(6, trace.EvMutexLock, 1), // edge r2 -> r1: closes the cycle
		mk(7, trace.EvMutexUnlock, 1),
		mk(8, trace.EvMutexUnlock, 2),
	}
}

func TestLockDLStreamEarlyStopOnCycle(t *testing.T) {
	events := abbaEvents()

	// Default mode: the cycle check runs at Finish, never mid-stream.
	s := LockDL{}.NewStream().(*LockDLStream)
	for _, e := range events {
		s.Event(e)
		if s.StopRequested() {
			t.Fatalf("stop requested at ts %d without early-stop enabled", e.Ts)
		}
	}
	d := s.Finish(&sim.Result{Outcome: sim.OutcomeOK})
	if !d.Found || d.Verdict != "DL" {
		t.Fatalf("post-run verdict %+v", d)
	}

	// Early-stop mode: the stop latches the moment the closing edge appears.
	es := LockDL{}.NewStream().(*LockDLStream)
	es.EnableEarlyStop()
	stopAt := int64(0)
	for _, e := range events {
		es.Event(e)
		if es.StopRequested() && stopAt == 0 {
			stopAt = e.Ts
		}
	}
	if stopAt != 6 {
		t.Fatalf("stop latched at ts %d, want 6 (the cycle-closing lock)", stopAt)
	}
	de := es.Finish(&sim.Result{Outcome: sim.OutcomeStopped, EarlyStopped: true})
	if !de.Found || de.Verdict != "DL" || de.Detail != d.Detail {
		t.Fatalf("early-stopped verdict %+v, want the full run's %+v", de, d)
	}
}

func TestGoatStreamMatchesProcedureOne(t *testing.T) {
	mk := func(ts int64, g trace.GoID, ty trace.Type, peer trace.GoID) trace.Event {
		return trace.Event{Ts: ts, G: g, Type: ty, Peer: peer}
	}
	// main spawns g2 (leaks) and a system goroutine g3 (also unfinished,
	// but invisible to Procedure 1); main ends.
	s := Goat{}.NewStream()
	for _, e := range []trace.Event{
		mk(1, 1, trace.EvGoStart, 0),
		mk(2, 1, trace.EvGoCreate, 2),
		{Ts: 3, G: 1, Type: trace.EvGoCreate, Peer: 3, Aux: 1},
		mk(4, 2, trace.EvGoStart, 0),
		mk(5, 3, trace.EvGoStart, 0),
		mk(6, 2, trace.EvGoBlock, 0),
		mk(7, 1, trace.EvGoEnd, 0),
	} {
		s.Event(e)
	}
	d := s.Finish(&sim.Result{Outcome: sim.OutcomeLeak})
	if !d.Found || d.Verdict != "PDL-1" {
		t.Fatalf("verdict %+v, want PDL-1 (system goroutine must not count)", d)
	}
}

func TestGoatStreamUnknownGoroutineLatchesError(t *testing.T) {
	s := Goat{}.NewStream()
	s.Event(trace.Event{Ts: 1, G: 1, Type: trace.EvGoStart})
	s.Event(trace.Event{Ts: 2, G: 9, Type: trace.EvGoStart}) // never created
	s.Event(trace.Event{Ts: 3, G: 1, Type: trace.EvGoEnd})
	d := s.Finish(&sim.Result{Outcome: sim.OutcomeOK})
	if !d.Found || d.Verdict != "ERROR" {
		t.Fatalf("verdict %+v, want ERROR", d)
	}
	if want := "gtree: event by unknown goroutine g9 at ts 2"; d.Detail != want {
		t.Fatalf("detail %q, want %q", d.Detail, want)
	}
}
