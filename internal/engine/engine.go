// Package engine is the unified campaign pipeline: one run-until-decided
// loop shared by the evaluation harness (Table IV cells), the guided
// explorer, the differential kernel fuzzer, and the goat CLI, which all
// previously carried their own copies of it.
//
// A campaign executes a program repeatedly under planned scheduling
// options, classifies every run with a detector, optionally folds each
// run into a coverage model, and stops on the first detection, a caller
// decision, or the budget. The engine owns the streaming wiring: when the
// detector and the coverage model have online forms, runs execute
// trace-free with the analyses attached as event sinks; the buffered mode
// (Config.Buffered) keeps the classic ECT-then-post-hoc pipeline for
// callers that need the full trace per run.
package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/gtree"
	"goat/internal/sim"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// Feedback is the complete record of one campaign run, handed to OnRun
// and to Plan (as the previous run's outcome).
type Feedback struct {
	// Index is the 0-based run index.
	Index int
	// Options are the scheduling options the run executed under. The
	// engine's internal wiring (ECT buffer, sink chain) is scrubbed from
	// the copy: those fields alias per-run machinery that is recycled.
	Options sim.Options
	// Result is the run's classified execution result. When a trace Pool
	// is configured, Result.Trace is only valid until OnRun returns — the
	// buffer is recycled afterwards (except for the detecting run's).
	Result *sim.Result
	// Detection is the detector's verdict (nil without a Detector).
	Detection *detect.Detection
	// Stats is the post-run coverage statistics (nil without a Coverage
	// model).
	Stats *cover.RunStats
}

// Config describes one campaign.
type Config struct {
	// Prog is the program under test (required).
	Prog func(*sim.G)
	// Plan returns the scheduling options of run i; prev is the previous
	// run's feedback (nil for run 0, and always nil in parallel mode —
	// parallel plans must depend on the index only). The engine overrides
	// the trace and sink fields. Required.
	Plan func(i int, prev *Feedback) sim.Options
	// Runs is the execution budget (required, > 0).
	Runs int

	// Detector classifies each run (optional). In streaming mode a
	// detector implementing detect.Streaming observes the run live; other
	// detectors are invoked post-hoc.
	Detector detect.Detector
	// DetectorNeedsTrace marks post-hoc detectors that consume Result.Trace,
	// so buffering is kept when the detector has no streaming form.
	DetectorNeedsTrace bool
	// Coverage, when set, accumulates every run into the model (streamed
	// in streaming mode, via gtree.Build + AddRun in buffered mode — a
	// build failure aborts the campaign with its error).
	Coverage *cover.Model

	// NeedTrace forces each run to buffer its ECT regardless of the
	// analyses' needs (for reports and trace artifacts).
	NeedTrace bool
	// Buffered opts out of streaming: runs buffer their ECT as needed and
	// every analysis happens post-hoc on it.
	Buffered bool
	// EarlyStop lets streaming detectors halt a run the moment their
	// verdict is decided (sim.OutcomeStopped). Off, every run is observed
	// to its natural end, keeping verdicts byte-identical to the post-hoc
	// pipeline; on, a run that would have ended in a crash or timeout
	// after the verdict was already decided is classified by the verdict
	// instead.
	EarlyStop bool
	// Pool recycles ECT buffers across the campaign's runs (only used
	// when runs buffer a trace).
	Pool *trace.Pool
	// Sinks are extra event sinks attached to every run.
	Sinks []trace.Sink

	// StopOnFound ends the campaign at the first detection.
	StopOnFound bool
	// Parallel runs up to this many executions concurrently (0/1 =
	// sequential). Only campaigns without OnRun and Coverage parallelize —
	// otherwise the engine silently runs sequentially. The first detection
	// is by minimal run index, so the reported cell is identical to the
	// sequential campaign's.
	Parallel int
	// OnRun observes every completed run in order. Returning stop ends
	// the campaign successfully; returning an error aborts it.
	OnRun func(fb *Feedback) (stop bool, err error)
}

// Report is the campaign summary.
type Report struct {
	// Runs is how many executions were performed. In parallel mode this
	// can exceed Found.Index+1: runs past the detection that were already
	// in flight still count.
	Runs int
	// Found is the first (minimal-index) detecting run, nil if none.
	Found *Feedback
}

// Run executes the campaign. The context cancels it between executions:
// a single sim run is uninterruptible (it is bounded by MaxSteps, not by
// wall clock), so cancellation takes effect at the next run boundary and
// Run returns the partial Report alongside ctx.Err(). A nil ctx behaves
// like context.Background().
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Prog == nil || cfg.Plan == nil {
		return nil, fmt.Errorf("engine: Prog and Plan are required")
	}
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("engine: Runs must be positive, got %d", cfg.Runs)
	}
	defer trackPoolStats(cfg.Pool)()
	if cfg.Parallel > 1 && cfg.OnRun == nil && cfg.Coverage == nil {
		return runParallel(ctx, &cfg)
	}
	rep := &Report{}
	var prev *Feedback
	var sc scratch
	for i := 0; i < cfg.Runs; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		fb, err := runOne(&cfg, i, prev, &sc)
		rep.Runs = i + 1
		if err != nil {
			return rep, err
		}
		found := fb.Detection != nil && fb.Detection.Found
		if found && rep.Found == nil {
			rep.Found = fb
		}
		var stop bool
		if cfg.OnRun != nil {
			if stop, err = cfg.OnRun(fb); err != nil {
				return rep, err
			}
		}
		recycle(&cfg, fb, fb == rep.Found)
		if stop || (cfg.StopOnFound && found) {
			return rep, nil
		}
		prev = fb
	}
	return rep, nil
}

// trackPoolStats snapshots a pool's counters and returns a closure that
// flushes the campaign's delta into the telemetry registry (pools are
// shared across campaigns, so lifetime totals would double-count).
func trackPoolStats(p *trace.Pool) func() {
	if p == nil || !telemetry.Enabled() {
		return func() {}
	}
	g0, h0 := p.Stats()
	return func() {
		g, h := p.Stats()
		telemetry.EnginePoolGets.Add(g - g0)
		telemetry.EnginePoolHits.Add(h - h0)
	}
}

// scratch is the per-run machinery one sequential loop or one parallel
// worker reuses across its runs: the sink-chain backing slice and, when
// the detector's stream is detect.Resettable, the stream itself. Nothing
// in it escapes a run — the Feedback keeps a scrubbed Options copy.
type scratch struct {
	sinks  []trace.Sink
	stream detect.Resettable
	tsink  *telemetry.Sink // per-worker event-category tally (nil when telemetry is off)
}

// runOne executes one campaign run: wire the analyses (streamed or
// buffered), run the program, finish the analyses.
func runOne(cfg *Config, i int, prev *Feedback, sc *scratch) (*Feedback, error) {
	opts := cfg.Plan(i, prev)

	streaming := !cfg.Buffered
	var stream detect.Stream
	if streaming && cfg.Detector != nil {
		if sc.stream != nil {
			sc.stream.Reset() // early-stop configuration survives Reset
			stream = sc.stream
		} else if s, ok := cfg.Detector.(detect.Streaming); ok {
			stream = s.NewStream()
			if cfg.EarlyStop {
				if es, ok := stream.(detect.EarlyStopper); ok {
					es.EnableEarlyStop()
				}
			}
			if r, ok := stream.(detect.Resettable); ok {
				sc.stream = r
			}
		}
	}
	var covSink *cover.RunSink
	if streaming && cfg.Coverage != nil {
		covSink = cfg.Coverage.StreamRun()
	}

	// Buffer the ECT only when something still consumes it post-hoc.
	wantTrace := cfg.NeedTrace ||
		(cfg.Detector != nil && cfg.DetectorNeedsTrace && stream == nil) ||
		(cfg.Coverage != nil && covSink == nil)
	opts.NoTrace = !wantTrace
	if wantTrace && cfg.Pool != nil && opts.ECT == nil {
		opts.ECT = cfg.Pool.Get()
	}
	if sc.tsink == nil && telemetry.Enabled() {
		sc.tsink = telemetry.NewSink()
	}
	if stream != nil || covSink != nil || len(cfg.Sinks) > 0 || sc.tsink != nil {
		sinks := append(sc.sinks[:0], cfg.Sinks...)
		if stream != nil {
			sinks = append(sinks, stream)
		}
		if covSink != nil {
			sinks = append(sinks, covSink)
		}
		if sc.tsink != nil {
			sinks = append(sinks, sc.tsink)
		}
		sc.sinks = sinks
		opts.Sinks = sinks
	}

	var t0 time.Time
	if telemetry.Enabled() {
		t0 = time.Now()
	}
	r := sim.Run(opts, cfg.Prog)
	if !t0.IsZero() {
		telemetry.EngineRuns.Inc()
		telemetry.EngineRunWall.Observe(time.Since(t0).Nanoseconds())
		if r.Outcome == sim.OutcomeStopped {
			telemetry.EngineEarlyStops.Inc()
		}
	}
	fb := &Feedback{Index: i, Options: opts, Result: r}
	fb.Options.Sinks = nil // engine wiring: the scratch is reused next run
	fb.Options.ECT = nil   // engine wiring: the pool may recycle the buffer

	if covSink != nil {
		st := covSink.Finish()
		fb.Stats = &st
	} else if cfg.Coverage != nil {
		tree, err := gtree.Build(r.Trace)
		if err != nil {
			return fb, err
		}
		st := cfg.Coverage.AddRun(tree)
		fb.Stats = &st
	}

	if stream != nil {
		d := stream.Finish(r)
		fb.Detection = &d
	} else if cfg.Detector != nil {
		d := cfg.Detector.Detect(r)
		fb.Detection = &d
	}
	return fb, nil
}

// recycle returns a run's trace buffer to the pool unless the run is
// kept (the campaign's detecting run, whose trace the caller may still
// read). The recycled Result's Trace is nilled so no alias survives.
func recycle(cfg *Config, fb *Feedback, keep bool) {
	if cfg.Pool == nil || keep || fb == nil || fb.Result == nil || fb.Result.Trace == nil {
		return
	}
	cfg.Pool.Put(fb.Result.Trace)
	fb.Result.Trace = nil
}

// runParallel is the concurrent campaign: workers claim run indices in
// order, and the first detection by minimal index wins, so the reported
// cell matches the sequential campaign's. With StopOnFound, workers stop
// claiming indices past the best detection but runs already in flight
// complete (one of them may detect at a lower index).
func runParallel(ctx context.Context, cfg *Config) (*Report, error) {
	workers := cfg.Parallel
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	var (
		mu       sync.Mutex
		next     int
		ran      int
		found    *Feedback
		firstErr error
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= cfg.Runs {
			return -1
		}
		if err := ctx.Err(); err != nil {
			firstErr = err
			return -1
		}
		if cfg.StopOnFound && found != nil && next > found.Index {
			return -1
		}
		i := next
		next++
		ran++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				// A panicking kernel must not take down the whole
				// campaign's process; sequential callers that want the
				// panic re-raised run with Parallel <= 1.
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("engine: parallel run panicked: %v", r)
					}
					mu.Unlock()
				}
			}()
			var sc scratch
			for {
				i := claim()
				if i < 0 {
					return
				}
				fb, err := runOne(cfg, i, nil, &sc)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if fb.Detection != nil && fb.Detection.Found &&
					(found == nil || fb.Index < found.Index) {
					recycle(cfg, found, false) // dethroned detection
					found = fb
				} else {
					recycle(cfg, fb, false)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep := &Report{Runs: ran, Found: found}
	if firstErr != nil {
		return rep, firstErr
	}
	return rep, nil
}
