package engine_test

import (
	"context"
	"testing"

	"goat/internal/conc"
	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/engine"
	"goat/internal/goker"
	"goat/internal/sim"
	"goat/internal/trace"
)

// cellConfig is a Table IV-style campaign cell: one rare kernel under the
// GoAT detector with a delay bound, stopping at first detection.
func cellConfig(t *testing.T, buffered bool) engine.Config {
	t.Helper()
	k, ok := goker.ByID("kubernetes_6632")
	if !ok {
		t.Fatal("kernel kubernetes_6632 not registered")
	}
	return engine.Config{
		Prog: k.Main,
		Plan: func(i int, _ *engine.Feedback) sim.Options {
			return sim.Options{Seed: 1 + int64(i), Delays: 2}
		},
		Runs:               200,
		Detector:           detect.Goat{},
		DetectorNeedsTrace: true,
		Buffered:           buffered,
		Pool:               trace.NewPool(),
		StopOnFound:        true,
	}
}

func TestStreamingCellMatchesBuffered(t *testing.T) {
	buf, err := engine.Run(context.Background(), cellConfig(t, true))
	if err != nil {
		t.Fatalf("buffered: %v", err)
	}
	str, err := engine.Run(context.Background(), cellConfig(t, false))
	if err != nil {
		t.Fatalf("streaming: %v", err)
	}
	if buf.Found == nil || str.Found == nil {
		t.Fatalf("found: buffered %v, streaming %v", buf.Found, str.Found)
	}
	if buf.Found.Index != str.Found.Index {
		t.Errorf("detection index: buffered %d, streaming %d", buf.Found.Index, str.Found.Index)
	}
	if *buf.Found.Detection != *str.Found.Detection {
		t.Errorf("detection: buffered %+v, streaming %+v", *buf.Found.Detection, *str.Found.Detection)
	}
	if str.Found.Result.Trace != nil {
		t.Error("streaming cell buffered a trace")
	}
	if buf.Found.Result.Trace == nil {
		t.Error("buffered cell's detecting run lost its trace to the pool")
	}
}

func TestParallelCellMatchesSequential(t *testing.T) {
	seq, err := engine.Run(context.Background(), cellConfig(t, false))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	cfg := cellConfig(t, false)
	cfg.Parallel = 8
	par, err := engine.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Found == nil || par.Found == nil {
		t.Fatalf("found: sequential %v, parallel %v", seq.Found, par.Found)
	}
	if seq.Found.Index != par.Found.Index || *seq.Found.Detection != *par.Found.Detection {
		t.Fatalf("parallel cell diverged: seq (%d, %+v) vs par (%d, %+v)",
			seq.Found.Index, *seq.Found.Detection, par.Found.Index, *par.Found.Detection)
	}
	if par.Runs < seq.Runs {
		t.Errorf("parallel ran %d < sequential's %d executions", par.Runs, seq.Runs)
	}
}

// abbaProg takes two locks in both orders (planting a lock-order cycle
// early) and then spins, so a full observation is much longer than an
// early-stopped one.
func abbaProg(spin int) func(*sim.G) {
	return func(g *sim.G) {
		a := conc.NewMutex(g)
		b := conc.NewMutex(g)
		a.Lock(g)
		b.Lock(g)
		b.Unlock(g)
		a.Unlock(g)
		b.Lock(g)
		a.Lock(g)
		a.Unlock(g)
		b.Unlock(g)
		for i := 0; i < spin; i++ {
			g.Yield()
		}
	}
}

func TestEarlyStopShortensDecidedRun(t *testing.T) {
	run := func(early bool) *engine.Report {
		rep, err := engine.Run(context.Background(), engine.Config{
			Prog: abbaProg(500),
			Plan: func(i int, _ *engine.Feedback) sim.Options {
				return sim.Options{Seed: 1}
			},
			Runs:               1,
			Detector:           detect.LockDL{},
			DetectorNeedsTrace: true,
			EarlyStop:          early,
			StopOnFound:        true,
		})
		if err != nil {
			t.Fatalf("early=%v: %v", early, err)
		}
		if rep.Found == nil {
			t.Fatalf("early=%v: cycle not detected", early)
		}
		return rep
	}
	full := run(false)
	fast := run(true)
	for _, rep := range []*engine.Report{full, fast} {
		if rep.Found.Detection.Verdict != "DL" {
			t.Fatalf("verdict %+v, want DL", rep.Found.Detection)
		}
	}
	if fast.Found.Detection.Detail != full.Found.Detection.Detail {
		t.Errorf("early-stop changed the warning: %q vs %q",
			fast.Found.Detection.Detail, full.Found.Detection.Detail)
	}
	r := fast.Found.Result
	if r.Outcome != sim.OutcomeStopped || !r.EarlyStopped {
		t.Errorf("early-stopped run classified %v (EarlyStopped=%v), want STOP", r.Outcome, r.EarlyStopped)
	}
	if r.Steps >= full.Found.Result.Steps {
		t.Errorf("early stop did not shorten the run: %d vs %d steps", r.Steps, full.Found.Result.Steps)
	}
}

func TestOnRunObservesRunsInOrderWithCoverage(t *testing.T) {
	model := cover.NewModel(nil)
	var seen []int
	rep, err := engine.Run(context.Background(), engine.Config{
		Prog: abbaProg(0),
		Plan: func(i int, _ *engine.Feedback) sim.Options {
			return sim.Options{Seed: int64(i)}
		},
		Runs:     5,
		Coverage: model,
		OnRun: func(fb *engine.Feedback) (bool, error) {
			seen = append(seen, fb.Index)
			if fb.Stats == nil {
				t.Fatal("coverage stats missing")
			}
			if fb.Stats.Covered == 0 {
				t.Fatal("run covered nothing")
			}
			return fb.Index == 2, nil // caller-decided stop
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 3 {
		t.Fatalf("rep.Runs = %d, want 3", rep.Runs)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("observed indices %v", seen)
	}
	if model.Runs() != 3 {
		t.Fatalf("model accumulated %d runs, want 3", model.Runs())
	}
}

// livelockProg never settles: two goroutines trade the scheduler forever,
// so every run exhausts MaxSteps and is classified OutcomeTimeout.
func livelockProg(g *sim.G) {
	g.Go("ping", func(p *sim.G) {
		for {
			p.HandlerHere()
		}
	})
	for {
		g.HandlerHere()
	}
}

// timeoutConfig is a campaign over a livelocked kernel with a tight step
// budget: every execution times out and the detector must classify the
// hang, in sequential and parallel mode alike.
func timeoutConfig(d detect.Detector, needTrace bool) engine.Config {
	return engine.Config{
		Prog: livelockProg,
		Plan: func(i int, _ *engine.Feedback) sim.Options {
			return sim.Options{Seed: 1 + int64(i), MaxSteps: 300}
		},
		Runs:               16,
		Detector:           d,
		DetectorNeedsTrace: needTrace,
		Pool:               trace.NewPool(),
		StopOnFound:        true,
	}
}

// TestTimeoutClassificationUnderParallel pins OutcomeTimeout handling in
// parallel mode: a campaign whose every run times out must report the
// same detection at the same index as the sequential campaign, and the
// detecting run must carry the TO outcome.
func TestTimeoutClassificationUnderParallel(t *testing.T) {
	seq, err := engine.Run(context.Background(), timeoutConfig(detect.Goat{}, true))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	cfg := timeoutConfig(detect.Goat{}, true)
	cfg.Parallel = 8
	par, err := engine.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Found == nil || par.Found == nil {
		t.Fatalf("timeout not detected: sequential %v, parallel %v", seq.Found, par.Found)
	}
	if seq.Found.Result.Outcome != sim.OutcomeTimeout {
		t.Fatalf("sequential detecting run outcome = %v, want TO", seq.Found.Result.Outcome)
	}
	if par.Found.Result.Outcome != sim.OutcomeTimeout {
		t.Fatalf("parallel detecting run outcome = %v, want TO", par.Found.Result.Outcome)
	}
	if seq.Found.Index != par.Found.Index || *seq.Found.Detection != *par.Found.Detection {
		t.Fatalf("parallel timeout classification diverged: seq (%d, %+v) vs par (%d, %+v)",
			seq.Found.Index, *seq.Found.Detection, par.Found.Index, *par.Found.Detection)
	}
}

// TestTimeoutInvisibleToBuiltinUnderParallel: the builtin detector calls a
// livelock HANG but does not count it as a detection, so the campaign
// exhausts its budget — in parallel mode too.
func TestTimeoutInvisibleToBuiltinUnderParallel(t *testing.T) {
	cfg := timeoutConfig(detect.Builtin{}, false)
	cfg.Parallel = 4
	rep, err := engine.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Found != nil {
		t.Fatalf("builtin counted a livelock as a detection: %+v", rep.Found.Detection)
	}
	if rep.Runs != cfg.Runs {
		t.Fatalf("campaign stopped after %d/%d runs without a detection", rep.Runs, cfg.Runs)
	}
}

// TestCancellationStopsSequentialCampaign: canceling the context mid-
// campaign returns the partial report and ctx.Err() at the next run
// boundary.
func TestCancellationStopsSequentialCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := cellConfig(t, false)
	cfg.StopOnFound = false
	cfg.Runs = 50
	plan := cfg.Plan
	cfg.Plan = func(i int, prev *engine.Feedback) sim.Options {
		if i == 3 {
			cancel()
		}
		return plan(i, prev)
	}
	rep, err := engine.Run(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Runs == 0 || rep.Runs >= 50 {
		t.Fatalf("partial report runs = %+v, want a strict prefix of the campaign", rep)
	}
}

// TestCancellationStopsParallelCampaign: same contract under Parallel.
func TestCancellationStopsParallelCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := cellConfig(t, false)
	cfg.Parallel = 4
	rep, err := engine.Run(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("canceled parallel campaign returned no report")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := engine.Run(context.Background(), engine.Config{}); err == nil {
		t.Fatal("empty config must error")
	}
	if _, err := engine.Run(context.Background(), engine.Config{
		Prog: func(*sim.G) {},
		Plan: func(int, *engine.Feedback) sim.Options { return sim.Options{} },
	}); err == nil {
		t.Fatal("zero Runs must error")
	}
}
