package engine_test

import (
	"testing"

	"goat/internal/conc"
	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/engine"
	"goat/internal/goker"
	"goat/internal/sim"
	"goat/internal/trace"
)

// cellConfig is a Table IV-style campaign cell: one rare kernel under the
// GoAT detector with a delay bound, stopping at first detection.
func cellConfig(t *testing.T, buffered bool) engine.Config {
	t.Helper()
	k, ok := goker.ByID("kubernetes_6632")
	if !ok {
		t.Fatal("kernel kubernetes_6632 not registered")
	}
	return engine.Config{
		Prog: k.Main,
		Plan: func(i int, _ *engine.Feedback) sim.Options {
			return sim.Options{Seed: 1 + int64(i), Delays: 2}
		},
		Runs:               200,
		Detector:           detect.Goat{},
		DetectorNeedsTrace: true,
		Buffered:           buffered,
		Pool:               trace.NewPool(),
		StopOnFound:        true,
	}
}

func TestStreamingCellMatchesBuffered(t *testing.T) {
	buf, err := engine.Run(cellConfig(t, true))
	if err != nil {
		t.Fatalf("buffered: %v", err)
	}
	str, err := engine.Run(cellConfig(t, false))
	if err != nil {
		t.Fatalf("streaming: %v", err)
	}
	if buf.Found == nil || str.Found == nil {
		t.Fatalf("found: buffered %v, streaming %v", buf.Found, str.Found)
	}
	if buf.Found.Index != str.Found.Index {
		t.Errorf("detection index: buffered %d, streaming %d", buf.Found.Index, str.Found.Index)
	}
	if *buf.Found.Detection != *str.Found.Detection {
		t.Errorf("detection: buffered %+v, streaming %+v", *buf.Found.Detection, *str.Found.Detection)
	}
	if str.Found.Result.Trace != nil {
		t.Error("streaming cell buffered a trace")
	}
	if buf.Found.Result.Trace == nil {
		t.Error("buffered cell's detecting run lost its trace to the pool")
	}
}

func TestParallelCellMatchesSequential(t *testing.T) {
	seq, err := engine.Run(cellConfig(t, false))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	cfg := cellConfig(t, false)
	cfg.Parallel = 8
	par, err := engine.Run(cfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Found == nil || par.Found == nil {
		t.Fatalf("found: sequential %v, parallel %v", seq.Found, par.Found)
	}
	if seq.Found.Index != par.Found.Index || *seq.Found.Detection != *par.Found.Detection {
		t.Fatalf("parallel cell diverged: seq (%d, %+v) vs par (%d, %+v)",
			seq.Found.Index, *seq.Found.Detection, par.Found.Index, *par.Found.Detection)
	}
	if par.Runs < seq.Runs {
		t.Errorf("parallel ran %d < sequential's %d executions", par.Runs, seq.Runs)
	}
}

// abbaProg takes two locks in both orders (planting a lock-order cycle
// early) and then spins, so a full observation is much longer than an
// early-stopped one.
func abbaProg(spin int) func(*sim.G) {
	return func(g *sim.G) {
		a := conc.NewMutex(g)
		b := conc.NewMutex(g)
		a.Lock(g)
		b.Lock(g)
		b.Unlock(g)
		a.Unlock(g)
		b.Lock(g)
		a.Lock(g)
		a.Unlock(g)
		b.Unlock(g)
		for i := 0; i < spin; i++ {
			g.Yield()
		}
	}
}

func TestEarlyStopShortensDecidedRun(t *testing.T) {
	run := func(early bool) *engine.Report {
		rep, err := engine.Run(engine.Config{
			Prog: abbaProg(500),
			Plan: func(i int, _ *engine.Feedback) sim.Options {
				return sim.Options{Seed: 1}
			},
			Runs:               1,
			Detector:           detect.LockDL{},
			DetectorNeedsTrace: true,
			EarlyStop:          early,
			StopOnFound:        true,
		})
		if err != nil {
			t.Fatalf("early=%v: %v", early, err)
		}
		if rep.Found == nil {
			t.Fatalf("early=%v: cycle not detected", early)
		}
		return rep
	}
	full := run(false)
	fast := run(true)
	for _, rep := range []*engine.Report{full, fast} {
		if rep.Found.Detection.Verdict != "DL" {
			t.Fatalf("verdict %+v, want DL", rep.Found.Detection)
		}
	}
	if fast.Found.Detection.Detail != full.Found.Detection.Detail {
		t.Errorf("early-stop changed the warning: %q vs %q",
			fast.Found.Detection.Detail, full.Found.Detection.Detail)
	}
	r := fast.Found.Result
	if r.Outcome != sim.OutcomeStopped || !r.EarlyStopped {
		t.Errorf("early-stopped run classified %v (EarlyStopped=%v), want STOP", r.Outcome, r.EarlyStopped)
	}
	if r.Steps >= full.Found.Result.Steps {
		t.Errorf("early stop did not shorten the run: %d vs %d steps", r.Steps, full.Found.Result.Steps)
	}
}

func TestOnRunObservesRunsInOrderWithCoverage(t *testing.T) {
	model := cover.NewModel(nil)
	var seen []int
	rep, err := engine.Run(engine.Config{
		Prog: abbaProg(0),
		Plan: func(i int, _ *engine.Feedback) sim.Options {
			return sim.Options{Seed: int64(i)}
		},
		Runs:     5,
		Coverage: model,
		OnRun: func(fb *engine.Feedback) (bool, error) {
			seen = append(seen, fb.Index)
			if fb.Stats == nil {
				t.Fatal("coverage stats missing")
			}
			if fb.Stats.Covered == 0 {
				t.Fatal("run covered nothing")
			}
			return fb.Index == 2, nil // caller-decided stop
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 3 {
		t.Fatalf("rep.Runs = %d, want 3", rep.Runs)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("observed indices %v", seen)
	}
	if model.Runs() != 3 {
		t.Fatalf("model accumulated %d runs, want 3", model.Runs())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := engine.Run(engine.Config{}); err == nil {
		t.Fatal("empty config must error")
	}
	if _, err := engine.Run(engine.Config{
		Prog: func(*sim.G) {},
		Plan: func(int, *engine.Feedback) sim.Options { return sim.Options{} },
	}); err == nil {
		t.Fatal("zero Runs must error")
	}
}
