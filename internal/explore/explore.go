// Package explore implements guided schedule-space exploration — the
// extension the paper names as future work ("take full control over the
// Go scheduler and guide testing towards untested interleavings").
//
// A Campaign repeatedly executes a program, feeding each run's coverage
// measurement back into a Strategy that chooses the next run's scheduling
// options (seed and delay bound). The shipped strategies range from the
// paper's static configurations (Native, DelayBound) to feedback-driven
// ones (Escalate, Bandit) that spend perturbation budget only when
// coverage stalls.
package explore

import (
	"context"
	"errors"
	"fmt"

	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/engine"
	"goat/internal/sim"
	"goat/internal/trace"
)

// Strategy chooses the options of the next iteration.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Next returns the options for iteration i (0-based), given the
	// feedback from the previous iteration (nil for i == 0).
	Next(i int, prev *Feedback) sim.Options
}

// Feedback is what a strategy learns from one iteration.
type Feedback struct {
	Options    sim.Options
	Outcome    sim.Outcome
	NewCovered int     // requirements newly covered by the run
	Percent    float64 // coverage percentage after the run
}

// Native replays the unperturbed program under fresh seeds (D = 0).
type Native struct {
	// BaseSeed offsets the per-iteration seeds.
	BaseSeed int64
}

// Name implements Strategy.
func (Native) Name() string { return "native" }

// Next implements Strategy.
func (s Native) Next(i int, _ *Feedback) sim.Options {
	return sim.Options{Seed: s.BaseSeed + int64(i)}
}

// DelayBound is the paper's configuration: a fixed yield budget D.
type DelayBound struct {
	D        int
	BaseSeed int64
}

// Name implements Strategy.
func (s DelayBound) Name() string { return fmt.Sprintf("delay-D%d", s.D) }

// Next implements Strategy.
func (s DelayBound) Next(i int, _ *Feedback) sim.Options {
	return sim.Options{Seed: s.BaseSeed + int64(i), Delays: s.D}
}

// Escalate starts native and raises the delay bound by one every time
// coverage stalls for Patience consecutive iterations, up to MaxD. It
// spends perturbation only when the unperturbed schedule space looks
// exhausted.
type Escalate struct {
	MaxD     int // maximum delay bound (default 4)
	Patience int // stagnant iterations before escalating (default 5)
	BaseSeed int64

	d       int
	stalled int
}

// Name implements Strategy.
func (s *Escalate) Name() string { return "escalate" }

// Next implements Strategy.
func (s *Escalate) Next(i int, prev *Feedback) sim.Options {
	maxD := s.MaxD
	if maxD <= 0 {
		maxD = 4
	}
	patience := s.Patience
	if patience <= 0 {
		patience = 5
	}
	if prev != nil {
		if prev.NewCovered == 0 {
			s.stalled++
			if s.stalled >= patience && s.d < maxD {
				s.d++
				s.stalled = 0
			}
		} else {
			s.stalled = 0
		}
	}
	return sim.Options{Seed: s.BaseSeed + int64(i), Delays: s.d}
}

// Bandit is an epsilon-greedy multi-armed bandit over delay bounds
// 0..MaxD: each arm's reward is the coverage gained by runs at that
// bound; ties and exploration use a deterministic rotation so campaigns
// stay reproducible.
type Bandit struct {
	MaxD     int // highest arm (default 4)
	Epsilon  int // explore every Epsilon-th iteration (default 4)
	BaseSeed int64

	gains  []int
	pulls  []int
	lastD  int
	inited bool
}

// Name implements Strategy.
func (s *Bandit) Name() string { return "bandit" }

// Next implements Strategy.
func (s *Bandit) Next(i int, prev *Feedback) sim.Options {
	maxD := s.MaxD
	if maxD <= 0 {
		maxD = 4
	}
	eps := s.Epsilon
	if eps <= 0 {
		eps = 4
	}
	if !s.inited {
		s.gains = make([]int, maxD+1)
		s.pulls = make([]int, maxD+1)
		s.inited = true
	}
	if prev != nil {
		s.gains[s.lastD] += prev.NewCovered
		s.pulls[s.lastD]++
	}
	d := 0
	if i%eps == eps-1 {
		d = i % (maxD + 1) // deterministic exploration sweep
	} else {
		best := -1.0
		for arm := 0; arm <= maxD; arm++ {
			if s.pulls[arm] == 0 {
				d = arm // try every arm once
				best = -1
				break
			}
			avg := float64(s.gains[arm]) / float64(s.pulls[arm])
			if avg > best {
				best = avg
				d = arm
			}
		}
	}
	s.lastD = d
	return sim.Options{Seed: s.BaseSeed + int64(i), Delays: d}
}

// Config bounds a campaign.
type Config struct {
	// MaxIters caps the number of executions (default 100).
	MaxIters int
	// StopOnBug ends the campaign at the first detection (default true
	// when TargetPercent is zero).
	StopOnBug bool
	// TargetPercent ends the campaign once coverage reaches it (0 = off).
	TargetPercent float64
}

func (c Config) maxIters() int {
	if c.MaxIters <= 0 {
		return 100
	}
	return c.MaxIters
}

// Iteration summarizes one executed iteration.
type Iteration struct {
	Index   int
	Delays  int
	Seed    int64
	Outcome sim.Outcome
	Percent float64
}

// Outcome is the result of a campaign.
type Outcome struct {
	Strategy   string
	Iterations []Iteration
	BugAt      int // 1-based iteration of first detection; 0 = none
	Detection  detect.Detection
	Model      *cover.Model // the accumulated coverage model
}

// FinalPercent returns the campaign's final coverage percentage.
func (o *Outcome) FinalPercent() float64 {
	if len(o.Iterations) == 0 {
		return 0
	}
	return o.Iterations[len(o.Iterations)-1].Percent
}

// Run drives prog under the strategy until a bug, the coverage target, or
// the iteration budget. The paper's termination rule: "iterations
// terminate either by detecting a bug or reaching a percentage
// threshold".
//
// The campaign runs on the streaming engine: each iteration executes
// trace-free with the GoAT detector and the coverage model attached as
// event sinks, so no ECT is ever buffered.
func Run(prog func(*sim.G), strat Strategy, cfg Config) (*Outcome, error) {
	model := cover.NewModel(nil)
	out := &Outcome{Strategy: strat.Name(), Model: model}
	stopOnBug := cfg.StopOnBug || cfg.TargetPercent == 0

	_, err := engine.Run(context.Background(), engine.Config{
		Prog: prog,
		Plan: func(i int, prev *engine.Feedback) sim.Options {
			return strat.Next(i, stratFeedback(prev))
		},
		Runs:     cfg.maxIters(),
		Detector: detect.Goat{},
		Coverage: model,
		OnRun: func(fb *engine.Feedback) (bool, error) {
			d := *fb.Detection
			if d.Verdict == "ERROR" {
				// A malformed or empty event stream is a campaign error,
				// not a bug (it used to surface as a gtree.Build failure).
				return false, fmt.Errorf("explore: iteration %d: %w", fb.Index, streamErr(d.Detail))
			}
			st := fb.Stats
			out.Iterations = append(out.Iterations, Iteration{
				Index:   fb.Index + 1,
				Delays:  fb.Options.Delays,
				Seed:    fb.Options.Seed,
				Outcome: fb.Result.Outcome,
				Percent: st.Percent,
			})
			if d.Found && out.BugAt == 0 {
				out.BugAt = fb.Index + 1
				out.Detection = d
				if stopOnBug {
					return true, nil
				}
			}
			if cfg.TargetPercent > 0 && st.Percent >= cfg.TargetPercent {
				return true, nil
			}
			return false, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// stratFeedback converts the engine's run record into the strategy-facing
// feedback (nil-safe for the first iteration).
func stratFeedback(fb *engine.Feedback) *Feedback {
	if fb == nil {
		return nil
	}
	f := &Feedback{Options: fb.Options, Outcome: fb.Result.Outcome}
	if fb.Stats != nil {
		f.NewCovered = fb.Stats.NewCovered
		f.Percent = fb.Stats.Percent
	}
	return f
}

// streamErr reconstructs the sentinel error from a streamed ERROR verdict
// so callers can still match it with errors.Is.
func streamErr(detail string) error {
	if detail == trace.ErrEmpty.Error() {
		return trace.ErrEmpty
	}
	return errors.New(detail)
}
