package explore

import (
	"strings"
	"testing"

	"goat/internal/goker"
	"goat/internal/sim"
)

func kernel(t *testing.T, id string) func(*sim.G) {
	t.Helper()
	k, ok := goker.ByID(id)
	if !ok {
		t.Fatalf("kernel %s missing", id)
	}
	return k.Main
}

func TestNativeFindsCommonBug(t *testing.T) {
	out, err := Run(kernel(t, "moby_33293"), Native{}, Config{MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.BugAt != 1 {
		t.Fatalf("deterministic leak found at iteration %d, want 1", out.BugAt)
	}
	if !out.Detection.Found || !strings.HasPrefix(out.Detection.Verdict, "PDL") {
		t.Fatalf("detection = %+v", out.Detection)
	}
}

func TestCampaignStopsAtBug(t *testing.T) {
	out, err := Run(kernel(t, "moby_33293"), Native{}, Config{MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Iterations) != out.BugAt {
		t.Fatalf("campaign ran %d iterations past the bug at %d", len(out.Iterations), out.BugAt)
	}
}

func TestCoverageTargetTermination(t *testing.T) {
	out, err := Run(kernel(t, "etcd_7443"), DelayBound{D: 2}, Config{
		MaxIters:      200,
		TargetPercent: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.FinalPercent() < 40 {
		t.Fatalf("campaign ended at %.1f%% without reaching the 40%% target in %d iters",
			out.FinalPercent(), len(out.Iterations))
	}
	if len(out.Iterations) == 200 && out.FinalPercent() < 40 {
		t.Fatal("budget exhausted without the target")
	}
}

// The core claim of guided exploration: kubernetes_6632 is invisible to
// native schedules (0 hits in 10000 at D=0) but the escalating strategy
// finds it because stalled coverage pushes the delay bound up.
func TestEscalateFindsYieldOnlyBug(t *testing.T) {
	native, err := Run(kernel(t, "kubernetes_6632"), Native{}, Config{MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	if native.BugAt != 0 {
		t.Skipf("native unexpectedly found the bug at %d; rarity assumption broken", native.BugAt)
	}
	esc, err := Run(kernel(t, "kubernetes_6632"), &Escalate{MaxD: 4, Patience: 3}, Config{MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	if esc.BugAt == 0 {
		t.Fatal("escalating strategy never exposed the yield-only bug")
	}
	// The bug must have been found at an escalated bound.
	found := esc.Iterations[esc.BugAt-1]
	if found.Delays == 0 {
		t.Fatalf("bug found at D=0?! iteration %+v", found)
	}
}

func TestEscalateRaisesBoundOnStall(t *testing.T) {
	s := &Escalate{MaxD: 3, Patience: 2}
	var ds []int
	var prev *Feedback
	for i := 0; i < 10; i++ {
		opts := s.Next(i, prev)
		ds = append(ds, opts.Delays)
		prev = &Feedback{NewCovered: 0} // permanent stall
	}
	if ds[0] != 0 {
		t.Fatalf("first iteration not native: %v", ds)
	}
	if ds[len(ds)-1] != 3 {
		t.Fatalf("bound never reached MaxD: %v", ds)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i] < ds[i-1] {
			t.Fatalf("bound decreased: %v", ds)
		}
	}
}

func TestEscalateResetsOnProgress(t *testing.T) {
	s := &Escalate{MaxD: 3, Patience: 2}
	prev := &Feedback{NewCovered: 5} // constant progress
	for i := 0; i < 10; i++ {
		opts := s.Next(i, prev)
		if opts.Delays != 0 {
			t.Fatalf("bound escalated despite coverage progress at iter %d", i)
		}
	}
}

func TestBanditTriesEveryArm(t *testing.T) {
	s := &Bandit{MaxD: 3}
	armSeen := map[int]bool{}
	var prev *Feedback
	for i := 0; i < 30; i++ {
		opts := s.Next(i, prev)
		armSeen[opts.Delays] = true
		prev = &Feedback{NewCovered: opts.Delays} // higher D = more gain
	}
	for arm := 0; arm <= 3; arm++ {
		if !armSeen[arm] {
			t.Fatalf("arm %d never pulled: %v", arm, armSeen)
		}
	}
}

func TestBanditExploitsBestArm(t *testing.T) {
	s := &Bandit{MaxD: 2, Epsilon: 100} // effectively no forced exploration
	var prev *Feedback
	counts := map[int]int{}
	for i := 0; i < 40; i++ {
		opts := s.Next(i, prev)
		counts[opts.Delays]++
		gain := 0
		if opts.Delays == 2 {
			gain = 10 // arm 2 is clearly best
		}
		prev = &Feedback{NewCovered: gain}
	}
	if counts[2] < counts[0] || counts[2] < counts[1] {
		t.Fatalf("bandit failed to exploit the best arm: %v", counts)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	run := func() []Iteration {
		out, err := Run(kernel(t, "etcd_7443"), &Escalate{}, Config{MaxIters: 30, TargetPercent: 101})
		if err != nil {
			t.Fatal(err)
		}
		return out.Iterations
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStrategyNames(t *testing.T) {
	if (Native{}).Name() != "native" ||
		(DelayBound{D: 3}).Name() != "delay-D3" ||
		(&Escalate{}).Name() != "escalate" ||
		(&Bandit{}).Name() != "bandit" {
		t.Fatal("strategy names broken")
	}
}
