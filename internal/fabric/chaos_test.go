package fabric

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/harness"
	"goat/internal/report"
)

// suite69 is the paper's 68-kernel GoKer set plus the fuzzer-promoted
// minimal reproducer — the full evaluation suite.
func suite69(t *testing.T) []goker.Kernel {
	t.Helper()
	kernels := goker.GoKer()
	extra, ok := goker.ByID("fuzz_send_no_recv_min")
	if !ok {
		t.Fatal("fuzz_send_no_recv_min missing from the registry")
	}
	kernels = append(kernels, extra)
	if len(kernels) != 69 {
		t.Fatalf("suite holds %d kernels, want 69", len(kernels))
	}
	return kernels
}

// normalize strips the per-run noise (wall clocks, dump paths) that is
// legitimately different between a fabric campaign and a sequential one,
// leaving only verdict-bearing fields.
func normalize(t *harness.TableIV) *harness.TableIV {
	out := &harness.TableIV{Tools: append([]string(nil), t.Tools...)}
	for _, row := range t.Rows {
		r := harness.TableIVRow{Bug: row.Bug}
		for _, c := range row.Cells {
			c.Wall = 0
			c.FlightRec = ""
			r.Cells = append(r.Cells, c)
		}
		out.Rows = append(out.Rows, r)
	}
	return out
}

// TestChaosEquivalence is the fabric's acceptance gate: a 69-kernel
// campaign distributed across workers that randomly crash and hang must
// merge into the bit-identical Table IV — and CampaignHealth cell set —
// the single-process harness produces.
func TestChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos equivalence gate is not a -short test")
	}
	kernels := suite69(t)
	tools := []harness.Spec{
		{Name: "goat-D0", Detector: detect.Goat{}, NeedTrace: true},
		{Name: "goat-D2", Detector: detect.Goat{}, Delays: 2, NeedTrace: true},
	}
	cfg := harness.Config{MaxExecs: 3, BaseSeed: 7, Kernels: kernels, Tools: tools}
	want := harness.RunTableIV(cfg)

	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Job:        job,
		LeaseTTL:   800 * time.Millisecond,
		Backoff:    20 * time.Millisecond,
		MaxAssigns: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Four worker slots. Each worker instance carries its own seeded chaos
	// stream: ~10% of leased units kill the worker outright, ~5% make it
	// overstay its lease and submit stale. Crashed workers are respawned by
	// the slot supervisor, like a process manager would.
	var crashes, hangs, respawns atomic.Int64
	var wg sync.WaitGroup
	for slot := 0; slot < 4; slot++ {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gen := 0; ; gen++ {
				rng := rand.New(rand.NewSource(int64(1000*slot + gen)))
				w := &Worker{
					Coord: srv.URL,
					Name:  fmt.Sprintf("w%d.%d", slot, gen),
					Poll:  10 * time.Millisecond,
					intercept: func(Unit) chaosAction {
						switch p := rng.Float64(); {
						case p < 0.10:
							crashes.Add(1)
							return chaosCrash
						case p < 0.15:
							hangs.Add(1)
							return chaosHang
						}
						return chaosRun
					},
				}
				err := w.Run(ctx)
				if err == nil {
					return
				}
				if err != errCrashed {
					t.Errorf("worker %s died abnormally: %v", w.Name, err)
					return
				}
				respawns.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		t.Fatalf("chaos campaign did not complete: %v", err)
	}
	t.Logf("chaos: %d crashes (%d respawns), %d hangs", crashes.Load(), respawns.Load(), hangs.Load())

	st := coord.Snapshot()
	if st.Done != job.Cells() || st.Poisoned != 0 {
		t.Fatalf("status after chaos = %+v, want %d done, 0 poisoned", st, job.Cells())
	}
	got := coord.Table()
	if got.String() != want.String() {
		t.Fatalf("chaos fabric table differs from sequential:\n--- fabric ---\n%s--- sequential ---\n%s", got, want)
	}
	if gh, wh := report.CampaignHealth(normalize(got)), report.CampaignHealth(normalize(want)); gh != wh {
		t.Fatalf("campaign health differs:\n--- fabric ---\n%s--- sequential ---\n%s", gh, wh)
	}
}

// TestCoordinatorRestartResumes kills a campaign after a handful of cells,
// restarts the coordinator on the same checkpoint journal, and requires
// (a) the journaled cells come back done without re-evaluation and (b) the
// finished table matches the sequential harness.
func TestCoordinatorRestartResumes(t *testing.T) {
	kernels := kernelsByID(t, "moby_28462", "etcd_6873", "grpc_660", "kubernetes_6632", "fuzz_send_no_recv_min")
	tools := []harness.Spec{
		{Name: "goat-D0", Detector: detect.Goat{}, NeedTrace: true},
		{Name: "builtin", Detector: detect.Builtin{}},
	}
	cfg := harness.Config{MaxExecs: 4, BaseSeed: 11, Kernels: kernels, Tools: tools}
	want := harness.RunTableIV(cfg)
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	journal := t.TempDir() + "/campaign.jsonl"

	// Epoch 1: a lone worker completes 4 cells, then the chaos seam kills
	// it mid-campaign and the coordinator goes down with it.
	coord1, err := NewCoordinator(CoordinatorConfig{Job: job, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(coord1.Handler())
	var served atomic.Int64
	w1 := &Worker{
		Coord: srv1.URL, Name: "epoch1",
		intercept: func(Unit) chaosAction {
			if served.Add(1) > 4 {
				return chaosCrash
			}
			return chaosRun
		},
	}
	if err := w1.Run(context.Background()); err != errCrashed {
		t.Fatalf("epoch-1 worker exited %v, want crash", err)
	}
	srv1.Close()
	coord1.Close()

	// Epoch 2: a fresh coordinator on the same journal must readmit the 4
	// checkpointed cells as done...
	coord2, err := NewCoordinator(CoordinatorConfig{Job: job, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if st := coord2.Snapshot(); st.Done != 4 || st.Pending != job.Cells()-4 {
		t.Fatalf("resumed status = %+v, want 4 done / %d pending", st, job.Cells()-4)
	}
	// ...and hand out only the remainder: the epoch-2 worker must evaluate
	// exactly the missing cells, never a journaled one.
	srv2 := httptest.NewServer(coord2.Handler())
	defer srv2.Close()
	evaluated := map[int]bool{}
	w2 := &Worker{
		Coord: srv2.URL, Name: "epoch2",
		OnCell: func(u Unit, _ harness.Cell) { evaluated[u.Seq] = true },
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := w2.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if len(evaluated) != job.Cells()-4 {
		t.Fatalf("epoch-2 worker evaluated %d cells, want exactly %d", len(evaluated), job.Cells()-4)
	}
	for seq := 0; seq < 4; seq++ {
		if evaluated[seq] {
			t.Fatalf("journaled cell %d was re-evaluated after restart", seq)
		}
	}
	select {
	case <-coord2.Done():
	default:
		t.Fatal("campaign not done after epoch 2")
	}
	got := coord2.Table()
	if got.String() != want.String() {
		t.Fatalf("resumed table differs from sequential:\n--- fabric ---\n%s--- sequential ---\n%s", got, want)
	}
}
