package fabric

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"goat/internal/harness"
	"goat/internal/telemetry"
)

// CoordinatorConfig configures one campaign coordinator.
type CoordinatorConfig struct {
	// Job is the campaign to distribute (required, validated).
	Job JobSpec

	// JournalPath, when non-empty, checkpoints every completed cell to
	// this file and resumes from it on restart.
	JournalPath string

	// FlightRecDir, when non-empty, archives flight-recorder dumps
	// collected from workers into this directory; the merged cell's
	// FlightRec is rewritten to the coordinator-local path.
	FlightRecDir string

	// LeaseTTL bounds how long a worker may hold a unit before the
	// coordinator assumes it crashed or hung and reassigns the unit. Zero
	// derives a default from the job's cell watchdog: every attempt the
	// worker-side harness may spend (budget × (retries+1)) plus slack.
	LeaseTTL time.Duration

	// MaxAssigns is how many leases a unit may burn before it is
	// quarantined as a poison cell (default 3).
	MaxAssigns int

	// Backoff is the base reassignment delay after a lease expiry,
	// doubling per expiry (default 250ms, capped at 8× base).
	Backoff time.Duration

	// OnCell observes every newly merged cell with the worker that
	// evaluated it ("" for journal-replayed cells). Called outside the
	// coordinator lock.
	OnCell func(worker string, c harness.Cell)

	// now is the test clock seam (nil = time.Now).
	now func() time.Time
}

func (c CoordinatorConfig) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	budget := c.Job.CellBudget
	if budget <= 0 {
		budget = 30 * time.Second
	}
	attempts := c.Job.Retries
	switch {
	case attempts < 0:
		attempts = 0
	case attempts == 0:
		attempts = 1
	}
	return budget*time.Duration(attempts+1) + 15*time.Second
}

func (c CoordinatorConfig) maxAssigns() int {
	if c.MaxAssigns <= 0 {
		return 3
	}
	return c.MaxAssigns
}

func (c CoordinatorConfig) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 250 * time.Millisecond
	}
	return c.Backoff
}

// unitState is the lifecycle of one work unit.
type unitState uint8

const (
	unitPending unitState = iota
	unitLeased
	unitDone
	unitPoisoned // done, degraded: quarantined after repeated lease expiries
)

// unit is one (bug, tool) cell's coordinator-side record.
type unit struct {
	u     Unit
	state unitState
	cell  harness.Cell // valid once state is unitDone/unitPoisoned

	leaseID      string
	worker       string
	deadline     time.Time // lease expiry
	assigns      int       // leases granted so far
	backoffUntil time.Time // earliest next lease after an expiry
}

// Coordinator owns a job's unit ledger and serves the fabric protocol.
type Coordinator struct {
	cfg CoordinatorConfig

	mu        sync.Mutex
	units     []*unit
	remaining int
	journal   *Journal
	workers   map[string]int64 // worker → merged cell count
	doneCh    chan struct{}
	closed    bool
}

// NewCoordinator builds the unit ledger, resumes from the checkpoint
// journal when one is configured, and is immediately ready to serve.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.Job.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		workers: map[string]int64{},
		doneCh:  make(chan struct{}),
	}
	n := cfg.Job.Cells()
	c.units = make([]*unit, n)
	for seq := 0; seq < n; seq++ {
		u, err := cfg.Job.Unit(seq)
		if err != nil {
			return nil, err
		}
		c.units[seq] = &unit{u: u}
	}
	c.remaining = n
	if cfg.JournalPath != "" {
		j, done, err := OpenJournal(cfg.JournalPath, cfg.Job.Fingerprint(), n)
		if err != nil {
			return nil, err
		}
		c.journal = j
		for seq, cell := range done {
			c.units[seq].state = unitDone
			c.units[seq].cell = cell
			c.remaining--
		}
	}
	if c.remaining == 0 {
		close(c.doneCh)
	}
	return c, nil
}

// Done is closed once every unit is merged (or quarantined).
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Close releases the journal. It does not stop in-flight HTTP handlers.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.journal != nil {
		return c.journal.Close()
	}
	return nil
}

func (c *Coordinator) now() time.Time {
	if c.cfg.now != nil {
		return c.cfg.now()
	}
	return time.Now()
}

// sweepLocked expires overdue leases: the unit returns to the pending
// queue behind an exponential backoff, or — once it has burned
// MaxAssigns leases — is quarantined as a poison cell so the campaign
// completes degraded instead of looping forever. Returns the cells
// poisoned by this sweep (to notify OnCell outside the lock).
func (c *Coordinator) sweepLocked(now time.Time) []harness.Cell {
	var poisoned []harness.Cell
	for _, u := range c.units {
		if u.state != unitLeased || now.Before(u.deadline) {
			continue
		}
		if u.assigns >= c.cfg.maxAssigns() {
			u.state = unitPoisoned
			u.cell = harness.Cell{
				Bug: u.u.Bug, Tool: u.u.Tool, Status: harness.CellHung,
				Err: fmt.Sprintf("poison cell: %d leases expired (workers crashed or hung evaluating it)", u.assigns),
				Retries: u.assigns - 1,
			}
			c.mergeLocked(u, u.cell)
			poisoned = append(poisoned, u.cell)
			telemetry.FabricPoisoned.Inc()
			continue
		}
		backoff := c.cfg.backoff() << (u.assigns - 1)
		if max := c.cfg.backoff() << 3; backoff > max {
			backoff = max
		}
		u.state = unitPending
		u.leaseID, u.worker = "", ""
		u.backoffUntil = now.Add(backoff)
		telemetry.FabricLeaseExpiries.Inc()
	}
	return poisoned
}

// mergeLocked records a finished cell (worker result or poison verdict),
// checkpoints it, and closes Done on the last one.
func (c *Coordinator) mergeLocked(u *unit, cell harness.Cell) {
	if u.state != unitPoisoned {
		u.state = unitDone
	}
	u.cell = cell
	u.leaseID, u.worker = "", ""
	c.remaining--
	if c.journal != nil {
		if err := c.journal.Append(u.u.Seq, cell); err != nil {
			// Checkpointing is best-effort durability, not correctness: a
			// failed append degrades resumability, never the campaign.
			fmt.Fprintf(os.Stderr, "fabric: checkpoint append failed: %v\n", err)
		}
	}
	if c.remaining == 0 {
		close(c.doneCh)
	}
}

// lease grants the lowest-seq leasable unit.
func (c *Coordinator) lease(workerName string, now time.Time) (leaseResponse, []harness.Cell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	poisoned := c.sweepLocked(now)
	if c.remaining == 0 {
		return leaseResponse{Done: true}, poisoned
	}
	for _, u := range c.units {
		if u.state != unitPending || now.Before(u.backoffUntil) {
			continue
		}
		u.state = unitLeased
		u.assigns++
		u.leaseID = fmt.Sprintf("%s-%d-%d", workerName, u.u.Seq, u.assigns)
		u.worker = workerName
		u.deadline = now.Add(c.cfg.leaseTTL())
		telemetry.FabricLeases.Inc()
		uu := u.u
		return leaseResponse{
			Unit:      &uu,
			LeaseID:   u.leaseID,
			TTLMillis: c.cfg.leaseTTL().Milliseconds(),
		}, poisoned
	}
	return leaseResponse{Wait: true}, poisoned
}

// complete merges a worker's result. Completion is idempotent: a result
// for an already-merged unit (a duplicate, or a slow worker whose lease
// expired and whose unit was re-evaluated elsewhere) is acknowledged and
// dropped — cells are deterministic, so whichever submission lands first
// is as good as any.
func (c *Coordinator) complete(req completeRequest) (completeResponse, harness.Cell, bool) {
	cell := req.Cell
	if c.cfg.FlightRecDir != "" && req.FlightRecName != "" && len(req.FlightRec) > 0 {
		cell.FlightRec = c.archiveFlightRec(req.FlightRecName, req.FlightRec)
	} else if cell.FlightRec != "" {
		// A worker-local path is meaningless on the coordinator host.
		cell.FlightRec = ""
	}
	c.mu.Lock()
	if req.Seq < 0 || req.Seq >= len(c.units) {
		c.mu.Unlock()
		return completeResponse{}, harness.Cell{}, false
	}
	u := c.units[req.Seq]
	if u.state == unitDone || u.state == unitPoisoned {
		resp := completeResponse{Accepted: false, Done: c.remaining == 0}
		c.mu.Unlock()
		return resp, harness.Cell{}, false
	}
	c.mergeLocked(u, cell)
	c.workers[req.Worker]++
	resp := completeResponse{Accepted: true, Done: c.remaining == 0}
	c.mu.Unlock()
	telemetry.FabricCellsMerged.Inc()
	return resp, cell, true
}

// archiveFlightRec stores a worker-collected dump locally, returning the
// local path ("" on any failure — forensics never fail a campaign).
func (c *Coordinator) archiveFlightRec(name string, data []byte) string {
	if err := os.MkdirAll(c.cfg.FlightRecDir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(c.cfg.FlightRecDir, filepath.Base(name))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return ""
	}
	return path
}

// Table assembles the merged Table IV in canonical (bugs × tools) order.
// With every unit merged it is identical to the sequential harness's
// table (modulo wall-clock timings); earlier, not-yet-evaluated cells are
// annotated CANC!.
func (c *Coordinator) Table() *harness.TableIV {
	c.mu.Lock()
	defer c.mu.Unlock()
	var tools []string
	for _, t := range c.cfg.Job.Tools {
		tools = append(tools, t.Name)
	}
	byKey := map[string]harness.Cell{}
	for _, u := range c.units {
		if u.state == unitDone || u.state == unitPoisoned {
			byKey[u.u.Bug+"\x00"+u.u.Tool] = u.cell
		}
	}
	return harness.AssembleTableIV(c.cfg.Job.Bugs, tools, func(bug, tool string) (harness.Cell, bool) {
		cell, ok := byKey[bug+"\x00"+tool]
		return cell, ok
	})
}

// Status is the coordinator's observable progress.
type Status struct {
	Total    int              `json:"total"`
	Done     int              `json:"done"`
	Pending  int              `json:"pending"`
	Leased   int              `json:"leased"`
	Poisoned int              `json:"poisoned"`
	Workers  map[string]int64 `json:"workers,omitempty"`
}

// Snapshot sweeps expired leases and returns the current progress.
func (c *Coordinator) Snapshot() Status {
	c.mu.Lock()
	c.sweepLocked(c.now())
	st := Status{Total: len(c.units), Workers: map[string]int64{}}
	for _, u := range c.units {
		switch u.state {
		case unitPending:
			st.Pending++
		case unitLeased:
			st.Leased++
		case unitDone:
			st.Done++
		case unitPoisoned:
			st.Done++
			st.Poisoned++
		}
	}
	for w, n := range c.workers {
		st.Workers[w] = n
	}
	c.mu.Unlock()
	return st
}

// WorkerSummary renders the per-worker shard contribution, sorted by
// worker name — the fabric's analogue of the campaign-health line.
func (c *Coordinator) WorkerSummary() string {
	st := c.Snapshot()
	if len(st.Workers) == 0 {
		return "fabric: no worker completed a cell\n"
	}
	names := make([]string, 0, len(st.Workers))
	for w := range st.Workers {
		names = append(names, w)
	}
	sort.Strings(names)
	s := fmt.Sprintf("fabric: %d/%d cells merged from %d worker(s)", st.Done, st.Total, len(names))
	if st.Poisoned > 0 {
		s += fmt.Sprintf(", %d poisoned", st.Poisoned)
	}
	s += "\n"
	for _, w := range names {
		s += fmt.Sprintf("  %-20s %d cells\n", w, st.Workers[w])
	}
	return s
}

// Handler serves the fabric protocol:
//
//	GET  /v1/job      → JobSpec
//	POST /v1/lease    → leaseResponse
//	POST /v1/complete → completeResponse
//	GET  /v1/status   → Status
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/job", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.cfg.Job)
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Snapshot())
	})
	mux.HandleFunc("/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req leaseRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, poisoned := c.lease(req.Worker, c.now())
		c.notify("", poisoned)
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req completeRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, cell, merged := c.complete(req)
		if merged {
			c.notify(req.Worker, []harness.Cell{cell})
		}
		writeJSON(w, resp)
	})
	return mux
}

// notify invokes OnCell outside the coordinator lock.
func (c *Coordinator) notify(worker string, cells []harness.Cell) {
	if c.cfg.OnCell == nil {
		return
	}
	for _, cell := range cells {
		c.cfg.OnCell(worker, cell)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
