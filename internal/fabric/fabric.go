// Package fabric is the distributed campaign layer: a coordinator shards
// the (kernel × tool) cell matrix of a Table IV evaluation into work
// units and hands them to worker processes over HTTP, surviving every
// worker failure mode the harness itself cannot contain — a worker that
// crashes mid-cell, a worker that hangs and never reports back, and a
// coordinator process that is restarted mid-campaign.
//
// The design leans on one property the rest of the codebase already
// guarantees: a cell is a deterministic function of (kernel, tool spec,
// campaign config). That makes redundant evaluation harmless (two workers
// racing the same cell produce the identical result, so completion is
// idempotent), lets an expired lease simply be reassigned, and lets a
// restarted coordinator resume from an append-only journal of completed
// cells without re-running any of them. The merged table is assembled in
// canonical (bugs × tools) order, so a fabric campaign renders the exact
// same Table IV as the single-process harness regardless of which worker
// evaluated which cell in which order.
//
// Failure matrix:
//
//   - worker crash mid-cell: its lease expires (TTL sized from the cell
//     watchdog budget), the unit returns to the pending queue with an
//     exponential reassignment backoff, and another worker picks it up.
//   - worker hang: indistinguishable from a crash at the coordinator —
//     same lease-expiry path; the worker's own harness watchdog usually
//     reports the cell HUNG before the lease runs out.
//   - poison cell: a unit whose lease expires MaxAssigns times (it keeps
//     killing or wedging whoever takes it) is quarantined: recorded as a
//     HUNG cell with a poison annotation so the campaign completes
//     degraded instead of looping forever.
//   - coordinator restart: completed cells are checkpointed to a journal
//     (one JSON line per cell, torn tails tolerated); a new coordinator
//     pointed at the same journal readmits them as done and only the
//     remainder is redistributed.
//   - partial results: an interrupted coordinator still assembles the
//     merged table — missing cells are annotated, never invented.
package fabric

import (
	"fmt"
	"hash/fnv"
	"time"

	"goat/internal/detect"
	"goat/internal/fault"
	"goat/internal/goker"
	"goat/internal/harness"
)

// ToolSpec is the serializable form of a harness.Spec: the detector is
// carried by name and resolved on the worker, since detector values are
// code, not data.
type ToolSpec struct {
	// Name is the Table IV column name, e.g. "goat-D2".
	Name string `json:"name"`
	// Detector names the classifier: goat|builtin|lockdl|goleak|predict.
	Detector string `json:"detector"`
	// Delays is the yield bound D.
	Delays int `json:"delays,omitempty"`
	// NeedTrace marks detectors that consume the ECT.
	NeedTrace bool `json:"need_trace,omitempty"`
}

// NewToolSpec converts a harness.Spec into its wire form.
func NewToolSpec(s harness.Spec) (ToolSpec, error) {
	if s.Detector == nil {
		return ToolSpec{}, fmt.Errorf("fabric: tool %q has no detector", s.Name)
	}
	t := ToolSpec{Name: s.Name, Detector: s.Detector.Name(), Delays: s.Delays, NeedTrace: s.NeedTrace}
	if _, err := t.Spec(); err != nil {
		return ToolSpec{}, err
	}
	return t, nil
}

// Spec resolves the wire form back into a runnable harness.Spec.
func (t ToolSpec) Spec() (harness.Spec, error) {
	var d detect.Detector
	switch t.Detector {
	case "goat":
		d = detect.Goat{}
	case "builtin":
		d = detect.Builtin{}
	case "lockdl":
		d = detect.LockDL{}
	case "goleak":
		d = detect.Goleak{}
	case "predict":
		d = detect.Predictive{}
	default:
		return harness.Spec{}, fmt.Errorf("fabric: tool %q names unknown detector %q", t.Name, t.Detector)
	}
	return harness.Spec{Name: t.Name, Detector: d, Delays: t.Delays, NeedTrace: t.NeedTrace}, nil
}

// JobSpec is one distributed campaign: the cell matrix plus every knob a
// worker needs to evaluate its cells exactly like the sequential harness
// would. It is fully serializable; workers fetch it from the coordinator
// at startup.
type JobSpec struct {
	// Bugs are the kernel IDs, in Table IV row order. Every worker must
	// be able to resolve them in its own goker registry.
	Bugs []string `json:"bugs"`
	// Tools are the detector columns, in Table IV column order.
	Tools []ToolSpec `json:"tools"`

	// MaxExecs is the per-cell execution budget (0 = harness default).
	MaxExecs int `json:"max_execs,omitempty"`
	// BaseSeed offsets every trial's seed.
	BaseSeed int64 `json:"base_seed,omitempty"`
	// Faults enables deterministic fault injection for every execution.
	Faults fault.Options `json:"faults,omitempty"`
	// Buffered opts out of the streaming pipeline.
	Buffered bool `json:"buffered,omitempty"`
	// EarlyStop lets streaming detectors halt runs early.
	EarlyStop bool `json:"early_stop,omitempty"`
	// CellBudget is the per-cell wall-clock watchdog (0 = default 30s).
	CellBudget time.Duration `json:"cell_budget,omitempty"`
	// Retries is the watchdog's fresh-seed retry count (harness semantics:
	// 0 = default 1, negative = none).
	Retries int `json:"retries,omitempty"`
	// FlightRec asks workers to attach flight-recorder dumps of failed
	// cells to their results so the coordinator can collect them.
	FlightRec bool `json:"flight_rec,omitempty"`
}

// NewJob builds the JobSpec equivalent of a harness.Config: nil kernel /
// tool selections expand to the harness defaults, so the fabric evaluates
// exactly the matrix RunTableIV would.
func NewJob(cfg harness.Config) (JobSpec, error) {
	job := JobSpec{
		MaxExecs:   cfg.MaxExecs,
		BaseSeed:   cfg.BaseSeed,
		Faults:     cfg.Faults,
		Buffered:   cfg.Buffered,
		EarlyStop:  cfg.EarlyStop,
		CellBudget: cfg.CellBudget,
		Retries:    cfg.Retries,
		FlightRec:  cfg.FlightRecDir != "",
	}
	kernels := cfg.Kernels
	if kernels == nil {
		kernels = goker.GoKer()
	}
	for _, k := range kernels {
		job.Bugs = append(job.Bugs, k.ID)
	}
	tools := cfg.Tools
	if tools == nil {
		tools = harness.DefaultTools()
	}
	for _, s := range tools {
		t, err := NewToolSpec(s)
		if err != nil {
			return JobSpec{}, err
		}
		job.Tools = append(job.Tools, t)
	}
	return job, job.Validate()
}

// Validate checks the job is well-formed and resolvable on this process:
// every bug must exist in the kernel registry and every tool must name a
// known detector.
func (j JobSpec) Validate() error {
	if len(j.Bugs) == 0 || len(j.Tools) == 0 {
		return fmt.Errorf("fabric: job needs at least one bug and one tool (%d bugs, %d tools)",
			len(j.Bugs), len(j.Tools))
	}
	seen := map[string]bool{}
	for _, b := range j.Bugs {
		if _, ok := goker.ByID(b); !ok {
			return fmt.Errorf("fabric: job names unknown kernel %q", b)
		}
		if seen[b] {
			return fmt.Errorf("fabric: job names kernel %q twice", b)
		}
		seen[b] = true
	}
	tseen := map[string]bool{}
	for _, t := range j.Tools {
		if _, err := t.Spec(); err != nil {
			return err
		}
		if tseen[t.Name] {
			return fmt.Errorf("fabric: job names tool %q twice", t.Name)
		}
		tseen[t.Name] = true
	}
	return nil
}

// CellConfig is the harness.Config a worker evaluates one cell under;
// flightDir is the worker's local dump scratch directory ("" disables).
func (j JobSpec) CellConfig(flightDir string) harness.Config {
	return harness.Config{
		MaxExecs:     j.MaxExecs,
		BaseSeed:     j.BaseSeed,
		Faults:       j.Faults,
		Buffered:     j.Buffered,
		EarlyStop:    j.EarlyStop,
		CellBudget:   j.CellBudget,
		Retries:      j.Retries,
		FlightRecDir: flightDir,
	}
}

// Cells returns the size of the cell matrix.
func (j JobSpec) Cells() int { return len(j.Bugs) * len(j.Tools) }

// Unit resolves a row-major sequence number into its (bug, tool) cell.
func (j JobSpec) Unit(seq int) (Unit, error) {
	if seq < 0 || seq >= j.Cells() {
		return Unit{}, fmt.Errorf("fabric: unit %d out of range (matrix has %d cells)", seq, j.Cells())
	}
	return Unit{
		Seq:  seq,
		Bug:  j.Bugs[seq/len(j.Tools)],
		Tool: j.Tools[seq%len(j.Tools)].Name,
	}, nil
}

// Fingerprint is a stable hash of the job's identity-defining fields. A
// checkpoint journal records it so a coordinator never resumes a journal
// written for a different campaign.
func (j JobSpec) Fingerprint() string {
	h := fnv.New64a()
	put := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	for _, b := range j.Bugs {
		put(b)
	}
	for _, t := range j.Tools {
		put(fmt.Sprintf("%s/%s/%d/%v", t.Name, t.Detector, t.Delays, t.NeedTrace))
	}
	put(fmt.Sprintf("%d/%d/%v/%v/%v/%d/%v",
		j.MaxExecs, j.BaseSeed, j.Buffered, j.EarlyStop, j.CellBudget, j.Retries, j.Faults))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Unit is one work item: a single (bug, tool) cell, identified by its
// row-major position in the job's matrix.
type Unit struct {
	Seq  int    `json:"seq"`
	Bug  string `json:"bug"`
	Tool string `json:"tool"`
}

func (u Unit) String() string { return fmt.Sprintf("#%d %s/%s", u.Seq, u.Bug, u.Tool) }

// Wire messages of the coordinator's HTTP protocol (v1).

// leaseRequest asks for one work unit.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseResponse grants a unit, asks the worker to wait, or reports the
// campaign done.
type leaseResponse struct {
	// Done: the campaign is complete, the worker should exit.
	Done bool `json:"done,omitempty"`
	// Wait: nothing is leasable right now (everything pending is inside a
	// reassignment backoff window, or all remaining units are leased);
	// poll again shortly.
	Wait bool `json:"wait,omitempty"`

	Unit    *Unit  `json:"unit,omitempty"`
	LeaseID string `json:"lease_id,omitempty"`
	// TTLMillis is how long the lease is valid; a worker that cannot
	// finish within it must assume the unit was reassigned.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
}

// completeRequest submits one evaluated cell.
type completeRequest struct {
	Worker  string       `json:"worker"`
	LeaseID string       `json:"lease_id,omitempty"`
	Seq     int          `json:"seq"`
	Cell    harness.Cell `json:"cell"`

	// FlightRecName and FlightRec carry a failed cell's flight-recorder
	// dump (file base name + raw bytes) so the coordinator can archive
	// remote forensics locally.
	FlightRecName string `json:"flightrec_name,omitempty"`
	FlightRec     []byte `json:"flightrec,omitempty"`
}

// completeResponse acknowledges a submission. Duplicate or stale results
// are acknowledged but not accepted — completion is idempotent.
type completeResponse struct {
	Accepted bool `json:"accepted"`
	Done     bool `json:"done,omitempty"`
}
