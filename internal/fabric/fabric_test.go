package fabric

import (
	"context"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"goat/internal/conc"
	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/harness"
	"goat/internal/sim"
)

// smallJob is a 2-kernel × 2-tool matrix over real suite kernels.
func smallJob(t *testing.T) JobSpec {
	t.Helper()
	job, err := NewJob(harness.Config{
		MaxExecs: 3,
		Kernels:  kernelsByID(t, "moby_28462", "etcd_6873"),
		Tools: []harness.Spec{
			{Name: "goat-D0", Detector: detect.Goat{}, NeedTrace: true},
			{Name: "builtin", Detector: detect.Builtin{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func kernelsByID(t *testing.T, ids ...string) []goker.Kernel {
	t.Helper()
	var out []goker.Kernel
	for _, id := range ids {
		k, ok := goker.ByID(id)
		if !ok {
			t.Fatalf("kernel %s missing", id)
		}
		out = append(out, k)
	}
	return out
}

func TestToolSpecRoundTrip(t *testing.T) {
	for _, s := range harness.ToolsWithPredict() {
		ts, err := NewToolSpec(s)
		if err != nil {
			t.Fatalf("NewToolSpec(%s): %v", s.Name, err)
		}
		back, err := ts.Spec()
		if err != nil {
			t.Fatalf("Spec(%s): %v", s.Name, err)
		}
		if back.Name != s.Name || back.Delays != s.Delays || back.NeedTrace != s.NeedTrace {
			t.Fatalf("round trip mangled %+v -> %+v", s, back)
		}
		if back.Detector.Name() != s.Detector.Name() {
			t.Fatalf("detector %q became %q", s.Detector.Name(), back.Detector.Name())
		}
	}
	if _, err := (ToolSpec{Name: "x", Detector: "nope"}).Spec(); err == nil {
		t.Fatal("unknown detector accepted")
	}
}

func TestJobValidateAndFingerprint(t *testing.T) {
	job := smallJob(t)
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	fp := job.Fingerprint()
	if fp != job.Fingerprint() {
		t.Fatal("fingerprint unstable")
	}
	other := job
	other.BaseSeed = 99
	if other.Fingerprint() == fp {
		t.Fatal("fingerprint ignores the seed")
	}

	bad := job
	bad.Bugs = append([]string{"no_such_kernel"}, bad.Bugs...)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("unknown kernel accepted: %v", err)
	}

	u, err := job.Unit(3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Bug != job.Bugs[1] || u.Tool != job.Tools[1].Name {
		t.Fatalf("row-major unit mapping wrong: %+v", u)
	}
	if _, err := job.Unit(4); err == nil {
		t.Fatal("out-of-range unit accepted")
	}
}

func TestJournalResume(t *testing.T) {
	path := t.TempDir() + "/journal.jsonl"
	job := smallJob(t)
	fp := job.Fingerprint()

	j, done, err := OpenJournal(path, fp, job.Cells())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("fresh journal replayed %d cells", len(done))
	}
	c0 := harness.Cell{Bug: "moby_28462", Tool: "goat-D0", Found: true, MinExecs: 2, Verdict: "PDL-2"}
	c1 := harness.Cell{Bug: "etcd_6873", Tool: "builtin", Status: harness.CellHung, Err: "x", Retries: 1}
	if err := j.Append(0, c0); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(3, c1); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// A torn trailing line (coordinator killed mid-append) must be
	// ignored on replay and overwritten by the next append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":1,"cell":{"Bug":"torn`)
	f.Close()

	j2, done2, err := OpenJournal(path, fp, job.Cells())
	if err != nil {
		t.Fatal(err)
	}
	if len(done2) != 2 {
		t.Fatalf("replayed %d cells, want 2", len(done2))
	}
	if got := done2[0]; got.Verdict != "PDL-2" || !got.Found || got.MinExecs != 2 {
		t.Fatalf("cell 0 replayed wrong: %+v", got)
	}
	if got := done2[3]; got.Status != harness.CellHung || got.Retries != 1 {
		t.Fatalf("cell 3 replayed wrong: %+v", got)
	}
	if err := j2.Append(1, harness.Cell{Bug: "moby_28462", Tool: "builtin"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, done3, err := OpenJournal(path, fp, job.Cells())
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if len(done3) != 3 {
		t.Fatalf("after torn-tail overwrite, replayed %d cells, want 3", len(done3))
	}

	// A journal from a different job must be rejected.
	if _, _, err := OpenJournal(path, "deadbeefdeadbeef", job.Cells()); err == nil {
		t.Fatal("foreign journal accepted")
	}
}

// fakeClock drives the coordinator's lease machinery deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLeaseExpiryBackoffAndPoison(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	job := smallJob(t)
	job.Bugs = job.Bugs[:1]
	job.Tools = job.Tools[:1] // 1-cell matrix: every lease hits the same unit
	coord, err := NewCoordinator(CoordinatorConfig{
		Job:        job,
		LeaseTTL:   time.Second,
		Backoff:    100 * time.Millisecond,
		MaxAssigns: 2,
		now:        clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	resp, _ := coord.lease("w1", clk.now())
	if resp.Unit == nil || resp.Unit.Seq != 0 {
		t.Fatalf("first lease = %+v", resp)
	}
	// Same instant, second worker: everything is leased.
	resp, _ = coord.lease("w2", clk.now())
	if !resp.Wait {
		t.Fatalf("expected Wait while leased, got %+v", resp)
	}
	// Past the TTL the unit is reassignable — but only after the backoff.
	clk.advance(1100 * time.Millisecond)
	resp, _ = coord.lease("w2", clk.now())
	if !resp.Wait {
		t.Fatalf("expected Wait inside the backoff window, got %+v", resp)
	}
	clk.advance(150 * time.Millisecond)
	resp, _ = coord.lease("w2", clk.now())
	if resp.Unit == nil {
		t.Fatalf("expected reassignment after backoff, got %+v", resp)
	}
	// Second expiry exhausts MaxAssigns: the unit is poisoned and the
	// campaign completes degraded.
	clk.advance(2 * time.Second)
	resp, poisoned := coord.lease("w3", clk.now())
	if !resp.Done {
		t.Fatalf("expected Done after poison quarantine, got %+v", resp)
	}
	if len(poisoned) != 1 {
		t.Fatalf("poisoned %d cells, want 1", len(poisoned))
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("Done not closed after poisoning the last unit")
	}
	tab := coord.Table()
	cell := tab.Rows[0].Cells[0]
	if cell.Status != harness.CellHung || !strings.Contains(cell.Err, "poison") {
		t.Fatalf("poisoned cell = %+v", cell)
	}
	if !strings.Contains(tab.String(), "HUNG!") {
		t.Fatal("poisoned cell not annotated in Table IV")
	}
}

func TestCompleteIsIdempotent(t *testing.T) {
	job := smallJob(t)
	path := t.TempDir() + "/j.jsonl"
	coord, err := NewCoordinator(CoordinatorConfig{Job: job, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	lease, _ := coord.lease("w1", time.Now())
	if lease.Unit == nil {
		t.Fatalf("no lease: %+v", lease)
	}
	cell := harness.Cell{Bug: lease.Unit.Bug, Tool: lease.Unit.Tool, Found: true, MinExecs: 1, Verdict: "PDL-2"}
	req := completeRequest{Worker: "w1", LeaseID: lease.LeaseID, Seq: lease.Unit.Seq, Cell: cell}
	resp, _, merged := coord.complete(req)
	if !resp.Accepted || !merged {
		t.Fatalf("first completion rejected: %+v", resp)
	}
	resp, _, merged = coord.complete(req)
	if resp.Accepted || merged {
		t.Fatalf("duplicate completion accepted: %+v", resp)
	}
	coord.Close()

	_, done, err := OpenJournal(path, job.Fingerprint(), job.Cells())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("journal holds %d records after duplicate submission, want 1", len(done))
	}
}

// TestFabricEndToEnd runs a real coordinator + two workers over HTTP and
// checks the merged table equals the sequential harness's.
func TestFabricEndToEnd(t *testing.T) {
	kernels := kernelsByID(t, "moby_28462", "etcd_6873", "grpc_660")
	tools := []harness.Spec{
		{Name: "goat-D0", Detector: detect.Goat{}, NeedTrace: true},
		{Name: "goat-D2", Detector: detect.Goat{}, Delays: 2, NeedTrace: true},
	}
	cfg := harness.Config{MaxExecs: 5, BaseSeed: 3, Kernels: kernels, Tools: tools}
	want := harness.RunTableIV(cfg)

	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{Job: job})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		w := &Worker{Coord: srv.URL, Name: name, Poll: 20 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.Name, err)
			}
		}()
	}
	wg.Wait()

	got := coord.Table()
	if got.String() != want.String() {
		t.Fatalf("fabric table differs from sequential:\n--- fabric ---\n%s--- sequential ---\n%s", got, want)
	}
	sum := coord.WorkerSummary()
	if !strings.Contains(sum, "6/6 cells merged") {
		t.Fatalf("worker summary = %q", sum)
	}
	st := coord.Snapshot()
	if st.Done != 6 || st.Poisoned != 0 {
		t.Fatalf("status = %+v", st)
	}
}

// fabricHang is a registered kernel that wedges the host so a fabric cell
// fails HUNG and produces a flight-recorder dump on the worker.
var fabricHangOnce sync.Once

func registerFabricHang(t *testing.T) {
	fabricHangOnce.Do(func() {
		err := goker.Register(goker.Kernel{
			ID: "fabric_test_hang", Project: "synthetic", Expect: "GDL", Generated: true,
			Description: "host-level hang for fabric flight-rec collection tests",
			Main: func(g *sim.G) {
				// Emit a few real events so the flight recorder has something
				// to dump, then wedge the host goroutine on a native channel
				// (invisible to the virtual runtime) until the watchdog fires.
				ch := conc.NewChan[int](g, 1)
				ch.Send(g, 1)
				ch.Recv(g)
				var block chan struct{}
				<-block
			},
		})
		if err != nil {
			t.Fatalf("registering hang kernel: %v", err)
		}
	})
}

func TestFlightRecCollectedFromWorker(t *testing.T) {
	registerFabricHang(t)
	dir := t.TempDir()
	job, err := NewJob(harness.Config{
		MaxExecs:     2,
		Kernels:      kernelsByID(t, "fabric_test_hang"),
		Tools:        []harness.Spec{{Name: "builtin", Detector: detect.Builtin{}}},
		CellBudget:   200 * time.Millisecond,
		Retries:      -1,
		FlightRecDir: dir, // any non-empty dir turns FlightRec on in the job
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Job:          job,
		FlightRecDir: dir,
		LeaseTTL:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w := &Worker{Coord: srv.URL, Name: "w1", FlightDir: t.TempDir()}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}

	tab := coord.Table()
	cell := tab.Rows[0].Cells[0]
	if cell.Status != harness.CellHung {
		t.Fatalf("cell = %+v, want HUNG", cell)
	}
	if cell.FlightRec == "" || !strings.HasPrefix(cell.FlightRec, dir) {
		t.Fatalf("flight rec not archived on the coordinator: %q", cell.FlightRec)
	}
	if st, err := os.Stat(cell.FlightRec); err != nil || st.Size() == 0 {
		t.Fatalf("archived dump unreadable: %v", err)
	}
}
