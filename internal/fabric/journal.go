package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"goat/internal/harness"
)

// Journal is the coordinator's resumable checkpoint: an append-only file
// with one JSON line per completed cell, preceded by a header line that
// pins the job fingerprint. A coordinator restarted onto the same journal
// readmits every recorded cell as done and never re-runs it; a journal
// written for a different job is rejected outright.
//
// Durability model: records are written straight to the file descriptor
// (no userspace buffering), so a coordinator crash loses nothing already
// appended; a torn final line from a mid-write kill is detected and
// ignored on replay.
type Journal struct {
	f    *os.File
	path string
}

// journalHeader is the first line of a journal file.
type journalHeader struct {
	Fingerprint string `json:"fingerprint"`
	Cells       int    `json:"cells"`
}

// journalRecord is one completed-cell line.
type journalRecord struct {
	Seq  int          `json:"seq"`
	Cell harness.Cell `json:"cell"`
}

// OpenJournal opens (or creates) the checkpoint journal for a job with
// the given fingerprint and matrix size, returning the journal positioned
// for appending plus every cell already checkpointed in it. Duplicate and
// out-of-range records are ignored, as is a torn trailing line.
func OpenJournal(path, fingerprint string, cells int) (*Journal, map[int]harness.Cell, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	done := map[int]harness.Cell{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("fabric: reading journal %s: %w", path, err)
		}
		// Fresh (or empty) journal: stamp the header.
		hdr, err := json.Marshal(journalHeader{Fingerprint: fingerprint, Cells: cells})
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("fabric: initializing journal %s: %w", path, err)
		}
		return &Journal{f: f, path: path}, done, nil
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s has a malformed header: %w", path, err)
	}
	if hdr.Fingerprint != fingerprint {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s belongs to a different job (fingerprint %s, want %s)",
			path, hdr.Fingerprint, fingerprint)
	}
	if hdr.Cells != cells {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s records a %d-cell matrix, want %d", path, hdr.Cells, cells)
	}
	// Replay: every parseable record marks its cell done. The byte offset
	// of the last fully parseable line bounds the valid prefix; anything
	// after it (a torn tail) is truncated before appending resumes.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	line, err := r.ReadBytes('\n') // header, already validated
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s: header line unterminated", path)
	}
	valid := int64(len(line))
	for {
		line, err = r.ReadBytes('\n')
		if err != nil && len(line) == 0 {
			break
		}
		var rec journalRecord
		if jerr := json.Unmarshal(line, &rec); jerr != nil || err != nil {
			// Torn or corrupt tail: stop replay here; the valid prefix
			// stands and the tail is overwritten by future appends.
			break
		}
		valid += int64(len(line))
		if rec.Seq < 0 || rec.Seq >= cells {
			continue
		}
		if _, dup := done[rec.Seq]; dup {
			continue
		}
		done[rec.Seq] = rec.Cell
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: truncating journal tail of %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path}, done, nil
}

// Append checkpoints one completed cell.
func (j *Journal) Append(seq int, c harness.Cell) error {
	b, err := json.Marshal(journalRecord{Seq: seq, Cell: c})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("fabric: appending to journal %s: %w", j.path, err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }
