package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"goat/internal/goker"
	"goat/internal/harness"
	"goat/internal/telemetry"
)

// chaosAction is the test seam's verdict on one leased unit: run it,
// crash without reporting (the coordinator sees an expiring lease and
// reassigns), or hang — wedge past the lease TTL, then wake up and run
// the cell anyway, so the stale submission races whichever worker the
// unit was reassigned to (idempotent completion must absorb it).
type chaosAction uint8

const (
	chaosRun chaosAction = iota
	chaosCrash
	chaosHang
)

// errCrashed is the worker's exit when the chaos seam kills it mid-cell.
var errCrashed = fmt.Errorf("fabric: worker crashed (chaos)")

// Worker pulls work units from a coordinator, evaluates each cell with
// the hardened harness, and reports results back. It is stateless: any
// number of workers may serve one campaign, join late, or die at any
// point — the coordinator's lease machinery covers for them.
type Worker struct {
	// Coord is the coordinator's base URL, e.g. "http://127.0.0.1:7777".
	Coord string
	// Name identifies the worker in leases, progress lines and the shard
	// summary.
	Name string
	// Client is the HTTP client (nil = a default with sane timeouts).
	Client *http.Client
	// FlightDir is the local scratch directory for flight-recorder dumps
	// when the job requests them ("" = a fresh temp dir).
	FlightDir string
	// Poll is the idle backoff while the coordinator has nothing leasable
	// (0 = 200ms).
	Poll time.Duration
	// OnCell observes every cell this worker evaluated, before it is
	// submitted.
	OnCell func(Unit, harness.Cell)

	// intercept is the chaos test seam, consulted per leased unit.
	intercept func(Unit) chaosAction
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 60 * time.Second}
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

// Run serves the coordinator until the campaign completes (nil), the
// context is canceled (ctx.Err()), or the coordinator stays unreachable
// past the retry budget.
func (w *Worker) Run(ctx context.Context) error {
	var job JobSpec
	if err := w.call(ctx, http.MethodGet, "/v1/job", nil, &job); err != nil {
		return fmt.Errorf("fabric: fetching job from %s: %w", w.Coord, err)
	}
	if err := job.Validate(); err != nil {
		return fmt.Errorf("fabric: coordinator job not runnable on this worker: %w", err)
	}
	specs := map[string]harness.Spec{}
	for _, t := range job.Tools {
		s, err := t.Spec()
		if err != nil {
			return err
		}
		specs[t.Name] = s
	}
	flightDir := ""
	if job.FlightRec {
		flightDir = w.FlightDir
		if flightDir == "" {
			d, err := os.MkdirTemp("", "goat-fabric-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(d)
			flightDir = d
		}
	}
	cfg := job.CellConfig(flightDir)
	cfg.Ctx = ctx

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease leaseResponse
		if err := w.call(ctx, http.MethodPost, "/v1/lease", leaseRequest{Worker: w.Name}, &lease); err != nil {
			return fmt.Errorf("fabric: leasing from %s: %w", w.Coord, err)
		}
		switch {
		case lease.Done:
			return nil
		case lease.Wait || lease.Unit == nil:
			if err := sleepCtx(ctx, w.poll()); err != nil {
				return err
			}
			continue
		}
		unit := *lease.Unit

		if w.intercept != nil {
			switch w.intercept(unit) {
			case chaosCrash:
				return errCrashed
			case chaosHang:
				// Overstay the lease, then proceed: the submission below
				// arrives stale, after the coordinator reassigned the unit.
				ttl := time.Duration(lease.TTLMillis) * time.Millisecond
				if err := sleepCtx(ctx, ttl+ttl/2); err != nil {
					return err
				}
			}
		}

		k, ok := goker.ByID(unit.Bug)
		if !ok {
			// Validated at startup; a registry mismatch mid-run means the
			// worker cannot serve this job.
			return fmt.Errorf("fabric: kernel %q vanished from the registry", unit.Bug)
		}
		spec, ok := specs[unit.Tool]
		if !ok {
			return fmt.Errorf("fabric: leased unknown tool %q", unit.Tool)
		}
		cell := harness.RunCell(k, spec, cfg)
		if telemetry.Enabled() {
			telemetry.FabricWorkerCells.Inc()
		}
		if w.OnCell != nil {
			w.OnCell(unit, cell)
		}
		if cell.Status == harness.CellCanceled {
			// Shutdown mid-cell: drop the partial verdict; the lease will
			// expire and the unit will be re-evaluated elsewhere.
			return ctx.Err()
		}

		req := completeRequest{Worker: w.Name, LeaseID: lease.LeaseID, Seq: unit.Seq, Cell: cell}
		if cell.FlightRec != "" {
			if data, err := os.ReadFile(cell.FlightRec); err == nil {
				req.FlightRecName = filepath.Base(cell.FlightRec)
				req.FlightRec = data
			}
		}
		var resp completeResponse
		if err := w.call(ctx, http.MethodPost, "/v1/complete", req, &resp); err != nil {
			return fmt.Errorf("fabric: submitting %s: %w", unit, err)
		}
		if resp.Done {
			return nil
		}
	}
}

// call is one JSON round-trip with bounded retries, so a worker rides out
// a coordinator restart or a transient network failure instead of dying
// with the campaign half-done.
func (w *Worker) call(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	const attempts = 10
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i > 0 {
			if err := sleepCtx(ctx, time.Duration(i)*300*time.Millisecond); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, w.Coord+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// sleepCtx sleeps d or until the context dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
