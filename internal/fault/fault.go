// Package fault is the deterministic fault-injection layer of the virtual
// runtime. A Plan is derived from the execution seed and a fault Options
// value; it decides, ahead of time, at which concurrency-usage (CU) points
// which environmental faults fire. The plan draws from its own PRNG streams
// — never from the scheduler's decision source — so enabling faults changes
// *what the environment does* without disturbing the recorded schedule
// script, and (program, seed, fault options) reproduces the exact same
// fault schedule, ECT and outcome on every run.
//
// Fault vocabulary (each recorded as a dedicated ECT event kind):
//
//   - stall:    the goroutine at the CU point is held unrunnable for K
//     scheduler dispatches (models an OS-thread descheduling / GC assist).
//   - skew:     timer registrations have their durations stretched or
//     shrunk by a bounded random factor (models clock jitter).
//   - cancel:   one live cancellable context is cancelled from the current
//     goroutine (models an external deadline or caller-side abort).
//   - slow:     the next channel/select operation is delayed by K forced
//     yields (models a slow peer or contended channel).
//   - panic:    the goroutine at the CU point panics with an InjectedPanic
//     value (models a crashing dependency); detectors recognize the marker
//     and classify the crash as fault-induced rather than a program bug.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindNone is the zero Kind; it never appears in a plan.
	KindNone Kind = iota
	// KindStall holds a goroutine unrunnable for Param dispatches.
	KindStall
	// KindTimerSkew stretches or shrinks a timer duration.
	KindTimerSkew
	// KindCancel cancels one live cancellable context.
	KindCancel
	// KindSlow delays a channel/select operation by Param forced yields.
	KindSlow
	// KindPanic panics the goroutine with an InjectedPanic value.
	KindPanic
)

var kindNames = [...]string{"none", "stall", "skew", "cancel", "slow", "panic"}

// String returns the kind's spec name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Options configure the fault plan of one execution. The zero value
// disables injection entirely.
type Options struct {
	// Stalls is the number of goroutine stalls to inject.
	Stalls int
	// StallSteps is how many scheduler dispatches a stalled goroutine is
	// held unrunnable. Zero selects the default (25).
	StallSteps int

	// Cancels is the number of injected context cancellations.
	Cancels int

	// Slowdowns is the number of channel-op slowdowns to inject.
	Slowdowns int
	// SlowYields is the number of forced yields per slowdown. Zero selects
	// the default (3).
	SlowYields int

	// Panics is the number of injected goroutine panics (usually 0 or 1).
	Panics int

	// TimerSkew bounds the relative skew applied to every timer duration:
	// a duration d becomes d * f with f drawn uniformly from
	// [1-TimerSkew, 1+TimerSkew]. Zero disables skew; values are clamped
	// to [0, 0.9].
	TimerSkew float64

	// MeanGap is the mean number of CU-handler invocations between
	// consecutive injections of one kind. Zero selects the default (40).
	MeanGap int64
}

const (
	defaultStallSteps = 25
	defaultSlowYields = 3
	defaultMeanGap    = 40
	maxTimerSkew      = 0.9
)

// Enabled reports whether the options request any injection at all.
func (o Options) Enabled() bool {
	return o.Stalls > 0 || o.Cancels > 0 || o.Slowdowns > 0 || o.Panics > 0 || o.TimerSkew > 0
}

func (o Options) stallSteps() int {
	if o.StallSteps <= 0 {
		return defaultStallSteps
	}
	return o.StallSteps
}

func (o Options) slowYields() int {
	if o.SlowYields <= 0 {
		return defaultSlowYields
	}
	return o.SlowYields
}

func (o Options) meanGap() int64 {
	if o.MeanGap <= 0 {
		return defaultMeanGap
	}
	return o.MeanGap
}

func (o Options) timerSkew() float64 {
	if o.TimerSkew < 0 {
		return 0
	}
	if o.TimerSkew > maxTimerSkew {
		return maxTimerSkew
	}
	return o.TimerSkew
}

// String renders the options in the -faults spec syntax.
func (o Options) String() string {
	var parts []string
	if o.Stalls > 0 {
		parts = append(parts, fmt.Sprintf("stall=%d", o.Stalls))
	}
	if o.Cancels > 0 {
		parts = append(parts, fmt.Sprintf("cancel=%d", o.Cancels))
	}
	if o.Slowdowns > 0 {
		parts = append(parts, fmt.Sprintf("slow=%d", o.Slowdowns))
	}
	if o.Panics > 0 {
		parts = append(parts, fmt.Sprintf("panic=%d", o.Panics))
	}
	if o.TimerSkew > 0 {
		parts = append(parts, fmt.Sprintf("skew=%g", o.TimerSkew))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the -faults flag syntax: a comma-separated list of
// key=value pairs, e.g. "stall=2,cancel=1,skew=0.3,slow=2,panic=1".
// Optional tuning keys: stallsteps, slowyields, gap. An empty spec or
// "none" yields disabled options.
func ParseSpec(spec string) (Options, error) {
	var o Options
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return o, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return o, fmt.Errorf("fault: bad spec element %q (want key=value)", part)
		}
		key, val := kv[0], kv[1]
		if key == "skew" {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > maxTimerSkew {
				return o, fmt.Errorf("fault: skew=%q (want a float in [0, %g])", val, maxTimerSkew)
			}
			o.TimerSkew = f
			continue
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return o, fmt.Errorf("fault: %s=%q (want a non-negative integer)", key, val)
		}
		switch key {
		case "stall":
			o.Stalls = n
		case "cancel":
			o.Cancels = n
		case "slow":
			o.Slowdowns = n
		case "panic":
			o.Panics = n
		case "stallsteps":
			o.StallSteps = n
		case "slowyields":
			o.SlowYields = n
		case "gap":
			o.MeanGap = int64(n)
		default:
			return o, fmt.Errorf("fault: unknown spec key %q (known: stall, cancel, slow, panic, skew, stallsteps, slowyields, gap)", key)
		}
	}
	return o, nil
}

// Action is one planned (or applied) fault.
type Action struct {
	Kind  Kind
	Op    int64 // planned CU-handler index (1-based); 0 for timer skew
	At    int64 // actual op index the fault fired at (0 until applied)
	Param int64 // kind-specific payload: stall dispatches, slow yields, cancel pick
}

// String renders the action for logs and reports.
func (a Action) String() string {
	s := fmt.Sprintf("%s@op%d", a.Kind, a.Op)
	if a.At != 0 && a.At != a.Op {
		s += fmt.Sprintf("(fired@%d)", a.At)
	}
	if a.Param != 0 {
		s += fmt.Sprintf("[%d]", a.Param)
	}
	return s
}

// InjectedPanic is the panic value thrown by a KindPanic fault. Detectors
// recognize it (via IsInjected) and classify the resulting crash as
// fault-induced rather than as a program bug.
type InjectedPanic struct {
	// Op is the CU-handler index the panic was injected at.
	Op int64
}

// Error makes the marker a readable error value.
func (p InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected panic at op %d", p.Op)
}

// String implements fmt.Stringer.
func (p InjectedPanic) String() string { return p.Error() }

// IsInjected reports whether a recovered panic value is a fault-layer
// injected panic.
func IsInjected(v any) bool {
	_, ok := v.(InjectedPanic)
	return ok
}

// Plan is the per-execution fault schedule. It is built once from
// (seed, Options) and consumed by the scheduler: pending actions of each
// kind fire in op order as their planned op index is reached, and every
// applied action is recorded for the execution Result.
type Plan struct {
	opts Options

	pending map[Kind][]Action // per kind, ascending planned op
	skewRNG *rand.Rand        // consumed once per timer registration
	applied []Action
}

// NewPlan derives the deterministic fault schedule for one execution.
// A disabled Options value yields a nil plan.
func NewPlan(seed int64, o Options) *Plan {
	if !o.Enabled() {
		return nil
	}
	p := &Plan{opts: o, pending: map[Kind][]Action{}}
	plant := func(kind Kind, count int, param int64) {
		if count <= 0 {
			return
		}
		rng := rand.New(rand.NewSource(mix(seed, int64(kind))))
		gap := o.meanGap()
		op := int64(0)
		for i := 0; i < count; i++ {
			op += 1 + rng.Int63n(2*gap)
			a := Action{Kind: kind, Op: op, Param: param}
			if kind == KindCancel {
				// The pick among live cancellables is resolved at fire
				// time: Param carries a raw deterministic draw.
				a.Param = rng.Int63()
			}
			p.pending[kind] = append(p.pending[kind], a)
		}
	}
	plant(KindStall, o.Stalls, int64(o.stallSteps()))
	plant(KindCancel, o.Cancels, 0)
	plant(KindSlow, o.Slowdowns, int64(o.slowYields()))
	plant(KindPanic, o.Panics, 0)
	if o.timerSkew() > 0 {
		p.skewRNG = rand.New(rand.NewSource(mix(seed, int64(KindTimerSkew))))
	}
	return p
}

// mix derives a stream seed from the execution seed and a kind tag
// (splitmix64 finalizer), keeping the per-kind streams independent.
func mix(seed, tag int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(tag+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Due returns the next pending action of the kind if its planned op index
// has been reached. The action stays pending until Fire consumes it, so a
// fault whose precondition is not met yet (no live cancellable, not a
// channel op) fires at the next eligible CU point instead of being lost.
func (p *Plan) Due(kind Kind, op int64) (Action, bool) {
	q := p.pending[kind]
	if len(q) == 0 || q[0].Op > op {
		return Action{}, false
	}
	return q[0], true
}

// Fire consumes the head pending action of the kind, recording it as
// applied at the given op index, and returns it.
func (p *Plan) Fire(kind Kind, op int64) Action {
	q := p.pending[kind]
	if len(q) == 0 {
		panic("fault: Fire without a pending action")
	}
	a := q[0]
	p.pending[kind] = q[1:]
	a.At = op
	p.applied = append(p.applied, a)
	return a
}

// SkewDelta returns the skewed replacement for a timer delta. It consumes
// one draw per call, so a fixed execution sees a fixed skew sequence. The
// result is at least 1 so a skewed timer still fires.
func (p *Plan) SkewDelta(delta int64) int64 {
	if p.skewRNG == nil || delta <= 0 {
		return delta
	}
	skew := p.opts.timerSkew()
	f := 1 - skew + 2*skew*p.skewRNG.Float64()
	out := int64(float64(delta) * f)
	if out < 1 {
		out = 1
	}
	return out
}

// Applied returns the actions that actually fired, in firing order.
func (p *Plan) Applied() []Action { return p.applied }

// PendingCount returns how many planted actions never fired (the program
// ended before their op index, or their precondition never became true).
func (p *Plan) PendingCount() int {
	n := 0
	for _, q := range p.pending {
		n += len(q)
	}
	return n
}

// Planned returns every planted point-fault action in (kind, op) order —
// the full schedule before execution, mainly for tests and debugging.
func (p *Plan) Planned() []Action {
	var out []Action
	for _, q := range p.pending {
		out = append(out, q...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
