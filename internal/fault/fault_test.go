package fault

import (
	"reflect"
	"testing"
)

func TestParseSpec(t *testing.T) {
	o, err := ParseSpec("stall=2,cancel=1,skew=0.3,slow=2,panic=1,gap=10")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Options{Stalls: 2, Cancels: 1, Slowdowns: 2, Panics: 1, TimerSkew: 0.3, MeanGap: 10}
	if o != want {
		t.Fatalf("ParseSpec = %+v, want %+v", o, want)
	}
	if !o.Enabled() {
		t.Fatal("options should be enabled")
	}
	for _, empty := range []string{"", "none", "  "} {
		o, err := ParseSpec(empty)
		if err != nil || o.Enabled() {
			t.Fatalf("ParseSpec(%q) = %+v, %v; want disabled, nil", empty, o, err)
		}
	}
	for _, bad := range []string{"stall", "stall=", "stall=-1", "skew=2", "skew=x", "bogus=1", "=3"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	o := Options{Stalls: 3, Cancels: 2, Slowdowns: 1, Panics: 1, TimerSkew: 0.25}
	back, err := ParseSpec(o.String())
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", o.String(), err)
	}
	if back != o {
		t.Fatalf("round trip = %+v, want %+v", back, o)
	}
	if (Options{}).String() != "none" {
		t.Fatalf("zero options render %q, want none", (Options{}).String())
	}
}

func TestPlanDeterminism(t *testing.T) {
	o := Options{Stalls: 3, Cancels: 2, Slowdowns: 2, Panics: 1, TimerSkew: 0.4}
	a := NewPlan(42, o)
	b := NewPlan(42, o)
	if !reflect.DeepEqual(a.Planned(), b.Planned()) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a.Planned(), b.Planned())
	}
	for i := 0; i < 16; i++ {
		da, db := a.SkewDelta(1000), b.SkewDelta(1000)
		if da != db {
			t.Fatalf("skew stream diverged at draw %d: %d vs %d", i, da, db)
		}
		if da < 600 || da > 1400 {
			t.Fatalf("skew(1000) = %d outside [600, 1400] for TimerSkew=0.4", da)
		}
	}
	c := NewPlan(43, o)
	if reflect.DeepEqual(a.Planned(), c.Planned()) {
		t.Fatal("different seeds produced an identical fault schedule")
	}
}

func TestPlanFireOrder(t *testing.T) {
	p := NewPlan(7, Options{Stalls: 2, MeanGap: 5})
	planned := p.Planned()
	if len(planned) != 2 {
		t.Fatalf("planned %d stalls, want 2", len(planned))
	}
	if _, ok := p.Due(KindStall, planned[0].Op-1); ok {
		t.Fatal("stall due before its op index")
	}
	a, ok := p.Due(KindStall, planned[0].Op)
	if !ok || a.Op != planned[0].Op {
		t.Fatalf("Due = %v, %v; want first planned stall", a, ok)
	}
	// Not consumed until Fire: still due at a later op.
	if _, ok := p.Due(KindStall, planned[0].Op+100); !ok {
		t.Fatal("pending action was lost without Fire")
	}
	fired := p.Fire(KindStall, planned[0].Op+3)
	if fired.At != planned[0].Op+3 || fired.Param == 0 {
		t.Fatalf("Fire = %+v; want At recorded and stall param set", fired)
	}
	if got := p.Applied(); len(got) != 1 || got[0] != fired {
		t.Fatalf("Applied = %v, want [%v]", got, fired)
	}
	if p.PendingCount() != 1 {
		t.Fatalf("PendingCount = %d, want 1", p.PendingCount())
	}
}

func TestDisabledPlanIsNil(t *testing.T) {
	if p := NewPlan(1, Options{}); p != nil {
		t.Fatalf("NewPlan(disabled) = %v, want nil", p)
	}
}

func TestInjectedPanicMarker(t *testing.T) {
	v := InjectedPanic{Op: 12}
	if !IsInjected(v) {
		t.Fatal("IsInjected(InjectedPanic) = false")
	}
	if IsInjected("boom") || IsInjected(nil) {
		t.Fatal("IsInjected misfired on a non-marker value")
	}
	if v.Error() == "" {
		t.Fatal("empty marker message")
	}
}
