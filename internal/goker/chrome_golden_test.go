package goker

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"goat/internal/sim"
	"goat/internal/trace"
)

// The Chrome/Perfetto export of a real kernel's ECT is golden-tested so
// the exact JSON `goattrace -chrome` emits — the file the README
// walkthrough loads into ui.perfetto.dev — never drifts silently.
// Regenerate with
//
//	go test ./internal/goker -run ChromeExportGolden -update

var updateChrome = flag.Bool("update", false, "rewrite golden files")

func TestChromeExportGolden(t *testing.T) {
	k, ok := ByID("fuzz_send_no_recv_min")
	if !ok {
		t.Fatal("fuzz_send_no_recv_min not registered")
	}
	r := Run(k, sim.Options{Seed: 1, MaxSteps: 50000})
	if r.Trace == nil || r.Trace.Len() == 0 {
		t.Fatal("kernel produced no trace")
	}
	var buf bytes.Buffer
	if err := r.Trace.EncodeChrome(&buf, trace.ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome export is not valid JSON")
	}

	path := filepath.Join("testdata", "fuzz_send_no_recv_min.chrome.golden")
	if *updateChrome {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome export differs from %s:\n--- got ---\n%s", path, buf.String())
	}
}

// Every ECT event of every registered kernel must appear exactly once as
// a timeline slice in the Chrome export — no event silently dropped or
// duplicated, whatever mix of block regions, faults, and flows a kernel
// produces.
func TestChromeExportCoversEveryEvent(t *testing.T) {
	for _, id := range []string{"fuzz_send_no_recv_min", "kubernetes_6632", "etcd_6873", "moby_28462"} {
		k, ok := ByID(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			r := Run(k, sim.Options{Seed: 2, Delays: 1, MaxSteps: 50000})
			var buf bytes.Buffer
			if err := r.Trace.EncodeChrome(&buf, trace.ChromeOptions{}); err != nil {
				t.Fatal(err)
			}
			var file struct {
				TraceEvents []struct {
					Ph   string         `json:"ph"`
					Args map[string]any `json:"args"`
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
				t.Fatal(err)
			}
			slices := 0
			for _, ce := range file.TraceEvents {
				if _, ok := ce.Args["ect_ts"]; ok {
					if ce.Ph != "X" {
						t.Fatalf("ect slice with ph %q", ce.Ph)
					}
					slices++
				}
			}
			if slices != r.Trace.Len() {
				t.Fatalf("%d timeline slices for %d ECT events", slices, r.Trace.Len())
			}
		})
	}
}
