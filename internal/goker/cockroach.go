package goker

import (
	"goat/internal/conc"
	"goat/internal/sim"
)

func init() {
	register(Kernel{
		ID: "cockroach_584", Project: "cockroach", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "gossip: the client bootstrap loop exits on error without signalling the server loop, which leaks waiting for a connect event.",
		Main:        cockroach584,
	})
	register(Kernel{
		ID: "cockroach_1055", Project: "cockroach", Cause: MixedDeadlock, Expect: "GDL",
		Description: "stopper: Quiesce holds the stopper mutex while draining tasks; a task needs the same mutex to deregister.",
		Main:        cockroach1055,
	})
	register(Kernel{
		ID: "cockroach_1462", Project: "cockroach", Cause: MixedDeadlock, Expect: "PDL",
		Description: "gossip server: infostore callback holds the server lock while sending on the notification channel whose reader needs the lock.",
		Main:        cockroach1462,
	})
	register(Kernel{
		ID: "cockroach_2448", Project: "cockroach", Cause: CommunicationDeadlock, Expect: "GDL", Rare: true,
		Description: "storage event feed: consumer and producer both select on the same unbuffered pair and can commit to mirrored cases, stranding each other.",
		Main:        cockroach2448,
	})
	register(Kernel{
		ID: "cockroach_3710", Project: "cockroach", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "storage: ForceRaftLogScanAndProcess takes store.RLock then per-range lock, while RaftSnapshot takes them in the reverse order.",
		Main:        cockroach3710,
	})
	register(Kernel{
		ID: "cockroach_6181", Project: "cockroach", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "schema changer: concurrent RLock re-entry races a writer lease renewal on the same RWMutex.",
		Main:        cockroach6181,
	})
	register(Kernel{
		ID: "cockroach_7504", Project: "cockroach", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "leaseState/tableNameCache: m.Lock then t.Lock in release, t.Lock then m.Lock in purge — AB-BA.",
		Main:        cockroach7504,
	})
	register(Kernel{
		ID: "cockroach_9935", Project: "cockroach", Cause: ResourceDeadlock, Expect: "GDL",
		Description: "log flusher: fatal path re-locks the logging mutex already held by the caller.",
		Main:        cockroach9935,
	})
	register(Kernel{
		ID: "cockroach_10214", Project: "cockroach", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "store: raft worker and replica GC take store.mu and replica.mu in opposite orders.",
		Main:        cockroach10214,
	})
	register(Kernel{
		ID: "cockroach_10790", Project: "cockroach", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "distSQL flow: cleanup returns before draining the row channel; producers leak blocked on send.",
		Main:        cockroach10790,
	})
	register(Kernel{
		ID: "cockroach_13197", Project: "cockroach", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "session: the conn executor waits for a result the worker never sends because its context was cancelled between checks.",
		Main:        cockroach13197,
	})
	register(Kernel{
		ID: "cockroach_13755", Project: "cockroach", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "distSQL: the row fetcher leaks when the consumer closes without signalling the producer-side done channel.",
		Main:        cockroach13755,
	})
	register(Kernel{
		ID: "cockroach_16167", Project: "cockroach", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "sql executor: systemConfigCond.Wait re-acquires the RWMutex write lock while another goroutine holds it waiting on the same condition's mutex.",
		Main:        cockroach16167,
	})
	register(Kernel{
		ID: "cockroach_18101", Project: "cockroach", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "restore: the split-and-scatter workers block sending readyForImport when the import loop exits early on context cancel.",
		Main:        cockroach18101,
	})
	register(Kernel{
		ID: "cockroach_24808", Project: "cockroach", Cause: CommunicationDeadlock, Expect: "GDL",
		Description: "compactor: the suggestion loop waits on a channel that is only fed before the loop started (the pending signal was dropped).",
		Main:        cockroach24808,
	})
	register(Kernel{
		ID: "cockroach_25456", Project: "cockroach", Cause: CommunicationDeadlock, Expect: "GDL",
		Description: "CheckConsistency: the collector waits for a result from a worker that was never started on the error path.",
		Main:        cockroach25456,
	})
	register(Kernel{
		ID: "cockroach_35073", Project: "cockroach", Cause: CommunicationDeadlock, Expect: "PDL", Rare: true,
		Description: "changefeed: a buffered sink flush races the poller's send; the poller leaks when the flush wins and stops receiving.",
		Main:        cockroach35073,
	})
	register(Kernel{
		ID: "cockroach_35931", Project: "cockroach", Cause: MixedDeadlock, Expect: "GDL",
		Description: "distSQL vectorized: the inbox holds its mutex while blocking on a stream the outbox cannot feed before taking the same mutex.",
		Main:        cockroach35931,
	})
}

// cockroach584: server loop waits for a connect event the failed client
// bootstrap never sends.
func cockroach584(g *sim.G) {
	connected := conc.NewChan[struct{}](g, 0)
	g.Go("serverLoop", func(c *sim.G) {
		connected.Recv(c) // leaks: bootstrap error path never signals
	})
	bootstrapFailed := true
	if bootstrapFailed {
		return
	}
	connected.Send(g, struct{}{})
}

// cockroach1055: Quiesce drains tasks holding the stopper lock; a task
// must take the lock to deregister.
func cockroach1055(g *sim.G) {
	mu := conc.NewMutex(g)
	drained := conc.NewChan[struct{}](g, 0)
	tasks := 1
	g.Go("task", func(c *sim.G) {
		mu.Lock(c) // deregister needs the stopper lock
		tasks--
		if tasks == 0 {
			drained.Send(c, struct{}{})
		}
		mu.Unlock(c)
	})
	mu.Lock(g) // BUG: Quiesce holds the lock across the drain wait
	if tasks > 0 {
		drained.Recv(g)
	}
	mu.Unlock(g)
}

// cockroach1462: callback sends holding the server lock; reader locks first.
func cockroach1462(g *sim.G) {
	mu := conc.NewMutex(g)
	notify := conc.NewChan[int](g, 0)
	g.Go("callback", func(c *sim.G) {
		mu.Lock(c)
		notify.Send(c, 1) // blocks holding mu
		mu.Unlock(c)
	})
	g.Go("reader", func(c *sim.G) {
		mu.Lock(c) // BUG: lock taken before the receive
		notify.Recv(c)
		mu.Unlock(c)
	})
	conc.Sleep(g, 200)
}

// cockroach2448: producer and consumer each select over {send ours,
// recv theirs}; when both commit to sends (or both to recvs is impossible)
// ... the pair can strand when each drains its own side and stops.
func cockroach2448(g *sim.G) {
	a := conc.NewChan[int](g, 0)
	b := conc.NewChan[int](g, 0)
	done := conc.NewChan[struct{}](g, 0)
	g.Go("producer", func(c *sim.G) {
		for i := 0; i < 2; i++ {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseSend(a, i),
				conc.CaseRecv(b),
			}, false)
			if idx == 1 {
				return // BUG: treats any b message as shutdown
			}
		}
		done.Close(c)
	})
	g.Go("consumer", func(c *sim.G) {
		for i := 0; i < 2; i++ {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseRecv(a),
				conc.CaseSend(b, i),
			}, false)
			if idx == 1 {
				return // BUG: stops after handing back a token
			}
		}
	})
	done.Recv(g) // global deadlock when both bailed out early
}

// cockroach3710: AB-BA on store RWMutex vs range mutex.
func cockroach3710(g *sim.G) {
	store := conc.NewRWMutex(g)
	rng := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	wg.Add(g, 2)
	g.Go("scanAndProcess", func(c *sim.G) {
		store.RLock(c)
		rng.Lock(c)
		rng.Unlock(c)
		store.RUnlock(c)
		wg.Done(c)
	})
	g.Go("raftSnapshot", func(c *sim.G) {
		rng.Lock(c)
		store.Lock(c) // reverse order
		store.Unlock(c)
		rng.Unlock(c)
		wg.Done(c)
	})
	wg.Wait(g)
}

// cockroach6181: recursive RLock racing a writer (writer preference).
func cockroach6181(g *sim.G) {
	lease := conc.NewRWMutex(g)
	g.Go("renewal", func(c *sim.G) {
		lease.Lock(c)
		lease.Unlock(c)
	})
	lease.RLock(g)
	lease.RLock(g) // deadlocks when the renewal writer queued in between
	lease.RUnlock(g)
	lease.RUnlock(g)
}

// cockroach7504: AB-BA between the lease-manager lock and the table lock.
func cockroach7504(g *sim.G) {
	m := conc.NewMutex(g)
	tbl := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	wg.Add(g, 2)
	g.Go("release", func(c *sim.G) {
		m.Lock(c)
		tbl.Lock(c)
		tbl.Unlock(c)
		m.Unlock(c)
		wg.Done(c)
	})
	g.Go("purge", func(c *sim.G) {
		tbl.Lock(c)
		m.Lock(c)
		m.Unlock(c)
		tbl.Unlock(c)
		wg.Done(c)
	})
	wg.Wait(g)
}

// cockroach9935: the fatal path re-locks the logging mutex.
func cockroach9935(g *sim.G) {
	logMu := conc.NewMutex(g)
	fatal := func(c *sim.G) {
		logMu.Lock(c) // BUG: caller already holds logMu
		logMu.Unlock(c)
	}
	logMu.Lock(g)
	diskFull := true
	if diskFull {
		fatal(g)
	}
	logMu.Unlock(g)
}

// cockroach10214: AB-BA between store.mu and replica.mu.
func cockroach10214(g *sim.G) {
	storeMu := conc.NewMutex(g)
	replicaMu := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	wg.Add(g, 2)
	g.Go("raftWorker", func(c *sim.G) {
		storeMu.Lock(c)
		replicaMu.Lock(c)
		replicaMu.Unlock(c)
		storeMu.Unlock(c)
		wg.Done(c)
	})
	g.Go("replicaGC", func(c *sim.G) {
		replicaMu.Lock(c)
		storeMu.Lock(c)
		storeMu.Unlock(c)
		replicaMu.Unlock(c)
		wg.Done(c)
	})
	wg.Wait(g)
}

// cockroach10790: producers leak on send after cleanup stops draining.
func cockroach10790(g *sim.G) {
	rows := conc.NewChan[int](g, 0)
	for i := 0; i < 2; i++ {
		i := i
		g.Go("producer", func(c *sim.G) {
			rows.Send(c, i) // leaks once cleanup returns
		})
	}
	rows.Recv(g) // drains one row
	// BUG: cleanup returns without draining the second producer.
}

// cockroach13197: worker observes the cancel and returns without sending.
func cockroach13197(g *sim.G) {
	ctx, cancel := conc.WithCancel(g)
	result := conc.NewChan[int](g, 0)
	g.Go("worker", func(c *sim.G) {
		idx, _, _ := conc.Select(c, []conc.Case{
			conc.CaseRecv(ctx.Done()),
			conc.CaseSend(result, 42),
		}, false)
		_ = idx
	})
	cancel(g)
	// BUG: executor receives unconditionally; leaks when the worker took
	// the cancel case. (Main leaks => partial deadlock of the session.)
	g.Go("executor", func(c *sim.G) {
		result.Recv(c)
	})
	conc.Sleep(g, 200)
}

// cockroach13755: row fetcher waits on done that close() never feeds.
func cockroach13755(g *sim.G) {
	done := conc.NewChan[struct{}](g, 0)
	g.Go("rowFetcher", func(c *sim.G) {
		done.Recv(c) // leaks: consumer closes without the signal
	})
	consumerClosed := true
	if consumerClosed {
		return // BUG: missing close(done)
	}
	done.Close(g)
}

// cockroach16167: cond re-lock vs a writer holding the lock.
func cockroach16167(g *sim.G) {
	mu := conc.NewMutex(g)
	cond := conc.NewCond(g, mu)
	g.Go("updater", func(c *sim.G) {
		mu.Lock(c)
		cond.Signal(c) // may fire before the waiter parks
		mu.Unlock(c)
	})
	mu.Lock(g)
	cond.Wait(g) // BUG: unconditional wait; misses an early signal
	mu.Unlock(g)
}

// cockroach18101: scatter workers leak when the importer exits early.
func cockroach18101(g *sim.G) {
	readyForImport := conc.NewChan[int](g, 0)
	for i := 0; i < 3; i++ {
		i := i
		g.Go("scatterWorker", func(c *sim.G) {
			readyForImport.Send(c, i) // leaks after the cancel
		})
	}
	readyForImport.Recv(g)
	// BUG: context cancelled; importer returns, stranding two workers.
}

// cockroach24808: the pending signal is consumed before the loop waits.
func cockroach24808(g *sim.G) {
	pending := conc.NewChan[struct{}](g, 1)
	pending.Send(g, struct{}{})
	// The pre-loop check drains the signal...
	pending.Recv(g)
	// ...and the loop then waits for a signal that will never come.
	pending.Recv(g)
}

// cockroach25456: collector waits for a worker the error path never spawned.
func cockroach25456(g *sim.G) {
	results := conc.NewChan[int](g, 0)
	startWorker := false // error path: worker not started
	if startWorker {
		g.Go("worker", func(c *sim.G) {
			results.Send(c, 1)
		})
	}
	results.Recv(g)
}

// cockroach35073: poller's send races the flusher's stop-triggered exit.
func cockroach35073(g *sim.G) {
	buf := conc.NewChan[int](g, 1)
	stop := conc.NewChan[struct{}](g, 0)
	g.Go("poller", func(c *sim.G) {
		for i := 0; i < 3; i++ {
			buf.Send(c, i) // leaks on the full buffer after flusher exits
		}
	})
	g.Go("canceler", func(c *sim.G) { stop.Close(c) })
	g.Go("flusher", func(c *sim.G) {
		buf.Recv(c)
		idx, _, _ := conc.Select(c, []conc.Case{
			conc.CaseRecv(buf),
			conc.CaseRecv(stop),
		}, false)
		_ = idx // BUG: the stop case exits with the poller mid-stream
	})
	conc.Sleep(g, 300)
}

// cockroach35931: inbox holds its lock while waiting for a stream message
// the outbox can only produce after taking the same lock.
func cockroach35931(g *sim.G) {
	inboxMu := conc.NewMutex(g)
	stream := conc.NewChan[int](g, 0)
	g.Go("outbox", func(c *sim.G) {
		inboxMu.Lock(c) // BUG: needs the inbox lock to enqueue
		stream.Send(c, 1)
		inboxMu.Unlock(c)
	})
	inboxMu.Lock(g)
	stream.Recv(g) // waits while holding the lock the outbox needs
	inboxMu.Unlock(g)
}
