package goker

import (
	"bytes"
	"testing"

	"goat/internal/sim"
)

// determinismOptions is the sweep configuration: a seed/delay pair with a
// bounded step budget so even the rare/racy kernels finish quickly.
func determinismOptions(seed int64) sim.Options {
	return sim.Options{Seed: seed, Delays: 2, MaxSteps: 50000}
}

// TestEveryKernelIsDeterministic runs every registered kernel — the
// pinned GoKer suite plus promoted fuzzer reproducers — twice under the
// same seed and requires byte-identical encoded ECTs and equal outcomes.
// The virtual runtime's whole value proposition is reproducibility; any
// hidden host-level nondeterminism (map iteration, real time, real
// channels) in a kernel or the scheduler shows up here first.
func TestEveryKernelIsDeterministic(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			r1 := Run(k, determinismOptions(7))
			r2 := Run(k, determinismOptions(7))
			if r1.Outcome != r2.Outcome {
				t.Fatalf("outcome differs across identical runs: %v vs %v", r1.Outcome, r2.Outcome)
			}
			var b1, b2 bytes.Buffer
			if err := r1.Trace.Encode(&b1); err != nil {
				t.Fatalf("encoding first trace: %v", err)
			}
			if err := r2.Trace.Encode(&b2); err != nil {
				t.Fatalf("encoding second trace: %v", err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatalf("encoded ECTs differ across identical runs (%d vs %d bytes)", b1.Len(), b2.Len())
			}
		})
	}
}

// TestEveryKernelReplays records each kernel's decision script and
// replays it: the replay must reproduce the outcome without structural
// divergence, the property the paper's debugging workflow (record one
// failing schedule, replay it under the inspector) rests on.
func TestEveryKernelReplays(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			opts := determinismOptions(11)
			opts.Record = true
			rec := Run(k, opts)

			replayOpts := determinismOptions(11)
			replayOpts.Replay = rec.Schedule
			rep := Run(k, replayOpts)
			if rep.ReplayDiverged {
				t.Fatalf("replay diverged from recorded schedule (outcome %v, recorded %v)", rep.Outcome, rec.Outcome)
			}
			if rep.Outcome != rec.Outcome {
				t.Fatalf("replay outcome %v, recorded %v", rep.Outcome, rec.Outcome)
			}
		})
	}
}
