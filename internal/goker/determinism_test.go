package goker_test

import (
	"bytes"
	"reflect"
	"testing"

	"goat/internal/detect"
	"goat/internal/kernelgen"
	"goat/internal/trace"

	"goat/internal/goker"
	"goat/internal/sim"
)

// determinismOptions is the sweep configuration: a seed/delay pair with a
// bounded step budget so even the rare/racy kernels finish quickly.
func determinismOptions(seed int64) sim.Options {
	return sim.Options{Seed: seed, Delays: 2, MaxSteps: 50000}
}

// TestEveryKernelIsDeterministic runs every registered kernel — the
// pinned GoKer suite plus promoted fuzzer reproducers — twice under the
// same seed and requires byte-identical encoded ECTs and equal outcomes.
// The virtual runtime's whole value proposition is reproducibility; any
// hidden host-level nondeterminism (map iteration, real time, real
// channels) in a kernel or the scheduler shows up here first.
func TestEveryKernelIsDeterministic(t *testing.T) {
	for _, k := range goker.All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			r1 := goker.Run(k, determinismOptions(7))
			r2 := goker.Run(k, determinismOptions(7))
			if r1.Outcome != r2.Outcome {
				t.Fatalf("outcome differs across identical runs: %v vs %v", r1.Outcome, r2.Outcome)
			}
			var b1, b2 bytes.Buffer
			if err := r1.Trace.Encode(&b1); err != nil {
				t.Fatalf("encoding first trace: %v", err)
			}
			if err := r2.Trace.Encode(&b2); err != nil {
				t.Fatalf("encoding second trace: %v", err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatalf("encoded ECTs differ across identical runs (%d vs %d bytes)", b1.Len(), b2.Len())
			}
		})
	}
}

// TestEveryKernelReplays records each kernel's decision script and
// replays it: the replay must reproduce the outcome without structural
// divergence, the property the paper's debugging workflow (record one
// failing schedule, replay it under the inspector) rests on.
func TestEveryKernelReplays(t *testing.T) {
	for _, k := range goker.All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			opts := determinismOptions(11)
			opts.Record = true
			rec := goker.Run(k, opts)

			replayOpts := determinismOptions(11)
			replayOpts.Replay = rec.Schedule
			rep := goker.Run(k, replayOpts)
			if rep.ReplayDiverged {
				t.Fatalf("replay diverged from recorded schedule (outcome %v, recorded %v)", rep.Outcome, rec.Outcome)
			}
			if rep.Outcome != rec.Outcome {
				t.Fatalf("replay outcome %v, recorded %v", rep.Outcome, rec.Outcome)
			}
		})
	}
}

// serviceSweep is the service-kernel battery: every shape, clean and
// with a planted slow leak, sized so the sweep stays fast.
func serviceSweep() []*kernelgen.ServiceProg {
	return []*kernelgen.ServiceProg{
		{Shape: kernelgen.ShapeHandler, Requests: 96, Workers: 3, Pool: 2, Stages: 2, ChanCap: 1},
		{Shape: kernelgen.ShapeHandler, Requests: 96, Workers: 3, Pool: 2, Stages: 2, ChanCap: 1,
			LeakKind: kernelgen.LeakPoolExhaust, LeakEvery: 16},
		{Shape: kernelgen.ShapeWorkerPool, Requests: 96, Workers: 2, Pool: 2, Stages: 2, ChanCap: 2},
		{Shape: kernelgen.ShapeWorkerPool, Requests: 96, Workers: 2, Pool: 2, Stages: 2, ChanCap: 2,
			LeakKind: kernelgen.LeakHandlerAbandon, LeakEvery: 16},
		{Shape: kernelgen.ShapePipeline, Requests: 96, Workers: 2, Pool: 2, Stages: 3, ChanCap: 1},
		{Shape: kernelgen.ShapePipeline, Requests: 96, Workers: 2, Pool: 2, Stages: 3, ChanCap: 1,
			LeakKind: kernelgen.LeakSendNoRecv, LeakEvery: 16},
	}
}

// serviceOpts builds the sweep options: full ECT, a detector panel on
// the sink path, and the requested batch mode.
func serviceOpts(p *kernelgen.ServiceProg, seed int64, batch int) (sim.Options, []detect.Stream) {
	streams := []detect.Stream{
		detect.Goat{}.NewStream(),
		detect.Leak{Window: 512}.NewStream(),
	}
	sinks := make([]trace.Sink, len(streams))
	for i, s := range streams {
		sinks[i] = s
	}
	return sim.Options{Seed: seed, MaxSteps: p.MinSteps(), SinkBatch: batch, Sinks: sinks}, streams
}

// TestServiceKernelDeterminism extends the determinism sweep to the
// service kernels: for three seeds each, the encoded ECT must be
// byte-identical with batched sink emission on and off, every streaming
// detector must return the same verdict in both modes, and a recorded
// schedule must replay without divergence. This is the invariant the
// campaign-throughput batching rides on — flushing sinks at dispatch
// boundaries is a delivery optimization, never an observable change.
func TestServiceKernelDeterminism(t *testing.T) {
	for _, p := range serviceSweep() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(3); seed <= 11; seed += 4 {
				offOpts, offStreams := serviceOpts(p, seed, -1)
				onOpts, onStreams := serviceOpts(p, seed, 256)
				rOff := sim.Run(offOpts, p.Main())
				rOn := sim.Run(onOpts, p.Main())
				if rOff.Outcome != rOn.Outcome {
					t.Fatalf("seed %d: outcome differs batch off/on: %v vs %v", seed, rOff.Outcome, rOn.Outcome)
				}
				if err := p.Check(rOff); err != nil {
					t.Fatalf("seed %d: oracle: %v", seed, err)
				}
				var bOff, bOn bytes.Buffer
				if err := rOff.Trace.Encode(&bOff); err != nil {
					t.Fatalf("seed %d: encode: %v", seed, err)
				}
				if err := rOn.Trace.Encode(&bOn); err != nil {
					t.Fatalf("seed %d: encode: %v", seed, err)
				}
				if !bytes.Equal(bOff.Bytes(), bOn.Bytes()) {
					t.Fatalf("seed %d: ECT differs between batch off (%d bytes) and on (%d bytes)",
						seed, bOff.Len(), bOn.Len())
				}
				for i := range offStreams {
					dOff := offStreams[i].Finish(rOff)
					dOn := onStreams[i].Finish(rOn)
					if !reflect.DeepEqual(dOff, dOn) {
						t.Fatalf("seed %d: %s verdict differs batch off/on:\n%+v\n%+v",
							seed, dOff.Tool, dOff, dOn)
					}
				}

				// Record under batched emission, replay, require structural
				// agreement — the debugging workflow must survive batching.
				recOpts := sim.Options{Seed: seed, MaxSteps: p.MinSteps(), SinkBatch: 256, Record: true}
				rec := sim.Run(recOpts, p.Main())
				repOpts := sim.Options{Seed: seed, MaxSteps: p.MinSteps(), SinkBatch: 256, Replay: rec.Schedule}
				rep := sim.Run(repOpts, p.Main())
				if rep.ReplayDiverged {
					t.Fatalf("seed %d: replay diverged (outcome %v, recorded %v)", seed, rep.Outcome, rec.Outcome)
				}
				if rep.Outcome != rec.Outcome {
					t.Fatalf("seed %d: replay outcome %v, recorded %v", seed, rep.Outcome, rec.Outcome)
				}
			}
		})
	}
}
