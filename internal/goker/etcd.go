package goker

import (
	"goat/internal/conc"
	"goat/internal/sim"
)

func init() {
	register(Kernel{
		ID: "etcd_5509", Project: "etcd", Cause: ResourceDeadlock, Expect: "GDL",
		Description: "clientv3 concurrency: Lock's error path returns without releasing the session mutex; the next locker blocks forever.",
		Main:        etcd5509,
	})
	register(Kernel{
		ID: "etcd_6708", Project: "etcd", Cause: ResourceDeadlock, Expect: "GDL",
		Description: "watch stream: notify re-acquires the stream mutex already held by the broadcast path (double lock).",
		Main:        etcd6708,
	})
	register(Kernel{
		ID: "etcd_6857", Project: "etcd", Cause: CommunicationDeadlock, Expect: "PDL", Rare: true,
		Description: "raft node: the status request races Stop; after the node loop exits via the stop case, the status sender leaks.",
		Main:        etcd6857,
	})
	register(Kernel{
		ID: "etcd_6873", Project: "etcd", Cause: CommunicationDeadlock, Expect: "PDL", Rare: true,
		Description: "watch broadcast: a new watcher registers while the broadcaster is draining; the registration send leaks after the drain exits.",
		Main:        etcd6873,
	})
	register(Kernel{
		ID: "etcd_7443", Project: "etcd", Cause: MixedDeadlock, Expect: "PDL", Rare: true,
		Description: "clientv3 balancer: notify/upstream coordination over channels, a mutex and a cond inside nested select loops; the coverage case study (Fig. 6a).",
		Main:        etcd7443,
	})
	register(Kernel{
		ID: "etcd_7492", Project: "etcd", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "lease keepalive: the response fan-out sends to a full per-stream buffer while the stream reader already returned.",
		Main:        etcd7492,
	})
	register(Kernel{
		ID: "etcd_7902", Project: "etcd", Cause: MixedDeadlock, Expect: "GDL",
		Description: "election: observe holds the client lock while waiting for the leader signal that the campaign goroutine sends only after taking the lock.",
		Main:        etcd7902,
	})
	register(Kernel{
		ID: "etcd_10492", Project: "etcd", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "lessor: checkpointScheduledLeases takes the lessor lock then the checkpoint lock while the demote path takes them reversed — AB-BA under contention.",
		Main:        etcd10492,
	})
}

// etcd5509: error path leaks the session mutex.
func etcd5509(g *sim.G) {
	session := conc.NewMutex(g)
	lock := func(c *sim.G, fail bool) {
		session.Lock(c)
		if fail {
			return // BUG: missing Unlock
		}
		session.Unlock(c)
	}
	lock(g, true)
	lock(g, false)
}

// etcd6708: broadcast path calls notify with the stream lock held.
func etcd6708(g *sim.G) {
	streamMu := conc.NewMutex(g)
	notify := func(c *sim.G) {
		streamMu.Lock(c) // BUG: caller already holds streamMu
		streamMu.Unlock(c)
	}
	streamMu.Lock(g)
	notify(g)
	streamMu.Unlock(g)
}

// etcd6857: the node loop exits on stop; a late status request leaks.
func etcd6857(g *sim.G) {
	status := conc.NewChan[int](g, 0)
	stop := conc.NewChan[struct{}](g, 0)
	g.Go("nodeLoop", func(c *sim.G) {
		for {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseRecv(status),
				conc.CaseRecv(stop),
			}, false)
			if idx == 1 {
				return
			}
		}
	})
	g.Go("stopper", func(c *sim.G) {
		stop.Close(c)
	})
	g.Go("statusReq", func(c *sim.G) {
		status.Send(c, 1) // leaks when the loop exits first
	})
	conc.Sleep(g, 200)
}

// etcd6873: registration send races the broadcaster's drain-exit.
func etcd6873(g *sim.G) {
	registerCh := conc.NewChan[int](g, 0)
	drained := conc.NewChan[struct{}](g, 0)
	g.Go("broadcaster", func(c *sim.G) {
		for {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseRecv(registerCh),
				conc.CaseRecv(drained),
			}, false)
			if idx == 1 {
				return // BUG: exits while a watcher may be registering
			}
		}
	})
	g.Go("drainer", func(c *sim.G) {
		drained.Close(c)
	})
	g.Go("watcher", func(c *sim.G) {
		registerCh.Send(c, 1) // leaks when the drain case wins
	})
	conc.Sleep(g, 200)
}

// etcd7443: the balancer's upstream loop coordinates address updates over
// an unbuffered notify channel, a mutex-protected address set, and a cond
// that announces readiness — nested selects inside nested loops. The bug:
// teardown can win the final select round while the updater is parked on
// notify, leaking the updater; and the ready signal can fire before the
// waiter parks.
func etcd7443(g *sim.G) {
	notify := conc.NewChan[int](g, 0)
	stopc := conc.NewChan[struct{}](g, 0)
	mu := conc.NewMutex(g)
	ready := conc.NewCond(g, mu)
	addrs := 0

	g.Go("upstream", func(c *sim.G) {
		for round := 0; ; round++ {
			for {
				idx, _, _ := conc.Select(c, []conc.Case{
					conc.CaseRecv(notify),
					conc.CaseRecv(stopc),
				}, false)
				if idx == 1 {
					return
				}
				mu.Lock(c)
				addrs++
				if addrs == 1 {
					ready.Signal(c) // BUG: may fire before the waiter waits
				}
				mu.Unlock(c)
				inner, _, _ := conc.Select(c, []conc.Case{
					conc.CaseRecv(stopc),
				}, true)
				if inner == 0 {
					return
				}
				break
			}
		}
	})
	g.Go("updater", func(c *sim.G) {
		for i := 0; i < 2; i++ {
			notify.Send(c, i) // leaks if teardown wins the last round
		}
	})
	g.Go("teardown", func(c *sim.G) {
		mu.Lock(c)
		for addrs == 0 {
			ready.Wait(c) // misses the signal under the racy order
		}
		mu.Unlock(c)
		stopc.Close(c)
	})
	conc.Sleep(g, 500)
}

// etcd7492: fan-out sends to a full keepalive buffer with no reader.
func etcd7492(g *sim.G) {
	ka := conc.NewChan[int](g, 1)
	ka.Send(g, 0) // buffer full: the reader fell behind and then returned
	g.Go("fanout", func(c *sim.G) {
		ka.Send(c, 1) // BUG: unconditional send on the full buffer
	})
	g.Yield()
}

// etcd7902: observe holds the lock while waiting for the leader signal
// that campaign can only produce after taking the lock.
func etcd7902(g *sim.G) {
	clientMu := conc.NewMutex(g)
	leader := conc.NewChan[struct{}](g, 0)
	g.Go("campaign", func(c *sim.G) {
		clientMu.Lock(c) // BUG: needs the lock observe is holding
		leader.Send(c, struct{}{})
		clientMu.Unlock(c)
	})
	clientMu.Lock(g)
	leader.Recv(g)
	clientMu.Unlock(g)
}

// etcd10492: AB-BA between the lessor lock and the checkpoint lock.
func etcd10492(g *sim.G) {
	lessor := conc.NewMutex(g)
	checkpoint := conc.NewMutex(g)
	done := conc.NewChan[struct{}](g, 0)
	g.Go("demote", func(c *sim.G) {
		checkpoint.Lock(c)
		lessor.Lock(c) // reverse order
		lessor.Unlock(c)
		checkpoint.Unlock(c)
		done.Send(c, struct{}{})
	})
	lessor.Lock(g)
	checkpoint.Lock(g)
	checkpoint.Unlock(g)
	lessor.Unlock(g)
	done.Recv(g)
}
