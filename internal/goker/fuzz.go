// Promoted reproducers from the differential kernel fuzzer
// (internal/kernelgen, cmd/goatfuzz). Each kernel here began as a random
// generated program whose shrunk decision string pinned down a detector
// disagreement; the promotion workflow (EXPERIMENTS.md, "Fuzzing the
// analyzers") translates the emitted reproducer source onto the virtual
// runtime and registers it with Generated set, so the pinned 68-kernel
// GoKer set is unaffected while the corpus grows.
package goker

import (
	"goat/internal/conc"
	"goat/internal/sim"
)

func init() {
	register(Kernel{
		ID: "fuzz_send_no_recv_min", Project: "fuzz", Cause: CommunicationDeadlock, Expect: "PDL",
		Generated: true,
		Description: "minimal fuzzer reproducer (decision string 25ba): a goroutine sends on an " +
			"unbuffered channel nobody receives from; found by the differential campaign's " +
			"lying-detector acceptance run and shrunk from 96 to 2 decision bytes.",
		Main: fuzzSendNoRecvMin,
	})
}

// fuzzSendNoRecvMin is the virtual-runtime translation of the emitted
// reproducer source:
//
//	func main() {
//		ch0 := make(chan int)
//		var wg0 sync.WaitGroup
//		go func() { ch0 <- 0 }()
//		wg0.Wait()
//	}
func fuzzSendNoRecvMin(g *sim.G) {
	ch0 := conc.NewChan[int](g, 0)
	wg0 := conc.NewWaitGroup(g)
	g.Go("bug0", func(c *sim.G) {
		ch0.Send(c, 0)
	})
	wg0.Wait(g)
}
