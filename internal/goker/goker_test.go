package goker

import (
	"sort"
	"strings"
	"testing"

	"goat/internal/detect"
	"goat/internal/sim"
	"goat/internal/trace"
)

func TestSuiteSize(t *testing.T) {
	if n := len(GoKer()); n != 68 {
		t.Fatalf("suite has %d kernels, want 68 (the GoKer blocking set)", n)
	}
}

func TestNineProjects(t *testing.T) {
	set := map[string]bool{}
	for _, k := range GoKer() {
		set[k.Project] = true
	}
	var projects []string
	for p := range set {
		projects = append(projects, p)
	}
	sort.Strings(projects)
	want := []string{"cockroach", "etcd", "grpc", "hugo", "istio", "kubernetes", "moby", "serving", "syncthing"}
	if len(projects) != len(want) {
		t.Fatalf("projects = %v, want the paper's 9", projects)
	}
	for i, p := range want {
		if projects[i] != p {
			t.Fatalf("projects = %v, want %v", projects, want)
		}
	}
}

func TestKernelMetadata(t *testing.T) {
	for _, k := range All() {
		if !strings.HasPrefix(k.ID, k.Project+"_") {
			t.Errorf("%s: ID not prefixed by project %q", k.ID, k.Project)
		}
		if k.Description == "" {
			t.Errorf("%s: missing description", k.ID)
		}
		if k.Cause.String() == "" {
			t.Errorf("%s: bad cause", k.ID)
		}
	}
}

func TestByID(t *testing.T) {
	k, ok := ByID("moby_28462")
	if !ok || k.Project != "moby" {
		t.Fatalf("ByID(moby_28462) = %+v, %v", k, ok)
	}
	if _, ok := ByID("nope_1"); ok {
		t.Fatal("unknown ID resolved")
	}
}

// TestEveryBugManifests is the suite's core guarantee: for every kernel,
// some schedule within a bounded search (seeds × delay bounds) produces
// the expected symptom, and GoAT detects it.
func TestEveryBugManifests(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			budget := 60
			if k.Rare {
				budget = 400
			}
			for _, delays := range []int{0, 1, 2, 3, 4} {
				for seed := int64(0); seed < int64(budget); seed++ {
					r := Run(k, sim.Options{Seed: seed, Delays: delays})
					if symptomMatches(k.Expect, r.Outcome) {
						if d := (detect.Goat{}).Detect(r); !d.Found {
							t.Fatalf("symptom %v occurred but GoAT missed it: %+v", r.Outcome, d)
						}
						return
					}
					if r.Outcome == sim.OutcomeCrash && k.Expect != "CRASH" {
						t.Fatalf("unexpected crash (seed %d, D=%d): %v", seed, delays, r.PanicVal)
					}
				}
			}
			t.Fatalf("expected symptom %s never manifested", k.Expect)
		})
	}
}

func symptomMatches(expect string, outcome sim.Outcome) bool {
	switch expect {
	case "PDL":
		return outcome == sim.OutcomeLeak
	case "GDL":
		return outcome == sim.OutcomeGlobalDeadlock || outcome == sim.OutcomeTimeout
	case "CRASH":
		return outcome == sim.OutcomeCrash
	}
	return false
}

// TestNonRareKernelsBiteQuickly: kernels not marked Rare must manifest
// within a handful of native (D=0) executions.
func TestNonRareKernelsBiteQuickly(t *testing.T) {
	for _, k := range All() {
		if k.Rare {
			continue
		}
		hit := false
		for seed := int64(0); seed < 20; seed++ {
			r := Run(k, sim.Options{Seed: seed})
			if symptomMatches(k.Expect, r.Outcome) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("%s: non-rare kernel did not bite within 20 native runs", k.ID)
		}
	}
}

// TestKernelsNeverPanicUnexpectedly sweeps schedules checking kernels stay
// within their declared symptom space.
func TestKernelsNeverPanicUnexpectedly(t *testing.T) {
	for _, k := range All() {
		if k.Expect == "CRASH" {
			continue
		}
		for seed := int64(100); seed < 130; seed++ {
			r := Run(k, sim.Options{Seed: seed, Delays: 3})
			if r.Outcome == sim.OutcomeCrash {
				t.Errorf("%s: crashed under seed %d: %v", k.ID, seed, r.PanicVal)
				break
			}
		}
	}
}

// TestRareKernelsAreSometimesHealthy: a Rare kernel must also have healthy
// runs — otherwise it is not schedule-dependent at all.
func TestRareKernelsAreSometimesHealthy(t *testing.T) {
	for _, k := range All() {
		if !k.Rare {
			continue
		}
		healthy := false
		for seed := int64(0); seed < 100 && !healthy; seed++ {
			r := Run(k, sim.Options{Seed: seed})
			healthy = r.Outcome == sim.OutcomeOK
		}
		if !healthy {
			t.Errorf("%s: marked Rare but never completed OK in 100 native runs", k.ID)
		}
	}
}

func TestTracesValidAcrossSuite(t *testing.T) {
	for _, k := range All() {
		r := Run(k, sim.Options{Seed: 1, Delays: 1})
		if r.Trace == nil {
			t.Fatalf("%s: no trace", k.ID)
		}
		if err := r.Trace.Validate(); err != nil {
			t.Errorf("%s: invalid trace: %v", k.ID, err)
		}
	}
}

// TestCauseTaxonomyConsistent: a kernel's trace must exercise the
// primitive classes its declared root cause implies — resource deadlocks
// involve locks, communication deadlocks involve channels/conds, mixed
// ones involve both.
func TestCauseTaxonomyConsistent(t *testing.T) {
	classOf := func(e trace.Event) (lock, comm bool) {
		switch e.Type {
		case trace.EvMutexLock, trace.EvRWLock, trace.EvRLock:
			return true, false
		case trace.EvChanSend, trace.EvChanRecv, trace.EvChanClose,
			trace.EvSelect, trace.EvCondWait, trace.EvCondSignal,
			trace.EvCondBroadcast, trace.EvWgWait, trace.EvOnceDo:
			return false, true
		case trace.EvGoBlock:
			// An op that never completes emits only its block event.
			switch e.BlockReason() {
			case trace.BlockMutex, trace.BlockRMutex:
				return true, false
			case trace.BlockSend, trace.BlockRecv, trace.BlockSelect,
				trace.BlockCond, trace.BlockWaitGroup, trace.BlockSync:
				return false, true
			}
		}
		return false, false
	}
	for _, k := range All() {
		var lock, comm bool
		// Union over a few schedules: some classes only appear on some paths.
		for seed := int64(0); seed < 10; seed++ {
			r := Run(k, sim.Options{Seed: seed, Delays: 2})
			for _, e := range r.Trace.Events {
				l, c := classOf(e)
				lock = lock || l
				comm = comm || c
			}
		}
		switch k.Cause {
		case ResourceDeadlock:
			if !lock {
				t.Errorf("%s: resource deadlock without lock events", k.ID)
			}
		case CommunicationDeadlock:
			if !comm {
				t.Errorf("%s: communication deadlock without channel/cond events", k.ID)
			}
		case MixedDeadlock:
			if !lock || !comm {
				t.Errorf("%s: mixed deadlock missing a class (lock=%v comm=%v)", k.ID, lock, comm)
			}
		}
	}
}
