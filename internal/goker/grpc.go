package goker

import (
	"goat/internal/conc"
	"goat/internal/sim"
)

func init() {
	register(Kernel{
		ID: "grpc_660", Project: "grpc", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "benchmark server: the stats goroutine sends on an unbuffered channel after the harness stopped reading.",
		Main:        grpc660,
	})
	register(Kernel{
		ID: "grpc_795", Project: "grpc", Cause: ResourceDeadlock, Expect: "GDL",
		Description: "roundrobin balancer: Close re-acquires the balancer mutex already held by the caller through the watch path.",
		Main:        grpc795,
	})
	register(Kernel{
		ID: "grpc_862", Project: "grpc", Cause: CommunicationDeadlock, Expect: "PDL", Rare: true,
		Description: "clientconn: the cancel watcher exits via ctx.Done while resetTransport is parked sending the ready signal; the reset goroutine leaks.",
		Main:        grpc862,
	})
	register(Kernel{
		ID: "grpc_1275", Project: "grpc", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "transport: recvBufferReader waits for data the closed stream will never deliver because CloseStream skipped the notification.",
		Main:        grpc1275,
	})
	register(Kernel{
		ID: "grpc_1353", Project: "grpc", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "addrConn: transportMonitor waits on the closing event that teardown's fast path never emits.",
		Main:        grpc1353,
	})
	register(Kernel{
		ID: "grpc_1460", Project: "grpc", Cause: MixedDeadlock, Expect: "GDL",
		Description: "http2Client: GracefulClose holds the transport mutex while flushing control frames; the loopy writer needs the mutex to drain them.",
		Main:        grpc1460,
	})
	register(Kernel{
		ID: "grpc_1687", Project: "grpc", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "server stats: handleStream and Stop take the server mutex and the stream mutex in opposite orders.",
		Main:        grpc1687,
	})
	register(Kernel{
		ID: "grpc_3017", Project: "grpc", Cause: CommunicationDeadlock, Expect: "GDL", Rare: true,
		Description: "resolver/balancer wrapper: two update loops forward to each other over unbuffered channels; mirrored select commits strand both.",
		Main:        grpc3017,
	})
}

// grpc660: stats sender leaks after the harness stops reading.
func grpc660(g *sim.G) {
	stats := conc.NewChan[int](g, 0)
	g.Go("statsSender", func(c *sim.G) {
		for i := 0; i < 2; i++ {
			stats.Send(c, i) // second send leaks
		}
	})
	stats.Recv(g)
	// BUG: harness returns after one sample.
}

// grpc795: Close double-locks through the watcher path.
func grpc795(g *sim.G) {
	mu := conc.NewMutex(g)
	closeBalancer := func(c *sim.G) {
		mu.Lock(c) // BUG: caller already holds mu
		mu.Unlock(c)
	}
	mu.Lock(g)
	closeBalancer(g)
	mu.Unlock(g)
}

// grpc862: reset goroutine parks on ready while the watcher exits on cancel.
func grpc862(g *sim.G) {
	ctx, cancel := conc.WithCancel(g)
	ready := conc.NewChan[struct{}](g, 0)
	g.Go("resetTransport", func(c *sim.G) {
		ready.Send(c, struct{}{}) // leaks when the watcher exits first
	})
	g.Go("watcher", func(c *sim.G) {
		idx, _, _ := conc.Select(c, []conc.Case{
			conc.CaseRecv(ready),
			conc.CaseRecv(ctx.Done()),
		}, false)
		_ = idx // BUG: the ctx case returns without draining ready
	})
	cancel(g)
	conc.Sleep(g, 200)
}

// grpc1275: CloseStream forgets to wake the pending reader.
func grpc1275(g *sim.G) {
	recvData := conc.NewChan[int](g, 0)
	g.Go("reader", func(c *sim.G) {
		recvData.Recv(c) // leaks: close path never feeds or closes it
	})
	streamClosed := true
	if streamClosed {
		return // BUG: missing close(recvData)
	}
	recvData.Send(g, 1)
}

// grpc1353: teardown's fast path skips the closing event.
func grpc1353(g *sim.G) {
	closing := conc.NewChan[struct{}](g, 0)
	g.Go("transportMonitor", func(c *sim.G) {
		closing.Recv(c) // leaks on the fast path
	})
	fastPath := true
	if !fastPath {
		closing.Close(g)
	}
}

// grpc1460: GracefulClose holds the mutex the loopy writer needs.
func grpc1460(g *sim.G) {
	transportMu := conc.NewMutex(g)
	controlBuf := conc.NewChan[int](g, 0)
	g.Go("loopyWriter", func(c *sim.G) {
		transportMu.Lock(c) // BUG: needs the mutex to drain
		controlBuf.Recv(c)
		transportMu.Unlock(c)
	})
	transportMu.Lock(g)
	controlBuf.Send(g, 1) // blocks holding the mutex
	transportMu.Unlock(g)
}

// grpc1687: AB-BA between the server mutex and the stream mutex.
func grpc1687(g *sim.G) {
	serverMu := conc.NewMutex(g)
	streamMu := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	wg.Add(g, 2)
	g.Go("handleStream", func(c *sim.G) {
		serverMu.Lock(c)
		streamMu.Lock(c)
		streamMu.Unlock(c)
		serverMu.Unlock(c)
		wg.Done(c)
	})
	g.Go("stop", func(c *sim.G) {
		streamMu.Lock(c)
		serverMu.Lock(c)
		serverMu.Unlock(c)
		streamMu.Unlock(c)
		wg.Done(c)
	})
	wg.Wait(g)
}

// grpc3017: two forwarding loops over unbuffered channels; each can bail
// out on its peer's token and strand the other.
func grpc3017(g *sim.G) {
	resolverCh := conc.NewChan[int](g, 0)
	balancerCh := conc.NewChan[int](g, 0)
	done := conc.NewChan[struct{}](g, 0)
	g.Go("resolverLoop", func(c *sim.G) {
		for i := 0; i < 2; i++ {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseSend(balancerCh, i),
				conc.CaseRecv(resolverCh),
			}, false)
			if idx == 1 {
				return // BUG: treats feedback as shutdown
			}
		}
		done.Close(c)
	})
	g.Go("balancerLoop", func(c *sim.G) {
		for i := 0; i < 2; i++ {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseRecv(balancerCh),
				conc.CaseSend(resolverCh, i),
			}, false)
			if idx == 1 {
				return // BUG: stops after sending feedback
			}
		}
	})
	done.Recv(g)
}
