package goker

import (
	"fmt"
	"sort"
	"testing"

	"goat/internal/conc"
	"goat/internal/hb"
	"goat/internal/race"
	"goat/internal/sim"
	"goat/internal/trace"
)

// The happens-before layer must be insensitive to how events reach it:
// for every registered kernel, an hb.Engine attached live as an event
// sink builds the same graph as a post-hoc replay of the buffered trace,
// in both edge modes. And the rebased race checker must report exactly
// what the pre-rebase implementation (embedded below as a reference)
// reported, on every kernel.

func TestHBStreamingEqualsPostHoc(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			for _, mode := range []hb.Mode{hb.Full, hb.Must} {
				live := hb.NewEngine(mode)
				opts := sim.Options{Seed: 3, Delays: 2, MaxSteps: 50000}
				opts.Sinks = []trace.Sink{live}
				r := Run(k, opts)
				post := hb.FromTrace(r.Trace, mode)
				if !live.Snapshot().Equal(post) {
					t.Fatalf("mode %d: streaming graph differs from post-hoc (events %d vs %d, footprint %x vs %x)",
						mode, live.Events(), post.Events, live.Footprint(), post.Footprint)
				}
			}
		})
	}
}

func TestRaceCheckerMatchesLegacy(t *testing.T) {
	compare := func(t *testing.T, tr *trace.Trace) int {
		t.Helper()
		got := race.Check(tr)
		want := legacyCheck(tr)
		if len(got) != len(want) {
			t.Fatalf("race count: got %d, legacy %d", len(got), len(want))
		}
		for i := range got {
			if got[i].String() != want[i].String() {
				t.Fatalf("race %d:\n  got    %s\n  legacy %s", i, got[i], want[i])
			}
		}
		return len(got)
	}
	// Every kernel trace (no Shared cells — both checkers must agree on
	// reporting nothing, exercising the full edge vocabulary).
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			r := Run(k, sim.Options{Seed: 3, Delays: 2, MaxSteps: 50000})
			compare(t, r.Trace)
		})
	}
	// Synthetic racy programs, so the comparison is exercised on non-empty
	// reports too (the kernels do not touch Shared cells).
	racy := map[string]func(*sim.G){
		"plain-writes": func(g *sim.G) {
			x := conc.NewShared(g, "x", 0)
			wg := conc.NewWaitGroup(g)
			for i := 0; i < 3; i++ {
				wg.Add(g, 1)
				g.Go("w", func(c *sim.G) {
					x.Store(c, 1)
					wg.Done(c)
				})
			}
			wg.Wait(g)
		},
		"read-vs-write": func(g *sim.G) {
			x := conc.NewShared(g, "flag", 0)
			done := conc.NewChan[int](g, 0)
			g.Go("reader", func(c *sim.G) {
				x.Load(c)
				done.Send(c, 1)
			})
			x.Store(g, 1)
			done.Recv(g)
		},
		"mixed-sync": func(g *sim.G) {
			x := conc.NewShared(g, "v", 0)
			mu := conc.NewMutex(g)
			done := conc.NewChan[int](g, 1)
			g.Go("locked", func(c *sim.G) {
				mu.Lock(c)
				x.Store(c, 2)
				mu.Unlock(c)
				done.Send(c, 1)
			})
			x.Store(g, 1) // not under mu: races with the locked writer
			done.Recv(g)
		},
	}
	nonEmpty := 0
	for name, prog := range racy {
		name, prog := name, prog
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				r := sim.Run(sim.Options{Seed: seed, PreemptProb: -1}, prog)
				if compare(t, r.Trace) > 0 {
					nonEmpty++
				}
			}
		})
	}
	if nonEmpty == 0 {
		t.Error("no synthetic program produced a race — the equivalence check is vacuous")
	}
}

// ---------------------------------------------------------------------
// The pre-rebase race checker, verbatim in structure: a self-contained
// vector-clock replay whose output race.Check must reproduce exactly.

type legacyVC map[trace.GoID]int64

func (v legacyVC) clone() legacyVC {
	out := make(legacyVC, len(v))
	for g, t := range v {
		out[g] = t
	}
	return out
}

func (v legacyVC) join(other legacyVC) {
	for g, t := range other {
		if t > v[g] {
			v[g] = t
		}
	}
}

func (v legacyVC) leq(other legacyVC) bool {
	for g, t := range v {
		if t > other[g] {
			return false
		}
	}
	return true
}

type legacyAccess struct {
	g     trace.GoID
	write bool
	file  string
	line  int
	name  string
	ts    int64
	vc    legacyVC
}

func (a legacyAccess) kind() string {
	if a.write {
		return "write"
	}
	return "read"
}

func legacyCheck(tr *trace.Trace) []race.Race {
	if tr == nil {
		return nil
	}
	clocks := map[trace.GoID]legacyVC{}
	clockOf := func(g trace.GoID) legacyVC {
		if c, ok := clocks[g]; ok {
			return c
		}
		c := legacyVC{}
		clocks[g] = c
		return c
	}

	lockVC := map[trace.ResID]legacyVC{}
	closeVC := map[trace.ResID]legacyVC{}
	sendVC := map[trace.ResID][]legacyVC{}
	wgVC := map[trace.ResID]legacyVC{}

	lastWrite := map[trace.ResID]*legacyAccess{}
	reads := map[trace.ResID][]legacyAccess{}

	var races []race.Race
	seen := map[string]bool{}
	report := func(res trace.ResID, a, b legacyAccess) {
		key := fmt.Sprintf("%d|%s:%d|%s:%d", res, a.file, a.line, b.file, b.line)
		if seen[key] {
			return
		}
		seen[key] = true
		races = append(races, race.Race{
			Var:    res,
			Name:   b.name,
			First:  race.Conflict{G: a.g, Kind: a.kind(), File: a.file, Line: a.line, Ts: a.ts},
			Second: race.Conflict{G: b.g, Kind: b.kind(), File: b.file, Line: b.line, Ts: b.ts},
		})
	}

	for _, e := range tr.Events {
		vc := clockOf(e.G)
		vc[e.G]++

		switch e.Type {
		case trace.EvGoCreate:
			child := vc.clone()
			child[e.Peer] = child[e.Peer] + 1
			clocks[e.Peer] = child
		case trace.EvGoUnblock:
			if e.Peer != 0 && e.Peer != e.G {
				clockOf(e.Peer).join(vc)
			}
		case trace.EvGoBlock:
			if e.BlockReason() == trace.BlockSend {
				sendVC[e.Res] = append(sendVC[e.Res], vc.clone())
			}
		case trace.EvChanSend:
			if !e.Blocked && e.Peer == 0 {
				sendVC[e.Res] = append(sendVC[e.Res], vc.clone())
			}
		case trace.EvChanRecv:
			if !e.Blocked && e.Aux == 1 {
				if q := sendVC[e.Res]; len(q) > 0 {
					vc.join(q[0])
					sendVC[e.Res] = q[1:]
				}
			}
			if e.Aux == 0 {
				if cvc, ok := closeVC[e.Res]; ok {
					vc.join(cvc)
				}
			}
		case trace.EvSelectCase:
			if e.Blocked {
				break
			}
			if e.Str == "send" && e.Peer == 0 {
				sendVC[e.Res] = append(sendVC[e.Res], vc.clone())
			}
			if e.Str == "recv" {
				if q := sendVC[e.Res]; len(q) > 0 {
					vc.join(q[0])
					sendVC[e.Res] = q[1:]
				}
			}
		case trace.EvChanClose:
			closeVC[e.Res] = vc.clone()
		case trace.EvMutexUnlock, trace.EvRWUnlock, trace.EvRUnlock:
			acc, ok := lockVC[e.Res]
			if !ok {
				acc = legacyVC{}
				lockVC[e.Res] = acc
			}
			acc.join(vc)
		case trace.EvMutexLock, trace.EvRWLock, trace.EvRLock:
			if acc, ok := lockVC[e.Res]; ok {
				vc.join(acc)
			}
		case trace.EvWgAdd:
			if e.Aux < 0 {
				acc, ok := wgVC[e.Res]
				if !ok {
					acc = legacyVC{}
					wgVC[e.Res] = acc
				}
				acc.join(vc)
			}
		case trace.EvWgWait:
			if acc, ok := wgVC[e.Res]; ok {
				vc.join(acc)
			}
		case trace.EvVarRead:
			a := legacyAccess{g: e.G, file: e.File, line: e.Line, name: e.Str, ts: e.Ts, vc: vc.clone()}
			if w := lastWrite[e.Res]; w != nil && w.g != a.g && !w.vc.leq(a.vc) {
				report(e.Res, *w, a)
			}
			reads[e.Res] = append(reads[e.Res], a)
		case trace.EvVarWrite:
			a := legacyAccess{g: e.G, write: true, file: e.File, line: e.Line, name: e.Str, ts: e.Ts, vc: vc.clone()}
			if w := lastWrite[e.Res]; w != nil && w.g != a.g && !w.vc.leq(a.vc) {
				report(e.Res, *w, a)
			}
			for _, r := range reads[e.Res] {
				if r.g != a.g && !r.vc.leq(a.vc) {
					report(e.Res, r, a)
				}
			}
			w := a
			lastWrite[e.Res] = &w
			reads[e.Res] = nil
		}
	}
	sort.Slice(races, func(i, j int) bool { return races[i].Second.Ts < races[j].Second.Ts })
	return races
}
