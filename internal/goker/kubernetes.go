package goker

import (
	"goat/internal/conc"
	"goat/internal/sim"
)

func init() {
	register(Kernel{
		ID: "kubernetes_1321", Project: "kubernetes", Cause: CommunicationDeadlock, Expect: "PDL", Rare: true,
		Description: "watch mux: a watcher unregisters while the distributor is blocked sending to its unbuffered result channel; the distributor leaks.",
		Main:        kubernetes1321,
	})
	register(Kernel{
		ID: "kubernetes_5316", Project: "kubernetes", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "kubelet prober: result is sent to an unbuffered channel after the receiver returned on an earlier error.",
		Main:        kubernetes5316,
	})
	register(Kernel{
		ID: "kubernetes_6632", Project: "kubernetes", Cause: MixedDeadlock, Expect: "PDL", Rare: true,
		Description: "kubelet: a writer holds the pod-status lock while sending on a full channel; the channel drainer needs the same lock first (the bug only GoAT detected).",
		Main:        kubernetes6632,
	})
	register(Kernel{
		ID: "kubernetes_10182", Project: "kubernetes", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "controller-manager: status updater and node monitor take the node lock and the store lock in opposite orders.",
		Main:        kubernetes10182,
	})
	register(Kernel{
		ID: "kubernetes_11298", Project: "kubernetes", Cause: CommunicationDeadlock, Expect: "GDL", Rare: true,
		Description: "scheduler extender: nested selects in nested loops over signal channels plus a condition variable; the coverage case study (Fig. 6b).",
		Main:        kubernetes11298,
	})
	register(Kernel{
		ID: "kubernetes_13135", Project: "kubernetes", Cause: CommunicationDeadlock, Expect: "PDL", Rare: true,
		Description: "storage cacher: Stop flips the stopped flag without broadcasting; a reflector already parked in cond.Wait leaks.",
		Main:        kubernetes13135,
	})
	register(Kernel{
		ID: "kubernetes_16851", Project: "kubernetes", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "e2e framework: error path returns before draining the results channel; all workers leak on send.",
		Main:        kubernetes16851,
	})
	register(Kernel{
		ID: "kubernetes_25331", Project: "kubernetes", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "watch chan: cancellation closes the stop channel but the event loop's select forgets to watch it, leaking the loop.",
		Main:        kubernetes25331,
	})
	register(Kernel{
		ID: "kubernetes_26980", Project: "kubernetes", Cause: MixedDeadlock, Expect: "PDL",
		Description: "pod worker: processNextWorkItem holds the queue lock while pushing to an unbuffered channel whose consumer needs the lock.",
		Main:        kubernetes26980,
	})
	register(Kernel{
		ID: "kubernetes_30872", Project: "kubernetes", Cause: ResourceDeadlock, Expect: "GDL",
		Description: "federation controller: RemoveCluster's error path forgets to release the cluster lock; the next reconcile blocks forever.",
		Main:        kubernetes30872,
	})
	register(Kernel{
		ID: "kubernetes_38669", Project: "kubernetes", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "cacher watch: dispatchEvent sends to a stopped watcher's channel; without the terminated check the dispatcher leaks.",
		Main:        kubernetes38669,
	})
	register(Kernel{
		ID: "kubernetes_58107", Project: "kubernetes", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "resource quota: readers of the registry RWMutex deadlock with a writer when a reader re-enters RLock after the writer queued.",
		Main:        kubernetes58107,
	})
	register(Kernel{
		ID: "kubernetes_62464", Project: "kubernetes", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "CPU manager: reconcileState and removeContainer take the state lock and the container lock in opposite orders.",
		Main:        kubernetes62464,
	})
	register(Kernel{
		ID: "kubernetes_70277", Project: "kubernetes", Cause: CommunicationDeadlock, Expect: "GDL", Rare: true,
		Description: "wait.poller: the until loop misses the done signal when the tick and the stop race; the poller waits on a channel nobody feeds.",
		Main:        kubernetes70277,
	})
}

// kubernetes1321: the watcher's error path forgets to unregister, so the
// distributor stays parked on its send case forever.
func kubernetes1321(g *sim.G) {
	result := conc.NewChan[int](g, 0)
	unregistered := conc.NewChan[struct{}](g, 0)
	errCh := conc.NewChan[struct{}](g, 0)
	g.Go("distributor", func(c *sim.G) {
		for i := 0; i < 2; i++ {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseSend(result, i),
				conc.CaseRecv(unregistered),
			}, false)
			if idx == 1 {
				return
			}
		}
	})
	g.Go("failer", func(c *sim.G) { errCh.Close(c) })
	g.Go("watcher", func(c *sim.G) {
		for {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseRecv(result),
				conc.CaseRecv(errCh),
			}, false)
			if idx == 1 {
				return // BUG: error path forgets close(unregistered)
			}
		}
	})
	conc.Sleep(g, 200)
}

// kubernetes5316: probe result sent after the manager errored out.
func kubernetes5316(g *sim.G) {
	results := conc.NewChan[string](g, 0)
	g.Go("prober", func(c *sim.G) {
		results.Send(c, "healthy") // leaks: manager returned early
	})
	managerFailed := true
	if managerFailed {
		return
	}
	results.Recv(g)
}

// kubernetes6632: the writer checks buffer occupancy outside the
// send, so a filler landing inside the narrow check-to-send window makes
// the guarded send block holding the lock the drainer needs. The window
// only opens under a preemption between the writer's check and its send —
// the bug the paper reports only GoAT (after a couple of executions)
// could expose.
func kubernetes6632(g *sim.G) {
	mu := conc.NewMutex(g)
	updates := conc.NewChan[int](g, 1)
	gate := conc.NewChan[struct{}](g, 1)
	g.Go("writer", func(c *sim.G) {
		gate.TrySend(c, struct{}{}) // announce the update round
		if updates.Len(c) == 0 {     // believed-free buffer...
			mu.Lock(c)
			updates.Send(c, 1) // ...BUG: may have filled meanwhile
			mu.Unlock(c)
		}
	})
	g.Go("poker", func(c *sim.G) {
		if gate.Len(c) == 0 { // no round announced: pre-fill the cache
			if updates.Len(c) == 0 {
				updates.TrySend(c, 0)
			}
		}
	})
	g.Go("drainer", func(c *sim.G) {
		mu.Lock(c) // takes the lock before draining
		if updates.Len(c) > 0 {
			updates.Recv(c)
		}
		mu.Unlock(c)
	})
	conc.Sleep(g, 300)
}

// kubernetes10182: AB-BA between node lock and store lock.
func kubernetes10182(g *sim.G) {
	nodeLock := conc.NewMutex(g)
	storeLock := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	wg.Add(g, 2)
	g.Go("statusUpdater", func(c *sim.G) {
		nodeLock.Lock(c)
		storeLock.Lock(c)
		storeLock.Unlock(c)
		nodeLock.Unlock(c)
		wg.Done(c)
	})
	g.Go("nodeMonitor", func(c *sim.G) {
		storeLock.Lock(c)
		nodeLock.Lock(c)
		nodeLock.Unlock(c)
		storeLock.Unlock(c)
		wg.Done(c)
	})
	wg.Wait(g)
}

// kubernetes11298: nested selects in nested loops with a signal fan-in —
// the Fig. 6b coverage case study. The stop broadcast can be missed when
// the inner select commits to the data case at the same instant.
func kubernetes11298(g *sim.G) {
	data := conc.NewChan[int](g, 1)
	signal := conc.NewChan[struct{}](g, 0)
	done := conc.NewChan[struct{}](g, 0)
	mu := conc.NewMutex(g)
	cond := conc.NewCond(g, mu)

	g.Go("extender", func(c *sim.G) {
		for round := 0; ; round++ {
			stop := false
			for {
				idx, _, ok := conc.Select(c, []conc.Case{
					conc.CaseRecv(data),
					conc.CaseRecv(signal),
				}, false)
				if idx == 1 || !ok {
					stop = true
					break
				}
				inner, _, _ := conc.Select(c, []conc.Case{
					conc.CaseSend(data, round),
					conc.CaseRecv(done),
				}, true)
				if inner == 1 {
					stop = true
					break
				}
				if inner == conc.DefaultIdx {
					break
				}
			}
			if stop {
				mu.Lock(c)
				cond.Signal(c) // BUG: fires even if the waiter is not waiting yet
				mu.Unlock(c)
				done.Close(c)
				return
			}
		}
	})
	g.Go("feeder", func(c *sim.G) {
		data.Send(c, 0)
		signal.Close(c) // stop request
	})
	mu.Lock(g)
	cond.Wait(g) // BUG: unconditional wait misses an early signal
	mu.Unlock(g)
	done.Recv(g)
}

// kubernetes13135: Stop flips the flag but never broadcasts; a reflector
// that managed to park in cond.Wait first leaks forever.
func kubernetes13135(g *sim.G) {
	mu := conc.NewMutex(g)
	cond := conc.NewCond(g, mu)
	stopped := false
	g.Go("reflector", func(c *sim.G) {
		mu.Lock(c)
		for !stopped {
			cond.Wait(c) // BUG: Stop never signals; leaks if parked first
		}
		mu.Unlock(c)
	})
	mu.Lock(g)
	stopped = true
	mu.Unlock(g)
}

// kubernetes16851: workers all block sending results nobody drains.
func kubernetes16851(g *sim.G) {
	results := conc.NewChan[int](g, 0)
	for i := 0; i < 3; i++ {
		i := i
		g.Go("worker", func(c *sim.G) {
			results.Send(c, i) // leaks: collector returns early below
		})
	}
	setupFailed := true
	if setupFailed {
		return // BUG: early return without draining results
	}
	for i := 0; i < 3; i++ {
		results.Recv(g)
	}
}

// kubernetes25331: event loop's select does not watch the stop channel.
func kubernetes25331(g *sim.G) {
	events := conc.NewChan[int](g, 0)
	stop := conc.NewChan[struct{}](g, 0)
	g.Go("eventLoop", func(c *sim.G) {
		for {
			// BUG: select should include CaseRecv(stop).
			v, ok := events.Recv(c)
			if !ok {
				return
			}
			_ = v
		}
	})
	g.Go("canceller", func(c *sim.G) {
		stop.Close(c) // nobody is watching
	})
	events.Send(g, 1)
	// main returns; the loop leaks blocked on the next Recv
}

// kubernetes26980: queue lock held across an unbuffered handoff.
func kubernetes26980(g *sim.G) {
	queueLock := conc.NewMutex(g)
	work := conc.NewChan[int](g, 0)
	g.Go("processNext", func(c *sim.G) {
		queueLock.Lock(c)
		work.Send(c, 7) // blocks holding the lock until a consumer arrives
		queueLock.Unlock(c)
	})
	g.Go("consumer", func(c *sim.G) {
		queueLock.Lock(c) // BUG: consumer takes the lock before receiving
		work.Recv(c)
		queueLock.Unlock(c)
	})
	conc.Sleep(g, 200)
}

// kubernetes30872: error path leaks the cluster lock.
func kubernetes30872(g *sim.G) {
	clusterLock := conc.NewMutex(g)
	removeCluster := func(c *sim.G, fail bool) {
		clusterLock.Lock(c)
		if fail {
			return // BUG: missing Unlock
		}
		clusterLock.Unlock(c)
	}
	removeCluster(g, true)
	removeCluster(g, false) // blocks forever
}

// kubernetes38669: dispatch to a watcher that stopped.
func kubernetes38669(g *sim.G) {
	ch := conc.NewChan[int](g, 1)
	ch.Send(g, 0) // watcher's buffer is full at stop time
	g.Go("dispatcher", func(c *sim.G) {
		ch.Send(c, 1) // BUG: no terminated check; leaks on the full buffer
	})
	// The watcher stops without draining.
	g.Yield()
}

// kubernetes58107: reader re-enters RLock behind a queued writer.
func kubernetes58107(g *sim.G) {
	registry := conc.NewRWMutex(g)
	g.Go("resync", func(c *sim.G) {
		registry.Lock(c)
		registry.Unlock(c)
	})
	registry.RLock(g)
	registry.RLock(g) // deadlocks when resync's writer queued in between
	registry.RUnlock(g)
	registry.RUnlock(g)
}

// kubernetes62464: AB-BA between the state lock and the container lock.
func kubernetes62464(g *sim.G) {
	stateLock := conc.NewMutex(g)
	containerLock := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	wg.Add(g, 2)
	g.Go("reconcile", func(c *sim.G) {
		stateLock.Lock(c)
		containerLock.Lock(c)
		containerLock.Unlock(c)
		stateLock.Unlock(c)
		wg.Done(c)
	})
	g.Go("remove", func(c *sim.G) {
		containerLock.Lock(c)
		stateLock.Lock(c)
		stateLock.Unlock(c)
		containerLock.Unlock(c)
		wg.Done(c)
	})
	wg.Wait(g)
}

// kubernetes70277: the poll loop's done handoff is missed under one
// commit order and main waits on a channel nobody will feed.
func kubernetes70277(g *sim.G) {
	tick := conc.NewChan[struct{}](g, 1)
	stop := conc.NewChan[struct{}](g, 0)
	done := conc.NewChan[struct{}](g, 0)
	g.Go("poller", func(c *sim.G) {
		tick.Send(c, struct{}{})
		for {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseRecv(tick),
				conc.CaseRecv(stop),
			}, false)
			if idx == 1 {
				return // BUG: returns without sending done
			}
			done.Send(c, struct{}{})
			return
		}
	})
	g.Go("stopper", func(c *sim.G) {
		stop.Close(c)
	})
	done.Recv(g) // deadlocks when the poller took the stop case
}
