package goker

import (
	"goat/internal/conc"
	"goat/internal/sim"
)

func init() {
	register(Kernel{
		ID: "hugo_3251", Project: "hugo", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "site build: the once-guarded loader waits for a signal only the second once-caller could send — but that caller is parked inside the same Once.",
		Main:        hugo3251,
	})
	register(Kernel{
		ID: "hugo_5379", Project: "hugo", Cause: CommunicationDeadlock, Expect: "GDL",
		Description: "page collector: the producer never closes the pages channel, so the consuming range blocks after the last page.",
		Main:        hugo5379,
	})
	register(Kernel{
		ID: "istio_16224", Project: "istio", Cause: MixedDeadlock, Expect: "GDL",
		Description: "config store: the notifier sends on an unbuffered event channel while holding the store mutex the handler needs before receiving.",
		Main:        istio16224,
	})
	register(Kernel{
		ID: "istio_17860", Project: "istio", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "proxy agent: the worker's cancel path skips the terminal status; the status reader loops waiting for a sentinel that never arrives.",
		Main:        istio17860,
	})
	register(Kernel{
		ID: "istio_18454", Project: "istio", Cause: ResourceDeadlock, Expect: "GDL",
		Description: "galley processor: a writer re-enters its own RWMutex with RLock (write-to-read re-entry self-deadlock).",
		Main:        istio18454,
	})
	register(Kernel{
		ID: "serving_2137", Project: "serving", Cause: MixedDeadlock, Expect: "PDL", Rare: true,
		Description: "breaker: two requests check the token buffer under the lock but release outside it; both observe a free slot, the second release blocks on the full buffer forever (the bug only D=2 exposed in the paper).",
		Main:        serving2137,
	})
	register(Kernel{
		ID: "syncthing_4829", Project: "syncthing", Cause: MixedDeadlock, Expect: "GDL",
		Description: "service Stop: holds the service mutex while waiting for the loop's exit signal; the loop needs that mutex before signalling.",
		Main:        syncthing4829,
	})
	register(Kernel{
		ID: "syncthing_5795", Project: "syncthing", Cause: CommunicationDeadlock, Expect: "GDL",
		Description: "puller: the coordinator waits on the WaitGroup before draining results; the worker is parked sending a result and can never Done.",
		Main:        syncthing5795,
	})
}

// hugo3251: circular wait between a Once body and a second Once caller.
func hugo3251(g *sim.G) {
	once := conc.NewOnce(g)
	loaded := conc.NewChan[struct{}](g, 0)
	g.Go("builder", func(c *sim.G) {
		once.Do(c, func() {
			loaded.Recv(c) // waits for the renderer's signal
		})
	})
	g.Go("renderer", func(c *sim.G) {
		once.Do(c, func() {}) // parks behind the builder's Do
		loaded.Send(c, struct{}{})
	})
	conc.Sleep(g, 100)
}

// hugo5379: range over a channel the producer never closes.
func hugo5379(g *sim.G) {
	pages := conc.NewChan[int](g, 2)
	g.Go("producer", func(c *sim.G) {
		pages.Send(c, 1)
		pages.Send(c, 2)
		// BUG: missing close(pages)
	})
	total := 0
	pages.Range(g, func(v int) bool {
		total += v
		return true
	})
}

// istio16224: notify send under the store mutex vs a locking handler.
func istio16224(g *sim.G) {
	storeMu := conc.NewMutex(g)
	events := conc.NewChan[int](g, 0)
	g.Go("notifier", func(c *sim.G) {
		storeMu.Lock(c)
		events.Send(c, 1) // blocks holding the store mutex
		storeMu.Unlock(c)
	})
	storeMu.Lock(g) // BUG: handler locks before receiving
	events.Recv(g)
	storeMu.Unlock(g)
}

// istio17860: cancel path skips the terminal status sentinel.
func istio17860(g *sim.G) {
	ctx, cancel := conc.WithCancel(g)
	statusCh := conc.NewChan[int](g, 0)
	g.Go("worker", func(c *sim.G) {
		for i := 0; i < 2; i++ {
			idx, _, _ := conc.Select(c, []conc.Case{
				conc.CaseSend(statusCh, i),
				conc.CaseRecv(ctx.Done()),
			}, false)
			if idx == 1 {
				return // BUG: no terminal sentinel on the cancel path
			}
		}
		statusCh.Send(c, -1) // terminal sentinel
	})
	g.Go("reader", func(c *sim.G) {
		for {
			v, _ := statusCh.Recv(c) // leaks when the sentinel is skipped
			if v == -1 {
				return
			}
		}
	})
	cancel(g)
	conc.Sleep(g, 200)
}

// istio18454: write-to-read re-entry on the same RWMutex.
func istio18454(g *sim.G) {
	mu := conc.NewRWMutex(g)
	mu.Lock(g)
	mu.RLock(g) // self-deadlock: the writer is ourselves
	mu.RUnlock(g)
	mu.Unlock(g)
}

// serving2137: check under the lock, release outside it — two requests
// can both observe the free slot and the second blocks forever. The
// buggy window needs a preemption between the unlock and the send.
func serving2137(g *sim.G) {
	mu := conc.NewMutex(g)
	tokens := conc.NewChan[struct{}](g, 1)
	release := func(c *sim.G) {
		mu.Lock(c)
		free := tokens.Len(c) < 1 // check under the lock...
		mu.Unlock(c)
		if free {
			tokens.Send(c, struct{}{}) // ...send outside it (BUG)
		}
	}
	g.Go("request1", func(c *sim.G) { release(c) })
	g.Go("request2", func(c *sim.G) { release(c) })
	conc.Sleep(g, 300)
}

// syncthing4829: Stop waits for the loop under the mutex the loop needs.
func syncthing4829(g *sim.G) {
	serviceMu := conc.NewMutex(g)
	loopDone := conc.NewChan[struct{}](g, 0)
	g.Go("serveLoop", func(c *sim.G) {
		serviceMu.Lock(c) // BUG: needs the mutex Stop is holding
		serviceMu.Unlock(c)
		loopDone.Send(c, struct{}{})
	})
	serviceMu.Lock(g) // Stop
	loopDone.Recv(g)  // waits while holding the mutex
	serviceMu.Unlock(g)
}

// syncthing5795: Wait before drain; the worker can never reach Done.
func syncthing5795(g *sim.G) {
	wg := conc.NewWaitGroup(g)
	results := conc.NewChan[int](g, 0)
	wg.Add(g, 1)
	g.Go("worker", func(c *sim.G) {
		results.Send(c, 7) // parked: main drains only after Wait
		wg.Done(c)
	})
	wg.Wait(g) // BUG: Wait precedes the drain
	results.Recv(g)
}
