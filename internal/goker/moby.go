package goker

import (
	"goat/internal/conc"
	"goat/internal/sim"
)

func init() {
	register(Kernel{
		ID: "moby_4951", Project: "moby", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "devmapper: DeviceSet lock and device lock taken in opposite orders by removeDevice and resumeDevice; AB-BA deadlock under contention.",
		Main:        moby4951,
	})
	register(Kernel{
		ID: "moby_7559", Project: "moby", Cause: ResourceDeadlock, Expect: "GDL",
		Description: "portmapper: error path re-acquires the map lock already held by the caller (double lock).",
		Main:        moby7559,
	})
	register(Kernel{
		ID: "moby_17176", Project: "moby", Cause: ResourceDeadlock, Expect: "GDL",
		Description: "devmapper: deactivateDevice returns early without releasing the devices lock; the next operation blocks forever.",
		Main:        moby17176,
	})
	register(Kernel{
		ID: "moby_21233", Project: "moby", Cause: CommunicationDeadlock, Expect: "PDL", Rare: true,
		Description: "pkg/pubsub test utility: publisher sends after the subscriber timed out and stopped receiving; the send leaks.",
		Main:        moby21233,
	})
	register(Kernel{
		ID: "moby_25348", Project: "moby", Cause: CommunicationDeadlock, Expect: "GDL",
		Description: "distribution: pull error path returns before wg.Done, so the pull coordinator waits on the WaitGroup forever.",
		Main:        moby25348,
	})
	register(Kernel{
		ID: "moby_27051", Project: "moby", Cause: ResourceDeadlock, Expect: "GDL",
		Description: "container store: Get under RLock calls a helper that takes the write lock of the same RWMutex (read-to-write upgrade deadlock).",
		Main:        moby27051,
	})
	register(Kernel{
		ID: "moby_27782", Project: "moby", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "logger: the follower's select lacks the producer-gone case; once the producer exits without closing, the follower leaks in select.",
		Main:        moby27782,
	})
	register(Kernel{
		ID: "moby_28462", Project: "moby", Cause: MixedDeadlock, Expect: "PDL", Rare: true,
		Description: "daemon: Monitor's select default path locks the container mutex while StatusChange holds it and blocks sending on the status channel (the paper's listing 1).",
		Main:        moby28462,
	})
	register(Kernel{
		ID: "moby_29733", Project: "moby", Cause: CommunicationDeadlock, Expect: "GDL",
		Description: "plugins: client waits on a condition variable for an activation that already failed; the error path skips the broadcast.",
		Main:        moby29733,
	})
	register(Kernel{
		ID: "moby_30408", Project: "moby", Cause: CommunicationDeadlock, Expect: "GDL", Rare: true,
		Description: "events: a waiter calls cond.Wait moments after the closer's single Broadcast; the signal is missed and the waiter never wakes.",
		Main:        moby30408,
	})
	register(Kernel{
		ID: "moby_33293", Project: "moby", Cause: CommunicationDeadlock, Expect: "PDL",
		Description: "stats collector: value is sent to an unbuffered channel after the only reader returned on error; the sender goroutine leaks.",
		Main:        moby33293,
	})
	register(Kernel{
		ID: "moby_36114", Project: "moby", Cause: ResourceDeadlock, Expect: "GDL", Rare: true,
		Description: "container: recursive RLock while a writer is queued between the two read acquisitions; writer preference turns the second RLock into a deadlock.",
		Main:        moby36114,
	})
}

// moby4951: AB-BA lock order between the device-set lock and a device lock.
func moby4951(g *sim.G) {
	setLock := conc.NewMutex(g)
	devLock := conc.NewMutex(g)
	wg := conc.NewWaitGroup(g)
	wg.Add(g, 2)
	g.Go("removeDevice", func(c *sim.G) {
		setLock.Lock(c)
		devLock.Lock(c) // set -> dev
		devLock.Unlock(c)
		setLock.Unlock(c)
		wg.Done(c)
	})
	g.Go("resumeDevice", func(c *sim.G) {
		devLock.Lock(c)
		setLock.Lock(c) // dev -> set: inverted
		setLock.Unlock(c)
		devLock.Unlock(c)
		wg.Done(c)
	})
	wg.Wait(g)
}

// moby7559: the error path locks a mutex the caller already holds.
func moby7559(g *sim.G) {
	mapLock := conc.NewMutex(g)
	cleanup := func(c *sim.G) {
		mapLock.Lock(c) // double lock: caller holds mapLock
		mapLock.Unlock(c)
	}
	mapLock.Lock(g)
	cleanup(g)
	mapLock.Unlock(g)
}

// moby17176: early return leaks the lock; the next caller blocks.
func moby17176(g *sim.G) {
	devices := conc.NewMutex(g)
	deactivate := func(c *sim.G, fail bool) {
		devices.Lock(c)
		if fail {
			return // BUG: missing Unlock on the error path
		}
		devices.Unlock(c)
	}
	deactivate(g, true)
	deactivate(g, false) // blocks forever on the leaked lock
}

// moby21233: subscriber races a stop signal against the event stream; when
// stop wins mid-stream the publisher's pending send leaks.
func moby21233(g *sim.G) {
	events := conc.NewChan[int](g, 0)
	stop := conc.NewChan[struct{}](g, 0)
	g.Go("publisher", func(c *sim.G) {
		for i := 0; i < 3; i++ {
			events.Send(c, i) // leaks when the subscriber stops early
		}
	})
	g.Go("canceler", func(c *sim.G) {
		stop.Close(c)
	})
	for received := 0; received < 3; {
		idx, _, _ := conc.Select(g, []conc.Case{
			conc.CaseRecv(events),
			conc.CaseRecv(stop),
		}, false)
		if idx == 1 {
			return // stopped: publisher may still be mid-stream
		}
		received++
	}
}

// moby25348: error path skips wg.Done.
func moby25348(g *sim.G) {
	wg := conc.NewWaitGroup(g)
	results := conc.NewChan[int](g, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(g, 1)
		g.Go("puller", func(c *sim.G) {
			if i == 1 {
				return // BUG: missing wg.Done on the error branch
			}
			results.Send(c, i)
			wg.Done(c)
		})
	}
	wg.Wait(g) // waits forever for the failed puller
	results.Close(g)
}

// moby27051: read-to-write lock upgrade on the same RWMutex.
func moby27051(g *sim.G) {
	store := conc.NewRWMutex(g)
	touch := func(c *sim.G) {
		store.Lock(c) // upgrade attempt while the caller holds RLock
		store.Unlock(c)
	}
	g.Go("janitor", func(c *sim.G) {
		// Concurrent reader makes the window visible under some schedules.
		store.RLock(c)
		conc.Sleep(c, 10)
		store.RUnlock(c)
	})
	store.RLock(g)
	touch(g) // self-deadlock: writer waits for our own read lock
	store.RUnlock(g)
}

// moby27782: follower's select has no "producer gone" case.
func moby27782(g *sim.G) {
	logs := conc.NewChan[int](g, 1)
	done := conc.NewChan[struct{}](g, 0)
	g.Go("follower", func(c *sim.G) {
		for {
			idx, _, ok := conc.Select(c, []conc.Case{
				conc.CaseRecv(logs),
				// BUG: no case watching the producer's lifetime.
			}, false)
			if idx == 0 && !ok {
				return
			}
		}
	})
	g.Go("producer", func(c *sim.G) {
		logs.Send(c, 1)
		// BUG: producer exits without closing logs.
		done.Close(c)
	})
	done.Recv(g)
}

// moby28462: the paper's listing 1 — Monitor vs StatusChange.
func moby28462(g *sim.G) {
	mu := conc.NewMutex(g)
	status := conc.NewChan[int](g, 0)
	g.Go("Monitor", func(c *sim.G) {
		for {
			idx, _, _ := conc.Select(c, []conc.Case{conc.CaseRecv(status)}, true)
			if idx == 0 {
				return // container stopped
			}
			mu.Lock(c)
			mu.Unlock(c)
		}
	})
	g.Go("StatusChange", func(c *sim.G) {
		mu.Lock(c)
		status.Send(c, 1) // blocks holding mu if Monitor is at Lock
		mu.Unlock(c)
	})
	conc.Sleep(g, 500)
}

// moby29733: activation error path forgets the broadcast.
func moby29733(g *sim.G) {
	mu := conc.NewMutex(g)
	activated := conc.NewCond(g, mu)
	ready := false
	g.Go("activate", func(c *sim.G) {
		mu.Lock(c)
		fail := true
		if !fail {
			ready = true
			activated.Broadcast(c)
		}
		// BUG: no broadcast on failure.
		mu.Unlock(c)
	})
	mu.Lock(g)
	for !ready {
		activated.Wait(g) // waits forever after the failed activation
	}
	mu.Unlock(g)
}

// moby30408: single Broadcast races with a late Wait.
func moby30408(g *sim.G) {
	mu := conc.NewMutex(g)
	cond := conc.NewCond(g, mu)
	g.Go("closer", func(c *sim.G) {
		mu.Lock(c)
		cond.Broadcast(c) // fires once; a waiter arriving later misses it
		mu.Unlock(c)
	})
	mu.Lock(g)
	cond.Wait(g) // BUG: no predicate re-check; misses the broadcast
	mu.Unlock(g)
}

// moby33293: send after the reader bailed out.
func moby33293(g *sim.G) {
	stats := conc.NewChan[int](g, 0)
	g.Go("collector", func(c *sim.G) {
		stats.Send(c, 42) // leaks: reader returned on error below
	})
	errHappened := true
	if errHappened {
		return
	}
	stats.Recv(g)
}

// moby36114: recursive read lock with a writer queued in between.
func moby36114(g *sim.G) {
	state := conc.NewRWMutex(g)
	g.Go("checkpoint", func(c *sim.G) {
		state.Lock(c) // queued writer blocks later readers
		state.Unlock(c)
	})
	state.RLock(g)
	// Writer tries to lock here under the buggy schedule.
	state.RLock(g) // BUG: recursive read lock behind the queued writer
	state.RUnlock(g)
	state.RUnlock(g)
}
