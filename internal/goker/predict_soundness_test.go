package goker

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"goat/internal/detect"
	"goat/internal/sim"
)

var updatePredict = flag.Bool("update-predict", false, "rewrite the predictive-detector golden file")

// d0Options is the single passing execution the predictive detector
// mines: the native FIFO-ish schedule at delay bound zero.
func d0Options() sim.Options {
	return sim.Options{Seed: 1, MaxSteps: 50000}
}

// TestPredictiveSoundness pins the predictive detector's behavior on the
// whole suite in one golden file, and checks the two claims that make a
// POTENTIAL verdict trustworthy:
//
//   - coverage: from one passing D=0 trace, at least 20 of the suite's
//     bugs are flagged POTENTIAL;
//   - soundness: every kernel flagged POTENTIAL is confirmed by a
//     manifested detection somewhere in the D ≤ 3 sweep — a predicted
//     hazard that no schedule can realize would be a false alarm.
//
// (The complementary zero-false-positive guarantee on bug-free programs
// is enforced by TestPredictNoFalsePositivesOnSafeKernels over the
// generated safe-kernel corpus in internal/kernelgen.)
func TestPredictiveSoundness(t *testing.T) {
	type line struct {
		id   string
		text string
	}
	var lines []line
	var flagged []string
	passing := 0
	for _, k := range All() {
		r := Run(k, d0Options())
		if r.Outcome.Buggy() {
			lines = append(lines, line{k.ID, fmt.Sprintf("%-22s MANIFEST %s", k.ID, r.Outcome)})
			continue
		}
		passing++
		cands := detect.Predict(r.Trace)
		if len(cands) == 0 {
			lines = append(lines, line{k.ID, fmt.Sprintf("%-22s MISS", k.ID)})
			continue
		}
		flagged = append(flagged, k.ID)
		kinds := make([]string, 0, len(cands))
		for _, c := range cands {
			kinds = append(kinds, c.Kind)
		}
		sort.Strings(kinds)
		lines = append(lines, line{k.ID, fmt.Sprintf("%-22s POTENTIAL-%d %s", k.ID, len(cands), strings.Join(kinds, ","))})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].id < lines[j].id })

	var b strings.Builder
	fmt.Fprintf(&b, "# predictive detector on one D=0 trace per kernel (seed %d)\n", d0Options().Seed)
	fmt.Fprintf(&b, "# %d kernels, %d passing at D=0, %d flagged POTENTIAL\n", len(All()), passing, len(flagged))
	for _, l := range lines {
		b.WriteString(l.text)
		b.WriteString("\n")
	}
	checkPredictGolden(t, b.String())

	if len(flagged) < 20 {
		t.Errorf("only %d kernels flagged POTENTIAL from a single D=0 trace, want >= 20", len(flagged))
	}

	// Soundness: every POTENTIAL must be realizable. The suite consists
	// entirely of real bugs, so a flag is confirmed when some schedule in
	// the D<=3 sweep manifests a detection.
	for _, id := range flagged {
		k, _ := ByID(id)
		if !confirmManifest(k) {
			t.Errorf("%s: flagged POTENTIAL but no manifested detection in the D<=3 sweep (false alarm)", id)
		}
	}
}

// confirmManifest sweeps delay bounds 1..3 for a schedule on which the
// manifest detector fires.
func confirmManifest(k Kernel) bool {
	goat := detect.Goat{}
	for d := 1; d <= 3; d++ {
		for seed := int64(1); seed <= 150; seed++ {
			r := Run(k, sim.Options{Seed: seed, Delays: d, MaxSteps: 50000})
			if goat.Detect(r).Found {
				return true
			}
		}
	}
	return false
}

func checkPredictGolden(t *testing.T, got string) {
	t.Helper()
	path := filepath.Join("testdata", "predict_d0.golden")
	if *updatePredict {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-predict to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("predictive report differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
