package goker

import (
	"bytes"
	"testing"

	"goat/internal/profile"
	"goat/internal/sim"
)

// Profile collection is pure observation: folding a run's ECT into the
// profiling plane must leave the trace, the detector-relevant outcome,
// and the recorded decision script byte-identical to a run that never
// built profiles — and folding the same trace twice must produce
// identical profiles. This is the profiling counterpart of the
// telemetry equivalence sweep.
func TestProfileEquivalence(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			opts := sim.Options{Seed: 3, Delays: 2, MaxSteps: 50000, Record: true}

			plain := Run(k, opts)
			profiled := Run(k, opts)

			// Building the profile set must not mutate the trace.
			before := encodeECT(t, profiled.Trace)
			set := profile.Build(profiled.Trace, profile.Options{})
			if set.Block == nil || set.Mutex == nil || set.Goroutine == nil {
				t.Fatal("incomplete profile set")
			}
			after := encodeECT(t, profiled.Trace)
			if !bytes.Equal(before, after) {
				t.Fatal("profile build mutated the ECT")
			}
			if !bytes.Equal(before, encodeECT(t, plain.Trace)) {
				t.Fatal("profiled run's ECT differs from the plain run")
			}
			if plain.Outcome != profiled.Outcome {
				t.Fatalf("outcome diverged: plain=%v profiled=%v", plain.Outcome, profiled.Outcome)
			}
			for i := range plain.Schedule {
				if plain.Schedule[i] != profiled.Schedule[i] {
					t.Fatalf("recorded schedule diverged at decision %d", i)
				}
			}

			// The fold is deterministic: same trace, same profiles.
			again := profile.Build(profiled.Trace, profile.Options{})
			for _, kind := range []profile.Kind{profile.KindBlock, profile.KindMutex, profile.KindGoroutine} {
				var a, b bytes.Buffer
				if err := set.ByKind(kind).WriteFolded(&a); err != nil {
					t.Fatal(err)
				}
				if err := again.ByKind(kind).WriteFolded(&b); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Fatalf("%s profile not deterministic across folds", kind)
				}
				var p1, p2 bytes.Buffer
				if err := set.ByKind(kind).WritePprof(&p1); err != nil {
					t.Fatal(err)
				}
				if err := again.ByKind(kind).WritePprof(&p2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
					t.Fatalf("%s pprof encoding not deterministic", kind)
				}
			}
		})
	}
}
