// Package goker is the blocking-bug benchmark: 68 bug kernels modeled on
// the GoKer suite of GoBench, one per documented blocking bug of the nine
// open-source projects the paper evaluates on (cockroach, etcd, grpc,
// hugo, istio, kubernetes, moby, serving, syncthing).
//
// GoKer kernels are themselves simplified extractions of the original
// bugs; these kernels re-extract the same synchronization skeletons —
// double locks, AB-BA lock cycles, lock-vs-channel circular waits, missed
// condition signals, WaitGroup misuse, select/default races, misused
// contexts — onto the virtual runtime, preserving each bug's cause
// taxonomy (resource / communication / mixed deadlock), dominant symptom
// (partial or global deadlock, occasionally a crash), and crucially how
// *rare* the buggy interleaving is: deterministic bugs bite on any
// schedule, racy ones only when the scheduler preempts inside a specific
// window, which is what the delay-bound experiments measure.
package goker

import (
	"fmt"
	"sort"

	"goat/internal/sim"
)

// Cause is the paper's bug-cause taxonomy for blocking bugs.
type Cause uint8

const (
	// ResourceDeadlock: circular wait on locks (inherited from
	// Java/pthreads-style bugs).
	ResourceDeadlock Cause = iota
	// CommunicationDeadlock: misuse of (un)buffered channels.
	CommunicationDeadlock
	// MixedDeadlock: a goroutine holding a lock blocks on a channel while
	// the peer needs the lock.
	MixedDeadlock
)

var causeNames = [...]string{"resource", "communication", "mixed"}

// String returns the cause name.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("Cause(%d)", uint8(c))
}

// Kernel is one reproducible bug scenario.
type Kernel struct {
	// ID is the GoKer bug identifier, e.g. "moby_28462".
	ID string
	// Project is the originating open-source project.
	Project string
	// Cause classifies the root cause.
	Cause Cause
	// Expect is the dominant symptom when the bug manifests:
	// "PDL" (partial deadlock / leak), "GDL" (global deadlock), or "CRASH".
	Expect string
	// Rare marks kernels whose buggy interleaving needs specific
	// preemptions (they may take many executions to manifest at D=0).
	Rare bool
	// Generated marks kernels produced by the kernel fuzzer rather than
	// ported from GoKer; GoKer() excludes them so the 68-kernel benchmark
	// stays pinned while the fuzz corpus grows.
	Generated bool
	// Description summarizes the original bug's mechanism.
	Description string
	// Main is the kernel entry point, run as the program's main goroutine.
	Main func(*sim.G)
}

var (
	kernels []Kernel
	byID    = map[string]int{}
)

// register adds a kernel to the suite; duplicate or malformed kernels are
// programming errors.
func register(k Kernel) {
	if err := Register(k); err != nil {
		panic("goker: " + err.Error())
	}
}

// Register adds a kernel to the registry at runtime. It is how the
// differential fuzzer promotes a shrunk reproducer into the suite: the
// registered kernel resolves through ByID and runs under `goat -bug`.
// Kernels registered this way should set Generated so the pinned GoKer
// benchmark set is unaffected.
func Register(k Kernel) error {
	if k.ID == "" || k.Project == "" || k.Main == nil {
		return fmt.Errorf("malformed kernel %+v", k)
	}
	switch k.Expect {
	case "PDL", "GDL", "CRASH":
	default:
		return fmt.Errorf("kernel %s has bad Expect %q", k.ID, k.Expect)
	}
	if _, dup := byID[k.ID]; dup {
		return fmt.Errorf("duplicate kernel %s", k.ID)
	}
	byID[k.ID] = len(kernels)
	kernels = append(kernels, k)
	return nil
}

// All returns the suite sorted by ID, including runtime-registered
// generated kernels.
func All() []Kernel {
	out := append([]Kernel(nil), kernels...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GoKer returns only the hand-ported GoKer benchmark kernels, sorted by
// ID — the pinned 68-kernel evaluation set, regardless of how many
// generated kernels have been registered.
func GoKer() []Kernel {
	var out []Kernel
	for _, k := range kernels {
		if !k.Generated {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks a kernel up by its GoKer identifier.
func ByID(id string) (Kernel, bool) {
	i, ok := byID[id]
	if !ok {
		return Kernel{}, false
	}
	return kernels[i], true
}

// Projects returns the distinct project names, sorted.
func Projects() []string {
	set := map[string]bool{}
	for _, k := range kernels {
		set[k.Project] = true
	}
	var out []string
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Run executes a kernel once under the given options.
func Run(k Kernel, opts sim.Options) *sim.Result {
	return sim.Run(opts, k.Main)
}
