package goker

import (
	"bytes"
	"testing"

	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/gtree"
	"goat/internal/sim"
	"goat/internal/trace"
)

// The streaming pipeline must be indistinguishable from the buffered one:
// for every registered kernel, a run with the analyses attached as event
// sinks produces a byte-identical ECT, identical detector verdicts, and
// identical coverage statistics to the classic buffer-then-post-hoc run.

func equivOptions() sim.Options {
	return sim.Options{Seed: 3, Delays: 2, MaxSteps: 50000}
}

func encodeECT(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	if tr == nil {
		t.Fatal("nil trace")
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestStreamingEquivalence(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			// Post-hoc reference: buffered ECT, detectors and coverage on it.
			ref := Run(k, equivOptions())
			goatRef := detect.Goat{}.Detect(ref)
			lockRef := detect.LockDL{}.Detect(ref)
			refModel := cover.NewModel(nil)
			tree, err := gtree.Build(ref.Trace)
			if err != nil {
				t.Fatalf("gtree.Build: %v", err)
			}
			statsRef := refModel.AddRun(tree)

			// Streaming run: same options, online detectors and coverage as
			// sinks, plus a *Trace sink that must collect the same ECT.
			gs := detect.Goat{}.NewStream()
			ls := detect.LockDL{}.NewStream()
			model := cover.NewModel(nil)
			cs := model.StreamRun()
			collected := trace.New(0)
			opts := equivOptions()
			opts.Sinks = []trace.Sink{collected, gs, ls, cs}
			r := Run(k, opts)

			want := encodeECT(t, ref.Trace)
			if !bytes.Equal(encodeECT(t, collected), want) {
				t.Errorf("sink-collected ECT differs from the buffered ECT")
			}
			if !bytes.Equal(encodeECT(t, r.Trace), want) {
				t.Errorf("internal ECT with sinks attached differs from the buffered ECT")
			}
			if got := gs.Finish(r); got != goatRef {
				t.Errorf("goat: streamed %+v != post-hoc %+v", got, goatRef)
			}
			if got := ls.Finish(r); got != lockRef {
				t.Errorf("lockdl: streamed %+v != post-hoc %+v", got, lockRef)
			}
			if got := cs.Finish(); got != statsRef {
				t.Errorf("coverage: streamed %+v != post-hoc %+v", got, statsRef)
			}

			// Trace-free run: sinks only, no ECT buffered at all.
			gs2 := detect.Goat{}.NewStream()
			ls2 := detect.LockDL{}.NewStream()
			opts2 := equivOptions()
			opts2.NoTrace = true
			opts2.Sinks = []trace.Sink{gs2, ls2}
			r2 := Run(k, opts2)
			if r2.Trace != nil {
				t.Fatal("NoTrace run still buffered a trace")
			}
			if got := gs2.Finish(r2); got != goatRef {
				t.Errorf("goat trace-free: %+v != post-hoc %+v", got, goatRef)
			}
			if got := ls2.Finish(r2); got != lockRef {
				t.Errorf("lockdl trace-free: %+v != post-hoc %+v", got, lockRef)
			}
		})
	}
}
