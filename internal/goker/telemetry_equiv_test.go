package goker

import (
	"bytes"
	"testing"

	"goat/internal/sim"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// Telemetry is pure observation: for every registered kernel, a run with
// the registry enabled and a telemetry.Sink attached must leave the ECT,
// the recorded decision script, and replay behavior byte-identical to
// the telemetry-off run. This is the sweep behind the layer's "never
// draws a scheduling decision" contract.
func TestTelemetryEquivalence(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			opts := sim.Options{Seed: 3, Delays: 2, MaxSteps: 50000, Record: true}

			telemetry.Default.Reset()
			off := Run(k, opts)

			telemetry.Enable()
			onOpts := opts
			onOpts.Sinks = []trace.Sink{telemetry.NewSink()}
			on := Run(k, onOpts)
			telemetry.Disable()

			if off.Outcome != on.Outcome {
				t.Fatalf("outcome diverged: off=%v on=%v", off.Outcome, on.Outcome)
			}
			offECT, onECT := encodeECT(t, off.Trace), encodeECT(t, on.Trace)
			if !bytes.Equal(offECT, onECT) {
				t.Fatalf("ECT diverged under telemetry (off %d bytes, on %d bytes)",
					len(offECT), len(onECT))
			}
			if len(off.Schedule) != len(on.Schedule) {
				t.Fatalf("recorded schedule length diverged: off=%d on=%d",
					len(off.Schedule), len(on.Schedule))
			}
			for i := range off.Schedule {
				if off.Schedule[i] != on.Schedule[i] {
					t.Fatalf("recorded schedule diverged at decision %d", i)
				}
			}

			// The telemetry-off replay of the telemetry-on recording must
			// reproduce the run exactly.
			replayOpts := sim.Options{Seed: 3, Delays: 2, MaxSteps: 50000, Replay: on.Schedule}
			rep := Run(k, replayOpts)
			if rep.ReplayDiverged {
				t.Fatal("replay of the telemetry-on recording diverged")
			}
			if !bytes.Equal(encodeECT(t, rep.Trace), offECT) {
				t.Fatal("replayed ECT differs from the telemetry-off ECT")
			}
		})
	}
}
