// Package gtree builds the goroutine tree of an execution concurrency
// trace and runs the paper's deadlock-detection procedure over it.
//
// Nodes are goroutines; a directed edge parent→child means the child was
// created by a go statement the parent executed. Each node carries the full
// event sequence the goroutine executed, its creation site, and its final
// event — the inputs of Procedure 1 (DeadlockCheck) and of the coverage
// measurement.
package gtree

import (
	"fmt"
	"sort"
	"strings"

	"goat/internal/trace"
)

// Node is one goroutine of the tree.
type Node struct {
	ID         trace.GoID
	Name       string
	Parent     *Node // nil for the main goroutine and for orphans
	Children   []*Node
	Events     []trace.Event // the goroutine's own events, in order
	CreateFile string        // CU of the go statement that spawned it
	CreateLine int
	System     bool // runtime-internal (timer/watchdog) goroutine

	// Orphan marks a goroutine that pre-existed a window trace: its
	// creation was never observed, so it enters the tree as an extra
	// root, introduced by its own GoStart (sources without
	// trace.CapCreateObserved).
	Orphan bool

	key string // equivalence key, memoized at build time
}

// LastEvent returns the node's final executed event (zero Event if none).
func (n *Node) LastEvent() trace.Event {
	if len(n.Events) == 0 {
		return trace.Event{}
	}
	return n.Events[len(n.Events)-1]
}

// Ended reports whether the goroutine reached its end state.
func (n *Node) Ended() bool { return n.LastEvent().Type == trace.EvGoEnd }

// Key is the cross-run equivalence key: two goroutines from different
// executions are equivalent iff their parents are equivalent and they were
// created at the same CU (file and line) — the paper's ≡ relation.
func (n *Node) Key() string { return n.key }

// AppLevel reports whether the goroutine belongs to the application: it is
// the main goroutine, or its ancestors are application-level and it is not
// a runtime-internal goroutine.
func (n *Node) AppLevel() bool {
	if n.System {
		return false
	}
	if n.Parent == nil {
		return true
	}
	return n.Parent.AppLevel()
}

// Tree is the goroutine tree of one execution.
type Tree struct {
	Root  *Node
	Nodes map[trace.GoID]*Node

	// Orphans are the extra roots of a window trace: goroutines whose
	// creation predates the window (empty for complete runs).
	Orphans []*Node
	// Windowed records that the trace came from a producer without
	// trace.CapCompleteRun, so "main never ended" is the normal state
	// of affairs rather than a global deadlock.
	Windowed bool
}

// Build constructs the goroutine tree from an ECT. The main goroutine is
// GoID 1 and becomes the root. It is the post-hoc entry point: the
// buffered trace is replayed through the streaming Builder, which learns
// the trace's producer (window traces may adopt orphan goroutines).
func Build(tr *trace.Trace) (*Tree, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, trace.ErrEmpty
	}
	b := NewBuilder()
	if err := tr.Replay(b); err != nil {
		return nil, err
	}
	return b.Tree()
}

// Builder constructs the goroutine tree online, one event at a time — a
// trace.Sink that can be attached directly to an execution so the tree
// exists the moment the run ends, without buffering the ECT. A stream
// replayed from a buffered trace and a stream observed live produce
// identical trees.
type Builder struct {
	t        *Tree
	events   int
	err      error
	windowed bool
}

// NewBuilder returns a builder holding the implicit main-goroutine root.
func NewBuilder() *Builder {
	root := &Node{ID: 1, Name: "main", key: "main"}
	return &Builder{t: &Tree{Root: root, Nodes: map[trace.GoID]*Node{1: root}}}
}

// SetSource implements trace.SourceAware: producers without full
// goroutine provenance (window traces) relax the unknown-goroutine
// error into orphan adoption. The default — never learning a source —
// keeps the strict virtual-runtime contract.
func (b *Builder) SetSource(src trace.SourceInfo) {
	b.windowed = !src.Has(trace.CapCreateObserved)
	b.t.Windowed = !src.Has(trace.CapCompleteRun)
}

// Event implements trace.Sink: it folds one event into the tree. After a
// malformed event (by an unknown goroutine) the builder latches the error
// and ignores the rest of the stream, mirroring where Build stops. Under
// a window source, a goroutine introduced by its own GoStart becomes an
// orphan root instead of an error (Aux=1 marks runtime-internal
// provenance, Str carries the root function name — the conventions the
// native ingester synthesizes).
func (b *Builder) Event(e trace.Event) {
	if b.err != nil {
		return
	}
	b.events++
	n, ok := b.t.Nodes[e.G]
	if !ok {
		if b.windowed && e.Type == trace.EvGoStart {
			n = &Node{
				ID:         e.G,
				Name:       e.Str,
				CreateFile: e.File,
				CreateLine: e.Line,
				System:     e.Aux == 1,
				Orphan:     true,
			}
			n.key = fmt.Sprintf("orphan/%s@%s:%d", e.Str, e.File, e.Line)
			b.t.Orphans = append(b.t.Orphans, n)
			b.t.Nodes[e.G] = n
		} else {
			b.err = fmt.Errorf("gtree: event by unknown goroutine g%d at ts %d", e.G, e.Ts)
			return
		}
	}
	n.Events = append(n.Events, e)
	if e.Type == trace.EvGoCreate {
		child := &Node{
			ID:         e.Peer,
			Name:       e.Str,
			Parent:     n,
			CreateFile: e.File,
			CreateLine: e.Line,
			System:     e.Aux == 1,
		}
		child.key = fmt.Sprintf("%s/%s:%d", n.key, e.File, e.Line)
		n.Children = append(n.Children, child)
		b.t.Nodes[e.Peer] = child
	}
}

// Close implements trace.Sink.
func (b *Builder) Close() {}

// Tree finalizes the build. It errors on a malformed stream and on an
// empty one (trace.ErrEmpty), exactly like Build.
func (b *Builder) Tree() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.events == 0 {
		return nil, trace.ErrEmpty
	}
	return b.t, nil
}

// Roots returns the tree's entry points: the main root followed by any
// orphan roots a window trace adopted.
func (t *Tree) Roots() []*Node {
	return append([]*Node{t.Root}, t.Orphans...)
}

// AppNodes returns the application-level goroutines in BFS order from the
// roots — the goroutines the paper's analyses operate on. Orphan roots
// of window traces are included after the main subtree.
func (t *Tree) AppNodes() []*Node {
	var out []*Node
	queue := t.Roots()
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if !n.AppLevel() {
			continue
		}
		out = append(out, n)
		queue = append(queue, n.Children...)
	}
	return out
}

// BlockedAtEnd returns the application-level goroutines whose final
// event is a block — the goroutines that were parked when the trace
// ended. For a complete run those are exactly the leaked goroutines;
// for a window trace they are the *candidates* the stranded-goroutine
// analysis (internal/ingest) filters by provenance and activity.
func (t *Tree) BlockedAtEnd() []*Node {
	var out []*Node
	for _, n := range t.AppNodes() {
		if n.LastEvent().Type == trace.EvGoBlock {
			out = append(out, n)
		}
	}
	return out
}

// Verdict is the result of DeadlockCheck.
type Verdict uint8

const (
	// Pass means every application goroutine reached its end state.
	Pass Verdict = iota
	// GlobalDeadlock means the main goroutine itself never ended.
	GlobalDeadlock
	// PartialDeadlock means main ended but at least one descendant leaked.
	PartialDeadlock
)

var verdictNames = [...]string{"Pass", "Global Deadlock", "Partial Deadlock (leak)"}

// String returns the verdict name.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return fmt.Sprintf("Verdict(%d)", uint8(v))
}

// DeadlockCheck is the paper's Procedure 1: a BFS over the application
// goroutine tree checking final events. The main goroutine must have ended;
// every descendant must have GoEnd as its final event. It returns the
// verdict together with every leaked goroutine (the paper's procedure
// returns on the first, but reports want all of them).
//
// On a windowed trace (producer without CapCompleteRun) "main never
// ended" is the expected state, not a global deadlock; the check
// degrades to the blocked-at-window-end census over application
// goroutines, mirroring GoatStream's PDL-n verdict.
func (t *Tree) DeadlockCheck() (Verdict, []*Node) {
	if t.Windowed {
		if blocked := t.BlockedAtEnd(); len(blocked) > 0 {
			return PartialDeadlock, blocked
		}
		return Pass, nil
	}
	if !t.Root.Ended() {
		return GlobalDeadlock, []*Node{t.Root}
	}
	var leaked []*Node
	queue := append([]*Node{}, t.Root.Children...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !cur.AppLevel() {
			continue
		}
		if !cur.Ended() {
			leaked = append(leaked, cur)
		}
		queue = append(queue, cur.Children...)
	}
	if len(leaked) > 0 {
		return PartialDeadlock, leaked
	}
	return Pass, nil
}

// String renders the tree in a compact indented form (the paper's
// goroutine-tree visualization, text flavor).
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		tag := ""
		if n.System {
			tag = " [system]"
		} else if !n.Ended() {
			last := n.LastEvent()
			if last.Type == trace.EvGoBlock {
				tag = fmt.Sprintf(" [LEAKED blocked:%s @%s:%d]", last.BlockReason(), last.File, last.Line)
			} else {
				tag = fmt.Sprintf(" [LEAKED last:%s]", last.Type)
			}
		}
		fmt.Fprintf(&b, "%sg%d %s (created %s:%d, %d events)%s\n",
			strings.Repeat("  ", depth), n.ID, n.Name, n.CreateFile, n.CreateLine, len(n.Events), tag)
		children := append([]*Node{}, n.Children...)
		sort.Slice(children, func(i, j int) bool { return children[i].ID < children[j].ID })
		for _, c := range children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}
