package gtree

import (
	"strings"
	"testing"

	"goat/internal/conc"
	"goat/internal/sim"
	"goat/internal/trace"
)

func runProg(t *testing.T, fn func(*sim.G)) *Tree {
	t.Helper()
	r := sim.Run(sim.Options{PreemptProb: -1}, fn)
	tree, err := Build(r.Trace)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

func TestBuildSimpleTree(t *testing.T) {
	tree := runProg(t, func(g *sim.G) {
		g.Go("child1", func(c *sim.G) {
			c.Go("grandchild", func(*sim.G) {})
			c.Yield()
		})
		g.Yield()
		g.Yield()
		g.Go("child2", func(*sim.G) {})
		g.Yield()
	})
	if tree.Root.ID != 1 || tree.Root.Name != "main" {
		t.Fatalf("root = %v", tree.Root)
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("main has %d children, want 2", len(tree.Root.Children))
	}
	c1 := tree.Root.Children[0]
	if c1.Name != "child1" || len(c1.Children) != 1 {
		t.Fatalf("child1 = %+v", c1)
	}
	if c1.Children[0].Name != "grandchild" {
		t.Fatalf("grandchild = %+v", c1.Children[0])
	}
	if c1.Parent != tree.Root {
		t.Fatal("parent link broken")
	}
}

func TestDeadlockCheckPass(t *testing.T) {
	tree := runProg(t, func(g *sim.G) {
		ch := conc.NewChan[int](g, 0)
		g.Go("worker", func(c *sim.G) { ch.Send(c, 1) })
		ch.Recv(g)
		g.Yield()
	})
	v, leaked := tree.DeadlockCheck()
	if v != Pass || leaked != nil {
		t.Fatalf("verdict = %v leaked=%v, want Pass", v, leaked)
	}
}

func TestDeadlockCheckPartial(t *testing.T) {
	tree := runProg(t, func(g *sim.G) {
		ch := conc.NewChan[int](g, 0)
		g.Go("leaker", func(c *sim.G) { ch.Send(c, 1) }) // no receiver
		g.Yield()
	})
	v, leaked := tree.DeadlockCheck()
	if v != PartialDeadlock {
		t.Fatalf("verdict = %v, want PartialDeadlock", v)
	}
	if len(leaked) != 1 || leaked[0].Name != "leaker" {
		t.Fatalf("leaked = %v", leaked)
	}
	last := leaked[0].LastEvent()
	if last.Type != trace.EvGoBlock || last.BlockReason() != trace.BlockSend {
		t.Fatalf("leaker last event = %v", last)
	}
}

func TestDeadlockCheckGlobal(t *testing.T) {
	tree := runProg(t, func(g *sim.G) {
		ch := conc.NewChan[int](g, 0)
		ch.Recv(g) // main blocks forever
	})
	v, leaked := tree.DeadlockCheck()
	if v != GlobalDeadlock {
		t.Fatalf("verdict = %v, want GlobalDeadlock", v)
	}
	if len(leaked) != 1 || leaked[0].ID != 1 {
		t.Fatalf("leaked = %v", leaked)
	}
}

func TestDeadlockCheckReportsAllLeaks(t *testing.T) {
	tree := runProg(t, func(g *sim.G) {
		ch := conc.NewChan[int](g, 0)
		for i := 0; i < 3; i++ {
			g.Go("stuck", func(c *sim.G) { ch.Send(c, 1) })
		}
		g.Yield()
		g.Yield()
		g.Yield()
	})
	v, leaked := tree.DeadlockCheck()
	if v != PartialDeadlock || len(leaked) != 3 {
		t.Fatalf("verdict=%v leaked=%d, want 3 partial leaks", v, len(leaked))
	}
}

func TestSystemGoroutinesExcluded(t *testing.T) {
	tree := runProg(t, func(g *sim.G) {
		// conc.After spawns a system timer goroutine that outlives main.
		conc.After(g, 1_000_000)
	})
	v, _ := tree.DeadlockCheck()
	if v != Pass {
		t.Fatalf("verdict = %v: system timer goroutine wrongly counted", v)
	}
	app := tree.AppNodes()
	if len(app) != 1 {
		t.Fatalf("app nodes = %d, want just main", len(app))
	}
	// The timer node must exist in the full tree but be non-app.
	foundSystem := false
	for _, n := range tree.Nodes {
		if n.System {
			foundSystem = true
			if n.AppLevel() {
				t.Fatal("system node reported app-level")
			}
		}
	}
	if !foundSystem {
		t.Fatal("timer system goroutine missing from tree")
	}
}

func TestEquivalenceKeysStableAcrossRuns(t *testing.T) {
	prog := func(g *sim.G) {
		g.Go("w", func(c *sim.G) { c.Yield() })
		g.Yield()
		g.Yield()
	}
	k1 := keyOfOnlyChild(t, runProg(t, prog))
	k2 := keyOfOnlyChild(t, runProg(t, prog))
	if k1 != k2 {
		t.Fatalf("equivalent goroutines got different keys: %q vs %q", k1, k2)
	}
	if !strings.HasPrefix(k1, "main/") {
		t.Fatalf("key %q not rooted at main", k1)
	}
}

func keyOfOnlyChild(t *testing.T, tree *Tree) string {
	t.Helper()
	if len(tree.Root.Children) != 1 {
		t.Fatalf("children = %d", len(tree.Root.Children))
	}
	return tree.Root.Children[0].Key()
}

func TestDistinctCreationSitesDistinctKeys(t *testing.T) {
	tree := runProg(t, func(g *sim.G) {
		g.Go("a", func(*sim.G) {})
		g.Go("b", func(*sim.G) {})
		g.Yield()
		g.Yield()
	})
	ks := map[string]bool{}
	for _, c := range tree.Root.Children {
		ks[c.Key()] = true
	}
	if len(ks) != 2 {
		t.Fatalf("keys not distinct: %v", ks)
	}
}

func TestBuildRejectsEmptyTrace(t *testing.T) {
	if _, err := Build(trace.New(0)); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Build(nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestStringRendersLeaks(t *testing.T) {
	tree := runProg(t, func(g *sim.G) {
		mu := conc.NewMutex(g)
		mu.Lock(g)
		g.Go("blocked", func(c *sim.G) { mu.Lock(c) })
		g.Yield()
	})
	s := tree.String()
	for _, want := range []string{"main", "blocked", "LEAKED", "mutex"} {
		if !strings.Contains(s, want) {
			t.Fatalf("tree rendering missing %q:\n%s", want, s)
		}
	}
}
