// DPOR equivalence campaign: the harness-level rendering of the
// systematic package's core contract — Explore, ExplorePruned and
// ExploreDPOR agree on every kernel while spending strictly decreasing
// execution budgets. goatbench -exp dpor prints the table; CI runs it on
// a small kernel matrix as a smoke gate.
package harness

import (
	"fmt"
	"strings"

	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/systematic"
)

// DPORRow is one kernel's three-way exploration comparison.
type DPORRow struct {
	ID       string
	Explore  *systematic.Finding
	Pruned   *systematic.Finding
	DPOR     *systematic.Finding
	Stats    systematic.DPORStats
	Mismatch string // empty when the three searches agree
}

// DPORCompare is the campaign result.
type DPORCompare struct {
	Rows []DPORRow
	// Suite-wide executions spent by each search.
	ExploreRuns, PrunedRuns, DPORRuns int
}

// RunDPORCompare runs all three systematic searches on every kernel
// (nil selects the full registry) and records any disagreement. Two
// findings agree when both miss, or both hit with the same verdict and
// either the same yield placement or a placement that replays to the
// same verdict.
func RunDPORCompare(kernels []goker.Kernel, cfg systematic.Config) *DPORCompare {
	if kernels == nil {
		kernels = goker.All()
	}
	out := &DPORCompare{}
	for _, k := range kernels {
		row := DPORRow{ID: k.ID}
		row.Explore = systematic.Explore(k.Main, cfg)
		row.Pruned, _ = systematic.ExplorePruned(k.Main, cfg)
		row.DPOR, row.Stats = systematic.ExploreDPOR(k.Main, cfg)
		if d := findingDisagreement(k, row.Explore, row.Pruned, "pruned"); d != "" {
			row.Mismatch = d
		} else if d := findingDisagreement(k, row.Explore, row.DPOR, "dpor"); d != "" {
			row.Mismatch = d
		}
		if row.Explore != nil {
			out.ExploreRuns += row.Explore.Runs
		}
		if row.Pruned != nil {
			out.PrunedRuns += row.Pruned.Runs
		}
		if row.DPOR != nil {
			out.DPORRuns += row.DPOR.Runs
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// findingDisagreement classifies how b diverges from the reference a,
// returning "" when they are equivalent.
func findingDisagreement(k goker.Kernel, a, b *systematic.Finding, tag string) string {
	switch {
	case (a == nil) != (b == nil):
		return fmt.Sprintf("%s found=%v, explore found=%v", tag, b != nil, a != nil)
	case a == nil:
		return ""
	case a.Detection.Verdict != b.Detection.Verdict:
		return fmt.Sprintf("%s verdict %q, explore %q", tag, b.Detection.Verdict, a.Detection.Verdict)
	case fmt.Sprint(a.Yields) == fmt.Sprint(b.Yields) && len(b.Wakes) == 0:
		return ""
	}
	// Different placement: equivalent only if it independently replays.
	d := (detect.Goat{}).Detect(b.Replay(k.Main))
	if !d.Found || d.Verdict != a.Detection.Verdict {
		return fmt.Sprintf("%s placement %q does not replay explore's %q verdict", tag, b.DecisionString(), a.Detection.Verdict)
	}
	return ""
}

// Mismatches returns the rows where the searches disagree.
func (c *DPORCompare) Mismatches() []DPORRow {
	var out []DPORRow
	for _, r := range c.Rows {
		if r.Mismatch != "" {
			out = append(out, r)
		}
	}
	return out
}

// String renders the comparison table.
func (c *DPORCompare) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-10s %8s %8s %8s  %s\n", "bug", "verdict", "explore", "pruned", "dpor", "agreement")
	runsOf := func(f *systematic.Finding) string {
		if f == nil {
			return "-"
		}
		return fmt.Sprint(f.Runs)
	}
	for _, r := range c.Rows {
		verdict, agree := "-", "agree"
		if r.Explore != nil {
			verdict = r.Explore.Detection.Verdict
		}
		if r.Mismatch != "" {
			agree = "MISMATCH: " + r.Mismatch
		}
		fmt.Fprintf(&b, "%-24s %-10s %8s %8s %8s  %s\n",
			r.ID, verdict, runsOf(r.Explore), runsOf(r.Pruned), runsOf(r.DPOR), agree)
	}
	fmt.Fprintf(&b, "%-24s %-10s %8d %8d %8d  %d mismatch(es)\n",
		"TOTAL (found)", "", c.ExploreRuns, c.PrunedRuns, c.DPORRuns, len(c.Mismatches()))
	return b.String()
}
