package harness

import (
	"strings"
	"testing"

	"goat/internal/goker"
	"goat/internal/systematic"
)

func TestRunDPORCompareAgreesOnMatrix(t *testing.T) {
	var kernels []goker.Kernel
	for _, id := range []string{"serving_2137", "etcd_7443", "cockroach_1055"} {
		k, ok := goker.ByID(id)
		if !ok {
			t.Fatalf("kernel %s missing", id)
		}
		kernels = append(kernels, k)
	}
	cmp := RunDPORCompare(kernels, systematic.Config{Seed: 1, MaxRuns: 400})
	if len(cmp.Rows) != len(kernels) {
		t.Fatalf("rows %d, want %d", len(cmp.Rows), len(kernels))
	}
	if mm := cmp.Mismatches(); len(mm) != 0 {
		t.Fatalf("searches disagree: %+v", mm)
	}
	if cmp.DPORRuns <= 0 || cmp.ExploreRuns < cmp.DPORRuns {
		t.Fatalf("implausible run totals: explore=%d pruned=%d dpor=%d",
			cmp.ExploreRuns, cmp.PrunedRuns, cmp.DPORRuns)
	}
	out := cmp.String()
	for _, want := range []string{"serving_2137", "agree", "TOTAL (found)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("table reports a mismatch:\n%s", out)
	}
}
