package harness

import (
	"fmt"
	"strings"
)

// Interval buckets used by Figures 2 and 5 (trial counts to detection).
var intervalLabels = []string{"1", "2-10", "11-100", "101-1000", "X"}

// bucketOf maps a cell to its interval index (4 = not detected). Cells
// that failed at the host level (ERR/HUNG) count as not detected, so a
// degraded campaign still renders every figure.
func bucketOf(c Cell) int {
	if c.Failed() || !c.Found {
		return 4
	}
	switch {
	case c.MinExecs <= 1:
		return 0
	case c.MinExecs <= 10:
		return 1
	case c.MinExecs <= 100:
		return 2
	default:
		return 3
	}
}

// Figure2 is the histogram of bugs grouped by the number of trials GoAT
// (at the given column) needed to detect them.
type Figure2 struct {
	Tool    string
	Buckets [5]int // counts per interval
}

// RunFigure2 derives Fig. 2 from a Table IV run (paper: GoAT at D=0).
func RunFigure2(t *TableIV, tool string) *Figure2 {
	f := &Figure2{Tool: tool}
	for _, c := range t.Column(tool) {
		f.Buckets[bucketOf(c)]++
	}
	return f
}

// String renders the histogram.
func (f *Figure2) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: bugs by #trials to detect (%s)\n", f.Tool)
	for i, label := range intervalLabels {
		fmt.Fprintf(&b, "%-10s %3d %s\n", label, f.Buckets[i], strings.Repeat("#", f.Buckets[i]))
	}
	return b.String()
}

// Figure4 is the per-tool histogram of detected bugs by symptom class.
type Figure4 struct {
	Tools   []string
	Classes []string         // PDL, GDL/TO, Crash/Halt
	Counts  map[string][]int // tool -> counts per class
}

// classOf maps a verdict to a Fig. 4 symptom class index, or -1.
func classOf(verdict string) int {
	switch {
	case strings.HasPrefix(verdict, "PDL") || verdict == "DL":
		return 0
	case verdict == "GDL" || verdict == "TO/GDL":
		return 1
	case verdict == "CRASH" || verdict == "HANG":
		return 2
	default:
		return -1
	}
}

// RunFigure4 derives Fig. 4 from a Table IV run.
func RunFigure4(t *TableIV) *Figure4 {
	f := &Figure4{
		Tools:   t.Tools,
		Classes: []string{"PDL", "GDL/TO", "Crash/Halt"},
		Counts:  map[string][]int{},
	}
	for _, tool := range t.Tools {
		counts := make([]int, 3)
		for _, c := range t.Column(tool) {
			if !c.Found {
				continue
			}
			if cl := classOf(c.Verdict); cl >= 0 {
				counts[cl]++
			}
		}
		f.Counts[tool] = counts
	}
	return f
}

// Detected returns the total detections of one tool.
func (f *Figure4) Detected(tool string) int {
	sum := 0
	for _, n := range f.Counts[tool] {
		sum += n
	}
	return sum
}

// String renders the grouped histogram.
func (f *Figure4) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: detected bugs by symptom class per tool\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %12s %8s\n", "tool", "PDL", "GDL/TO", "Crash/Halt", "total")
	for _, tool := range f.Tools {
		c := f.Counts[tool]
		fmt.Fprintf(&b, "%-12s %8d %8d %12d %8d\n", tool, c[0], c[1], c[2], f.Detected(tool))
	}
	return b.String()
}

// Figure5 is the percentage distribution of required iterations per tool.
type Figure5 struct {
	Tools     []string
	Intervals []string
	Percent   map[string][5]float64 // tool -> share per interval
}

// RunFigure5 derives Fig. 5 from a Table IV run.
func RunFigure5(t *TableIV) *Figure5 {
	f := &Figure5{Tools: t.Tools, Intervals: intervalLabels, Percent: map[string][5]float64{}}
	for _, tool := range t.Tools {
		var counts [5]int
		cells := t.Column(tool)
		for _, c := range cells {
			counts[bucketOf(c)]++
		}
		var pct [5]float64
		if len(cells) > 0 {
			for i, n := range counts {
				pct[i] = 100 * float64(n) / float64(len(cells))
			}
		}
		f.Percent[tool] = pct
	}
	return f
}

// String renders the distribution table.
func (f *Figure5) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: distribution of #iterations to detect (% of bugs)\n")
	fmt.Fprintf(&b, "%-12s", "tool")
	for _, iv := range f.Intervals {
		fmt.Fprintf(&b, "%10s", iv)
	}
	b.WriteString("\n")
	for _, tool := range f.Tools {
		fmt.Fprintf(&b, "%-12s", tool)
		for _, p := range f.Percent[tool] {
			fmt.Fprintf(&b, "%9.1f%%", p)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure6 renders the coverage series of RunFigure6 as aligned
// columns (iteration, one column per D).
func RenderFigure6(bugID string, series map[int][]Figure6Point, ds []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: coverage %% over iterations (%s)\n", bugID)
	fmt.Fprintf(&b, "%-6s", "iter")
	for _, d := range ds {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("D%d", d))
	}
	b.WriteString("\n")
	if len(ds) == 0 || len(series[ds[0]]) == 0 {
		return b.String()
	}
	n := len(series[ds[0]])
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-6d", i+1)
		for _, d := range ds {
			fmt.Fprintf(&b, "%9.1f%%", series[d][i].Percent)
		}
		b.WriteString("\n")
	}
	return b.String()
}
