package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goat/internal/conc"
	"goat/internal/goker"
	"goat/internal/sim"
)

// A cell abandoned by the watchdog must leave a flight-recorder dump:
// the tail of the in-flight run's event stream, written as Chrome
// trace-event JSON and named on the cell.
func TestFlightRecorderDumpOnHungCell(t *testing.T) {
	dir := t.TempDir()
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	k := goker.Kernel{
		ID:      "test_hang",
		Project: "test",
		Main: func(g *sim.G) {
			// Emit a few real events, then hang the host goroutine so the
			// wall-clock watchdog abandons the cell mid-run.
			ch := conc.NewChan[int](g, 1)
			ch.Send(g, 1)
			ch.Recv(g)
			<-hang
		},
	}
	cell := RunCell(k, Spec{Name: "builtin"}, Config{
		MaxExecs:     5,
		CellBudget:   100 * time.Millisecond,
		Retries:      -1,
		FlightRecDir: dir,
	})
	if cell.Status != CellHung {
		t.Fatalf("cell status = %v, want hung", cell.Status)
	}
	if cell.FlightRec == "" {
		t.Fatal("hung cell carries no flight-recorder path")
	}
	if want := filepath.Join(dir, "flightrec-test_hang-builtin-0.json"); cell.FlightRec != want {
		t.Fatalf("flightrec path = %q, want %q", cell.FlightRec, want)
	}
	b, err := os.ReadFile(cell.FlightRec)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &file); err != nil {
		t.Fatalf("flight-recorder dump is not valid Chrome JSON: %v", err)
	}
	slices := 0
	for _, e := range file.TraceEvents {
		if _, ok := e.Args["ect_ts"]; ok {
			slices++
		}
	}
	if slices == 0 {
		t.Fatal("flight-recorder dump holds no ECT events")
	}
	if cell.Wall <= 0 {
		t.Fatal("cell carries no wall-clock timing")
	}
}

// A cell that exhausts its watchdog retries must record the *last*
// attempt's flight-recorder dump — the freshest forensic — not only the
// first attempt's. Every attempt leaves its own seed-named dump on disk,
// and the cell points at the final one.
func TestFlightRecorderKeepsLastDumpAcrossRetries(t *testing.T) {
	dir := t.TempDir()
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	var calls atomic.Int64
	k := goker.Kernel{
		ID:      "test_hang_retry",
		Project: "test",
		Main: func(g *sim.G) {
			if calls.Add(1) == 1 {
				// First attempt: real events, then a hang mid-run.
				ch := conc.NewChan[int](g, 1)
				ch.Send(g, 1)
				ch.Recv(g)
			}
			// Retries hang immediately, before any event reaches the ring.
			<-hang
		},
	}
	cell := RunCell(k, Spec{Name: "builtin"}, Config{
		MaxExecs:     5,
		CellBudget:   100 * time.Millisecond,
		Retries:      1,
		FlightRecDir: dir,
	})
	if cell.Status != CellHung || cell.Retries != 1 {
		t.Fatalf("cell status=%v retries=%d, want hung after 1 retry", cell.Status, cell.Retries)
	}
	// The retry runs under the fresh-seed stride, so the last attempt's
	// dump carries the retry seed in its name.
	last := filepath.Join(dir, "flightrec-test_hang_retry-builtin-4294967296.json")
	if cell.FlightRec != last {
		t.Fatalf("flightrec path = %q, want the last attempt's dump %q", cell.FlightRec, last)
	}
	if _, err := os.Stat(cell.FlightRec); err != nil {
		t.Fatalf("recorded dump unreadable: %v", err)
	}
	// The first attempt's dump is retained on disk too, for comparison.
	if _, err := os.Stat(filepath.Join(dir, "flightrec-test_hang_retry-builtin-0.json")); err != nil {
		t.Fatalf("first attempt's dump missing: %v", err)
	}
}

// A healthy cell must leave no dump, and disabling FlightRecDir leaves
// failed cells without one.
func TestFlightRecorderOnlyOnFailure(t *testing.T) {
	dir := t.TempDir()
	k, ok := goker.ByID("fuzz_send_no_recv_min")
	if !ok {
		t.Fatal("kernel missing")
	}
	cell := RunCell(k, Spec{Name: "builtin"}, Config{MaxExecs: 3, FlightRecDir: dir})
	if cell.Failed() {
		t.Fatalf("cell unexpectedly failed: %+v", cell)
	}
	if cell.FlightRec != "" {
		t.Fatalf("healthy cell carries a flightrec path: %q", cell.FlightRec)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "flightrec-") {
			t.Fatalf("healthy campaign left a dump: %s", e.Name())
		}
	}
}
