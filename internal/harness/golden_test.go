package harness_test

// Golden-file tests pin the exact text of the paper-facing renderers:
// Table IV, the campaign-health summary, and Table III. Each test runs
// its campaign twice and requires byte-identical output before comparing
// against the checked-in golden, so any map-iteration-order leak into a
// renderer fails loudly rather than flaking. Regenerate with
//
//	go test ./internal/harness -run Golden -update
import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/harness"
	"goat/internal/report"
	"goat/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func goldenCampaign() *harness.TableIV {
	ids := []string{"hugo_3251", "hugo_5379", "istio_16224"}
	var kernels []goker.Kernel
	for _, id := range ids {
		k, ok := goker.ByID(id)
		if !ok {
			panic("missing kernel " + id)
		}
		kernels = append(kernels, k)
	}
	return harness.RunTableIV(harness.Config{
		MaxExecs: 30,
		BaseSeed: 1,
		Tools: []harness.Spec{
			{Name: "builtin", Detector: detect.Builtin{}},
			{Name: "goleak", Detector: detect.Goleak{}},
			{Name: "goat-D0", Detector: detect.Goat{}, Delays: 0, NeedTrace: true},
			{Name: "goat-D2", Detector: detect.Goat{}, Delays: 2, NeedTrace: true},
		},
		Kernels: kernels,
	})
}

// TestTableIVGolden pins the Table IV text for a small deterministic
// campaign over three GoKer kernels and four tools.
func TestTableIVGolden(t *testing.T) {
	first := goldenCampaign().String()
	second := goldenCampaign().String()
	if first != second {
		t.Fatalf("Table IV rendering is nondeterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	checkGolden(t, "table_iv.golden", first)
}

// TestCampaignHealthGolden pins the degradation summary on a hand-built
// table with hung and errored cells, plus the healthy one-liner.
func TestCampaignHealthGolden(t *testing.T) {
	tab := &harness.TableIV{
		Tools: []string{"goat-D0", "goleak"},
		Rows: []harness.TableIVRow{
			{Bug: "etcd_6873", Cells: []harness.Cell{
				{Bug: "etcd_6873", Tool: "goat-D0", Found: true, MinExecs: 3, Wall: 40 * time.Millisecond},
				{Bug: "etcd_6873", Tool: "goleak", Status: harness.CellHung, Retries: 1, Wall: 60 * time.Second,
					Err:       "cell abandoned after watchdog timeout",
					FlightRec: "results/flightrec-etcd_6873-goleak-0.json"},
			}},
			{Bug: "moby_28462", Cells: []harness.Cell{
				{Bug: "moby_28462", Tool: "goat-D0", Status: harness.CellErr, Err: "panic: forced worker panic"},
				{Bug: "moby_28462", Tool: "goleak", Found: false, MinExecs: 1000, Wall: 800 * time.Millisecond},
			}},
		},
	}
	degraded := report.CampaignHealth(tab)
	if degraded != report.CampaignHealth(tab) {
		t.Fatal("CampaignHealth is nondeterministic")
	}
	healthy := report.CampaignHealth(&harness.TableIV{
		Tools: []string{"goat-D0"},
		Rows: []harness.TableIVRow{{Bug: "etcd_6873", Cells: []harness.Cell{
			{Bug: "etcd_6873", Tool: "goat-D0", Found: true},
		}}},
	})
	checkGolden(t, "campaign_health.golden", degraded+"\n"+healthy)
}

// goldenTable3 accumulates two seeded runs of moby_28462 into a coverage
// model and renders Table III.
func goldenTable3(t *testing.T) string {
	t.Helper()
	k, ok := goker.ByID("moby_28462")
	if !ok {
		t.Fatal("missing kernel moby_28462")
	}
	model := cover.NewModel(nil)
	for seed := int64(1); seed <= 2; seed++ {
		r := goker.Run(k, sim.Options{Seed: seed, Delays: 2})
		tree, err := gtree.Build(r.Trace)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		model.AddRun(tree)
	}
	return report.Table3(model)
}

// TestTable3Golden pins the Table III text for two accumulated runs.
func TestTable3Golden(t *testing.T) {
	first := goldenTable3(t)
	second := goldenTable3(t)
	if first != second {
		t.Fatalf("Table III rendering is nondeterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	checkGolden(t, "table3.golden", first)
}
