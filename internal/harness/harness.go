// Package harness drives the paper's evaluation: it runs every GoKer
// kernel under every tool configuration, records the minimum number of
// executions each tool needs to expose each bug, and regenerates Table IV
// and Figures 2, 4, 5 and 6.
package harness

import (
	"fmt"
	"sync"

	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/sim"
)

// Spec is one tool configuration (a Table IV column).
type Spec struct {
	// Name is the display name, e.g. "goat-D2".
	Name string
	// Detector classifies each execution.
	Detector detect.Detector
	// Delays is the yield bound D for the execution (baselines use 0:
	// they observe native schedules).
	Delays int
	// NeedTrace marks detectors that consume the ECT (GoAT, LockDL).
	NeedTrace bool
}

// DefaultTools returns the paper's Table IV column lineup: the three
// baselines plus GoAT at D = 0..4.
func DefaultTools() []Spec {
	specs := []Spec{
		{Name: "builtin", Detector: detect.Builtin{}},
		{Name: "lockdl", Detector: detect.LockDL{}, NeedTrace: true},
		{Name: "goleak", Detector: detect.Goleak{}},
	}
	for d := 0; d <= 4; d++ {
		specs = append(specs, Spec{
			Name:      fmt.Sprintf("goat-D%d", d),
			Detector:  detect.Goat{},
			Delays:    d,
			NeedTrace: true,
		})
	}
	return specs
}

// Config bounds one evaluation campaign.
type Config struct {
	// MaxExecs is the per-(bug, tool) execution budget (paper: 1000).
	MaxExecs int
	// BaseSeed offsets every trial's seed, for independent repetitions.
	BaseSeed int64
	// Tools is the column lineup; nil selects DefaultTools.
	Tools []Spec
	// Kernels is the bug set; nil selects the full 68-kernel suite.
	Kernels []goker.Kernel
	// Parallel runs up to this many bug rows concurrently (each cell is
	// an independent deterministic campaign, so results are identical to
	// the sequential run). 0 or 1 = sequential.
	Parallel int
}

func (c Config) maxExecs() int {
	if c.MaxExecs <= 0 {
		return 1000
	}
	return c.MaxExecs
}

func (c Config) tools() []Spec {
	if c.Tools == nil {
		return DefaultTools()
	}
	return c.Tools
}

func (c Config) kernels() []goker.Kernel {
	if c.Kernels == nil {
		return goker.All()
	}
	return c.Kernels
}

// Cell is one (bug, tool) outcome: the minimum executions the tool needed
// to expose the bug, or Found=false after the budget.
type Cell struct {
	Bug      string
	Tool     string
	Found    bool
	MinExecs int    // 1-based count of executions until first detection
	Verdict  string // the detection's verdict at that execution
}

// String renders the cell the way Table IV prints it: "PDL-2 (3)" or
// "X (1000)".
func (c Cell) String() string {
	if !c.Found {
		return fmt.Sprintf("X (%d)", c.MinExecs)
	}
	return fmt.Sprintf("%s (%d)", c.Verdict, c.MinExecs)
}

// MinExecs runs one kernel under one tool until first detection or the
// budget, returning the cell.
func MinExecs(k goker.Kernel, spec Spec, maxExecs int, baseSeed int64) Cell {
	cell := Cell{Bug: k.ID, Tool: spec.Name}
	for trial := 0; trial < maxExecs; trial++ {
		opts := sim.Options{
			Seed:    baseSeed + int64(trial),
			Delays:  spec.Delays,
			NoTrace: !spec.NeedTrace,
		}
		r := goker.Run(k, opts)
		if d := spec.Detector.Detect(r); d.Found {
			cell.Found = true
			cell.MinExecs = trial + 1
			cell.Verdict = d.Verdict
			return cell
		}
	}
	cell.MinExecs = maxExecs
	return cell
}

// TableIV is the full evaluation matrix.
type TableIV struct {
	Tools []string
	Rows  []TableIVRow
}

// TableIVRow is one bug's row.
type TableIVRow struct {
	Bug   string
	Cells []Cell // one per tool, in Tools order
}

// RunTableIV evaluates every kernel under every tool.
func RunTableIV(cfg Config) *TableIV {
	tools := cfg.tools()
	kernels := cfg.kernels()
	t := &TableIV{Rows: make([]TableIVRow, len(kernels))}
	for _, s := range tools {
		t.Tools = append(t.Tools, s.Name)
	}
	evalRow := func(i int) {
		row := TableIVRow{Bug: kernels[i].ID}
		for _, s := range tools {
			row.Cells = append(row.Cells, MinExecs(kernels[i], s, cfg.maxExecs(), cfg.BaseSeed))
		}
		t.Rows[i] = row
	}
	if cfg.Parallel <= 1 {
		for i := range kernels {
			evalRow(i)
		}
		return t
	}
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	for i := range kernels {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			evalRow(i)
		}()
	}
	wg.Wait()
	return t
}

// DetectedCount returns, per tool, how many bugs it exposed.
func (t *TableIV) DetectedCount() map[string]int {
	m := map[string]int{}
	for _, row := range t.Rows {
		for i, c := range row.Cells {
			if c.Found {
				m[t.Tools[i]]++
			}
		}
	}
	return m
}

// Column returns all cells of one tool.
func (t *TableIV) Column(tool string) []Cell {
	var out []Cell
	for _, row := range t.Rows {
		for i, c := range row.Cells {
			if t.Tools[i] == tool {
				out = append(out, c)
			}
		}
	}
	return out
}

// String renders the matrix as the paper's Table IV (text form).
func (t *TableIV) String() string {
	s := fmt.Sprintf("%-22s", "BugID")
	for _, tool := range t.Tools {
		s += fmt.Sprintf("%-16s", tool)
	}
	s += "\n"
	for _, row := range t.Rows {
		s += fmt.Sprintf("%-22s", row.Bug)
		for _, c := range row.Cells {
			s += fmt.Sprintf("%-16s", c.String())
		}
		s += "\n"
	}
	counts := t.DetectedCount()
	s += fmt.Sprintf("%-22s", "detected")
	for _, tool := range t.Tools {
		s += fmt.Sprintf("%-16s", fmt.Sprintf("%d/%d", counts[tool], len(t.Rows)))
	}
	s += "\n"
	return s
}

// Figure6Point is one iteration of a coverage campaign.
type Figure6Point struct {
	Iteration int
	Percent   float64
}

// RunFigure6 reproduces Fig. 6: the coverage-percentage growth over
// testing iterations for one kernel at each delay bound in ds.
func RunFigure6(bugID string, iters int, ds []int, baseSeed int64) (map[int][]Figure6Point, error) {
	k, ok := goker.ByID(bugID)
	if !ok {
		return nil, fmt.Errorf("harness: unknown bug %q", bugID)
	}
	out := map[int][]Figure6Point{}
	for _, d := range ds {
		model := cover.NewModel(nil)
		var series []Figure6Point
		for it := 0; it < iters; it++ {
			r := goker.Run(k, sim.Options{Seed: baseSeed + int64(it), Delays: d})
			tree, err := gtree.Build(r.Trace)
			if err != nil {
				return nil, fmt.Errorf("harness: %s D=%d iter %d: %w", bugID, d, it, err)
			}
			st := model.AddRun(tree)
			series = append(series, Figure6Point{Iteration: it + 1, Percent: st.Percent})
		}
		out[d] = series
	}
	return out, nil
}
