// Package harness drives the paper's evaluation: it runs every GoKer
// kernel under every tool configuration, records the minimum number of
// executions each tool needs to expose each bug, and regenerates Table IV
// and Figures 2, 4, 5 and 6.
//
// The harness is hardened against misbehaving kernels: every (bug, tool)
// cell runs under a panic quarantine and a wall-clock watchdog, cells that
// hang the host are retried with a fresh seed a bounded number of times,
// and a campaign always completes end-to-end — failed cells are annotated
// (ERR / HUNG) in Table IV and counted as not-detected by the figures
// instead of aborting the whole evaluation.
package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/engine"
	"goat/internal/fault"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/sim"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// Spec is one tool configuration (a Table IV column).
type Spec struct {
	// Name is the display name, e.g. "goat-D2".
	Name string
	// Detector classifies each execution.
	Detector detect.Detector
	// Delays is the yield bound D for the execution (baselines use 0:
	// they observe native schedules).
	Delays int
	// NeedTrace marks detectors that consume the ECT (GoAT, LockDL).
	NeedTrace bool
}

// Baselines returns the three baseline detector columns (builtin runtime
// detector, lock-order LockDL, end-of-main goleak), all observing native
// (D=0) schedules.
func Baselines() []Spec {
	return []Spec{
		{Name: "builtin", Detector: detect.Builtin{}},
		{Name: "lockdl", Detector: detect.LockDL{}, NeedTrace: true},
		{Name: "goleak", Detector: detect.Goleak{}},
	}
}

// DiffTools returns the differential-fuzzing column lineup: the three
// baselines plus GoAT at D = 0..dmax.
func DiffTools(dmax int) []Spec {
	specs := Baselines()
	for d := 0; d <= dmax; d++ {
		specs = append(specs, Spec{
			Name:      fmt.Sprintf("goat-D%d", d),
			Detector:  detect.Goat{},
			Delays:    d,
			NeedTrace: true,
		})
	}
	return specs
}

// DefaultTools returns the paper's Table IV column lineup: the three
// baselines plus GoAT at D = 0..4.
func DefaultTools() []Spec { return DiffTools(4) }

// PredictSpec returns the predictive-detector column: one native (D=0)
// schedule per execution, mined for latent blocking hazards. A passing
// execution that contains predicted hazards is reported found with a
// POTENTIAL-k verdict.
func PredictSpec() Spec {
	return Spec{Name: "predict", Detector: detect.Predictive{}, NeedTrace: true}
}

// ToolsWithPredict returns DefaultTools plus the predictive column.
// DefaultTools itself stays unchanged so existing goldens are stable.
func ToolsWithPredict() []Spec { return append(DefaultTools(), PredictSpec()) }

// Config bounds one evaluation campaign.
type Config struct {
	// MaxExecs is the per-(bug, tool) execution budget (paper: 1000).
	MaxExecs int
	// BaseSeed offsets every trial's seed, for independent repetitions.
	BaseSeed int64
	// Tools is the column lineup; nil selects DefaultTools.
	Tools []Spec
	// Kernels is the bug set; nil selects the full 68-kernel suite.
	Kernels []goker.Kernel
	// Parallel runs up to this many bug rows concurrently (each cell is
	// an independent deterministic campaign, so results are identical to
	// the sequential run). 0 or 1 = sequential.
	Parallel int

	// Faults enables deterministic fault injection for every execution of
	// the campaign (robustness benchmarking). The zero value disables it.
	Faults fault.Options

	// Buffered opts out of the streaming pipeline: every execution buffers
	// its ECT and detectors run post-hoc on it (the pre-engine behavior).
	// The default streams the online detectors over trace-free runs; both
	// modes produce identical cells.
	Buffered bool

	// EarlyStop lets streaming detectors halt an execution the moment
	// their verdict is decided. Off by default: an early-stopped run is
	// classified by the deciding verdict, which can differ from the
	// settle-time classification (e.g. a lock-order cycle detected before
	// a crash), so campaigns that must match the post-hoc pipeline
	// byte-for-byte leave this off.
	EarlyStop bool

	// CellBudget bounds the wall-clock time one (bug, tool) cell may take
	// before the watchdog abandons it — the analogue of the paper's
	// 30-second watchdog, applied per cell instead of per process. Zero
	// selects the default (30s).
	CellBudget time.Duration

	// Retries is how many times a cell abandoned by the watchdog is
	// retried with a fresh seed before being recorded as HUNG. Zero
	// selects the default (1); negative disables retries.
	Retries int

	// FlightRecDir, when non-empty, attaches a bounded flight recorder to
	// every cell: a failed cell (ERR/HUNG) dumps the last events of its
	// in-flight run to <dir>/flightrec-<bug>-<tool>-<seed>.json in Chrome
	// trace-event format, and the cell records the path.
	FlightRecDir string

	// OnCell, when set, observes every completed cell (for live progress
	// reporting). It may be called from concurrent row workers and must be
	// safe for that.
	OnCell func(Cell)

	// Ctx cancels the campaign between executions: once it is done, the
	// in-flight cell finishes its current run, every not-yet-evaluated
	// cell is recorded CellCanceled, and the campaign returns a partial
	// (but fully populated) table so health reporting can flush what was
	// measured. Nil behaves like context.Background().
	Ctx context.Context
}

func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

func (c Config) maxExecs() int {
	if c.MaxExecs <= 0 {
		return 1000
	}
	return c.MaxExecs
}

func (c Config) tools() []Spec {
	if c.Tools == nil {
		return DefaultTools()
	}
	return c.Tools
}

func (c Config) kernels() []goker.Kernel {
	if c.Kernels == nil {
		// The paper's evaluation set is the pinned 68-kernel GoKer suite;
		// runtime-registered fuzz reproducers are campaigned explicitly.
		return goker.GoKer()
	}
	return c.Kernels
}

func (c Config) cellBudget() time.Duration {
	if c.CellBudget <= 0 {
		return 30 * time.Second
	}
	return c.CellBudget
}

func (c Config) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 1
	}
	return c.Retries
}

// CellStatus records how a cell's evaluation ended at the host level.
type CellStatus uint8

const (
	// CellOK means the campaign loop ran to completion (whether or not
	// the bug was found).
	CellOK CellStatus = iota
	// CellErr means the cell's worker panicked; the panic was quarantined
	// and the campaign continued.
	CellErr
	// CellHung means the cell exceeded its wall-clock budget (even after
	// retries) and was abandoned by the watchdog.
	CellHung
	// CellCanceled means the campaign was canceled (Config.Ctx) before or
	// while the cell was being evaluated; the cell carries no verdict.
	CellCanceled
)

var cellStatusNames = [...]string{"ok", "err", "hung", "canceled"}

// String returns the status name.
func (s CellStatus) String() string {
	if int(s) < len(cellStatusNames) {
		return cellStatusNames[s]
	}
	return fmt.Sprintf("CellStatus(%d)", uint8(s))
}

// Cell is one (bug, tool) outcome: the minimum executions the tool needed
// to expose the bug, or Found=false after the budget. Status departs from
// CellOK when the cell itself failed at the host level.
type Cell struct {
	Bug      string
	Tool     string
	Found    bool
	MinExecs int    // 1-based count of executions until first detection
	Verdict  string // the detection's verdict at that execution

	Status  CellStatus
	Err     string // panic or watchdog message when Status != CellOK
	Retries int    // fresh-seed retries consumed by the watchdog

	Wall      time.Duration // wall-clock time the cell took (all attempts)
	FlightRec string        // flight-recorder dump path (failed cells only)
}

// Failed reports whether the cell failed at the host level (as opposed to
// merely not finding the bug).
func (c Cell) Failed() bool { return c.Status != CellOK }

// String renders the cell the way Table IV prints it: "PDL-2 (3)",
// "X (1000)", or the failure annotations "ERR!" / "HUNG!".
func (c Cell) String() string {
	switch c.Status {
	case CellErr:
		return "ERR!"
	case CellHung:
		return fmt.Sprintf("HUNG! (r%d)", c.Retries)
	case CellCanceled:
		return "CANC!"
	}
	if !c.Found {
		return fmt.Sprintf("X (%d)", c.MinExecs)
	}
	return fmt.Sprintf("%s (%d)", c.Verdict, c.MinExecs)
}

// MinExecs runs one kernel under one tool until first detection or the
// budget, returning the cell. This is the raw, unguarded campaign loop;
// RunTableIV wraps it in the quarantine/watchdog machinery via RunCell.
func MinExecs(k goker.Kernel, spec Spec, maxExecs int, baseSeed int64) Cell {
	return minExecs(k, spec, Config{}, maxExecs, baseSeed, nil)
}

// minExecs is the raw campaign loop; cfg contributes the execution mode
// (faults, buffered, early-stop) while maxExecs and seed are explicit so
// watchdog retries can re-seed without touching the config.
func minExecs(k goker.Kernel, spec Spec, cfg Config, maxExecs int, seed int64, ring *flightRing) Cell {
	cell := Cell{Bug: k.ID, Tool: spec.Name}
	if maxExecs <= 0 {
		cell.MinExecs = maxExecs
		return cell
	}
	var sinks []trace.Sink
	if ring != nil {
		sinks = []trace.Sink{ring}
	}
	rep, err := engine.Run(cfg.ctx(), engine.Config{
		Prog: k.Main,
		Plan: func(i int, _ *engine.Feedback) sim.Options {
			return sim.Options{
				Seed:   seed + int64(i),
				Delays: spec.Delays,
				Faults: cfg.Faults,
			}
		},
		Runs:               maxExecs,
		Detector:           spec.Detector,
		DetectorNeedsTrace: spec.NeedTrace,
		Buffered:           cfg.Buffered,
		EarlyStop:          cfg.EarlyStop,
		Pool:               trace.NewPool(),
		Sinks:              sinks,
		StopOnFound:        true,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			cell.Status = CellCanceled
			cell.Err = "campaign canceled"
			return cell
		}
		// The cell's engine configuration is static and valid; any other
		// error is a programming bug, surfaced through the cell quarantine.
		panic(err)
	}
	if rep.Found != nil {
		cell.Found = true
		cell.MinExecs = rep.Found.Index + 1
		cell.Verdict = rep.Found.Detection.Verdict
		return cell
	}
	cell.MinExecs = maxExecs
	return cell
}

// retrySeedStride separates the seed space of watchdog retries from the
// per-trial seeds of the original attempt.
const retrySeedStride = int64(1) << 32

// flightRingCap bounds the flight recorder: the last N events of the
// in-flight run are retained for the failure dump.
const flightRingCap = 4096

// flightRing is the cell-level flight recorder: a mutex-guarded RingSink
// shared by every run of a cell's campaign. The mutex matters for HUNG
// cells, whose abandoned worker goroutine may still be appending events
// while the watchdog path snapshots the window. Close marks a run
// boundary; the next event resets the ring, so a snapshot always covers
// the tail of the most recent (failing) run, never a stale earlier one.
type flightRing struct {
	mu     sync.Mutex
	ring   *trace.RingSink
	closed bool
}

func newFlightRing() *flightRing {
	return &flightRing{ring: trace.NewRingSink(flightRingCap)}
}

// Event implements trace.Sink.
func (f *flightRing) Event(e trace.Event) {
	f.mu.Lock()
	if f.closed {
		f.ring.Reset()
		f.closed = false
	}
	f.ring.Event(e)
	f.mu.Unlock()
}

// Close implements trace.Sink (called by the runtime at each run's end).
func (f *flightRing) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
}

// Unbatched implements the trace.Unbatched marker: the recorder must see
// events as they are emitted — the watchdog snapshots it while a hung
// run is still in flight, when batched delivery would hold exactly the
// events that matter.
func (f *flightRing) Unbatched() {}

// snapshot copies the recorded window and its drop count.
func (f *flightRing) snapshot() (*trace.Trace, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Snapshot(), f.ring.Dropped()
}

// dumpFlightRec writes a failed cell's recorded window as a Chrome
// trace-event file and records the path on the cell. Dump failures are
// swallowed: forensics must never fail a campaign.
func dumpFlightRec(dir string, cell *Cell, ring *flightRing, seed int64) {
	// Canceled cells are not failures worth forensics: the operator asked
	// the campaign to stop, so only ERR/HUNG cells dump their window.
	if dir == "" || ring == nil || (cell.Status != CellErr && cell.Status != CellHung) {
		return
	}
	tr, dropped := ring.snapshot()
	if tr.Len() == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("flightrec-%s-%s-%d.json", cell.Bug, cell.Tool, seed))
	w, err := os.Create(path)
	if err != nil {
		return
	}
	defer w.Close()
	if err := tr.EncodeChrome(w, trace.ChromeOptions{Dropped: dropped}); err != nil {
		return
	}
	cell.FlightRec = path
	telemetry.HarnessFlightRecs.Inc()
}

// RunCell evaluates one (bug, tool) cell under the hardened regime: the
// campaign loop runs in its own goroutine behind a panic quarantine and a
// wall-clock watchdog, and a cell abandoned by the watchdog is retried
// with a fresh seed up to cfg.retries() times. A worker that panics marks
// the cell ERR; one that exceeds the budget (on every attempt) marks it
// HUNG. The abandoned worker goroutine is left behind — the harness
// cannot kill it, only stop waiting — which is exactly the paper's
// watchdog-and-move-on regime.
func RunCell(k goker.Kernel, spec Spec, cfg Config) Cell {
	start := time.Now()
	var cell Cell
	lastDump := ""
	for attempt := 0; ; attempt++ {
		seed := cfg.BaseSeed + int64(attempt)*retrySeedStride
		cell = guardedMinExecs(k, spec, cfg, seed)
		cell.Retries = attempt
		if cell.FlightRec != "" {
			lastDump = cell.FlightRec
		}
		if cell.Status != CellHung || attempt >= cfg.retries() {
			break
		}
	}
	if cell.Failed() && cell.FlightRec == "" && lastDump != "" {
		// A retried attempt can hang before it emits a single event, so
		// its own flight ring is empty and produced no dump. The cell
		// still names the freshest forensic we have: the dump of the most
		// recent attempt that recorded one.
		cell.FlightRec = lastDump
	}
	cell.Wall = time.Since(start)
	if telemetry.Enabled() {
		telemetry.HarnessCells.Inc()
		telemetry.HarnessExecs.Add(int64(cell.MinExecs))
		telemetry.HarnessCellWall.Observe(cell.Wall.Nanoseconds())
		if cell.Found {
			telemetry.HarnessDetections.Inc()
		}
	}
	return cell
}

// guardedMinExecs is one watchdogged, quarantined attempt at a cell.
func guardedMinExecs(k goker.Kernel, spec Spec, cfg Config, seed int64) Cell {
	var ring *flightRing
	if cfg.FlightRecDir != "" {
		ring = newFlightRing()
	}
	done := make(chan Cell, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- Cell{Bug: k.ID, Tool: spec.Name, Status: CellErr, Err: fmt.Sprint(r)}
			}
		}()
		done <- minExecs(k, spec, cfg, cfg.maxExecs(), seed, ring)
	}()
	watchdog := time.NewTimer(cfg.cellBudget())
	defer watchdog.Stop()
	var cell Cell
	select {
	case c := <-done:
		cell = c
	case <-watchdog.C:
		cell = Cell{
			Bug: k.ID, Tool: spec.Name, Status: CellHung,
			Err: fmt.Sprintf("cell exceeded the %v wall-clock budget", cfg.cellBudget()),
		}
	case <-cfg.ctx().Done():
		// A canceled campaign must not keep waiting out the watchdog
		// budget of a hung worker; the abandoned goroutine is left behind
		// exactly as in the HUNG case.
		cell = Cell{
			Bug: k.ID, Tool: spec.Name, Status: CellCanceled,
			Err: "campaign canceled",
		}
	}
	dumpFlightRec(cfg.FlightRecDir, &cell, ring, seed)
	return cell
}

// TableIV is the full evaluation matrix.
type TableIV struct {
	Tools []string
	Rows  []TableIVRow
}

// TableIVRow is one bug's row.
type TableIVRow struct {
	Bug   string
	Cells []Cell // one per tool, in Tools order
}

// RunTableIV evaluates every kernel under every tool.
func RunTableIV(cfg Config) *TableIV {
	tools := cfg.tools()
	kernels := cfg.kernels()
	t := &TableIV{Rows: make([]TableIVRow, len(kernels))}
	for _, s := range tools {
		t.Tools = append(t.Tools, s.Name)
	}
	// evalRow is additionally wrapped in a row-level quarantine: RunCell
	// already contains per-cell recovery, but a panic in the row
	// bookkeeping itself must also be recorded as a failure instead of
	// killing the campaign (in Parallel mode an unrecovered panic in one
	// worker would take down the whole process).
	evalRow := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				row := TableIVRow{Bug: kernels[i].ID}
				for _, s := range tools {
					c := Cell{
						Bug: kernels[i].ID, Tool: s.Name,
						Status: CellErr, Err: fmt.Sprint(r),
					}
					if cfg.OnCell != nil {
						cfg.OnCell(c)
					}
					row.Cells = append(row.Cells, c)
				}
				t.Rows[i] = row
			}
		}()
		row := TableIVRow{Bug: kernels[i].ID}
		for _, s := range tools {
			var cell Cell
			if cfg.ctx().Err() != nil {
				// Canceled campaign: the matrix is still fully populated
				// so Table IV and CampaignHealth can flush partial results.
				cell = Cell{Bug: kernels[i].ID, Tool: s.Name, Status: CellCanceled, Err: "campaign canceled"}
			} else {
				cell = RunCell(kernels[i], s, cfg)
			}
			if cfg.OnCell != nil {
				cfg.OnCell(cell)
			}
			row.Cells = append(row.Cells, cell)
		}
		t.Rows[i] = row
	}
	if cfg.Parallel <= 1 {
		for i := range kernels {
			evalRow(i)
		}
		return t
	}
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	for i := range kernels {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			evalRow(i)
		}()
	}
	wg.Wait()
	return t
}

// AssembleTableIV builds a Table IV from cells evaluated elsewhere — the
// shard-aware merge of the distributed campaign fabric, where each cell
// arrives from whichever worker held its lease. Rows are laid out in the
// given (bugs × tools) order, so a table assembled from a complete cell
// set is identical to RunTableIV's regardless of evaluation order. A
// missing cell is recorded CellCanceled ("not evaluated"), which is what
// a partially merged campaign (interrupted coordinator) reports.
func AssembleTableIV(bugs, tools []string, cell func(bug, tool string) (Cell, bool)) *TableIV {
	t := &TableIV{Tools: append([]string(nil), tools...)}
	t.Rows = make([]TableIVRow, len(bugs))
	for i, b := range bugs {
		row := TableIVRow{Bug: b}
		for _, tool := range tools {
			c, ok := cell(b, tool)
			if !ok {
				c = Cell{Bug: b, Tool: tool, Status: CellCanceled, Err: "not evaluated"}
			}
			row.Cells = append(row.Cells, c)
		}
		t.Rows[i] = row
	}
	return t
}

// FailedCells returns every cell that failed at the host level, in row
// order — the input of the campaign-health report.
func (t *TableIV) FailedCells() []Cell {
	var out []Cell
	for _, row := range t.Rows {
		for _, c := range row.Cells {
			if c.Failed() {
				out = append(out, c)
			}
		}
	}
	return out
}

// DetectedCount returns, per tool, how many bugs it exposed.
func (t *TableIV) DetectedCount() map[string]int {
	m := map[string]int{}
	for _, row := range t.Rows {
		for i, c := range row.Cells {
			if c.Found {
				m[t.Tools[i]]++
			}
		}
	}
	return m
}

// Column returns all cells of one tool.
func (t *TableIV) Column(tool string) []Cell {
	var out []Cell
	for _, row := range t.Rows {
		for i, c := range row.Cells {
			if t.Tools[i] == tool {
				out = append(out, c)
			}
		}
	}
	return out
}

// String renders the matrix as the paper's Table IV (text form).
func (t *TableIV) String() string {
	s := fmt.Sprintf("%-22s", "BugID")
	for _, tool := range t.Tools {
		s += fmt.Sprintf("%-16s", tool)
	}
	s += "\n"
	for _, row := range t.Rows {
		s += fmt.Sprintf("%-22s", row.Bug)
		for _, c := range row.Cells {
			s += fmt.Sprintf("%-16s", c.String())
		}
		s += "\n"
	}
	counts := t.DetectedCount()
	s += fmt.Sprintf("%-22s", "detected")
	for _, tool := range t.Tools {
		s += fmt.Sprintf("%-16s", fmt.Sprintf("%d/%d", counts[tool], len(t.Rows)))
	}
	s += "\n"
	return s
}

// Figure6Point is one iteration of a coverage campaign.
type Figure6Point struct {
	Iteration int
	Percent   float64
}

// RunFigure6 reproduces Fig. 6: the coverage-percentage growth over
// testing iterations for one kernel at each delay bound in ds. An
// iteration whose run or tree construction fails is quarantined: the
// series carries the last good percentage forward instead of aborting
// the whole campaign.
func RunFigure6(bugID string, iters int, ds []int, baseSeed int64) (map[int][]Figure6Point, error) {
	k, ok := goker.ByID(bugID)
	if !ok {
		return nil, fmt.Errorf("harness: unknown bug %q", bugID)
	}
	out := map[int][]Figure6Point{}
	for _, d := range ds {
		model := cover.NewModel(nil)
		var series []Figure6Point
		last := 0.0
		for it := 0; it < iters; it++ {
			pct, ok := figure6Iter(k, model, baseSeed+int64(it), d)
			if ok {
				last = pct
			}
			series = append(series, Figure6Point{Iteration: it + 1, Percent: last})
		}
		out[d] = series
	}
	return out, nil
}

// figure6Iter runs one coverage iteration under a panic quarantine.
func figure6Iter(k goker.Kernel, model *cover.Model, seed int64, d int) (pct float64, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	r := goker.Run(k, sim.Options{Seed: seed, Delays: d})
	tree, err := gtree.Build(r.Trace)
	if err != nil {
		return 0, false
	}
	st := model.AddRun(tree)
	return st.Percent, true
}
