package harness

import (
	"strings"
	"testing"

	"goat/internal/detect"
	"goat/internal/goker"
)

// smallCfg keeps test campaigns fast while preserving the paper's shape.
func smallCfg() Config {
	return Config{MaxExecs: 200}
}

// tableIVOnce caches the campaign across tests (it is the expensive part).
var tableIVCache *TableIV

func tableIV(t *testing.T) *TableIV {
	t.Helper()
	if tableIVCache == nil {
		tableIVCache = RunTableIV(smallCfg())
	}
	return tableIVCache
}

func TestDefaultToolsLineup(t *testing.T) {
	tools := DefaultTools()
	if len(tools) != 8 {
		t.Fatalf("lineup = %d tools, want 8 (3 baselines + D0..D4)", len(tools))
	}
	if tools[0].Name != "builtin" || tools[7].Name != "goat-D4" {
		t.Fatalf("lineup order wrong: %v", tools)
	}
	if tools[7].Delays != 4 {
		t.Fatalf("goat-D4 delays = %d", tools[7].Delays)
	}
}

func TestGoatVariantsDetectAllBugs(t *testing.T) {
	tab := tableIV(t)
	// The paper's headline: the union of GoAT variants exposes 100% of
	// the 68 blocking bugs.
	missed := map[string]bool{}
	for _, row := range tab.Rows {
		detected := false
		for i, c := range row.Cells {
			if strings.HasPrefix(tab.Tools[i], "goat-") && c.Found {
				detected = true
			}
		}
		if !detected {
			missed[row.Bug] = true
		}
	}
	if len(missed) > 0 {
		t.Fatalf("GoAT variants missed %d bugs: %v", len(missed), missed)
	}
}

func TestBaselinesDetectStrictSubsets(t *testing.T) {
	tab := tableIV(t)
	counts := tab.DetectedCount()
	goatBest := 0
	for _, tool := range tab.Tools {
		if strings.HasPrefix(tool, "goat-") && counts[tool] > goatBest {
			goatBest = counts[tool]
		}
	}
	for _, base := range []string{"builtin", "lockdl", "goleak"} {
		if counts[base] >= goatBest {
			t.Errorf("%s detected %d ≥ best GoAT %d — baselines must underperform",
				base, counts[base], goatBest)
		}
	}
	// The built-in detector sees only global deadlocks; it must miss every
	// pure-leak bug (Expect PDL kernels that never globally deadlock).
	if counts["builtin"] >= len(tab.Rows)*3/4 {
		t.Errorf("builtin detected %d/%d — implausibly high", counts["builtin"], len(tab.Rows))
	}
}

func TestYieldsAccelerateRareBugs(t *testing.T) {
	tab := tableIV(t)
	// Average detection trials over rare bugs must not increase when
	// yields are enabled (D2 vs D0), the paper's central claim.
	avg := func(tool string) (float64, int) {
		sum, n := 0, 0
		for _, row := range tab.Rows {
			k, _ := goker.ByID(row.Bug)
			if !k.Rare {
				continue
			}
			for i, c := range row.Cells {
				if tab.Tools[i] == tool {
					sum += c.MinExecs
					n++
				}
			}
		}
		if n == 0 {
			return 0, 0
		}
		return float64(sum) / float64(n), n
	}
	d0, n0 := avg("goat-D0")
	d2, n2 := avg("goat-D2")
	if n0 == 0 || n2 == 0 {
		t.Fatal("no rare bugs in the suite")
	}
	if d2 > d0 {
		t.Errorf("rare-bug mean trials: D0=%.1f D2=%.1f — yields should accelerate", d0, d2)
	}
	if d0 < 1.5 {
		t.Errorf("rare bugs detected too easily at D0 (mean %.2f): suite lost its rarity", d0)
	}
}

func TestCellString(t *testing.T) {
	c := Cell{Found: true, Verdict: "PDL-2", MinExecs: 3}
	if c.String() != "PDL-2 (3)" {
		t.Fatalf("cell = %q", c.String())
	}
	c = Cell{Found: false, MinExecs: 1000}
	if c.String() != "X (1000)" {
		t.Fatalf("cell = %q", c.String())
	}
}

func TestTableRendering(t *testing.T) {
	tab := tableIV(t)
	s := tab.String()
	for _, want := range []string{"BugID", "moby_28462", "goat-D0", "detected"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table rendering missing %q", want)
		}
	}
}

func TestFigure2Buckets(t *testing.T) {
	tab := tableIV(t)
	f := RunFigure2(tab, "goat-D0")
	total := 0
	for _, n := range f.Buckets {
		total += n
	}
	if total != len(tab.Rows) {
		t.Fatalf("figure 2 buckets sum to %d, want %d", total, len(tab.Rows))
	}
	// Paper: ~70% of bugs are caught in the very first native execution.
	if f.Buckets[0] < len(tab.Rows)/2 {
		t.Errorf("only %d/%d bugs detected on trial 1 at D0 — shape off", f.Buckets[0], len(tab.Rows))
	}
	// And a meaningful tail needs >1 execution.
	if f.Buckets[1]+f.Buckets[2]+f.Buckets[3]+f.Buckets[4] == 0 {
		t.Error("no bug needed more than one trial — rarity lost")
	}
	if !strings.Contains(f.String(), "Figure 2") {
		t.Error("rendering broken")
	}
}

func TestFigure4Classes(t *testing.T) {
	tab := tableIV(t)
	f := RunFigure4(tab)
	counts := tab.DetectedCount()
	for _, tool := range f.Tools {
		if f.Detected(tool) != counts[tool] {
			t.Errorf("%s: figure 4 total %d != detected %d", tool, f.Detected(tool), counts[tool])
		}
	}
	// goleak's detections are leaks (plus crashes), never GDL.
	if f.Counts["goleak"][1] != 0 {
		t.Errorf("goleak reported GDL detections: %v", f.Counts["goleak"])
	}
	// builtin's detections are GDL/TO (plus crashes), never PDL.
	if f.Counts["builtin"][0] != 0 {
		t.Errorf("builtin reported PDL detections: %v", f.Counts["builtin"])
	}
	if !strings.Contains(f.String(), "Figure 4") {
		t.Error("rendering broken")
	}
}

func TestFigure5Percentages(t *testing.T) {
	tab := tableIV(t)
	f := RunFigure5(tab)
	for _, tool := range f.Tools {
		sum := 0.0
		for _, p := range f.Percent[tool] {
			sum += p
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: percentages sum to %.2f", tool, sum)
		}
	}
	if !strings.Contains(f.String(), "Figure 5") {
		t.Error("rendering broken")
	}
}

func TestFigure6CoverageGrowth(t *testing.T) {
	ds := []int{0, 1, 2, 4}
	for _, bug := range []string{"etcd_7443", "kubernetes_11298"} {
		series, err := RunFigure6(bug, 30, ds, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			pts := series[d]
			if len(pts) != 30 {
				t.Fatalf("%s D%d: %d points", bug, d, len(pts))
			}
			if pts[len(pts)-1].Percent <= 0 {
				t.Errorf("%s D%d: final coverage %.1f%%", bug, d, pts[len(pts)-1].Percent)
			}
		}
		// More perturbation must not end up with dramatically less
		// coverage than native execution.
		last := func(d int) float64 { return series[d][29].Percent }
		if last(2) < last(0)-15 {
			t.Errorf("%s: D2 coverage %.1f%% far below D0 %.1f%%", bug, last(2), last(0))
		}
		out := RenderFigure6(bug, series, ds)
		if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "D4") {
			t.Error("rendering broken")
		}
	}
}

func TestRunFigure6UnknownBug(t *testing.T) {
	if _, err := RunFigure6("nope_1", 5, []int{0}, 0); err == nil {
		t.Fatal("unknown bug accepted")
	}
}

func TestMinExecsHonorsBudget(t *testing.T) {
	k, _ := goker.ByID("moby_33293") // deterministic leak
	// builtin never sees it: budget must be exhausted exactly.
	cell := MinExecs(k, Spec{Name: "builtin", Detector: detect.Builtin{}}, 25, 0)
	if cell.Found || cell.MinExecs != 25 {
		t.Fatalf("cell = %+v", cell)
	}
	// goat sees it on the first run.
	cell = MinExecs(k, Spec{Name: "goat", Detector: detect.Goat{}, NeedTrace: true}, 25, 0)
	if !cell.Found || cell.MinExecs != 1 {
		t.Fatalf("cell = %+v", cell)
	}
}

func TestParallelCampaignMatchesSequential(t *testing.T) {
	cfg := Config{MaxExecs: 60, Kernels: goker.All()[:10]}
	seq := RunTableIV(cfg)
	cfg.Parallel = 4
	par := RunTableIV(cfg)
	if seq.String() != par.String() {
		t.Fatalf("parallel campaign diverged from sequential:\n%s\n----\n%s", seq, par)
	}
}
