package harness_test

// External test package: exercises the hardened harness end-to-end,
// including the report-layer campaign-health rendering (package report
// imports harness, so these tests cannot live inside package harness).

import (
	"context"
	"strings"
	"testing"
	"time"

	"goat/internal/cover"
	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/harness"
	"goat/internal/report"
	"goat/internal/sim"
)

// hangKernel blocks the host forever: it parks on a *real* Go channel the
// virtual runtime knows nothing about, so the scheduler's dispatch never
// returns — the exact failure mode the paper handles with its 30-second
// watchdog and manual re-runs.
func hangKernel() goker.Kernel {
	return goker.Kernel{
		ID: "synthetic_hang", Project: "synthetic", Expect: "GDL",
		Description: "host-level hang: blocks on a native channel outside the virtual runtime",
		Main: func(g *sim.G) {
			block := make(chan struct{})
			<-block
		},
	}
}

// panickyDetector panics while evaluating one specific bug — a worker
// panic in the middle of a campaign cell (the detector runs inside the
// cell worker, exactly where an unrecovered panic used to kill the whole
// process in Parallel mode).
type panickyDetector struct {
	inner detect.Detector
	bug   string
}

func (p panickyDetector) Name() string { return "panicky" }

// Detect panics only for the chosen kernel. Detectors see just the
// Result, which carries no bug ID, so the test arranges for that kernel
// to be the only one with a goroutine named after the bug (panicKernel).
func (p panickyDetector) Detect(r *sim.Result) detect.Detection {
	for _, g := range r.Goroutines {
		if g.Name == p.bug {
			panic("forced worker panic for " + p.bug)
		}
	}
	return p.inner.Detect(r)
}

// panicKernel is a healthy, trivial kernel whose only distinguishing mark
// is a child goroutine named like the bug — the handle panickyDetector
// keys on.
func panicKernel(id string) goker.Kernel {
	return goker.Kernel{
		ID: id, Project: "synthetic", Expect: "PDL",
		Description: "healthy kernel whose cell is forced to panic in the detector",
		Main: func(g *sim.G) {
			g.Go(id, func(*sim.G) {})
		},
	}
}

// TestCampaignSurvivesHangAndPanic is the robustness acceptance test: a
// campaign over the full 68-kernel GoKer suite plus one kernel forced to
// hang the host and one cell forced to panic must complete end-to-end,
// mark exactly those cells failed, and still render Table IV and the
// figures.
func TestCampaignSurvivesHangAndPanic(t *testing.T) {
	kernels := append([]goker.Kernel{}, goker.GoKer()...)
	if len(kernels) != 68 {
		t.Fatalf("suite has %d kernels, want 68", len(kernels))
	}
	kernels = append(kernels, hangKernel(), panicKernel("synthetic_panic"))

	tools := []harness.Spec{
		{Name: "goat-D0", Detector: detect.Goat{}, NeedTrace: true},
		{Name: "panicky", Detector: panickyDetector{inner: detect.Goat{}, bug: "synthetic_panic"}, NeedTrace: true},
	}
	cfg := harness.Config{
		MaxExecs:   1,
		Tools:      tools,
		Kernels:    kernels,
		Parallel:   4,
		CellBudget: 250 * time.Millisecond,
		Retries:    1,
	}
	tab := harness.RunTableIV(cfg)

	if len(tab.Rows) != 70 {
		t.Fatalf("campaign produced %d rows, want 70", len(tab.Rows))
	}
	wantFailed := map[string]harness.CellStatus{
		"synthetic_hang/goat-D0":  harness.CellHung,
		"synthetic_hang/panicky":  harness.CellHung,
		"synthetic_panic/panicky": harness.CellErr,
	}
	for _, row := range tab.Rows {
		for _, c := range row.Cells {
			key := c.Bug + "/" + c.Tool
			if want, ok := wantFailed[key]; ok {
				if c.Status != want {
					t.Errorf("cell %s status = %v, want %v (err: %s)", key, c.Status, want, c.Err)
				}
				if c.Found {
					t.Errorf("failed cell %s reported Found", key)
				}
				delete(wantFailed, key)
				continue
			}
			if c.Failed() {
				t.Errorf("unexpected failed cell %s: %v (%s)", key, c.Status, c.Err)
			}
		}
	}
	for key := range wantFailed {
		t.Errorf("cell %s did not fail as forced", key)
	}

	// The hung cells must have consumed their retry budget.
	for _, c := range tab.FailedCells() {
		if c.Status == harness.CellHung && c.Retries != 1 {
			t.Errorf("hung cell %s/%s retries = %d, want 1", c.Bug, c.Tool, c.Retries)
		}
	}

	// Table IV and every derived figure must still render, annotated.
	rendered := tab.String()
	if !strings.Contains(rendered, "HUNG!") || !strings.Contains(rendered, "ERR!") {
		t.Error("Table IV rendering lacks failure annotations")
	}
	if s := harness.RunFigure2(tab, "goat-D0").String(); s == "" {
		t.Error("Figure 2 failed to render on a degraded campaign")
	}
	if s := harness.RunFigure4(tab).String(); s == "" {
		t.Error("Figure 4 failed to render on a degraded campaign")
	}
	if s := harness.RunFigure5(tab).String(); s == "" {
		t.Error("Figure 5 failed to render on a degraded campaign")
	}

	health := report.CampaignHealth(tab)
	if !strings.Contains(health, "3/140 cells failed") {
		t.Errorf("campaign health summary wrong:\n%s", health)
	}
	for _, frag := range []string{"synthetic_hang", "synthetic_panic", "hung", "err"} {
		if !strings.Contains(health, frag) {
			t.Errorf("campaign health summary lacks %q:\n%s", frag, health)
		}
	}
}

// TestHealthyCampaignHealthLine checks the one-line summary of an intact
// campaign.
func TestHealthyCampaignHealthLine(t *testing.T) {
	k, _ := goker.ByID("moby_28462")
	tab := harness.RunTableIV(harness.Config{
		MaxExecs: 5,
		Tools:    []harness.Spec{{Name: "goat-D1", Detector: detect.Goat{}, Delays: 1, NeedTrace: true}},
		Kernels:  []goker.Kernel{k},
	})
	health := report.CampaignHealth(tab)
	if !strings.Contains(health, "all 1 cells completed") {
		t.Fatalf("healthy campaign summary = %q", health)
	}
}

// TestTimeoutRunDoesNotCorruptCoverageTree is the OutcomeTimeout
// satellite: a hung (livelocked) kernel is cut off within MaxSteps,
// classified TO, and its trace still folds into the accumulated
// cross-run coverage model without corrupting it.
func TestTimeoutRunDoesNotCorruptCoverageTree(t *testing.T) {
	livelock := func(g *sim.G) {
		g.Go("ping", func(p *sim.G) {
			for {
				p.HandlerHere()
			}
		})
		for {
			g.HandlerHere()
		}
	}
	r := sim.Run(sim.Options{Seed: 1, MaxSteps: 300}, livelock)
	if r.Outcome != sim.OutcomeTimeout {
		t.Fatalf("livelock outcome = %v, want TO", r.Outcome)
	}

	model := cover.NewModel(nil)
	toTree, err := gtree.Build(r.Trace)
	if err != nil {
		t.Fatalf("building tree of timed-out run: %v", err)
	}
	model.AddRun(toTree)

	// A healthy kernel folded in afterwards must keep the model sane.
	k, _ := goker.ByID("moby_28462")
	r2 := goker.Run(k, sim.Options{Seed: 2, Delays: 2})
	okTree, err := gtree.Build(r2.Trace)
	if err != nil {
		t.Fatalf("building tree of healthy run: %v", err)
	}
	st := model.AddRun(okTree)
	if model.Runs() != 2 {
		t.Fatalf("model runs = %d, want 2", model.Runs())
	}
	if st.Percent < 0 || st.Percent > 100 {
		t.Fatalf("coverage percent corrupted: %v", st.Percent)
	}
	if st.Total <= 0 || st.Covered <= 0 {
		t.Fatalf("coverage stats corrupted: %+v", st)
	}
}

// TestCanceledCampaignFlushesPartialTable: canceling the campaign context
// mid-table must stop evaluating, mark the remaining cells CANC!, and
// still render a fully-populated Table IV plus its health summary — the
// contract behind goat/goatbench's SIGINT handling.
func TestCanceledCampaignFlushesPartialTable(t *testing.T) {
	kernels := goker.GoKer()[:6]
	ctx, cancel := context.WithCancel(context.Background())
	var evaluated int
	cfg := harness.Config{
		MaxExecs: 2,
		Ctx:      ctx,
		Kernels:  kernels,
		Tools:    []harness.Spec{{Name: "goat-D0", Detector: detect.Goat{}, NeedTrace: true}},
		OnCell: func(c harness.Cell) {
			evaluated++
			if evaluated == 2 {
				cancel()
			}
		},
	}
	tab := harness.RunTableIV(cfg)
	if len(tab.Rows) != 6 {
		t.Fatalf("partial table has %d rows, want all 6", len(tab.Rows))
	}
	var canceled, done int
	for _, row := range tab.Rows {
		for _, c := range row.Cells {
			switch c.Status {
			case harness.CellCanceled:
				canceled++
				if c.Err == "" {
					t.Errorf("canceled cell %s/%s carries no reason", c.Bug, c.Tool)
				}
			case harness.CellOK:
				done++
			default:
				t.Errorf("cell %s/%s status = %v", c.Bug, c.Tool, c.Status)
			}
		}
	}
	if done == 0 || canceled == 0 {
		t.Fatalf("cancellation split = %d done / %d canceled, want both non-zero", done, canceled)
	}
	if !strings.Contains(tab.String(), "CANC!") {
		t.Error("Table IV rendering lacks the CANC! annotation")
	}
	health := report.CampaignHealth(tab)
	if !strings.Contains(health, "cells failed") || !strings.Contains(health, "canceled") {
		t.Errorf("campaign health does not surface the cancellation:\n%s", health)
	}
}
