package hb

import (
	"goat/internal/trace"
)

// This file is the dependence layer the DPOR explorer builds on: a
// per-event view of the happens-before relation (one clock per trace
// event instead of one per goroutine), a static dependence predicate over
// event pairs, and a trace-derived enabledness timeline for co-enabled
// checks.
//
// Dependence here is the DPOR notion, not the HB one: two events are
// *dependent* when executing them in the other order could change the
// program's behavior — they touch the same resource non-commutatively, or
// one is a lifecycle action (create/unblock) aimed at the other's
// goroutine. Dependence is a static over-approximation (claiming a
// dependence that isn't there costs extra runs; claiming an independence
// that isn't there loses schedules), while *concurrent* is the dynamic
// question answered by the per-event clocks. A pair that is both
// dependent and Must-concurrent is a candidate reversal: another schedule
// could execute the pair in the opposite order and the program could tell
// the difference. Those are exactly the pairs the DPOR explorer seeds
// backtrack points for.

// readOnly reports that the event only observes its resource: swapping
// two observers can never change program behavior.
func readOnly(e trace.Event) bool {
	switch e.Type {
	case trace.EvVarRead, trace.EvRLock, trace.EvRUnlock:
		return true
	}
	return false
}

// Dependent reports whether reordering the two events could change the
// execution's behavior. The relation is symmetric and intentionally
// over-approximate: any same-resource pair conflicts unless both sides
// are pure observers, and goroutine lifecycle events (create, unblock)
// conflict with every event of the goroutine they target. Events of the
// same goroutine are reported independent — program order is not a race,
// it is fixed.
func Dependent(a, b trace.Event) bool {
	if a.G == b.G {
		return false
	}
	if !relevant(a.Type) || !relevant(b.Type) {
		return false
	}
	// Lifecycle edges: creating or waking a goroutine conflicts with
	// everything that goroutine does — its ops cannot drift before it.
	if a.Type == trace.EvGoCreate && a.Peer == b.G {
		return true
	}
	if b.Type == trace.EvGoCreate && b.Peer == a.G {
		return true
	}
	if a.Type == trace.EvGoUnblock && a.Peer == b.G {
		return true
	}
	if b.Type == trace.EvGoUnblock && b.Peer == a.G {
		return true
	}
	if a.Res == 0 || a.Res != b.Res {
		return false
	}
	if readOnly(a) && readOnly(b) {
		return false
	}
	return true
}

// Deps is the per-event dependence view of one trace: every event paired
// with the acting goroutine's vector clock at that event (post-edge), an
// enabledness timeline for co-enabled queries, and the footprint of the
// replay. Build with BuildDeps; indices are positions in Events.
type Deps struct {
	Mode      Mode
	Events    []trace.Event
	Clocks    []VC // post-edge clock per event; nil for scheduling noise
	Footprint uint64

	// statusIdx/statusOn are per-goroutine enabledness change points, in
	// trace order: statusOn[g][k] is the goroutine's enabled state from
	// event statusIdx[g][k] (exclusive: the state *after* that event) on.
	statusIdx map[trace.GoID][]int
	statusOn  map[trace.GoID][]bool
}

// BuildDeps replays a buffered trace through a fresh engine in the given
// mode and captures the per-event clocks and the enabledness timeline.
func BuildDeps(tr *trace.Trace, mode Mode) *Deps {
	d := &Deps{
		Mode:      mode,
		statusIdx: map[trace.GoID][]int{},
		statusOn:  map[trace.GoID][]bool{},
	}
	if tr == nil {
		return d
	}
	d.Events = tr.Events
	d.Clocks = make([]VC, len(tr.Events))
	en := NewEngine(mode)
	for i, e := range tr.Events {
		en.Event(e)
		if relevant(e.Type) {
			d.Clocks[i] = en.ClockOf(e.G).Clone()
		}
		d.recordStatus(i, e)
	}
	d.Footprint = en.Footprint()
	return d
}

// recordStatus folds one event into the enabledness timeline.
func (d *Deps) recordStatus(i int, e trace.Event) {
	switch e.Type {
	case trace.EvGoCreate:
		d.mark(i, e.Peer, true) // child runnable from creation
	case trace.EvGoStart:
		if len(d.statusIdx[e.G]) == 0 {
			d.mark(i, e.G, true) // main has no create event
		}
	case trace.EvGoBlock:
		d.mark(i, e.G, false)
	case trace.EvGoUnblock:
		if e.Peer != 0 {
			d.mark(i, e.Peer, true)
		}
	case trace.EvGoEnd, trace.EvGoPanic:
		d.mark(i, e.G, false)
	}
}

func (d *Deps) mark(i int, g trace.GoID, on bool) {
	d.statusIdx[g] = append(d.statusIdx[g], i)
	d.statusOn[g] = append(d.statusOn[g], on)
}

// Len returns the number of trace events covered.
func (d *Deps) Len() int { return len(d.Events) }

// EnabledAt reports whether goroutine g was enabled (created, not
// blocked, not ended) in the state just before event i executed.
func (d *Deps) EnabledAt(i int, g trace.GoID) bool {
	idx, on := d.statusIdx[g], d.statusOn[g]
	enabled := false
	for k := 0; k < len(idx) && idx[k] < i; k++ {
		enabled = on[k]
	}
	return enabled
}

// Concurrent reports whether events i and j are unordered by the
// happens-before relation of the build mode. Scheduling-noise events
// carry no clock and are never concurrent with anything.
func (d *Deps) Concurrent(i, j int) bool {
	ci, cj := d.Clocks[i], d.Clocks[j]
	if ci == nil || cj == nil || d.Events[i].G == d.Events[j].G {
		return false
	}
	return ci.Concurrent(cj)
}

// Racing reports whether events i and j are a candidate reversal: a
// dependent pair left unordered by the (Must-mode) happens-before
// relation, so another schedule could execute them in the other order.
func (d *Deps) Racing(i, j int) bool {
	return Dependent(d.Events[i], d.Events[j]) && d.Concurrent(i, j)
}

// CoEnabled refines Racing with the enabledness timeline: the later
// event's goroutine must have been enabled at the earlier event's
// pre-state, otherwise no scheduler choice at that point could have run
// it first. (A goroutine not yet created is *not* co-enabled — its
// creation itself is the dependence that orders the pair.)
func (d *Deps) CoEnabled(i, j int) bool {
	if j < i {
		i, j = j, i
	}
	return d.EnabledAt(i, d.Events[j].G)
}

// RacingPairs returns every racing pair (i < j), in trace order. The
// scan is quadratic in the trace length; kernels' traces are short, and
// the DPOR explorer bounds what it consumes.
func (d *Deps) RacingPairs() [][2]int {
	var out [][2]int
	for i := 0; i < len(d.Events); i++ {
		if d.Clocks[i] == nil {
			continue
		}
		for j := i + 1; j < len(d.Events); j++ {
			if d.Clocks[j] == nil {
				continue
			}
			if d.Racing(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
