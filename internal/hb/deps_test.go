package hb

import (
	"fmt"
	"testing"

	"goat/internal/trace"
)

func traceOf(evs ...trace.Event) *trace.Trace {
	tr := trace.New(len(evs))
	for i, e := range evs {
		e.Ts = int64(i + 1)
		tr.Append(e)
	}
	return tr
}

func TestDependentBasics(t *testing.T) {
	cases := []struct {
		name string
		a, b trace.Event
		want bool
	}{
		{"same goroutine never dependent",
			trace.Event{G: 1, Type: trace.EvChanSend, Res: 5},
			trace.Event{G: 1, Type: trace.EvChanRecv, Res: 5}, false},
		{"same channel send/recv",
			trace.Event{G: 1, Type: trace.EvChanSend, Res: 5},
			trace.Event{G: 2, Type: trace.EvChanRecv, Res: 5}, true},
		{"different resources",
			trace.Event{G: 1, Type: trace.EvChanSend, Res: 5},
			trace.Event{G: 2, Type: trace.EvChanRecv, Res: 6}, false},
		{"lock/lock same mutex",
			trace.Event{G: 1, Type: trace.EvMutexLock, Res: 3},
			trace.Event{G: 2, Type: trace.EvMutexLock, Res: 3}, true},
		{"read-lock pair commutes",
			trace.Event{G: 1, Type: trace.EvRLock, Res: 3},
			trace.Event{G: 2, Type: trace.EvRLock, Res: 3}, false},
		{"read/write var conflict",
			trace.Event{G: 1, Type: trace.EvVarRead, Res: 9},
			trace.Event{G: 2, Type: trace.EvVarWrite, Res: 9}, true},
		{"read/read var commutes",
			trace.Event{G: 1, Type: trace.EvVarRead, Res: 9},
			trace.Event{G: 2, Type: trace.EvVarRead, Res: 9}, false},
		{"create targets child",
			trace.Event{G: 1, Type: trace.EvGoCreate, Peer: 2},
			trace.Event{G: 2, Type: trace.EvChanSend, Res: 5}, true},
		{"unblock targets sleeper",
			trace.Event{G: 1, Type: trace.EvGoUnblock, Peer: 2, Res: 5},
			trace.Event{G: 2, Type: trace.EvChanRecv, Res: 7}, true},
		{"scheduling noise inert",
			trace.Event{G: 1, Type: trace.EvGoSched},
			trace.Event{G: 2, Type: trace.EvGoSched}, false},
	}
	for _, c := range cases {
		if got := Dependent(c.a, c.b); got != c.want {
			t.Errorf("%s: Dependent = %v, want %v", c.name, got, c.want)
		}
		if Dependent(c.a, c.b) != Dependent(c.b, c.a) {
			t.Errorf("%s: Dependent not symmetric", c.name)
		}
	}
}

func TestEnabledAtTimeline(t *testing.T) {
	tr := traceOf(
		trace.Event{G: 1, Type: trace.EvGoStart},              // 0
		trace.Event{G: 1, Type: trace.EvGoCreate, Peer: 2},    // 1
		trace.Event{G: 1, Type: trace.EvGoBlock, Res: 4, Aux: int64(trace.BlockRecv)}, // 2
		trace.Event{G: 2, Type: trace.EvGoStart},              // 3
		trace.Event{G: 2, Type: trace.EvGoUnblock, Peer: 1, Res: 4}, // 4
		trace.Event{G: 2, Type: trace.EvGoEnd},                // 5
		trace.Event{G: 1, Type: trace.EvGoEnd},                // 6
	)
	d := BuildDeps(tr, Must)
	checks := []struct {
		i    int
		g    trace.GoID
		want bool
	}{
		{0, 1, false}, // before its own start event nothing is known
		{1, 1, true},
		{1, 2, false}, // not yet created
		{2, 2, true},  // created at event 1
		{3, 1, true},  // blocks only after event 2 executes... see below
		{4, 1, false}, // blocked during g2's run
		{5, 1, true},  // unblocked by event 4
		{6, 2, false}, // g2 ended at event 5
	}
	// Event 2 is g1's own block: at the state *before* event 3, g1 is
	// blocked (the block executed at index 2 < 3).
	checks[4].want = false
	for _, c := range checks {
		if got := d.EnabledAt(c.i, c.g); got != c.want {
			t.Errorf("EnabledAt(%d, g%d) = %v, want %v", c.i, c.g, got, c.want)
		}
	}
}

func TestRacingPairsConcurrentSends(t *testing.T) {
	// g1 creates g2 and g3; both send on channel 7 with no ordering
	// between them: the send pair is dependent, Must-concurrent, racing.
	tr := traceOf(
		trace.Event{G: 1, Type: trace.EvGoStart},
		trace.Event{G: 1, Type: trace.EvGoCreate, Peer: 2},
		trace.Event{G: 1, Type: trace.EvGoCreate, Peer: 3},
		trace.Event{G: 2, Type: trace.EvGoStart},
		trace.Event{G: 2, Type: trace.EvChanSend, Res: 7}, // 4
		trace.Event{G: 3, Type: trace.EvGoStart},
		trace.Event{G: 3, Type: trace.EvChanSend, Res: 7}, // 6
	)
	d := BuildDeps(tr, Must)
	if !d.Racing(4, 6) {
		t.Fatalf("concurrent same-channel sends not racing")
	}
	if !d.CoEnabled(4, 6) {
		t.Fatalf("concurrent sends not co-enabled (g3 created at event 2)")
	}
	pairs := d.RacingPairs()
	found := false
	for _, p := range pairs {
		if p == [2]int{4, 6} {
			found = true
		}
		if !d.Racing(p[0], p[1]) {
			t.Fatalf("RacingPairs returned non-racing pair %v", p)
		}
	}
	if !found {
		t.Fatalf("RacingPairs missed the send pair: %v", pairs)
	}
	// The creates are HB-ordered before the children's sends: not racing.
	if d.Racing(1, 4) || d.Racing(2, 6) {
		t.Fatalf("create/child pairs reported racing despite HB order")
	}
}

// genEvents decodes fuzz bytes into a synthetic event soup over 4
// goroutines and 3 resources. The sequence need not be an execution the
// scheduler could produce — every property below must hold for arbitrary
// event sequences, because BuildDeps is defined on traces, not programs.
// EvGoCreate is excluded: replaying a create for an already-active
// goroutine resets its clock, which is a trace no scheduler emits.
func genEvents(data []byte) []trace.Event {
	var evs []trace.Event
	for len(data) >= 3 {
		op, gb, rb := data[0], data[1], data[2]
		data = data[3:]
		g := trace.GoID(gb%4 + 1)
		res := trace.ResID(rb%3 + 1)
		peer := trace.GoID(rb%4 + 1)
		var e trace.Event
		switch op % 14 {
		case 0:
			e = trace.Event{G: g, Type: trace.EvChanSend, Res: res}
		case 1:
			e = trace.Event{G: g, Type: trace.EvChanRecv, Res: res, Aux: 1}
		case 2:
			e = trace.Event{G: g, Type: trace.EvChanClose, Res: res}
		case 3:
			e = trace.Event{G: g, Type: trace.EvMutexLock, Res: res}
		case 4:
			e = trace.Event{G: g, Type: trace.EvMutexUnlock, Res: res}
		case 5:
			e = trace.Event{G: g, Type: trace.EvRLock, Res: res}
		case 6:
			e = trace.Event{G: g, Type: trace.EvRUnlock, Res: res}
		case 7:
			e = trace.Event{G: g, Type: trace.EvWgAdd, Res: res, Aux: -1}
		case 8:
			e = trace.Event{G: g, Type: trace.EvWgWait, Res: res}
		case 9:
			e = trace.Event{G: g, Type: trace.EvVarRead, Res: res}
		case 10:
			e = trace.Event{G: g, Type: trace.EvVarWrite, Res: res}
		case 11:
			e = trace.Event{G: g, Type: trace.EvGoBlock, Res: res, Aux: int64(trace.BlockRecv)}
		case 12:
			e = trace.Event{G: g, Type: trace.EvGoUnblock, Peer: peer, Res: res}
		default:
			e = trace.Event{G: g, Type: trace.EvGoSched}
		}
		evs = append(evs, e)
	}
	return evs
}

// pairKey canonicalizes a racing pair for cross-permutation comparison:
// the two events' identities (not their indices), order-normalized.
func pairKey(a, b trace.Event) string {
	a.Ts, b.Ts = 0, 0
	ka, kb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
	if kb < ka {
		ka, kb = kb, ka
	}
	return ka + "|" + kb
}

func racingMultiset(d *Deps) map[string]int {
	out := map[string]int{}
	for _, p := range d.RacingPairs() {
		out[pairKey(d.Events[p[0]], d.Events[p[1]])]++
	}
	return out
}

func FuzzDPORDependence(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 2, 0})                      // two sends, same chan
	f.Add([]byte{3, 0, 1, 3, 1, 1, 4, 0, 1, 4, 1, 1})    // lock/lock then unlocks
	f.Add([]byte{9, 0, 2, 10, 1, 2, 9, 2, 2})            // read/write/read var
	f.Add([]byte{11, 0, 0, 12, 1, 0, 0, 0, 0, 1, 1, 0})  // block, wake, send, recv
	f.Add([]byte{7, 0, 1, 8, 1, 1, 13, 2, 0, 5, 3, 1})   // wg add/wait, sched, rlock
	f.Add([]byte{2, 0, 0, 1, 1, 0, 1, 2, 0, 0, 3, 0})    // close then receives

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*64 {
			data = data[:3*64] // quadratic properties below; bound the soup
		}
		evs := genEvents(data)
		tr := traceOf(evs...)

		must := BuildDeps(tr, Must)
		full := BuildDeps(tr, Full)

		// Dependence is symmetric, mode-independent, and never intra-G.
		for i := range evs {
			for j := range evs {
				if Dependent(evs[i], evs[j]) != Dependent(evs[j], evs[i]) {
					t.Fatalf("Dependent(%d,%d) asymmetric", i, j)
				}
				if evs[i].G == evs[j].G && Dependent(evs[i], evs[j]) {
					t.Fatalf("intra-goroutine pair (%d,%d) dependent", i, j)
				}
			}
		}

		// Full adds edges over Must, so Full orders at least as much:
		// every Full-racing pair must also race under Must. (This is the
		// soundness direction: DPOR driven by Must-mode clocks never sees
		// fewer candidate reversals than a Full-mode analysis would.)
		for _, p := range full.RacingPairs() {
			if !must.Racing(p[0], p[1]) {
				t.Fatalf("pair %v races in Full but not Must", p)
			}
		}

		// Per-goroutine clock monotonicity: a goroutine's clock only grows
		// along its own event sequence.
		last := map[trace.GoID]VC{}
		for i, e := range evs {
			c := must.Clocks[i]
			if c == nil {
				continue
			}
			if prev, ok := last[e.G]; ok && !prev.Leq(c) {
				t.Fatalf("clock of g%d regressed at event %d", e.G, i)
			}
			last[e.G] = c
		}

		// Determinism: rebuilding yields identical footprint and pairs.
		again := BuildDeps(tr, Must)
		if again.Footprint != must.Footprint {
			t.Fatalf("footprint not deterministic: %x vs %x", again.Footprint, must.Footprint)
		}

		// Persistence under reordering: swapping two adjacent independent
		// events (different goroutines, not Dependent) is an equivalent
		// linearization of the same partial order — the racing-pair
		// multiset and the footprint must not change. This is the
		// invariant that makes backtrack sets meaningful: they identify
		// event pairs, not trace positions.
		for i := 0; i+1 < len(evs); i++ {
			a, b := evs[i], evs[i+1]
			if a.G == b.G || Dependent(a, b) {
				continue
			}
			swapped := make([]trace.Event, len(evs))
			copy(swapped, evs)
			swapped[i], swapped[i+1] = swapped[i+1], swapped[i]
			sd := BuildDeps(traceOf(swapped...), Must)
			if sd.Footprint != must.Footprint {
				t.Fatalf("swap at %d changed footprint: %x vs %x", i, sd.Footprint, must.Footprint)
			}
			wantPairs, gotPairs := racingMultiset(must), racingMultiset(sd)
			if len(wantPairs) != len(gotPairs) {
				t.Fatalf("swap at %d changed racing pairs: %d vs %d keys", i, len(wantPairs), len(gotPairs))
			}
			for k, n := range wantPairs {
				if gotPairs[k] != n {
					t.Fatalf("swap at %d changed racing multiplicity of %s: %d vs %d", i, k, n, gotPairs[k])
				}
			}
			break // one swap per input keeps the fuzz round fast
		}

		// EnabledAt is consistent with block/unblock structure: a
		// goroutine is never enabled immediately after its own block.
		for i, e := range evs {
			if e.Type == trace.EvGoBlock && i+1 < len(evs) {
				if must.EnabledAt(i+1, e.G) {
					t.Fatalf("g%d enabled right after its own block at %d", e.G, i)
				}
			}
		}
	})
}
