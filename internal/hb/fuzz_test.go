package hb

import (
	"testing"

	"goat/internal/trace"
)

// decodeVCs deterministically builds three clocks from fuzz input: each
// byte contributes one (goroutine, time) entry, cycling through the three
// clocks. Small universes force comparable, equal and concurrent pairs.
func decodeVCs(data []byte) [3]VC {
	out := [3]VC{{}, {}, {}}
	for i, b := range data {
		g := trace.GoID(1 + (b>>4)&0x3)
		t := int64(b & 0xf)
		out[i%3][g] = t
	}
	return out
}

// FuzzVCLaws throws arbitrary clock triples at the lattice laws the
// engine's soundness rests on.
func FuzzVCLaws(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x11, 0x22, 0x33})
	f.Add([]byte{0x1f, 0x1f, 0x1f, 0x20, 0x31, 0x02})
	f.Add([]byte{0xff, 0x00, 0x7a, 0x15, 0x2c, 0x3e, 0x01, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		vcs := decodeVCs(data)
		a, b, c := vcs[0], vcs[1], vcs[2]

		// Clone independence.
		cl := a.Clone()
		cl.Join(VC{99: 1})
		if _, ok := a[99]; ok {
			t.Fatal("Clone aliases the receiver")
		}

		// Join: commutative, idempotent, associative, upper bound.
		ab := a.Clone()
		ab.Join(b)
		ba := b.Clone()
		ba.Join(a)
		if !vcEqual(ab, ba) {
			t.Fatalf("join not commutative: a=%v b=%v", a, b)
		}
		aa := a.Clone()
		aa.Join(a)
		if !vcEqual(aa, a) {
			t.Fatalf("join not idempotent: %v", a)
		}
		abc1 := ab.Clone()
		abc1.Join(c)
		bc := b.Clone()
		bc.Join(c)
		abc2 := a.Clone()
		abc2.Join(bc)
		if !vcEqual(abc1, abc2) {
			t.Fatalf("join not associative: a=%v b=%v c=%v", a, b, c)
		}
		if !a.Leq(ab) || !b.Leq(ab) {
			t.Fatalf("join not an upper bound: a=%v b=%v", a, b)
		}

		// Leq: reflexive, antisymmetric, transitive; Concurrent consistent.
		if !a.Leq(a) {
			t.Fatalf("Leq not reflexive: %v", a)
		}
		if a.Leq(b) && b.Leq(a) && !vcEqual(a, b) {
			t.Fatalf("Leq not antisymmetric: %v %v", a, b)
		}
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			t.Fatalf("Leq not transitive: %v %v %v", a, b, c)
		}
		if a.Concurrent(a) {
			t.Fatalf("self-concurrent: %v", a)
		}
		if a.Concurrent(b) != b.Concurrent(a) {
			t.Fatalf("Concurrent asymmetric: %v %v", a, b)
		}
		if a.Concurrent(b) && (a.Leq(b) || b.Leq(a)) {
			t.Fatalf("Concurrent contradicts Leq: %v %v", a, b)
		}
	})
}
