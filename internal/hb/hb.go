// Package hb is the shared happens-before layer: a vector-clock engine
// over the ECT event vocabulary that every trace-level analysis builds
// on. It grew out of the clock core that was private to internal/race;
// promoting it lets the race checker, the predictive blocking detector
// and the systematic explorer's schedule pruning share one definition of
// "ordered", so a fixed edge rule fixes every client at once.
//
// The engine is a streaming trace.Sink: feed it the event sequence of an
// execution (live from the scheduler, or replayed from a buffered trace —
// the two are byte-identical views) and it maintains one vector clock per
// goroutine, deriving synchronization edges from the events:
//
//   - program order within each goroutine;
//   - EvGoCreate → the child's first event;
//   - every EvGoUnblock (the waker's clock flows into the woken
//     goroutine), which covers rendezvous channels, mutex handoff,
//     WaitGroup release, Cond signal/broadcast and Once completion;
//   - buffered channels: the k-th send happens-before the k-th receive
//     (FIFO), and a close happens-before every receive that observes it;
//   - mutexes: each release's clock flows into every later acquisition of
//     the same lock (read acquisitions included — a deliberate
//     over-approximation that cannot produce false positives for
//     lock-protected data);
//   - WaitGroup: every counter-decrementing Add flows into each Wait.
//
// Two edge modes are provided. Full applies every rule above — the
// relation a race checker wants, where anything this schedule ordered is
// ordered. Must drops the lock-induced edges (mutex release→acquire and
// lock-kind unblocks): those edges exist only because *this* schedule
// acquired the locks in that order, and a predictive analysis asking
// "could another schedule reverse these?" must not let them mask the
// answer. Must-concurrent events are reorderable candidates; the
// remaining edges (creation, channel, waitgroup, wakeup) are forced by
// the program itself.
//
// Scheduling-noise events (EvGoSched, EvGoPreempt) neither tick clocks
// nor enter the footprint: two executions that differ only in where the
// scheduler yielded have identical clocks and footprints, which is
// exactly what the HB-pruned systematic explorer keys on.
package hb

import (
	"sort"

	"goat/internal/trace"
)

// VC is a vector clock mapping goroutine to logical time.
type VC map[trace.GoID]int64

// Clone returns an independent copy of the clock.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	for g, t := range v {
		out[g] = t
	}
	return out
}

// Join folds other into v (pointwise max).
func (v VC) Join(other VC) {
	for g, t := range other {
		if t > v[g] {
			v[g] = t
		}
	}
}

// Leq reports whether v happens-before-or-equals other (pointwise ≤).
func (v VC) Leq(other VC) bool {
	for g, t := range v {
		if t > other[g] {
			return false
		}
	}
	return true
}

// Concurrent reports that neither clock is ordered before the other.
func (v VC) Concurrent(other VC) bool {
	return !v.Leq(other) && !other.Leq(v)
}

// Mode selects which synchronization edges the engine applies.
type Mode uint8

const (
	// Full applies every edge rule — the relation of the race checker:
	// everything this schedule ordered is ordered.
	Full Mode = iota
	// Must drops the lock-induced edges (mutex release→acquire joins and
	// GoUnblock joins whose resource is a lock): the relation of the
	// predictive analyses, where lock acquisition order is treated as
	// reorderable by another schedule.
	Must
)

// resKind tags a resource by the primitive family its events revealed,
// so Must mode can tell a lock handoff from a channel wakeup.
type resKind uint8

const (
	kindUnknown resKind = iota
	kindLock
	kindChan
	kindCond
	kindWg
)

// Engine is the streaming happens-before engine. The zero value is not
// usable; construct with NewEngine. It implements trace.Sink.
type Engine struct {
	mode   Mode
	clocks map[trace.GoID]VC

	lockVC  map[trace.ResID]VC   // released-lock clocks (Full mode)
	closeVC map[trace.ResID]VC   // channel-close clocks
	sendVC  map[trace.ResID][]VC // FIFO of send clocks per channel
	wgVC    map[trace.ResID]VC   // WaitGroup Done accumulation
	kinds   map[trace.ResID]resKind

	events    int
	footprint uint64

	// Observer, when set before streaming, is called for every
	// clock-ticking event after its edges have been applied, with the
	// acting goroutine's current clock. The clock is borrowed: observers
	// that keep it must Clone.
	Observer func(e trace.Event, vc VC)
}

// NewEngine returns an empty engine in the given mode.
func NewEngine(mode Mode) *Engine {
	return &Engine{
		mode:    mode,
		clocks:  map[trace.GoID]VC{},
		lockVC:  map[trace.ResID]VC{},
		closeVC: map[trace.ResID]VC{},
		sendVC:  map[trace.ResID][]VC{},
		wgVC:    map[trace.ResID]VC{},
		kinds:   map[trace.ResID]resKind{},
	}
}

// Reset returns the engine to its initial state (keeping its mode and
// observer), so a campaign can recycle one engine across executions.
func (en *Engine) Reset() {
	clear(en.clocks)
	clear(en.lockVC)
	clear(en.closeVC)
	clear(en.sendVC)
	clear(en.wgVC)
	clear(en.kinds)
	en.events = 0
	en.footprint = 0
}

// Events returns how many clock-ticking events the engine has consumed.
func (en *Engine) Events() int { return en.events }

// ClockOf returns the live clock of g (borrowed — Clone to keep).
func (en *Engine) ClockOf(g trace.GoID) VC { return en.clockOf(g) }

func (en *Engine) clockOf(g trace.GoID) VC {
	if c, ok := en.clocks[g]; ok {
		return c
	}
	c := VC{}
	en.clocks[g] = c
	return c
}

// relevant reports whether the event type participates in the
// happens-before relation. Pure scheduling noise does not: a forced or
// natural yield changes where the processor went, not what the program
// synchronized on.
func relevant(t trace.Type) bool {
	return t != trace.EvGoSched && t != trace.EvGoPreempt
}

// markKind records the primitive family a resource was seen used as.
func (en *Engine) markKind(res trace.ResID, k resKind) {
	if res != 0 && en.kinds[res] == kindUnknown {
		en.kinds[res] = k
	}
}

// Event implements trace.Sink: tick the acting goroutine's clock, apply
// the event's synchronization edges, fold the event into the footprint.
func (en *Engine) Event(e trace.Event) {
	if !relevant(e.Type) {
		return
	}
	vc := en.clockOf(e.G)
	vc[e.G]++

	switch e.Type {
	case trace.EvGoCreate:
		child := vc.Clone()
		child[e.Peer] = child[e.Peer] + 1
		en.clocks[e.Peer] = child
	case trace.EvGoUnblock:
		if e.Peer != 0 && e.Peer != e.G {
			if en.mode == Must && en.kinds[e.Res] == kindLock {
				break // lock handoff: schedule-induced, not a must edge
			}
			en.clockOf(e.Peer).Join(vc)
		}
	case trace.EvGoBlock:
		switch e.BlockReason() {
		case trace.BlockSend:
			// A parked sender's pre-park clock is what the eventual
			// receiver must inherit; its own ChanSend event is only
			// emitted after it wakes, too late for FIFO alignment.
			en.markKind(e.Res, kindChan)
			if e.Res != 0 {
				en.sendVC[e.Res] = append(en.sendVC[e.Res], vc.Clone())
			}
		case trace.BlockRecv:
			en.markKind(e.Res, kindChan)
		case trace.BlockMutex, trace.BlockRMutex:
			en.markKind(e.Res, kindLock)
		case trace.BlockCond:
			en.markKind(e.Res, kindCond)
		case trace.BlockWaitGroup:
			en.markKind(e.Res, kindWg)
		}
	case trace.EvChanMake:
		en.markKind(e.Res, kindChan)
	case trace.EvChanSend:
		// Direct handoffs to a parked receiver (Peer != 0) are covered
		// by the EvGoUnblock edge; post-wake sends (Blocked) already
		// pushed their clock at park time.
		en.markKind(e.Res, kindChan)
		if !e.Blocked && e.Peer == 0 && e.Res != 0 {
			en.sendVC[e.Res] = append(en.sendVC[e.Res], vc.Clone())
		}
	case trace.EvChanRecv:
		// A receiver that parked got its value by direct delivery and
		// its ordering via EvGoUnblock; only completed-in-place
		// receives consume a queued send clock. Res 0 (identity the
		// producer could not synthesize) derives no resource edge —
		// joining through a shared bucket would fabricate ordering
		// between unrelated channels.
		en.markKind(e.Res, kindChan)
		if e.Res == 0 {
			break
		}
		if !e.Blocked && e.Aux == 1 {
			if q := en.sendVC[e.Res]; len(q) > 0 {
				vc.Join(q[0])
				en.sendVC[e.Res] = q[1:]
			}
		}
		if e.Aux == 0 { // receive observed the close
			if cvc, ok := en.closeVC[e.Res]; ok {
				vc.Join(cvc)
			}
		}
	case trace.EvSelectCase:
		// Select clauses mirror the plain-channel rules; blocked
		// clauses rely on the EvGoUnblock edge alone.
		en.markKind(e.Res, kindChan)
		if e.Blocked || e.Res == 0 {
			break
		}
		if e.Str == "send" && e.Peer == 0 {
			en.sendVC[e.Res] = append(en.sendVC[e.Res], vc.Clone())
		}
		if e.Str == "recv" {
			if q := en.sendVC[e.Res]; len(q) > 0 {
				vc.Join(q[0])
				en.sendVC[e.Res] = q[1:]
			}
		}
	case trace.EvChanClose:
		en.markKind(e.Res, kindChan)
		if e.Res != 0 {
			en.closeVC[e.Res] = vc.Clone()
		}
	case trace.EvMutexUnlock, trace.EvRWUnlock, trace.EvRUnlock:
		en.markKind(e.Res, kindLock)
		if en.mode == Must || e.Res == 0 {
			break
		}
		acc, ok := en.lockVC[e.Res]
		if !ok {
			acc = VC{}
			en.lockVC[e.Res] = acc
		}
		acc.Join(vc)
	case trace.EvMutexLock, trace.EvRWLock, trace.EvRLock:
		en.markKind(e.Res, kindLock)
		if en.mode == Must || e.Res == 0 {
			break
		}
		if acc, ok := en.lockVC[e.Res]; ok {
			vc.Join(acc)
		}
	case trace.EvWgAdd:
		en.markKind(e.Res, kindWg)
		if e.Aux < 0 && e.Res != 0 {
			acc, ok := en.wgVC[e.Res]
			if !ok {
				acc = VC{}
				en.wgVC[e.Res] = acc
			}
			acc.Join(vc)
		}
	case trace.EvWgWait:
		en.markKind(e.Res, kindWg)
		if acc, ok := en.wgVC[e.Res]; e.Res != 0 && ok {
			vc.Join(acc)
		}
	case trace.EvCondWait, trace.EvCondSignal, trace.EvCondBroadcast:
		en.markKind(e.Res, kindCond)
	}

	en.events++
	en.footprint += eventHash(e, vc)
	if en.Observer != nil {
		en.Observer(e, vc)
	}
}

// Close implements trace.Sink.
func (en *Engine) Close() {}

// Footprint returns the running HB-equivalence fingerprint: an
// order-independent hash of every consumed event together with its
// vector clock. Two executions of the same program whose traces are
// interleavings of the same happens-before partial order fold to the
// same footprint, whatever total order the scheduler picked; schedule
// noise (yields, preemptions) is invisible to it. The converse holds
// only up to 64-bit hashing, so clients treat footprint equality as
// "already explored", never as a proof of difference.
func (en *Engine) Footprint() uint64 { return en.footprint }

// Graph is an immutable snapshot of the happens-before state at the end
// of a stream: the final clock of every goroutine plus the footprint.
type Graph struct {
	Mode      Mode
	Clocks    map[trace.GoID]VC
	Events    int
	Footprint uint64
}

// Snapshot clones the engine state into a Graph.
func (en *Engine) Snapshot() *Graph {
	g := &Graph{
		Mode:      en.mode,
		Clocks:    make(map[trace.GoID]VC, len(en.clocks)),
		Events:    en.events,
		Footprint: en.footprint,
	}
	for id, vc := range en.clocks {
		g.Clocks[id] = vc.Clone()
	}
	return g
}

// Goroutines returns the goroutines of the snapshot in sorted order.
func (g *Graph) Goroutines() []trace.GoID {
	out := make([]trace.GoID, 0, len(g.Clocks))
	for id := range g.Clocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two snapshots carry identical clocks, event
// counts and footprints.
func (g *Graph) Equal(o *Graph) bool {
	if g.Events != o.Events || g.Footprint != o.Footprint || len(g.Clocks) != len(o.Clocks) {
		return false
	}
	for id, vc := range g.Clocks {
		ovc, ok := o.Clocks[id]
		if !ok || len(vc) != len(ovc) {
			return false
		}
		if !vc.Leq(ovc) || !ovc.Leq(vc) {
			return false
		}
	}
	return true
}

// FromTrace replays a buffered trace through a fresh engine and returns
// the snapshot — the post-hoc entry point, byte-equivalent to streaming.
func FromTrace(tr *trace.Trace, mode Mode) *Graph {
	en := NewEngine(mode)
	if tr != nil {
		// Concrete-typed loop rather than tr.Replay(en): the devirtualized
		// Event call keeps the per-event path allocation-free.
		for _, e := range tr.Events {
			en.Event(e)
		}
	}
	return en.Snapshot()
}

// ---------------------------------------------------------------------
// Footprint hashing.

// mix is the splitmix64 finalizer: a cheap avalanche so that summing
// per-event hashes (the commutative, order-independent fold) does not
// let structured inputs cancel.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// eventHash folds one event and its post-edge clock into a single
// order-independent contribution. The logical timestamp is excluded (it
// encodes the total order); the clock itself is hashed commutatively
// because map iteration order is unspecified.
func eventHash(e trace.Event, vc VC) uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(e.G))
	h = fnvMix(h, uint64(e.Type))
	h = fnvMix(h, uint64(e.Res))
	h = fnvMix(h, uint64(e.Peer))
	h = fnvMix(h, uint64(e.Aux))
	if e.Blocked {
		h = fnvMix(h, 1)
	}
	h = fnvStr(h, e.File)
	h = fnvMix(h, uint64(e.Line))
	h = fnvStr(h, e.Str)
	var cl uint64
	for g, t := range vc {
		cl += mix(uint64(g)*0x9e3779b97f4a7c15 ^ uint64(t))
	}
	h = fnvMix(h, cl)
	return mix(h)
}
