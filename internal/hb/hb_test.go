package hb

import (
	"math/rand"
	"testing"

	"goat/internal/trace"
)

// randVC draws a random clock over a small goroutine universe so that
// comparable and incomparable pairs both occur often.
func randVC(rng *rand.Rand) VC {
	v := VC{}
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		v[trace.GoID(1+rng.Intn(4))] = int64(rng.Intn(6))
	}
	return v
}

func vcEqual(a, b VC) bool { return a.Leq(b) && b.Leq(a) }

// TestVCLaws checks the algebraic laws of the vector-clock lattice on a
// seeded random sample: join is commutative, idempotent and monotone,
// and Leq is a partial order.
func TestVCLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := randVC(rng), randVC(rng), randVC(rng)

		// Commutativity: a⊔b == b⊔a.
		ab := a.Clone()
		ab.Join(b)
		ba := b.Clone()
		ba.Join(a)
		if !vcEqual(ab, ba) {
			t.Fatalf("join not commutative: %v vs %v (a=%v b=%v)", ab, ba, a, b)
		}

		// Idempotence: a⊔a == a.
		aa := a.Clone()
		aa.Join(a)
		if !vcEqual(aa, a) {
			t.Fatalf("join not idempotent: %v != %v", aa, a)
		}

		// The join is an upper bound and monotone: a ≤ a⊔b, b ≤ a⊔b.
		if !a.Leq(ab) || !b.Leq(ab) {
			t.Fatalf("join not an upper bound: a=%v b=%v a⊔b=%v", a, b, ab)
		}

		// Associativity: (a⊔b)⊔c == a⊔(b⊔c).
		abc1 := ab.Clone()
		abc1.Join(c)
		bc := b.Clone()
		bc.Join(c)
		abc2 := a.Clone()
		abc2.Join(bc)
		if !vcEqual(abc1, abc2) {
			t.Fatalf("join not associative: %v vs %v", abc1, abc2)
		}

		// Leq is reflexive.
		if !a.Leq(a) {
			t.Fatalf("Leq not reflexive on %v", a)
		}
		// Antisymmetric: mutual Leq means equality.
		if a.Leq(b) && b.Leq(a) && !vcEqual(a, b) {
			t.Fatalf("Leq not antisymmetric: %v vs %v", a, b)
		}
		// Transitive.
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			t.Fatalf("Leq not transitive: %v ≤ %v ≤ %v", a, b, c)
		}
		// Concurrent is irreflexive and symmetric.
		if a.Concurrent(a) {
			t.Fatalf("clock concurrent with itself: %v", a)
		}
		if a.Concurrent(b) != b.Concurrent(a) {
			t.Fatalf("Concurrent not symmetric: %v vs %v", a, b)
		}
	}
}

func TestCloneNeverAliases(t *testing.T) {
	a := VC{1: 3, 2: 5}
	b := a.Clone()
	b[1] = 99
	b[7] = 1
	if a[1] != 3 {
		t.Fatalf("clone aliased the original: %v", a)
	}
	if _, ok := a[7]; ok {
		t.Fatalf("clone write leaked into original: %v", a)
	}
	a.Join(VC{9: 9})
	if _, ok := b[9]; ok {
		t.Fatalf("original join leaked into clone: %v", b)
	}
}

// ev is a shorthand event constructor for engine unit tests.
func ev(g trace.GoID, t trace.Type, res trace.ResID) trace.Event {
	return trace.Event{G: g, Type: t, Res: res}
}

func TestEngineProgramOrder(t *testing.T) {
	en := NewEngine(Full)
	en.Event(ev(1, trace.EvChanMake, 1))
	en.Event(ev(1, trace.EvUserLog, 0))
	if got := en.ClockOf(1)[1]; got != 2 {
		t.Fatalf("program order: clock[1] = %d, want 2", got)
	}
	if en.Events() != 2 {
		t.Fatalf("events = %d, want 2", en.Events())
	}
}

func TestEngineGoCreateEdge(t *testing.T) {
	en := NewEngine(Full)
	en.Event(ev(1, trace.EvUserLog, 0))
	en.Event(trace.Event{G: 1, Type: trace.EvGoCreate, Peer: 2})
	parent := en.ClockOf(1).Clone()
	child := en.ClockOf(2)
	if !parent.Leq(child) {
		t.Fatalf("parent clock %v not ≤ child clock %v", parent, child)
	}
	if child[2] == 0 {
		t.Fatalf("child did not get its own component: %v", child)
	}
}

func TestEngineUnblockEdge(t *testing.T) {
	en := NewEngine(Full)
	en.Event(ev(1, trace.EvUserLog, 0))
	en.Event(ev(2, trace.EvUserLog, 0))
	before := en.ClockOf(1).Clone()
	en.Event(trace.Event{G: 1, Type: trace.EvGoUnblock, Peer: 2, Res: 7})
	if !before.Leq(en.ClockOf(2)) {
		t.Fatalf("unblock edge missing: waker %v, woken %v", before, en.ClockOf(2))
	}
}

func TestEngineBufferedChannelFIFO(t *testing.T) {
	en := NewEngine(Full)
	// g1 performs two buffered sends; g2 receives twice in place.
	en.Event(trace.Event{G: 1, Type: trace.EvChanSend, Res: 3})
	afterFirstSend := en.ClockOf(1).Clone()
	en.Event(trace.Event{G: 1, Type: trace.EvChanSend, Res: 3})
	en.Event(trace.Event{G: 2, Type: trace.EvChanRecv, Res: 3, Aux: 1})
	if !afterFirstSend.Leq(en.ClockOf(2)) {
		t.Fatalf("first send %v not ≤ first recv %v", afterFirstSend, en.ClockOf(2))
	}
	full := en.ClockOf(1).Clone()
	en.Event(trace.Event{G: 2, Type: trace.EvChanRecv, Res: 3, Aux: 1})
	if !full.Leq(en.ClockOf(2)) {
		t.Fatalf("second send %v not ≤ second recv %v", full, en.ClockOf(2))
	}
}

func TestEngineCloseEdge(t *testing.T) {
	en := NewEngine(Full)
	en.Event(ev(1, trace.EvUserLog, 0))
	en.Event(trace.Event{G: 1, Type: trace.EvChanClose, Res: 3})
	closer := en.ClockOf(1).Clone()
	// Aux=0 receive observed the close.
	en.Event(trace.Event{G: 2, Type: trace.EvChanRecv, Res: 3, Aux: 0})
	if !closer.Leq(en.ClockOf(2)) {
		t.Fatalf("close %v not ≤ close-observing recv %v", closer, en.ClockOf(2))
	}
}

func TestEngineLockEdgeFullVsMust(t *testing.T) {
	feed := func(en *Engine) {
		en.Event(ev(1, trace.EvMutexLock, 5))
		en.Event(ev(1, trace.EvMutexUnlock, 5))
		en.Event(ev(2, trace.EvMutexLock, 5))
	}
	full := NewEngine(Full)
	feed(full)
	if !full.ClockOf(1).Leq(full.ClockOf(2).Clone()) {
		// g2's own tick makes its clock strictly above g1's joined clock.
		t.Fatalf("Full mode: release %v not ≤ acquire %v", full.ClockOf(1), full.ClockOf(2))
	}
	must := NewEngine(Must)
	feed(must)
	if !must.ClockOf(1).Concurrent(must.ClockOf(2)) {
		t.Fatalf("Must mode: lock-ordered clocks not concurrent: %v vs %v",
			must.ClockOf(1), must.ClockOf(2))
	}
}

func TestEngineMustDropsLockUnblock(t *testing.T) {
	feed := func(en *Engine) {
		// Res 5 is revealed as a lock by the block reason, then the unlock
		// hands it off via GoUnblock.
		en.Event(trace.Event{G: 2, Type: trace.EvGoBlock, Res: 5, Aux: int64(trace.BlockMutex)})
		en.Event(trace.Event{G: 1, Type: trace.EvGoUnblock, Res: 5, Peer: 2})
	}
	full := NewEngine(Full)
	feed(full)
	if full.ClockOf(1).Concurrent(full.ClockOf(2)) {
		t.Fatal("Full mode must keep the lock handoff edge")
	}
	must := NewEngine(Must)
	feed(must)
	if !must.ClockOf(1).Concurrent(must.ClockOf(2)) {
		t.Fatal("Must mode must drop the lock handoff edge")
	}
}

func TestEngineWaitGroupEdge(t *testing.T) {
	en := NewEngine(Full)
	en.Event(ev(1, trace.EvUserLog, 0))
	en.Event(trace.Event{G: 1, Type: trace.EvWgAdd, Res: 4, Aux: -1})
	done := en.ClockOf(1).Clone()
	en.Event(trace.Event{G: 2, Type: trace.EvWgWait, Res: 4})
	if !done.Leq(en.ClockOf(2)) {
		t.Fatalf("Done %v not ≤ Wait %v", done, en.ClockOf(2))
	}
}

func TestSchedulingNoiseInvisible(t *testing.T) {
	base := []trace.Event{
		ev(1, trace.EvChanMake, 1),
		{G: 1, Type: trace.EvGoCreate, Peer: 2},
		{G: 2, Type: trace.EvChanSend, Res: 1},
		{G: 1, Type: trace.EvChanRecv, Res: 1, Aux: 1},
	}
	noisy := []trace.Event{
		base[0],
		{G: 1, Type: trace.EvGoSched},
		base[1],
		{G: 2, Type: trace.EvGoPreempt},
		base[2],
		{G: 1, Type: trace.EvGoSched},
		base[3],
	}
	a, b := NewEngine(Full), NewEngine(Full)
	for _, e := range base {
		a.Event(e)
	}
	for _, e := range noisy {
		b.Event(e)
	}
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("yield/preempt events changed the HB graph")
	}
}

func TestFootprintOrderIndependent(t *testing.T) {
	// Two goroutines with no cross edges: any interleaving is
	// HB-equivalent and must fold to the same footprint.
	seq1 := []trace.Event{
		ev(1, trace.EvMutexLock, 1),
		ev(1, trace.EvMutexUnlock, 1),
		ev(2, trace.EvChanMake, 2),
		ev(2, trace.EvChanSend, 2),
	}
	seq2 := []trace.Event{seq1[2], seq1[0], seq1[3], seq1[1]}
	a, b := NewEngine(Must), NewEngine(Must)
	for _, e := range seq1 {
		a.Event(e)
	}
	for _, e := range seq2 {
		b.Event(e)
	}
	if a.Footprint() != b.Footprint() {
		t.Fatalf("interleaving changed footprint: %x vs %x", a.Footprint(), b.Footprint())
	}
	// A genuinely different event mix must (overwhelmingly) differ.
	c := NewEngine(Must)
	for _, e := range seq1[:3] {
		c.Event(e)
	}
	if a.Footprint() == c.Footprint() {
		t.Fatal("different event sets collided (hash degenerate)")
	}
}

func TestEngineResetAndReuse(t *testing.T) {
	en := NewEngine(Full)
	var observed int
	en.Observer = func(trace.Event, VC) { observed++ }
	en.Event(ev(1, trace.EvChanMake, 1))
	first := en.Snapshot()
	en.Reset()
	if en.Events() != 0 || en.Footprint() != 0 {
		t.Fatal("Reset left state behind")
	}
	en.Event(ev(1, trace.EvChanMake, 1))
	if !en.Snapshot().Equal(first) {
		t.Fatal("reused engine diverged from fresh run")
	}
	if observed != 2 {
		t.Fatalf("observer calls = %d, want 2 (kept across Reset)", observed)
	}
}

func TestFromTraceMatchesStreaming(t *testing.T) {
	tr := trace.New(0)
	events := []trace.Event{
		ev(1, trace.EvChanMake, 1),
		{G: 1, Type: trace.EvGoCreate, Peer: 2},
		{G: 2, Type: trace.EvChanSend, Res: 1},
		{G: 1, Type: trace.EvChanRecv, Res: 1, Aux: 1},
	}
	en := NewEngine(Full)
	for _, e := range events {
		tr.Event(e)
		en.Event(e)
	}
	if !en.Snapshot().Equal(FromTrace(tr, Full)) {
		t.Fatal("FromTrace disagrees with the streaming engine")
	}
	if FromTrace(nil, Full).Events != 0 {
		t.Fatal("FromTrace(nil) must be empty")
	}
}

func TestGraphGoroutinesSorted(t *testing.T) {
	en := NewEngine(Full)
	en.Event(ev(3, trace.EvUserLog, 0))
	en.Event(ev(1, trace.EvUserLog, 0))
	en.Event(ev(2, trace.EvUserLog, 0))
	gs := en.Snapshot().Goroutines()
	if len(gs) != 3 || gs[0] != 1 || gs[1] != 2 || gs[2] != 3 {
		t.Fatalf("Goroutines() = %v, want [1 2 3]", gs)
	}
}
