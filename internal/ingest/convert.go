// Conversion of parsed native trace events into the ECT vocabulary.
//
// The converter runs in three passes over the timed events:
//
//  1. attribute: walk each M's batch stream in file order, tracking the
//     goroutine currently running on that M, so every event gains an
//     acting goroutine (native events are implicitly "the current g").
//  2. correlate: derive heuristic resource identities by unioning the
//     block site of every park with the wake site that released it —
//     the unblock edge is the only place the runtime connects the two
//     ends of a channel/mutex/cond rendezvous.
//  3. emit: merge the per-M streams into one total order by timestamp
//     and run the goroutine state machine, producing ECT events with
//     logical timestamps 1..N.
//
// What the native tracer cannot tell us stays unknowable and is marked
// as such: only *blocking* operations appear (no uncontended
// acquisitions, no unlocks — CapOpEvents absent), goroutine creations
// that predate the trace window are invisible (CapCreateObserved
// absent), and resource identities are correlation buckets, not object
// identities (CapExactResIDs absent).
package ingest

import (
	"fmt"
	"sort"
	"strings"

	"goat/internal/trace"
)

// rec is one attributed native event: the wire event plus the goroutine
// that performed it (0 when no goroutine was running on the M).
type rec struct {
	wireEvent
	g uint64
}

// gState tracks one native goroutine through conversion.
type gState struct {
	introduced bool
	started    bool
	system     bool
	orphan     bool // entered the trace without an observed creation
	name       string
	createFile string
	createLine int

	// Current park, when blocked.
	blocked     bool
	blockReason trace.BlockReason
	blockFile   string
	blockLine   int
	blockKey    string // correlation key ("" when the reason carries no resource)
	blockTs     uint64 // ticks at park

	// A wake arrived; the next GoStart emits the completion event.
	pendingCompletion trace.Type
	wakes             int // times this goroutine was woken during the window
	ended             bool
}

// converter holds the cross-pass state.
type converter struct {
	w   *wireTrace
	gs  map[uint64]*gState
	uf  map[string]string       // union-find parent, site-correlation keys
	res map[string]trace.ResID  // canonical key → assigned ResID
	out *trace.Trace

	// ticks records, per emitted ECT event, the native ticks of the wire
	// event that produced it. Logical timestamps stay 1..N (the ECT
	// contract); the side table is what lets profile builders recover
	// real blocked durations from a native window.
	ticks    []uint64
	curTicks uint64

	minTs, maxTs uint64 // observed tick range
	created      int    // creations observed in-window
	orphans      int
	droppedWakes int // unblocks with no attributable waker
}

func (c *converter) gOf(id uint64) *gState {
	g, ok := c.gs[id]
	if !ok {
		g = &gState{}
		c.gs[id] = g
	}
	return g
}

// ---------------------------------------------------------------------
// Pass 1: per-M goroutine attribution.

func (c *converter) attribute() []rec {
	curG := map[uint64]uint64{} // M → running goroutine
	out := make([]rec, 0, len(c.w.events))
	for _, ev := range c.w.events {
		g := curG[ev.m]
		switch ev.typ {
		case wevGoStart, wevGoCreateSyscall:
			// [g, ...]: the named goroutine takes the M.
			curG[ev.m] = ev.args[0]
			g = ev.args[0]
		case wevGoStatus, wevGoStatusStack:
			// [g, m, status, ...]: a Running or Syscall status
			// re-establishes the M binding at a generation boundary (a
			// goroutine in a syscall still owns its M).
			if s := goStatus(ev.args[2]); (s == statusRunning || s == statusSyscall) && ev.args[1] == ev.m {
				curG[ev.m] = ev.args[0]
			}
			g = ev.args[0]
		case wevGoBlock, wevGoStop, wevGoDestroy, wevGoDestroySysc, wevGoSyscallEndBl:
			// The acting goroutine was captured above; it leaves the M.
			curG[ev.m] = 0
		case wevGoSwitch, wevGoSwitchDestroy:
			// The current goroutine yields directly to args[0].
			curG[ev.m] = ev.args[0]
		}
		out = append(out, rec{wireEvent: ev, g: g})
		if ev.ts > 0 {
			if c.minTs == 0 || ev.ts < c.minTs {
				c.minTs = ev.ts
			}
			if ev.ts > c.maxTs {
				c.maxTs = ev.ts
			}
		}
	}
	// The emission pass needs one global order; native timestamps come
	// from one monotonic clock, so a stable sort by ticks (file order
	// breaking ties) reconstructs it faithfully enough for blocking
	// analysis.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].ts != out[j].ts {
			return out[i].ts < out[j].ts
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// goroutine status values of GoStatus events (go122.GoStatus).
type goStatus uint64

const (
	statusBad goStatus = iota
	statusRunnable
	statusRunning
	statusSyscall
	statusWaiting
)

// ---------------------------------------------------------------------
// Block-reason mapping.

// blockReasonOf maps the runtime's block-reason string (plus the
// blocking stack, which disambiguates the generic "sync" reason) to the
// ECT vocabulary.
func blockReasonOf(reason string, frames []frameInfo) trace.BlockReason {
	switch reason {
	case "chan send":
		return trace.BlockSend
	case "chan receive":
		return trace.BlockRecv
	case "select":
		return trace.BlockSelect
	case "sync.(*Cond).Wait":
		return trace.BlockCond
	case "sleep":
		return trace.BlockSleep
	case "network":
		return trace.BlockNet
	case "sync":
		// The runtime lumps every semaphore-based primitive here; the
		// stack says which one.
		for _, f := range frames {
			switch {
			case strings.HasPrefix(f.fn, "sync.(*RWMutex).RLock"):
				return trace.BlockRMutex
			case strings.HasPrefix(f.fn, "sync.(*RWMutex).Lock"),
				strings.HasPrefix(f.fn, "sync.(*Mutex).Lock"):
				return trace.BlockMutex
			case strings.HasPrefix(f.fn, "sync.(*WaitGroup).Wait"):
				return trace.BlockWaitGroup
			case strings.HasPrefix(f.fn, "sync.(*Cond).Wait"):
				return trace.BlockCond
			case strings.HasPrefix(f.fn, "sync.(*Once)"):
				return trace.BlockSync
			}
		}
		return trace.BlockSync
	default:
		return trace.BlockNone
	}
}

// stackBlockReason infers why an already-parked goroutine (introduced
// by a GoStatusStack at a generation boundary) is waiting, from its
// current stack alone.
func stackBlockReason(frames []frameInfo) trace.BlockReason {
	for _, f := range frames {
		switch {
		case strings.HasPrefix(f.fn, "runtime.chansend"):
			return trace.BlockSend
		case strings.HasPrefix(f.fn, "runtime.chanrecv"):
			return trace.BlockRecv
		case strings.HasPrefix(f.fn, "runtime.selectgo"):
			return trace.BlockSelect
		case strings.HasPrefix(f.fn, "sync.(*RWMutex).RLock"):
			return trace.BlockRMutex
		case strings.HasPrefix(f.fn, "sync.(*RWMutex).Lock"),
			strings.HasPrefix(f.fn, "sync.(*Mutex).Lock"):
			return trace.BlockMutex
		case strings.HasPrefix(f.fn, "sync.(*WaitGroup).Wait"):
			return trace.BlockWaitGroup
		case strings.HasPrefix(f.fn, "sync.(*Cond).Wait"):
			return trace.BlockCond
		case strings.HasPrefix(f.fn, "time.Sleep"):
			return trace.BlockSleep
		}
	}
	return trace.BlockNone
}

// completionFor returns the ECT operation event a woken goroutine
// completes when it resumes — the native tracer only showed the park,
// so the operation itself is synthesized (Blocked: true, the same shape
// the virtual runtime emits for an op that parked before completing).
func completionFor(r trace.BlockReason) trace.Type {
	switch r {
	case trace.BlockSend:
		return trace.EvChanSend
	case trace.BlockRecv:
		return trace.EvChanRecv
	case trace.BlockMutex:
		return trace.EvMutexLock
	case trace.BlockRMutex:
		return trace.EvRLock
	case trace.BlockWaitGroup:
		return trace.EvWgWait
	case trace.BlockCond:
		return trace.EvCondWait
	case trace.BlockSelect:
		return trace.EvSelect
	case trace.BlockSleep:
		return trace.EvSleep
	default:
		return trace.EvNone
	}
}

// resFamily groups block reasons whose sites may name the same object:
// channel operations meet at one channel whichever side parked.
func resFamily(r trace.BlockReason) string {
	switch r {
	case trace.BlockSend, trace.BlockRecv, trace.BlockSelect:
		return "chan"
	case trace.BlockMutex, trace.BlockRMutex:
		return "lock"
	case trace.BlockWaitGroup:
		return "wg"
	case trace.BlockCond:
		return "cond"
	default:
		return "" // no resource identity to synthesize
	}
}

// userFrame picks the frame of the user statement that performed the
// operation: the first frame that is neither runtime internals nor the
// standard concurrency wrappers.
func userFrame(frames []frameInfo) (string, int) {
	for _, f := range frames {
		if f.fn == "" {
			continue
		}
		if strings.HasPrefix(f.fn, "runtime.") ||
			strings.HasPrefix(f.fn, "runtime/") ||
			strings.HasPrefix(f.fn, "sync.") ||
			strings.HasPrefix(f.fn, "syscall.") ||
			strings.HasPrefix(f.fn, "internal/") ||
			strings.HasPrefix(f.fn, "time.Sleep") {
			continue
		}
		return f.file, f.line
	}
	if len(frames) > 0 {
		return frames[0].file, frames[0].line
	}
	return "", 0
}

// rootFrame returns the outermost frame — the goroutine's entry
// function for creation stacks and status stacks.
func rootFrame(frames []frameInfo) frameInfo {
	if len(frames) == 0 {
		return frameInfo{}
	}
	return frames[len(frames)-1]
}

// systemRoot reports whether a goroutine whose root function is fn is
// runtime infrastructure rather than application code.
func systemRoot(fn string) bool {
	return strings.HasPrefix(fn, "runtime.") || strings.HasPrefix(fn, "runtime/trace.")
}

// systemBlockReason reports whether a native block-reason string only
// ever occurs on runtime-internal goroutines (GC workers, the
// finalizer, the trace reader) — never on application code.
func systemBlockReason(reason string) bool {
	switch reason {
	case "system goroutine wait",
		"GC background sweeper wait",
		"GC scavenge wait",
		"GC worker (idle)",
		"finalizer wait",
		"trace reader (blocked)",
		"wait for debug call":
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// Pass 2: resource-identity correlation (union-find over sites).

func (c *converter) find(k string) string {
	p, ok := c.uf[k]
	if !ok || p == k {
		return k
	}
	root := c.find(p)
	c.uf[k] = root
	return root
}

func (c *converter) union(a, b string) {
	ra, rb := c.find(a), c.find(b)
	if ra != rb {
		// Deterministic orientation: the lexicographically smaller root
		// wins, so the assignment is independent of discovery order.
		if rb < ra {
			ra, rb = rb, ra
		}
		c.uf[rb] = ra
	}
}

// blockKey is the correlation key of a park: reason family + site.
func blockKey(family, file string, line int) string {
	if family == "" || file == "" {
		return ""
	}
	return fmt.Sprintf("%s|%s:%d", family, file, line)
}

// correlate walks the attributed records, pairing each unblock edge's
// wake site with the target's current block site. The two sites touched
// the same runtime object, so they fall into one identity bucket.
func (c *converter) correlate(recs []rec) {
	type park struct {
		key    string
		family string
	}
	parked := map[uint64]park{}
	for _, r := range recs {
		switch r.typ {
		case wevGoBlock:
			if r.g == 0 {
				continue
			}
			frames := c.w.resolveStack(r.gen, r.args[1])
			reason := blockReasonOf(c.w.str(r.gen, r.args[0]), frames)
			family := resFamily(reason)
			file, line := userFrame(frames)
			key := blockKey(family, file, line)
			if key != "" {
				if _, ok := c.uf[key]; !ok {
					c.uf[key] = key
				}
				parked[r.g] = park{key: key, family: family}
			} else {
				delete(parked, r.g)
			}
		case wevGoStatusStack:
			if goStatus(r.args[2]) != statusWaiting {
				continue
			}
			frames := c.w.resolveStack(r.gen, r.args[3])
			reason := stackBlockReason(frames)
			family := resFamily(reason)
			file, line := userFrame(frames)
			key := blockKey(family, file, line)
			if key != "" {
				if _, ok := c.uf[key]; !ok {
					c.uf[key] = key
				}
				if _, have := parked[r.args[0]]; !have {
					parked[r.args[0]] = park{key: key, family: family}
				}
			}
		case wevGoUnblock:
			target := r.args[0]
			p, ok := parked[target]
			if !ok || r.g == 0 {
				continue
			}
			frames := c.w.resolveStack(r.gen, r.args[2])
			file, line := userFrame(frames)
			wkey := blockKey(p.family, file, line)
			if wkey != "" {
				if _, okW := c.uf[wkey]; !okW {
					c.uf[wkey] = wkey
				}
				c.union(p.key, wkey)
			}
			delete(parked, target)
		}
	}
}

// resOf assigns stable ResIDs to correlation buckets in first-use
// order during emission.
func (c *converter) resOf(key string) trace.ResID {
	if key == "" {
		return 0
	}
	root := c.find(key)
	if id, ok := c.res[root]; ok {
		return id
	}
	id := trace.ResID(len(c.res) + 1)
	c.res[root] = id
	return id
}

// ---------------------------------------------------------------------
// Pass 3: emission.

// emit appends an ECT event, stamping the next logical timestamp and
// recording the native ticks it was derived from.
func (c *converter) emit(e trace.Event) {
	e.Ts = int64(c.out.Len() + 1)
	c.out.Append(e)
	c.ticks = append(c.ticks, c.curTicks)
}

// introduce makes sure g exists in the ECT, synthesizing the orphan
// GoStart the window contract (trace.CapCreateObserved absent) allows.
func (c *converter) introduce(id uint64, st *gState) {
	if st.started {
		return
	}
	st.started = true
	st.introduced = true
	aux := int64(0)
	if st.system {
		aux = 1
	}
	if !st.orphan && st.createFile != "" {
		// Created in-window: the ECT GoCreate already introduced it; the
		// GoStart is informational.
		c.emit(trace.Event{G: trace.GoID(id), Type: trace.EvGoStart,
			File: st.createFile, Line: st.createLine, Aux: aux, Str: st.name})
		return
	}
	c.orphans++
	c.emit(trace.Event{G: trace.GoID(id), Type: trace.EvGoStart,
		File: st.createFile, Line: st.createLine, Aux: aux, Str: st.name})
}

// park records a block and emits its EvGoBlock.
func (c *converter) park(id uint64, st *gState, reason trace.BlockReason, file string, line int, ts uint64) {
	st.blocked = true
	st.blockReason = reason
	st.blockFile = file
	st.blockLine = line
	st.blockKey = blockKey(resFamily(reason), file, line)
	st.blockTs = ts
	c.emit(trace.Event{G: trace.GoID(id), Type: trace.EvGoBlock,
		Aux: int64(reason), Res: c.resOf(st.blockKey), File: file, Line: line})
}

// convert runs all three passes and returns the finished artifacts.
func (c *converter) convert() {
	recs := c.attribute()
	c.correlate(recs)

	for _, r := range recs {
		c.curTicks = r.ts
		switch r.typ {
		case wevGoCreate, wevGoCreateBlocked:
			child := r.args[0]
			childFrames := c.w.resolveStack(r.gen, r.args[1])
			parentFrames := c.w.resolveStack(r.gen, r.args[2])
			entry := rootFrame(childFrames)
			cs := c.gOf(child)
			cs.name = entry.fn
			cs.system = systemRoot(entry.fn)
			file, line := userFrame(parentFrames)
			cs.createFile, cs.createLine = file, line
			if r.g == 0 {
				// Creator unknown (no goroutine attributed to this M):
				// the child will introduce itself as an orphan.
				cs.orphan = true
				continue
			}
			ps := c.gOf(r.g)
			c.ensureRunning(r.g, ps)
			cs.introduced = true
			c.created++
			aux := int64(0)
			if cs.system {
				aux = 1
			}
			c.emit(trace.Event{G: trace.GoID(r.g), Type: trace.EvGoCreate,
				Peer: trace.GoID(child), File: file, Line: line, Aux: aux, Str: entry.fn})

		case wevGoStart:
			id := r.args[0]
			st := c.gOf(id)
			if !st.started {
				if !st.introduced {
					st.orphan = true
				}
				c.introduce(id, st)
			}
			if st.pendingCompletion != trace.EvNone {
				e := trace.Event{G: trace.GoID(id), Type: st.pendingCompletion,
					Res: c.resOf(st.blockKey), Blocked: true,
					File: st.blockFile, Line: st.blockLine}
				if st.pendingCompletion == trace.EvChanRecv {
					e.Aux = 1 // value received (close-observation is unknowable)
				}
				c.emit(e)
				st.pendingCompletion = trace.EvNone
			}
			st.blocked = false

		case wevGoBlock:
			if r.g == 0 {
				continue
			}
			st := c.gOf(r.g)
			c.ensureRunning(r.g, st)
			frames := c.w.resolveStack(r.gen, r.args[1])
			reasonStr := c.w.str(r.gen, r.args[0])
			reason := blockReasonOf(reasonStr, frames)
			// A goroutine introduced without a stack (plain GoStatus)
			// reveals itself at its first park: the block stack's root
			// is its entry function, and runtime-infrastructure block
			// reasons mark runtime-internal goroutines.
			if root := rootFrame(frames); st.name == "" && root.fn != "" {
				st.name = root.fn
			}
			if r.g != 1 && !st.system &&
				(systemBlockReason(reasonStr) || systemRoot(rootFrame(frames).fn)) {
				st.system = true
			}
			file, line := userFrame(frames)
			c.park(r.g, st, reason, file, line, r.ts)

		case wevGoSyscallBegin:
			// [p_seq, stack]: the goroutine enters a system call. The ECT
			// models it as a distinct park (BlockSyscall) so block
			// profiles and census detectors never lump kernel-side waits
			// into scheduler-parked reasons.
			if r.g == 0 {
				continue
			}
			st := c.gOf(r.g)
			c.ensureRunning(r.g, st)
			frames := c.w.resolveStack(r.gen, r.args[1])
			file, line := userFrame(frames)
			c.park(r.g, st, trace.BlockSyscall, file, line, r.ts)

		case wevGoSyscallEnd, wevGoSyscallEndBl:
			// The syscall returned. The runtime connects no waker to this
			// edge (the kernel did the work), so the ECT records a
			// self-unblock: it closes the BlockSyscall span without
			// inventing a happens-before edge or a worker-shaped wake.
			if r.g == 0 {
				continue
			}
			st := c.gOf(r.g)
			if !st.blocked || st.blockReason != trace.BlockSyscall {
				continue // unmatched end at a window edge
			}
			st.blocked = false
			c.emit(trace.Event{G: trace.GoID(r.g), Type: trace.EvGoUnblock,
				Peer: trace.GoID(r.g), File: st.blockFile, Line: st.blockLine})

		case wevGoUnblock:
			target := r.args[0]
			ts := c.gOf(target)
			ts.pendingCompletion = completionFor(ts.blockReason)
			ts.wakes++
			if r.g == 0 {
				// Runtime-internal wake (netpoll, timer): no attributable
				// waker, so the HB edge is dropped.
				c.droppedWakes++
				continue
			}
			st := c.gOf(r.g)
			c.ensureRunning(r.g, st)
			frames := c.w.resolveStack(r.gen, r.args[2])
			file, line := userFrame(frames)
			res := trace.ResID(0)
			if ts.blockKey != "" {
				res = c.resOf(ts.blockKey)
			}
			c.emit(trace.Event{G: trace.GoID(r.g), Type: trace.EvGoUnblock,
				Peer: trace.GoID(target), Res: res, File: file, Line: line})

		case wevGoDestroy, wevGoDestroySysc:
			if r.g == 0 {
				continue
			}
			st := c.gOf(r.g)
			c.ensureRunning(r.g, st)
			st.ended = true
			st.blocked = false
			c.emit(trace.Event{G: trace.GoID(r.g), Type: trace.EvGoEnd})

		case wevGoSwitch, wevGoSwitchDestroy:
			// Coroutine switch: the target continues immediately; the
			// yielding goroutine's park (and, for switch-destroy, its
			// end) is not separately recorded by the native tracer, so
			// only the target's introduction is reconstructible.
			id := r.args[0]
			st := c.gOf(id)
			c.ensureRunning(id, st)

		case wevGoStop:
			if r.g == 0 {
				continue
			}
			st := c.gOf(r.g)
			c.ensureRunning(r.g, st)
			typ := trace.EvGoSched
			if c.w.str(r.gen, r.args[0]) == "preempted" {
				typ = trace.EvGoPreempt
			}
			c.emit(trace.Event{G: trace.GoID(r.g), Type: typ})

		case wevGoStatus, wevGoStatusStack:
			id := r.args[0]
			st := c.gOf(id)
			if st.started {
				continue // later-generation re-announcement
			}
			var frames []frameInfo
			if r.typ == wevGoStatusStack {
				frames = c.w.resolveStack(r.gen, r.args[3])
				root := rootFrame(frames)
				if st.name == "" {
					st.name = root.fn
				}
				st.system = systemRoot(root.fn) && id != 1
			}
			st.orphan = !st.introduced
			c.introduce(id, st)
			switch goStatus(r.args[2]) {
			case statusWaiting:
				reason := stackBlockReason(frames)
				file, line := userFrame(frames)
				c.park(id, st, reason, file, line, r.ts)
			case statusSyscall:
				// Announced mid-syscall at a generation boundary: parked
				// kernel-side until its GoSyscallEnd arrives.
				file, line := userFrame(frames)
				c.park(id, st, trace.BlockSyscall, file, line, r.ts)
			}

		case wevUserLog:
			if r.g == 0 {
				continue
			}
			st := c.gOf(r.g)
			c.ensureRunning(r.g, st)
			frames := c.w.resolveStack(r.gen, r.args[3])
			file, line := userFrame(frames)
			key := c.w.str(r.gen, r.args[1])
			val := c.w.str(r.gen, r.args[2])
			msg := val
			if key != "" {
				msg = key + "=" + val
			}
			c.emit(trace.Event{G: trace.GoID(r.g), Type: trace.EvUserLog,
				File: file, Line: line, Str: msg})

		case wevUserRegionBegin, wevUserRegionEnd:
			if r.g == 0 {
				continue
			}
			st := c.gOf(r.g)
			c.ensureRunning(r.g, st)
			frames := c.w.resolveStack(r.gen, r.args[2])
			file, line := userFrame(frames)
			name := c.w.str(r.gen, r.args[1])
			edge := "begin"
			if r.typ == wevUserRegionEnd {
				edge = "end"
			}
			c.emit(trace.Event{G: trace.GoID(r.g), Type: trace.EvUserLog,
				File: file, Line: line, Str: "region " + edge + ": " + name})
		}
	}

	// Some goroutines reveal their system-ness only after their
	// introduction was emitted (a stackless GoStatus followed by a park
	// with a runtime-infrastructure reason). Re-stamp the provenance
	// marker on their introduction events so consumers that classify at
	// adoption time (GoatStream, the goroutine tree) agree.
	for i := range c.out.Events {
		e := &c.out.Events[i]
		switch e.Type {
		case trace.EvGoStart:
			if st, ok := c.gs[uint64(e.G)]; ok && st.system {
				e.Aux = 1
				if e.Str == "" {
					e.Str = st.name
				}
			}
		case trace.EvGoCreate:
			if st, ok := c.gs[uint64(e.Peer)]; ok && st.system {
				e.Aux = 1
			}
		}
	}
}

// ensureRunning introduces a goroutine the attribution saw acting
// before any explicit start (possible at a window edge where the
// GoStart fell into the previous, unrecorded generation).
func (c *converter) ensureRunning(id uint64, st *gState) {
	if !st.started {
		if !st.introduced {
			st.orphan = true
		}
		c.introduce(id, st)
	}
}
