// Window/baseline diffing: the CI gate for native captures.
//
// Absolute stranded-goroutine reports on a real system are noisy — some
// parked goroutines are load-bearing. Differential reports are not: if
// a signature (root function + block site + creation site + reason) is
// stranded in the new capture and was not in the baseline, the change
// under test introduced it. That is the verdict `goattrace -diff`
// gates on.
package ingest

import (
	"fmt"
	"sort"
	"strings"
)

// DiffEntry is one signature whose stranded population changed.
type DiffEntry struct {
	Signature string
	Old, New  int      // stranded goroutines with this signature per side
	Example   Stranded // a representative from the side that grew (or shrank)
}

// Diff is the comparison of two ingested windows.
type Diff struct {
	Grown  []DiffEntry // signatures with more stranded goroutines than baseline
	Shrunk []DiffEntry // signatures that improved (informational)
}

// Regressed reports whether the new window strands goroutines the
// baseline did not — the condition a CI gate fails on.
func (d *Diff) Regressed() bool { return len(d.Grown) > 0 }

// Verdict renders the CI-facing one-liner.
func (d *Diff) Verdict() string {
	if !d.Regressed() {
		return "OK"
	}
	n := 0
	for _, e := range d.Grown {
		n += e.New - e.Old
	}
	return fmt.Sprintf("LEAK-%d", n)
}

func (d *Diff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verdict: %s\n", d.Verdict())
	for _, e := range d.Grown {
		fmt.Fprintf(&b, "  new: %s (%d -> %d)\n", e.Example.String(), e.Old, e.New)
	}
	for _, e := range d.Shrunk {
		fmt.Fprintf(&b, "  fixed: %s (%d -> %d)\n", e.Signature, e.Old, e.New)
	}
	return b.String()
}

// DiffRuns compares a baseline window against a new one signature-wise.
// Both sides are classified with the same options so the comparison is
// apples-to-apples.
func DiffRuns(baseline, current *Run, opts StrandedOpts) *Diff {
	oldBy := bySignature(baseline.StrandedGoroutines(opts))
	newBy := bySignature(current.StrandedGoroutines(opts))

	d := &Diff{}
	for sig, group := range newBy {
		old := len(oldBy[sig])
		if len(group) > old {
			d.Grown = append(d.Grown, DiffEntry{
				Signature: sig, Old: old, New: len(group), Example: group[0]})
		}
	}
	for sig, group := range oldBy {
		cur := len(newBy[sig])
		if cur < len(group) {
			d.Shrunk = append(d.Shrunk, DiffEntry{
				Signature: sig, Old: len(group), New: cur, Example: group[0]})
		}
	}
	sort.Slice(d.Grown, func(i, j int) bool { return d.Grown[i].Signature < d.Grown[j].Signature })
	sort.Slice(d.Shrunk, func(i, j int) bool { return d.Shrunk[i].Signature < d.Shrunk[j].Signature })
	return d
}

func bySignature(list []Stranded) map[string][]Stranded {
	m := map[string][]Stranded{}
	for _, s := range list {
		m[s.Signature()] = append(m[s.Signature()], s)
	}
	return m
}
