// Package ingest converts native Go execution traces (runtime/trace
// captures, the go122/go123 wire format) into the ECT vocabulary, so
// every trace-level analysis in this repository — the goroutine tree,
// the GoAT detector, happens-before, coverage, Chrome export — runs on
// real binaries exactly as it runs on virtual-runtime executions.
//
// The produced trace is a *window*: goroutines pre-exist it, main
// usually outlives it, only blocking operations are visible, and
// resource identities are correlation buckets. The trace's SourceInfo
// declares exactly that (see trace.Caps), and every consumer degrades
// along its declared contract instead of guessing.
package ingest

import (
	"fmt"
	"io"
	"os"

	"goat/internal/sim"
	"goat/internal/trace"
)

// Caps is the guarantee set of a converted native trace: source
// locations are real (they come from the tracer's stack tables), but
// creations may predate the window, goroutine IDs are the runtime's
// sparse ones, resource identities are heuristic, only blocking
// operations appear, and the window rarely spans the whole run.
const Caps = trace.CapSourceLoc

// GInfo describes one goroutine of the ingested window, the provenance
// record the stranded-goroutine analysis keys on.
type GInfo struct {
	ID     trace.GoID
	Name   string // root function ("" when unknowable)
	System bool
	Orphan bool // pre-existed the window (creation not observed)

	CreateFile string // go-statement site, when the creation was observed
	CreateLine int

	Ended   bool
	Blocked bool // parked when the window closed
	Reason  trace.BlockReason
	File    string // block site, when Blocked
	Line    int

	Wakes     int   // times the goroutine was woken inside the window
	BlockedNs int64 // how long the final park had lasted at window end
}

// Frame is one resolved stack frame of a CPU sample.
type Frame struct {
	Func string
	File string
	Line int
}

// CPUSample is one profiling-clock hit from the capture's CPU-sample
// batches (present when the traced program also ran the CPU profiler),
// attributed to its goroutine with a resolved call stack, leaf first.
type CPUSample struct {
	G      trace.GoID
	WallNs int64 // offset from window start
	Stack  []Frame
}

// Run is one ingested native execution window.
type Run struct {
	Trace *trace.Trace
	Info  RunInfo
	Gs    map[trace.GoID]*GInfo

	// Wall holds, aligned index-for-index with Trace.Events, each
	// event's wall-clock offset from the window start in nanoseconds.
	// Logical timestamps remain 1..N; this side table is what lets
	// profile builders charge real durations to native block spans.
	Wall []int64

	// CPUSamples are the capture's profiling-clock hits (empty unless
	// the traced program ran runtime/pprof CPU profiling concurrently).
	CPUSamples []CPUSample
}

// RunInfo summarizes the window.
type RunInfo struct {
	Version      int     // trace format version ("go 1.N trace")
	TicksPerSec  float64 // native clock frequency
	WallNs       int64   // window span in nanoseconds
	Goroutines   int     // goroutines observed
	Created      int     // creations observed in-window
	Orphans      int     // goroutines that pre-existed the window
	MainEnded    bool    // g1 reached GoDestroy inside the window
	DroppedWakes int     // unblock edges with no attributable waker
	CPUSamples   int     // profiling-clock samples carried by the capture
}

// Source returns the SourceInfo stamped on ingested traces.
func Source(version int) trace.SourceInfo {
	return trace.SourceInfo{Name: fmt.Sprintf("native go1.%d", version), Caps: Caps}
}

// Parse converts a native execution trace read from r.
func Parse(r io.Reader) (*Run, error) {
	w, err := parseWire(r)
	if err != nil {
		return nil, err
	}
	c := &converter{
		w:   w,
		gs:  map[uint64]*gState{},
		uf:  map[string]string{},
		res: map[string]trace.ResID{},
		out: trace.New(len(w.events)),
	}
	c.out.Source = Source(w.version)
	c.convert()
	if c.out.Len() == 0 {
		return nil, fmt.Errorf("ingest: trace contains no convertible goroutine events")
	}

	nsPerTick := w.freq // freq field already stores ns per tick
	run := &Run{Trace: c.out, Gs: map[trace.GoID]*GInfo{}}
	run.Info = RunInfo{
		Version:      w.version,
		TicksPerSec:  1e9 / nsPerTick,
		WallNs:       int64(float64(c.maxTs-c.minTs) * nsPerTick),
		Goroutines:   len(c.gs),
		Created:      c.created,
		Orphans:      c.orphans,
		DroppedWakes: c.droppedWakes,
		CPUSamples:   len(w.cpuSamples),
	}
	run.Wall = make([]int64, len(c.ticks))
	for i, t := range c.ticks {
		if t > c.minTs {
			run.Wall[i] = int64(float64(t-c.minTs) * nsPerTick)
		}
	}
	for _, s := range w.cpuSamples {
		frames := w.resolveStack(s.gen, s.stack)
		if len(frames) == 0 {
			continue
		}
		cs := CPUSample{G: trace.GoID(s.g), Stack: make([]Frame, len(frames))}
		if s.ts > c.minTs {
			cs.WallNs = int64(float64(s.ts-c.minTs) * nsPerTick)
		}
		for i, f := range frames {
			cs.Stack[i] = Frame{Func: f.fn, File: f.file, Line: f.line}
		}
		run.CPUSamples = append(run.CPUSamples, cs)
	}
	for id, st := range c.gs {
		if !st.introduced && !st.started {
			continue // named in args but never active in-window
		}
		gi := &GInfo{
			ID:         trace.GoID(id),
			Name:       st.name,
			System:     st.system,
			Orphan:     st.orphan,
			CreateFile: st.createFile,
			CreateLine: st.createLine,
			Ended:      st.ended,
			Wakes:      st.wakes,
		}
		if st.blocked && !st.ended {
			gi.Blocked = true
			gi.Reason = st.blockReason
			gi.File = st.blockFile
			gi.Line = st.blockLine
			if st.blockTs > 0 && c.maxTs >= st.blockTs {
				gi.BlockedNs = int64(float64(c.maxTs-st.blockTs) * nsPerTick)
			}
		}
		if id == 1 {
			run.Info.MainEnded = st.ended
		}
		run.Gs[gi.ID] = gi
	}
	return run, nil
}

// ParseFile converts a native execution trace file.
func ParseFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// SniffNative reports whether the file header looks like a native Go
// execution trace rather than a GOATECT encoding.
func SniffNative(prefix []byte) bool {
	return len(prefix) >= 3 && string(prefix[:3]) == "go "
}

// Result synthesizes the sim.Result shape the detectors consume. The
// outcome is OK — a window has no settle point to classify — and the
// detectors' source-aware streams derive their verdicts from the trace
// itself (GoatStream's blocked-at-window-end census). MainEnded is the
// only outcome field a window can truthfully fill.
func (r *Run) Result() *sim.Result {
	res := &sim.Result{
		Outcome:   sim.OutcomeOK,
		Trace:     r.Trace,
		MainEnded: r.Info.MainEnded,
	}
	for _, gi := range r.Gs {
		info := sim.Info{
			ID:         gi.ID,
			Name:       gi.Name,
			System:     gi.System,
			Reason:     gi.Reason,
			CreateFile: gi.CreateFile,
			CreateLine: gi.CreateLine,
		}
		res.Goroutines = append(res.Goroutines, info)
		if gi.Blocked && !gi.System {
			res.Leaked = append(res.Leaked, info)
		}
	}
	return res
}
