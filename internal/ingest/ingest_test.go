package ingest

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"goat/internal/detect"
	"goat/internal/trace"
)

// The two checked-in fixtures are real runtime/trace captures of
// examples/native/{leakypool,cleanpool}: structural twins, one with a
// planted stranded-sender leak (3 goroutines parked on `results <-` at
// leakypool/main.go:30), one clean.
const (
	leakyFixture = "testdata/leakypool.trace"
	cleanFixture = "testdata/cleanpool.trace"
)

func parseFixture(t *testing.T, path string) *Run {
	t.Helper()
	r, err := ParseFile(path)
	if err != nil {
		t.Fatalf("ParseFile(%s): %v", path, err)
	}
	return r
}

func TestParseLeakyFixture(t *testing.T) {
	r := parseFixture(t, leakyFixture)
	if r.Info.Version != 23 {
		t.Errorf("Version = %d, want 23", r.Info.Version)
	}
	if r.Info.MainEnded {
		t.Error("MainEnded = true; the capture stops while main sleeps")
	}
	if r.Info.WallNs < 100e6 {
		t.Errorf("WallNs = %d, want >= 100ms (the quiesce window)", r.Info.WallNs)
	}
	if r.Info.Goroutines == 0 || r.Info.Created == 0 || r.Info.Orphans == 0 {
		t.Errorf("implausible census: %+v", r.Info)
	}
	if got := r.Trace.SourceInfo(); got != Source(23) {
		t.Errorf("SourceInfo = %+v, want %+v", got, Source(23))
	}
	if r.Trace.SourceInfo().Has(trace.CapOpEvents) {
		t.Error("native trace must not claim CapOpEvents")
	}
	if !r.Trace.SourceInfo().Has(trace.CapSourceLoc) {
		t.Error("native trace must claim CapSourceLoc")
	}
	if err := r.Trace.Validate(); err != nil {
		t.Errorf("converted trace fails validation: %v", err)
	}
}

func TestStrandedLeakyPool(t *testing.T) {
	r := parseFixture(t, leakyFixture)
	stranded := r.StrandedGoroutines(StrandedOpts{})
	if len(stranded) != 3 {
		t.Fatalf("stranded = %d, want exactly the 3 planted senders:\n%v", len(stranded), stranded)
	}
	for _, s := range stranded {
		if s.Name != "main.worker.func1" {
			t.Errorf("g%d name = %q, want main.worker.func1", s.G, s.Name)
		}
		if s.Reason != trace.BlockSend {
			t.Errorf("g%d reason = %v, want chan-send", s.G, s.Reason)
		}
		if !strings.HasSuffix(s.File, "leakypool/main.go") || s.Line != 30 {
			t.Errorf("g%d block site = %s:%d, want .../leakypool/main.go:30", s.G, s.File, s.Line)
		}
		if !strings.HasSuffix(s.CreateFile, "leakypool/main.go") || s.CreateLine != 29 {
			t.Errorf("g%d create site = %s:%d, want .../leakypool/main.go:29", s.G, s.CreateFile, s.CreateLine)
		}
		if s.Siblings != 3 {
			t.Errorf("g%d siblings = %d, want 3", s.G, s.Siblings)
		}
		if s.Wakes != 0 {
			t.Errorf("g%d wakes = %d, a stranded sender is never woken", s.G, s.Wakes)
		}
		if s.BlockedNs < 100e6 {
			t.Errorf("g%d blockedNs = %d, want >= 100ms", s.G, s.BlockedNs)
		}
	}
	// All three planted leaks share one signature.
	if a, b := stranded[0].Signature(), stranded[2].Signature(); a != b {
		t.Errorf("signatures differ: %q vs %q", a, b)
	}
}

// TestCPUSamplesAndWallFixture pins the profiling-plane side of the
// fixtures: both pools run the CPU profiler while tracing, so the
// captures must carry CPU-sample batches, and every converted event
// must have a wall-clock offset in the side table.
func TestCPUSamplesAndWallFixture(t *testing.T) {
	for _, path := range []string{leakyFixture, cleanFixture} {
		r := parseFixture(t, path)
		if r.Info.CPUSamples == 0 || len(r.CPUSamples) == 0 {
			t.Errorf("%s: no CPU samples (info=%d, samples=%d); fixture captured without the profiler?",
				path, r.Info.CPUSamples, len(r.CPUSamples))
			continue
		}
		burn := 0
		for _, s := range r.CPUSamples {
			if s.WallNs < 0 || s.WallNs > r.Info.WallNs {
				t.Errorf("%s: sample wall offset %d outside window [0,%d]", path, s.WallNs, r.Info.WallNs)
			}
			if len(s.Stack) == 0 {
				t.Errorf("%s: sample with empty stack", path)
				continue
			}
			for _, f := range s.Stack {
				if f.Func == "main.burnCPU" {
					burn++
					break
				}
			}
		}
		if burn == 0 {
			t.Errorf("%s: no sample lands in main.burnCPU out of %d", path, len(r.CPUSamples))
		}
		if len(r.Wall) != r.Trace.Len() {
			t.Fatalf("%s: wall table has %d entries for %d events", path, len(r.Wall), r.Trace.Len())
		}
		for i, w := range r.Wall {
			if w < 0 || w > r.Info.WallNs {
				t.Errorf("%s: event %d wall offset %d outside window [0,%d]", path, i, w, r.Info.WallNs)
			}
		}
	}
}

// TestSyscallClassification pins that syscall-blocked goroutines are
// classified distinctly from scheduler parks: the profileWriter drains
// the profile buffer through real file syscalls during the window, so
// the leaky capture must contain BlockSyscall parks — and none of them
// may surface as stranded.
func TestSyscallClassification(t *testing.T) {
	r := parseFixture(t, leakyFixture)
	syscalls := 0
	for _, e := range r.Trace.Events {
		if e.Type == trace.EvGoBlock && e.BlockReason() == trace.BlockSyscall {
			syscalls++
		}
	}
	if syscalls == 0 {
		t.Fatal("no BlockSyscall parks in the leaky fixture; syscall classification regressed")
	}
	for _, s := range r.StrandedGoroutines(StrandedOpts{}) {
		if s.Reason == trace.BlockSyscall {
			t.Errorf("g%d reported stranded in a syscall: %+v", s.G, s)
		}
	}
}

func TestStrandedCleanPool(t *testing.T) {
	r := parseFixture(t, cleanFixture)
	if stranded := r.StrandedGoroutines(StrandedOpts{}); len(stranded) != 0 {
		t.Fatalf("clean pool reports stranded goroutines:\n%v", stranded)
	}
}

func TestRuntimeGoroutinesAreSystem(t *testing.T) {
	r := parseFixture(t, leakyFixture)
	for _, gi := range r.Gs {
		if gi.System {
			continue
		}
		if strings.Contains(gi.File, "/runtime/") || strings.Contains(gi.CreateFile, "/runtime/") {
			t.Errorf("g%d (%q) sits in runtime code but is not marked system: %+v", gi.ID, gi.Name, gi)
		}
	}
}

func TestDiffCleanVsLeaky(t *testing.T) {
	clean := parseFixture(t, cleanFixture)
	leaky := parseFixture(t, leakyFixture)

	d := DiffRuns(clean, leaky, StrandedOpts{})
	if !d.Regressed() {
		t.Fatal("clean -> leaky must regress")
	}
	if got := d.Verdict(); got != "LEAK-3" {
		t.Errorf("Verdict = %q, want LEAK-3 (exactly the planted delta)", got)
	}
	if len(d.Grown) != 1 {
		t.Fatalf("Grown = %d signatures, want 1:\n%s", len(d.Grown), d)
	}
	e := d.Grown[0]
	if e.Old != 0 || e.New != 3 {
		t.Errorf("entry counts = %d -> %d, want 0 -> 3", e.Old, e.New)
	}
	if !strings.Contains(e.Signature, "main.worker.func1") ||
		!strings.Contains(e.Signature, "leakypool/main.go:30") {
		t.Errorf("signature %q does not name the planted leak", e.Signature)
	}

	// Self-diff is clean in both directions.
	if d := DiffRuns(leaky, leaky, StrandedOpts{}); d.Regressed() {
		t.Errorf("self-diff regressed: %s", d)
	}
	// Fixing the leak is an improvement, not a regression.
	d = DiffRuns(leaky, clean, StrandedOpts{})
	if d.Regressed() {
		t.Errorf("leaky -> clean must not regress: %s", d)
	}
	if len(d.Shrunk) != 1 {
		t.Errorf("leaky -> clean Shrunk = %d, want 1", len(d.Shrunk))
	}
	if got := d.Verdict(); got != "OK" {
		t.Errorf("leaky -> clean Verdict = %q, want OK", got)
	}
}

// TestDetectorsOnNativeTrace is the acceptance check that the existing
// detectors run unmodified on an ingested capture and degrade along
// their declared contracts.
func TestDetectorsOnNativeTrace(t *testing.T) {
	leaky := parseFixture(t, leakyFixture)
	res := leaky.Result()

	// Goat switches to the blocked-at-window-end census (PDL-n) because
	// the window never settles.
	d := detect.Goat{}.Detect(res)
	if !d.Found || !strings.HasPrefix(d.Verdict, "PDL-") {
		t.Errorf("goat on leaky window = %+v, want Found with PDL-n verdict", d)
	}

	// LockDL needs lock operation events the native tracer cannot
	// provide; it must say so rather than fabricate an answer.
	d = detect.LockDL{}.Detect(res)
	if d.Found || d.Verdict != "N/A" {
		t.Errorf("lockdl on native trace = %+v, want N/A (CapOpEvents absent)", d)
	}

	// Goleak hangs when main outlives the window — exactly its
	// real-world behavior on a still-running process.
	d = detect.Goleak{}.Detect(res)
	if d.Verdict != "HANG" {
		t.Errorf("goleak on open window = %+v, want HANG", d)
	}

	// The clean twin: goat reports only main's benign sleep-park census
	// or OK; whatever the count, it must not attribute chan-send leaks.
	clean := parseFixture(t, cleanFixture)
	d = detect.Goat{}.Detect(clean.Result())
	if d.Verdict != "OK" && !strings.HasPrefix(d.Verdict, "PDL-") {
		t.Errorf("goat on clean window = %+v", d)
	}
}

func TestNativeTraceEncodeDecodeRoundTrip(t *testing.T) {
	r := parseFixture(t, leakyFixture)
	var buf bytes.Buffer
	if err := r.Trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(back.Events, r.Trace.Events) {
		t.Error("events changed across encode/decode")
	}
	if back.SourceInfo() != r.Trace.SourceInfo() {
		t.Errorf("source changed across encode/decode: %+v vs %+v",
			back.SourceInfo(), r.Trace.SourceInfo())
	}
}

// TestChromeExportNativeTrace is the property check for the exporter on
// ingested traces: it must render without panicking and emit every ECT
// event exactly once, exactly as it does for virtual-runtime traces.
func TestChromeExportNativeTrace(t *testing.T) {
	for _, path := range []string{leakyFixture, cleanFixture} {
		r := parseFixture(t, path)
		var buf bytes.Buffer
		if err := r.Trace.EncodeChrome(&buf, trace.ChromeOptions{}); err != nil {
			t.Fatalf("%s: EncodeChrome: %v", path, err)
		}
		var file struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
			t.Fatalf("%s: export is not valid JSON: %v", path, err)
		}
		seen := map[int64]int{}
		for _, ce := range file.TraceEvents {
			args, _ := ce["args"].(map[string]any)
			if args == nil {
				continue
			}
			if ts, ok := args["ect_ts"]; ok {
				seen[int64(ts.(float64))]++
			}
		}
		if len(seen) != r.Trace.Len() {
			t.Fatalf("%s: %d distinct slices for %d events", path, len(seen), r.Trace.Len())
		}
		for _, e := range r.Trace.Events {
			if seen[e.Ts] != 1 {
				t.Fatalf("%s: event ts=%d rendered %d times", path, e.Ts, seen[e.Ts])
			}
		}
	}
}

func TestSniffNative(t *testing.T) {
	cases := []struct {
		prefix string
		want   bool
	}{
		{"go 1.23 trace\x00\x00\x00", true},
		{"go 1.22 trace\x00\x00\x00", true},
		{"go ", true},
		{"GOATECT1", false},
		{"GOATECT2", false},
		{"g", false},
		{"", false},
	}
	for _, c := range cases {
		if got := SniffNative([]byte(c.prefix)); got != c.want {
			t.Errorf("SniffNative(%q) = %v, want %v", c.prefix, got, c.want)
		}
	}
}
