// Stranded-goroutine analysis over an ingested native window.
//
// A window has no settle point: "blocked at the end of the trace" is
// the observable fact, and whether that is a leak depends on
// provenance. A long-lived worker parked on its job channel is idle; a
// per-request goroutine parked on a send nobody will receive is
// stranded. The classification below uses the goroutine-tree provenance
// the converter reconstructed — creation site, root function, wake
// history, park duration — to separate the two, which is what keeps the
// report CI-gateable instead of noisy.
package ingest

import (
	"fmt"
	"sort"

	"goat/internal/trace"
)

// Stranded is one goroutine flagged as likely leaked at window end.
type Stranded struct {
	G         trace.GoID
	Name      string            // root function
	Reason    trace.BlockReason // why it is parked
	File      string            // block site
	Line      int
	CreateFile string // go-statement site ("" for orphans)
	CreateLine int
	BlockedNs  int64 // park duration at window end
	Wakes      int   // wakes observed during the window
	Siblings   int   // goroutines sharing this signature (incl. itself)
}

// Signature is the stable identity of a stranded-goroutine class:
// goroutines are ephemeral (IDs differ run to run) but the code paths
// that strand them are not. Two runs are compared signature-wise. The
// format is trace.StrandSig — shared with the streaming leak detector,
// so a leak found in a simulated service kernel and the same leak in a
// native capture carry identical signatures.
func (s Stranded) Signature() string {
	return trace.StrandSig{
		Name: s.Name, Reason: s.Reason,
		File: s.File, Line: s.Line,
		CreateFile: s.CreateFile, CreateLine: s.CreateLine,
	}.String()
}

func (s Stranded) String() string {
	site := fmt.Sprintf("%s:%d", trimPath(s.File), s.Line)
	created := "pre-existing"
	if s.CreateFile != "" {
		created = fmt.Sprintf("created at %s:%d", trimPath(s.CreateFile), s.CreateLine)
	}
	return fmt.Sprintf("g%d %s blocked on %s at %s (%s, parked %.0fms, %d wake(s))",
		s.G, s.Name, s.Reason, site, created, float64(s.BlockedNs)/1e6, s.Wakes)
}

// trimPath is trace.TrimPath (kept as a local name for the callers
// above).
func trimPath(p string) string { return trace.TrimPath(p) }

// StrandedOpts tunes the classifier.
type StrandedOpts struct {
	// MinBlockedNs suppresses goroutines parked for less than this at
	// window end — they may simply not have been scheduled yet. Zero
	// means no duration filter.
	MinBlockedNs int64

	// IncludeWorkers reports long-lived-worker-shaped goroutines too
	// (normally suppressed, see isWorkerShaped).
	IncludeWorkers bool
}

// StrandedGoroutines classifies the window's end-state. The suppression
// rules, in order:
//
//   - system goroutines (runtime infrastructure) never count;
//   - goroutines parked on sleep, in a syscall, on network I/O, or with
//     no reason are idle (or making kernel-side progress), not stuck;
//   - worker-shaped goroutines — orphans or receive/select-parked
//     goroutines that were woken during the window — are presumed to be
//     long-lived pools waiting for more work (the classic native-trace
//     false positive), unless IncludeWorkers asks for them.
//
// Everything else blocked at window end is reported, grouped and
// ordered by signature so output is deterministic.
func (r *Run) StrandedGoroutines(opts StrandedOpts) []Stranded {
	var out []Stranded
	for _, gi := range r.Gs {
		if !gi.Blocked || gi.System || gi.Ended {
			continue
		}
		if gi.Reason == trace.BlockSleep || gi.Reason == trace.BlockNone ||
			gi.Reason == trace.BlockNet || gi.Reason == trace.BlockSyscall {
			continue
		}
		if opts.MinBlockedNs > 0 && gi.BlockedNs < opts.MinBlockedNs {
			continue
		}
		s := Stranded{
			G: gi.ID, Name: gi.Name, Reason: gi.Reason,
			File: gi.File, Line: gi.Line,
			CreateFile: gi.CreateFile, CreateLine: gi.CreateLine,
			BlockedNs: gi.BlockedNs, Wakes: gi.Wakes,
		}
		if !opts.IncludeWorkers && isWorkerShaped(gi) {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Signature(), out[j].Signature()
		if si != sj {
			return si < sj
		}
		return out[i].G < out[j].G
	})
	// Sibling counts: how many goroutines share each signature.
	counts := map[string]int{}
	for _, s := range out {
		counts[s.Signature()]++
	}
	for i := range out {
		out[i].Siblings = counts[out[i].Signature()]
	}
	return out
}

// isWorkerShaped applies the shared long-lived-worker suppression rule
// (trace.WorkerShaped) to an ingested goroutine.
func isWorkerShaped(gi *GInfo) bool {
	return trace.WorkerShaped(gi.Reason, gi.Orphan, gi.Wakes)
}
