// Native runtime/trace wire-format parsing.
//
// This file reads the Go execution trace format (the go122/go123 wire
// encoding written by runtime/trace since Go 1.22) with only the
// fidelity the concurrency analyses need: the per-M batch structure,
// the per-generation string and stack tables, the tick frequency, and
// every timed event with its arguments. It deliberately does not
// implement the full ordering-validation machinery of the upstream
// parser — the converter (convert.go) re-derives the total order from
// timestamps, which is sufficient for blocking analysis and keeps this
// reader dependency-free.
package ingest

import (
	"bufio"
	"fmt"
	"io"
)

// Event type bytes of the go122/go123 wire format, in the upstream
// numbering (internal/trace/event/go122). Only the events the converter
// interprets are named; everything else is skipped by spec arity.
const (
	wevNone             = 0
	wevEventBatch       = 1
	wevStacks           = 2
	wevStack            = 3
	wevStrings          = 4
	wevString           = 5
	wevCPUSamples       = 6
	wevCPUSample        = 7
	wevFrequency        = 8
	wevProcsChange      = 9
	wevProcStart        = 10
	wevProcStop         = 11
	wevProcSteal        = 12
	wevProcStatus       = 13
	wevGoCreate         = 14
	wevGoCreateSyscall  = 15
	wevGoStart          = 16
	wevGoDestroy        = 17
	wevGoDestroySysc    = 18
	wevGoStop           = 19
	wevGoBlock          = 20
	wevGoUnblock        = 21
	wevGoSyscallBegin   = 22
	wevGoSyscallEnd     = 23
	wevGoSyscallEndBl   = 24
	wevGoStatus         = 25
	wevSTWBegin         = 26
	wevSTWEnd           = 27
	wevGCActive         = 28
	wevGCBegin          = 29
	wevGCEnd            = 30
	wevGCSweepActive    = 31
	wevGCSweepBegin     = 32
	wevGCSweepEnd       = 33
	wevGCMarkAssistAct  = 34
	wevGCMarkAssistBeg  = 35
	wevGCMarkAssistEnd  = 36
	wevHeapAlloc        = 37
	wevHeapGoal         = 38
	wevGoLabel          = 39
	wevUserTaskBegin    = 40
	wevUserTaskEnd      = 41
	wevUserRegionBegin  = 42
	wevUserRegionEnd    = 43
	wevUserLog          = 44
	wevGoSwitch         = 45
	wevGoSwitchDestroy  = 46
	wevGoCreateBlocked  = 47
	wevGoStatusStack    = 48
	wevExperimentBatch  = 49
	wevMax              = 50
)

// wireSpec describes how to read one event: its uvarint argument count
// and whether it carries a stack payload (frames) or a data payload
// (length-prefixed bytes). Mirrors the upstream go122 specs table.
type wireSpec struct {
	args    int
	isStack bool
	hasData bool
	timed   bool // first arg is a dt relative to the batch cursor
}

var wireSpecs = [wevMax]wireSpec{
	wevEventBatch:      {args: 4},
	wevStacks:          {},
	wevStack:           {args: 2, isStack: true},
	wevStrings:         {},
	wevString:          {args: 1, hasData: true},
	wevCPUSamples:      {},
	wevCPUSample:       {args: 5},
	wevFrequency:       {args: 1},
	wevProcsChange:     {args: 3, timed: true},
	wevProcStart:       {args: 3, timed: true},
	wevProcStop:        {args: 1, timed: true},
	wevProcSteal:       {args: 4, timed: true},
	wevProcStatus:      {args: 3, timed: true},
	wevGoCreate:        {args: 4, timed: true},
	wevGoCreateSyscall: {args: 2, timed: true},
	wevGoStart:         {args: 3, timed: true},
	wevGoDestroy:       {args: 1, timed: true},
	wevGoDestroySysc:   {args: 1, timed: true},
	wevGoStop:          {args: 3, timed: true},
	wevGoBlock:         {args: 3, timed: true},
	wevGoUnblock:       {args: 4, timed: true},
	wevGoSyscallBegin:  {args: 3, timed: true},
	wevGoSyscallEnd:    {args: 1, timed: true},
	wevGoSyscallEndBl:  {args: 1, timed: true},
	wevGoStatus:        {args: 4, timed: true},
	wevSTWBegin:        {args: 3, timed: true},
	wevSTWEnd:          {args: 1, timed: true},
	wevGCActive:        {args: 2, timed: true},
	wevGCBegin:         {args: 3, timed: true},
	wevGCEnd:           {args: 2, timed: true},
	wevGCSweepActive:   {args: 2, timed: true},
	wevGCSweepBegin:    {args: 2, timed: true},
	wevGCSweepEnd:      {args: 3, timed: true},
	wevGCMarkAssistAct: {args: 2, timed: true},
	wevGCMarkAssistBeg: {args: 2, timed: true},
	wevGCMarkAssistEnd: {args: 1, timed: true},
	wevHeapAlloc:       {args: 2, timed: true},
	wevHeapGoal:        {args: 2, timed: true},
	wevGoLabel:         {args: 2, timed: true},
	wevUserTaskBegin:   {args: 5, timed: true},
	wevUserTaskEnd:     {args: 3, timed: true},
	wevUserRegionBegin: {args: 4, timed: true},
	wevUserRegionEnd:   {args: 4, timed: true},
	wevUserLog:         {args: 5, timed: true},
	wevGoSwitch:        {args: 3, timed: true},
	wevGoSwitchDestroy: {args: 3, timed: true},
	wevGoCreateBlocked: {args: 4, timed: true},
	wevGoStatusStack:   {args: 5, timed: true},
	wevExperimentBatch: {args: 4, hasData: true},
}

// wireFrame is one stack frame: PC plus string-table references into
// the frame's generation.
type wireFrame struct {
	pc     uint64
	funcID uint64
	fileID uint64
	line   uint64
}

// wireEvent is one timed event attributed to its batch: generation, M,
// absolute timestamp in ticks, and the raw argument vector (dt
// replaced by the absolute timestamp).
type wireEvent struct {
	gen  uint64
	m    uint64
	ts   uint64 // absolute ticks
	typ  byte
	args []uint64 // spec args minus dt
	seq  int      // arrival index, the tie-break of the merge sort
}

// generation groups one generation's tables.
type generation struct {
	strings map[uint64]string
	stacks  map[uint64][]wireFrame
}

// wireCPUSample is one profiling-clock sample as written into the
// trace's CPU-sample batches: unlike regular events its timestamp is
// absolute (not a batch-relative dt) and it names its goroutine
// explicitly rather than relying on M attribution.
type wireCPUSample struct {
	gen   uint64
	ts    uint64 // absolute ticks
	m     uint64
	p     uint64
	g     uint64
	stack uint64
}

// wireTrace is the parsed file: every timed event plus the
// per-generation tables needed to resolve them.
type wireTrace struct {
	version    int // 22 or 23 (the "go 1.N trace" header)
	freq       float64
	events     []wireEvent
	cpuSamples []wireCPUSample
	gens       map[uint64]*generation
}

func (w *wireTrace) gen(id uint64) *generation {
	g, ok := w.gens[id]
	if !ok {
		g = &generation{strings: map[uint64]string{}, stacks: map[uint64][]wireFrame{}}
		w.gens[id] = g
	}
	return g
}

// maxWireEvents bounds parsing so a corrupt size field cannot allocate
// unboundedly: 64M timed events is far beyond any fixture or CI trace.
const maxWireEvents = 64 << 20

// parseWire reads a complete native execution trace.
func parseWire(r io.Reader) (*wireTrace, error) {
	br := bufio.NewReader(r)
	var version int
	if _, err := fmt.Fscanf(br, "go 1.%d trace\x00\x00\x00", &version); err != nil {
		return nil, fmt.Errorf("ingest: not a Go execution trace (bad header): %w", err)
	}
	if version != 22 && version != 23 {
		return nil, fmt.Errorf("ingest: unsupported trace version go 1.%d (want 1.22 or 1.23)", version)
	}
	w := &wireTrace{version: version, gens: map[uint64]*generation{}}

	// Batch cursor: the current batch's generation and M, and the
	// cumulative timestamp of the last timed event read from it.
	var curGen, curM, lastTs uint64
	inBatch := false
	seq := 0

	for {
		typ, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: reading event type: %w", err)
		}
		if typ == wevNone || int(typ) >= wevMax {
			return nil, fmt.Errorf("ingest: invalid event type byte %d at event %d", typ, seq)
		}
		spec := wireSpecs[typ]
		args := make([]uint64, spec.args)
		for i := range args {
			if args[i], err = readUvarint(br); err != nil {
				return nil, fmt.Errorf("ingest: event %d (type %d) arg %d: %w", seq, typ, i, err)
			}
		}
		switch typ {
		case wevEventBatch:
			// [gen, m, time, size]
			curGen, curM, lastTs = args[0], args[1], args[2]
			inBatch = true
		case wevExperimentBatch:
			// [exp, gen, m, time] + data payload: opaque, skip.
			if err := skipData(br); err != nil {
				return nil, fmt.Errorf("ingest: experimental batch payload: %w", err)
			}
		case wevFrequency:
			w.freq = 1e9 / float64(args[0]) // ticks/sec → ns per tick
		case wevString:
			// [id] + data payload.
			data, err := readData(br)
			if err != nil {
				return nil, fmt.Errorf("ingest: string %d payload: %w", args[0], err)
			}
			w.gen(curGen).strings[args[0]] = string(data)
		case wevCPUSample:
			// [time, m, p, g, stack]: absolute timestamp, carried in a
			// dedicated CPU-sample batch of the enclosing generation.
			if len(w.cpuSamples) < maxWireEvents {
				w.cpuSamples = append(w.cpuSamples, wireCPUSample{
					gen: curGen, ts: args[0], m: args[1], p: args[2], g: args[3], stack: args[4],
				})
			}
		case wevStack:
			// [id, nframes] + nframes × {pc, funcID, fileID, line}.
			n := int(args[1])
			if n > 1024 {
				return nil, fmt.Errorf("ingest: stack %d has implausible frame count %d", args[0], n)
			}
			frames := make([]wireFrame, n)
			for i := range frames {
				var f [4]uint64
				for j := range f {
					if f[j], err = readUvarint(br); err != nil {
						return nil, fmt.Errorf("ingest: stack %d frame %d: %w", args[0], i, err)
					}
				}
				frames[i] = wireFrame{pc: f[0], funcID: f[1], fileID: f[2], line: f[3]}
			}
			w.gen(curGen).stacks[args[0]] = frames
		default:
			if !spec.timed {
				break // section headers (Stacks/Strings/CPUSamples)
			}
			if !inBatch {
				return nil, fmt.Errorf("ingest: timed event (type %d) outside any batch", typ)
			}
			lastTs += args[0] // dt accumulates along the batch
			if len(w.events) >= maxWireEvents {
				return nil, fmt.Errorf("ingest: more than %d timed events; refusing", maxWireEvents)
			}
			w.events = append(w.events, wireEvent{
				gen: curGen, m: curM, ts: lastTs, typ: typ, args: args[1:], seq: seq,
			})
		}
		seq++
	}
	if w.freq == 0 {
		return nil, fmt.Errorf("ingest: trace carries no frequency event")
	}
	if len(w.events) == 0 {
		return nil, fmt.Errorf("ingest: trace carries no timed events")
	}
	return w, nil
}

// readUvarint is binary.ReadUvarint without the interface indirection.
func readUvarint(br *bufio.Reader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, fmt.Errorf("uvarint overflows 64 bits")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, fmt.Errorf("uvarint overflows 64 bits")
		}
	}
}

func readData(br *bufio.Reader) ([]byte, error) {
	n, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("payload too long (%d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func skipData(br *bufio.Reader) error {
	n, err := readUvarint(br)
	if err != nil {
		return err
	}
	if n > 1<<30 {
		return fmt.Errorf("payload too long (%d)", n)
	}
	_, err = io.CopyN(io.Discard, br, int64(n))
	return err
}

// frameInfo is a resolved stack frame.
type frameInfo struct {
	fn   string
	file string
	line int
}

// resolveStack maps a stack ID to resolved frames, leaf first. Stack 0
// means "no stack".
func (w *wireTrace) resolveStack(gen, id uint64) []frameInfo {
	if id == 0 {
		return nil
	}
	g, ok := w.gens[gen]
	if !ok {
		return nil
	}
	frames := g.stacks[id]
	out := make([]frameInfo, 0, len(frames))
	for _, f := range frames {
		out = append(out, frameInfo{
			fn:   g.strings[f.funcID],
			file: g.strings[f.fileID],
			line: int(f.line),
		})
	}
	return out
}

// str resolves a string-table reference.
func (w *wireTrace) str(gen, id uint64) string {
	if g, ok := w.gens[gen]; ok {
		return g.strings[id]
	}
	return ""
}
