package ingest

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestParseWireRejectsBadHeader(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"goatect", "GOATECT1\x00\x00"},
		{"garbage", "not a trace at all"},
		{"old-version", "go 1.19 trace\x00\x00\x00"},
		{"future-version", "go 1.99 trace\x00\x00\x00"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := parseWire(strings.NewReader(c.input)); err == nil {
				t.Fatal("parseWire accepted invalid input")
			}
		})
	}
}

// TestParseWireTruncationRobustness feeds every prefix of a real capture
// to the parser: truncated input must produce an error or a short
// parse, never a panic or a hang.
func TestParseWireTruncationRobustness(t *testing.T) {
	data, err := os.ReadFile(leakyFixture)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if testing.Short() {
		step = 97
	}
	for n := 0; n < len(data); n += step {
		_, _ = parseWire(bytes.NewReader(data[:n])) // must not panic
	}
}

// TestParseWireCorruptionRobustness flips bytes in the body: corrupt
// input must never panic the parser (errors and garbage events are
// acceptable; memory-unsafe behavior is not).
func TestParseWireCorruptionRobustness(t *testing.T) {
	data, err := os.ReadFile(leakyFixture)
	if err != nil {
		t.Fatal(err)
	}
	header := len("go 1.23 trace\x00\x00\x00")
	for i := header; i < len(data); i += 31 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		w, err := parseWire(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// A parse that survives corruption must still convert safely.
		_, _ = Parse(bytes.NewReader(mut))
		_ = w
	}
}

func TestParseWireTables(t *testing.T) {
	f, err := os.Open(leakyFixture)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := parseWire(f)
	if err != nil {
		t.Fatal(err)
	}
	if w.version != 23 {
		t.Errorf("version = %d, want 23", w.version)
	}
	if w.freq <= 0 {
		t.Errorf("freq = %v, want > 0", w.freq)
	}
	if len(w.events) == 0 {
		t.Fatal("no timed events parsed")
	}
	// The capture must contain resolvable strings and stacks — the
	// block-reason vocabulary at minimum.
	foundReason := false
	for _, g := range w.gens {
		for _, s := range g.strings {
			if s == "chan send" {
				foundReason = true
			}
		}
	}
	if !foundReason {
		t.Error(`string table is missing "chan send" — table parsing is broken`)
	}
	// Every referenced stack resolves to frames with file:line.
	resolved := 0
	for _, ev := range w.events {
		if len(ev.args) == 0 {
			continue
		}
		for _, fr := range w.resolveStack(ev.gen, ev.args[len(ev.args)-1]) {
			if fr.file != "" && fr.line > 0 {
				resolved++
			}
		}
	}
	if resolved == 0 {
		t.Error("no stack frame resolved to a source location")
	}
}
