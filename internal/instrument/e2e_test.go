package instrument

import (
	"goat/internal/cu"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot walks up from this source file to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file))) // internal/instrument -> repo
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	return root
}

// TestInstrumentedProgramRuns is the end-to-end check of the native
// pipeline: instrument a leaking program, build and run it inside the
// module, and verify goatrt's end-of-main leak check fires.
func TestInstrumentedProgramRuns(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	const leaky = `package main

import (
	"fmt"
	"time"
)

func main() {
	ch := make(chan int)
	go func() {
		ch <- 1 // leaks: nobody receives
	}()
	time.Sleep(50 * time.Millisecond)
	fmt.Println("main done")
}
`
	res, err := Source("leaky.go", leaky, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MainHook || res.Handlers == 0 {
		t.Fatalf("instrumentation incomplete: %+v", res)
	}

	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "instrument", "testdata", "e2e_gen")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(res.Source), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "run", "./internal/instrument/testdata/e2e_gen")
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "GOAT_SEED=1", "GOAT_D=2", "GOAT_TIMEOUT=20s")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("instrumented program failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "main done") {
		t.Fatalf("program output missing:\n%s", s)
	}
	if !strings.Contains(s, "goroutine(s) leaked") || !strings.Contains(s, "chan send") {
		t.Fatalf("goatrt leak check did not fire:\n%s", s)
	}
}

// TestInstrumentedCleanProgramQuiet: a non-leaking program must pass the
// end-of-main check silently.
func TestInstrumentedCleanProgramQuiet(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	const clean = `package main

import (
	"fmt"
	"sync"
)

func main() {
	var wg sync.WaitGroup
	ch := make(chan int, 1)
	wg.Add(1)
	go func() {
		ch <- 42
		wg.Done()
	}()
	wg.Wait()
	fmt.Println("got", <-ch)
}
`
	res, err := Source("clean.go", clean, Options{})
	if err != nil {
		t.Fatal(err)
	}
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "instrument", "testdata", "e2e_clean")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(res.Source), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./internal/instrument/testdata/e2e_clean")
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "GOAT_SEED=1", "GOAT_TIMEOUT=20s")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("instrumented program failed: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "leaked") {
		t.Fatalf("false leak report on clean program:\n%s", out)
	}
	if !strings.Contains(string(out), "got 42") {
		t.Fatalf("program output wrong:\n%s", out)
	}
}

// TestInstrumentedVisitTrace runs the native pipeline end to end with
// GOAT_TRACE: instrument, run, parse the visit log, and compute
// executed-CU coverage against the instrumented source's model.
func TestInstrumentedVisitTrace(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	const prog = `package main

import "sync"

func main() {
	var mu sync.Mutex
	ch := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		mu.Lock()
		ch <- 1
		mu.Unlock()
		wg.Done()
	}()
	wg.Wait()
	<-ch
}
`
	res, err := Source("visits.go", prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	root := repoRoot(t)
	dir := filepath.Join(root, "internal", "instrument", "testdata", "e2e_visits")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	srcPath := filepath.Join(dir, "main.go")
	if err := os.WriteFile(srcPath, []byte(res.Source), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "visits.log")
	cmd := exec.Command("go", "run", "./internal/instrument/testdata/e2e_visits")
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "GOAT_SEED=1", "GOAT_TRACE="+tracePath, "GOAT_TIMEOUT=20s")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("instrumented program failed: %v\n%s", err, out)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("visit trace not written: %v", err)
	}
	defer f.Close()
	visits, err := cu.ParseVisits(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != res.Handlers {
		t.Fatalf("visits = %d, want one per handler (%d)", len(visits), res.Handlers)
	}
	// Coverage against the instrumented source's own model: everything in
	// this straight-line program executes.
	model, err := cu.ExtractSource("main.go", res.Source)
	if err != nil {
		t.Fatal(err)
	}
	executed, dead, pct := cu.ExecutedCoverage(cu.NewModel(model), visits)
	if pct < 100 {
		t.Fatalf("executed-CU coverage %.1f%% (executed %d, dead %v)", pct, len(executed), dead)
	}
}
