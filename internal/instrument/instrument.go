// Package instrument performs GoAT's source-to-source instrumentation of
// native Go programs: it injects the goatrt bootstrap into main (Start /
// Watch / deferred Stop) and a goatrt.Handler() schedule-perturbation call
// before every statement that performs a concurrency usage.
//
// The rewrite is purely syntactic (go/ast in, go/format out), mirroring the
// paper's AST-level injection, and returns the extracted concurrency-usage
// model M alongside the rewritten source.
package instrument

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"goat/internal/cu"
)

// Options configure the instrumentation.
type Options struct {
	// RuntimeImport is the import path of the runtime-support package.
	// Empty selects the default "goat/goatrt".
	RuntimeImport string
	// Pkg is the local identifier used in injected calls. Empty selects
	// "goatrt".
	Pkg string
}

func (o Options) runtimeImport() string {
	if o.RuntimeImport == "" {
		return "goat/goatrt"
	}
	return o.RuntimeImport
}

func (o Options) pkg() string {
	if o.Pkg == "" {
		return "goatrt"
	}
	return o.Pkg
}

// Result is the outcome of instrumenting one file.
type Result struct {
	Source   string  // rewritten, gofmt-formatted source
	CUs      []cu.CU // the file's concurrency-usage model entries
	Handlers int     // number of injected Handler() calls
	MainHook bool    // whether the main-function bootstrap was injected
}

// Source instruments one Go source text. name is used for diagnostics and
// CU attribution.
func Source(name, src string, opts Options) (*Result, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("instrument: parsing %s: %w", name, err)
	}
	for _, imp := range f.Imports {
		if p, _ := strconv.Unquote(imp.Path.Value); p == opts.runtimeImport() {
			return nil, fmt.Errorf("instrument: %s already imports %s", name, opts.runtimeImport())
		}
	}

	cus, err := cu.ExtractSource(name, src)
	if err != nil {
		return nil, err
	}

	ins := &inserter{pkg: opts.pkg()}
	ast.Inspect(f, ins.visit)

	mainHook := false
	if f.Name.Name == "main" {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Name.Name == "main" && fd.Recv == nil && fd.Body != nil {
				fd.Body.List = append(mainBootstrap(opts.pkg()), fd.Body.List...)
				mainHook = true
			}
		}
	}

	if ins.count > 0 || mainHook {
		addImport(f, opts.pkg(), opts.runtimeImport())
	}

	var buf bytes.Buffer
	if err := format.Node(&buf, fset, f); err != nil {
		return nil, fmt.Errorf("instrument: rendering %s: %w", name, err)
	}
	return &Result{Source: buf.String(), CUs: cus, Handlers: ins.count, MainHook: mainHook}, nil
}

// File instruments a file on disk, returning the result without writing.
func File(path string, opts Options) (*Result, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	return Source(path, string(src), opts)
}

// Dir instruments every .go file of dir into outDir (created if needed)
// and returns the program's combined CU model.
func Dir(dir, outDir string, opts Options) (*cu.Model, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	var all []cu.CU
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		res, err := File(filepath.Join(dir, name), opts)
		if err != nil {
			return nil, err
		}
		all = append(all, res.CUs...)
		if err := os.WriteFile(filepath.Join(outDir, name), []byte(res.Source), 0o644); err != nil {
			return nil, fmt.Errorf("instrument: %w", err)
		}
	}
	return cu.NewModel(all), nil
}

// inserter injects Handler() calls into statement lists.
type inserter struct {
	pkg   string
	count int
}

func (ins *inserter) visit(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.BlockStmt:
		v.List = ins.rewrite(v.List)
	case *ast.CaseClause:
		v.Body = ins.rewrite(v.Body)
	case *ast.CommClause:
		v.Body = ins.rewrite(v.Body)
	}
	return true
}

func (ins *inserter) rewrite(list []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(list))
	for _, st := range list {
		switch st.(type) {
		case *ast.CommClause, *ast.CaseClause:
			// Clause headers cannot be preceded by statements; their
			// bodies are rewritten when the walk reaches them.
			out = append(out, st)
			continue
		}
		if carriesCU(st) {
			out = append(out, handlerCall(ins.pkg))
			ins.count++
		}
		out = append(out, st)
	}
	return out
}

// carriesCU reports whether the statement performs a concurrency usage at
// its own nesting level (nested blocks and function literals handle their
// own statements when the walk reaches them).
func carriesCU(st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.BlockStmt:
			return false // inner statements are rewritten separately
		case *ast.FuncLit:
			return false
		case *ast.SendStmt, *ast.GoStmt, *ast.SelectStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.CallExpr:
			if isCUCall(v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isCUCall matches close(ch) and the sync-method vocabulary.
func isCUCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "close"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Lock", "Unlock", "RLock", "RUnlock", "Add", "Done", "Wait",
			"Signal", "Broadcast", "Do":
			return true
		}
	}
	return false
}

// handlerCall builds `pkg.Handler()`.
func handlerCall(pkg string) ast.Stmt {
	return &ast.ExprStmt{X: &ast.CallExpr{
		Fun: &ast.SelectorExpr{X: ast.NewIdent(pkg), Sel: ast.NewIdent("Handler")},
	}}
}

// mainBootstrap builds the three injected main statements:
//
//	goatDone := pkg.Start()
//	pkg.Watch(goatDone)
//	defer pkg.Stop(goatDone)
func mainBootstrap(pkg string) []ast.Stmt {
	doneIdent := ast.NewIdent("goatDone")
	call := func(fn string, args ...ast.Expr) *ast.CallExpr {
		return &ast.CallExpr{
			Fun:  &ast.SelectorExpr{X: ast.NewIdent(pkg), Sel: ast.NewIdent(fn)},
			Args: args,
		}
	}
	return []ast.Stmt{
		&ast.AssignStmt{
			Lhs: []ast.Expr{doneIdent},
			Tok: token.DEFINE,
			Rhs: []ast.Expr{call("Start")},
		},
		&ast.ExprStmt{X: call("Watch", ast.NewIdent("goatDone"))},
		&ast.DeferStmt{Call: call("Stop", ast.NewIdent("goatDone"))},
	}
}

// addImport appends the runtime-support import to the file.
func addImport(f *ast.File, pkg, path string) {
	spec := &ast.ImportSpec{
		Name: ast.NewIdent(pkg),
		Path: &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(path)},
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if ok && gd.Tok == token.IMPORT {
			gd.Specs = append(gd.Specs, spec)
			f.Imports = append(f.Imports, spec)
			return
		}
	}
	gd := &ast.GenDecl{Tok: token.IMPORT, Specs: []ast.Spec{spec}}
	f.Decls = append([]ast.Decl{gd}, f.Decls...)
	f.Imports = append(f.Imports, spec)
}
