package instrument

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const target = `package main

import "sync"

var mu sync.Mutex

func worker(ch chan int, wg *sync.WaitGroup) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
	wg.Done()
}

func main() {
	ch := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(ch, &wg)
	select {
	case v := <-ch:
		_ = v
	default:
	}
	wg.Wait()
}
`

func TestSourceInjectsBootstrapAndHandlers(t *testing.T) {
	res, err := Source("main.go", target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MainHook {
		t.Fatal("main bootstrap not injected")
	}
	for _, want := range []string{
		"goatDone := goatrt.Start()",
		"goatrt.Watch(goatDone)",
		"defer goatrt.Stop(goatDone)",
		"goatrt.Handler()",
		`goatrt "goat/goatrt"`,
	} {
		if !strings.Contains(res.Source, want) {
			t.Errorf("instrumented source missing %q:\n%s", want, res.Source)
		}
	}
	// Handlers: mu.Lock, ch<-, mu.Unlock, wg.Done, wg.Add, go stmt,
	// select stmt, wg.Wait = 8.
	if res.Handlers != 8 {
		t.Errorf("Handlers = %d, want 8\n%s", res.Handlers, res.Source)
	}
	if len(res.CUs) == 0 {
		t.Error("CU model empty")
	}
}

func TestInstrumentedSourceParses(t *testing.T) {
	res, err := Source("main.go", target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", res.Source, 0); err != nil {
		t.Fatalf("instrumented output does not parse: %v\n%s", err, res.Source)
	}
}

func TestHandlerPrecedesEachCU(t *testing.T) {
	res, err := Source("main.go", target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(res.Source, "\n")
	for i, line := range lines {
		tl := strings.TrimSpace(line)
		if tl == "ch <- 1" || strings.HasPrefix(tl, "go worker") || tl == "select {" {
			if i == 0 || strings.TrimSpace(lines[i-1]) != "goatrt.Handler()" {
				t.Errorf("no handler before %q (line %d):\n%s", tl, i+1, res.Source)
			}
		}
	}
}

func TestBootstrapComesFirstInMain(t *testing.T) {
	res, err := Source("main.go", target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mainIdx := strings.Index(res.Source, "func main() {")
	startIdx := strings.Index(res.Source, "goatDone := goatrt.Start()")
	firstCU := strings.Index(res.Source, "ch := make(chan int, 1)")
	if !(mainIdx < startIdx && startIdx < firstCU) {
		t.Fatalf("bootstrap not first in main:\n%s", res.Source)
	}
}

func TestCustomRuntimeImport(t *testing.T) {
	res, err := Source("main.go", target, Options{RuntimeImport: "example.com/rt", Pkg: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Source, `rt "example.com/rt"`) || !strings.Contains(res.Source, "rt.Handler()") {
		t.Fatalf("custom import not honored:\n%s", res.Source)
	}
}

func TestDoubleInstrumentationRejected(t *testing.T) {
	res, err := Source("main.go", target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Source("main.go", res.Source, Options{}); err == nil {
		t.Fatal("re-instrumentation accepted")
	}
}

func TestNonMainPackageGetsHandlersOnly(t *testing.T) {
	src := `package lib

func Produce(ch chan int) {
	ch <- 1
}
`
	res, err := Source("lib.go", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MainHook {
		t.Fatal("bootstrap injected into a non-main package")
	}
	if res.Handlers != 1 {
		t.Fatalf("Handlers = %d, want 1", res.Handlers)
	}
	if !strings.Contains(res.Source, "goatrt.Handler()") {
		t.Fatalf("handler missing:\n%s", res.Source)
	}
}

func TestFileWithoutCUsUntouched(t *testing.T) {
	src := `package pure

func Add(a, b int) int { return a + b }
`
	res, err := Source("pure.go", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handlers != 0 || strings.Contains(res.Source, "goatrt") {
		t.Fatalf("pure file modified:\n%s", res.Source)
	}
}

func TestNestedBlocksHandledOnce(t *testing.T) {
	src := `package p

func f(ch chan int) {
	for i := 0; i < 3; i++ {
		if i > 0 {
			ch <- i
		}
	}
}
`
	res, err := Source("p.go", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one handler: before the send. Neither the for nor the if
	// carries the CU at its own level.
	if res.Handlers != 1 {
		t.Fatalf("Handlers = %d, want 1:\n%s", res.Handlers, res.Source)
	}
	idx := strings.Index(res.Source, "goatrt.Handler()")
	sendIdx := strings.Index(res.Source, "ch <- i")
	if idx == -1 || sendIdx < idx {
		t.Fatalf("handler not immediately before send:\n%s", res.Source)
	}
}

func TestFuncLitBodiesInstrumented(t *testing.T) {
	src := `package p

func f(ch chan int) func() {
	return func() {
		ch <- 1
	}
}
`
	res, err := Source("p.go", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handlers != 1 {
		t.Fatalf("Handlers = %d, want 1 inside the func literal:\n%s", res.Handlers, res.Source)
	}
}

func TestDirInstrumentsAllFiles(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(target), 0o644); err != nil {
		t.Fatal(err)
	}
	model, err := Dir(dir, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Len() == 0 {
		t.Fatal("model empty")
	}
	data, err := os.ReadFile(filepath.Join(out, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "goatrt.Handler()") {
		t.Fatal("output file not instrumented")
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	if _, err := Source("bad.go", "package {", Options{}); err == nil {
		t.Fatal("parse error not reported")
	}
}
