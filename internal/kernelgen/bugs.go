package kernelgen

import (
	"fmt"

	"goat/internal/goker"
)

// BugKind enumerates the planted-bug templates. Each template is a
// miniature of a GoKer bug class, isolated in dedicated goroutines and
// resources appended to an otherwise safe program.
type BugKind uint8

const (
	// BugDoubleLock: one goroutine locks the same mutex twice.
	// Deterministic resource deadlock (self-cycle in the wait-for graph).
	BugDoubleLock BugKind = iota
	// BugABBA: two goroutines acquire two mutexes in opposite order.
	// Racy resource deadlock — it bites only when the scheduler preempts
	// between the acquisitions, but the lock-order cycle is visible in
	// every trace.
	BugABBA
	// BugSendNoRecv: a send on an unbuffered channel nobody receives
	// from. Deterministic communication deadlock.
	BugSendNoRecv
	// BugRecvNoSend: a receive from a channel nobody sends on or closes.
	// Deterministic communication deadlock.
	BugRecvNoSend
	// BugMissingClose: the producer omits the close, so the consumer's
	// drain loop blocks after the last message. Deterministic
	// communication deadlock (the hugo_5379 shape).
	BugMissingClose
	// BugLockedSend: a send on an unbuffered channel under a mutex the
	// receiver needs before receiving. Deterministic mixed deadlock (the
	// istio_16224 shape) — either interleaving wedges both goroutines.
	BugLockedSend
	// BugWgForgotDone: one worker of a dedicated waitgroup never calls
	// Done, so the waiter parks forever. Deterministic communication
	// deadlock (waitgroup misuse).
	BugWgForgotDone
	// BugOnceCycle: a Once body waits for a signal only the second Once
	// caller could send (the hugo_3251 shape). Deterministic — at least
	// one goroutine leaks under every schedule, though which one is
	// schedule-dependent.
	BugOnceCycle

	numBugKinds
)

var bugKindNames = [...]string{
	"double-lock", "abba", "send-no-recv", "recv-no-send",
	"missing-close", "locked-send", "wg-forgot-done", "once-cycle",
}

// String returns the template name.
func (b BugKind) String() string {
	if int(b) < len(bugKindNames) {
		return bugKindNames[b]
	}
	return fmt.Sprintf("BugKind(%d)", uint8(b))
}

// Cause returns the template's root-cause class in the paper's taxonomy.
func (b BugKind) Cause() goker.Cause {
	switch b {
	case BugDoubleLock, BugABBA:
		return goker.ResourceDeadlock
	case BugLockedSend:
		return goker.MixedDeadlock
	default:
		return goker.CommunicationDeadlock
	}
}

// Deterministic reports whether the template manifests on every schedule.
func (b BugKind) Deterministic() bool { return b != BugABBA }

// Oracle is the constructed ground truth carried by every generated
// program: what the program is guaranteed to do, known at generation
// time rather than discovered by running it.
type Oracle struct {
	// Buggy distinguishes planted-bug kernels from safe kernels
	// (deadlock-free under every schedule by construction).
	Buggy bool
	// Kind and Cause classify the planted bug (valid when Buggy).
	Kind  BugKind
	Cause goker.Cause
	// Deterministic means the bug manifests on every schedule; racy bugs
	// (ABBA) manifest only under specific preemptions.
	Deterministic bool
	// WgCounted means the planted goroutines are joined by main's
	// waitgroup: when the bug bites, main blocks too and the symptom is a
	// global deadlock; otherwise main returns and the victims leak.
	WgCounted bool
}

// Expect returns the dominant symptom tag when the bug manifests, in the
// goker Expect vocabulary.
func (o Oracle) Expect() string {
	if o.WgCounted {
		return "GDL"
	}
	return "PDL"
}

// String summarizes the oracle.
func (o Oracle) String() string {
	if !o.Buggy {
		return "safe (terminates under every schedule)"
	}
	det := "deterministic"
	if !o.Deterministic {
		det = "racy"
	}
	return fmt.Sprintf("%s %s bug (%s cause, expect %s)", det, o.Kind, o.Cause, o.Expect())
}

// plant appends the bug template's goroutines and resources to a safe
// program and returns the planted GDecl indices; the caller (Generate)
// splices their spawns into main. Planted goroutines are named "bugN"
// and use only dedicated resources, so in a buggy kernel exactly the
// planted goroutines (and, when they are wg-counted, main) can end up
// blocked.
func plant(p *Prog, kind BugKind, counted bool) []int {
	p.Oracle = Oracle{
		Buggy:         true,
		Kind:          kind,
		Cause:         kind.Cause(),
		Deterministic: kind.Deterministic(),
		WgCounted:     counted,
	}
	p.BugMutex = -1

	newChan := func(capacity, k int, noClose bool) int {
		p.Chans = append(p.Chans, ChanSpec{Cap: capacity, K: k, NoClose: noClose, Bug: true})
		return len(p.Chans) - 1
	}
	newMutex := func() int {
		p.NMutex++
		return p.NMutex - 1
	}
	var planted []int
	newG := func(ops ...Op) int {
		idx := len(p.Gs)
		p.Gs = append(p.Gs, GDecl{
			Name:    fmt.Sprintf("bug%d", len(planted)),
			Counted: counted,
			Ops:     ops,
		})
		planted = append(planted, idx)
		return idx
	}

	switch kind {
	case BugDoubleLock:
		m := newMutex()
		p.BugMutex = m
		newG(Op{Kind: OpLock, A: m}, Op{Kind: OpLock, A: m})
	case BugABBA:
		a, b := newMutex(), newMutex()
		p.BugMutex = a
		newG(
			Op{Kind: OpLock, A: a},
			Op{Kind: OpLock, A: b},
			Op{Kind: OpUnlock, A: b}, Op{Kind: OpUnlock, A: a},
		)
		newG(
			Op{Kind: OpLock, A: b},
			Op{Kind: OpLock, A: a},
			Op{Kind: OpUnlock, A: a}, Op{Kind: OpUnlock, A: b},
		)
	case BugSendNoRecv:
		c := newChan(0, 1, false)
		newG(Op{Kind: OpSendOne, A: c})
	case BugRecvNoSend:
		c := newChan(0, 1, false)
		newG(Op{Kind: OpRecvOne, A: c})
	case BugMissingClose:
		c := newChan(2, 2, true)
		newG(Op{Kind: OpProduce, A: c})
		newG(Op{Kind: OpDrainLoop, A: c})
	case BugLockedSend:
		m := newMutex()
		p.BugMutex = m
		c := newChan(0, 1, false)
		newG(
			Op{Kind: OpLock, A: m},
			Op{Kind: OpSendOne, A: c},
			Op{Kind: OpUnlock, A: m},
		)
		newG(
			Op{Kind: OpLock, A: m},
			Op{Kind: OpRecvOne, A: c},
			Op{Kind: OpUnlock, A: m},
		)
	case BugWgForgotDone:
		// Generate prepends main's wgs[1].Add(2) so it happens-before
		// either planted Done could run.
		if p.NWg < 2 {
			p.NWg = 2
		}
		newG(Op{Kind: OpWgDone, A: 1})
		newG(Op{Kind: OpYield}) // BUG: forgot wgs[1].Done
		newG(Op{Kind: OpWgWait, A: 1})
	case BugOnceCycle:
		// A dedicated Once: a shared one could capture safe workers in the
		// cycle, blocking goroutines the oracle promises terminate.
		oi := p.NOnce
		p.NOnce++
		c := newChan(0, 1, false)
		newG(Op{Kind: OpOnceRecv, A: c, B: oi})
		newG(Op{Kind: OpOnce, A: oi}, Op{Kind: OpSendOne, A: c})
	}
	return planted
}
