package kernelgen

import (
	"go/parser"
	"go/token"
	"math/rand"
	"strings"
	"testing"

	"goat/internal/cu"
)

// TestGoSourceParses: every generated program must render to
// syntactically valid Go.
func TestGoSourceParses(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 60; i++ {
		p := Generate(RandomDecision(rng, i%2 == 0))
		src := p.GoSource("fuzz_test")
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "fuzz_test.go", src, 0); err != nil {
			t.Fatalf("kernel %d: generated source does not parse: %v\n%s", i, err, src)
		}
	}
}

// TestGoSourceFeedsCUExtractor: the rendered source must yield a
// non-trivial concurrency-usage model through the same static extractor
// the paper's goat binary uses, including the planted bug's CU class.
func TestGoSourceFeedsCUExtractor(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dec := forceBug(rng, BugLockedSend, false)
	p := Generate(dec)
	src := p.GoSource("fuzz_locked_send")
	cus, err := cu.ExtractSource("fuzz_locked_send.go", src)
	if err != nil {
		t.Fatalf("extraction failed: %v\n%s", err, src)
	}
	if len(cus) == 0 {
		t.Fatalf("no CUs extracted from:\n%s", src)
	}
	kinds := map[string]bool{}
	for _, c := range cus {
		kinds[c.Kind.String()] = true
	}
	// The locked-send template must surface both lock and channel usages.
	var hasLock, hasChan bool
	for k := range kinds {
		if strings.Contains(k, "lock") || strings.Contains(k, "mutex") {
			hasLock = true
		}
		if strings.Contains(k, "send") || strings.Contains(k, "recv") || strings.Contains(k, "chan") {
			hasChan = true
		}
	}
	if !hasLock || !hasChan {
		t.Fatalf("locked-send CU classes missing (lock=%v chan=%v) in %v", hasLock, hasChan, kinds)
	}
}
