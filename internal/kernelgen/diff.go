package kernelgen

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"goat/internal/cover"
	"goat/internal/engine"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/harness"
	"goat/internal/sim"
	"goat/internal/trace"
)

// DiffConfig bounds one differential campaign.
type DiffConfig struct {
	// N is the number of kernels to generate.
	N int
	// Seed drives both the decision strings and the schedule seeds.
	Seed int64
	// BuggyFrac is the fraction of kernels with a planted bug (default 0.5).
	BuggyFrac float64
	// DMax is the largest GoAT delay bound swept (default 3: D ∈ {0..3}).
	DMax int
	// Sweep is how many schedule seeds each kernel runs per delay bound
	// (default 3).
	Sweep int
	// Tools overrides the column lineup (default harness.DiffTools(DMax)).
	// The oracle rules key on Detector.Name(), so a wrapped detector under
	// test must keep its wrapped tool's name.
	Tools []harness.Spec
	// NoShrink reports findings without minimizing them.
	NoShrink bool
	// MaxFindings stops the campaign early once this many disagreements
	// are collected (0 = no limit).
	MaxFindings int
}

func (c DiffConfig) dmax() int {
	if c.DMax <= 0 {
		return 3
	}
	return c.DMax
}

func (c DiffConfig) sweep() int {
	if c.Sweep <= 0 {
		return 3
	}
	return c.Sweep
}

func (c DiffConfig) buggyFrac() float64 {
	if c.BuggyFrac <= 0 || c.BuggyFrac > 1 {
		return 0.5
	}
	return c.BuggyFrac
}

func (c DiffConfig) tools() []harness.Spec {
	if c.Tools == nil {
		return harness.DiffTools(c.dmax())
	}
	return c.Tools
}

// Finding is one disagreement between a detector's verdict and the
// constructed ground truth, minimized to the smallest decision string
// that still reproduces it.
type Finding struct {
	Kernel   int    // campaign kernel index
	Tool     string // tool whose verdict disagreed
	Rule     string // which oracle rule was violated
	Detail   string // human-readable account of the disagreement
	Seed     int64  // schedule seed of the disagreeing run
	Delays   int    // delay bound of the disagreeing run
	Decision []byte // original decision string
	Shrunk   []byte // minimized decision string (== Decision when NoShrink)
	Prog     *Prog  // the minimized program
}

// String renders the finding for reports.
func (f *Finding) String() string {
	return fmt.Sprintf("kernel #%d tool=%s seed=%d D=%d rule=%s: %s\n  decision %x shrunk to %x (%d -> %d bytes)\n  %s",
		f.Kernel, f.Tool, f.Seed, f.Delays, f.Rule, f.Detail,
		f.Decision, f.Shrunk, len(f.Decision), len(f.Shrunk), f.Prog)
}

// ReproKernel packages the minimized program as a registerable kernel
// named after the campaign, so the reproducer can join the goker registry
// and run under `goat -bug <id>`.
func (f *Finding) ReproKernel() goker.Kernel {
	return f.Prog.Kernel(fmt.Sprintf("fuzz_%s_k%d", f.Tool, f.Kernel))
}

// DiffReport summarizes one differential campaign.
type DiffReport struct {
	Kernels  int
	Runs     int
	Findings []*Finding
	// Covered / Total are the accumulated CU-coverage counts across every
	// traced run: generated kernels feed the same global coverage model
	// the GoKer campaigns use.
	Covered, Total int
}

// String renders the campaign summary.
func (r *DiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential campaign: %d kernel(s), %d run(s), %d finding(s)",
		r.Kernels, r.Runs, len(r.Findings))
	if r.Total > 0 {
		fmt.Fprintf(&b, ", coverage %d/%d CUs (%.1f%%)",
			r.Covered, r.Total, 100*float64(r.Covered)/float64(r.Total))
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "\n\nFINDING %s", f)
	}
	return b.String()
}

// RunDiff runs the differential campaign: generate N kernels, run each
// under every tool across the seed/delay sweep, cross-check every verdict
// against the planted oracle and the wait-for-graph ground truth, and
// shrink every disagreement to a minimal reproducer.
func RunDiff(cfg DiffConfig) *DiffReport {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tools := cfg.tools()
	rep := &DiffReport{Kernels: cfg.N}
	model := cover.NewModel(nil)

	buggyEvery := int(1 / cfg.buggyFrac())
	for i := 0; i < cfg.N; i++ {
		buggy := buggyEvery > 0 && i%buggyEvery == 0
		dec := RandomDecision(rng, buggy)
		p := Generate(dec)
		v := examine(p, tools, cfg.Seed, cfg.sweep(), &rep.Runs, model)
		if v == nil {
			continue
		}
		f := &Finding{
			Kernel:   i,
			Tool:     v.tool,
			Rule:     v.rule,
			Detail:   v.detail,
			Seed:     v.seed,
			Delays:   v.delays,
			Decision: dec,
			Shrunk:   dec,
			Prog:     p,
		}
		if !cfg.NoShrink {
			f.Shrunk = Shrink(dec, func(cand []byte) bool {
				return reproduces(Generate(cand), tools, v, cfg.Seed, cfg.sweep())
			})
			f.Prog = Generate(f.Shrunk)
		}
		rep.Findings = append(rep.Findings, f)
		if cfg.MaxFindings > 0 && len(rep.Findings) >= cfg.MaxFindings {
			break
		}
	}
	rep.Covered, rep.Total = model.CoveredCount(), model.Total()
	return rep
}

// violation is one concrete oracle-rule breach observed during examine.
type violation struct {
	tool   string
	rule   string
	detail string
	seed   int64
	delays int
}

// examine sweeps one kernel across (seed, delay) pairs, feeding every
// tool whose Spec matches the run's delay bound, and returns the first
// violation (nil if all verdicts agree with the oracle).
//
// The sweep runs on the campaign engine in buffered mode: every tool and
// the ground-truth oracle inspect the same full ECT per run, so runs
// cannot stream trace-free, but the pool still recycles the trace buffer
// across the whole grid.
func examine(p *Prog, tools []harness.Spec, baseSeed int64, sweep int, runs *int, model *cover.Model) *violation {
	delays := map[int]bool{}
	for _, spec := range tools {
		delays[spec.Delays] = true
	}
	// The (seed, delay) grid, in the sweep's canonical order.
	type point struct {
		seed int64
		d    int
	}
	var grid []point
	for s := 0; s < sweep; s++ {
		for d := 0; d <= maxDelay(delays); d++ {
			if delays[d] {
				grid = append(grid, point{seed: baseSeed + int64(s), d: d})
			}
		}
	}
	if len(grid) == 0 {
		return nil
	}

	var hit *violation
	_, err := engine.Run(context.Background(), engine.Config{
		Prog: p.Main(),
		Plan: func(i int, _ *engine.Feedback) sim.Options {
			return sim.Options{Seed: grid[i].seed, Delays: grid[i].d}
		},
		Runs:      len(grid),
		Buffered:  true,
		NeedTrace: true,
		Pool:      trace.NewPool(),
		OnRun: func(fb *engine.Feedback) (bool, error) {
			r := fb.Result
			seed, d := grid[fb.Index].seed, grid[fb.Index].d
			*runs++
			if err := CheckGroundTruth(p, r); err != nil {
				hit = &violation{
					tool: "ground-truth", rule: "wait-for-graph",
					detail: err.Error(), seed: seed, delays: d,
				}
				return true, nil
			}
			if model != nil && r.Trace != nil {
				if tree, err := gtree.Build(r.Trace); err == nil {
					model.AddRun(tree)
				}
			}
			for _, spec := range tools {
				if spec.Delays != d {
					continue
				}
				if v := checkVerdict(spec, p.Oracle, r); v != nil {
					v.seed, v.delays = seed, d
					hit = v
					return true, nil
				}
			}
			return false, nil
		},
	})
	if err != nil {
		// The grid is static and OnRun never errors; defensive only.
		panic(err)
	}
	return hit
}

func maxDelay(delays map[int]bool) int {
	m := 0
	for d := range delays {
		if d > m {
			m = d
		}
	}
	return m
}

// checkVerdict applies the per-tool oracle rules to one run. Each rule is
// a biconditional tied to what the tool's real counterpart can observe,
// so a baseline legitimately missing a bug (the paper's whole point) is
// never a finding — only a verdict that contradicts the tool's own
// observation power is.
func checkVerdict(spec harness.Spec, o Oracle, r *sim.Result) *violation {
	d := spec.Detector.Detect(r)
	name := spec.Detector.Name()
	v := func(rule, format string, args ...any) *violation {
		return &violation{
			tool: spec.Name, rule: rule,
			detail: fmt.Sprintf(format, args...) + fmt.Sprintf(" (verdict %q, outcome %s)", d.Verdict, r.Outcome),
		}
	}
	switch name {
	case "goat":
		// GoAT sees the full trace: it must flag exactly the buggy runs,
		// with the verdict class matching the runtime's classification.
		if want := r.Outcome.Buggy(); d.Found != want {
			return v("goat-found", "Found=%v, ground truth requires %v", d.Found, want)
		}
		if r.Outcome == sim.OutcomeGlobalDeadlock && d.Verdict != "GDL" {
			return v("goat-verdict", "global deadlock misclassified")
		}
		if r.Outcome == sim.OutcomeLeak && !strings.HasPrefix(d.Verdict, "PDL") {
			return v("goat-verdict", "leak misclassified")
		}
	case "builtin":
		// The runtime detector throws exactly on global deadlocks.
		if want := r.Outcome == sim.OutcomeGlobalDeadlock; d.Found != want {
			return v("builtin-found", "Found=%v, want %v", d.Found, want)
		}
	case "goleak":
		// goleak runs at main return: it flags exactly the leaks, and
		// hangs (without a verdict) when main never returns.
		if want := r.Outcome == sim.OutcomeLeak; d.Found != want {
			return v("goleak-found", "Found=%v, want %v", d.Found, want)
		}
		if r.Outcome == sim.OutcomeGlobalDeadlock && d.Verdict != "HANG" {
			return v("goleak-verdict", "blocked main must hang the end-of-main check")
		}
	case "lockdl":
		// The lock-order detector warns on every run whose trace shows the
		// planted lock-order violation (even healthy ABBA runs), on global
		// timeouts, and on nothing else.
		cycleVisible := o.Buggy && r.Trace != nil &&
			(o.Kind == BugDoubleLock || o.Kind == BugABBA)
		want := cycleVisible || r.Outcome == sim.OutcomeGlobalDeadlock
		if d.Found != want {
			return v("lockdl-found", "Found=%v, want %v (cycleVisible=%v)", d.Found, want, cycleVisible)
		}
	default:
		// Unknown tools are exercised but only ground-truth checked.
	}
	return nil
}

// reproduces reports whether a candidate decision string still triggers
// the original violation: same tool, same rule, at the original delay
// bound, under some seed of the sweep. Matching on (tool, rule) rather
// than the exact seed keeps shrinking robust for racy bugs, where
// removing structure shifts which schedules manifest.
func reproduces(p *Prog, tools []harness.Spec, orig *violation, baseSeed int64, sweep int) bool {
	for s := 0; s < sweep; s++ {
		seed := baseSeed + int64(s)
		r := sim.Run(sim.Options{Seed: seed, Delays: orig.delays}, p.Main())
		if orig.tool == "ground-truth" {
			if CheckGroundTruth(p, r) != nil {
				return true
			}
			continue
		}
		if CheckGroundTruth(p, r) != nil {
			continue // candidate broke the oracle itself: different problem
		}
		for _, spec := range tools {
			if spec.Name != orig.tool || spec.Delays != orig.delays {
				continue
			}
			if v := checkVerdict(spec, p.Oracle, r); v != nil && v.rule == orig.rule {
				return true
			}
		}
	}
	return false
}
