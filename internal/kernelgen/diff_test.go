package kernelgen

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/harness"
	"goat/internal/sim"
	"goat/internal/trace"
)

// TestCleanCampaignNoFindings: with the honest detector lineup, a
// campaign over hundreds of generated kernels must complete with zero
// findings — every detector verdict consistent with every oracle — while
// feeding the global coverage model.
func TestCleanCampaignNoFindings(t *testing.T) {
	rep := RunDiff(DiffConfig{N: 220, Seed: 11, DMax: 3})
	if len(rep.Findings) != 0 {
		t.Fatalf("clean campaign produced findings:\n%s", rep)
	}
	if rep.Runs == 0 || rep.Kernels != 220 {
		t.Fatalf("campaign did not run: %s", rep)
	}
	if rep.Covered == 0 || rep.Total == 0 {
		t.Fatalf("campaign accumulated no coverage: %s", rep)
	}
}

// lyingGoat wraps the real GoAT detector but lies about one Cause: it
// suppresses detections of communication deadlocks (leaked goroutines
// parked on channel operations), the planted misclassification the
// acceptance criteria require the differential driver to catch.
type lyingGoat struct{ inner detect.Goat }

func (l lyingGoat) Name() string { return "goat" }

func (l lyingGoat) Detect(r *sim.Result) detect.Detection {
	d := l.inner.Detect(r)
	if r.Outcome != sim.OutcomeLeak {
		return d
	}
	for _, g := range r.Leaked {
		if g.Reason != trace.BlockSend && g.Reason != trace.BlockRecv {
			return d
		}
	}
	d.Found = false
	d.Verdict = "OK"
	d.Detail = "nothing to report (lying about communication deadlocks)"
	return d
}

func lyingTools(dmax int) []harness.Spec {
	tools := harness.DiffTools(dmax)
	for i := range tools {
		if strings.HasPrefix(tools[i].Name, "goat-") {
			tools[i].Detector = lyingGoat{}
		}
	}
	return tools
}

// TestLyingDetectorCaughtAndShrunk is the acceptance test: a detector
// stubbed to lie about one Cause, a fixed-seed campaign over >= 200
// generated kernels, and the driver must find the disagreement and
// shrink it to a reproducer with at most 6 goroutines — well under 30s.
func TestLyingDetectorCaughtAndShrunk(t *testing.T) {
	start := time.Now()
	rep := RunDiff(DiffConfig{
		N:     200,
		Seed:  1,
		DMax:  2,
		Tools: lyingTools(2),
	})
	if len(rep.Findings) == 0 {
		t.Fatalf("driver missed the lying detector:\n%s", rep)
	}
	var hit *Finding
	for _, f := range rep.Findings {
		if strings.HasPrefix(f.Tool, "goat-") && f.Rule == "goat-found" {
			hit = f
			break
		}
	}
	if hit == nil {
		t.Fatalf("no goat-found finding against the lying detector:\n%s", rep)
	}
	if n := hit.Prog.NumGoroutines(); n > 6 {
		t.Errorf("shrunk reproducer has %d goroutines, want <= 6:\n%s", n, hit)
	}
	if len(hit.Shrunk) >= len(hit.Decision) && len(hit.Decision) > 4 {
		t.Errorf("shrinking made no progress: %d -> %d bytes", len(hit.Decision), len(hit.Shrunk))
	}
	if !hit.Prog.Oracle.Buggy || hit.Prog.Oracle.Cause != goker.CommunicationDeadlock {
		t.Errorf("reproducer oracle %+v, want a communication bug (the lied-about cause)", hit.Prog.Oracle)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("campaign + shrink took %v, want < 30s", elapsed)
	}
}

// TestReproducerRoundTrips: a shrunk finding must package as a goker
// kernel that registers, resolves by ID, runs, and still makes the
// honest and lying detectors disagree — the full promotion path behind
// `goat -bug <id>`.
func TestReproducerRoundTrips(t *testing.T) {
	rep := RunDiff(DiffConfig{
		N: 200, Seed: 1, DMax: 2,
		Tools:       lyingTools(2),
		MaxFindings: 1,
	})
	if len(rep.Findings) == 0 {
		t.Fatal("no finding to promote")
	}
	f := rep.Findings[0]
	k := f.ReproKernel()
	if err := goker.Register(k); err != nil {
		t.Fatalf("reproducer does not register: %v", err)
	}
	got, ok := goker.ByID(k.ID)
	if !ok || !got.Generated || got.Project != "fuzz" {
		t.Fatalf("ByID(%s) = %+v, %v", k.ID, got, ok)
	}
	// The pinned GoKer set must be unaffected by the registration.
	if n := len(goker.GoKer()); n != 68 {
		t.Fatalf("GoKer set grew to %d after registering a fuzz kernel", n)
	}
	r := goker.Run(got, sim.Options{Seed: f.Seed, Delays: f.Delays})
	honest := (detect.Goat{}).Detect(r)
	liar := lyingGoat{}.Detect(r)
	if honest.Found == liar.Found {
		t.Fatalf("registered reproducer no longer splits the detectors: honest=%+v liar=%+v (run %s)",
			honest, liar, r)
	}
}

// TestShrinkConvergesToTinyReproducer: shrinking a hand-made finding
// against the real rules must reach a near-minimal decision string.
func TestShrinkConvergesToTinyReproducer(t *testing.T) {
	tools := lyingTools(1)
	// A large random buggy kernel pinned to send-no-recv, uncounted.
	dec := forceBug(rand.New(rand.NewSource(99)), BugSendNoRecv, false)
	p := Generate(dec)
	v := examine(p, tools, 1, 2, new(int), nil)
	if v == nil {
		t.Fatal("seed kernel did not trigger the lying detector")
	}
	shrunk := Shrink(dec, func(cand []byte) bool {
		return reproduces(Generate(cand), tools, v, 1, 2)
	})
	sp := Generate(shrunk)
	if n := sp.NumGoroutines(); n > 2 {
		t.Errorf("shrunk to %d goroutines, want the 2-goroutine minimum (%s)", n, sp)
	}
	if len(shrunk) > 8 {
		t.Errorf("shrunk decision still %d bytes (%x)", len(shrunk), shrunk)
	}
}
