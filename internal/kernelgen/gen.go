package kernelgen

import (
	"fmt"
	"math/rand"
	"sort"
)

// DecisionLen is the decision-string length RandomDecision draws; long
// enough that every structural question gets a real answer for the
// largest programs the grammar admits.
const DecisionLen = 96

// decoder turns the decision string into a stream of structural answers.
// Reads past the end return zero, so truncating a decision string is the
// same as zero-filling its tail and *every* byte string — including the
// empty one — decodes to a valid program. That totality is what makes
// delta-debugging over the string sound: any chunk the shrinker removes
// still yields a runnable kernel.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) next() byte {
	if d.pos >= len(d.buf) {
		d.pos++
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

// intn answers a 0..n-1 question with one byte (always consuming it, so
// positions stay aligned regardless of the answer domain).
func (d *decoder) intn(n int) int {
	b := d.next()
	if n <= 1 {
		return 0
	}
	return int(b) % n
}

func (d *decoder) flag() bool { return d.next()&1 == 1 }

// Generate decodes a decision string into a program whose oracle is
// constructed alongside it.
//
// The safe core is a pipeline: goroutines are ranked (main produces at
// rank 0 and consumes at rank +inf; worker i has rank i), channels flow
// strictly from lower to higher rank with a single producer and a single
// consumer, consumers drain their in-channels in ascending producer
// rank before sending anything, producers send to their out-channels in
// ascending consumer rank and then close, main performs all its sends
// before its drains, spawn ops lead every op list, and lock sections are
// globally ordered, well nested and channel-free. Under those
// disciplines every goroutine terminates on every schedule, by
// induction on (rank, op position) — see the package comment.
//
// When the decision string asks for a buggy kernel, plant appends one
// bug template in dedicated goroutines and resources; main spawns them
// after the safe workers, so the safe core's guarantees are unchanged
// and exactly the planted goroutines (plus main, when they are counted)
// can block.
func Generate(dec []byte) *Prog {
	d := &decoder{buf: dec}
	p := &Prog{BugMutex: -1, NWg: 1}

	buggy := d.flag()
	kind := BugKind(d.intn(int(numBugKinds)))
	counted := d.flag()

	nWorkers := d.intn(5)
	p.NMutex = d.intn(3)
	p.NRW = d.intn(2)
	if d.flag() {
		p.NOnce = 1
	}
	p.HasCtx = d.flag()
	p.HasShared = d.flag()
	decor := -1
	if d.flag() {
		// The decor channel has no producer or consumer: it only ever sees
		// non-blocking ops, so it widens CU coverage without touching the
		// termination argument.
		p.Chans = append(p.Chans, ChanSpec{Cap: 1, Producer: -1, Consumer: -1, Decor: true})
		decor = 0
	}

	p.Gs = append(p.Gs, GDecl{Name: "main"})
	parents := make([]int, nWorkers+1)
	for w := 1; w <= nWorkers; w++ {
		p.Gs = append(p.Gs, GDecl{Name: fmt.Sprintf("w%d", w), Counted: true})
		parents[w] = d.intn(w) // spawn tree edges point strictly downward
	}

	nChans := 0
	if nWorkers > 0 {
		nChans = d.intn(2*nWorkers + 1)
	}
	for c := 0; c < nChans; c++ {
		mode := d.intn(3)
		sel := int(d.next())
		capk := int(d.next())
		style := DrainStyle(d.intn(3))
		if style == DrainSelect && !p.HasCtx {
			style = DrainLoop
		}
		spec := ChanSpec{Cap: capk % 4, K: 1 + (capk/4)%3, Style: style}
		switch {
		case mode == 0: // main -> worker
			spec.Producer = 0
			spec.Consumer = 1 + sel%nWorkers
		case mode == 1 && nWorkers >= 2: // worker -> higher-ranked worker
			lo := 1 + sel%(nWorkers-1)
			spec.Producer = lo
			spec.Consumer = lo + 1 + (sel/7)%(nWorkers-lo)
		default: // worker -> main
			spec.Producer = 1 + sel%nWorkers
			spec.Consumer = 0
		}
		p.Chans = append(p.Chans, spec)
	}

	// Decor bodies, decoded while the resource counts still describe only
	// the safe core (plant may append bug mutexes afterwards).
	bodies := make([][]Op, nWorkers+1)
	for w := 0; w <= nWorkers; w++ {
		n := d.intn(4)
		for i := 0; i < n; i++ {
			bodies[w] = append(bodies[w], p.bodySection(d, decor)...)
		}
	}

	for w := 1; w <= nWorkers; w++ {
		ops := spawnOps(parents, nWorkers, w)
		ops = append(ops, p.drainOps(w)...)
		ops = append(ops, bodies[w]...)
		ops = append(ops, p.produceOps(w)...)
		p.Gs[w].Ops = ops
	}

	var planted []int
	if buggy {
		planted = plant(p, kind, counted)
	}

	var main []Op
	if buggy && kind == BugWgForgotDone {
		// The bug waitgroup's Add must happen-before either planted Done.
		main = append(main, Op{Kind: OpWgAdd, A: 1, B: 2})
	}
	nCounted := 0
	for _, g := range p.Gs[1:] {
		if g.Counted {
			nCounted++
		}
	}
	if nCounted > 0 {
		main = append(main, Op{Kind: OpWgAdd, A: 0, B: nCounted})
	}
	main = append(main, spawnOps(parents, nWorkers, 0)...)
	for _, gi := range planted {
		main = append(main, Op{Kind: OpSpawn, A: gi})
	}
	main = append(main, p.produceOps(0)...)
	main = append(main, bodies[0]...)
	main = append(main, p.drainOps(0)...)
	main = append(main, Op{Kind: OpWgWait, A: 0})
	if p.HasCtx {
		main = append(main, Op{Kind: OpCancel})
	}
	p.Gs[0].Ops = main
	return p
}

// spawnOps returns the spawn ops for goroutine w's children in ascending
// child index.
func spawnOps(parents []int, nWorkers, w int) []Op {
	var ops []Op
	for c := 1; c <= nWorkers; c++ {
		if parents[c] == w {
			ops = append(ops, Op{Kind: OpSpawn, A: c})
		}
	}
	return ops
}

// drainOps returns goroutine w's drains in ascending producer rank
// (ties broken by channel index) — main, rank 0 as a producer, first.
func (p *Prog) drainOps(w int) []Op {
	var idx []int
	for ci, c := range p.Chans {
		if !c.Decor && !c.Bug && c.Consumer == w {
			idx = append(idx, ci)
		}
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := p.Chans[idx[i]], p.Chans[idx[j]]
		if a.Producer != b.Producer {
			return a.Producer < b.Producer
		}
		return idx[i] < idx[j]
	})
	var ops []Op
	for _, ci := range idx {
		kind := OpDrainLoop
		switch p.Chans[ci].Style {
		case DrainRange:
			kind = OpDrainRange
		case DrainSelect:
			kind = OpDrainSelect
		}
		ops = append(ops, Op{Kind: kind, A: ci})
	}
	return ops
}

// produceOps returns goroutine w's produces in ascending consumer rank
// (ties broken by channel index) — main, rank +inf as a consumer, last.
func (p *Prog) produceOps(w int) []Op {
	rank := func(consumer int) int {
		if consumer == 0 {
			return int(^uint(0) >> 1)
		}
		return consumer
	}
	var idx []int
	for ci, c := range p.Chans {
		if !c.Decor && !c.Bug && c.Producer == w {
			idx = append(idx, ci)
		}
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := p.Chans[idx[i]], p.Chans[idx[j]]
		if rank(a.Consumer) != rank(b.Consumer) {
			return rank(a.Consumer) < rank(b.Consumer)
		}
		return idx[i] < idx[j]
	})
	var ops []Op
	for _, ci := range idx {
		ops = append(ops, Op{Kind: OpProduce, A: ci})
	}
	return ops
}

// bodySection decodes one decor section: a globally ordered, well-nested,
// channel-free lock section or a non-blocking op. Every branch is total —
// when the asked-for resource does not exist the section degrades to a
// yield, so any decision string stays valid.
func (p *Prog) bodySection(d *decoder, decor int) []Op {
	kind := d.intn(8)
	arg := int(d.next())
	yield := []Op{{Kind: OpYield}}
	inner := Op{Kind: OpYield}
	if p.HasShared {
		inner = Op{Kind: OpSharedUpdate}
	}
	switch kind {
	case 0:
		if p.NMutex == 0 {
			return yield
		}
		m := arg % p.NMutex
		if arg&0x80 != 0 && m+1 < p.NMutex {
			return []Op{
				{Kind: OpLock, A: m}, {Kind: OpLock, A: m + 1},
				inner,
				{Kind: OpUnlock, A: m + 1}, {Kind: OpUnlock, A: m},
			}
		}
		return []Op{{Kind: OpLock, A: m}, inner, {Kind: OpUnlock, A: m}}
	case 1:
		if p.NRW == 0 {
			return yield
		}
		r := arg % p.NRW
		return []Op{{Kind: OpWLock, A: r}, inner, {Kind: OpWUnlock, A: r}}
	case 2:
		if p.NRW == 0 {
			return yield
		}
		r := arg % p.NRW
		return []Op{{Kind: OpRLock, A: r}, inner, {Kind: OpRUnlock, A: r}}
	case 3:
		if p.NOnce == 0 {
			return yield
		}
		return []Op{{Kind: OpOnce, A: 0}}
	case 4:
		return []Op{{Kind: OpSleep, A: 1 + arg%3}}
	case 5:
		return yield
	case 6:
		if !p.HasShared {
			return yield
		}
		switch arg % 3 {
		case 0:
			return []Op{{Kind: OpSharedLoad}}
		case 1:
			return []Op{{Kind: OpSharedStore, A: arg}}
		default:
			return []Op{{Kind: OpSharedUpdate}}
		}
	default:
		if decor < 0 {
			return yield
		}
		switch arg % 3 {
		case 0:
			return []Op{{Kind: OpTrySend, A: decor, B: arg}}
		case 1:
			return []Op{{Kind: OpTryRecv, A: decor}}
		default:
			return []Op{{Kind: OpSelectDefault, A: decor, B: decor}}
		}
	}
}

// RandomDecision draws one decision string from rng. The buggy flag is
// forced rather than sampled so a campaign can hold its safe/buggy mix
// steady across seeds.
func RandomDecision(rng *rand.Rand, buggy bool) []byte {
	dec := make([]byte, DecisionLen)
	rng.Read(dec)
	dec[0] &^= 1
	if buggy {
		dec[0] |= 1
	}
	return dec
}
