package kernelgen

import (
	"math/rand"
	"reflect"
	"testing"

	"goat/internal/sim"
)

// TestGenerateIsPureAndTotal: the decision-string mapping must be a pure
// function (same bytes, same program) and total (any bytes, including
// none, decode to a runnable program).
func TestGenerateIsPureAndTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := rng.Intn(2 * DecisionLen)
		dec := make([]byte, n)
		rng.Read(dec)
		a, b := Generate(dec), Generate(dec)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("decision string %x decoded to two different programs", dec)
		}
		r := sim.Run(sim.Options{Seed: 1, Delays: 1}, a.Main())
		if err := CheckGroundTruth(a, r); err != nil {
			t.Fatalf("garbage decision %x (prog %s): %v\n%s", dec, a, err, r)
		}
	}
	// The empty string is the ultimate shrink target.
	p := Generate(nil)
	if p.Oracle.Buggy {
		t.Fatalf("empty decision decoded to a buggy program: %s", p)
	}
	r := sim.Run(sim.Options{Seed: 1}, p.Main())
	if err := CheckGroundTruth(p, r); err != nil {
		t.Fatalf("empty decision: %v", err)
	}
}

// TestSafeKernelsAlwaysTerminate is the generator's core guarantee: the
// pipeline discipline makes safe kernels deadlock-free under every
// schedule, so a sweep over seeds and delay bounds must be all-OK.
func TestSafeKernelsAlwaysTerminate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 150; i++ {
		dec := RandomDecision(rng, false)
		p := Generate(dec)
		if p.Oracle.Buggy {
			t.Fatalf("RandomDecision(buggy=false) produced %s", p)
		}
		for _, d := range []int{0, 2, 4} {
			for seed := int64(0); seed < 3; seed++ {
				r := sim.Run(sim.Options{Seed: seed, Delays: d}, p.Main())
				if err := CheckGroundTruth(p, r); err != nil {
					t.Fatalf("safe kernel %d (decision %x) seed=%d D=%d: %v\n%s",
						i, dec, seed, d, err, r)
				}
			}
		}
	}
}

// forceBug returns a random decision string pinned to one bug template.
// The layout bytes it rewrites are the first three structural questions:
// buggy flag, bug kind, wg-counted flag.
func forceBug(rng *rand.Rand, kind BugKind, counted bool) []byte {
	dec := RandomDecision(rng, true)
	dec[1] = byte(kind)
	dec[2] = 0
	if counted {
		dec[2] = 1
	}
	return dec
}

// TestDeterministicBugsAlwaysManifest: every deterministic template must
// produce exactly the oracled symptom on every schedule, with only the
// planted goroutines (and, when counted, main) stuck.
func TestDeterministicBugsAlwaysManifest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for kind := BugKind(0); kind < numBugKinds; kind++ {
		if !kind.Deterministic() {
			continue
		}
		for _, counted := range []bool{false, true} {
			want := sim.OutcomeLeak
			if counted {
				want = sim.OutcomeGlobalDeadlock
			}
			for i := 0; i < 5; i++ {
				dec := forceBug(rng, kind, counted)
				p := Generate(dec)
				if !p.Oracle.Buggy || p.Oracle.Kind != kind || p.Oracle.WgCounted != counted {
					t.Fatalf("forceBug(%s, %v) decoded oracle %+v", kind, counted, p.Oracle)
				}
				for _, d := range []int{0, 2} {
					for seed := int64(0); seed < 3; seed++ {
						r := sim.Run(sim.Options{Seed: seed, Delays: d}, p.Main())
						if r.Outcome != want {
							t.Fatalf("%s counted=%v (decision %x) seed=%d D=%d: outcome %s, want %s\n%s",
								kind, counted, dec, seed, d, r.Outcome, want, r)
						}
						if err := CheckGroundTruth(p, r); err != nil {
							t.Fatalf("%s counted=%v seed=%d D=%d: %v", kind, counted, seed, d, err)
						}
					}
				}
			}
		}
	}
}

// TestABBAIsRacy: the one racy template must manifest under some schedule
// and stay healthy under others, and every run — healthy or wedged —
// must satisfy the ground-truth check.
func TestABBAIsRacy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dec := forceBug(rng, BugABBA, true)
	p := Generate(dec)
	healthy, wedged := 0, 0
	for _, d := range []int{0, 1, 2, 3} {
		for seed := int64(0); seed < 60; seed++ {
			r := sim.Run(sim.Options{Seed: seed, Delays: d}, p.Main())
			if err := CheckGroundTruth(p, r); err != nil {
				t.Fatalf("seed=%d D=%d: %v\n%s", seed, d, err, r)
			}
			switch r.Outcome {
			case sim.OutcomeOK:
				healthy++
			case sim.OutcomeGlobalDeadlock:
				wedged++
			}
		}
	}
	if healthy == 0 || wedged == 0 {
		t.Fatalf("ABBA kernel not racy: healthy=%d wedged=%d", healthy, wedged)
	}
}

// TestGeneratedTracesValid: generated kernels must emit structurally
// valid ECTs like any hand-written kernel.
func TestGeneratedTracesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		p := Generate(RandomDecision(rng, i%2 == 0))
		r := sim.Run(sim.Options{Seed: int64(i), Delays: 1}, p.Main())
		if r.Trace == nil {
			t.Fatal("no trace")
		}
		if err := r.Trace.Validate(); err != nil {
			t.Fatalf("kernel %d: invalid trace: %v", i, err)
		}
	}
}

// FuzzGenerated lets Go's native fuzzer search the decision space for a
// program that violates its own constructed oracle — a direct attack on
// the generator's safety argument.
func FuzzGenerated(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	f.Add([]byte{})
	f.Add(RandomDecision(rng, false))
	f.Add(RandomDecision(rng, true))
	for kind := BugKind(0); kind < numBugKinds; kind++ {
		f.Add(forceBug(rng, kind, false))
		f.Add(forceBug(rng, kind, true))
	}
	f.Fuzz(func(t *testing.T, dec []byte) {
		p := Generate(dec)
		for _, seed := range []int64{1, 42} {
			r := sim.Run(sim.Options{Seed: seed, Delays: 2}, p.Main())
			if err := CheckGroundTruth(p, r); err != nil {
				t.Fatalf("decision %x (prog %s): %v\n%s", dec, p, err, r)
			}
		}
	})
}
