package kernelgen

import (
	"math/rand"
	"testing"

	"goat/internal/detect"
	"goat/internal/sim"
)

// TestPredictNoFalsePositivesOnSafeKernels is the predictive detector's
// zero-false-alarm gate: on every passing execution of a generated
// kernel whose oracle says bug-free, the detector must report nothing.
// The GoKer-side coverage and realizability checks live in
// internal/goker's TestPredictiveSoundness; together they bound the
// detector from both sides.
func TestPredictNoFalsePositivesOnSafeKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	total := 0
	for i := 0; i < 300; i++ {
		dec := RandomDecision(rng, false)
		p := Generate(dec)
		if p.Oracle.Buggy {
			continue
		}
		for seed := int64(1); seed <= 3; seed++ {
			r := sim.Run(sim.Options{Seed: seed, MaxSteps: 50000}, p.Main())
			if r.Outcome != sim.OutcomeOK {
				continue
			}
			total++
			if d := (detect.Predictive{}).Detect(r); d.Found {
				t.Errorf("false positive on safe kernel %d (seed %d): %s | %s", i, seed, d.Verdict, d.Detail)
			}
		}
	}
	if total < 500 {
		t.Fatalf("only %d safe passing runs exercised, want a corpus of >= 500", total)
	}
	t.Logf("0 false positives across %d safe passing runs", total)
}
