// Package kernelgen is a seeded generator of random concurrent kernels
// with constructed ground truth, and the differential fuzz driver that
// turns GoAT's own analysis pipeline into its test subject.
//
// Every generated program is decoded from a plain byte string (the
// "decision string"): each byte answers one structural question — how
// many goroutines, which channels connect them, which bug to plant. The
// mapping is total (any byte string, including the empty one, decodes to
// a valid program) and pure (the same bytes always decode to the same
// program), which is what makes the generator fuzzer-friendly and lets
// disagreements auto-shrink by delta-debugging the decision string, the
// way Go's native fuzzing minimizes corpus entries.
//
// Generated programs come in two flavors, each with an oracle constructed
// alongside the program rather than discovered afterwards:
//
//   - Safe kernels terminate under *every* schedule, by construction:
//     goroutines form a pipeline ordered by rank (main produces at rank 0
//     and consumes at rank ∞), channels only flow from lower to higher
//     rank, every consumer drains its in-channels in ascending producer
//     rank before sending, every producer sends in ascending consumer
//     rank and then closes, and lock sections are globally ordered,
//     well nested and channel-free. Termination follows by induction on
//     (rank, program position).
//
//   - Buggy kernels are safe kernels plus one planted bug of a known
//     cause (resource / communication / mixed), isolated in dedicated
//     goroutines and resources so the safe part still terminates and
//     exactly the planted goroutines leak.
package kernelgen

import (
	"fmt"

	"goat/internal/conc"
	"goat/internal/goker"
	"goat/internal/sim"
)

// OpKind enumerates the interpreter's operation vocabulary.
type OpKind uint8

const (
	// OpSpawn starts worker A (its GDecl index) as a child goroutine.
	OpSpawn OpKind = iota
	// OpProduce sends channel A's K messages and closes it (unless the
	// channel is marked NoClose — the missing-close bug).
	OpProduce
	// OpDrainLoop receives from channel A until it is closed.
	OpDrainLoop
	// OpDrainRange ranges over channel A until it is closed.
	OpDrainRange
	// OpDrainSelect drains channel A via a select that also watches the
	// context's done channel.
	OpDrainSelect
	// OpSendOne performs a single send on channel A (bug building block).
	OpSendOne
	// OpRecvOne performs a single receive from channel A.
	OpRecvOne
	// OpTrySend / OpTryRecv are non-blocking channel decor.
	OpTrySend
	OpTryRecv
	// OpSelectDefault polls channels A and B with a default clause.
	OpSelectDefault
	// OpLock / OpUnlock operate on mutex A.
	OpLock
	OpUnlock
	// OpWLock / OpWUnlock / OpRLock / OpRUnlock operate on rwmutex A.
	OpWLock
	OpWUnlock
	OpRLock
	OpRUnlock
	// OpOnce runs once A with a trivial body.
	OpOnce
	// OpOnceRecv runs once B with a body that receives from channel A
	// (the once-cycle bug building block).
	OpOnceRecv
	// OpWgAdd adds B to waitgroup A; OpWgDone / OpWgWait operate on A.
	OpWgAdd
	OpWgDone
	OpWgWait
	// OpSleep sleeps A units of virtual time.
	OpSleep
	// OpYield yields the processor.
	OpYield
	// OpSharedLoad / OpSharedStore / OpSharedUpdate touch the shared cell.
	OpSharedLoad
	OpSharedStore
	OpSharedUpdate
	// OpCancel cancels the program context (main, after the join).
	OpCancel
)

// Op is one interpreted operation; A and B are operand indices or small
// payloads whose meaning depends on Kind.
type Op struct {
	Kind OpKind
	A    int
	B    int
}

// DrainStyle selects how a consumer drains one in-channel.
type DrainStyle uint8

const (
	// DrainLoop receives until the channel closes.
	DrainLoop DrainStyle = iota
	// DrainRange ranges over the channel.
	DrainRange
	// DrainSelect drains via a select that also watches the context.
	DrainSelect
)

// ChanSpec declares one channel of the generated program.
type ChanSpec struct {
	Cap      int        // buffer capacity
	K        int        // messages the producer sends
	Producer int        // GDecl index of the single producer
	Consumer int        // GDecl index of the single consumer
	Style    DrainStyle // how the consumer drains it
	NoClose  bool       // producer omits the close (missing-close bug)
	Bug      bool       // belongs to the planted bug, not the safe pipeline
	Decor    bool       // decoration channel for non-blocking ops only
}

// GDecl is one goroutine of the generated program; index 0 is main.
type GDecl struct {
	Name    string
	Counted bool // joined by main through waitgroup 0
	Ops     []Op
}

// Prog is the generated-program IR: resources, goroutines and the
// constructed oracle.
type Prog struct {
	Chans     []ChanSpec
	NMutex    int // safe mutexes, globally ordered
	NRW       int
	NWg       int // wg 0 = main's join group; wg 1 = bug waitgroup
	NOnce     int // once 0 = safe decor; a planted once-cycle gets its own
	HasCtx    bool
	HasShared bool
	Gs        []GDecl
	Oracle    Oracle

	// BugMutex / BugChans index the resources dedicated to the planted
	// bug (-1 / nil when safe) — the wait-for-graph check scopes on them.
	BugMutex int
}

// NumGoroutines returns the static goroutine count including main.
func (p *Prog) NumGoroutines() int { return len(p.Gs) }

// NumOps returns the total operation count across all goroutines.
func (p *Prog) NumOps() int {
	n := 0
	for _, g := range p.Gs {
		n += len(g.Ops)
	}
	return n
}

// String summarizes the program's shape for reports.
func (p *Prog) String() string {
	o := p.Oracle
	shape := fmt.Sprintf("%d goroutine(s), %d op(s), %d chan(s), %d mutex(es)",
		p.NumGoroutines(), p.NumOps(), len(p.Chans), p.NMutex)
	if !o.Buggy {
		return "safe kernel: " + shape
	}
	return fmt.Sprintf("buggy kernel (%s, %s, expect %s): %s", o.Kind, o.Cause, o.Expect(), shape)
}

// env holds one execution's live resources.
type env struct {
	chans  []*conc.Chan[int]
	mus    []*conc.Mutex
	rws    []*conc.RWMutex
	wgs    []*conc.WaitGroup
	onces  []*conc.Once
	ctx    *conc.Context
	cancel conc.CancelFunc
	shared *conc.Shared[int]
}

// Main returns the kernel entry point: a closure interpreting the
// program on the virtual runtime. The closure is reusable across runs —
// every invocation builds a fresh environment.
func (p *Prog) Main() func(*sim.G) {
	return func(g *sim.G) {
		e := &env{}
		for _, c := range p.Chans {
			e.chans = append(e.chans, conc.NewChan[int](g, c.Cap))
		}
		for i := 0; i < p.NMutex; i++ {
			e.mus = append(e.mus, conc.NewMutex(g))
		}
		for i := 0; i < p.NRW; i++ {
			e.rws = append(e.rws, conc.NewRWMutex(g))
		}
		for i := 0; i < p.NWg; i++ {
			e.wgs = append(e.wgs, conc.NewWaitGroup(g))
		}
		for i := 0; i < p.NOnce; i++ {
			e.onces = append(e.onces, conc.NewOnce(g))
		}
		if p.HasCtx {
			e.ctx, e.cancel = conc.WithCancel(g)
		}
		if p.HasShared {
			e.shared = conc.NewShared(g, "cell", 0)
		}
		p.run(g, e, 0)
	}
}

// run interprets goroutine gi's op list.
func (p *Prog) run(g *sim.G, e *env, gi int) {
	for _, op := range p.Gs[gi].Ops {
		p.exec(g, e, op)
	}
	if gi != 0 && p.Gs[gi].Counted {
		e.wgs[0].Done(g)
	}
}

func (p *Prog) exec(g *sim.G, e *env, op Op) {
	switch op.Kind {
	case OpSpawn:
		child := op.A
		g.Go(p.Gs[child].Name, func(c *sim.G) { p.run(c, e, child) })
	case OpProduce:
		spec := p.Chans[op.A]
		ch := e.chans[op.A]
		for i := 0; i < spec.K; i++ {
			ch.Send(g, i)
		}
		if !spec.NoClose {
			ch.Close(g)
		}
	case OpDrainLoop:
		ch := e.chans[op.A]
		for {
			if _, ok := ch.Recv(g); !ok {
				break
			}
		}
	case OpDrainRange:
		e.chans[op.A].Range(g, func(int) bool { return true })
	case OpDrainSelect:
		ch := e.chans[op.A]
		for {
			idx, _, ok := conc.Select(g, []conc.Case{
				conc.CaseRecv(ch),
				conc.CaseRecv(e.ctx.Done()),
			}, false)
			if idx != 0 || !ok {
				break
			}
		}
	case OpSendOne:
		e.chans[op.A].Send(g, op.B)
	case OpRecvOne:
		e.chans[op.A].Recv(g)
	case OpTrySend:
		e.chans[op.A].TrySend(g, op.B)
	case OpTryRecv:
		e.chans[op.A].TryRecv(g)
	case OpSelectDefault:
		conc.Select(g, []conc.Case{
			conc.CaseRecv(e.chans[op.A]),
			conc.CaseRecv(e.chans[op.B]),
		}, true)
	case OpLock:
		e.mus[op.A].Lock(g)
	case OpUnlock:
		e.mus[op.A].Unlock(g)
	case OpWLock:
		e.rws[op.A].Lock(g)
	case OpWUnlock:
		e.rws[op.A].Unlock(g)
	case OpRLock:
		e.rws[op.A].RLock(g)
	case OpRUnlock:
		e.rws[op.A].RUnlock(g)
	case OpOnce:
		e.onces[op.A].Do(g, func() {})
	case OpOnceRecv:
		ch := e.chans[op.A]
		e.onces[op.B].Do(g, func() { ch.Recv(g) })
	case OpWgAdd:
		e.wgs[op.A].Add(g, op.B)
	case OpWgDone:
		e.wgs[op.A].Done(g)
	case OpWgWait:
		e.wgs[op.A].Wait(g)
	case OpSleep:
		conc.Sleep(g, conc.Duration(op.A))
	case OpYield:
		g.Yield()
	case OpSharedLoad:
		e.shared.Load(g)
	case OpSharedStore:
		e.shared.Store(g, op.A)
	case OpSharedUpdate:
		e.shared.Update(g, func(v int) int { return v + 1 })
	case OpCancel:
		e.cancel(g)
	default:
		panic(fmt.Sprintf("kernelgen: unknown op kind %d", op.Kind))
	}
}

// Kernel packages the program as a registerable goker kernel: the bridge
// that lets a shrunk differential reproducer join the bug suite and run
// under `goat -bug <id>`.
func (p *Prog) Kernel(id string) goker.Kernel {
	o := p.Oracle
	desc := fmt.Sprintf("generated kernel (%s)", p)
	if o.Buggy {
		desc = fmt.Sprintf("generated kernel with a planted %s bug (%s cause): %s", o.Kind, o.Cause, p)
	}
	expect := "PDL"
	if o.Buggy {
		expect = o.Expect()
	}
	return goker.Kernel{
		ID:          id,
		Project:     "fuzz",
		Cause:       o.Cause,
		Expect:      expect,
		Rare:        o.Buggy && !o.Deterministic,
		Generated:   true,
		Description: desc,
		Main:        p.Main(),
	}
}
