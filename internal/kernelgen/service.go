// Service-shaped workload generation: long-running request-driven
// kernels for the slow-leak detector, as opposed to the short pipeline
// kernels Generate builds for the deadlock detectors.
//
// A service program runs a deterministic request source — a plain
// counter loop, so the same decision string and seed replay the same
// million requests — through one of three service skeletons (bounded
// handler-per-request, worker pool, fan-out/fan-in pipeline), all built
// from the same conc primitives the rest of the suite uses. The clean
// skeletons terminate under every schedule by construction. A leaky
// variant additionally strands one small goroutine group every
// LeakEvery requests, parameterized by the planted-bug templates plus
// two service-specific variants (pool exhaustion, handler abandonment),
// giving an exact census oracle: strands(R) = floor(R/LeakEvery) x
// StrandsPerPlant.
//
// Every planted group uses fresh, dedicated resources and goroutines
// named "leak-<kind>", and is shaped so the stranded goroutine's final
// park is either its first park or on a non-consuming block reason —
// which keeps it visible under the shared long-lived-worker suppression
// rule (trace.WorkerShaped) the leak detector applies.
package kernelgen

import (
	"fmt"

	"goat/internal/conc"
	"goat/internal/profile"
	"goat/internal/sim"
	"goat/internal/trace"
)

// ServiceShape selects the service skeleton.
type ServiceShape uint8

const (
	// ShapeHandler runs one goroutine per request, concurrency-bounded
	// by a semaphore channel, each handler checking a connection out of
	// a pool and back in.
	ShapeHandler ServiceShape = iota
	// ShapeWorkerPool runs a fixed pool of workers ranging over a jobs
	// channel, with a collector draining their results.
	ShapeWorkerPool
	// ShapePipeline runs requests through fan-out stages connected by
	// channels, fanned back in by main's final drain.
	ShapePipeline

	numServiceShapes
)

var serviceShapeNames = [...]string{"handler", "worker-pool", "pipeline"}

// String returns the shape name.
func (s ServiceShape) String() string {
	if int(s) < len(serviceShapeNames) {
		return serviceShapeNames[s]
	}
	return fmt.Sprintf("ServiceShape(%d)", uint8(s))
}

// LeakKind enumerates the slow-leak templates a service kernel can
// plant: the deterministic planted-bug templates re-parameterized as
// per-request strand sources, plus the two service-specific variants.
type LeakKind uint8

const (
	// LeakNone marks a clean service kernel.
	LeakNone LeakKind = iota
	// LeakDoubleLock strands one goroutine self-deadlocking a fresh mutex.
	LeakDoubleLock
	// LeakABBA strands two goroutines in a handshake-forced ABBA cycle:
	// the classic racy template made deterministic by exchanging ready
	// tokens before the crossing acquisitions, so both goroutines are
	// committed to the cycle under every schedule.
	LeakABBA
	// LeakSendNoRecv strands one goroutine sending where nobody receives.
	LeakSendNoRecv
	// LeakRecvNoSend strands one goroutine receiving where nobody sends.
	LeakRecvNoSend
	// LeakMissingClose strands one consumer draining a channel whose
	// producer (the request loop itself) forgot the close. The messages
	// are buffered before the consumer spawns, so its fatal park is its
	// first.
	LeakMissingClose
	// LeakLockedSend strands a sender holding a mutex its receiver needs.
	LeakLockedSend
	// LeakWgForgotDone strands a waiter on a waitgroup one worker of
	// which forgot its Done.
	LeakWgForgotDone
	// LeakOnceCycle strands two goroutines racing a Once whose every
	// body blocks: the winner parks inside the body, the loser parks on
	// the Once itself — two strands under every schedule.
	LeakOnceCycle
	// LeakPoolExhaust strands one goroutine checking a connection out of
	// an exhausted pool that will never be refilled.
	LeakPoolExhaust
	// LeakHandlerAbandon strands a backend call whose handler gave up
	// waiting: the callee's result send has no receiver left.
	LeakHandlerAbandon

	numLeakKinds
)

var leakKindNames = [...]string{
	"none", "double-lock", "abba", "send-no-recv", "recv-no-send",
	"missing-close", "locked-send", "wg-forgot-done", "once-cycle",
	"pool-exhaust", "handler-abandon",
}

// String returns the template name.
func (k LeakKind) String() string {
	if int(k) < len(leakKindNames) {
		return leakKindNames[k]
	}
	return fmt.Sprintf("LeakKind(%d)", uint8(k))
}

// Strands returns how many goroutines one planted occurrence of the
// template leaves stranded — the per-plant multiplier of the census
// oracle.
func (k LeakKind) Strands() int {
	switch k {
	case LeakNone:
		return 0
	case LeakABBA, LeakLockedSend, LeakOnceCycle:
		return 2
	default:
		return 1
	}
}

// ServiceProg describes one service kernel. The zero value is not
// meaningful; build one with GenerateService and adjust Requests /
// LeakEvery before Main if a campaign needs a different scale — the
// oracle methods recompute from the current fields.
type ServiceProg struct {
	Shape    ServiceShape
	Requests int // requests the deterministic source issues
	Workers  int // handler concurrency bound / pool width / stage fan-out
	Pool     int // connection-pool size (ShapeHandler)
	Stages   int // pipeline stages (ShapePipeline)
	ChanCap  int // buffering of the service channels

	LeakKind  LeakKind
	LeakEvery int // plant one leak group per LeakEvery requests (0 = never)

	// Timeline emits one req:start/req:done EvUserLog marker pair per
	// request (Aux carries the request id), the input of the profiling
	// plane's latency percentiles (profile.LatencySink). Off by default:
	// markers add events, which would shift every determinism golden.
	Timeline bool
}

// GenerateService decodes a decision string into a service kernel. Like
// Generate, the mapping is total and pure: every byte string decodes to
// a valid program, reads past the end answer zero. The default request
// count is kept small enough for fuzzing; soak campaigns override
// Requests (and LeakEvery) on the returned program.
func GenerateService(dec []byte) *ServiceProg {
	d := &decoder{buf: dec}
	p := &ServiceProg{
		Shape:    ServiceShape(d.intn(int(numServiceShapes))),
		Workers:  1 + d.intn(4),
		Pool:     1 + d.intn(3),
		Stages:   2 + d.intn(2),
		ChanCap:  d.intn(3),
		Requests: 32 + 8*d.intn(25), // 32..224
	}
	if d.flag() {
		p.LeakKind = LeakKind(1 + d.intn(int(numLeakKinds)-1))
		p.LeakEvery = 8 << d.intn(3) // 8, 16 or 32
	}
	return p
}

// Clean returns the leak-free twin: the identical service skeleton with
// no planted template.
func (p *ServiceProg) Clean() *ServiceProg {
	q := *p
	q.LeakKind = LeakNone
	q.LeakEvery = 0
	return &q
}

// Plants returns how many leak groups the request source plants.
func (p *ServiceProg) Plants() int {
	if p.LeakKind == LeakNone || p.LeakEvery <= 0 {
		return 0
	}
	return p.Requests / p.LeakEvery
}

// ExpectStrands is the exact census oracle: the number of goroutines
// guaranteed to be stranded once the run settles, as a function of the
// request count.
func (p *ServiceProg) ExpectStrands() int { return p.Plants() * p.LeakKind.Strands() }

// MinSteps returns a step budget generous enough for the whole service
// to run to completion (sim.Options.MaxSteps).
func (p *ServiceProg) MinSteps() int {
	return 4096 + 48*p.Requests + 64*p.Plants()
}

// String summarizes the kernel.
func (p *ServiceProg) String() string {
	base := fmt.Sprintf("%s service, %d requests, %d workers", p.Shape, p.Requests, p.Workers)
	if p.LeakKind == LeakNone {
		return "clean " + base
	}
	return fmt.Sprintf("leaky %s: %s every %d requests (expect %d strands)",
		base, p.LeakKind, p.LeakEvery, p.ExpectStrands())
}

// Check validates a settled execution against the oracle: exactly the
// planted goroutines leak, every one carrying the "leak-" name prefix.
func (p *ServiceProg) Check(r *sim.Result) error {
	if r.Outcome != sim.OutcomeOK && r.Outcome != sim.OutcomeLeak {
		return fmt.Errorf("service run ended %v, want a settled run", r.Outcome)
	}
	planted := 0
	for _, gi := range r.Leaked {
		if len(gi.Name) >= 5 && gi.Name[:5] == "leak-" {
			planted++
			continue
		}
		return fmt.Errorf("unplanted goroutine leaked: g%d %q blocked on %v", gi.ID, gi.Name, gi.Reason)
	}
	if want := p.ExpectStrands(); planted != want {
		return fmt.Errorf("planted strands = %d, oracle says %d", planted, want)
	}
	return nil
}

// Main returns the kernel entry point. The closure is reusable across
// runs; every invocation builds fresh resources.
func (p *ServiceProg) Main() func(*sim.G) {
	switch p.Shape {
	case ShapeWorkerPool:
		return p.workerPoolMain
	case ShapePipeline:
		return p.pipelineMain
	default:
		return p.handlerMain
	}
}

// mark emits one request-timeline marker when timelines are on. The
// marker travels the ordinary sink path, so latency derivation works
// under NoTrace campaigns exactly like the leak detector does.
func (p *ServiceProg) mark(g *sim.G, marker string, r int) {
	if !p.Timeline {
		return
	}
	g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvUserLog, Str: marker, Aux: int64(r)})
}

// maybePlant strands one leak group when request r is a planting point.
func (p *ServiceProg) maybePlant(g *sim.G, r int) {
	if p.LeakKind == LeakNone || p.LeakEvery <= 0 || r%p.LeakEvery != p.LeakEvery-1 {
		return
	}
	plantServiceLeak(g, p.LeakKind, p.Pool)
}

// handlerMain: bounded handler-per-request with a connection pool.
func (p *ServiceProg) handlerMain(g *sim.G) {
	sem := conc.NewChan[int](g, p.Workers)
	conns := conc.NewChan[int](g, p.Pool)
	for i := 0; i < p.Pool; i++ {
		conns.Send(g, i)
	}
	wg := conc.NewWaitGroup(g)
	for r := 0; r < p.Requests; r++ {
		p.mark(g, profile.ReqStartMarker, r) // arrival: latency includes queueing
		sem.Send(g, 1)                       // acquire a concurrency slot; parks when saturated
		wg.Add(g, 1)
		g.Go("svc.handler", func(h *sim.G) {
			c, _ := conns.Recv(h) // checkout
			h.Yield()             // the request's work
			conns.Send(h, c)      // checkin
			sem.Recv(h)           // release the slot
			p.mark(h, profile.ReqDoneMarker, r)
			wg.Done(h)
		})
		p.maybePlant(g, r)
	}
	wg.Wait(g)
}

// workerPoolMain: a fixed worker pool over a jobs channel with a
// result collector.
func (p *ServiceProg) workerPoolMain(g *sim.G) {
	jobs := conc.NewChan[int](g, p.ChanCap)
	results := conc.NewChan[int](g, p.ChanCap)
	wg := conc.NewWaitGroup(g)
	wg.Add(g, p.Workers)
	for w := 0; w < p.Workers; w++ {
		g.Go("svc.worker", func(c *sim.G) {
			jobs.Range(c, func(j int) bool {
				results.Send(c, j)
				p.mark(c, profile.ReqDoneMarker, j) // done once the result is delivered
				return true
			})
			wg.Done(c)
		})
	}
	collected := conc.NewChan[int](g, 0)
	g.Go("svc.collector", func(c *sim.G) {
		n := 0
		results.Range(c, func(int) bool { n++; return true })
		collected.Send(c, n)
	})
	for r := 0; r < p.Requests; r++ {
		p.mark(g, profile.ReqStartMarker, r)
		jobs.Send(g, r)
		p.maybePlant(g, r)
	}
	jobs.Close(g)
	wg.Wait(g)       // all workers drained
	results.Close(g) // lets the collector finish
	collected.Recv(g)
}

// pipelineMain: fan-out stages connected by channels, fanned back in
// by main's drain; stage k+1's channel closes when stage k's fan-out
// finishes.
func (p *ServiceProg) pipelineMain(g *sim.G) {
	chans := make([]*conc.Chan[int], p.Stages+1)
	for i := range chans {
		chans[i] = conc.NewChan[int](g, p.ChanCap)
	}
	for s := 0; s < p.Stages; s++ {
		in, out := chans[s], chans[s+1]
		wg := conc.NewWaitGroup(g)
		wg.Add(g, p.Workers)
		for w := 0; w < p.Workers; w++ {
			g.Go("svc.stage", func(c *sim.G) {
				in.Range(c, func(v int) bool {
					out.Send(c, v+1)
					return true
				})
				wg.Done(c)
			})
		}
		g.Go("svc.closer", func(c *sim.G) {
			wg.Wait(c)
			out.Close(c)
		})
	}
	// Main drains the final stage while a source goroutine feeds the
	// first: feeding and draining from the same goroutine deadlocks the
	// moment the bounded stages back up.
	g.Go("svc.source", func(c *sim.G) {
		for r := 0; r < p.Requests; r++ {
			p.mark(c, profile.ReqStartMarker, r)
			chans[0].Send(c, r)
			p.maybePlant(c, r)
		}
		chans[0].Close(c)
	})
	// Each stage increments the value, so the drained value v belongs to
	// request v-Stages.
	chans[p.Stages].Range(g, func(v int) bool {
		p.mark(g, profile.ReqDoneMarker, v-p.Stages)
		return true
	})
}

// plantServiceLeak strands one leak group: fresh dedicated resources,
// goroutines named "leak-<kind>", and a final park that the worker
// suppression rule cannot hide (a first park, or a non-consuming block
// reason). Exactly LeakKind.Strands() goroutines never terminate; main
// never blocks here.
func plantServiceLeak(g *sim.G, kind LeakKind, pool int) {
	switch kind {
	case LeakDoubleLock:
		m := conc.NewMutex(g)
		g.Go("leak-double-lock", func(c *sim.G) {
			m.Lock(c)
			m.Lock(c) // BUG: self-deadlock
		})
	case LeakABBA:
		a, b := conc.NewMutex(g), conc.NewMutex(g)
		r1, r2 := conc.NewChan[int](g, 1), conc.NewChan[int](g, 1)
		g.Go("leak-abba", func(c *sim.G) {
			a.Lock(c)
			r1.Send(c, 1) // buffered: never parks
			r2.Recv(c)    // wait until the peer holds b
			b.Lock(c)     // BUG: cycle closed
		})
		g.Go("leak-abba", func(c *sim.G) {
			b.Lock(c)
			r2.Send(c, 1)
			r1.Recv(c)
			a.Lock(c)
		})
	case LeakSendNoRecv:
		ch := conc.NewChan[int](g, 0)
		g.Go("leak-send-no-recv", func(c *sim.G) {
			ch.Send(c, 1) // BUG: no receiver exists
		})
	case LeakRecvNoSend:
		ch := conc.NewChan[int](g, 0)
		g.Go("leak-recv-no-send", func(c *sim.G) {
			ch.Recv(c) // BUG: no sender exists
		})
	case LeakMissingClose:
		ch := conc.NewChan[int](g, 2)
		ch.Send(g, 1) // buffered before the consumer spawns:
		ch.Send(g, 2) // its fatal park is its first park
		g.Go("leak-missing-close", func(c *sim.G) {
			for { // BUG: the producer never closes
				if _, ok := ch.Recv(c); !ok {
					return
				}
			}
		})
	case LeakLockedSend:
		m := conc.NewMutex(g)
		ch := conc.NewChan[int](g, 0)
		g.Go("leak-locked-send", func(c *sim.G) {
			m.Lock(c)
			ch.Send(c, 1) // BUG: receiver needs m first
			m.Unlock(c)
		})
		g.Go("leak-locked-send", func(c *sim.G) {
			m.Lock(c)
			ch.Recv(c)
			m.Unlock(c)
		})
	case LeakWgForgotDone:
		wg := conc.NewWaitGroup(g)
		wg.Add(g, 2)
		g.Go("leak-wg-done", func(c *sim.G) {
			wg.Done(c) // the other Done never happens
		})
		g.Go("leak-wg-wait", func(c *sim.G) {
			wg.Wait(c) // BUG: parks forever on the missing Done
		})
	case LeakOnceCycle:
		o := conc.NewOnce(g)
		c1, c2 := conc.NewChan[int](g, 0), conc.NewChan[int](g, 0)
		g.Go("leak-once-cycle", func(c *sim.G) {
			o.Do(c, func() { c1.Recv(c) }) // winner parks in the body,
		})
		g.Go("leak-once-cycle", func(c *sim.G) {
			o.Do(c, func() { c2.Recv(c) }) // loser parks on the Once
		})
	case LeakPoolExhaust:
		drained := conc.NewChan[int](g, pool) // a pool nobody refills
		g.Go("leak-pool-exhaust", func(c *sim.G) {
			drained.Recv(c) // BUG: checkout from an exhausted pool
		})
	case LeakHandlerAbandon:
		result := conc.NewChan[int](g, 0)
		g.Go("leak-handler-abandon", func(c *sim.G) {
			c.Yield()         // the backend call
			result.Send(c, 1) // BUG: the handler stopped waiting
		})
		g.Go("svc.abandoner", func(c *sim.G) {
			c.Yield() // deadline expires; returns without receiving
		})
	}
}
