package kernelgen

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"goat/internal/detect"
	"goat/internal/profile"
	"goat/internal/sim"
	"goat/internal/trace"
)

// runService executes a service kernel with a generous budget.
func runService(p *ServiceProg, seed int64, sinks ...trace.Sink) *sim.Result {
	return sim.Run(sim.Options{
		Seed:     seed,
		MaxSteps: p.MinSteps(),
		Sinks:    sinks,
	}, p.Main())
}

// TestGenerateServiceIsPureAndTotal mirrors the pipeline generator's
// contract: any byte string decodes deterministically to a runnable
// service kernel whose settled state matches its oracle.
func TestGenerateServiceIsPureAndTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		dec := make([]byte, rng.Intn(24))
		rng.Read(dec)
		a, b := GenerateService(dec), GenerateService(dec)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("decision %x decoded to two different services", dec)
		}
		a.Requests = 48 // keep the sweep fast; the oracle recomputes
		r := runService(a, int64(i))
		if err := a.Check(r); err != nil {
			t.Fatalf("service %s (decision %x): %v\n%s", a, dec, err, r)
		}
	}
	if p := GenerateService(nil); p.LeakKind != LeakNone {
		t.Fatalf("empty decision decoded to a leaky service: %s", p)
	}
}

// TestServiceCleanTerminates: every shape's clean kernel settles OK on
// every schedule probed, with nothing leaked.
func TestServiceCleanTerminates(t *testing.T) {
	for shape := ServiceShape(0); shape < numServiceShapes; shape++ {
		p := &ServiceProg{Shape: shape, Requests: 64, Workers: 3, Pool: 2, Stages: 3, ChanCap: 1}
		for seed := int64(0); seed < 4; seed++ {
			r := runService(p, seed)
			if r.Outcome != sim.OutcomeOK || len(r.Leaked) != 0 {
				t.Fatalf("%s seed=%d: outcome %v, %d leaked\n%s", p, seed, r.Outcome, len(r.Leaked), r)
			}
		}
	}
}

// TestServiceLeakOracle runs every leak template through every shape
// and demands the settled census match the oracle exactly — the
// "expected leaked-goroutine census as a function of request count"
// contract.
func TestServiceLeakOracle(t *testing.T) {
	for kind := LeakDoubleLock; kind < numLeakKinds; kind++ {
		for shape := ServiceShape(0); shape < numServiceShapes; shape++ {
			p := &ServiceProg{
				Shape: shape, Requests: 64, Workers: 2, Pool: 2, Stages: 2, ChanCap: 1,
				LeakKind: kind, LeakEvery: 16,
			}
			if want := 4 * kind.Strands(); p.ExpectStrands() != want {
				t.Fatalf("%s: ExpectStrands = %d, want %d", p, p.ExpectStrands(), want)
			}
			for seed := int64(0); seed < 3; seed++ {
				r := runService(p, seed)
				if err := p.Check(r); err != nil {
					t.Fatalf("%s seed=%d: %v\n%s", p, seed, err, r)
				}
			}
		}
	}
}

// TestServiceGoldenLeakDetection is the end-to-end golden: a service
// stranding one goroutine per thousand requests must raise LEAK-n
// carrying the planted template's provenance signature, while the
// clean twin and a sweep of safe generated services stay silent.
func TestServiceGoldenLeakDetection(t *testing.T) {
	leaky := &ServiceProg{
		Shape: ShapeWorkerPool, Requests: 8000, Workers: 3, Pool: 2, Stages: 2, ChanCap: 2,
		LeakKind: LeakSendNoRecv, LeakEvery: 1000,
	}
	det := detect.Leak{Window: 1024}
	s := det.NewStream().(*detect.LeakStream)
	r := runService(leaky, 1, s)
	if err := leaky.Check(r); err != nil {
		t.Fatalf("oracle: %v\n%s", err, r)
	}
	d := s.Finish(r)
	if !d.Found || !strings.HasPrefix(d.Verdict, "LEAK-") {
		t.Fatalf("leaky service verdict = %q (found=%v), want LEAK-n\ndetail: %s", d.Verdict, d.Found, d.Detail)
	}
	if !strings.Contains(d.Detail, "leak-send-no-recv") {
		t.Errorf("detail does not name the planted template:\n%s", d.Detail)
	}
	strands := s.FinalStrands()
	found := false
	for _, sc := range strands {
		if sc.Sig.Name == "leak-send-no-recv" {
			found = true
			if sc.N != leaky.ExpectStrands() {
				t.Errorf("final census for planted signature = %d, want %d", sc.N, leaky.ExpectStrands())
			}
			if sc.Sig.Reason != trace.BlockSend {
				t.Errorf("planted signature reason = %v, want chan-send", sc.Sig.Reason)
			}
		}
	}
	if !found {
		t.Errorf("planted signature missing from final census: %v", strands)
	}

	// The clean twin through the same detector: silence.
	clean := leaky.Clean()
	cs := det.NewStream().(*detect.LeakStream)
	cr := runService(clean, 1, cs)
	if cd := cs.Finish(cr); cd.Found || cd.Verdict != "OK" {
		t.Fatalf("clean twin verdict = %q (found=%v), want OK\ndetail: %s", cd.Verdict, cd.Found, cd.Detail)
	}

	// 200 safe generated services: zero false positives.
	rng := rand.New(rand.NewSource(3))
	small := detect.Leak{Window: 256}
	for i := 0; i < 200; i++ {
		dec := make([]byte, DecisionLen)
		rng.Read(dec)
		p := GenerateService(dec).Clean()
		p.Requests = 64
		ss := small.NewStream().(*detect.LeakStream)
		rr := runService(p, int64(i), ss)
		if err := p.Check(rr); err != nil {
			t.Fatalf("safe service %d (%s): %v", i, p, err)
		}
		if dd := ss.Finish(rr); dd.Found {
			t.Fatalf("safe service %d (%s): false positive %q\ndetail: %s", i, p, dd.Verdict, dd.Detail)
		}
	}
}

// FuzzServiceKernelGen: every decision string must decode to a service
// kernel that builds, runs deterministically, and satisfies its census
// oracle — the service-generator counterpart of FuzzKernelGen.
func FuzzServiceKernelGen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("service"))
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 4; i++ {
		dec := make([]byte, 12)
		rng.Read(dec)
		f.Add(dec)
	}
	f.Fuzz(func(t *testing.T, dec []byte) {
		p := GenerateService(dec)
		if !reflect.DeepEqual(p, GenerateService(dec)) {
			t.Fatal("GenerateService is not pure")
		}
		p.Requests = 32 // fuzz-sized; the oracle recomputes
		ect1, ect2 := trace.New(0), trace.New(0)
		r1 := sim.Run(sim.Options{Seed: 5, MaxSteps: p.MinSteps(), ECT: ect1}, p.Main())
		sim.Run(sim.Options{Seed: 5, MaxSteps: p.MinSteps(), ECT: ect2}, p.Main())
		if err := p.Check(r1); err != nil {
			t.Fatalf("oracle (%s): %v\n%s", p, err, r1)
		}
		var b1, b2 bytes.Buffer
		if err := ect1.Encode(&b1); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if err := ect2.Encode(&b2); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("service kernel %s is not deterministic: same seed, different ECT", p)
		}
	})
}

// TestServiceTimelineLatency pins the request-timeline contract on all
// three shapes: with Timeline on, every request emits exactly one
// start/done marker pair, the latency sink closes every request, and
// the exact percentiles are ordered; with Timeline off (the default)
// no marker reaches the sink path, so determinism goldens are safe.
func TestServiceTimelineLatency(t *testing.T) {
	for shape := ServiceShape(0); shape < numServiceShapes; shape++ {
		p := &ServiceProg{
			Shape: shape, Requests: 40, Workers: 3, Pool: 2, Stages: 2, ChanCap: 2,
			Timeline: true,
		}
		lat := profile.NewLatencySink()
		r := runService(p, 7, lat)
		if r.Outcome != sim.OutcomeOK {
			t.Fatalf("%s: outcome %v", shape, r.Outcome)
		}
		if lat.Count() != p.Requests || lat.Open() != 0 {
			t.Fatalf("%s: %d/%d requests closed, %d in flight",
				shape, lat.Count(), p.Requests, lat.Open())
		}
		p50, p95, p99 := lat.Percentiles()
		if p50 <= 0 || p95 < p50 || p99 < p95 {
			t.Errorf("%s: percentiles %d/%d/%d not ordered", shape, p50, p95, p99)
		}

		// The markers also land in the ECT itself when tracing is on.
		markers := 0
		for _, e := range r.Trace.Events {
			if e.Type == trace.EvUserLog &&
				(e.Str == profile.ReqStartMarker || e.Str == profile.ReqDoneMarker) {
				markers++
			}
		}
		if markers != 2*p.Requests {
			t.Errorf("%s: %d markers in the ECT, want %d", shape, markers, 2*p.Requests)
		}

		off := *p
		off.Timeline = false
		latOff := profile.NewLatencySink()
		if runService(&off, 7, latOff); latOff.Count() != 0 {
			t.Errorf("%s: Timeline=false still emitted %d requests", shape, latOff.Count())
		}
	}
}
