// Service-mode campaigns: differential sweeps and soaks over generated
// service kernels, cross-checking the windowed leak detector against
// the planted per-template oracle. This is the service-shaped
// counterpart of RunDiff — same contract (a Finding per disagreement,
// exit-code-friendly report), different workload and detector.
package kernelgen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"goat/internal/detect"
	"goat/internal/profile"
	"goat/internal/sim"
	"goat/internal/trace"
)

// ServiceConfig configures a service differential campaign.
type ServiceConfig struct {
	N         int     // kernels to generate
	Seed      int64   // campaign seed
	LeakyFrac float64 // fraction with a planted slow leak
	Requests  int     // per-kernel request count override (0 = generated)
	Window    int     // leak-detector census window (0 = default)
}

// ServiceFinding is one oracle/detector disagreement in a service
// campaign.
type ServiceFinding struct {
	Prog     *ServiceProg
	Decision []byte
	Seed     int64
	Verdict  string
	Detail   string
}

func (f *ServiceFinding) String() string {
	return fmt.Sprintf("%s seed=%d decision=%x: %s\n  %s",
		f.Prog, f.Seed, f.Decision, f.Verdict, f.Detail)
}

// ServiceReport summarizes a service campaign.
type ServiceReport struct {
	Kernels  int
	Leaky    int
	Requests int64 // total simulated requests
	Elapsed  time.Duration
	Findings []*ServiceFinding
}

func (r *ServiceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "service campaign: %d kernels (%d leaky), %d requests in %v (%.0f runs/s)\n",
		r.Kernels, r.Leaky, r.Requests, r.Elapsed.Round(time.Millisecond),
		float64(r.Kernels)/r.Elapsed.Seconds())
	if len(r.Findings) == 0 {
		b.WriteString("no disagreements")
	} else {
		fmt.Fprintf(&b, "%d disagreement(s):", len(r.Findings))
		for _, f := range r.Findings {
			b.WriteString("\n  " + f.String())
		}
	}
	return b.String()
}

// RunService runs the differential service campaign: generate N service
// kernels (a LeakyFrac slice with planted slow leaks), run each through
// the windowed leak detector on the sink path, and cross-check the
// verdict against the per-template oracle: every planted leak must be
// reported, every clean kernel must stay silent, and the settled census
// must match ExpectStrands exactly.
func RunService(cfg ServiceConfig) *ServiceReport {
	rep := &ServiceReport{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	det := detect.Leak{Window: cfg.Window}
	start := time.Now()
	for i := 0; i < cfg.N; i++ {
		dec := make([]byte, DecisionLen)
		rng.Read(dec)
		p := GenerateService(dec)
		if rng.Float64() >= cfg.LeakyFrac {
			p = p.Clean()
		}
		if cfg.Requests > 0 {
			p.Requests = cfg.Requests
		}
		if p.LeakKind != LeakNone {
			rep.Leaky++
		}
		rep.Kernels++
		rep.Requests += int64(p.Requests)

		seed := rng.Int63()
		s := det.NewStream().(*detect.LeakStream)
		r := sim.Run(sim.Options{
			Seed: seed, MaxSteps: p.MinSteps(), NoTrace: true,
			Sinks: []trace.Sink{s},
		}, p.Main())
		fail := func(verdict, detail string) {
			rep.Findings = append(rep.Findings, &ServiceFinding{
				Prog: p, Decision: dec, Seed: seed, Verdict: verdict, Detail: detail,
			})
		}
		if err := p.Check(r); err != nil {
			fail("ORACLE", err.Error())
			continue
		}
		d := s.Finish(r)
		switch {
		case p.LeakKind == LeakNone && d.Found:
			fail("FALSE-POSITIVE", fmt.Sprintf("clean service flagged %s: %s", d.Verdict, d.Detail))
		case p.LeakKind != LeakNone && !d.Found:
			fail("MISSED-LEAK", fmt.Sprintf("%d planted strand(s) not reported: %s", p.ExpectStrands(), d.Detail))
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// SoakReport is the outcome of one leaky/clean soak pair.
type SoakReport struct {
	Requests     int
	LeakyVerdict detect.Detection
	CleanVerdict detect.Detection
	LeakyRun     *sim.Result
	CleanRun     *sim.Result
	LeakyRing    *trace.RingSink // last events of the leaky run, for forensics
	CleanRing    *trace.RingSink
	// Per-request latency digests from the request-timeline markers
	// (exact p50/p95/p99 in logical events): the soak's service-level
	// health signal next to the leak verdicts.
	LeakyLatency *profile.LatencySink
	CleanLatency *profile.LatencySink
	Elapsed      time.Duration
}

// OK reports whether the soak behaved: the leaky service raised a
// windowed LEAK verdict naming a planted template and the clean twin
// stayed silent.
func (s *SoakReport) OK() error {
	if !s.LeakyVerdict.Found || !strings.HasPrefix(s.LeakyVerdict.Verdict, "LEAK-") {
		return fmt.Errorf("leaky soak verdict %q (want LEAK-n): %s",
			s.LeakyVerdict.Verdict, s.LeakyVerdict.Detail)
	}
	if !strings.Contains(s.LeakyVerdict.Detail, "leak-") {
		return fmt.Errorf("leaky soak verdict lacks planted provenance: %s", s.LeakyVerdict.Detail)
	}
	if s.CleanVerdict.Found {
		return fmt.Errorf("clean soak flagged %q: %s", s.CleanVerdict.Verdict, s.CleanVerdict.Detail)
	}
	return nil
}

// RunServiceSoak runs the service soak pair: a worker-pool service
// stranding one goroutine per thousand requests and its clean twin,
// both at the given request count with tracing off and the leak
// detector plus a flight-recorder ring on the sink path. At 100k
// requests the leaky run crosses ~100 planting points — far beyond the
// census trend threshold — while the clean twin must stay at a flat
// baseline for the whole soak.
func RunServiceSoak(requests int, seed int64) *SoakReport {
	leaky := &ServiceProg{
		Shape: ShapeWorkerPool, Requests: requests, Workers: 4, Pool: 2, Stages: 2, ChanCap: 4,
		LeakKind: LeakSendNoRecv, LeakEvery: 1000,
		Timeline: true, // per-request latency rides the same sink path
	}
	rep := &SoakReport{Requests: requests}
	start := time.Now()
	run := func(p *ServiceProg) (detect.Detection, *sim.Result, *trace.RingSink, *profile.LatencySink) {
		s := detect.Leak{}.NewStream().(*detect.LeakStream)
		ring := trace.NewRingSink(4096)
		lat := profile.NewLatencySink()
		r := sim.Run(sim.Options{
			Seed: seed, MaxSteps: p.MinSteps(), NoTrace: true,
			Sinks: []trace.Sink{s, ring, lat},
		}, p.Main())
		return s.Finish(r), r, ring, lat
	}
	rep.LeakyVerdict, rep.LeakyRun, rep.LeakyRing, rep.LeakyLatency = run(leaky)
	rep.CleanVerdict, rep.CleanRun, rep.CleanRing, rep.CleanLatency = run(leaky.Clean())
	rep.Elapsed = time.Since(start)
	return rep
}
