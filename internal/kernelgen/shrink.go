package kernelgen

// shrinkProbeBudget caps how many candidate evaluations one Shrink call
// may spend; each probe is a handful of sub-millisecond virtual-runtime
// executions, so the budget keeps worst-case shrinking well under the
// 30-second acceptance bound while being far more than typical findings
// need.
const shrinkProbeBudget = 2000

// Shrink minimizes a decision string by delta debugging: it returns the
// smallest string it can find for which bad still holds, the way Go's
// native fuzzer minimizes corpus entries. Because the decoder is total
// and reads past the end as zeros, every transformation below — chunk
// removal, truncation, byte zeroing — yields a valid program, so bad is
// the only oracle the shrinker needs.
func Shrink(dec []byte, bad func([]byte) bool) []byte {
	probes := 0
	check := func(cand []byte) bool {
		if probes >= shrinkProbeBudget {
			return false
		}
		probes++
		return bad(cand)
	}

	cur := stripZeros(append([]byte(nil), dec...))
	if !check(cur) {
		// The finding does not reproduce on its own decision string
		// (flaky beyond the sweep): report it unshrunk.
		return append([]byte(nil), dec...)
	}

	for improved := true; improved && probes < shrinkProbeBudget; {
		improved = false

		// Truncation: cut exponentially shrinking tails. With a zero-fill
		// decoder this is the highest-leverage move — it deletes whole
		// trailing subtrees of decisions at once.
		for n := len(cur) / 2; n >= 1; n /= 2 {
			for len(cur) >= n {
				cand := cur[:len(cur)-n]
				if !check(cand) {
					break
				}
				cur = cand
				improved = true
			}
		}

		// ddmin: remove interior chunks, halving the granularity.
		for size := len(cur) / 2; size >= 1; size /= 2 {
			for start := 0; start+size <= len(cur); {
				cand := make([]byte, 0, len(cur)-size)
				cand = append(cand, cur[:start]...)
				cand = append(cand, cur[start+size:]...)
				if check(cand) {
					cur = cand
					improved = true
				} else {
					start += size
				}
			}
		}

		// Zeroing: drive every byte toward the decoder's smallest answer.
		for i := 0; i < len(cur); i++ {
			if cur[i] == 0 {
				continue
			}
			cand := append([]byte(nil), cur...)
			cand[i] = 0
			if check(cand) {
				cur = cand
				improved = true
			}
		}

		cur = stripZeros(cur)
	}
	return cur
}

// stripZeros drops a trailing run of zero bytes — decode-equivalent by
// the decoder's past-the-end semantics, so no probe is needed.
func stripZeros(dec []byte) []byte {
	for len(dec) > 0 && dec[len(dec)-1] == 0 {
		dec = dec[:len(dec)-1]
	}
	return dec
}
