package kernelgen

import (
	"fmt"
	"strings"

	"goat/internal/sim"
	"goat/internal/trace"
)

// CheckGroundTruth validates one execution of a generated program against
// its constructed oracle, independently of every detector under test.
// It is the differential driver's second source of truth: the oracle says
// what the program must do, this check says the virtual runtime actually
// did it — outcome class, which goroutines ended blocked, their block
// reasons, and (for lock bugs) a wait-for-graph reconstruction from the
// trace showing the blocked goroutines really form a circular wait.
func CheckGroundTruth(p *Prog, r *sim.Result) error {
	o := p.Oracle
	// Generated programs never crash and never livelock: every loop is
	// bounded, so an execution either terminates or reaches a stable
	// blocked state.
	if r.Outcome == sim.OutcomeCrash {
		return fmt.Errorf("generated kernel crashed: %v", r.PanicVal)
	}
	if r.Outcome == sim.OutcomeTimeout {
		return fmt.Errorf("generated kernel exhausted the step budget (livelock?)")
	}

	if !o.Buggy {
		if r.Outcome != sim.OutcomeOK {
			return fmt.Errorf("safe kernel finished %s: %s", r.Outcome, r)
		}
		return checkAllDone(r)
	}

	want := sim.OutcomeLeak
	if o.WgCounted {
		want = sim.OutcomeGlobalDeadlock
	}
	switch r.Outcome {
	case want:
		return p.checkBlockedShape(r)
	case sim.OutcomeOK:
		if o.Deterministic {
			return fmt.Errorf("deterministic %s bug did not manifest (outcome OK)", o.Kind)
		}
		return checkAllDone(r) // racy bug, healthy schedule
	default:
		return fmt.Errorf("%s bug manifested as %s, oracle expects %s", o.Kind, r.Outcome, want)
	}
}

// checkAllDone verifies a healthy run left nothing behind.
func checkAllDone(r *sim.Result) error {
	if len(r.Leaked) > 0 {
		return fmt.Errorf("OK outcome with %d leaked goroutine(s)", len(r.Leaked))
	}
	for _, g := range r.Goroutines {
		if !g.System && g.State != sim.StateDone {
			return fmt.Errorf("g%d(%s) ended %s in an OK run", g.ID, g.Name, g.State)
		}
	}
	return nil
}

// allowedReasons returns the block reasons the planted goroutines may
// legitimately end in when the bug manifests.
func (b BugKind) allowedReasons() map[trace.BlockReason]bool {
	switch b {
	case BugDoubleLock, BugABBA:
		return map[trace.BlockReason]bool{trace.BlockMutex: true}
	case BugSendNoRecv:
		return map[trace.BlockReason]bool{trace.BlockSend: true}
	case BugRecvNoSend, BugMissingClose:
		return map[trace.BlockReason]bool{trace.BlockRecv: true}
	case BugLockedSend:
		return map[trace.BlockReason]bool{
			trace.BlockMutex: true, trace.BlockSend: true, trace.BlockRecv: true,
		}
	case BugWgForgotDone:
		return map[trace.BlockReason]bool{trace.BlockWaitGroup: true}
	default: // BugOnceCycle
		return map[trace.BlockReason]bool{
			trace.BlockRecv: true, trace.BlockSend: true, trace.BlockSync: true,
		}
	}
}

// checkBlockedShape verifies a manifested run blocked exactly where the
// planted bug says it may: only planted goroutines (plus main, when they
// are wg-counted) are stuck, with template-consistent reasons, and lock
// bugs show a genuine circular wait in the reconstructed wait-for graph.
func (p *Prog) checkBlockedShape(r *sim.Result) error {
	o := p.Oracle
	reasons := o.Kind.allowedReasons()
	planted := 0
	for _, g := range r.Goroutines {
		if g.System || g.State == sim.StateDone {
			continue
		}
		isMain := g.ID == 1
		isPlanted := strings.HasPrefix(g.Name, "bug")
		if !isMain && !isPlanted {
			return fmt.Errorf("safe goroutine g%d(%s) ended %s/%s in a buggy run",
				g.ID, g.Name, g.State, g.Reason)
		}
		if g.State != sim.StateBlocked {
			return fmt.Errorf("g%d(%s) ended %s, want blocked", g.ID, g.Name, g.State)
		}
		if isMain {
			if !o.WgCounted {
				return fmt.Errorf("main blocked (%s) but the planted goroutines are not wg-counted", g.Reason)
			}
			if g.Reason != trace.BlockWaitGroup {
				return fmt.Errorf("main blocked on %s, want the join waitgroup", g.Reason)
			}
			continue
		}
		if !reasons[g.Reason] {
			return fmt.Errorf("planted g%d(%s) blocked on %s, inconsistent with a %s bug",
				g.ID, g.Name, g.Reason, o.Kind)
		}
		planted++
	}
	if planted == 0 {
		return fmt.Errorf("outcome %s without any blocked planted goroutine", r.Outcome)
	}
	if o.WgCounted != !r.MainEnded {
		return fmt.Errorf("MainEnded=%v inconsistent with WgCounted=%v", r.MainEnded, o.WgCounted)
	}

	if r.Trace == nil {
		return nil // tracing disabled: the snapshot checks above are all we have
	}
	switch o.Kind {
	case BugDoubleLock, BugABBA:
		if !mutexWaitCycle(r.Trace) {
			return fmt.Errorf("%s manifested without a wait-for cycle on mutexes", o.Kind)
		}
	case BugLockedSend:
		// Mixed cycle: whoever is stuck on the mutex must be waiting on a
		// holder that is itself blocked (on the channel), forever.
		holder, waits := mutexWFG(r.Trace)
		state := map[trace.GoID]sim.State{}
		for _, g := range r.Goroutines {
			state[g.ID] = g.State
		}
		for g, res := range waits {
			h, held := holder[res]
			if !held {
				return fmt.Errorf("g%d waits on mutex r%d that nobody holds", g, res)
			}
			if state[h] == sim.StateDone {
				return fmt.Errorf("g%d waits on mutex r%d whose holder g%d finished", g, res, h)
			}
		}
	}
	return nil
}

// mutexWFG reconstructs the final mutex wait-for state from the trace:
// who holds each mutex, and which goroutines are still parked acquiring
// one. Handoff unlocks are handled naturally — the new owner emits its
// (blocked) EvMutexLock after resuming, which clears its pending wait.
func mutexWFG(tr *trace.Trace) (holder map[trace.ResID]trace.GoID, waits map[trace.GoID]trace.ResID) {
	holder = map[trace.ResID]trace.GoID{}
	waits = map[trace.GoID]trace.ResID{}
	for _, e := range tr.Events {
		switch e.Type {
		case trace.EvMutexLock, trace.EvRWLock:
			holder[e.Res] = e.G
			delete(waits, e.G)
		case trace.EvMutexUnlock, trace.EvRWUnlock:
			delete(holder, e.Res)
		case trace.EvGoBlock:
			if e.BlockReason() == trace.BlockMutex {
				waits[e.G] = e.Res
			}
		case trace.EvGoEnd, trace.EvGoPanic:
			delete(waits, e.G)
		}
	}
	return holder, waits
}

// mutexWaitCycle reports whether the final wait-for graph contains a
// circular wait among goroutines parked on mutexes: g → holder(waits(g)),
// following only goroutines that are themselves still waiting. A
// double-lock is the one-node cycle (a goroutine waiting on the mutex it
// already holds).
func mutexWaitCycle(tr *trace.Trace) bool {
	holder, waits := mutexWFG(tr)
	for start := range waits {
		seen := map[trace.GoID]bool{}
		g := start
		for {
			if seen[g] {
				return true
			}
			seen[g] = true
			res, waiting := waits[g]
			if !waiting {
				break
			}
			h, held := holder[res]
			if !held {
				break
			}
			g = h
		}
	}
	return false
}
