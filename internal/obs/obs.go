// Package obs is the live side of the observability plane: an opt-in
// HTTP endpoint any long-running GoAT process (campaign CLIs, the
// fabric's coordinator and workers) mounts with -obs to expose
//
//   - /metrics    — the process telemetry registry in Prometheus text
//     exposition format (counters, gauges, histograms with exact
//     p50/p95/p99 summary series), scrapeable by any Prometheus;
//   - /profile/{block,mutex,goroutine,cpu} — pprof-compatible profiles
//     built on demand from the most recent evidence trace the process
//     holds (?format=folded for flamegraph collapsed-stack text);
//   - /healthz    — liveness.
//
// The plane is pull-based and allocation-free until scraped: mounting
// it costs one goroutine and nothing per event, which is what keeps the
// enabled-overhead budget intact.
package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"goat/internal/profile"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// Server is one process's observability endpoint.
type Server struct {
	// Registry supplies /metrics; nil means telemetry.Default.
	Registry *telemetry.Registry

	// Profiles supplies /profile/*; nil means the process holds no
	// profileable trace (the endpoints answer 503).
	Profiles func() *profile.Set

	srv *http.Server
	ln  net.Listener
}

// LatestTrace is the standard Profiles source for campaign processes:
// whoever produces evidence traces stores the most recent one and the
// endpoint folds it on demand. The zero value is ready to use.
type LatestTrace struct {
	cur atomic.Pointer[profile.Options]
	tr  atomic.Pointer[trace.Trace]
}

// Store publishes a trace (with optional build options) as the current
// profile source.
func (l *LatestTrace) Store(t *trace.Trace, opts profile.Options) {
	if t == nil {
		return
	}
	l.cur.Store(&opts)
	l.tr.Store(t)
}

// Set folds the current trace; nil when none has been stored yet.
func (l *LatestTrace) Set() *profile.Set {
	t := l.tr.Load()
	if t == nil {
		return nil
	}
	opts := l.cur.Load()
	if opts == nil {
		opts = &profile.Options{}
	}
	return profile.Build(t, *opts)
}

// Handler returns the endpoint's routing table (exported for tests and
// for embedding into an existing mux).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := s.Registry
		if reg == nil {
			reg = telemetry.Default
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, reg.Snapshot())
	})
	mux.HandleFunc("/profile/", func(w http.ResponseWriter, r *http.Request) {
		if s.Profiles == nil {
			http.Error(w, "no profile source mounted", http.StatusServiceUnavailable)
			return
		}
		set := s.Profiles()
		if set == nil {
			http.Error(w, "no trace captured yet", http.StatusServiceUnavailable)
			return
		}
		kind := profile.Kind(strings.TrimPrefix(r.URL.Path, "/profile/"))
		p := set.ByKind(kind)
		if p == nil {
			http.Error(w, fmt.Sprintf("unknown or absent profile %q (have block, mutex, goroutine%s)",
				kind, map[bool]string{true: ", cpu"}[set.CPU != nil]), http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "folded" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = p.WriteFolded(w)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf(`attachment; filename=%q`, string(kind)+".pb.gz"))
		_ = p.WritePprof(w)
	})
	return mux
}

// Start binds addr (":0" picks a free port) and serves in the
// background; it returns the bound address for logs and scrapers.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the endpoint.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// promName maps a dotted metric name to the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*), prefixed goat_.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("goat_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteMetrics renders a telemetry snapshot in Prometheus text
// exposition format, deterministically ordered. Histograms emit the
// classic _bucket/_sum/_count series plus p50/p95/p99 summary gauges
// (suffix _p50 …), so dashboards get quantiles without server-side
// histogram_quantile.
func WriteMetrics(w io.Writer, snap telemetry.Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[n])
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[n])
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
		for _, q := range []struct {
			suffix string
			v      int64
		}{{"p50", h.P50}, {"p95", h.P95}, {"p99", h.P99}} {
			fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %d\n", pn, q.suffix, pn, q.suffix, q.v)
		}
	}
}
