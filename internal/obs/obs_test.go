package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"goat/internal/profile"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

func testRegistry() *telemetry.Registry {
	r := telemetry.New()
	r.Enable()
	r.Counter("runs.total").Add(7)
	r.Gauge("workers.active").Set(3)
	h := r.Histogram("run.latency", []int64{10, 100})
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	return r
}

func testTrace() *trace.Trace {
	t := trace.New(8)
	ts := int64(0)
	add := func(e trace.Event) {
		ts++
		e.Ts = ts
		t.Append(e)
	}
	add(trace.Event{G: 1, Type: trace.EvGoStart})
	add(trace.Event{G: 1, Type: trace.EvGoCreate, Peer: 2, Str: "worker", File: "k.go", Line: 5})
	add(trace.Event{G: 2, Type: trace.EvGoStart})
	add(trace.Event{G: 2, Type: trace.EvGoBlock, Res: 1, Aux: int64(trace.BlockSend), File: "k.go", Line: 9})
	add(trace.Event{G: 1, Type: trace.EvGoEnd})
	return t
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	b, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(b)
}

func TestHealthz(t *testing.T) {
	s := &Server{Registry: testRegistry()}
	code, body := get(t, s.Handler(), "/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestMetricsPrometheusText(t *testing.T) {
	s := &Server{Registry: testRegistry()}
	code, body := get(t, s.Handler(), "/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE goat_runs_total counter\ngoat_runs_total 7\n",
		"# TYPE goat_workers_active gauge\ngoat_workers_active 3\n",
		"# TYPE goat_run_latency histogram\n",
		`goat_run_latency_bucket{le="10"} 1`,
		`goat_run_latency_bucket{le="100"} 2`,
		`goat_run_latency_bucket{le="+Inf"} 3`,
		"goat_run_latency_sum 555\n",
		"goat_run_latency_count 3\n",
		"goat_run_latency_p50 100\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, body)
		}
	}
	// Prometheus text grammar: every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestProfileEndpoints(t *testing.T) {
	lt := &LatestTrace{}
	s := &Server{Registry: testRegistry(), Profiles: lt.Set}
	h := s.Handler()

	// Before any trace exists the endpoint says so instead of 500ing.
	if code, _ := get(t, h, "/profile/block"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-store block profile = %d, want 503", code)
	}

	lt.Store(testTrace(), profile.Options{})
	code, body := get(t, h, "/profile/block")
	if code != 200 {
		t.Fatalf("block profile = %d", code)
	}
	if body[0] != 0x1f || body[1] != 0x8b {
		t.Error("profile body is not gzip (pprof wire format)")
	}

	code, body = get(t, h, "/profile/goroutine?format=folded")
	if code != 200 || !strings.Contains(body, "worker [chan-send]") {
		t.Fatalf("folded census = %d %q", code, body)
	}

	if code, _ = get(t, h, "/profile/cpu"); code != http.StatusNotFound {
		t.Errorf("absent cpu profile = %d, want 404", code)
	}
	if code, _ = get(t, h, "/profile/bogus"); code != http.StatusNotFound {
		t.Errorf("bogus profile = %d, want 404", code)
	}
}

func TestNoProfileSource(t *testing.T) {
	s := &Server{Registry: testRegistry()}
	if code, _ := get(t, s.Handler(), "/profile/block"); code != http.StatusServiceUnavailable {
		t.Fatalf("no-source profile = %d, want 503", code)
	}
}

// TestStartServesRealSocket exercises the background listener end to
// end on a kernel-assigned port.
func TestStartServesRealSocket(t *testing.T) {
	s := &Server{Registry: testRegistry()}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(b), "goat_runs_total 7") {
		t.Fatalf("scrape = %d %q", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"runs.total":      "goat_runs_total",
		"shard-42/leaks":  "goat_shard_42_leaks",
		"ok_name":         "goat_ok_name",
		"with space":      "goat_with_space",
		"campaign.p99.ns": "goat_campaign_p99_ns",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
