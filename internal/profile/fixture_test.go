package profile

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"

	"goat/internal/ingest"
)

// buildFromFixture runs the exact wiring cmd/goattrace uses: parse the
// native capture, feed the wall table and CPU samples into the build.
func buildFromFixture(t *testing.T, path string) *Set {
	t.Helper()
	r, err := ingest.ParseFile(path)
	if err != nil {
		t.Fatalf("ParseFile(%s): %v", path, err)
	}
	opts := Options{Wall: r.Wall}
	for _, s := range r.CPUSamples {
		cs := CPUSample{G: s.G}
		for _, f := range s.Stack {
			cs.Stack = append(cs.Stack, Frame{Func: f.Func, File: f.File, Line: f.Line})
		}
		opts.CPUSamples = append(opts.CPUSamples, cs)
	}
	return Build(r.Trace, opts)
}

// TestLeakypoolFixtureProfiles is the acceptance check on the checked-in
// native capture: the three planted stranded senders must be the top
// block entry, the mutex profile must key the WaitGroup resource, the
// census must count the strands, and the cpu profile must land in the
// burn loop.
func TestLeakypoolFixtureProfiles(t *testing.T) {
	set := buildFromFixture(t, "../ingest/testdata/leakypool.trace")

	top := set.Block.Samples[0]
	if top.Stack[0].Func != "main.worker.func1 [chan-send]" {
		t.Fatalf("top block entry = %q, want the planted senders:\n%s",
			top.Stack[0].Func, set.Block.Top(5))
	}
	if top.Count != 4 {
		// 3 stranded sends plus the one that completed.
		t.Errorf("top block count = %d, want 4 sends", top.Count)
	}
	if !strings.HasSuffix(top.Stack[0].File, "leakypool/main.go") || top.Stack[0].Line != 30 {
		t.Errorf("top block site = %s:%d, want .../leakypool/main.go:30",
			top.Stack[0].File, top.Stack[0].Line)
	}
	if top.Value < 3*100e6 {
		t.Errorf("top block value = %dns, want >= 300ms (three strands charged their tails)", top.Value)
	}
	if len(top.Stack) < 2 || !strings.HasPrefix(top.Stack[1].Func, "created by main.worker") {
		t.Errorf("top block parent = %v, want created by main.worker", top.Stack)
	}

	if len(set.Mutex.Samples) == 0 {
		t.Error("mutex profile empty; wg.Wait contention must be keyed by resource")
	} else if !strings.HasPrefix(set.Mutex.Samples[0].Stack[0].Func, "wg#") {
		t.Errorf("mutex leaf = %q, want a wg#N resource identity", set.Mutex.Samples[0].Stack[0].Func)
	}

	strands := int64(0)
	for _, s := range set.Goroutine.Samples {
		if s.Stack[0].Func == "main.worker.func1 [chan-send]" {
			strands = s.Count
		}
	}
	if strands != 3 {
		t.Errorf("census counts %d stranded senders, want 3:\n%s", strands, set.Goroutine.Top(0))
	}

	if set.CPU == nil {
		t.Fatal("no cpu profile; the fixture is captured with the profiler running")
	}
	if !strings.Contains(set.CPU.Samples[0].Stack[0].Func, "burnCPU") {
		t.Errorf("hottest cpu stack = %v, want main.burnCPU", set.CPU.Samples[0].Stack)
	}
}

// TestFixturePprofRoundTrip shells out to `go tool pprof -top` on every
// profile built from the fixture — the full acceptance path.
func TestFixturePprofRoundTrip(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	set := buildFromFixture(t, "../ingest/testdata/leakypool.trace")
	dir := t.TempDir()
	for _, p := range []*Profile{set.Block, set.Mutex, set.Goroutine, set.CPU} {
		path := dir + "/" + string(p.Kind) + ".pb.gz"
		var buf bytes.Buffer
		if err := p.WritePprof(&buf); err != nil {
			t.Fatalf("%s: WritePprof: %v", p.Kind, err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command("go", "tool", "pprof", "-top", path).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: go tool pprof -top: %v\n%s", p.Kind, err, out)
		}
		switch p.Kind {
		case KindBlock:
			// The planted senders must be the first ranked row.
			lines := strings.Split(string(out), "\n")
			first := ""
			for i, l := range lines {
				if strings.Contains(l, "flat%") && i+1 < len(lines) {
					first = lines[i+1]
					break
				}
			}
			if !strings.Contains(first, "main.worker.func1 [chan-send]") {
				t.Errorf("block -top first row = %q, want the planted senders\n%s", first, out)
			}
		case KindCPU:
			if !strings.Contains(string(out), "main.burnCPU") {
				t.Errorf("cpu -top output lacks main.burnCPU:\n%s", out)
			}
		}
	}
}

// TestFixtureFoldedNonEmpty keeps the folded encoding working on real
// captures: every line is "frames value" with root-first stacks.
func TestFixtureFoldedNonEmpty(t *testing.T) {
	set := buildFromFixture(t, "../ingest/testdata/leakypool.trace")
	var buf bytes.Buffer
	if err := set.Block.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in folded output")
		}
		if strings.HasPrefix(line, "created by main.worker") &&
			strings.Contains(line, "main.worker.func1 [chan-send]") {
			found = true
		}
	}
	if !found {
		t.Errorf("folded output lacks the root-first stranded-send stack:\n%s", buf.String())
	}
}
