package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteFolded writes the profile in collapsed-stack format — one line
// per stack, root-first frames joined by semicolons, the value last —
// the input flamegraph.pl and every flamegraph UI accept. The value is
// nanoseconds for timed profiles and a goroutine count for the census.
// Lines are ordered lexicographically so the output is golden-testable.
func (p *Profile) WriteFolded(w io.Writer) error {
	lines := make([]string, 0, len(p.Samples))
	for i := range p.Samples {
		s := &p.Samples[i]
		parts := make([]string, len(s.Stack))
		for j, f := range s.Stack {
			// Root-first for folded output (samples store leaf-first).
			parts[len(s.Stack)-1-j] = f.String()
		}
		v := s.Value
		if p.Kind == KindGoroutine {
			v = s.Count
		}
		lines = append(lines, fmt.Sprintf("%s %d", strings.Join(parts, ";"), v))
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
