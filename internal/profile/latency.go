package profile

import (
	"fmt"

	"goat/internal/telemetry"
	"goat/internal/trace"
)

// Request timeline markers. Service kernels with timelines enabled emit
// one EvUserLog pair per request (Aux carries the request id); the
// latency sink turns the pairs into per-request latency samples. The
// unit is logical events — the only clock a deterministic simulation
// has — which makes the percentiles replay-stable.
const (
	ReqStartMarker = "req:start"
	ReqDoneMarker  = "req:done"
)

// LatencySink derives per-request latency percentiles from request
// timeline markers on the sink path. It works under NoTrace campaigns
// (nothing is buffered beyond open requests) and keeps every sample, so
// the reported percentiles are exact (telemetry.QuantileExact), with a
// bucketed telemetry histogram fed alongside when one is attached.
type LatencySink struct {
	// Hist, when set, additionally receives every sample (the shared
	// telemetry pipeline: Prometheus export, JSON dumps).
	Hist *telemetry.Histogram

	open    map[int64]int64 // request id → start Ts
	samples []int64
	dropped int // done markers with no matching start
}

// NewLatencySink returns an empty sink.
func NewLatencySink() *LatencySink {
	return &LatencySink{open: map[int64]int64{}}
}

// Event implements trace.Sink.
func (l *LatencySink) Event(e trace.Event) {
	if e.Type != trace.EvUserLog {
		return
	}
	switch e.Str {
	case ReqStartMarker:
		l.open[e.Aux] = e.Ts
	case ReqDoneMarker:
		start, ok := l.open[e.Aux]
		if !ok {
			l.dropped++
			return
		}
		delete(l.open, e.Aux)
		d := e.Ts - start
		l.samples = append(l.samples, d)
		l.Hist.Observe(d)
	}
}

// EventBatch implements trace.BatchSink.
func (l *LatencySink) EventBatch(evs []trace.Event) {
	for i := range evs {
		l.Event(evs[i])
	}
}

// Close implements trace.Sink.
func (l *LatencySink) Close() {}

// Count returns the number of completed requests observed.
func (l *LatencySink) Count() int { return len(l.samples) }

// Open returns the number of requests still in flight (started, never
// finished — on a leaky service this tracks the strand census).
func (l *LatencySink) Open() int { return len(l.open) }

// Percentiles returns the exact p50/p95/p99 of the completed-request
// latencies, in logical events.
func (l *LatencySink) Percentiles() (p50, p95, p99 int64) {
	return telemetry.QuantileExact(l.samples, 0.50),
		telemetry.QuantileExact(l.samples, 0.95),
		telemetry.QuantileExact(l.samples, 0.99)
}

// String summarizes the digest.
func (l *LatencySink) String() string {
	p50, p95, p99 := l.Percentiles()
	return fmt.Sprintf("%d requests (%d in flight): p50=%d p95=%d p99=%d events",
		l.Count(), l.Open(), p50, p95, p99)
}
