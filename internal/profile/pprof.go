// pprof protobuf encoding.
//
// The profile.proto schema is small and stable, so the encoder is
// hand-rolled: a varint writer and the handful of message fields the
// pprof toolchain reads (sample/location/function/string tables, sample
// and period types, duration). Repeated scalar fields are written
// unpacked — every conforming proto3 reader, including go tool pprof's
// vendored decoder, accepts both forms. Output is gzip-compressed like
// the runtime's own profile writers, and byte-deterministic for a given
// profile (no wall-clock stamp), so equivalence sweeps can compare
// encodings directly.
package profile

import (
	"compress/gzip"
	"fmt"
	"io"
)

// profile.proto field numbers.
const (
	fldSampleType    = 1 // repeated ValueType
	fldSample        = 2 // repeated Sample
	fldLocation      = 4 // repeated Location
	fldFunction      = 5 // repeated Function
	fldStringTable   = 6 // repeated string
	fldDurationNanos = 10
	fldPeriodType    = 11 // ValueType
	fldPeriod        = 12

	fldVTType = 1 // ValueType.type (string index)
	fldVTUnit = 2 // ValueType.unit

	fldSampleLocationID = 1 // repeated uint64
	fldSampleValue      = 2 // repeated int64

	fldLocID   = 1
	fldLocLine = 4 // repeated Line

	fldLineFunctionID = 1
	fldLineLine       = 2

	fldFnID         = 1
	fldFnName       = 2
	fldFnSystemName = 3
	fldFnFilename   = 4
)

// pbuf is a minimal protobuf writer.
type pbuf struct{ b []byte }

func (p *pbuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// varintField writes a varint-typed field; zero values are omitted
// (proto3 default semantics).
func (p *pbuf) varintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.uvarint(uint64(field)<<3 | 0)
	p.uvarint(v)
}

func (p *pbuf) bytesField(field int, b []byte) {
	p.uvarint(uint64(field)<<3 | 2)
	p.uvarint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *pbuf) msgField(field int, m *pbuf) { p.bytesField(field, m.b) }

// strTab interns strings; index 0 is "" per the schema.
type strTab struct {
	idx  map[string]int64
	list []string
}

func newStrTab() *strTab {
	return &strTab{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (t *strTab) of(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// sampleTypes returns the pprof sample-type vocabulary of a profile
// kind, matching the names the Go runtime uses so pprof UIs apply their
// standard handling (delay units, default views).
func (p *Profile) sampleTypes() (types [][2]string, period [2]string, periodVal int64) {
	switch p.Kind {
	case KindMutex:
		return [][2]string{{"contentions", "count"}, {"delay", "nanoseconds"}},
			[2]string{"contentions", "count"}, 1
	case KindGoroutine:
		return [][2]string{{"goroutine", "count"}},
			[2]string{"goroutine", "count"}, 1
	case KindCPU:
		pv := p.PeriodNs
		if pv <= 0 {
			pv = DefaultCPUPeriodNs
		}
		return [][2]string{{"samples", "count"}, {"cpu", "nanoseconds"}},
			[2]string{"cpu", "nanoseconds"}, pv
	default: // KindBlock
		return [][2]string{{"contentions", "count"}, {"delay", "nanoseconds"}},
			[2]string{"contentions", "count"}, 1
	}
}

// values returns one sample's value vector in sample-type order.
func (p *Profile) values(s *Sample) []int64 {
	switch p.Kind {
	case KindGoroutine:
		return []int64{s.Count}
	default:
		return []int64{s.Count, s.Value}
	}
}

// WritePprof writes the gzip-compressed protobuf encoding.
func (p *Profile) WritePprof(w io.Writer) error {
	strs := newStrTab()

	// Interned functions and locations: a function is (name, file), a
	// location is (function, line).
	type fnKey struct {
		name, file string
	}
	type locKey struct {
		fn   uint64
		line int
	}
	fns := map[fnKey]uint64{}
	var fnList []fnKey
	locs := map[locKey]uint64{}
	var locList []locKey

	locOf := func(f Frame) uint64 {
		fk := fnKey{name: f.Func, file: f.File}
		fid, ok := fns[fk]
		if !ok {
			fid = uint64(len(fnList) + 1)
			fns[fk] = fid
			fnList = append(fnList, fk)
		}
		lk := locKey{fn: fid, line: f.Line}
		lid, ok := locs[lk]
		if !ok {
			lid = uint64(len(locList) + 1)
			locs[lk] = lid
			locList = append(locList, lk)
		}
		return lid
	}

	var body pbuf
	types, period, periodVal := p.sampleTypes()
	for _, st := range types {
		var vt pbuf
		vt.varintField(fldVTType, uint64(strs.of(st[0])))
		vt.varintField(fldVTUnit, uint64(strs.of(st[1])))
		body.msgField(fldSampleType, &vt)
	}
	for i := range p.Samples {
		s := &p.Samples[i]
		var sm pbuf
		for _, f := range s.Stack {
			sm.varintField(fldSampleLocationID, locOf(f))
		}
		for _, v := range s.Values(p) {
			// Values are written positionally; zeros must not be elided
			// or the vector would shift, so encode them explicitly.
			sm.uvarint(uint64(fldSampleValue)<<3 | 0)
			sm.uvarint(uint64(v))
		}
		body.msgField(fldSample, &sm)
	}
	for i, lk := range locList {
		var lm pbuf
		lm.varintField(fldLocID, uint64(i+1))
		var ln pbuf
		ln.varintField(fldLineFunctionID, lk.fn)
		ln.varintField(fldLineLine, uint64(lk.line))
		lm.msgField(fldLocLine, &ln)
		body.msgField(fldLocation, &lm)
	}
	for i, fk := range fnList {
		var fm pbuf
		fm.varintField(fldFnID, uint64(i+1))
		name := uint64(strs.of(fk.name))
		fm.varintField(fldFnName, name)
		fm.varintField(fldFnSystemName, name)
		fm.varintField(fldFnFilename, uint64(strs.of(fk.file)))
		body.msgField(fldFunction, &fm)
	}
	for _, s := range strs.list {
		body.bytesField(fldStringTable, []byte(s))
	}
	body.varintField(fldDurationNanos, uint64(p.SpanNs))
	var pt pbuf
	pt.varintField(fldVTType, uint64(strs.of(period[0])))
	pt.varintField(fldVTUnit, uint64(strs.of(period[1])))
	body.msgField(fldPeriodType, &pt)
	body.varintField(fldPeriod, uint64(periodVal))

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(body.b); err != nil {
		return fmt.Errorf("profile: writing pprof body: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("profile: closing gzip stream: %w", err)
	}
	return nil
}

// Values returns the sample's pprof value vector (exported for the
// encoder and tests).
func (s *Sample) Values(p *Profile) []int64 { return p.values(s) }
