// Package profile is the contention profiling plane: it folds any ECT —
// sim-produced or natively ingested — into pprof-compatible profiles,
// giving every layer of the stack (campaign CLIs, the fabric, the
// ingest pipeline) one shared profile vocabulary.
//
// Three profiles derive from the event stream alone:
//
//   - block: cumulative blocked time by (goroutine root, block site,
//     reason). A park opens a span; the goroutine's next own event, an
//     unblock edge naming it, or the end of the trace closes it. On
//     native windows real durations come from the ingest wall table;
//     sim traces charge logical ticks (reported as nanoseconds, so the
//     relative magnitudes — which is all a virtual clock has — survive
//     the pprof toolchain unchanged).
//   - mutex: the sync-family subset of block spans, re-keyed by the
//     contended resource identity (the correlated ResID from
//     internal/ingest, exact IDs from the virtual runtime). The leaf
//     frame is the resource, so `pprof -top` ranks lock objects, not
//     call sites — contention pinpointing in the BinGo sense.
//   - goroutine: a census of goroutines live at the end of the trace,
//     grouped by identical pseudo-stacks.
//
// A fourth, cpu, is built from the capture's profiling-clock samples
// (ingest.CPUSample) when the traced program ran the CPU profiler
// alongside runtime/trace — those carry real call stacks.
//
// ECT events carry one source location, not a call stack, so profile
// stacks are pseudo-stacks assembled from provenance: the leaf names
// the goroutine root and block reason at the block site, its parent
// names the creating goroutine at the go-statement site. The encoding
// (pprof.go) writes the standard protobuf profile, so `go tool pprof`,
// flamegraph tooling and continuous-profiling UIs consume GoAT output
// directly.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"goat/internal/trace"
)

// Frame is one frame of a profile stack, leaf first in a Sample.
type Frame struct {
	Func string
	File string
	Line int
}

// String renders the frame for folded output.
func (f Frame) String() string {
	if f.File == "" {
		return f.Func
	}
	return fmt.Sprintf("%s %s:%d", f.Func, trace.TrimPath(f.File), f.Line)
}

// Sample is one aggregated profile row: a stack with the number of
// events folded into it and their cumulative value.
type Sample struct {
	Stack []Frame // leaf first
	Count int64   // events aggregated (contentions, goroutines, hits)
	Value int64   // cumulative nanoseconds (0 for pure-count profiles)
}

// Kind names a profile flavor; it selects the pprof sample/period types.
type Kind string

const (
	KindBlock     Kind = "block"
	KindMutex     Kind = "mutex"
	KindGoroutine Kind = "goroutine"
	KindCPU       Kind = "cpu"
)

// Profile is one finished profile: deterministic sample order (value
// descending, then stack), ready for pprof or folded encoding.
type Profile struct {
	Kind     Kind
	Samples  []Sample
	PeriodNs int64 // cpu only: sampling period
	SpanNs   int64 // observed span (duration_nanos of the encoding)
}

// Set is every profile built from one trace.
type Set struct {
	Block     *Profile
	Mutex     *Profile
	Goroutine *Profile
	CPU       *Profile // nil unless the source carried CPU samples
}

// CPUSample is one profiling-clock hit, the shape ingest.CPUSample maps
// to (the package stays source-agnostic: any producer with real stacks
// can feed it).
type CPUSample struct {
	G     trace.GoID
	Stack []Frame // leaf first
}

// DefaultCPUPeriodNs is the runtime CPU profiler's default sampling
// period (100 Hz), assumed when the capture does not say otherwise.
const DefaultCPUPeriodNs = 10_000_000

// Options configures a build.
type Options struct {
	// Wall aligns index-for-index with the trace's events and holds each
	// event's wall-clock offset in nanoseconds (ingest.Run.Wall). When
	// nil, logical timestamps are charged instead.
	Wall []int64

	// CPUSamples are the capture's profiling-clock hits, if any.
	CPUSamples []CPUSample

	// CPUPeriodNs overrides the assumed CPU sampling period.
	CPUPeriodNs int64

	// IncludeSystem keeps runtime-internal goroutines in the block,
	// mutex and goroutine profiles (they are suppressed by default, like
	// everywhere else in the stack).
	IncludeSystem bool
}

// gProf tracks one goroutine through the fold.
type gProf struct {
	name       string
	creator    string
	createFile string
	createLine int
	system     bool
	ended      bool

	blocked   bool
	reason    trace.BlockReason
	blockFile string
	blockLine int
	blockRes  trace.ResID
	blockAt   int64 // ns at park
}

// builder aggregates samples by folded stack key.
type builder struct {
	samples map[string]*Sample
}

func newBuilder() *builder { return &builder{samples: map[string]*Sample{}} }

func (b *builder) add(stack []Frame, count, value int64) {
	parts := make([]string, len(stack))
	for i, f := range stack {
		parts[i] = f.String()
	}
	key := strings.Join(parts, ";")
	s, ok := b.samples[key]
	if !ok {
		s = &Sample{Stack: stack}
		b.samples[key] = s
	}
	s.Count += count
	s.Value += value
}

// finish produces the deterministic sample order: cumulative value
// descending, count descending, then the rendered stack ascending.
func (b *builder) finish(kind Kind, spanNs int64) *Profile {
	p := &Profile{Kind: kind, SpanNs: spanNs}
	keys := make([]string, 0, len(b.samples))
	for k := range b.samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		si, sj := b.samples[keys[i]], b.samples[keys[j]]
		if si.Value != sj.Value {
			return si.Value > sj.Value
		}
		if si.Count != sj.Count {
			return si.Count > sj.Count
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		p.Samples = append(p.Samples, *b.samples[k])
	}
	return p
}

// mutexFamily labels the contended-resource leaf of the mutex profile;
// "" excludes the reason from it.
func mutexFamily(r trace.BlockReason) string {
	switch r {
	case trace.BlockMutex, trace.BlockRMutex:
		return "lock"
	case trace.BlockWaitGroup:
		return "wg"
	case trace.BlockCond:
		return "cond"
	case trace.BlockSync:
		return "sync"
	}
	return ""
}

// Build folds a trace into its profile set.
func Build(t *trace.Trace, opts Options) *Set {
	gs := map[trace.GoID]*gProf{}
	gOf := func(id trace.GoID) *gProf {
		g, ok := gs[id]
		if !ok {
			g = &gProf{}
			if id == 1 {
				g.name = "main"
			}
			gs[id] = g
		}
		return g
	}

	var events []trace.Event
	if t != nil {
		events = t.Events
	}
	ns := func(i int) int64 {
		if i < 0 || i >= len(events) {
			return 0
		}
		if opts.Wall != nil && i < len(opts.Wall) {
			return opts.Wall[i]
		}
		return events[i].Ts
	}
	endNs := ns(len(events) - 1)

	block := newBuilder()
	mutex := newBuilder()

	// endSpan charges a finished park to the block profile and, for
	// sync-family parks with a resource identity, to the mutex profile.
	endSpan := func(g *gProf, now int64) {
		g.blocked = false
		d := now - g.blockAt
		if d < 0 {
			d = 0
		}
		if g.system && !opts.IncludeSystem {
			return
		}
		site := Frame{
			Func: fmt.Sprintf("%s [%s]", g.name, g.reason),
			File: g.blockFile, Line: g.blockLine,
		}
		stack := []Frame{site}
		if g.createFile != "" || g.creator != "" {
			stack = append(stack, Frame{
				Func: "created by " + orUnknown(g.creator),
				File: g.createFile, Line: g.createLine,
			})
		}
		block.add(stack, 1, d)
		if fam := mutexFamily(g.reason); fam != "" && g.blockRes != 0 {
			res := Frame{Func: fmt.Sprintf("%s#%d", fam, g.blockRes)}
			mutex.add(append([]Frame{res}, stack...), 1, d)
		}
	}

	for i := range events {
		e := &events[i]
		switch e.Type {
		case trace.EvGoCreate:
			p := gOf(e.G)
			c := gOf(e.Peer)
			c.name = e.Str
			c.creator = orUnknown(p.name)
			c.createFile, c.createLine = e.File, e.Line
			c.system = e.Aux == 1 || p.system
		case trace.EvGoStart:
			g := gOf(e.G)
			if g.name == "" {
				g.name = e.Str
			}
			if g.createFile == "" && g.creator == "" {
				// Self-introduction (window contract): provenance is the
				// start record itself.
				g.createFile, g.createLine = e.File, e.Line
			}
			if e.Aux == 1 {
				g.system = true
			}
			if g.blocked {
				endSpan(g, ns(i))
			}
		case trace.EvGoBlock:
			g := gOf(e.G)
			if g.blocked {
				endSpan(g, ns(i))
			}
			g.blocked = true
			g.reason = e.BlockReason()
			g.blockFile, g.blockLine = e.File, e.Line
			g.blockRes = e.Res
			g.blockAt = ns(i)
		case trace.EvGoUnblock:
			// The wake ends the peer's park — Go's block profile charges
			// until the wakeup, not until the reschedule.
			if tg, ok := gs[e.Peer]; ok && tg.blocked {
				endSpan(tg, ns(i))
			}
			if g := gOf(e.G); g.blocked {
				endSpan(g, ns(i))
			}
		case trace.EvGoEnd, trace.EvGoPanic:
			g := gOf(e.G)
			if g.blocked {
				endSpan(g, ns(i))
			}
			g.ended = true
		default:
			// Any action by a nominally-blocked goroutine proves it
			// resumed (native windows drop some wake edges).
			if g := gOf(e.G); g.blocked {
				endSpan(g, ns(i))
			}
		}
	}

	// Still-parked goroutines are charged to the end of the window: a
	// stranded sender owns its whole tail, which is exactly what puts
	// planted leaks at the top of the block profile.
	ids := make([]trace.GoID, 0, len(gs))
	for id := range gs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	census := newBuilder()
	for _, id := range ids {
		g := gs[id]
		if g.blocked {
			endSpan(g, endNs)
			g.blocked = true // remains parked for the census below
		}
		if g.ended || (g.system && !opts.IncludeSystem) {
			continue
		}
		leaf := Frame{Func: g.name, File: g.createFile, Line: g.createLine}
		if g.blocked {
			leaf = Frame{
				Func: fmt.Sprintf("%s [%s]", g.name, g.reason),
				File: g.blockFile, Line: g.blockLine,
			}
		}
		stack := []Frame{leaf}
		if g.createFile != "" || g.creator != "" {
			stack = append(stack, Frame{
				Func: "created by " + orUnknown(g.creator),
				File: g.createFile, Line: g.createLine,
			})
		}
		census.add(stack, 1, 0)
	}

	set := &Set{
		Block:     block.finish(KindBlock, endNs),
		Mutex:     mutex.finish(KindMutex, endNs),
		Goroutine: census.finish(KindGoroutine, endNs),
	}
	if len(opts.CPUSamples) > 0 {
		period := opts.CPUPeriodNs
		if period <= 0 {
			period = DefaultCPUPeriodNs
		}
		cpu := newBuilder()
		for _, s := range opts.CPUSamples {
			if len(s.Stack) == 0 {
				continue
			}
			cpu.add(s.Stack, 1, period)
		}
		set.CPU = cpu.finish(KindCPU, endNs)
		set.CPU.PeriodNs = period
	}
	return set
}

// ByKind returns the requested profile (nil when absent).
func (s *Set) ByKind(k Kind) *Profile {
	switch k {
	case KindBlock:
		return s.Block
	case KindMutex:
		return s.Mutex
	case KindGoroutine:
		return s.Goroutine
	case KindCPU:
		return s.CPU
	}
	return nil
}

func orUnknown(name string) string {
	if name == "" {
		return "unknown"
	}
	return name
}

// Top renders the first n samples as a one-line-per-entry summary, the
// human-readable companion of the binary encodings.
func (p *Profile) Top(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s profile: %d stack(s)\n", p.Kind, len(p.Samples))
	for i, s := range p.Samples {
		if n > 0 && i >= n {
			fmt.Fprintf(&b, "  ... %d more\n", len(p.Samples)-n)
			break
		}
		if p.Kind == KindGoroutine {
			fmt.Fprintf(&b, "  %6d  %s\n", s.Count, s.Stack[0])
		} else {
			fmt.Fprintf(&b, "  %12.3fms x%-5d %s\n", float64(s.Value)/1e6, s.Count, s.Stack[0])
		}
	}
	return b.String()
}
