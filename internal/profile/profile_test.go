package profile

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"

	"goat/internal/trace"
)

// poolTrace hand-builds the smallest trace exercising every profile:
// main creates a worker that first contends a mutex (resource 7), is
// woken, then strands forever on a channel send.
func poolTrace() *trace.Trace {
	t := trace.New(8)
	ts := int64(0)
	add := func(e trace.Event) {
		ts++
		e.Ts = ts
		t.Append(e)
	}
	add(trace.Event{G: 1, Type: trace.EvGoStart})
	add(trace.Event{G: 1, Type: trace.EvGoCreate, Peer: 2, Str: "worker", File: "pool.go", Line: 10})
	add(trace.Event{G: 2, Type: trace.EvGoStart})
	add(trace.Event{G: 2, Type: trace.EvGoBlock, Res: 7, Aux: int64(trace.BlockMutex), File: "pool.go", Line: 20})
	add(trace.Event{G: 1, Type: trace.EvGoUnblock, Peer: 2, Res: 7})
	add(trace.Event{G: 2, Type: trace.EvGoBlock, Res: 3, Aux: int64(trace.BlockSend), File: "pool.go", Line: 30})
	add(trace.Event{G: 1, Type: trace.EvGoEnd})
	return t
}

func TestBuildBlockMutexCensus(t *testing.T) {
	set := Build(poolTrace(), Options{})

	if n := len(set.Block.Samples); n != 2 {
		t.Fatalf("block samples = %d, want 2:\n%s", n, set.Block.Top(0))
	}
	for _, s := range set.Block.Samples {
		// Logical clock: mutex span is Ts 4..5, strand span Ts 6..7.
		if s.Count != 1 || s.Value != 1 {
			t.Errorf("sample %v = count %d value %d, want 1/1", s.Stack, s.Count, s.Value)
		}
		if len(s.Stack) != 2 || s.Stack[1].Func != "created by main" {
			t.Errorf("sample stack %v lacks the creator parent frame", s.Stack)
		}
	}

	if n := len(set.Mutex.Samples); n != 1 {
		t.Fatalf("mutex samples = %d, want just the lock contention:\n%s", n, set.Mutex.Top(0))
	}
	m := set.Mutex.Samples[0]
	if m.Stack[0].Func != "lock#7" {
		t.Errorf("mutex leaf = %q, want the resource identity lock#7", m.Stack[0].Func)
	}

	// main ended; only the stranded worker remains in the census.
	if n := len(set.Goroutine.Samples); n != 1 {
		t.Fatalf("census = %d stacks, want 1:\n%s", n, set.Goroutine.Top(0))
	}
	c := set.Goroutine.Samples[0]
	if c.Count != 1 || c.Stack[0].Func != "worker [chan-send]" {
		t.Errorf("census leaf = %+v, want 1 worker [chan-send]", c)
	}

	if set.CPU != nil {
		t.Error("CPU profile built without samples")
	}
}

func TestBuildWallTable(t *testing.T) {
	// Same trace, but a wall table stretches the strand span to 600ns
	// (park at 100, window ends at 700) and the mutex span to 60.
	wall := []int64{0, 10, 20, 40, 100, 100, 700}
	set := Build(poolTrace(), Options{Wall: wall})

	top := set.Block.Samples[0]
	if !strings.Contains(top.Stack[0].Func, "chan-send") || top.Value != 600 {
		t.Errorf("top block sample = %v value %d, want the stranded send charged 600ns",
			top.Stack, top.Value)
	}
	if set.Mutex.Samples[0].Value != 60 {
		t.Errorf("mutex value = %d, want 60ns from the wall table", set.Mutex.Samples[0].Value)
	}
	if set.Block.SpanNs != 700 {
		t.Errorf("SpanNs = %d, want 700", set.Block.SpanNs)
	}
}

func TestBuildCPU(t *testing.T) {
	stack := []Frame{{Func: "main.burn", File: "pool.go", Line: 50}, {Func: "main.main"}}
	set := Build(poolTrace(), Options{
		CPUSamples: []CPUSample{{G: 1, Stack: stack}, {G: 1, Stack: stack}},
	})
	if set.CPU == nil {
		t.Fatal("no CPU profile from samples")
	}
	s := set.CPU.Samples[0]
	if s.Count != 2 || s.Value != 2*DefaultCPUPeriodNs {
		t.Errorf("cpu sample = count %d value %d, want 2 hits at the default period", s.Count, s.Value)
	}
	if set.CPU.PeriodNs != DefaultCPUPeriodNs {
		t.Errorf("PeriodNs = %d, want %d", set.CPU.PeriodNs, DefaultCPUPeriodNs)
	}
}

func TestSystemGoroutinesSuppressed(t *testing.T) {
	tr := trace.New(8)
	ts := int64(0)
	add := func(e trace.Event) {
		ts++
		e.Ts = ts
		tr.Append(e)
	}
	add(trace.Event{G: 1, Type: trace.EvGoStart})
	add(trace.Event{G: 1, Type: trace.EvGoCreate, Peer: 2, Str: "gc", Aux: 1})
	add(trace.Event{G: 2, Type: trace.EvGoStart})
	add(trace.Event{G: 2, Type: trace.EvGoBlock, Aux: int64(trace.BlockSelect)})

	if set := Build(tr, Options{}); len(set.Block.Samples) != 0 {
		t.Errorf("system park leaked into the block profile:\n%s", set.Block.Top(0))
	}
	set := Build(tr, Options{IncludeSystem: true})
	if len(set.Block.Samples) != 1 {
		t.Errorf("IncludeSystem dropped the system park:\n%s", set.Block.Top(0))
	}
}

func TestWriteFoldedGolden(t *testing.T) {
	set := Build(poolTrace(), Options{})
	var buf bytes.Buffer
	if err := set.Block.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "created by main pool.go:10;worker [chan-send] pool.go:30 1\n" +
		"created by main pool.go:10;worker [mutex] pool.go:20 1\n"
	if buf.String() != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", buf.String(), want)
	}

	buf.Reset()
	if err := set.Goroutine.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want = "created by main pool.go:10;worker [chan-send] pool.go:30 1\n"
	if buf.String() != want {
		t.Errorf("census folded output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestPprofRoundTrip proves the hand-rolled protobuf encoding is the
// real pprof wire format: `go tool pprof -top` must parse it and rank
// the stranded send first.
func TestPprofRoundTrip(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	set := Build(poolTrace(), Options{Wall: []int64{0, 10, 20, 40, 100, 100, 700}})
	dir := t.TempDir()
	for _, p := range []*Profile{set.Block, set.Mutex, set.Goroutine} {
		path := dir + "/" + string(p.Kind) + ".pb.gz"
		var buf bytes.Buffer
		if err := p.WritePprof(&buf); err != nil {
			t.Fatalf("%s: WritePprof: %v", p.Kind, err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command("go", "tool", "pprof", "-top", path).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: go tool pprof -top: %v\n%s", p.Kind, err, out)
		}
		if p.Kind == KindBlock && !strings.Contains(string(out), "worker [chan-send]") {
			t.Errorf("block -top output does not rank the stranded send:\n%s", out)
		}
		if p.Kind == KindMutex && !strings.Contains(string(out), "lock#7") {
			t.Errorf("mutex -top output does not name the resource:\n%s", out)
		}
	}
}

func TestLatencySink(t *testing.T) {
	l := NewLatencySink()
	emit := func(ts int64, marker string, id int64) {
		l.Event(trace.Event{Ts: ts, G: 1, Type: trace.EvUserLog, Str: marker, Aux: id})
	}
	// 100 requests with latency == id (1..100), one left in flight, one
	// orphan done marker.
	for id := int64(1); id <= 100; id++ {
		emit(id, ReqStartMarker, id)
		emit(2*id, ReqDoneMarker, id)
	}
	emit(500, ReqStartMarker, 999)
	emit(501, ReqDoneMarker, 777)

	if l.Count() != 100 || l.Open() != 1 || l.dropped != 1 {
		t.Fatalf("count=%d open=%d dropped=%d, want 100/1/1", l.Count(), l.Open(), l.dropped)
	}
	p50, p95, p99 := l.Percentiles()
	if p50 != 50 || p95 != 95 || p99 != 99 {
		t.Errorf("percentiles = %d/%d/%d, want 50/95/99 (nearest rank)", p50, p95, p99)
	}
	if s := l.String(); !strings.Contains(s, "100 requests (1 in flight)") {
		t.Errorf("String() = %q", s)
	}

	// Non-marker user logs are ignored.
	l.Event(trace.Event{Type: trace.EvUserLog, Str: "other", Aux: 1})
	if l.Count() != 100 {
		t.Error("non-marker log counted as a request")
	}
}
