// Package race is the offline happens-before data-race checker — the
// reproduction of the paper's -race option, built on the ECT instead of
// the native race runtime.
//
// It replays the trace once, maintaining a vector clock per goroutine and
// deriving synchronization edges from the recorded events:
//
//   - program order within each goroutine;
//   - GoCreate → the child's first event;
//   - every EvGoUnblock (the waker's clock flows into the woken
//     goroutine), which covers rendezvous channels, mutex handoff,
//     WaitGroup release, Cond signal/broadcast and Once completion;
//   - buffered channels: the k-th send happens-before the k-th receive
//     (FIFO), and a close happens-before every receive that observes it;
//   - mutexes: each release's clock flows into every later acquisition of
//     the same lock (read acquisitions included — a deliberate
//     over-approximation that cannot produce false positives for
//     lock-protected data).
//
// Two accesses to the same Shared cell race when at least one is a write
// and neither happens-before the other. The virtual runtime serializes
// execution, so races never manifest as torn memory — they are exactly
// the unordered pairs this checker reports.
package race

import (
	"fmt"
	"sort"

	"goat/internal/trace"
)

// VC is a vector clock mapping goroutine to logical time.
type VC map[trace.GoID]int64

// clone copies the clock.
func (v VC) clone() VC {
	out := make(VC, len(v))
	for g, t := range v {
		out[g] = t
	}
	return out
}

// join folds other into v (pointwise max).
func (v VC) join(other VC) {
	for g, t := range other {
		if t > v[g] {
			v[g] = t
		}
	}
}

// leq reports whether v happens-before-or-equals other (pointwise ≤).
func (v VC) leq(other VC) bool {
	for g, t := range v {
		if t > other[g] {
			return false
		}
	}
	return true
}

// access is one recorded shared-variable access.
type access struct {
	g     trace.GoID
	write bool
	file  string
	line  int
	name  string
	ts    int64
	vc    VC
}

func (a access) kind() string {
	if a.write {
		return "write"
	}
	return "read"
}

// Race is one detected data race: a pair of unordered accesses, at least
// one of them a write.
type Race struct {
	Var    trace.ResID
	Name   string
	First  Conflict
	Second Conflict
}

// Conflict is one side of a race.
type Conflict struct {
	G    trace.GoID
	Kind string // "read" or "write"
	File string
	Line int
	Ts   int64
}

// String renders the race report in the familiar two-sided format.
func (r Race) String() string {
	return fmt.Sprintf("DATA RACE on %q (r%d): %s by g%d at %s:%d (ts %d) unordered with %s by g%d at %s:%d (ts %d)",
		r.Name, r.Var,
		r.First.Kind, r.First.G, r.First.File, r.First.Line, r.First.Ts,
		r.Second.Kind, r.Second.G, r.Second.File, r.Second.Line, r.Second.Ts)
}

// Check replays the trace and returns every data race on Shared cells,
// ordered by the second access's timestamp. Duplicate pairs over the same
// (variable, first-location, second-location) are reported once.
func Check(tr *trace.Trace) []Race {
	if tr == nil {
		return nil
	}
	clocks := map[trace.GoID]VC{}
	clockOf := func(g trace.GoID) VC {
		if c, ok := clocks[g]; ok {
			return c
		}
		c := VC{}
		clocks[g] = c
		return c
	}

	lockVC := map[trace.ResID]VC{}   // released-lock clocks
	closeVC := map[trace.ResID]VC{}  // channel-close clocks
	sendVC := map[trace.ResID][]VC{} // FIFO of send clocks per channel
	wgVC := map[trace.ResID]VC{}     // WaitGroup Done accumulation

	// Access history per variable: the last write plus reads since.
	lastWrite := map[trace.ResID]*access{}
	reads := map[trace.ResID][]access{}

	var races []Race
	seen := map[string]bool{}
	report := func(res trace.ResID, a, b access) {
		key := fmt.Sprintf("%d|%s:%d|%s:%d", res, a.file, a.line, b.file, b.line)
		if seen[key] {
			return
		}
		seen[key] = true
		races = append(races, Race{
			Var:    res,
			Name:   b.name,
			First:  Conflict{G: a.g, Kind: a.kind(), File: a.file, Line: a.line, Ts: a.ts},
			Second: Conflict{G: b.g, Kind: b.kind(), File: b.file, Line: b.line, Ts: b.ts},
		})
	}

	for _, e := range tr.Events {
		vc := clockOf(e.G)
		vc[e.G]++

		switch e.Type {
		case trace.EvGoCreate:
			child := vc.clone()
			child[e.Peer] = child[e.Peer] + 1
			clocks[e.Peer] = child
		case trace.EvGoUnblock:
			if e.Peer != 0 && e.Peer != e.G {
				clockOf(e.Peer).join(vc)
			}
		case trace.EvGoBlock:
			// A parked sender's pre-park clock is what the eventual
			// receiver must inherit; its own ChanSend event is only
			// emitted after it wakes, too late for FIFO alignment.
			if e.BlockReason() == trace.BlockSend {
				sendVC[e.Res] = append(sendVC[e.Res], vc.clone())
			}
		case trace.EvChanSend:
			// Direct handoffs to a parked receiver (Peer != 0) are covered
			// by the EvGoUnblock edge; post-wake sends (Blocked) already
			// pushed their clock at park time.
			if !e.Blocked && e.Peer == 0 {
				sendVC[e.Res] = append(sendVC[e.Res], vc.clone())
			}
		case trace.EvChanRecv:
			// A receiver that parked got its value by direct delivery and
			// its ordering via EvGoUnblock; only completed-in-place
			// receives consume a queued send clock.
			if !e.Blocked && e.Aux == 1 {
				if q := sendVC[e.Res]; len(q) > 0 {
					vc.join(q[0])
					sendVC[e.Res] = q[1:]
				}
			}
			if e.Aux == 0 { // receive observed the close
				if cvc, ok := closeVC[e.Res]; ok {
					vc.join(cvc)
				}
			}
		case trace.EvSelectCase:
			// Select clauses mirror the plain-channel rules; blocked
			// clauses rely on the EvGoUnblock edge alone.
			if e.Blocked {
				break
			}
			if e.Str == "send" && e.Peer == 0 {
				sendVC[e.Res] = append(sendVC[e.Res], vc.clone())
			}
			if e.Str == "recv" {
				if q := sendVC[e.Res]; len(q) > 0 {
					vc.join(q[0])
					sendVC[e.Res] = q[1:]
				}
			}
		case trace.EvChanClose:
			closeVC[e.Res] = vc.clone()
		case trace.EvMutexUnlock, trace.EvRWUnlock, trace.EvRUnlock:
			acc, ok := lockVC[e.Res]
			if !ok {
				acc = VC{}
				lockVC[e.Res] = acc
			}
			acc.join(vc)
		case trace.EvMutexLock, trace.EvRWLock, trace.EvRLock:
			if acc, ok := lockVC[e.Res]; ok {
				vc.join(acc)
			}
		case trace.EvWgAdd:
			if e.Aux < 0 {
				acc, ok := wgVC[e.Res]
				if !ok {
					acc = VC{}
					wgVC[e.Res] = acc
				}
				acc.join(vc)
			}
		case trace.EvWgWait:
			if acc, ok := wgVC[e.Res]; ok {
				vc.join(acc)
			}
		case trace.EvVarRead:
			a := access{g: e.G, write: false, file: e.File, line: e.Line, name: e.Str, ts: e.Ts, vc: vc.clone()}
			if w := lastWrite[e.Res]; w != nil && w.g != a.g && !w.vc.leq(a.vc) {
				report(e.Res, *w, a)
			}
			reads[e.Res] = append(reads[e.Res], a)
		case trace.EvVarWrite:
			a := access{g: e.G, write: true, file: e.File, line: e.Line, name: e.Str, ts: e.Ts, vc: vc.clone()}
			if w := lastWrite[e.Res]; w != nil && w.g != a.g && !w.vc.leq(a.vc) {
				report(e.Res, *w, a)
			}
			for _, r := range reads[e.Res] {
				if r.g != a.g && !r.vc.leq(a.vc) {
					report(e.Res, r, a)
				}
			}
			w := a
			lastWrite[e.Res] = &w
			reads[e.Res] = nil
		}
	}
	sort.Slice(races, func(i, j int) bool { return races[i].Second.Ts < races[j].Second.Ts })
	return races
}
