// Package race is the offline happens-before data-race checker — the
// reproduction of the paper's -race option, built on the ECT instead of
// the native race runtime.
//
// The vector-clock core lives in internal/hb (it is shared with the
// predictive blocking detector and the systematic explorer's schedule
// pruning); this package keeps only what is race-specific: the access
// history per Shared cell and the unordered-pair check. See the hb
// package docs for the synchronization edge rules.
//
// Two accesses to the same Shared cell race when at least one is a write
// and neither happens-before the other. The virtual runtime serializes
// execution, so races never manifest as torn memory — they are exactly
// the unordered pairs this checker reports.
package race

import (
	"fmt"
	"sort"

	"goat/internal/hb"
	"goat/internal/trace"
)

// VC is the vector-clock type, re-exported for compatibility; the
// implementation lives in internal/hb.
type VC = hb.VC

// access is one recorded shared-variable access.
type access struct {
	g     trace.GoID
	write bool
	file  string
	line  int
	name  string
	ts    int64
	vc    VC
}

func (a access) kind() string {
	if a.write {
		return "write"
	}
	return "read"
}

// Race is one detected data race: a pair of unordered accesses, at least
// one of them a write.
type Race struct {
	Var    trace.ResID
	Name   string
	First  Conflict
	Second Conflict
}

// Conflict is one side of a race.
type Conflict struct {
	G    trace.GoID
	Kind string // "read" or "write"
	File string
	Line int
	Ts   int64
}

// String renders the race report in the familiar two-sided format.
func (r Race) String() string {
	return fmt.Sprintf("DATA RACE on %q (r%d): %s by g%d at %s:%d (ts %d) unordered with %s by g%d at %s:%d (ts %d)",
		r.Name, r.Var,
		r.First.Kind, r.First.G, r.First.File, r.First.Line, r.First.Ts,
		r.Second.Kind, r.Second.G, r.Second.File, r.Second.Line, r.Second.Ts)
}

// checker accumulates the access history and unordered pairs while an
// hb.Engine drives the clocks.
type checker struct {
	// Access history per variable: the last write plus reads since.
	lastWrite map[trace.ResID]*access
	reads     map[trace.ResID][]access

	races []Race
	seen  map[string]bool
}

func newChecker() *checker {
	return &checker{
		lastWrite: map[trace.ResID]*access{},
		reads:     map[trace.ResID][]access{},
		seen:      map[string]bool{},
	}
}

func (c *checker) report(res trace.ResID, a, b access) {
	key := fmt.Sprintf("%d|%s:%d|%s:%d", res, a.file, a.line, b.file, b.line)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.races = append(c.races, Race{
		Var:    res,
		Name:   b.name,
		First:  Conflict{G: a.g, Kind: a.kind(), File: a.file, Line: a.line, Ts: a.ts},
		Second: Conflict{G: b.g, Kind: b.kind(), File: b.file, Line: b.line, Ts: b.ts},
	})
}

// observe is the hb.Engine observer: it sees every clock-ticking event
// with the acting goroutine's post-edge clock and records Shared-cell
// accesses.
func (c *checker) observe(e trace.Event, vc hb.VC) {
	switch e.Type {
	case trace.EvVarRead:
		a := access{g: e.G, write: false, file: e.File, line: e.Line, name: e.Str, ts: e.Ts, vc: vc.Clone()}
		if w := c.lastWrite[e.Res]; w != nil && w.g != a.g && !w.vc.Leq(a.vc) {
			c.report(e.Res, *w, a)
		}
		c.reads[e.Res] = append(c.reads[e.Res], a)
	case trace.EvVarWrite:
		a := access{g: e.G, write: true, file: e.File, line: e.Line, name: e.Str, ts: e.Ts, vc: vc.Clone()}
		if w := c.lastWrite[e.Res]; w != nil && w.g != a.g && !w.vc.Leq(a.vc) {
			c.report(e.Res, *w, a)
		}
		for _, r := range c.reads[e.Res] {
			if r.g != a.g && !r.vc.Leq(a.vc) {
				c.report(e.Res, r, a)
			}
		}
		w := a
		c.lastWrite[e.Res] = &w
		c.reads[e.Res] = nil
	}
}

// Check replays the trace and returns every data race on Shared cells,
// ordered by the second access's timestamp. Duplicate pairs over the same
// (variable, first-location, second-location) are reported once.
func Check(tr *trace.Trace) []Race {
	if tr == nil {
		return nil
	}
	c := newChecker()
	en := hb.NewEngine(hb.Full)
	en.Observer = c.observe
	for _, e := range tr.Events {
		en.Event(e)
	}
	sort.Slice(c.races, func(i, j int) bool { return c.races[i].Second.Ts < c.races[j].Second.Ts })
	return c.races
}
