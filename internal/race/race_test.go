package race

import (
	"strings"
	"testing"
	"testing/quick"

	"goat/internal/conc"
	"goat/internal/sim"
)

func runProg(seed int64, fn func(*sim.G)) []Race {
	r := sim.Run(sim.Options{Seed: seed, PreemptProb: -1}, fn)
	return Check(r.Trace)
}

func TestUnsynchronizedWritesRace(t *testing.T) {
	races := runProg(0, func(g *sim.G) {
		x := conc.NewShared(g, "counter", 0)
		wg := conc.NewWaitGroup(g)
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("w", func(c *sim.G) {
				x.Store(c, 1)
				wg.Done(c)
			})
		}
		wg.Wait(g)
	})
	if len(races) == 0 {
		t.Fatal("unsynchronized concurrent writes not reported")
	}
	r := races[0]
	if r.Name != "counter" || r.First.Kind != "write" || r.Second.Kind != "write" {
		t.Fatalf("race = %+v", r)
	}
	if !strings.Contains(r.String(), "DATA RACE") {
		t.Fatalf("report = %q", r.String())
	}
}

func TestReadWriteRace(t *testing.T) {
	races := runProg(0, func(g *sim.G) {
		x := conc.NewShared(g, "flag", 0)
		done := conc.NewChan[int](g, 0)
		g.Go("reader", func(c *sim.G) {
			x.Load(c)
			done.Send(c, 1)
		})
		x.Store(g, 1) // unordered with the reader's Load
		done.Recv(g)
	})
	if len(races) == 0 {
		t.Fatal("read/write race not reported")
	}
}

func TestMutexProtectedNoRace(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		races := runProg(seed, func(g *sim.G) {
			x := conc.NewShared(g, "x", 0)
			mu := conc.NewMutex(g)
			wg := conc.NewWaitGroup(g)
			for i := 0; i < 3; i++ {
				wg.Add(g, 1)
				g.Go("w", func(c *sim.G) {
					mu.Lock(c)
					x.Update(c, func(v int) int { return v + 1 })
					mu.Unlock(c)
					wg.Done(c)
				})
			}
			wg.Wait(g)
		})
		if len(races) != 0 {
			t.Fatalf("seed %d: false positive on mutex-protected data: %v", seed, races)
		}
	}
}

func TestChannelSynchronizedNoRace(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		races := runProg(seed, func(g *sim.G) {
			x := conc.NewShared(g, "x", 0)
			ch := conc.NewChan[int](g, 0)
			g.Go("producer", func(c *sim.G) {
				x.Store(c, 42)
				ch.Send(c, 1) // happens-before the main read
			})
			ch.Recv(g)
			if x.Load(g) != 42 {
				t.Error("value lost")
			}
		})
		if len(races) != 0 {
			t.Fatalf("seed %d: false positive across channel sync: %v", seed, races)
		}
	}
}

func TestBufferedChannelCarriesHB(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		races := runProg(seed, func(g *sim.G) {
			x := conc.NewShared(g, "x", 0)
			ch := conc.NewChan[int](g, 2)
			g.Go("producer", func(c *sim.G) {
				x.Store(c, 1)
				ch.Send(c, 1)
				x.Store(c, 2)
				ch.Send(c, 2)
			})
			ch.Recv(g)
			ch.Recv(g)
			x.Load(g)
		})
		if len(races) != 0 {
			t.Fatalf("seed %d: false positive across buffered channel: %v", seed, races)
		}
	}
}

func TestCloseCarriesHB(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		races := runProg(seed, func(g *sim.G) {
			x := conc.NewShared(g, "x", 0)
			done := conc.NewChan[int](g, 0)
			g.Go("init", func(c *sim.G) {
				x.Store(c, 9)
				done.Close(c)
			})
			done.Recv(g) // observes the close
			x.Load(g)
		})
		if len(races) != 0 {
			t.Fatalf("seed %d: false positive across close: %v", seed, races)
		}
	}
}

func TestWaitGroupCarriesHB(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		races := runProg(seed, func(g *sim.G) {
			x := conc.NewShared(g, "x", 0)
			wg := conc.NewWaitGroup(g)
			wg.Add(g, 2)
			for i := 0; i < 2; i++ {
				g.Go("w", func(c *sim.G) {
					c.Yield()
					wg.Done(c)
				})
			}
			g.Go("writerThenDone", func(c *sim.G) {
				x.Store(c, 5)
			})
			wg.Wait(g)
			// Note: the third goroutine is NOT in the wait group — its
			// write races with this read.
			x.Load(g)
		})
		// This one is a true race by construction.
		if len(races) == 0 {
			t.Fatalf("seed %d: missed the race with the non-waited goroutine", seed)
		}
	}
}

func TestGoCreateOrdersParentBeforeChild(t *testing.T) {
	races := runProg(0, func(g *sim.G) {
		x := conc.NewShared(g, "x", 0)
		x.Store(g, 1)
		done := conc.NewChan[int](g, 0)
		g.Go("child", func(c *sim.G) {
			x.Load(c) // ordered after the parent's pre-spawn write
			done.Send(c, 1)
		})
		done.Recv(g)
	})
	if len(races) != 0 {
		t.Fatalf("false positive across go-create edge: %v", races)
	}
}

func TestRacesDedupedByLocation(t *testing.T) {
	races := runProg(0, func(g *sim.G) {
		x := conc.NewShared(g, "x", 0)
		wg := conc.NewWaitGroup(g)
		for i := 0; i < 4; i++ {
			wg.Add(g, 1)
			g.Go("w", func(c *sim.G) {
				for j := 0; j < 3; j++ {
					x.Store(c, j) // same location every time
				}
				wg.Done(c)
			})
		}
		wg.Wait(g)
	})
	if len(races) == 0 {
		t.Fatal("race not reported")
	}
	if len(races) > 4 {
		t.Fatalf("duplicate race reports: %d", len(races))
	}
}

func TestCheckNilTrace(t *testing.T) {
	if Check(nil) != nil {
		t.Fatal("nil trace produced races")
	}
}

// Property: a mutex-protected counter never produces a race report, for
// arbitrary seeds, worker counts and yield bounds.
func TestQuickLockedCounterRaceFree(t *testing.T) {
	f := func(seed int64, workers, delays uint8) bool {
		n := int(workers%4) + 1
		r := sim.Run(sim.Options{Seed: seed, Delays: int(delays % 4)}, func(g *sim.G) {
			x := conc.NewShared(g, "x", 0)
			mu := conc.NewMutex(g)
			wg := conc.NewWaitGroup(g)
			for i := 0; i < n; i++ {
				wg.Add(g, 1)
				g.Go("w", func(c *sim.G) {
					mu.Lock(c)
					x.Update(c, func(v int) int { return v + 1 })
					mu.Unlock(c)
					wg.Done(c)
				})
			}
			wg.Wait(g)
		})
		return len(Check(r.Trace)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: two unsynchronized writers are always reported, whatever the
// schedule (the race is schedule-independent in HB terms).
func TestQuickUnsyncedAlwaysRaces(t *testing.T) {
	f := func(seed int64, delays uint8) bool {
		r := sim.Run(sim.Options{Seed: seed, Delays: int(delays % 4)}, func(g *sim.G) {
			x := conc.NewShared(g, "x", 0)
			done := conc.NewChan[int](g, 2)
			for i := 0; i < 2; i++ {
				g.Go("w", func(c *sim.G) {
					x.Store(c, 1)
					done.Send(c, 1)
				})
			}
			done.Recv(g)
			done.Recv(g)
		})
		return len(Check(r.Trace)) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
