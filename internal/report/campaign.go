package report

import (
	"fmt"
	"strings"

	"goat/internal/harness"
)

// CampaignHealth renders the degradation summary of a Table IV campaign:
// which cells failed at the host level (quarantined panics, watchdog
// abandonments), how many retries the watchdog spent, and how much of the
// matrix stayed healthy. A fully healthy campaign renders as one line, so
// the summary can always be appended to the table output.
func CampaignHealth(t *harness.TableIV) string {
	total := 0
	for _, row := range t.Rows {
		total += len(row.Cells)
	}
	failed := t.FailedCells()
	var b strings.Builder
	if len(failed) == 0 {
		fmt.Fprintf(&b, "campaign health: all %d cells completed\n", total)
		return b.String()
	}
	fmt.Fprintf(&b, "campaign health: %d/%d cells failed (results degraded, campaign completed)\n",
		len(failed), total)
	for _, c := range failed {
		detail := c.Err
		if detail == "" {
			detail = "(no detail)"
		}
		fmt.Fprintf(&b, "  %-22s %-12s %-6s retries=%d  %s\n", c.Bug, c.Tool, c.Status, c.Retries, detail)
	}
	return b.String()
}
