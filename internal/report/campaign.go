package report

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"goat/internal/harness"
	"goat/internal/telemetry"
)

// CampaignHealth renders the degradation summary of a Table IV campaign:
// which cells failed at the host level (quarantined panics, watchdog
// abandonments), how many retries the watchdog spent, how much of the
// matrix stayed healthy, and — when the cells carry wall-clock timings —
// the per-cell latency profile (p50/p95/max) and aggregate throughput. A
// fully healthy campaign renders its summary lines only, so the output
// can always be appended to the table output.
func CampaignHealth(t *harness.TableIV) string {
	total := 0
	for _, row := range t.Rows {
		total += len(row.Cells)
	}
	failed := t.FailedCells()
	var b strings.Builder
	if len(failed) == 0 {
		fmt.Fprintf(&b, "campaign health: all %d cells completed\n", total)
		b.WriteString(cellTimingLine(t))
		return b.String()
	}
	fmt.Fprintf(&b, "campaign health: %d/%d cells failed (results degraded, campaign completed)\n",
		len(failed), total)
	for _, c := range failed {
		detail := c.Err
		if detail == "" {
			detail = "(no detail)"
		}
		if c.FlightRec != "" {
			detail += fmt.Sprintf("  [flightrec %s]", c.FlightRec)
		}
		fmt.Fprintf(&b, "  %-22s %-12s %-6s retries=%d  %s\n", c.Bug, c.Tool, c.Status, c.Retries, detail)
	}
	b.WriteString(cellTimingLine(t))
	return b.String()
}

// cellTimingLine folds every timed cell's wall clock into a histogram and
// renders the campaign's latency profile and throughput. Campaigns whose
// cells carry no timings (synthetic tables, pre-telemetry callers) render
// nothing, keeping their output byte-stable.
func cellTimingLine(t *harness.TableIV) string {
	var on atomic.Bool
	on.Store(true)
	hist := telemetry.NewHistogram(&on, telemetry.DurationBuckets)
	var execs, wall int64
	for _, row := range t.Rows {
		for _, c := range row.Cells {
			if c.Wall <= 0 {
				continue
			}
			hist.Observe(c.Wall.Nanoseconds())
			execs += int64(c.MinExecs)
			wall += c.Wall.Nanoseconds()
		}
	}
	s := hist.Snapshot()
	if s.Count == 0 {
		return ""
	}
	line := fmt.Sprintf("cell wall time: p50 %v, p95 %v, max %v over %d cells",
		time.Duration(s.Quantile(0.5)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.95)).Round(time.Microsecond),
		time.Duration(s.Max).Round(time.Microsecond),
		s.Count)
	if wall > 0 && execs > 0 {
		line += fmt.Sprintf("; %.0f runs/s", float64(execs)/(float64(wall)/float64(time.Second)))
	}
	return line + "\n"
}
