package report

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"goat/internal/gtree"
	"goat/internal/trace"
)

// HTMLTimeline renders the execution as a self-contained HTML page: one
// horizontal lane per application goroutine, one tick per concurrency
// event (colored by category, blocking events flagged), with hover
// tool-tips carrying the CU location — the shareable flavor of the
// paper's execution visualizations.
func HTMLTimeline(t *gtree.Tree, title string) string {
	nodes := t.AppNodes()
	laneOf := map[trace.GoID]int{}
	for i, n := range nodes {
		laneOf[n.ID] = i
	}
	var events []trace.Event
	for _, n := range nodes {
		for _, e := range n.Events {
			if keepInInterleaving(e.Type) {
				events = append(events, e)
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })

	const (
		laneH   = 34
		tick    = 16
		leftPad = 170
	)
	width := leftPad + (len(events)+2)*tick
	height := (len(nodes) + 1) * laneH

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: monospace; background: #fff; }
.legend span { margin-right: 14px; }
.dot { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 4px; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h3>%s</h3>\n", html.EscapeString(title))
	b.WriteString(`<div class="legend">`)
	for _, l := range []struct{ cat, color string }{
		{"Goroutine", "#888888"}, {"Channel", "#1f77b4"}, {"Sync", "#2ca02c"},
		{"Select", "#9467bd"}, {"Timer", "#bcbd22"}, {"Shared", "#17becf"}, {"blocked", "#d62728"},
	} {
		fmt.Fprintf(&b, `<span><i class="dot" style="background:%s"></i>%s</span>`, l.color, l.cat)
	}
	b.WriteString("</div>\n")
	fmt.Fprintf(&b, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`+"\n", width, height)

	for i, n := range nodes {
		y := (i + 1) * laneH
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`+"\n",
			leftPad, y, width, y)
		label := fmt.Sprintf("g%d %s", n.ID, n.Name)
		color := "#000"
		if !n.Ended() {
			color = "#d62728"
			label += " ✗"
		}
		fmt.Fprintf(&b, `<text x="4" y="%d" font-size="12" fill="%s">%s</text>`+"\n",
			y+4, color, html.EscapeString(label))
	}
	for i, e := range events {
		lane, ok := laneOf[e.G]
		if !ok {
			continue
		}
		x := leftPad + (i+1)*tick
		y := (lane+1)*laneH - 8
		color := categoryColor(e)
		tip := fmt.Sprintf("ts %d: %s", e.Ts, eventLabel(e))
		if e.File != "" {
			tip += fmt.Sprintf(" @%s:%d", e.File, e.Line)
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="16" fill="%s"><title>%s</title></rect>`+"\n",
			x, y, tick-4, color, html.EscapeString(tip))
	}
	b.WriteString("</svg>\n</body></html>\n")
	return b.String()
}

func categoryColor(e trace.Event) string {
	if e.Type == trace.EvGoBlock || e.Blocked {
		return "#d62728"
	}
	switch trace.CategoryOf(e.Type) {
	case trace.CatChannel:
		return "#1f77b4"
	case trace.CatSync:
		return "#2ca02c"
	case trace.CatSelect:
		return "#9467bd"
	case trace.CatTimer:
		return "#bcbd22"
	case trace.CatShared:
		return "#17becf"
	default:
		return "#888888"
	}
}
