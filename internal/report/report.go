// Package report renders the artifacts GoAT produces when a bug is
// detected: the executed interleaving (the paper's listing-1 style
// side-by-side view), the goroutine tree (text and DOT), the Table III
// style concurrency-usage/coverage table, and the overall detection
// report.
package report

import (
	"fmt"
	"sort"
	"strings"

	"goat/internal/cover"
	"goat/internal/cu"
	"goat/internal/detect"
	"goat/internal/gtree"
	"goat/internal/sim"
	"goat/internal/trace"
)

// Interleaving renders the executed schedule as one column per
// application goroutine, one row per event — the visualization GoAT
// attaches to bug reports. Only concurrency events are shown; lifecycle
// noise is elided. Wide programs are truncated to maxCols goroutines.
func Interleaving(t *gtree.Tree, maxCols int) string {
	nodes := t.AppNodes()
	if maxCols > 0 && len(nodes) > maxCols {
		nodes = nodes[:maxCols]
	}
	colOf := map[trace.GoID]int{}
	var header []string
	for i, n := range nodes {
		colOf[n.ID] = i
		header = append(header, fmt.Sprintf("g%d %s", n.ID, n.Name))
	}
	var events []trace.Event
	for _, n := range nodes {
		for _, e := range n.Events {
			if keepInInterleaving(e.Type) {
				events = append(events, e)
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })

	const colWidth = 26
	var b strings.Builder
	for i, h := range header {
		_ = i
		fmt.Fprintf(&b, "%-*s", colWidth, h)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", colWidth*len(header)))
	b.WriteString("\n")
	for _, e := range events {
		col := colOf[e.G]
		label := eventLabel(e)
		b.WriteString(strings.Repeat(" ", colWidth*col))
		fmt.Fprintf(&b, "%-*s\n", colWidth, label)
	}
	return b.String()
}

func keepInInterleaving(t trace.Type) bool {
	switch t {
	case trace.EvGoStart, trace.EvGoUnblock, trace.EvGoPreempt, trace.EvGoSched:
		return false
	default:
		return t.Valid()
	}
}

func eventLabel(e trace.Event) string {
	switch e.Type {
	case trace.EvGoBlock:
		return fmt.Sprintf("[blocked:%s]", e.BlockReason())
	case trace.EvGoCreate:
		return fmt.Sprintf("go %s", e.Str)
	case trace.EvGoEnd:
		return "return"
	case trace.EvGoPanic:
		return "panic"
	case trace.EvSelect:
		if e.Aux < 0 {
			return "select->default"
		}
		return fmt.Sprintf("select->case%d", e.Aux)
	default:
		s := strings.ToLower(e.Type.String())
		if e.Line > 0 {
			s += fmt.Sprintf(" @%d", e.Line)
		}
		if e.Blocked {
			s += "*"
		}
		return s
	}
}

// DOT renders the goroutine tree in Graphviz format, coloring leaked
// goroutines red (the paper's figure-3 visualization).
func DOT(t *gtree.Tree) string {
	var b strings.Builder
	b.WriteString("digraph goroutines {\n  node [shape=box, fontname=\"monospace\"];\n")
	var rec func(n *gtree.Node)
	rec = func(n *gtree.Node) {
		attrs := ""
		label := fmt.Sprintf("g%d %s", n.ID, n.Name)
		if n.System {
			attrs = ", style=dashed"
		} else if !n.Ended() {
			last := n.LastEvent()
			if last.Type == trace.EvGoBlock {
				label += fmt.Sprintf("\\nLEAKED blocked:%s @%s:%d", last.BlockReason(), last.File, last.Line)
			} else {
				label += "\\nLEAKED"
			}
			attrs = ", color=red, fontcolor=red"
		}
		fmt.Fprintf(&b, "  g%d [label=\"%s\"%s];\n", n.ID, label, attrs)
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  g%d -> g%d;\n", n.ID, c.ID)
			rec(c)
		}
	}
	rec(t.Root)
	b.WriteString("}\n")
	return b.String()
}

// CoverageTable renders the paper's Table III: one row per concurrency
// usage, its requirements, and which are covered in the model.
func CoverageTable(static *cu.Model, m *cover.Model) string {
	covered := map[string][]cover.Requirement{}
	uncovered := map[string][]cover.Requirement{}
	for _, r := range m.Covered() {
		covered[r.CU.Loc()] = append(covered[r.CU.Loc()], r)
	}
	for _, r := range m.Uncovered() {
		uncovered[r.CU.Loc()] = append(uncovered[r.CU.Loc()], r)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-10s %-44s %s\n", "CU", "Kind", "Covered requirements", "Uncovered")
	render := func(rs []cover.Requirement) string {
		var parts []string
		for _, r := range rs {
			p := r.Aspect.String()
			if r.Case != cover.NoCase {
				p = fmt.Sprintf("case%d-%s-%s", r.Case, r.Dir, r.Aspect)
			} else if r.Dir == "default" {
				p = "default"
			}
			parts = append(parts, p)
		}
		sort.Strings(parts)
		return strings.Join(dedup(parts), ",")
	}
	var locs []string
	if static != nil {
		for _, c := range static.All() {
			locs = append(locs, c.Loc())
		}
	}
	for loc := range covered {
		locs = append(locs, loc)
	}
	for loc := range uncovered {
		locs = append(locs, loc)
	}
	locs = dedup(locs)
	sort.Strings(locs)
	for _, loc := range locs {
		kind := ""
		if static != nil {
			if cus := byLoc(static, loc); len(cus) > 0 {
				var ks []string
				for _, c := range cus {
					ks = append(ks, c.Kind.String())
				}
				kind = strings.Join(dedup(ks), ",")
			}
		}
		if kind == "" {
			kind = kindFromReqs(append(covered[loc], uncovered[loc]...))
		}
		fmt.Fprintf(&b, "%-22s %-10s %-44s %s\n", loc, kind, render(covered[loc]), render(uncovered[loc]))
	}
	fmt.Fprintf(&b, "\noverall coverage: %d/%d (%.1f%%) over %d run(s)\n",
		m.CoveredCount(), m.Total(), m.Percent(), m.Runs())
	return b.String()
}

func byLoc(static *cu.Model, loc string) []cu.CU {
	var out []cu.CU
	for _, c := range static.All() {
		if c.Loc() == loc {
			out = append(out, c)
		}
	}
	return out
}

func kindFromReqs(rs []cover.Requirement) string {
	var ks []string
	for _, r := range rs {
		ks = append(ks, r.CU.Kind.String())
	}
	ks = dedup(ks)
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// Detection renders the full bug report for one execution: verdict,
// leaked goroutines, tree, and interleaving.
func Detection(r *sim.Result, d detect.Detection) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== GoAT report: %s ===\n", d.Verdict)
	fmt.Fprintf(&b, "tool: %s\ndetail: %s\nseed: %d  steps: %d\n", d.Tool, d.Detail, r.Seed, r.Steps)
	if len(r.Leaked) > 0 {
		b.WriteString("\nleaked goroutines:\n")
		for _, l := range r.Leaked {
			fmt.Fprintf(&b, "  g%d %s (created %s:%d) — %s", l.ID, l.Name, l.CreateFile, l.CreateLine, l.State)
			if l.State == sim.StateBlocked {
				fmt.Fprintf(&b, " on %s", l.Reason)
			}
			b.WriteString("\n")
		}
	}
	if r.Trace != nil {
		if tree, err := gtree.Build(r.Trace); err == nil {
			b.WriteString("\ngoroutine tree:\n")
			b.WriteString(tree.String())
			b.WriteString("\nexecuted interleaving (concurrency events):\n")
			b.WriteString(Interleaving(tree, 6))
		}
	}
	return b.String()
}
