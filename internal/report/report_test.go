package report

import (
	"strings"
	"testing"

	"goat/internal/cover"
	"goat/internal/cu"
	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/gtree"
	"goat/internal/sim"
)

// leakRun produces a deterministic leaking execution of moby_33293.
func leakRun(t *testing.T) (*sim.Result, *gtree.Tree) {
	t.Helper()
	k, ok := goker.ByID("moby_33293")
	if !ok {
		t.Fatal("kernel missing")
	}
	r := goker.Run(k, sim.Options{Seed: 1, PreemptProb: -1})
	if r.Outcome != sim.OutcomeLeak {
		t.Fatalf("outcome = %v, want PDL", r.Outcome)
	}
	tree, err := gtree.Build(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return r, tree
}

func TestInterleavingColumns(t *testing.T) {
	_, tree := leakRun(t)
	s := Interleaving(tree, 6)
	if !strings.Contains(s, "g1 main") || !strings.Contains(s, "collector") {
		t.Fatalf("interleaving header wrong:\n%s", s)
	}
	if !strings.Contains(s, "blocked:chan-send") {
		t.Fatalf("interleaving missing the blocking event:\n%s", s)
	}
	// Column discipline: the collector's events must be indented.
	var sawIndented bool
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, " ") && strings.Contains(line, "blocked") {
			sawIndented = true
		}
	}
	if !sawIndented {
		t.Fatalf("second goroutine's events not in its own column:\n%s", s)
	}
}

func TestInterleavingTruncatesColumns(t *testing.T) {
	r := sim.Run(sim.Options{PreemptProb: -1}, func(g *sim.G) {
		for i := 0; i < 8; i++ {
			g.Go("w", func(c *sim.G) {})
		}
		for i := 0; i < 8; i++ {
			g.Yield()
		}
	})
	tree, err := gtree.Build(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	s := Interleaving(tree, 3)
	header := strings.SplitN(s, "\n", 2)[0]
	if strings.Count(header, "g") > 3 {
		t.Fatalf("maxCols not honored: %q", header)
	}
}

func TestDOTMarksLeaks(t *testing.T) {
	_, tree := leakRun(t)
	s := DOT(tree)
	for _, want := range []string{"digraph goroutines", "g1 ->", "LEAKED", "color=red"} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT missing %q:\n%s", want, s)
		}
	}
}

func TestDOTDashedSystemNodes(t *testing.T) {
	r := sim.Run(sim.Options{PreemptProb: -1}, func(g *sim.G) {
		g.GoSystem("tick", func(c *sim.G) {})
		g.Yield()
	})
	tree, err := gtree.Build(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(DOT(tree), "style=dashed") {
		t.Fatal("system node not dashed")
	}
}

func TestCoverageTable(t *testing.T) {
	_, tree := leakRun(t)
	m := cover.NewModel(nil)
	m.AddRun(tree)
	s := CoverageTable(nil, m)
	for _, want := range []string{"CU", "overall coverage", "%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("coverage table missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "moby.go") {
		t.Fatalf("coverage table missing source attribution:\n%s", s)
	}
}

func TestCoverageTableWithStaticModel(t *testing.T) {
	static := cu.NewModel([]cu.CU{{File: "dead.go", Line: 99, Kind: cu.KindSend}})
	m := cover.NewModel(static)
	s := CoverageTable(static, m)
	if !strings.Contains(s, "dead.go:99") || !strings.Contains(s, "send") {
		t.Fatalf("static CU missing from table:\n%s", s)
	}
}

func TestDetectionReport(t *testing.T) {
	r, _ := leakRun(t)
	d := (detect.Goat{}).Detect(r)
	s := Detection(r, d)
	for _, want := range []string{"GoAT report", "PDL", "leaked goroutines", "goroutine tree", "interleaving"} {
		if !strings.Contains(s, want) {
			t.Fatalf("detection report missing %q:\n%s", want, s)
		}
	}
}

func TestTable3PerRunColumns(t *testing.T) {
	k, _ := goker.ByID("moby_28462")
	m := cover.NewModel(nil)
	for run := 0; run < 2; run++ {
		r := goker.Run(k, sim.Options{Seed: int64(run), Delays: 2})
		tree, err := gtree.Build(r.Trace)
		if err != nil {
			t.Fatal(err)
		}
		m.AddRun(tree)
	}
	s := Table3(m)
	for _, want := range []string{"run#1", "run#2", "overall", "moby.go", "overall coverage"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table3 missing %q:\n%s", want, s)
		}
	}
	// A covered requirement must carry at least one Y mark.
	if !strings.Contains(s, "Y") {
		t.Fatalf("no coverage marks rendered:\n%s", s)
	}
}

func TestHTMLTimeline(t *testing.T) {
	_, tree := leakRun(t)
	s := HTMLTimeline(tree, "moby_33293 leak")
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "g1 main", "collector", "#d62728", "</html>"} {
		if !strings.Contains(s, want) {
			t.Fatalf("HTML timeline missing %q", want)
		}
	}
	// The leaked goroutine's lane label is flagged.
	if !strings.Contains(s, "✗") {
		t.Fatal("leaked goroutine not flagged in lane label")
	}
	// Tooltips carry CU locations.
	if !strings.Contains(s, "moby.go") {
		t.Fatal("tooltips missing CU attribution")
	}
}
