package report

import (
	"fmt"
	"sort"
	"strings"

	"goat/internal/cover"
)

// Table3 renders the paper's Table III: one row per requirement, with a
// cumulative "covered by run #k" column per accumulated run and the
// overall column. Rows group by concurrency usage in source order.
func Table3(m *cover.Model) string {
	runs := m.Runs()
	if runs > 6 {
		runs = 6 // keep the table printable; later runs fold into overall
	}
	reqs := append(m.Covered(), m.Uncovered()...)
	sort.Slice(reqs, func(i, j int) bool {
		a, b := reqs[i], reqs[j]
		if a.CU.File != b.CU.File {
			return a.CU.File < b.CU.File
		}
		if a.CU.Line != b.CU.Line {
			return a.CU.Line < b.CU.Line
		}
		return a.Key() < b.Key()
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-10s %-28s", "CU", "Kind", "Requirement")
	for r := 1; r <= runs; r++ {
		fmt.Fprintf(&b, " run#%-3d", r)
	}
	fmt.Fprintf(&b, " %s\n", "overall")

	covered := map[string]bool{}
	for _, r := range m.Covered() {
		covered[r.Key()] = true
	}
	lastLoc := ""
	for _, r := range reqs {
		loc, kind := r.CU.Loc(), r.CU.Kind.String()
		if loc == lastLoc {
			loc, kind = "", ""
		} else {
			lastLoc = r.CU.Loc()
		}
		label := r.Aspect.String()
		if r.Case != cover.NoCase {
			label = fmt.Sprintf("case%d-%s-%s", r.Case, r.Dir, r.Aspect)
		} else if r.Dir == "default" {
			label = "default"
		}
		fmt.Fprintf(&b, "%-22s %-10s %-28s", loc, kind, label)
		first := m.FirstCoveredRun(r)
		for run := 1; run <= runs; run++ {
			mark := " "
			if covered[r.Key()] && first > 0 && first <= run {
				mark = "Y"
			}
			fmt.Fprintf(&b, " %-7s", mark)
		}
		overall := " "
		if covered[r.Key()] {
			overall = "Y"
		}
		fmt.Fprintf(&b, " %s\n", overall)
	}
	fmt.Fprintf(&b, "\noverall coverage: %d/%d (%.1f%%) over %d run(s)\n",
		m.CoveredCount(), m.Total(), m.Percent(), m.Runs())
	return b.String()
}
