//go:build amd64

package sim

// fpCaller selects the frame-pointer fast path for call-site capture on
// architectures where the Go compiler always maintains frame pointers.
const fpCaller = true

// fpCallerPC returns the return PC `skip` physical frames above the
// caller of Caller (implemented in caller_amd64.s).
func fpCallerPC(skip int) uintptr
