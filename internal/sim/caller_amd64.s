//go:build amd64

#include "textflag.h"

// func fpCallerPC(skip int) uintptr
//
// Walks the frame-pointer chain instead of the runtime unwinder: Go on
// amd64 always maintains BP as a frame pointer, with [BP] holding the
// caller's saved BP and [BP+8] the return PC into the caller. Inside
// this NOFRAME leaf, BP is still Caller's frame pointer, so after `skip`
// hops the loaded slot is the return PC runtime.Callers(skip+2, ...)
// would report — at two loads per frame instead of a pcvalue-decoding
// unwind. See Caller for the no-inline contract this relies on.
TEXT ·fpCallerPC(SB), NOSPLIT|NOFRAME, $0-16
	MOVQ skip+0(FP), CX
	MOVQ BP, AX
walk:
	TESTQ CX, CX
	JZ   done
	MOVQ 0(AX), AX
	DECQ CX
	JMP  walk
done:
	MOVQ 8(AX), AX
	MOVQ AX, ret+8(FP)
	RET
