//go:build !amd64

package sim

// fpCaller: no frame-pointer fast path on this architecture; Caller uses
// the portable runtime unwinder.
const fpCaller = false

func fpCallerPC(skip int) uintptr { return 0 }
