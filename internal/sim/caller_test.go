package sim

import (
	"path/filepath"
	"runtime"
	"testing"
)

// callerViaRuntime is the ground truth: the portable unwinder resolving
// the same logical frame Caller(skip) reports.
//
//go:noinline
func callerViaRuntime(skip int) (string, int) {
	_, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return "?", 0
	}
	return filepath.Base(file), line
}

// depth1 mimics a concurrency primitive: a non-inlinable function whose
// caller's site must be attributed.
//
//go:noinline
func depth1() (string, int, string, int) {
	f1, l1 := Caller(1)
	f2, l2 := callerViaRuntime(1)
	return f1, l1, f2, l2
}

//go:noinline
func depth2() (string, int, string, int) {
	return depth1()
}

// TestCallerMatchesRuntime proves the frame-pointer fast path resolves
// the same call sites as the runtime unwinder. If an architecture's
// frame layout assumption in fpCallerPC were wrong, or inlining broke
// the physical-frame contract, the sites would diverge here.
func TestCallerMatchesRuntime(t *testing.T) {
	// skip=0: the immediate caller (this function).
	f1, l1 := Caller(0)
	f2, l2 := callerViaRuntime(0)
	// The two capture calls are on adjacent lines; compare files exactly
	// and lines within the two-line span.
	if f1 != f2 || l1 != l2-1 {
		t.Errorf("Caller(0) = %s:%d, runtime says %s:%d (want same file, line-1)", f1, l1, f2, l2)
	}

	// skip=1 through a primitive-shaped frame: both captures inside
	// depth1 must attribute to the same site in this function.
	g1, m1, g2, m2 := depth1()
	if g1 != g2 || m1 != m2 {
		t.Errorf("Caller(1) via depth1 = %s:%d, runtime says %s:%d", g1, m1, g2, m2)
	}

	// One more physical frame: the sites must now be inside depth2.
	h1, n1, h2, n2 := depth2()
	if h1 != h2 || n1 != n2 {
		t.Errorf("Caller(1) via depth2 = %s:%d, runtime says %s:%d", h1, n1, h2, n2)
	}
	if h1 != "caller_test.go" {
		t.Errorf("Caller(1) via depth2 attributed to %s:%d, want caller_test.go", h1, n1)
	}
}
