package sim

import (
	"errors"
	"math/rand"
)

// A decider supplies every nondeterministic choice the virtual runtime
// makes: run-queue picks, handler yield/preempt draws, and select-case
// choices. Abstracting it lets an execution be recorded as a portable
// decision script and replayed exactly, independent of RNG internals —
// the debugging artifact a detected schedule is shipped as.
type decider interface {
	// Intn draws a uniform integer in [0, n).
	Intn(n int) int
	// Chance draws a biased coin with probability p.
	Chance(p float64) bool
}

// randDecider draws from a seeded PRNG (the default).
type randDecider struct {
	rng *rand.Rand
}

func (d *randDecider) Intn(n int) int        { return d.rng.Intn(n) }
func (d *randDecider) Chance(p float64) bool { return d.rng.Float64() < p }

// recorder wraps another decider and logs every decision.
//
// Script encoding: Intn(n) results are stored as the drawn value (≥ 0);
// Chance results as 1 (hit) / 0 (miss). Replay validates only structure,
// not ranges, so a script replayed against a different program may fail.
type recorder struct {
	inner decider
	log   []int64
}

func (d *recorder) Intn(n int) int {
	v := d.inner.Intn(n)
	d.log = append(d.log, int64(v))
	return v
}

func (d *recorder) Chance(p float64) bool {
	v := d.inner.Chance(p)
	bit := int64(0)
	if v {
		bit = 1
	}
	d.log = append(d.log, bit)
	return v
}

// ErrScriptExhausted reports a replay that ran out of recorded decisions
// (the replayed program diverged from the recording).
var ErrScriptExhausted = errors.New("sim: replay script exhausted")

// scriptDecider replays a recorded decision log. When the script runs dry
// it falls back to the seeded PRNG and flags the divergence.
type scriptDecider struct {
	script   []int64
	pos      int
	fallback decider
	diverged bool
}

func (d *scriptDecider) next() (int64, bool) {
	if d.pos >= len(d.script) {
		d.diverged = true
		return 0, false
	}
	v := d.script[d.pos]
	d.pos++
	return v, true
}

func (d *scriptDecider) Intn(n int) int {
	v, ok := d.next()
	if !ok {
		return d.fallback.Intn(n)
	}
	if v < 0 || v >= int64(n) {
		// Structural divergence: clamp but mark it.
		d.diverged = true
		if v < 0 {
			return 0
		}
		return int(v) % n
	}
	return int(v)
}

func (d *scriptDecider) Chance(p float64) bool {
	v, ok := d.next()
	if !ok {
		return d.fallback.Chance(p)
	}
	return v != 0
}
