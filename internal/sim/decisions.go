package sim

import (
	"errors"
)

// A decider supplies every nondeterministic choice the virtual runtime
// makes: run-queue picks, handler yield/preempt draws, and select-case
// choices. Abstracting it lets an execution be recorded as a portable
// decision script and replayed exactly, independent of RNG internals —
// the debugging artifact a detected schedule is shipped as.
type decider interface {
	// Intn draws a uniform integer in [0, n).
	Intn(n int) int
	// Chance draws a biased coin with probability p.
	Chance(p float64) bool
}

// prng is the seeded generator behind the default decider: a splitmix64
// stream. Campaigns construct one scheduler per run, so seeding must be
// O(1) — math/rand's rngSource initializes a 607-word feedback table per
// Seed call, which profiled as ~28% of a campaign cell. A decision draw
// is one add and three xor-multiply mixes, and the stream is a pure
// function of the seed, so (program, seed, options) determinism holds
// exactly as before.
type prng struct {
	state uint64
}

const splitmixGamma = 0x9E3779B97F4A7C15

func (p *prng) seed(seed int64) {
	// One mix step separates nearby seeds before the stream starts.
	p.state = (uint64(seed) + splitmixGamma) * 0xBF58476D1CE4E5B9
}

func (p *prng) next() uint64 {
	p.state += splitmixGamma
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (p *prng) Intn(n int) int {
	return int(p.next() % uint64(n))
}

func (p *prng) Chance(prob float64) bool {
	return float64(p.next()>>11)*(1.0/(1<<53)) < prob
}

// recorder wraps another decider and logs every decision.
//
// Script encoding: Intn(n) results are stored as the drawn value (≥ 0);
// Chance results as 1 (hit) / 0 (miss). Replay validates only structure,
// not ranges, so a script replayed against a different program may fail.
type recorder struct {
	inner decider
	log   []int64
}

func (d *recorder) Intn(n int) int {
	v := d.inner.Intn(n)
	d.log = append(d.log, int64(v))
	return v
}

func (d *recorder) Chance(p float64) bool {
	v := d.inner.Chance(p)
	bit := int64(0)
	if v {
		bit = 1
	}
	d.log = append(d.log, bit)
	return v
}

// ErrScriptExhausted reports a replay that ran out of recorded decisions
// (the replayed program diverged from the recording).
var ErrScriptExhausted = errors.New("sim: replay script exhausted")

// scriptDecider replays a recorded decision log. When the script runs dry
// it falls back to the seeded PRNG and flags the divergence.
type scriptDecider struct {
	script   []int64
	pos      int
	fallback decider
	diverged bool
}

func (d *scriptDecider) next() (int64, bool) {
	if d.pos >= len(d.script) {
		d.diverged = true
		return 0, false
	}
	v := d.script[d.pos]
	d.pos++
	return v, true
}

func (d *scriptDecider) Intn(n int) int {
	v, ok := d.next()
	if !ok {
		return d.fallback.Intn(n)
	}
	if v < 0 || v >= int64(n) {
		// Structural divergence: clamp but mark it.
		d.diverged = true
		if v < 0 {
			return 0
		}
		return int(v) % n
	}
	return int(v)
}

func (d *scriptDecider) Chance(p float64) bool {
	v, ok := d.next()
	if !ok {
		return d.fallback.Chance(p)
	}
	return v != 0
}
