package sim

import (
	"fmt"
	"testing"

	"goat/internal/trace"
)

// systematicOpts returns deterministic systematic-mode options: FIFO
// dispatch, no probabilistic yields or preempts, forced yields/wakes only.
func systematicOpts(yields []int64, wakes map[int64]trace.GoID) Options {
	if yields == nil && wakes == nil {
		yields = []int64{}
	}
	return Options{Pick: PickFIFO, PreemptProb: -1, YieldAt: yields, WakeAt: wakes}
}

// orderProg spawns three children that each record their name; under FIFO
// with no yields they run in spawn order after main's ops.
func orderProg(order *[]string) func(*G) {
	return func(g *G) {
		for _, name := range []string{"A", "B", "C"} {
			g.Go(name, func(c *G) {
				c.Handler("dpor.go", 1)
				*order = append(*order, c.Name())
				c.Handler("dpor.go", 2)
			})
		}
		g.Handler("dpor.go", 3)
		g.Handler("dpor.go", 4)
	}
}

func runOrder(t *testing.T, opts Options) ([]string, *Result) {
	t.Helper()
	var order []string
	r := Run(opts, orderProg(&order))
	if r.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%v)", r.Outcome, r)
	}
	return order, r
}

func TestRecordEnabledCapturesActorAndPeers(t *testing.T) {
	opts := systematicOpts(nil, nil)
	opts.RecordRunnable = true
	opts.RecordEnabled = true
	_, r := runOrder(t, opts)

	if len(r.OpActor) != r.Ops || len(r.OpEnabled) != r.Ops || len(r.OpRunnable) != r.Ops {
		t.Fatalf("recorded %d actors / %d enabled / %d runnable, want %d each",
			len(r.OpActor), len(r.OpEnabled), len(r.OpRunnable), r.Ops)
	}
	for i := range r.OpEnabled {
		// The identity-level census must agree with the count-level one.
		if int32(len(r.OpEnabled[i])) != r.OpRunnable[i] {
			t.Fatalf("op %d: %d enabled ids vs runnable count %d", i+1, len(r.OpEnabled[i]), r.OpRunnable[i])
		}
		for _, id := range r.OpEnabled[i] {
			if id == r.OpActor[i] {
				t.Fatalf("op %d: actor g%d listed among its own runnable peers", i+1, id)
			}
		}
	}
	// Main (g1) executes the first op with all three children runnable.
	if r.OpActor[0] != 1 || len(r.OpEnabled[0]) != 3 {
		t.Fatalf("op 1: actor g%d enabled %v, want g1 with 3 peers", r.OpActor[0], r.OpEnabled[0])
	}
}

func TestRecordOpsParallelToTrace(t *testing.T) {
	opts := systematicOpts(nil, nil)
	opts.RecordOps = true
	_, r := runOrder(t, opts)

	if len(r.EventOps) != len(r.Trace.Events) {
		t.Fatalf("EventOps len %d, trace len %d", len(r.EventOps), len(r.Trace.Events))
	}
	seen := map[trace.GoID]bool{}
	for i, e := range r.Trace.Events {
		op := r.EventOps[i]
		if op < 0 || op > int64(r.Ops) {
			t.Fatalf("event %d: op attribution %d out of range [0,%d]", i, op, r.Ops)
		}
		if !seen[e.G] && op != 0 {
			// A goroutine's first event (GoStart / its creation context)
			// precedes any of its CU handler invocations.
			if e.Type == trace.EvGoStart {
				t.Fatalf("event %d (%v of g%d): attributed to op %d before first op", i, e.Type, e.G, op)
			}
		}
		if e.Type == trace.EvGoSched || e.Type == trace.EvGoPreempt {
			if op == 0 {
				t.Fatalf("event %d: forced yield with no op attribution", i)
			}
		}
		seen[e.G] = true
	}
}

func TestWakeAtDeterministic(t *testing.T) {
	wakes := map[int64]trace.GoID{1: 4}
	o1, r1 := runOrder(t, systematicOpts(nil, wakes))
	o2, r2 := runOrder(t, systematicOpts(nil, wakes))
	if fmt.Sprint(o1) != fmt.Sprint(o2) {
		t.Fatalf("wake runs diverged: %v vs %v", o1, o2)
	}
	if len(r1.Trace.Events) != len(r2.Trace.Events) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(r1.Trace.Events), len(r2.Trace.Events))
	}
	for i := range r1.Trace.Events {
		if r1.Trace.Events[i] != r2.Trace.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, r1.Trace.Events[i], r2.Trace.Events[i])
		}
	}
}

// TestWakeAtBeyondSingleYield proves the targeted wake enlarges the
// reachable schedule space: waking g4 ("C") at main's first op produces an
// order that no single plain-yield placement can realize, because a plain
// yield only rotates the yielder to the back of the FIFO queue.
func TestWakeAtBeyondSingleYield(t *testing.T) {
	wakeOrder, r := runOrder(t, systematicOpts(nil, map[int64]trace.GoID{1: 4}))
	want := fmt.Sprint([]string{"C", "A", "B"})
	if fmt.Sprint(wakeOrder) != want {
		t.Fatalf("wake order = %v, want C A B", wakeOrder)
	}
	for op := int64(1); op <= int64(r.Ops); op++ {
		order, _ := runOrder(t, systematicOpts([]int64{op}, nil))
		if fmt.Sprint(order) == want {
			t.Fatalf("single yield at op %d already realizes %v — wake adds nothing", op, order)
		}
	}
}

func TestWakeAtAbsentTargetDegradesToYield(t *testing.T) {
	wakeOrder, wr := runOrder(t, systematicOpts(nil, map[int64]trace.GoID{2: 99}))
	yieldOrder, yr := runOrder(t, systematicOpts([]int64{2}, nil))
	if fmt.Sprint(wakeOrder) != fmt.Sprint(yieldOrder) {
		t.Fatalf("degraded wake order %v != plain yield order %v", wakeOrder, yieldOrder)
	}
	if len(wr.Trace.Events) != len(yr.Trace.Events) {
		t.Fatalf("trace lengths differ: %d vs %d", len(wr.Trace.Events), len(yr.Trace.Events))
	}
	for i := range wr.Trace.Events {
		if wr.Trace.Events[i] != yr.Trace.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, wr.Trace.Events[i], yr.Trace.Events[i])
		}
	}
}

// TestWakeAtKeepsRecordReplayClean pins that targeted wakes draw no
// scheduling decisions: a recorded wake run produces an empty decision
// script under FIFO, identical to the plain systematic mode.
func TestWakeAtKeepsRecordReplayClean(t *testing.T) {
	opts := systematicOpts(nil, map[int64]trace.GoID{1: 4})
	opts.Record = true
	_, r := runOrder(t, opts)
	if len(r.Schedule) != 0 {
		t.Fatalf("wake run recorded %d decisions, want 0 (wakes must bypass the decider)", len(r.Schedule))
	}
}
