package sim

import (
	"testing"

	"goat/internal/trace"
)

func TestDeepSpawnChain(t *testing.T) {
	const depth = 200
	reached := 0
	var spawn func(g *G, level int)
	spawn = func(g *G, level int) {
		reached = level
		if level == depth {
			return
		}
		g.Go("chain", func(c *G) { spawn(c, level+1) })
	}
	r := Run(Options{PreemptProb: -1}, func(g *G) { spawn(g, 0) })
	if r.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if reached != depth {
		t.Fatalf("chain reached depth %d, want %d", reached, depth)
	}
	if len(r.Goroutines) != depth+1 {
		t.Fatalf("goroutines = %d", len(r.Goroutines))
	}
}

func TestWideFanOut(t *testing.T) {
	const n = 500
	count := 0
	r := Run(Options{Seed: 5}, func(g *G) {
		for i := 0; i < n; i++ {
			g.Go("w", func(c *G) { count++ })
		}
	})
	if r.Outcome != OutcomeOK || count != n {
		t.Fatalf("outcome=%v count=%d", r.Outcome, count)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.yieldProb() != defaultYieldProb {
		t.Errorf("yieldProb = %v", o.yieldProb())
	}
	if o.preemptProb() != defaultPreemptProb {
		t.Errorf("preemptProb = %v", o.preemptProb())
	}
	if o.maxSteps() != defaultMaxSteps || o.drainSteps() != defaultDrainSteps {
		t.Errorf("budgets = %d/%d", o.maxSteps(), o.drainSteps())
	}
	o.PreemptProb = -1
	if o.preemptProb() != 0 {
		t.Errorf("negative preemptProb not disabled: %v", o.preemptProb())
	}
	o.YieldProb = 0.7
	if o.yieldProb() != 0.7 {
		t.Errorf("explicit yieldProb ignored")
	}
}

func TestGoroutineAccessors(t *testing.T) {
	Run(Options{PreemptProb: -1}, func(g *G) {
		if g.ID() != 1 || g.Name() != "main" || g.Parent() != 0 || g.System() {
			t.Errorf("main accessors: id=%d name=%q parent=%d", g.ID(), g.Name(), g.Parent())
		}
		if g.State() != StateRunning {
			t.Errorf("running goroutine state = %v", g.State())
		}
		if g.Sched() == nil {
			t.Error("nil scheduler")
		}
		child := g.Go("kid", func(c *G) {
			if c.Parent() != 1 {
				t.Errorf("child parent = %d", c.Parent())
			}
		})
		if child.ID() != 2 || child.Name() != "kid" {
			t.Errorf("child handle: %v", child)
		}
		if child.String() != "g2(kid)" {
			t.Errorf("String = %q", child.String())
		}
		g.Yield()
	})
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateRunnable: "runnable",
		StateRunning:  "running",
		StateBlocked:  "blocked",
		StateDone:     "done",
		StatePanicked: "panicked",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestMainPanicIsCrash(t *testing.T) {
	r := Run(Options{PreemptProb: -1}, func(g *G) {
		panic("from main")
	})
	if r.Outcome != OutcomeCrash || r.PanicG != 1 {
		t.Fatalf("result = %v", r)
	}
}

func TestPanicValueNonString(t *testing.T) {
	r := Run(Options{PreemptProb: -1}, func(g *G) {
		panic(42)
	})
	if r.Outcome != OutcomeCrash || r.PanicVal != 42 {
		t.Fatalf("result = %v", r)
	}
}

func TestBlockAfterMainEndsStillDrains(t *testing.T) {
	// A goroutine that blocks and is then woken by another during drain.
	order := []string{}
	r := Run(Options{PreemptProb: -1}, func(g *G) {
		var sleeper *G
		g.Go("sleeper", func(c *G) {
			sleeper = c
			c.Block(trace.BlockRecv, 0, "t.go", 1)
			order = append(order, "woken")
		})
		g.Go("waker", func(c *G) {
			c.Yield() // let the sleeper park first
			c.Ready(sleeper, 0, nil)
			order = append(order, "woke")
		})
		// main returns immediately; the pair resolves during drain
	})
	if r.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%v)", r.Outcome, r)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestTimersDuringDrain(t *testing.T) {
	// Sleeping goroutines must be allowed to finish after main exits
	// (virtual time advances during the drain too).
	done := false
	r := Run(Options{PreemptProb: -1}, func(g *G) {
		g.Go("late", func(c *G) {
			c.s.AddTimer(c.s.Now()+100, c)
			c.Block(trace.BlockSleep, 0, "t.go", 2)
			done = true
		})
		g.Yield()
	})
	if r.Outcome != OutcomeOK || !done {
		t.Fatalf("outcome=%v done=%v", r.Outcome, done)
	}
}

func TestWakeNoteDelivery(t *testing.T) {
	var got any
	Run(Options{PreemptProb: -1}, func(g *G) {
		var sleeper *G
		g.Go("sleeper", func(c *G) {
			sleeper = c
			got = c.Block(trace.BlockRecv, 7, "t.go", 3)
		})
		g.Yield()
		g.Ready(sleeper, 7, "hello")
		g.Yield()
	})
	if got != "hello" {
		t.Fatalf("wake note = %v", got)
	}
}

func TestReadyNonBlockedPanics(t *testing.T) {
	r := Run(Options{PreemptProb: -1}, func(g *G) {
		child := g.Go("c", func(c *G) { c.Yield() })
		g.Ready(child, 0, nil) // child is runnable, not blocked
	})
	if r.Outcome != OutcomeCrash {
		t.Fatalf("Ready on runnable goroutine: outcome = %v", r.Outcome)
	}
}

func TestEmitAfterNoTraceSafe(t *testing.T) {
	r := Run(Options{NoTrace: true, PreemptProb: -1}, func(g *G) {
		g.Sched().Emit(trace.Event{G: g.ID(), Type: trace.EvUserLog, Str: "x"})
	})
	if r.Outcome != OutcomeOK || r.Trace != nil {
		t.Fatalf("result = %v", r)
	}
}

func TestStepsAccounted(t *testing.T) {
	r := Run(Options{PreemptProb: -1}, func(g *G) {
		for i := 0; i < 10; i++ {
			g.Yield()
		}
	})
	if r.Steps < 10 {
		t.Fatalf("steps = %d, want ≥ 10 dispatches", r.Steps)
	}
}

func TestSpinLoopCannotStarveScheduler(t *testing.T) {
	// A goroutine spinning through CU points with preemption disabled
	// must still be preempted by the slice budget — and the run must
	// terminate via the watchdog instead of hanging forever.
	opts := Options{PreemptProb: -1, MaxSteps: 50}
	r := Run(opts, func(g *G) {
		for {
			g.Handler("spin.go", 1) // a select/default polling loop
		}
	})
	if r.Outcome != OutcomeTimeout {
		t.Fatalf("outcome = %v, want TO", r.Outcome)
	}
	preempts := r.Trace.CountByType()[trace.EvGoPreempt]
	if preempts == 0 {
		t.Fatal("slice budget never preempted the spinner")
	}
}

func TestSpinningLeftoverDrainBounded(t *testing.T) {
	// After main ends, a spinning (never-blocking) leftover goroutine
	// must be cut off by the drain budget even with no preemption noise.
	opts := Options{PreemptProb: -1, DrainSteps: 50}
	r := Run(opts, func(g *G) {
		g.Go("spinner", func(c *G) {
			for {
				c.Handler("spin.go", 2)
			}
		})
	})
	if r.Outcome != OutcomeLeak {
		t.Fatalf("outcome = %v, want PDL", r.Outcome)
	}
}
