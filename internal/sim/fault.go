package sim

import (
	"goat/internal/fault"
	"goat/internal/trace"
)

// This file applies the deterministic fault plan (internal/fault) inside
// the scheduler. All fault decisions were fixed at plan-construction time
// from (Seed, Options.Faults); nothing here consults the schedule decider,
// so faults perturb the environment without invalidating recorded
// schedule scripts.

// stalledG is a goroutine held unrunnable by an injected stall fault.
type stalledG struct {
	g     *G
	until int // scheduler step at which the goroutine is released
}

// RegisterCancel registers a cancellation thunk as a target for injected
// context-cancellation faults. Primitives that create cancellable state
// (conc contexts) call it at creation time. Registration is a no-op when
// fault injection is disabled, so the registry cannot grow in normal runs.
func (s *Scheduler) RegisterCancel(fn func(*G)) {
	if s.faults != nil {
		s.cancels = append(s.cancels, fn)
	}
}

// applyFaults fires every due fault at this CU point, in a fixed order:
// stall, cancel, slowdown, panic. The panic is last because it unwinds
// the goroutine. Slowdowns wait for a channel or select CU; cancels wait
// until at least one cancellable context is registered — pending actions
// stay queued until an eligible point arrives.
func (s *Scheduler) applyFaults(g *G, cat trace.Category, file string, line int) {
	op := int64(s.ops)
	if _, ok := s.faults.Due(fault.KindStall, op); ok {
		a := s.faults.Fire(fault.KindStall, op)
		s.Emit(trace.Event{G: g.id, Type: trace.EvFaultStall, Aux: a.Param, File: file, Line: line})
		s.stalled = append(s.stalled, stalledG{g: g, until: s.steps + int(a.Param)})
		g.Block(trace.BlockFault, 0, file, line)
	}
	if _, ok := s.faults.Due(fault.KindCancel, op); ok && len(s.cancels) > 0 {
		a := s.faults.Fire(fault.KindCancel, op)
		idx := int(a.Param % int64(len(s.cancels)))
		fn := s.cancels[idx]
		// A context cancels at most once; dropping the registration keeps
		// later picks aimed at still-live contexts.
		s.cancels = append(s.cancels[:idx], s.cancels[idx+1:]...)
		s.Emit(trace.Event{G: g.id, Type: trace.EvFaultCancel, Aux: int64(idx), File: file, Line: line})
		fn(g)
	}
	if cat == trace.CatChannel || cat == trace.CatSelect {
		if _, ok := s.faults.Due(fault.KindSlow, op); ok {
			a := s.faults.Fire(fault.KindSlow, op)
			s.Emit(trace.Event{G: g.id, Type: trace.EvFaultSlow, Aux: a.Param, File: file, Line: line})
			for i := int64(0); i < a.Param; i++ {
				g.yield(trace.EvGoPreempt, file, line)
			}
		}
	}
	if _, ok := s.faults.Due(fault.KindPanic, op); ok {
		a := s.faults.Fire(fault.KindPanic, op)
		s.Emit(trace.Event{G: g.id, Type: trace.EvFaultPanic, File: file, Line: line})
		panic(fault.InjectedPanic{Op: a.At})
	}
}

// releaseStalled returns due stalled goroutines to the run queue. With
// force set it releases the earliest-scheduled stalled goroutine even if
// its release step has not been reached yet — the caller invokes that only
// when nothing else can make progress, so an injected stall can never be
// misread as a deadlock or starve the run forever.
func (s *Scheduler) releaseStalled(force bool) bool {
	if len(s.stalled) == 0 {
		return false
	}
	released := false
	keep := s.stalled[:0]
	for _, st := range s.stalled {
		if st.until <= s.steps {
			s.wakeStalled(st.g)
			released = true
		} else {
			keep = append(keep, st)
		}
	}
	s.stalled = keep
	if released || !force {
		return released
	}
	earliest := 0
	for i, st := range s.stalled {
		if st.until < s.stalled[earliest].until {
			earliest = i
		}
	}
	g := s.stalled[earliest].g
	s.stalled = append(s.stalled[:earliest], s.stalled[earliest+1:]...)
	s.wakeStalled(g)
	return true
}

func (s *Scheduler) wakeStalled(g *G) {
	if g.state != StateBlocked || g.reason != trace.BlockFault {
		return // already unwound; nothing to wake
	}
	g.state = StateRunnable
	g.wakeNote = nil
	s.Emit(trace.Event{G: g.id, Type: trace.EvGoUnblock, Peer: g.id})
	s.runq = append(s.runq, g)
}
