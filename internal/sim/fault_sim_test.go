package sim_test

// External test package: these tests drive the fault layer through the
// conc primitives, which the sim package itself cannot import.

import (
	"bytes"
	"reflect"
	"testing"

	"goat/internal/conc"
	"goat/internal/fault"
	"goat/internal/sim"
	"goat/internal/trace"
)

// faultProbe is a small program exercising every fault surface: channels
// (slowdowns), timers (skew), a cancellable context (injected cancels),
// and enough CU points for stalls to land on. The watcher goroutine leaks
// unless its context is cancelled.
func faultProbe(g *sim.G) {
	ctx, cancel := conc.WithCancel(g)
	_ = cancel
	ch := conc.NewChan[int](g, 1)
	g.Go("producer", func(p *sim.G) {
		for i := 0; i < 5; i++ {
			ch.Send(p, i)
			conc.Sleep(p, 10*conc.Nanosecond)
		}
		ch.Close(p)
	})
	g.Go("watcher", func(w *sim.G) {
		ctx.Done().Recv(w) // leaks unless the context is cancelled
	})
	for {
		if _, ok := ch.Recv(g); !ok {
			break
		}
		conc.Sleep(g, 7*conc.Nanosecond)
	}
}

func probeFaults() fault.Options {
	return fault.Options{
		Stalls:    2,
		Cancels:   1,
		Slowdowns: 1,
		TimerSkew: 0.5,
		MeanGap:   6,
	}
}

func encodeECT(t *testing.T, r *sim.Result) []byte {
	t.Helper()
	if r.Trace == nil {
		t.Fatal("run produced no trace")
	}
	var buf bytes.Buffer
	if err := r.Trace.Encode(&buf); err != nil {
		t.Fatalf("encoding ECT: %v", err)
	}
	return buf.Bytes()
}

func TestFaultPlanFullyDeterministic(t *testing.T) {
	opts := sim.Options{Seed: 11, Delays: 2, Faults: probeFaults()}
	a := sim.Run(opts, faultProbe)
	b := sim.Run(opts, faultProbe)
	if a.Outcome != b.Outcome {
		t.Fatalf("outcomes diverged: %v vs %v", a.Outcome, b.Outcome)
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Fatalf("fault schedules diverged:\n%v\n%v", a.Faults, b.Faults)
	}
	if len(a.Faults) == 0 {
		t.Fatal("no faults fired; probe or plan is miswired")
	}
	if !bytes.Equal(encodeECT(t, a), encodeECT(t, b)) {
		t.Fatal("ECTs are not byte-identical for identical Options")
	}
	// A different seed must produce a different fault schedule (with
	// overwhelming probability for this plan size).
	c := sim.Run(sim.Options{Seed: 12, Delays: 2, Faults: probeFaults()}, faultProbe)
	if reflect.DeepEqual(a.Faults, c.Faults) && bytes.Equal(encodeECT(t, a), encodeECT(t, c)) {
		t.Fatal("different seeds reproduced the identical execution")
	}
}

func TestFaultDeterminismUnderRecordReplay(t *testing.T) {
	base := sim.Options{Seed: 23, Delays: 2, Faults: probeFaults()}

	rec := base
	rec.Record = true
	recorded := sim.Run(rec, faultProbe)
	if len(recorded.Schedule) == 0 {
		t.Fatal("recording produced an empty schedule script")
	}

	rep := base
	rep.Replay = recorded.Schedule
	replayed := sim.Run(rep, faultProbe)
	if replayed.ReplayDiverged {
		t.Fatal("replay diverged although program, seed and faults are identical")
	}
	if !reflect.DeepEqual(recorded.Faults, replayed.Faults) {
		t.Fatalf("fault schedule changed under replay:\n%v\n%v", recorded.Faults, replayed.Faults)
	}
	if !bytes.Equal(encodeECT(t, recorded), encodeECT(t, replayed)) {
		t.Fatal("replayed ECT differs from the recorded execution")
	}

	// And the plain (non-recording) run matches the recorded one too:
	// recording must be observation-only.
	plain := sim.Run(base, faultProbe)
	if !bytes.Equal(encodeECT(t, plain), encodeECT(t, recorded)) {
		t.Fatal("enabling Record changed the execution")
	}
}

func countEvents(tr *trace.Trace, typ trace.Type) int {
	n := 0
	for _, e := range tr.Events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

func TestStallFaultReleasesWithoutFalseDeadlock(t *testing.T) {
	// Saturate the run with stalls: every goroutine repeatedly held. The
	// program must still terminate OK — stalls are always released before
	// the world can be classified as settled.
	opts := sim.Options{Seed: 3, Faults: fault.Options{Stalls: 20, StallSteps: 50, MeanGap: 2}}
	r := sim.Run(opts, func(g *sim.G) {
		ch := conc.NewChan[int](g, 0)
		g.Go("peer", func(p *sim.G) {
			for i := 0; i < 10; i++ {
				ch.Send(p, i)
			}
		})
		for i := 0; i < 10; i++ {
			conc.Sleep(g, 5*conc.Nanosecond)
			ch.Recv(g)
		}
	})
	if r.Outcome != sim.OutcomeOK {
		t.Fatalf("outcome = %v, want OK; result: %v", r.Outcome, r)
	}
	if countEvents(r.Trace, trace.EvFaultStall) == 0 {
		t.Fatal("no stall events recorded despite an aggressive plan")
	}
}

func TestInjectedPanicClassifiedAsFaultCrash(t *testing.T) {
	opts := sim.Options{Seed: 5, Faults: fault.Options{Panics: 1, MeanGap: 1}}
	r := sim.Run(opts, faultProbe)
	if r.Outcome != sim.OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH", r.Outcome)
	}
	if !r.FaultCrashed() {
		t.Fatalf("FaultCrashed = false; panic value %v (%T)", r.PanicVal, r.PanicVal)
	}
	if countEvents(r.Trace, trace.EvFaultPanic) != 1 {
		t.Fatalf("want exactly one FaultPanic event, trace has %d", countEvents(r.Trace, trace.EvFaultPanic))
	}
}

func TestInjectedCancelUnblocksContextWaiter(t *testing.T) {
	// Without the injected cancel the watcher in faultProbe leaks (PDL);
	// the cancel fault must close the context and let it exit.
	opts := sim.Options{Seed: 7, Faults: fault.Options{Cancels: 1, MeanGap: 4}}
	r := sim.Run(opts, faultProbe)
	if countEvents(r.Trace, trace.EvFaultCancel) != 1 {
		t.Fatalf("want exactly one FaultCancel event, got %d", countEvents(r.Trace, trace.EvFaultCancel))
	}
	if r.Outcome != sim.OutcomeOK {
		t.Fatalf("outcome = %v, want OK after injected cancellation; %v", r.Outcome, r)
	}
	baseline := sim.Run(sim.Options{Seed: 7}, faultProbe)
	if baseline.Outcome != sim.OutcomeLeak {
		t.Fatalf("baseline outcome = %v, want PDL (the probe's watcher leaks without a cancel)", baseline.Outcome)
	}
}

func TestTimerSkewRecorded(t *testing.T) {
	opts := sim.Options{Seed: 9, Faults: fault.Options{TimerSkew: 0.5}}
	r := sim.Run(opts, func(g *sim.G) {
		conc.Sleep(g, 1000*conc.Nanosecond)
	})
	if r.Outcome != sim.OutcomeOK {
		t.Fatalf("outcome = %v, want OK", r.Outcome)
	}
	if countEvents(r.Trace, trace.EvFaultTimerSkew) == 0 {
		t.Fatal("no timer-skew event recorded")
	}
}

// TestTimeoutClassification covers the OutcomeTimeout path: a kernel that
// spins through CU points forever must be cut off within MaxSteps and
// classified TO, with the goroutine snapshot intact.
func TestTimeoutClassification(t *testing.T) {
	r := sim.Run(sim.Options{Seed: 1, MaxSteps: 500}, func(g *sim.G) {
		ch := conc.NewChan[int](g, 1)
		g.Go("pong", func(p *sim.G) {
			for {
				if _, ok := ch.Recv(p); !ok {
					return
				}
			}
		})
		for {
			ch.Send(g, 1) // livelock: ping-pong forever
		}
	})
	if r.Outcome != sim.OutcomeTimeout {
		t.Fatalf("outcome = %v, want TO", r.Outcome)
	}
	if r.Steps > 500 {
		t.Fatalf("run took %d steps, budget was 500", r.Steps)
	}
	if r.MainEnded {
		t.Fatal("MainEnded = true for a hung main")
	}
	if len(r.Goroutines) != 2 {
		t.Fatalf("goroutine snapshot has %d entries, want 2", len(r.Goroutines))
	}
	for _, g := range r.Goroutines {
		if g.State == sim.StateDone {
			t.Fatalf("g%d reported done in a timed-out run", g.ID)
		}
	}
}
