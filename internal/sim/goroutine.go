package sim

import (
	"fmt"
	"path/filepath"
	"runtime"

	"goat/internal/trace"
)

// State is the lifecycle state of a simulated goroutine.
type State uint8

const (
	// StateRunnable means the goroutine is on the run queue.
	StateRunnable State = iota
	// StateRunning means the goroutine currently holds the processor.
	StateRunning
	// StateBlocked means the goroutine is parked on a resource.
	StateBlocked
	// StateDone means the goroutine reached the end of its function.
	StateDone
	// StatePanicked means the goroutine terminated by panic.
	StatePanicked
)

var stateNames = [...]string{"runnable", "running", "blocked", "done", "panicked"}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// G is the handle a simulated goroutine uses to interact with the virtual
// runtime. Every function running under the scheduler receives its own *G;
// all primitive operations take it as their first argument (the explicit
// analogue of the implicit current-goroutine context in the real runtime).
type G struct {
	s      *Scheduler
	id     trace.GoID
	parent trace.GoID
	name   string
	system bool // runtime-internal goroutine (timers, watchdog): excluded from the application tree

	state  State
	reason trace.BlockReason // valid while StateBlocked
	resume chan struct{}

	createFile string
	createLine int

	// lastOp is the global op index of this goroutine's most recent CU
	// handler invocation — the op a forced yield must target to preempt
	// the goroutine before the operation it was about to execute
	// (Options.RecordOps event attribution).
	lastOp int64

	// wake communication for primitives: a waker may attach a note the
	// sleeper reads after resuming (e.g. "channel closed while you waited").
	wakeNote any
}

// ID returns the goroutine's trace identifier.
func (g *G) ID() trace.GoID { return g.id }

// Name returns the goroutine's creation name.
func (g *G) Name() string { return g.name }

// Parent returns the creator's identifier (0 for the main goroutine).
func (g *G) Parent() trace.GoID { return g.parent }

// System reports whether this is a runtime-internal goroutine.
func (g *G) System() bool { return g.system }

// Sched returns the scheduler this goroutine runs on.
func (g *G) Sched() *Scheduler { return g.s }

// State returns the goroutine's current lifecycle state.
func (g *G) State() State { return g.state }

// BlockedOn returns the block reason while the goroutine is parked.
func (g *G) BlockedOn() trace.BlockReason { return g.reason }

// Caller returns the file (base name) and line of the caller's caller,
// used by primitives to attribute events to their concurrency usage.
func Caller(skip int) (string, int) {
	_, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return "?", 0
	}
	return filepath.Base(file), line
}

// Info is a read-only snapshot of a goroutine's final state, reported in
// the execution Result.
type Info struct {
	ID         trace.GoID
	Parent     trace.GoID
	Name       string
	System     bool
	State      State
	Reason     trace.BlockReason
	CreateFile string
	CreateLine int
}

func (g *G) info() Info {
	return Info{
		ID:         g.id,
		Parent:     g.parent,
		Name:       g.name,
		System:     g.system,
		State:      g.state,
		Reason:     g.reason,
		CreateFile: g.createFile,
		CreateLine: g.createLine,
	}
}

// String identifies the goroutine for diagnostics.
func (g *G) String() string {
	return fmt.Sprintf("g%d(%s)", g.id, g.name)
}
