package sim

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"

	"goat/internal/trace"
)

// State is the lifecycle state of a simulated goroutine.
type State uint8

const (
	// StateRunnable means the goroutine is on the run queue.
	StateRunnable State = iota
	// StateRunning means the goroutine currently holds the processor.
	StateRunning
	// StateBlocked means the goroutine is parked on a resource.
	StateBlocked
	// StateDone means the goroutine reached the end of its function.
	StateDone
	// StatePanicked means the goroutine terminated by panic.
	StatePanicked
)

var stateNames = [...]string{"runnable", "running", "blocked", "done", "panicked"}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// G is the handle a simulated goroutine uses to interact with the virtual
// runtime. Every function running under the scheduler receives its own *G;
// all primitive operations take it as their first argument (the explicit
// analogue of the implicit current-goroutine context in the real runtime).
type G struct {
	s      *Scheduler
	id     trace.GoID
	parent trace.GoID
	name   string
	system bool // runtime-internal goroutine (timers, watchdog): excluded from the application tree

	state  State
	reason trace.BlockReason // valid while StateBlocked
	resume chan struct{}

	createFile string
	createLine int

	// lastOp is the global op index of this goroutine's most recent CU
	// handler invocation — the op a forced yield must target to preempt
	// the goroutine before the operation it was about to execute
	// (Options.RecordOps event attribution).
	lastOp int64

	// wake communication for primitives: a waker may attach a note the
	// sleeper reads after resuming (e.g. "channel closed while you waited").
	wakeNote any
}

// ID returns the goroutine's trace identifier.
func (g *G) ID() trace.GoID { return g.id }

// Name returns the goroutine's creation name.
func (g *G) Name() string { return g.name }

// Parent returns the creator's identifier (0 for the main goroutine).
func (g *G) Parent() trace.GoID { return g.parent }

// System reports whether this is a runtime-internal goroutine.
func (g *G) System() bool { return g.system }

// Sched returns the scheduler this goroutine runs on.
func (g *G) Sched() *Scheduler { return g.s }

// State returns the goroutine's current lifecycle state.
func (g *G) State() State { return g.state }

// BlockedOn returns the block reason while the goroutine is parked.
func (g *G) BlockedOn() trace.BlockReason { return g.reason }

// callerSite is a resolved program counter: the symbolization result
// cached by Caller.
type callerSite struct {
	file string
	line int
}

// callerCache maps return PCs to resolved (file, line) pairs. A PC's
// symbolization never changes within a process, so the cache is
// appendonly and shared across schedulers (campaigns run the same
// kernels millions of times over a handful of distinct CU sites).
var callerCache sync.Map // uintptr → callerSite

// Caller returns the file (base name) and line of the caller's caller,
// used by primitives to attribute events to their concurrency usage.
// Only the raw PC is captured per call; the expensive line-table lookup
// runs once per distinct call site and is served from a cache after that.
//
// On amd64 the PC capture walks the frame-pointer chain directly
// (fpCallerPC) instead of invoking the runtime unwinder, which decodes
// pcvalue tables on every call. That walk counts *physical* frames, so
// it requires that neither Caller nor any function calling it is ever
// inlined. Caller is pinned below; its callers need no annotation
// because each contains at least two non-inlinable calls (Caller itself
// plus the handler/emit using the result), which exceeds the inliner's
// budget by construction. TestCallerMatchesRuntime guards the contract.
//
//go:noinline
func Caller(skip int) (string, int) {
	if fpCaller {
		return siteForPC(fpCallerPC(skip))
	}
	var pcs [1]uintptr
	runtime.Callers(skip+2, pcs[:])
	return siteForPC(pcs[0]) // pcs[0] is 0 on capture failure → "?", 0
}

func siteForPC(pc uintptr) (string, int) {
	if v, ok := callerCache.Load(pc); ok {
		cs := v.(callerSite)
		return cs.file, cs.line
	}
	frames := runtime.CallersFrames([]uintptr{pc})
	fr, _ := frames.Next()
	cs := callerSite{file: "?", line: 0}
	if fr.File != "" {
		cs = callerSite{file: filepath.Base(fr.File), line: fr.Line}
	}
	callerCache.Store(pc, cs)
	return cs.file, cs.line
}

// Info is a read-only snapshot of a goroutine's final state, reported in
// the execution Result.
type Info struct {
	ID         trace.GoID
	Parent     trace.GoID
	Name       string
	System     bool
	State      State
	Reason     trace.BlockReason
	CreateFile string
	CreateLine int
}

func (g *G) info() Info {
	return Info{
		ID:         g.id,
		Parent:     g.parent,
		Name:       g.name,
		System:     g.system,
		State:      g.state,
		Reason:     g.reason,
		CreateFile: g.createFile,
		CreateLine: g.createLine,
	}
}

// String identifies the goroutine for diagnostics.
func (g *G) String() string {
	return fmt.Sprintf("g%d(%s)", g.id, g.name)
}
