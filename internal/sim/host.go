package sim

import (
	"fmt"
	"sync"

	"goat/internal/trace"
)

// A host is a parked real goroutine that lends its stack to simulated
// goroutines, one at a time. Launching a fresh runtime goroutine (and
// growing its stack) for every simulated goroutine dominated
// service-shaped workloads, where a single run creates hundreds of
// thousands of short-lived handlers; pooling keeps grown stacks warm
// across simulated lifetimes and across runs. A host serves exactly one
// simulated goroutine at a time and hands the processor through the same
// resume/handoff ping-pong as before, so the scheduling discipline and
// every recorded schedule are untouched.
type host struct {
	resume chan struct{}
	jobs   chan hostJob
}

type hostJob struct {
	g  *G
	fn func(*G)
}

// hostFree is the global pool of parked hosts. It is a plain mutex-held
// list rather than a sync.Pool: dropping a host object would strand its
// parked goroutine forever, so hosts must only leave the pool by being
// handed a job or by an explicit exit when the pool is full.
var hostFree struct {
	sync.Mutex
	list []*host
}

// hostFreeCap bounds the parked-host pool; a release beyond it lets the
// host exit so idle processes do not pin stacks without bound.
const hostFreeCap = 4096

func getHost() *host {
	hostFree.Lock()
	if n := len(hostFree.list); n > 0 {
		h := hostFree.list[n-1]
		hostFree.list[n-1] = nil
		hostFree.list = hostFree.list[:n-1]
		hostFree.Unlock()
		return h
	}
	hostFree.Unlock()
	h := &host{resume: make(chan struct{}), jobs: make(chan hostJob, 1)}
	go h.loop()
	return h
}

func (h *host) loop() {
	for job := range h.jobs {
		job.run()
		hostFree.Lock()
		if len(hostFree.list) < hostFreeCap {
			hostFree.list = append(hostFree.list, h)
			hostFree.Unlock()
			continue
		}
		hostFree.Unlock()
		return
	}
}

// run hosts one simulated goroutine from its first dispatch to its end.
// The body is exactly the per-goroutine wrapper spawn used to launch; it
// must not touch the job's G after the final handoff send, because the
// scheduler may recycle the G (and this host may be reassigned) the
// moment the send completes.
func (j hostJob) run() {
	g := j.g
	s := g.s
	<-g.resume
	if s.stopping {
		s.handoff <- struct{}{}
		return
	}
	g.state = StateRunning
	s.Emit(trace.Event{G: g.id, Type: trace.EvGoStart})
	defer func() {
		if r := recover(); r != nil {
			if _, isStop := r.(stopSignal); isStop {
				s.handoff <- struct{}{}
				return
			}
			g.state = StatePanicked
			s.panicked = true
			s.panicVal = r
			s.panicG = g.id
			s.Emit(trace.Event{G: g.id, Type: trace.EvGoPanic, Str: fmt.Sprint(r)})
			s.handoff <- struct{}{}
			return
		}
		g.state = StateDone
		s.Emit(trace.Event{G: g.id, Type: trace.EvGoEnd})
		s.handoff <- struct{}{}
	}()
	j.fn(g)
}
