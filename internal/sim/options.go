// Package sim implements the virtual runtime GoAT executes programs on: a
// deterministic cooperative scheduler for simulated goroutines.
//
// The paper instruments the real Go runtime (a patched 1.15.6 tracer) to
// observe concurrency events and perturbs the native scheduler with injected
// runtime.Gosched calls. This package is the substitute substrate: simulated
// goroutines are real goroutines, but exactly one runs at a time, handed the
// processor explicitly by the scheduler loop. Every scheduling decision draws
// from a seeded RNG, so a (program, seed, options) triple replays the exact
// same interleaving — which is what makes the schedule-space exploration and
// coverage experiments measurable.
//
// Scheduling model:
//   - A goroutine keeps the processor until it blocks, yields, ends, or is
//     preempted at a concurrency-usage (CU) point.
//   - At every CU point the injected handler may force a yield while the
//     delay budget D lasts (the paper's goat.handler → runtime.Gosched), and
//     independently may preempt with a small probability that models the
//     nondeterminism of the native Go scheduler (async preemption, OS
//     threads).
//   - When nothing is runnable, virtual time advances to the earliest timer;
//     if there are no timers either, the run is classified (deadlock, leak,
//     or normal termination).
package sim

import (
	"goat/internal/fault"
	"goat/internal/trace"
)

// Pick selects the runnable-queue discipline.
type Pick uint8

const (
	// PickRandom dispatches a uniformly random runnable goroutine (default).
	PickRandom Pick = iota
	// PickFIFO dispatches runnable goroutines in queue order, mimicking the
	// global run queue of the native scheduler. Used for ablations.
	PickFIFO
)

// Options configure one execution of the virtual runtime.
type Options struct {
	// Seed feeds every random decision (dispatch, select choice, yields).
	Seed int64

	// Sinks are streaming consumers of the execution's event stream: each
	// emitted event is stamped with its logical timestamp and delivered to
	// every sink, in order, exactly as it would be appended to the ECT.
	// Combined with NoTrace this runs the pipeline trace-free (online
	// detectors and coverage only, no event buffering); with tracing on,
	// the buffered ECT and the sink streams are byte-identical views of
	// the same execution. A sink implementing trace.Stopper may request an
	// early stop: the scheduler halts the world at the next dispatch
	// boundary and the run is classified OutcomeStopped. Sinks never draw
	// scheduling decisions, so Record/Replay scripts are unaffected.
	Sinks []trace.Sink

	// ECT, when non-nil, is used (after Reset) as the execution's trace
	// buffer instead of allocating a fresh one — the pooled-buffer mode
	// campaigns use to recycle event storage across executions (see
	// trace.Pool). Ignored when NoTrace is set.
	ECT *trace.Trace

	// Delays is the paper's bound D: the maximum number of forced yields
	// injected at CU points during the execution. 0 disables injection.
	Delays int

	// YieldProb is the probability that the CU handler fires a forced yield
	// while the Delays budget lasts. Zero selects the default (0.2).
	YieldProb float64

	// PreemptProb is the probability of a natural preemption at a CU point,
	// modeling native-scheduler noise. Zero selects the default (0.02).
	// Negative disables preemption entirely.
	PreemptProb float64

	// MaxSteps bounds scheduler dispatches before the run is declared hung
	// (the analogue of the paper's 30-second watchdog). Zero selects the
	// default (200000).
	MaxSteps int

	// DrainSteps bounds dispatches spent letting surviving goroutines finish
	// after the main goroutine ends. Zero selects the default (20000).
	DrainSteps int

	// Pick selects the run-queue discipline.
	Pick Pick

	// NoTrace disables ECT capture (for pure detection-throughput runs).
	NoTrace bool

	// SinkBatch controls batched sink delivery: emitted events are
	// buffered in fixed-size blocks and handed to the sinks when a block
	// fills and at every early-stop poll (dispatch boundaries), instead
	// of one interface call per event. Zero selects the default block
	// size (256); a positive value overrides it; a negative value
	// disables batching and restores per-event delivery. Every sink
	// observes the identical event sequence either way, the buffered ECT
	// is unaffected, early-stop decisions are made on the same event
	// prefix at the same dispatch boundaries, and no scheduling decision
	// depends on delivery granularity — so record/replay scripts and all
	// analysis outputs are batching-invariant (the determinism sweep
	// pins this).
	SinkBatch int

	// Record captures the execution's decision script into
	// Result.Schedule — a portable artifact that replays the exact
	// interleaving independent of PRNG internals.
	Record bool

	// Replay feeds a previously recorded decision script instead of the
	// PRNG. A script from a structurally different program sets
	// Result.ReplayDiverged.
	Replay []int64

	// Faults configures the deterministic fault-injection layer: the plan
	// derived from (Seed, Faults) stalls goroutines, skews timers, cancels
	// contexts, slows channel operations and injects panics at CU points,
	// each recorded as an ECT event. The zero value disables injection.
	// Fault decisions draw from the plan's own PRNG streams, never from
	// the schedule decider, so Record/Replay scripts stay valid.
	Faults fault.Options

	// RecordRunnable captures, for every CU handler invocation, how many
	// *other* goroutines were runnable at that op (Result.OpRunnable).
	// The systematic explorer's HB pruner uses it to prove a candidate
	// yield placement is a no-op: a yield at an op where nothing else was
	// runnable redispatches the same goroutine immediately and cannot
	// change the schedule. Recording never draws scheduling decisions.
	RecordRunnable bool

	// RecordEnabled captures, for every CU handler invocation, the acting
	// goroutine (Result.OpActor) and the identities of the *other*
	// runnable goroutines in run-queue order (Result.OpEnabled). It is
	// the identity-level refinement of RecordRunnable that the DPOR
	// explorer's co-enabledness checks need: a backtrack point at op i
	// only makes sense when the goroutine whose operation should be
	// reordered ahead was actually enabled there. Recording never draws
	// scheduling decisions.
	RecordEnabled bool

	// RecordOps captures, for every emitted trace event, the global op
	// index of the emitting goroutine's most recent CU handler invocation
	// (Result.EventOps, parallel to Trace.Events). This attributes each
	// event to the CU at which its operation was dispatched — the op a
	// forced yield must target to preempt the goroutine *before* that
	// operation, which is exactly the DPOR backtrack-point mapping.
	// Only meaningful when the run buffers a trace.
	RecordOps bool

	// YieldAt switches the handler to *systematic* mode: a forced yield
	// fires exactly at the listed global op indices (1-based count of
	// handler invocations) and probabilistic yields/preemptions are
	// disabled. Combined with PickFIFO this makes the entire schedule a
	// deterministic function of the yield placement — the substrate of
	// the systematic explorer and the schedule minimizer.
	YieldAt []int64

	// WakeAt extends systematic mode with *targeted* backtracking: at
	// each listed op index the acting goroutine is forced to yield (as
	// with YieldAt) and the named goroutine, if currently runnable, is
	// moved to the head of the run queue so it is dispatched next. This
	// realizes a specific operation reversal directly instead of relying
	// on FIFO rotation to eventually schedule the target — the
	// wake-at-backtrack-point mechanism of the DPOR explorer. A non-nil
	// WakeAt enables systematic mode even when YieldAt is nil. Targets
	// that are not runnable at the op degrade to a plain forced yield.
	// Wakes never draw scheduling decisions, so Record/Replay scripts
	// are unaffected.
	WakeAt map[int64]trace.GoID
}

// systematicMode reports whether the options select deterministic
// systematic scheduling (forced yields at fixed op indices only).
func (o Options) systematicMode() bool {
	return o.YieldAt != nil || o.WakeAt != nil
}

const (
	defaultYieldProb   = 0.2
	defaultPreemptProb = 0.02
	defaultMaxSteps    = 200000
	defaultDrainSteps  = 20000
	defaultSinkBatch   = 256
)

func (o Options) sinkBatch() int {
	if o.SinkBatch == 0 {
		return defaultSinkBatch
	}
	if o.SinkBatch < 0 {
		return 0
	}
	return o.SinkBatch
}

func (o Options) yieldProb() float64 {
	if o.YieldProb == 0 {
		return defaultYieldProb
	}
	return o.YieldProb
}

func (o Options) preemptProb() float64 {
	if o.PreemptProb == 0 {
		return defaultPreemptProb
	}
	if o.PreemptProb < 0 {
		return 0
	}
	return o.PreemptProb
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return defaultMaxSteps
	}
	return o.MaxSteps
}

func (o Options) drainSteps() int {
	if o.DrainSteps <= 0 {
		return defaultDrainSteps
	}
	return o.DrainSteps
}
