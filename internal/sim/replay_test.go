package sim

import (
	"testing"

	"goat/internal/trace"
)

// replayProg is a schedule-sensitive program: which worker wins the
// race decides the trace shape.
func replayProg(g *G) {
	for i := 0; i < 4; i++ {
		g.Go("w", func(c *G) {
			c.HandlerHere()
			c.Yield()
		})
	}
	for i := 0; i < 4; i++ {
		g.Yield()
	}
}

func TestRecordCapturesSchedule(t *testing.T) {
	r := Run(Options{Seed: 3, Delays: 2, Record: true}, replayProg)
	if len(r.Schedule) == 0 {
		t.Fatal("no schedule recorded")
	}
	if r.ReplayDiverged {
		t.Fatal("recording flagged divergence")
	}
}

func TestReplayReproducesExactTrace(t *testing.T) {
	rec := Run(Options{Seed: 3, Delays: 2, Record: true}, replayProg)
	// Replay with a DIFFERENT seed: the script, not the PRNG, must drive.
	rep := Run(Options{Seed: 9999, Delays: 2, Replay: rec.Schedule}, replayProg)
	if rep.ReplayDiverged {
		t.Fatal("replay diverged on the identical program")
	}
	if rec.Trace.String() != rep.Trace.String() {
		t.Fatalf("replayed trace differs:\n%s\n----\n%s", rec.Trace, rep.Trace)
	}
}

func TestReplayReproducesBuggySchedule(t *testing.T) {
	// Find a seed where the racy program leaks, record it, replay it.
	prog := func(g *G) {
		mu := []*G{nil}
		g.Go("stuck", func(c *G) {
			mu[0] = c
			c.Block(trace.BlockRecv, 0, "t.go", 1)
		})
		g.Go("savior", func(c *G) {
			if c.Sched().Intn(2) == 0 && mu[0] != nil && mu[0].State() == StateBlocked {
				c.Ready(mu[0], 0, nil)
			}
		})
		g.Yield()
		g.Yield()
		g.Yield()
	}
	var script []int64
	found := false
	for seed := int64(0); seed < 100; seed++ {
		r := Run(Options{Seed: seed, Record: true, PreemptProb: -1}, prog)
		if r.Outcome == OutcomeLeak {
			script = r.Schedule
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no buggy schedule found")
	}
	for i := 0; i < 5; i++ {
		r := Run(Options{Seed: int64(1000 + i), Replay: script, PreemptProb: -1}, prog)
		if r.Outcome != OutcomeLeak {
			t.Fatalf("replay %d lost the bug: %v", i, r.Outcome)
		}
		if r.ReplayDiverged {
			t.Fatalf("replay %d diverged", i)
		}
	}
}

func TestReplayDivergenceFlagged(t *testing.T) {
	rec := Run(Options{Seed: 3, Delays: 2, Record: true}, replayProg)
	// Replay against a structurally different program.
	other := func(g *G) {
		for i := 0; i < 9; i++ {
			g.Go("x", func(c *G) {
				c.HandlerHere()
				c.Yield()
				c.Yield()
			})
		}
		for i := 0; i < 9; i++ {
			g.Yield()
			g.Yield()
		}
	}
	r := Run(Options{Seed: 3, Delays: 2, Replay: rec.Schedule}, other)
	if !r.ReplayDiverged {
		t.Fatal("divergence not flagged")
	}
	if r.Outcome == OutcomeCrash {
		t.Fatalf("diverged replay crashed: %v", r.PanicVal)
	}
}

func TestReplayEmptyScriptFallsBack(t *testing.T) {
	r := Run(Options{Seed: 3, Replay: []int64{}}, replayProg)
	if !r.ReplayDiverged {
		t.Fatal("empty script should diverge immediately")
	}
	if r.Outcome != OutcomeOK {
		t.Fatalf("fallback execution broken: %v", r.Outcome)
	}
}

func TestRecordedSelectChoicesReplay(t *testing.T) {
	// The select choice is part of the schedule script: a replay under a
	// different seed must pick the same cases.
	prog := func(g *G) {
		g.Handler("f.go", 1) // consume noise decisions uniformly
	}
	_ = prog
	recOpts := Options{Seed: 1, Record: true}
	a := Run(recOpts, replayProg)
	b := Run(Options{Seed: 777, Replay: a.Schedule}, replayProg)
	if a.Steps != b.Steps {
		t.Fatalf("replay steps %d != recorded %d", b.Steps, a.Steps)
	}
}
