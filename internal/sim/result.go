package sim

import (
	"fmt"
	"strings"

	"goat/internal/fault"
	"goat/internal/trace"
)

// Outcome classifies a completed execution the way the paper's evaluation
// does: OK, global deadlock (GDL), leak / partial deadlock (PDL), timeout
// (TO / hang), or crash (panic).
type Outcome uint8

const (
	// OutcomeOK means main returned and every application goroutine ended.
	OutcomeOK Outcome = iota
	// OutcomeGlobalDeadlock means no goroutine could run while main was
	// still alive — the condition the built-in runtime detector throws on.
	OutcomeGlobalDeadlock
	// OutcomeLeak means main returned but at least one application
	// goroutine never reached its end state (partial deadlock).
	OutcomeLeak
	// OutcomeTimeout means the step budget was exhausted before the
	// program settled (livelock / hang).
	OutcomeTimeout
	// OutcomeCrash means a goroutine panicked.
	OutcomeCrash
	// OutcomeStopped means a streaming sink (an online detector) decided
	// its verdict mid-run and requested an early stop: the world was
	// halted before settling, so no settle-time classification exists.
	// The requesting detector's verdict is the run's authoritative
	// classification.
	OutcomeStopped
)

var outcomeNames = [...]string{"OK", "GDL", "PDL", "TO", "CRASH", "STOP"}

// String returns the paper-style outcome tag.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Buggy reports whether the outcome counts as a blocking-bug manifestation.
func (o Outcome) Buggy() bool { return o != OutcomeOK }

// Result is the complete observable record of one execution: classified
// outcome, the ECT, and final goroutine states.
type Result struct {
	Outcome    Outcome
	Trace      *trace.Trace // nil when Options.NoTrace
	Goroutines []Info       // all simulated goroutines, creation order
	Leaked     []Info       // application goroutines that never ended
	Seed       int64
	Steps      int
	Ops        int // total concurrency-usage handler invocations
	MainEnded  bool
	PanicVal   any
	PanicG     trace.GoID

	// EarlyStopped reports that the run was halted by a streaming sink's
	// early-stop request (Outcome == OutcomeStopped).
	EarlyStopped bool

	// OpRunnable records, per CU handler invocation (index i = op i+1),
	// how many other goroutines were runnable at that point
	// (Options.RecordRunnable).
	OpRunnable []int32

	// OpActor records, per CU handler invocation, the goroutine that
	// executed the op (Options.RecordEnabled).
	OpActor []trace.GoID
	// OpEnabled records, per CU handler invocation, the identities of
	// the *other* runnable goroutines at that op, in run-queue order
	// (Options.RecordEnabled).
	OpEnabled [][]trace.GoID

	// EventOps records, per emitted trace event (parallel to
	// Trace.Events), the op index of the emitting goroutine's most
	// recent CU handler invocation — 0 for events emitted before the
	// goroutine's first op (Options.RecordOps).
	EventOps []int64

	// Schedule is the recorded decision script (Options.Record).
	Schedule []int64
	// ReplayDiverged reports that a replayed script did not structurally
	// match the execution (Options.Replay).
	ReplayDiverged bool

	// Faults lists the injected faults that actually fired, in firing
	// order (Options.Faults). FaultsPending counts planted faults the
	// execution ended before reaching.
	Faults        []fault.Action
	FaultsPending int
}

// FaultCrashed reports that the execution crashed on an injected panic
// rather than a program bug.
func (r *Result) FaultCrashed() bool {
	return r.Outcome == OutcomeCrash && fault.IsInjected(r.PanicVal)
}

// String summarizes the result in one paragraph for reports.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "outcome=%s seed=%d steps=%d mainEnded=%v", r.Outcome, r.Seed, r.Steps, r.MainEnded)
	if len(r.Leaked) > 0 {
		fmt.Fprintf(&b, " leaked=%d [", len(r.Leaked))
		for i, g := range r.Leaked {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "g%d(%s)%s", g.ID, g.Name, stateTag(g))
		}
		b.WriteString("]")
	}
	if r.PanicVal != nil {
		fmt.Fprintf(&b, " panic(g%d)=%v", r.PanicG, r.PanicVal)
	}
	if len(r.Faults) > 0 {
		fmt.Fprintf(&b, " faults=%d", len(r.Faults))
	}
	return b.String()
}

func stateTag(g Info) string {
	if g.State == StateBlocked {
		return fmt.Sprintf("/blocked:%s", g.Reason)
	}
	return "/" + g.State.String()
}
